// Package main_test is the benchmark harness that regenerates every
// table and figure of the DBI paper's evaluation (Section 6). Each
// benchmark runs one experiment end-to-end on the laptop-scale
// configuration and reports the paper's headline quantity as a custom
// metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The benchmarks default to quick
// sweeps; set DBI_BENCH_FULL=1 for the full sweep sizes. EXPERIMENTS.md
// records paper-vs-measured values for every experiment.
package main_test

import (
	"os"
	"testing"
	"time"

	"dbisim/internal/config"
	"dbisim/internal/experiments"
	"dbisim/internal/system"
)

func opts() experiments.Options {
	return experiments.Options{
		Quick: os.Getenv("DBI_BENCH_FULL") == "",
		Seed:  42,
	}
}

// BenchmarkFig6 regenerates Figure 6: the five single-core series (IPC,
// write row hit rate, tag lookups PKI, memory writes PKI, read row hit
// rate) over 14 benchmarks × 7 mechanisms.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(opts())
		if err != nil {
			b.Fatal(err)
		}
		base := res.GMeanIPC[config.TADIP]
		b.ReportMetric(res.GMeanIPC[config.DBIAWBCLB]/base-1, "IPCgain-vs-TADIP")
		b.ReportMetric(res.MeanWRHR[config.TADIP], "writeRHR-TADIP")
		b.ReportMetric(res.MeanWRHR[config.DBIAWB], "writeRHR-DBI+AWB")
		b.ReportMetric(res.MeanTagPKI[config.DAWB]/res.MeanTagPKI[config.TADIP], "tagPKI-DAWB/TADIP")
	}
}

// BenchmarkFig7 regenerates Figure 7: multi-core weighted speedup for
// 2/4/8-core systems under 7 mechanisms.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Improvement(8, config.DBIAWBCLB), "WSgain-8core")
		b.ReportMetric(res.Improvement(4, config.DBIAWBCLB), "WSgain-4core")
		b.ReportMetric(res.Improvement(2, config.DBIAWBCLB), "WSgain-2core")
	}
}

// BenchmarkFig8 regenerates Figure 8: the per-workload 4-core S-curve of
// normalized weighted speedups.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(opts())
		if err != nil {
			b.Fatal(err)
		}
		curve := res.Normalized[config.DBIAWBCLB]
		wins := 0
		for i, v := range curve {
			if v >= res.Normalized[config.DAWB][i] {
				wins++
			}
		}
		b.ReportMetric(float64(wins)/float64(len(curve)), "frac-DBI>=DAWB")
	}
}

// BenchmarkTable3 regenerates Table 3: performance and fairness metrics
// of DBI+AWB+CLB vs the baseline.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WSImprovement[8], "WSgain-8core")
		b.ReportMetric(res.HSImprovement[8], "HSgain-8core")
		b.ReportMetric(res.MSReduction[8], "MaxSlowdown-reduction")
	}
}

// BenchmarkTable4 regenerates Table 4: bit-storage cost reduction of the
// DBI organization with and without ECC.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(opts())
		b.ReportMetric(rows[0].TagReductionECC, "tag-reduction-ECC-quarter")
		b.ReportMetric(rows[0].CacheReductionECC, "cache-reduction-ECC-quarter")
	}
}

// BenchmarkTable5 regenerates Table 5: DBI power as a fraction of cache
// power across cache sizes.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5(opts())
		b.ReportMetric(rows[3].StaticFraction, "static-frac-16MB")
		b.ReportMetric(rows[3].DynamicFraction, "dynamic-frac-16MB")
	}
}

// BenchmarkTable6 regenerates Table 6: AWB sensitivity to DBI size and
// granularity.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(opts())
		if err != nil {
			b.Fatal(err)
		}
		// Improvement at α=1/2, granularity 128 (the paper's best cell).
		b.ReportMetric(res.Improvement[1][3], "best-cell-IPCgain")
		b.ReportMetric(res.Improvement[0][0], "smallest-cell-IPCgain")
	}
}

// BenchmarkTable7 regenerates Table 7: the effect of LLC capacity on the
// multi-core improvement.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table7(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Improvement[1<<20][8], "WSgain-8core-1MBper")
		b.ReportMetric(res.Improvement[2<<20][8], "WSgain-8core-2MBper")
	}
}

// BenchmarkCaseStudy regenerates the Section-6.2 GemsFDTD+libquantum
// study.
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseStudy(opts())
		if err != nil {
			b.Fatal(err)
		}
		base := res.WS[config.Baseline]
		b.ReportMetric(res.WS[config.DBI]/base-1, "DBI-WSgain")
		b.ReportMetric(res.WS[config.DAWB]/base-1, "DAWB-WSgain")
	}
}

// BenchmarkDBIPolicy regenerates the Section-4.3 replacement-policy
// comparison.
func BenchmarkDBIPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DBIPolicy(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GMeanIPC[config.DBILRW], "LRW-gmeanIPC")
	}
}

// BenchmarkCLBSensitivity regenerates the Section-6.4 CLB parameter
// sweep.
func BenchmarkCLBSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CLBSensitivity(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Spread, "IPC-spread")
	}
}

// BenchmarkDRRIP regenerates the Section-6.5 DRRIP interaction check.
func BenchmarkDRRIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DRRIP(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WSDBI/res.WSDAWB-1, "DBIvsDAWB-WSgain")
	}
}

// BenchmarkFlushLatency measures the Section-7 cache-flush application:
// the DBI's compact dirty record versus a full tag-store walk.
func BenchmarkFlushLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Flush(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "flush-speedup")
	}
}

// BenchmarkAreaPower regenerates the Section-6.3 area and DRAM-energy
// claims.
func BenchmarkAreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AreaPower(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AreaReductionQuarter, "area-reduction-quarter")
		b.ReportMetric(res.DRAMEnergyReduction, "DRAM-energy-reduction")
	}
}

// BenchmarkSimThroughput measures the simulator's own speed — the
// north-star "fast as the hardware allows" quantities: simulated
// cycles and engine events per host second on a full single-core
// DBI+AWB+CLB system. The same numbers ride the telemetry time-series
// export as self.* gauges and the dbistat perf trajectory.
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Scaled(1, config.DBIAWBCLB)
		cfg.WarmupInstructions = 100_000
		cfg.MeasureInstructions = 300_000
		sys, err := system.New(cfg, []string{"stream"}, 42)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		sys.Run()
		secs := time.Since(start).Seconds()
		b.ReportMetric(float64(sys.Eng.Now())/secs, "simcycles/sec")
		b.ReportMetric(float64(sys.Eng.Fired())/secs, "events/sec")
	}
}

// BenchmarkAblation sweeps the secondary design choices (write-buffer
// depth, drain watermark, DBI associativity) DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WBufWriteRHR[256]-res.WBufWriteRHR[16], "wRHR-gain-16to256-buf")
	}
}
