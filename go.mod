module dbisim

go 1.22
