package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dbisim/internal/obs"
)

// TestProgressThrottles verifies the 200ms render throttle: a flood of
// mid-sweep updates produces one line, but the final update always
// renders so 100% is never dropped.
func TestProgressThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressPrinter(obs.NewTermLog(&buf))
	p.setLabel("fig6")
	for done := 1; done <= 9; done++ {
		p.update(done, 10)
	}
	out := buf.String()
	if got := strings.Count(out, "cells"); got != 1 {
		t.Fatalf("throttle let %d renders through, want 1:\n%q", got, out)
	}
	if !strings.Contains(out, "[fig6] 1/10 cells") {
		t.Fatalf("first update missing: %q", out)
	}

	// The 100%% line renders despite the throttle window and ends the
	// line so following output starts clean.
	p.update(10, 10)
	out = buf.String()
	if !strings.Contains(out, "[fig6] 10/10 cells\n") {
		t.Fatalf("final line missing or not newline-terminated: %q", out)
	}
	if p.term.Dirty() {
		t.Fatal("printer still marked dirty after the final line")
	}
}

// TestProgressLabelSwitch verifies that setLabel starts a fresh sweep:
// the next update renders immediately under the new label and restarts
// the ETA clock.
func TestProgressLabelSwitch(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressPrinter(obs.NewTermLog(&buf))
	p.setLabel("fig6")
	p.update(5, 10)
	p.setLabel("tab3")
	if p.active {
		t.Fatal("setLabel must deactivate the running sweep")
	}
	p.update(1, 4)
	out := buf.String()
	if !strings.Contains(out, "[tab3] 1/4 cells") {
		t.Fatalf("post-switch update missing new label: %q", out)
	}
	// The new sweep's clock restarted, so the sub-second-old sweep must
	// not extrapolate an ETA from the old sweep's start time.
	if strings.Contains(lastLine(out), "ETA") {
		t.Fatalf("fresh sweep printed an ETA: %q", out)
	}
}

// TestProgressETAGuard pins the startup-window guard: no ETA while the
// sweep is younger than etaWarmup or nothing finished, an ETA once both
// hold.
func TestProgressETAGuard(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressPrinter(obs.NewTermLog(&buf))
	p.setLabel("fig7")

	p.update(1, 100) // brand-new sweep: elapsed ~0
	if out := buf.String(); strings.Contains(out, "ETA") {
		t.Fatalf("sub-second-old sweep printed an ETA: %q", out)
	}

	// Age the sweep past the warmup and reopen the throttle window.
	p.start = time.Now().Add(-4 * time.Second)
	p.lastOut = time.Time{}
	p.update(2, 100)
	if out := lastLine(buf.String()); !strings.Contains(out, "ETA") {
		t.Fatalf("aged sweep with progress printed no ETA: %q", out)
	}

	// A restarted count (new sweep, same label) resets the clock: with
	// done back at 0 and a fresh start there is again no ETA.
	buf.Reset()
	p.lastOut = time.Time{}
	p.update(0, 50)
	if out := buf.String(); strings.Contains(out, "ETA") {
		t.Fatalf("restarted sweep printed an ETA: %q", out)
	}
}

// TestProgressClear verifies clear erases a dangling line exactly once
// and that a nil printer is a no-op.
func TestProgressClear(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressPrinter(obs.NewTermLog(&buf))
	p.setLabel("tab7")
	p.update(1, 10) // leaves a dangling line (no newline)
	if !p.term.Dirty() {
		t.Fatal("mid-sweep update did not mark the line dangling")
	}
	before := buf.Len()
	p.clear()
	if !strings.HasSuffix(buf.String(), "\r\x1b[2K") {
		t.Fatalf("clear did not erase the line: %q", buf.String())
	}
	if p.term.Dirty() {
		t.Fatal("clear left the printer marked dirty")
	}
	p.clear() // idempotent: nothing more to erase
	if buf.Len() != before+len("\r\x1b[2K") {
		t.Fatal("second clear wrote again")
	}

	var nilP *progressPrinter
	nilP.clear() // must not panic
}

func lastLine(s string) string {
	lines := strings.Split(s, "\r")
	return lines[len(lines)-1]
}
