package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"dbisim/internal/obs"
)

// progressPrinter renders live sweep progress ("12/45 cells, ETA 30s")
// through a shared obs.TermLog, which serializes the transient line
// against every other stderr write so log lines never splice into it.
// Updates arrive concurrently from the worker pool; rendering is
// throttled so terminals are not flooded. A new sweep is detected when
// the total changes or the done count restarts.
type progressPrinter struct {
	mu      sync.Mutex
	term    *obs.TermLog
	label   string
	start   time.Time
	total   int
	lastN   int
	lastOut time.Time
	active  bool
}

func newProgressPrinter(term *obs.TermLog) *progressPrinter {
	return &progressPrinter{term: term}
}

// etaWarmup is how long a sweep must have been running before an ETA
// is trusted: extrapolating from the first cells of a sub-second-old
// sweep amplifies startup jitter into nonsense estimates.
const etaWarmup = time.Second

// setLabel names the sweeps that follow (the experiment id).
func (p *progressPrinter) setLabel(l string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.label = l
	p.active = false
}

func (p *progressPrinter) update(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if !p.active || total != p.total || done < p.lastN {
		p.start, p.total, p.active = now, total, true
		// A fresh sweep renders immediately; throttling only applies
		// within a sweep.
		p.lastOut = time.Time{}
	}
	p.lastN = done
	if done < total && now.Sub(p.lastOut) < 200*time.Millisecond {
		return
	}
	p.lastOut = now
	line := fmt.Sprintf("[%s] %d/%d cells", p.label, done, total)
	if done < total {
		// ETA only once there is signal: at least one finished cell and
		// a sweep old enough that the extrapolation means something.
		if elapsed := now.Sub(p.start); done > 0 && elapsed >= etaWarmup {
			eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
		}
		p.term.SetProgress(line)
		return
	}
	p.term.EndProgress(line)
}

// clear erases a dangling progress line before normal output.
func (p *progressPrinter) clear() {
	if p == nil {
		return
	}
	p.term.ClearProgress()
}

// stderrIsTerminal reports whether stderr is attached to an
// interactive terminal. It gates the -progress default: CI logs and
// redirected runs should not collect ETA lines unless explicitly
// asked to (-progress=true still overrides).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
