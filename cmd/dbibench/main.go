// Command dbibench regenerates the tables and figures of the DBI paper's
// evaluation (Section 6) on the laptop-scale configuration.
//
// Usage:
//
//	dbibench -experiment fig6          # one experiment
//	dbibench -experiment all -full     # everything, full sweep sizes
//
// Experiments: fig6, fig7, fig8, tab3, tab4, tab5, tab6, tab7,
// casestudy, dbipolicy, clbsens, drrip, area, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dbisim/internal/experiments"
)

func main() {
	var (
		name = flag.String("experiment", "all", "experiment id (fig6, fig7, fig8, tab3..tab7, casestudy, dbipolicy, clbsens, drrip, area, all)")
		full = flag.Bool("full", false, "full sweep sizes instead of quick mode")
		seed = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	o := experiments.Options{Out: os.Stdout, Quick: !*full, Seed: *seed}

	runners := []struct {
		id  string
		run func() error
	}{
		{"fig6", func() error { _, err := experiments.Fig6(o); return err }},
		{"fig7", func() error { _, err := experiments.Fig7(o); return err }},
		{"fig8", func() error { _, err := experiments.Fig8(o); return err }},
		{"tab3", func() error { _, err := experiments.Table3(o); return err }},
		{"tab4", func() error { experiments.Table4(o); return nil }},
		{"tab5", func() error { experiments.Table5(o); return nil }},
		{"tab6", func() error { _, err := experiments.Table6(o); return err }},
		{"tab7", func() error { _, err := experiments.Table7(o); return err }},
		{"casestudy", func() error { _, err := experiments.CaseStudy(o); return err }},
		{"dbipolicy", func() error { _, err := experiments.DBIPolicy(o); return err }},
		{"clbsens", func() error { _, err := experiments.CLBSensitivity(o); return err }},
		{"drrip", func() error { _, err := experiments.DRRIP(o); return err }},
		{"area", func() error { _, err := experiments.AreaPower(o); return err }},
		{"flushlat", func() error { _, err := experiments.Flush(o); return err }},
		{"ablation", func() error { _, err := experiments.Ablation(o); return err }},
	}

	ran := false
	for _, r := range runners {
		if *name != "all" && *name != r.id {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("\n===== %s =====\n", r.id)
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *name)
		os.Exit(2)
	}
}
