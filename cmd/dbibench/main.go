// Command dbibench regenerates the tables and figures of the DBI paper's
// evaluation (Section 6) on the laptop-scale configuration.
//
// Usage:
//
//	dbibench -experiment fig6               # one experiment
//	dbibench -experiment all -full          # everything, full sweep sizes
//	dbibench -experiment all -parallel 8    # fan cells out over 8 workers
//	dbibench -experiment fig6 -check        # gate on the paper's ordering
//	dbibench -experiment all -json out.json # machine-readable cell results
//	dbibench -experiment all -listen :9187  # live ops plane (/metrics, /sweep)
//
// The runner table below is the single source of truth: the usage text
// and the `all` set are both generated from it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dbisim/internal/cliflags"
	"dbisim/internal/experiments"
	"dbisim/internal/obs"
	"dbisim/internal/sweep"
	"dbisim/internal/system"
)

// runner binds an experiment id to its implementation. Every runner
// listed here is part of `-experiment all`.
type runner struct {
	id   string
	desc string
	run  func(experiments.Options) error
}

// fig6Result captures the Figure 6 sweep when it runs, for -check.
var fig6Result *experiments.Fig6Result

// runners is the experiment registry — usage text and the `all` set
// derive from it, so adding a runner here is the whole registration.
var runners = []runner{
	{"fig6", "Figure 6: single-core IPC, row hit rates, tag lookups, WPKI", func(o experiments.Options) error {
		r, err := experiments.Fig6(o)
		fig6Result = r
		return err
	}},
	{"fig7", "Figure 7: multi-core weighted speedup (2/4/8 cores)", func(o experiments.Options) error {
		_, err := experiments.Fig7(o)
		return err
	}},
	{"fig8", "Figure 8: 4-core per-workload speedup S-curve", func(o experiments.Options) error {
		_, err := experiments.Fig8(o)
		return err
	}},
	{"tab3", "Table 3: performance and fairness metrics", func(o experiments.Options) error {
		_, err := experiments.Table3(o)
		return err
	}},
	{"tab4", "Table 4: bit storage cost reduction", func(o experiments.Options) error {
		experiments.Table4(o)
		return nil
	}},
	{"tab5", "Table 5: DBI power fraction", func(o experiments.Options) error {
		experiments.Table5(o)
		return nil
	}},
	{"tab6", "Table 6: AWB sensitivity to DBI size and granularity", func(o experiments.Options) error {
		_, err := experiments.Table6(o)
		return err
	}},
	{"tab7", "Table 7: cache size sensitivity", func(o experiments.Options) error {
		_, err := experiments.Table7(o)
		return err
	}},
	{"casestudy", "Section 6.2: GemsFDTD+libquantum case study", func(o experiments.Options) error {
		_, err := experiments.CaseStudy(o)
		return err
	}},
	{"dbipolicy", "Section 4.3: DBI replacement policy comparison", func(o experiments.Options) error {
		_, err := experiments.DBIPolicy(o)
		return err
	}},
	{"clbsens", "Section 6.4: CLB miss-predictor threshold sensitivity", func(o experiments.Options) error {
		_, err := experiments.CLBSensitivity(o)
		return err
	}},
	{"drrip", "Section 6.5: DBI under DRRIP replacement", func(o experiments.Options) error {
		_, err := experiments.DRRIP(o)
		return err
	}},
	{"area", "Section 6.3: area and DRAM energy", func(o experiments.Options) error {
		_, err := experiments.AreaPower(o)
		return err
	}},
	{"flushlat", "Section 7: whole-cache flush latency", func(o experiments.Options) error {
		_, err := experiments.Flush(o)
		return err
	}},
	{"ablation", "Design-choice ablations (write buffer, drain, DBI assoc)", func(o experiments.Options) error {
		_, err := experiments.Ablation(o)
		return err
	}},
}

func experimentIDs() []string {
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.id
	}
	return ids
}

func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, "usage: dbibench [flags]\n\nflags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(w, "\nexperiments (all runs every one of them):\n")
	for _, r := range runners {
		fmt.Fprintf(w, "  %-10s %s\n", r.id, r.desc)
	}
}

func main() {
	var (
		name = flag.String("experiment", "all",
			"experiment id ("+strings.Join(experimentIDs(), ", ")+", all)")
		full = flag.Bool("full", false, "full sweep sizes instead of quick mode")
		seed = flag.Int64("seed", 42, "simulation seed")
		par  = flag.Int("parallel", 0,
			"worker goroutines per sweep (0 = one per CPU, 1 = sequential)")
		out   cliflags.Output
		check = flag.Bool("check", false,
			"verify the paper's Figure-6a mechanism ordering (needs fig6 in the run)")
		cpuProfile = flag.String("cpuprofile", "",
			"write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "",
			"write a pprof heap profile at exit to this file")
		progress = flag.Bool("progress", stderrIsTerminal(),
			"report live per-sweep cell progress and ETA on stderr "+
				"(defaults to on only when stderr is a terminal)")
		attr = flag.Bool("attr", false,
			"attach cycle/bandwidth attribution ledgers to every cell; "+
				"-json records gain an attr block (analyze with dbiscope)")
		ops cliflags.Ops
	)
	out.Register(flag.CommandLine,
		"write per-cell metrics, wall clock and speedup to this JSON file (\"-\" for stdout)")
	ops.Register(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()

	// Every stderr write goes through one TermLog, so log lines and the
	// transient -progress line never interleave (and the TTY clearing
	// sequences never land anywhere near -json's stdout).
	term := obs.NewTermLog(os.Stderr)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(term, "dbibench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(term, "dbibench: cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(term, "dbibench: cpu profile -> %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(term, "dbibench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(term, "dbibench: heap profile: %v\n", err)
				return
			}
			fmt.Fprintf(term, "dbibench: heap profile -> %s\n", *memProfile)
		}()
	}

	// The pool schedulers construct Systems internally, so the -attr
	// flag reaches them through the process-wide default.
	system.SetAttributionEnabled(*attr)

	srv, err := ops.Start(nil, "dbibench", term)
	if err != nil {
		fmt.Fprintf(term, "dbibench: %v\n", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}

	rec := &sweep.Recorder{}
	o := experiments.Options{
		Out: os.Stdout, Quick: !*full, Seed: *seed,
		Parallel: *par, Recorder: rec,
	}
	var prog *progressPrinter
	if *progress {
		prog = newProgressPrinter(term)
		o.Progress = prog.update
	}

	var selected []runner
	for _, r := range runners {
		if *name == "all" || *name == r.id {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(term, "dbibench: unknown experiment %q (valid: %s, all)\n",
			*name, strings.Join(experimentIDs(), ", "))
		os.Exit(2)
	}

	start := time.Now()
	var ran []string
	for _, r := range selected {
		expStart := time.Now()
		fmt.Printf("\n===== %s =====\n", r.id)
		if prog != nil {
			prog.setLabel(r.id)
		}
		poolBefore := system.PoolStat.Snapshot()
		err := r.run(o)
		prog.clear()
		if err != nil {
			fmt.Fprintf(term, "dbibench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		ran = append(ran, r.id)
		pd := system.PoolStat.Snapshot().Sub(poolBefore)
		fmt.Printf("[pool: %d forked, %d reset, %d rebuilt", pd.CkptHits, pd.Resets, pd.Rebuilds)
		if pd.CkptHits+pd.CkptMisses > 0 {
			fmt.Printf(", ckpt hit %.0f%%", 100*pd.CkptHitRate())
		}
		fmt.Printf("]\n[%s done in %v]\n", r.id, time.Since(expStart).Round(time.Millisecond))
	}
	wall := time.Since(start)

	if out.Enabled() {
		workers := *par
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		rep := rec.Report(*seed, workers, !*full, ran, wall)
		if err := out.Write(rep); err != nil {
			fmt.Fprintf(term, "dbibench: writing %s: %v\n", out.Path, err)
			os.Exit(1)
		}
		fmt.Printf("[%d cells, busy %.1fs, wall %.1fs, speedup %.2fx -> %s]\n",
			rep.CellCount, rep.BusySeconds, rep.WallSeconds, rep.Speedup, out.Path)
	}

	if *check {
		if fig6Result == nil {
			fmt.Fprintln(term, "dbibench: -check requires fig6 in the run (use -experiment fig6 or all)")
			os.Exit(2)
		}
		if err := fig6Result.CheckPaperOrdering(); err != nil {
			fmt.Fprintf(term, "dbibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("[check ok: DBI+AWB+CLB > DBI+AWB > DAWB > VWQ > TA-DIP on gmean IPC]")
	}
}
