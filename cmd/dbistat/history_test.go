package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbisim/internal/perfstat"
)

// fakeReport writes one BENCH_*.json recording to dir with a single
// metric value.
func fakeReport(t *testing.T, dir, sha, at string, v float64) {
	t.Helper()
	r := perfstat.NewReport(perfstat.Env{GitSHA: sha}, 3, "all", 42, []perfstat.Benchmark{{
		Name: "micro/event.chain",
		Kind: perfstat.KindMicro,
		Metrics: map[string]perfstat.Summary{
			"ops_per_sec": perfstat.Summarize([]float64{v}),
		},
	}})
	r.RecordedAt = at
	if err := r.WriteFile(filepath.Join(dir, "BENCH_"+sha[:12]+".json")); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryTable pins the trajectory table: recordings come back
// oldest-first regardless of filename order, values humanize, and each
// row carries the percent delta against the previous one.
func TestHistoryTable(t *testing.T) {
	dir := t.TempDir()
	// Written newest-first to prove ordering comes from RecordedAt.
	fakeReport(t, dir, "bbbbbbbbbbbbbbbb", "2026-08-02T00:00:00Z", 1.1e6)
	fakeReport(t, dir, "aaaaaaaaaaaaaaaa", "2026-08-01T00:00:00Z", 1.0e6)
	// A corrupt file is skipped, not fatal.
	os.WriteFile(filepath.Join(dir, "BENCH_broken.json"), []byte("{"), 0o644)

	reps, err := loadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("loaded %d reports, want 2", len(reps))
	}
	if reps[0].Env.GitSHA[0] != 'a' || reps[1].Env.GitSHA[0] != 'b' {
		t.Fatalf("reports not oldest-first: %s then %s", reps[0].Env.GitSHA, reps[1].Env.GitSHA)
	}

	var buf bytes.Buffer
	writeHistoryTable(&buf, reps, []string{"micro/event.chain:ops_per_sec", "macro/none:missing"})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "aaaaaaaaaaaa") || !strings.Contains(lines[1], "1.00M") {
		t.Errorf("first row wrong: %q", lines[1])
	}
	if strings.Contains(lines[1], "%") {
		t.Errorf("first row must not carry a delta: %q", lines[1])
	}
	if !strings.Contains(lines[2], "1.10M") || !strings.Contains(lines[2], "(+10.0%)") {
		t.Errorf("second row missing value or delta: %q", lines[2])
	}
	// The absent metric renders as a dash in every row.
	for _, l := range lines[1:] {
		if !strings.Contains(l, "-") {
			t.Errorf("missing-metric dash absent in %q", l)
		}
	}
}

// TestHistoryEmptyDirIsNotAnError pins the zero-recordings behavior: a
// directory with no BENCH_*.json prints a friendly notice and returns
// normally (exit 0) instead of failing — an empty history is a normal
// state, not a pipeline error.
func TestHistoryEmptyDirIsNotAnError(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// history calls fatalf (os.Exit) on errors, so merely returning
	// here is the regression being pinned.
	history([]string{"-dir", dir})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "no recordings found") {
		t.Errorf("notice missing: %q", out)
	}
	if !strings.Contains(out, "dbistat record") {
		t.Errorf("next-step hint missing: %q", out)
	}
}
