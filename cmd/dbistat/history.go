package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"dbisim/internal/perfstat"
)

// defaultHistoryColumns are the trajectory columns shown when -metrics
// is not given: one throughput per suite tier plus the allocation
// gate, the metrics PR-over-PR performance work actually moves.
var defaultHistoryColumns = []string{
	"micro/event.chain:ops_per_sec",
	"micro/sim.stream:cycles_per_sec",
	"macro/casestudy:cells_per_sec",
	"macro/casestudy:allocs_per_cell",
	"macro/clbsens:cells_per_sec",
}

// history implements `dbistat history`: scan a directory of
// BENCH_*.json recordings (CI's bench-history artifact dir, or a
// workspace that accumulated them) and print the cross-commit
// trajectory of the key metrics, each with its percent change against
// the previous recording.
func history(args []string) {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	var (
		dir  = fs.String("dir", ".", "directory holding BENCH_*.json recordings")
		last = fs.Int("last", 0, "show only the most recent n recordings (0 = all)")
		cols = fs.String("metrics", strings.Join(defaultHistoryColumns, ","),
			"comma-separated benchmark:metric columns")
	)
	fs.Parse(args)
	reps, err := loadHistory(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	// An empty directory is a normal state (fresh checkout, CI cache
	// not yet primed), not an error: say so and exit clean, so
	// scripted `dbistat history` probes don't fail their pipeline.
	if len(reps) == 0 {
		fmt.Printf("no recordings found: no readable BENCH_*.json in %s\n", *dir)
		fmt.Println("record one with `dbistat record` to start a history.")
		return
	}
	if *last > 0 && len(reps) > *last {
		reps = reps[len(reps)-*last:]
	}
	writeHistoryTable(os.Stdout, reps, strings.Split(*cols, ","))
}

// loadHistory reads every BENCH_*.json under dir, warning about (and
// skipping) unreadable ones, and returns the rest oldest-first.
func loadHistory(dir string) ([]*perfstat.Report, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var reps []*perfstat.Report
	for _, p := range paths {
		r, err := perfstat.ReadReport(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbistat: skipping %s: %v\n", p, err)
			continue
		}
		reps = append(reps, r)
	}
	sort.SliceStable(reps, func(i, j int) bool {
		if reps[i].RecordedAt != reps[j].RecordedAt {
			return reps[i].RecordedAt < reps[j].RecordedAt
		}
		return reps[i].Env.GitSHA < reps[j].Env.GitSHA
	})
	return reps, nil
}

// metricMean returns the mean of bench's metric in r, false when the
// recording does not carry it.
func metricMean(r *perfstat.Report, bench, metric string) (float64, bool) {
	b := r.Benchmark(bench)
	if b == nil {
		return 0, false
	}
	s, ok := b.Metrics[metric]
	if !ok || s.N == 0 {
		return 0, false
	}
	return s.Mean, true
}

// histValue humanizes a metric mean with an SI suffix.
func histValue(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// writeHistoryTable renders one row per recording, oldest first. Each
// metric cell shows the mean and, from the second row a metric appears
// in onward, the percent change against the previous recording that
// carried it.
func writeHistoryTable(w io.Writer, reps []*perfstat.Report, cols []string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "sha\tdate\trounds")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)

	prev := map[string]float64{}
	for _, r := range reps {
		sha := r.Env.GitSHA
		if sha == "" {
			sha = "(unversioned)"
		} else if len(sha) > 12 {
			sha = sha[:12]
		}
		date := r.RecordedAt
		if len(date) >= 10 {
			date = date[:10]
		}
		fmt.Fprintf(tw, "%s\t%s\t%d", sha, date, r.Rounds)
		for _, c := range cols {
			bench, metric, ok := strings.Cut(c, ":")
			if !ok {
				fmt.Fprint(tw, "\t?")
				continue
			}
			v, found := metricMean(r, bench, metric)
			if !found {
				fmt.Fprint(tw, "\t-")
				continue
			}
			cell := histValue(v)
			if p, seen := prev[c]; seen && p != 0 {
				cell += fmt.Sprintf(" (%+.1f%%)", 100*(v-p)/p)
			}
			prev[c] = v
			fmt.Fprintf(tw, "\t%s", cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
