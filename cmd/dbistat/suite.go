package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"dbisim/internal/addr"
	"dbisim/internal/cache"
	"dbisim/internal/config"
	"dbisim/internal/dbi"
	"dbisim/internal/dbiserve"
	"dbisim/internal/event"
	"dbisim/internal/experiments"
	"dbisim/internal/perfstat"
	"dbisim/internal/system"
	"dbisim/internal/telemetry"
	"dbisim/internal/trace"
	servedbi "dbisim/pkg/dbi"
)

// The recording suite. Micro targets mirror the `go test -bench`
// micro-benchmarks (internal/event, internal/dbi) as fixed-size loops
// so each run is one comparable observation; macro targets run whole
// paper experiments through internal/sweep sequentially (Parallel: 1),
// which keeps wall time attributable and allocation deltas clean. The
// heavyweight sweeps (fig6, tab7: minutes per round sequentially) stay
// out of the recording suite on purpose — CI still runs them once per
// commit via dbibench.

// microOps sizes the fixed micro loops: large enough to dwarf timer
// granularity, small enough that a round is sub-second.
const microOps = 2_000_000

// suite assembles the benchmark targets for a recording session.
func suite(kind string, seed int64) []perfstat.Target {
	var ts []perfstat.Target
	if kind == "all" || kind == perfstat.KindMicro {
		ts = append(ts,
			perfstat.Target{Name: "micro/event.chain", Kind: perfstat.KindMicro, Run: eventChain},
			perfstat.Target{Name: "micro/dbi.setdirty", Kind: perfstat.KindMicro, Run: dbiSetDirty},
			perfstat.Target{Name: "micro/dbi.isdirty", Kind: perfstat.KindMicro, Run: dbiIsDirty},
			perfstat.Target{Name: "micro/dbi.region", Kind: perfstat.KindMicro, Run: dbiRegion},
			perfstat.Target{Name: "micro/cache.lookup", Kind: perfstat.KindMicro, Run: cacheLookup},
			perfstat.Target{Name: "micro/trace.next", Kind: perfstat.KindMicro, Run: func() (perfstat.Counts, error) {
				return traceNext(seed)
			}},
			perfstat.Target{Name: "micro/mshr.lookup", Kind: perfstat.KindMicro, Run: mshrLookup},
			perfstat.Target{Name: "micro/sim.stream", Kind: perfstat.KindMicro, Run: func() (perfstat.Counts, error) {
				return simStream(seed)
			}},
			perfstat.Target{Name: "micro/shard.setdirty", Kind: perfstat.KindMicro, Run: shardSetDirty},
		)
	}
	if kind == "all" || kind == perfstat.KindMacro {
		ts = append(ts,
			macroTarget("macro/casestudy", seed, func(o experiments.Options) error {
				_, err := experiments.CaseStudy(o)
				return err
			}),
			macroTarget("macro/clbsens", seed, func(o experiments.Options) error {
				_, err := experiments.CLBSensitivity(o)
				return err
			}),
			macroTarget("macro/forked_clbsens", seed, func(o experiments.Options) error {
				// Two passes per round: the first warms machines and
				// takes warmup checkpoints, the second forks every cell
				// from them (workers release their pools between sweeps,
				// so the second pass adopts the first's warmed machines).
				// The gate on this target is what pins the fork
				// scheduler's warmup-amortization win.
				for i := 0; i < 2; i++ {
					if _, err := experiments.CLBSensitivity(o); err != nil {
						return err
					}
				}
				return nil
			}),
			perfstat.Target{Name: "macro/served_loadtest", Kind: perfstat.KindMacro, Run: func() (perfstat.Counts, error) {
				return servedLoadtest(seed)
			}},
			macroTarget("macro/flushlat", seed, func(o experiments.Options) error {
				// One Flush is sub-millisecond — below the host's
				// scheduling-noise floor — so run a batch per round to
				// give the regression gate a resolvable signal.
				for i := 0; i < 50; i++ {
					if _, err := experiments.Flush(o); err != nil {
						return err
					}
				}
				return nil
			}),
		)
	}
	return ts
}

// eventChain measures raw engine throughput: schedule-and-fire of
// chained events, the backbone cost of every simulation (mirrors
// event.BenchmarkScheduleRun).
func eventChain() (perfstat.Counts, error) {
	var e event.Engine
	n := 0
	var step func()
	step = func() {
		n++
		if n < microOps {
			e.After(1, step)
		}
	}
	e.After(1, step)
	e.Run()
	return perfstat.Counts{Cycles: uint64(e.Now()), Events: e.Fired(), Ops: microOps}, nil
}

// microDBI builds the 16MB-cache-sized DBI the dbi micro-benchmarks
// use.
func microDBI() (*dbi.DBI, error) {
	return dbi.New(dbi.WithCacheBlocks(262144), dbi.WithSeed(1))
}

// dbiSetDirty measures the hot write path including evictions.
func dbiSetDirty() (perfstat.Counts, error) {
	d, err := microDBI()
	if err != nil {
		return perfstat.Counts{}, err
	}
	for i := 0; i < microOps; i++ {
		d.SetDirty(addr.BlockAddr(i * 37))
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// dbiIsDirty measures the CLB guard query against a warm DBI.
func dbiIsDirty() (perfstat.Counts, error) {
	d, err := microDBI()
	if err != nil {
		return perfstat.Counts{}, err
	}
	for i := 0; i < 4096; i++ {
		d.SetDirty(addr.BlockAddr(i))
	}
	for i := 0; i < microOps; i++ {
		d.IsDirty(addr.BlockAddr(i & 8191))
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// dbiRegion measures the AWB harvest query — DirtyBlocksInRegionInto
// against a warm DBI with row-local dirty clusters — the word-at-a-time
// bit-decode path the columnar store rewrote.
func dbiRegion() (perfstat.Counts, error) {
	d, err := microDBI()
	if err != nil {
		return perfstat.Counts{}, err
	}
	g := d.Granularity()
	for r := 0; r < 2048; r++ {
		for i := 0; i < g; i += 4 {
			d.SetDirty(addr.BlockAddr(r*g + i))
		}
	}
	var dst []addr.BlockAddr
	for i := 0; i < microOps; i++ {
		dst = d.DirtyBlocksInRegionInto(addr.BlockAddr((i&2047)*g), dst[:0])
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// cacheLookup measures the tag-store probe plane: a hit-heavy Access
// stream against a warm 16-way cache, the branchless way-scan every
// demand access rides on.
func cacheLookup() (perfstat.Counts, error) {
	p := config.CacheParams{
		SizeBytes: 2 << 20, Ways: 16, BlockSize: 64,
		TagLatency: 2, DataLatency: 8, MSHRs: 32,
		Replacement: config.ReplLRU,
	}
	c, err := cache.New(p, 1, 1)
	if err != nil {
		return perfstat.Counts{}, err
	}
	blocks := c.Sets() * c.Ways()
	for i := 0; i < blocks; i++ {
		c.Insert(addr.BlockAddr(i), 0, false)
	}
	for i := 0; i < microOps; i++ {
		c.Access(addr.BlockAddr((i*37)&(blocks-1)), 0)
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// shardSetDirty measures the service-facing sharded tracker's batch
// write path — hashing, striped locking and eviction harvesting —
// which is what every dbiserved request rides on.
func shardSetDirty() (perfstat.Counts, error) {
	tr, err := servedbi.NewSharded(8, servedbi.WithRows(1<<16), servedbi.WithSeed(1))
	if err != nil {
		return perfstat.Counts{}, err
	}
	const batch = 128
	keys := make([]servedbi.Key, batch)
	var sink []servedbi.Key
	for i := 0; i < microOps; i += batch {
		for j := range keys {
			keys[j] = servedbi.Key(uint64(i+j) * 37)
		}
		sink = tr.SetDirtyBatch(keys, sink[:0])
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// servedLoadtest boots a dbiserved instance in-process on loopback and
// drives a short closed-loop binary-protocol burst, reporting applied
// SetDirty ops plus the driver's own throughput and tail latency via
// Extra — the recording-suite twin of the CI loadtest job's absolute
// gates. Client count stays modest so the number measures the service
// stack, not runner-core contention.
func servedLoadtest(seed int64) (perfstat.Counts, error) {
	tr, err := servedbi.NewSharded(8, servedbi.WithRows(1<<16), servedbi.WithSeed(1))
	if err != nil {
		return perfstat.Counts{}, err
	}
	srv := dbiserve.New(tr, telemetry.NewRegistry())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return perfstat.Counts{}, err
	}
	defer ln.Close()
	go srv.ServeBinary(ln)
	rep, err := dbiserve.RunLoad(context.Background(), dbiserve.LoadConfig{
		Addr: ln.Addr().String(), Protocol: "binary", Clients: 8, Batch: 128,
		Duration: 2 * time.Second, Profile: "stream", Seed: seed,
	})
	if err != nil {
		return perfstat.Counts{}, err
	}
	if rep.Errors > 0 {
		return perfstat.Counts{}, fmt.Errorf("loadtest reported %d errors", rep.Errors)
	}
	return perfstat.Counts{Ops: rep.SetKeys, Extra: map[string]float64{
		"set_ops_per_sec": rep.SetOpsSec,
		"p99_us":          float64(rep.P99us),
	}}, nil
}

// traceNext measures the synthetic trace generator's record loop — page
// translation through the open-addressed page table plus the RNG draws —
// the per-instruction front-end cost of every simulated core.
func traceNext(seed int64) (perfstat.Counts, error) {
	p, err := trace.ByName("stream")
	if err != nil {
		return perfstat.Counts{}, err
	}
	g := trace.New(p, addr.Addr(1<<36), seed)
	for i := 0; i < microOps; i++ {
		g.Next()
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// mshrLookup measures the MSHR file's probe/allocate/complete cycle at
// a realistic occupancy: register a window of blocks, then stream
// lookups and completions through the open-addressed table.
func mshrLookup() (perfstat.Counts, error) {
	m := cache.NewMSHR(32)
	nop := func() {}
	for i := 0; i < 24; i++ {
		m.Register(uint64(i*61), nop)
	}
	for i := 0; i < microOps; i++ {
		b := uint64(i * 61)
		if m.Outstanding(b) {
			m.Complete(b)
		} else if !m.Full() {
			m.Register(b, nop)
		}
	}
	return perfstat.Counts{Ops: microOps}, nil
}

// simStream runs one full single-core system end to end and reports
// engine-domain throughput: simulated cycles and fired events per
// host second are the purest "how fast is the simulator" numbers.
func simStream(seed int64) (perfstat.Counts, error) {
	cfg := config.Scaled(1, config.DBIAWBCLB)
	cfg.WarmupInstructions = 100_000
	cfg.MeasureInstructions = 300_000
	sys, err := system.New(cfg, []string{"stream"}, seed)
	if err != nil {
		return perfstat.Counts{}, err
	}
	sys.Run()
	return perfstat.Counts{Cycles: uint64(sys.Eng.Now()), Events: sys.Eng.Fired(), Cells: 1}, nil
}

// macroTarget wraps an experiment runner as a sequential quick sweep.
// Completed cells are counted through the process-wide perfstat
// counter the sweep worker pool feeds — the same signal the telemetry
// self.cells_per_sec gauge reads — so every sweep-driven experiment
// reports cells uniformly whether or not it uses a Recorder.
func macroTarget(name string, seed int64, run func(experiments.Options) error) perfstat.Target {
	return perfstat.Target{Name: name, Kind: perfstat.KindMacro, Run: func() (perfstat.Counts, error) {
		before := perfstat.CellCount()
		o := experiments.Options{
			Out: io.Discard, Quick: true, Seed: seed, Parallel: 1,
		}
		if err := run(o); err != nil {
			return perfstat.Counts{}, err
		}
		return perfstat.Counts{Cells: perfstat.CellCount() - before}, nil
	}}
}
