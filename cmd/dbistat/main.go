// Command dbistat is the project's performance observatory CLI: it
// records statistically rigorous benchmark runs of the simulator
// itself and diffs recordings across commits, benchstat-style.
//
// Usage:
//
//	dbistat record                        # run the suite, write BENCH_<sha>.json
//	dbistat record -rounds 7 -o out.json  # more rounds, explicit path
//	dbistat record -suite micro           # micro loops only
//	dbistat diff old.json new.json        # significance-annotated delta table
//	dbistat diff -threshold 0.25 a.json b.json
//	dbistat history -dir bench-history    # cross-commit perf trajectory table
//
// `record` executes every target N times in interleaved rounds and
// writes a schema-versioned JSON document with environment metadata
// (go version, CPU model, git SHA) and per-metric mean/stddev/CI.
// `diff` compares two recordings with Welch's t-test: deltas beyond
// the threshold that are statistically significant in the bad
// direction are regressions and make the exit status non-zero; noisy
// deltas only warn. CI records every commit and gates against the
// committed bench/baseline.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"dbisim/internal/cliflags"
	"dbisim/internal/perfstat"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dbistat record [-o file] [-rounds n] [-suite all|micro|macro] [-seed n] [-listen addr]
  dbistat diff [-alpha a] [-threshold t] old.json new.json
  dbistat history [-dir d] [-last n] [-metrics bench:metric,...]
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "history":
		history(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "dbistat: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out    = fs.String("o", "", "output path (default BENCH_<sha12>.json)")
		rounds = fs.Int("rounds", 5, "interleaved rounds per target")
		kind   = fs.String("suite", "all", "target set: all, micro or macro")
		seed   = fs.Int64("seed", 42, "simulation seed for sim-backed targets")
		ops    cliflags.Ops
	)
	ops.Register(fs)
	fs.Parse(args)
	if *kind != "all" && *kind != perfstat.KindMicro && *kind != perfstat.KindMacro {
		fatalf("unknown suite %q (want all, micro or macro)", *kind)
	}
	srv, err := ops.Start(nil, "dbistat", os.Stderr)
	if err != nil {
		fatalf("%v", err)
	}
	if srv != nil {
		defer srv.Close()
	}

	env := perfstat.CaptureEnv()
	targets := suite(*kind, *seed)
	fmt.Fprintf(os.Stderr, "dbistat: %d targets x %d rounds (suite %s, go %s, sha %.12s)\n",
		len(targets), *rounds, *kind, env.GoVersion, env.GitSHA)
	benches, err := perfstat.Run(targets, perfstat.RunConfig{
		Rounds: *rounds,
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	rep := perfstat.NewReport(env, *rounds, *kind, *seed, benches)
	path := *out
	if path == "" {
		path = rep.DefaultFileName()
	}
	if err := rep.WriteFile(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("dbistat: %d benchmarks x %d rounds -> %s\n", len(benches), *rounds, path)
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		alpha = fs.Float64("alpha", 0.05, "significance level for Welch's t-test")
		thr   = fs.Float64("threshold", 0.10, "minimum relative mean change gated on")
	)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldRep, err := perfstat.ReadReport(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newRep, err := perfstat.ReadReport(fs.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	if why, mismatch := perfstat.SchemaMismatch(oldRep, newRep); mismatch {
		fatalf("%s", why)
	}
	if ok, why := oldRep.Env.Comparable(newRep.Env); !ok {
		fmt.Fprintf(os.Stderr, "dbistat: WARNING: recordings come from different environments (%s); wall-clock deltas may reflect the machine, not the code\n", why)
	}
	fmt.Printf("old: %.12s (%s, %d rounds)  new: %.12s (%s, %d rounds)\n",
		orLabel(oldRep.Env.GitSHA), oldRep.RecordedAt, oldRep.Rounds,
		orLabel(newRep.Env.GitSHA), newRep.RecordedAt, newRep.Rounds)

	deltas := perfstat.Diff(oldRep, newRep, perfstat.DiffOptions{Alpha: *alpha, Threshold: *thr})
	if len(deltas) == 0 {
		fatalf("recordings share no benchmarks/metrics to compare")
	}
	perfstat.WriteTable(os.Stdout, deltas)

	regs := perfstat.Regressions(deltas)
	noisy := 0
	for _, d := range deltas {
		if d.Verdict == perfstat.VerdictNoise {
			noisy++
		}
	}
	if noisy > 0 {
		fmt.Fprintf(os.Stderr, "dbistat: warning: %d metric(s) moved beyond the %.0f%% threshold but are not statistically distinguishable from noise\n",
			noisy, 100**thr)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "dbistat: %d significant regression(s) beyond the %.0f%% threshold (alpha %.2g):\n",
			len(regs), 100**thr, *alpha)
		for _, d := range regs {
			fmt.Fprintf(os.Stderr, "  %s %s: %+.1f%% (p=%.3g)\n", d.Benchmark, d.Metric, 100*d.Pct, d.P)
		}
		os.Exit(1)
	}
	fmt.Println("dbistat: no significant regressions")
}

func orLabel(sha string) string {
	if sha == "" {
		return "(unversioned)"
	}
	return sha
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbistat: "+format+"\n", args...)
	os.Exit(1)
}
