// Command dbiserved runs the Dirty-Block Index as a network service:
// a sharded pkg/dbi tracker behind the versioned HTTP+JSON v1 API, the
// binary batch protocol, and the repo-standard ops plane (PROTOCOL.md
// is the wire contract). The loadtest subcommand is the matching load
// driver: it replays internal/trace profiles as open- or closed-loop
// traffic and reports (and optionally gates on) throughput and tail
// latency.
//
//	dbiserved serve -http :7071 -tcp :7070 -shards 8 -rows 65536
//	dbiserved loadtest -addr localhost:7070 -clients 64 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dbisim/internal/dbiserve"
	"dbisim/internal/telemetry"
	"dbisim/pkg/dbi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "loadtest":
		err = loadtestCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbiserved:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dbiserved serve    [flags]   run the tracker service
  dbiserved loadtest [flags]   drive a running service and report latency/throughput`)
	os.Exit(2)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	httpAddr := fs.String("http", ":7071", "HTTP listen address (JSON v1 API + ops plane)")
	tcpAddr := fs.String("tcp", ":7070", "binary-protocol listen address (empty to disable)")
	shards := fs.Int("shards", 8, "lock-striped shards (power of two)")
	rows := fs.Int("rows", 1<<16, "total row-entry capacity across shards")
	rowSize := fs.Int("row-size", 64, "keys per row (power of two)")
	assoc := fs.Int("assoc", 16, "per-shard set associativity")
	repl := fs.String("repl", "lrw", "replacement policy: lrw, lrw-bip, rwip, max-dirty, min-dirty")
	seed := fs.Int64("seed", 1, "replacement randomness seed")
	fs.Parse(args)

	policy, err := dbi.ParseReplacement(*repl)
	if err != nil {
		return err
	}
	tr, err := dbi.NewSharded(*shards,
		dbi.WithRows(*rows), dbi.WithRowSize(*rowSize),
		dbi.WithAssociativity(*assoc), dbi.WithReplacement(policy), dbi.WithSeed(*seed))
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	srv := dbiserve.New(tr, reg)

	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("dbiserved: binary protocol on %s\n", ln.Addr())
		go func() {
			if err := srv.ServeBinary(ln); err != nil {
				fmt.Fprintln(os.Stderr, "dbiserved: binary listener:", err)
				os.Exit(1)
			}
		}()
	}
	hln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return err
	}
	fmt.Printf("dbiserved: HTTP v1 + ops plane on %s (%d shards × %d rows × %d keys/row)\n",
		hln.Addr(), tr.ShardCount(), *rows/tr.ShardCount(), *rowSize)
	return http.Serve(hln, srv.Handler())
}

func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	addrF := fs.String("addr", "localhost:7070", "server address (binary TCP, or HTTP host:port with -protocol json)")
	proto := fs.String("protocol", "binary", "protocol to drive: binary or json")
	clients := fs.Int("clients", 64, "concurrent client connections")
	batch := fs.Int("batch", 128, "keys per request")
	durF := fs.Duration("duration", 10*time.Second, "measurement length")
	profile := fs.String("profile", "stream", "internal/trace profile to replay")
	seed := fs.Int64("seed", 1, "trace seed")
	rate := fs.Float64("rate", 0, "target requests/sec across all clients (0 = closed loop)")
	jsonOut := fs.String("json", "", "write the LoadReport JSON to this file ('-' for stdout only)")
	minOps := fs.Float64("min-ops", 0, "gate: fail unless SetDirty ops/sec >= this")
	maxP99 := fs.Duration("max-p99", 0, "gate: fail if request p99 exceeds this")
	fs.Parse(args)

	rep, err := dbiserve.RunLoad(context.Background(), dbiserve.LoadConfig{
		Addr: *addrF, Protocol: *proto, Clients: *clients, Batch: *batch,
		Duration: *durF, Profile: *profile, Seed: *seed, Rate: *rate,
	})
	if err != nil {
		return err
	}
	fmt.Printf("dbiserved loadtest: %s, %d clients × %d-key batches, %.1fs\n",
		rep.Protocol, rep.Clients, rep.Batch, rep.Seconds)
	fmt.Printf("  %d requests (%.0f/s), %d SetDirty ops (%.0f/s), %d evicted, %d flushed, %d errors\n",
		rep.Requests, rep.ReqSec, rep.SetKeys, rep.SetOpsSec, rep.Evicted, rep.Flushed, rep.Errors)
	fmt.Printf("  latency µs: p50 %d, p95 %d, p99 %d, mean %.0f\n",
		rep.P50us, rep.P95us, rep.P99us, rep.MeanUs)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	if rep.Errors > 0 {
		return fmt.Errorf("%d request errors", rep.Errors)
	}
	if *minOps > 0 && rep.SetOpsSec < *minOps {
		return fmt.Errorf("gate: %.0f SetDirty ops/sec below floor %.0f", rep.SetOpsSec, *minOps)
	}
	if *maxP99 > 0 && time.Duration(rep.P99us)*time.Microsecond > *maxP99 {
		return fmt.Errorf("gate: p99 %dµs over ceiling %s", rep.P99us, *maxP99)
	}
	return nil
}
