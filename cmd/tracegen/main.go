// Command tracegen materializes a synthetic benchmark trace to a file
// for inspection or replay.
//
// Usage:
//
//	tracegen -bench lbm -n 100000 -o lbm.trace
//	tracegen -bench mcf -n 1000 -dump   # print records to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"dbisim/internal/trace"
)

func main() {
	var (
		bench = flag.String("bench", "stream", "benchmark model")
		n     = flag.Uint64("n", 100_000, "records to generate")
		out   = flag.String("o", "", "output file (required unless -dump)")
		dump  = flag.Bool("dump", false, "print records as text instead of writing a file")
		seed  = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	p, err := trace.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	gen := trace.New(p, 0, *seed)

	if *dump {
		for i := uint64(0); i < *n; i++ {
			r := gen.Next()
			fmt.Printf("+%d %-5s %#x\n", r.Gap, r.Kind, r.Addr)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "need -o or -dump")
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := uint64(0); i < *n; i++ {
		if err := w.Write(gen.Next()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records of %s to %s\n", w.Count(), *bench, *out)
}
