package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"dbisim/internal/sweep"
	"dbisim/internal/telemetry"
)

// loadRecords reads either a dbibench sweep Report (top-level "cells"
// array) or a single dbisim Record, returning the cells that match the
// -cell substring filter and carry attribution data, plus the report's
// schema string (empty for bare records and pre-schema reports).
func loadRecords(path, cellFilter string) ([]sweep.Record, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var rep sweep.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, "", fmt.Errorf("%s: %v", path, err)
	}
	recs := rep.Cells
	if len(recs) == 0 {
		var one sweep.Record
		if err := json.Unmarshal(data, &one); err != nil || one.Key == "" {
			return nil, "", fmt.Errorf("%s: neither a sweep report nor a cell record", path)
		}
		recs = []sweep.Record{one}
	}
	var out []sweep.Record
	var withoutAttr int
	for _, r := range recs {
		if cellFilter != "" && !strings.Contains(r.Key, cellFilter) {
			continue
		}
		if r.Attr == nil {
			withoutAttr++
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		if withoutAttr > 0 {
			return nil, "", fmt.Errorf("%s: %d matching cell(s) but none carry attribution data (rerun with -attr)", path, withoutAttr)
		}
		return nil, "", fmt.Errorf("%s: no cells match %q", path, cellFilter)
	}
	return out, rep.Schema, nil
}

// agg is the sum of one window kind across the selected cells: total
// simulated cycles plus per-category and per-domain charges by name.
type agg struct {
	cells  int
	cycles uint64
	cats   map[string]uint64
	doms   map[string]uint64
}

func (a *agg) add(w telemetry.AttrWindow) {
	a.cells++
	a.cycles += w.Cycles
	for k, v := range w.Categories {
		a.cats[k] += v
	}
	for k, v := range w.Domains {
		a.doms[k] += v
	}
}

// aggregate sums the chosen windows ("measure", "warmup" or "both")
// across records, reconciling each window first so a corrupt or
// version-skewed file fails before any numbers are printed.
func aggregate(recs []sweep.Record, window string) (*agg, error) {
	a := &agg{cats: map[string]uint64{}, doms: map[string]uint64{}}
	for _, r := range recs {
		for _, w := range []struct {
			name string
			win  telemetry.AttrWindow
		}{{"warmup", r.Attr.Warmup}, {"measure", r.Attr.Measure}} {
			if window != "both" && window != w.name {
				continue
			}
			if err := w.win.Reconcile(); err != nil {
				return nil, fmt.Errorf("cell %s %s window: %v", r.Key, w.name, err)
			}
			a.add(w.win)
		}
	}
	a.cells = len(recs)
	return a, nil
}

func parseWindow(s string, allowBoth bool) (string, error) {
	switch s {
	case "measure", "warmup":
		return s, nil
	case "both":
		if allowBoth {
			return s, nil
		}
	}
	return "", fmt.Errorf("invalid -window %q", s)
}

// reportCmd implements `dbiscope report`.
func reportCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	cell := fs.String("cell", "", "only cells whose key contains this substring")
	window := fs.String("window", "measure", "which window to report: measure, warmup or both")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report wants exactly one file, got %d", fs.NArg())
	}
	win, err := parseWindow(*window, true)
	if err != nil {
		return err
	}
	recs, _, err := loadRecords(fs.Arg(0), *cell)
	if err != nil {
		return err
	}
	a, err := aggregate(recs, win)
	if err != nil {
		return err
	}
	return writeReport(w, fs.Arg(0), win, a)
}

// writeReport renders one percent-of-total table per domain plus the
// reconciliation summary. Aggregated windows reconcile iff every
// constituent window did (sums of equal sums are equal), and aggregate
// already verified each one — the recheck here is on the summed
// numbers the reader actually sees.
func writeReport(w io.Writer, path, window string, a *agg) error {
	fmt.Fprintf(w, "dbiscope report — %s (%d cell(s), %s window)\n", path, a.cells, window)
	fmt.Fprintf(w, "window length: %d simulated cycles (summed across cells)\n", a.cycles)

	cats := telemetry.AttrCategories()
	for _, d := range telemetry.AttrDomains() {
		var rows []struct {
			name string
			n    uint64
		}
		var sum uint64
		for _, c := range cats {
			if c.Domain != d.Name {
				continue
			}
			if n := a.cats[c.Name]; n != 0 {
				rows = append(rows, struct {
					name string
					n    uint64
				}{c.Name, n})
				sum += n
			}
		}
		if len(rows) == 0 && a.doms[d.Name] == 0 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })

		// Closed domains show share of the independently-counted
		// total; open ones show share of simulated window cycles,
		// which may exceed 100% (components overlap in time).
		denom := a.doms[d.Name]
		denomName := "domain total"
		if !d.Closed {
			denom = a.cycles
			denomName = "window cycles"
		}
		fmt.Fprintf(w, "\n%s (%s, ", d.Name, d.Unit)
		if d.Closed {
			fmt.Fprintf(w, "closed)\n")
		} else {
			fmt.Fprintf(w, "open)\n")
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, r := range rows {
			fmt.Fprintf(tw, "  %s\t%d\t%s\n", r.name, r.n, percent(r.n, denom))
		}
		if d.Closed {
			fmt.Fprintf(tw, "  total\t%d\t= 100%% of %s\n", denom, denomName)
		} else {
			fmt.Fprintf(tw, "  (shares of %d %s; may exceed 100%%)\t\t\n", denom, denomName)
		}
		tw.Flush()
		if d.Closed {
			if sum != a.doms[d.Name] {
				return fmt.Errorf("domain %s does not reconcile: categories sum to %d %s, total charged %d",
					d.Name, sum, d.Unit, a.doms[d.Name])
			}
			fmt.Fprintf(w, "  reconciled: %d categories sum exactly to the %s total\n", len(rows), d.Name)
		}
	}
	return nil
}

func percent(n, denom uint64) string {
	if denom == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(denom))
}

// diffCmd implements `dbiscope diff`: aggregate two files the same way
// and rank categories by how much they moved.
func diffCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	cell := fs.String("cell", "", "only cells whose key contains this substring")
	window := fs.String("window", "measure", "which window to diff: measure or warmup")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two files, got %d", fs.NArg())
	}
	win, err := parseWindow(*window, false)
	if err != nil {
		return err
	}
	aggs := make([]*agg, 2)
	schemas := make([]string, 2)
	for i := 0; i < 2; i++ {
		recs, schema, err := loadRecords(fs.Arg(i), *cell)
		if err != nil {
			return err
		}
		schemas[i] = schema
		if aggs[i], err = aggregate(recs, win); err != nil {
			return err
		}
	}
	// Differing schemas mean the attribution categories or units may
	// not line up — a delta table would compare unlike quantities.
	// (Bare records and pre-schema reports have no schema and are
	// assumed current.)
	if schemas[0] != "" && schemas[1] != "" && schemas[0] != schemas[1] {
		return fmt.Errorf("schema mismatch: %s is %q but %s is %q — attribution units may differ, refusing to diff",
			fs.Arg(0), schemas[0], fs.Arg(1), schemas[1])
	}
	writeDiff(w, fs.Arg(0), fs.Arg(1), win, aggs[0], aggs[1])
	return nil
}

func writeDiff(w io.Writer, pathA, pathB, window string, a, b *agg) {
	fmt.Fprintf(w, "dbiscope diff — %s (%d cell(s)) vs %s (%d cell(s)), %s window\n",
		pathA, a.cells, pathB, b.cells, window)
	fmt.Fprintf(w, "window length: %d -> %d simulated cycles (%s)\n",
		a.cycles, b.cycles, signedDelta(a.cycles, b.cycles))

	type row struct {
		name, unit string
		a, b       uint64
	}
	var rows []row
	for _, c := range telemetry.AttrCategories() {
		av, bv := a.cats[c.Name], b.cats[c.Name]
		if av == 0 && bv == 0 {
			continue
		}
		unit := "cycles"
		for _, d := range telemetry.AttrDomains() {
			if d.Name == c.Domain {
				unit = d.Unit
			}
		}
		rows = append(rows, row{c.Name, unit, av, bv})
	}
	sort.Slice(rows, func(i, j int) bool { return absDelta(rows[i].a, rows[i].b) > absDelta(rows[j].a, rows[j].b) })

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  category\told\tnew\tdelta\t\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%s %s\t%s\n", r.name, r.a, r.b, signedDelta(r.a, r.b), r.unit, relDelta(r.a, r.b))
	}
	tw.Flush()
}

func absDelta(a, b uint64) uint64 {
	if b > a {
		return b - a
	}
	return a - b
}

func signedDelta(a, b uint64) string {
	if b >= a {
		return fmt.Sprintf("+%d", b-a)
	}
	return fmt.Sprintf("-%d", a-b)
}

func relDelta(a, b uint64) string {
	if a == 0 {
		return "(new)"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(b)-float64(a))/float64(a))
}
