// Command dbiscope is the offline analyzer for attribution data: it
// reads result JSON produced by `dbisim -attr -json` or `dbibench
// -attr -json` and answers "where did the simulated cycles and DRAM
// bytes go?" top-down, the way a hardware profiler's attribution view
// would.
//
// Usage:
//
//	dbiscope report out.json              # percent-of-total tables per domain
//	dbiscope report -cell mcf out.json    # only cells whose key contains "mcf"
//	dbiscope report -window warmup x.json # warmup window instead of measure
//	dbiscope diff base.json new.json      # categories ranked by delta
//	dbiscope diff -cell fig6 a.json b.json
//
// `report` aggregates the selected cells' attribution windows and
// prints one table per domain with each category's share of the domain
// total, followed by a reconciliation line per closed domain proving
// the categories sum exactly to the independently-counted total (a
// mismatch makes the exit status non-zero — it means an instrumentation
// call site is missing). Open domains (cpu, dbi) report shares of the
// window's simulated cycles instead; those shares may exceed 100%
// because cores overlap in time (see DESIGN.md §11 for the overlap
// semantics).
//
// `diff` aggregates two files the same way and ranks categories by
// absolute delta, the first question after a mechanism change: which
// traffic class moved?
package main

import (
	"fmt"
	"os"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dbiscope report [-cell substr] [-window measure|warmup|both] file.json
  dbiscope diff [-cell substr] [-window measure|warmup] base.json new.json
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = reportCmd(os.Args[2:], os.Stdout)
	case "diff":
		err = diffCmd(os.Args[2:], os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "dbiscope: unknown subcommand %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbiscope:", err)
		os.Exit(1)
	}
}
