package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbisim/internal/sweep"
	"dbisim/internal/telemetry"
)

// balancedWindow builds a window whose closed domains reconcile by
// construction.
func balancedWindow(scale uint64) telemetry.AttrWindow {
	return telemetry.AttrWindow{
		Cycles: 1000 * scale,
		Categories: map[string]uint64{
			"cpu.issue":         600 * scale,
			"llc.tag_probe":     200 * scale,
			"llc.tag_filler":    100 * scale,
			"dram.bank_service": 400 * scale,
			"mem.read_fill":     64 * 30 * scale,
			"wb.demand":         64 * 10 * scale,
		},
		Domains: map[string]uint64{
			"llc_port":  300 * scale,
			"dram_bank": 400 * scale,
			"dram_bus":  64 * 40 * scale,
		},
	}
}

func record(key string, scale uint64) sweep.Record {
	return sweep.Record{
		Key:        key,
		Experiment: "test",
		Seed:       1,
		Metrics:    map[string]float64{"ipc": 0.5},
		Attr: &telemetry.AttrReport{
			Warmup:  balancedWindow(scale),
			Measure: balancedWindow(2 * scale),
		},
	}
}

func writeFile(t *testing.T, name string, doc any) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportOnSweepFile(t *testing.T) {
	rep := sweep.Report{Cells: []sweep.Record{record("fig6/mcf", 1), record("fig6/lbm", 3)}}
	path := writeFile(t, "sweep.json", rep)
	var buf bytes.Buffer
	if err := reportCmd([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 cell(s), measure window") {
		t.Errorf("cell count/window missing:\n%s", out)
	}
	// Aggregation across cells: measure windows are 2× and 6× scale.
	if !strings.Contains(out, "window length: 8000 simulated cycles") {
		t.Errorf("aggregated cycles wrong:\n%s", out)
	}
	for _, want := range []string{
		"reconciled: 2 categories sum exactly to the llc_port total",
		"reconciled: 1 categories sum exactly to the dram_bank total",
		"reconciled: 2 categories sum exactly to the dram_bus total",
		"may exceed 100%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in report:\n%s", want, out)
		}
	}
}

func TestReportOnSingleRecord(t *testing.T) {
	path := writeFile(t, "one.json", record("dbisim/stream", 2))
	var buf bytes.Buffer
	if err := reportCmd([]string{"-window", "warmup", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 cell(s), warmup window") {
		t.Errorf("single-record load failed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "window length: 2000 simulated cycles") {
		t.Errorf("warmup window not selected:\n%s", buf.String())
	}
}

func TestReportCellFilter(t *testing.T) {
	rep := sweep.Report{Cells: []sweep.Record{record("fig6/mcf", 1), record("fig6/lbm", 3)}}
	path := writeFile(t, "sweep.json", rep)
	var buf bytes.Buffer
	if err := reportCmd([]string{"-cell", "mcf", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 cell(s)") {
		t.Errorf("filter did not narrow to one cell:\n%s", buf.String())
	}
	if err := reportCmd([]string{"-cell", "nonexistent", path}, &buf); err == nil {
		t.Error("no-match filter did not error")
	}
}

func TestReportRejectsUnbalancedWindow(t *testing.T) {
	r := record("bad", 1)
	r.Attr.Measure.Domains["dram_bus"] += 64 // now categories ≠ total
	path := writeFile(t, "bad.json", r)
	err := reportCmd([]string{path}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "reconcile") {
		t.Fatalf("unbalanced window accepted: %v", err)
	}
}

func TestReportRejectsAttrlessFile(t *testing.T) {
	r := record("plain", 1)
	r.Attr = nil
	path := writeFile(t, "plain.json", r)
	err := reportCmd([]string{path}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-attr") {
		t.Fatalf("attr-less file should suggest rerunning with -attr, got: %v", err)
	}
}

func TestDiffRanksByDelta(t *testing.T) {
	a := record("cell", 1)
	b := record("cell", 1)
	// Move two categories by different amounts: wb.demand by 640
	// bytes, llc.tag_probe by 10 cycles. The bigger mover ranks first.
	b.Attr.Measure.Categories["wb.demand"] += 640
	b.Attr.Measure.Domains["dram_bus"] += 640
	b.Attr.Measure.Categories["llc.tag_probe"] += 10
	b.Attr.Measure.Domains["llc_port"] += 10
	pa := writeFile(t, "a.json", a)
	pb := writeFile(t, "b.json", b)
	var buf bytes.Buffer
	if err := diffCmd([]string{pa, pb}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wb := strings.Index(out, "wb.demand")
	probe := strings.Index(out, "llc.tag_probe")
	if wb < 0 || probe < 0 {
		t.Fatalf("moved categories missing:\n%s", out)
	}
	if wb > probe {
		t.Errorf("delta ranking wrong (wb.demand moved more but ranks below):\n%s", out)
	}
	if !strings.Contains(out, "+640 bytes") {
		t.Errorf("delta value missing:\n%s", out)
	}
}

func TestDiffRejectsBothWindow(t *testing.T) {
	path := writeFile(t, "a.json", record("cell", 1))
	if err := diffCmd([]string{"-window", "both", path, path}, &bytes.Buffer{}); err == nil {
		t.Error("diff accepted -window both")
	}
}
