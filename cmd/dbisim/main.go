// Command dbisim runs one simulated configuration and prints its
// statistics: per-core IPC/MPKI, DRAM row hit rates, tag-lookup and
// memory-write rates — the quantities Figure 6 of the DBI paper reports.
//
// Usage:
//
//	dbisim -mech DBI+AWB+CLB -bench lbm
//	dbisim -cores 2 -bench GemsFDTD,libquantum -mech DAWB -paper
//	dbisim -trace trace.json -timeseries ts.json -epoch 100000
//	dbisim -json result.json
//
// The telemetry flags are additive observers: enabling them changes
// nothing about the simulated run (the printed statistics are
// bit-identical with and without them).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbisim/internal/cliflags"
	"dbisim/internal/config"
	"dbisim/internal/sweep"
	"dbisim/internal/system"
	"dbisim/internal/trace"
)

func parseMech(s string) (config.Mechanism, error) {
	for _, m := range config.AllMechanisms() {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q (want one of %v)", s, config.AllMechanisms())
}

// resultRecord shapes the run as one sweep.Record, so a single dbisim
// run and a dbibench sweep cell share the same JSON schema.
func resultRecord(mech string, benches []string, seed int64, r system.Results) sweep.Record {
	return sweep.Record{
		Key: sweep.Key{
			Experiment: "dbisim",
			Benchmark:  strings.Join(benches, ","),
			Mechanism:  mech,
			Cores:      len(benches),
		}.String(),
		Experiment: "dbisim",
		Benchmark:  strings.Join(benches, ","),
		Mechanism:  mech,
		Cores:      len(benches),
		Seed:       seed,
		Metrics:    r.Metrics(),
		Attr:       r.Attr,
	}
}

func main() {
	var (
		mechName = flag.String("mech", "DBI+AWB+CLB", "LLC mechanism (Baseline, TA-DIP, DAWB, VWQ, SkipCache, DBI, DBI+AWB, DBI+CLB, DBI+AWB+CLB)")
		benches  = flag.String("bench", "stream", "comma-separated benchmark per core")
		cores    = flag.Int("cores", 0, "core count (default: number of benchmarks)")
		paper    = flag.Bool("paper", false, "use the full Table-1 configuration instead of the scaled one")
		warmup   = flag.Uint64("warmup", 0, "override warmup instructions per core")
		measure  = flag.Uint64("measure", 0, "override measured instructions per core")
		seed     = flag.Int64("seed", 42, "simulation seed")
		attr     = flag.Bool("attr", false,
			"attach a cycle/bandwidth attribution ledger; the -json record gains an attr block (analyze with dbiscope)")
		list = flag.Bool("list", false, "list benchmark models and exit")

		tel cliflags.Telemetry
		out cliflags.Output
		ops cliflags.Ops
	)
	tel.Register(flag.CommandLine)
	out.Register(flag.CommandLine,
		"write machine-readable results to this file (sweep-record schema; \"-\" for stdout)")
	ops.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range trace.Benchmarks() {
			p, _ := trace.ByName(n)
			fmt.Printf("%-12s footprint=%dMB mem=%.2f store=%.2f read=%s write=%s\n",
				n, p.FootprintBytes>>20, p.MemFraction, p.StoreFraction,
				p.ReadIntensity, p.WriteIntensity)
		}
		return
	}

	mech, err := parseMech(*mechName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := strings.Split(*benches, ",")
	n := *cores
	if n == 0 {
		n = len(names)
	}
	for len(names) < n {
		names = append(names, names[len(names)-1])
	}
	names = names[:n]

	var cfg config.SystemConfig
	if *paper {
		cfg = config.Paper(n, mech)
	} else {
		cfg = config.Scaled(n, mech)
	}
	if *warmup > 0 {
		cfg.WarmupInstructions = *warmup
	}
	if *measure > 0 {
		cfg.MeasureInstructions = *measure
	}

	opts := tel.Options()
	if *attr {
		opts = append(opts, system.WithAttribution())
	}
	sys, err := system.New(cfg, names, *seed, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The ops server scrapes this machine's component counters live.
	// Reads are unsynchronized monitoring approximations (see
	// System.RegisterMetrics); the simulated Results are untouched.
	srv, err := ops.Start(sys.RegisterMetrics, "dbisim", os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbisim:", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}
	r := sys.Run()

	if err := tel.WriteArtifacts(sys, "dbisim", os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dbisim:", err)
		os.Exit(1)
	}
	if out.Enabled() {
		if err := out.Write(resultRecord(*mechName, names, *seed, r)); err != nil {
			fmt.Fprintln(os.Stderr, "dbisim:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("mechanism     %s\n", r.Mechanism)
	fmt.Printf("cores         %d\n", n)
	for i, c := range r.PerCore {
		fmt.Printf("core %d        %-12s IPC=%.4f cycles=%d MPKI=%.2f L1hit=%.3f\n",
			i, c.Bench, c.IPC, c.Cycles, c.MPKI, c.L1HitRate)
	}
	fmt.Printf("write RHR     %.3f\n", r.WriteRowHitRate)
	fmt.Printf("read RHR      %.3f\n", r.ReadRowHitRate)
	fmt.Printf("tag PKI       %.2f\n", r.TagLookupsPKI)
	fmt.Printf("mem WPKI      %.2f\n", r.MemWritesPKI)
	fmt.Printf("mem RPKI      %.2f\n", r.MemReadsPKI)
	fmt.Printf("LLC MPKI      %.2f\n", r.LLCMPKI)
	fmt.Printf("bypasses      %d\n", r.Bypasses)
	fmt.Printf("filler lkups  %d\n", r.FillerLookups)
	fmt.Printf("DBI evicts    %d\n", r.DBIEvictions)
	fmt.Printf("avg read lat  %.1f\n", r.AvgReadLatency)
	fmt.Printf("drains        %d\n", r.DrainsStarted)
	st := &sys.LLC.Stat
	fmt.Printf("wb reqs       %d\n", st.WritebackReqs.Value())
	fmt.Printf("victim WBs    %d\n", st.VictimWBs.Value())
	fmt.Printf("proactive WBs %d\n", st.ProactiveWBs.Value())
	fmt.Printf("dbi-evict WBs %d\n", st.DBIEvictionWBs.Value())
	if sys.LLC.DBI != nil {
		fmt.Printf("dbi writes    %d\n", sys.LLC.DBI.Stat.Writes.Value())
		fmt.Printf("dirty/evict   %.2f\n", sys.LLC.DBI.Stat.DirtyAtEviction.Mean())
	}
}
