package dbi

import (
	"fmt"
	"sync"

	"dbisim/internal/addr"
	coredbi "dbisim/internal/dbi"
)

// Batcher extends Tracker with the batch forms the wire protocols are
// built on: one lock round per shard per batch instead of one per key,
// results appended into caller-owned buffers so a pipelined server
// allocates nothing per request.
type Batcher interface {
	Tracker
	// SetDirtyBatch marks every key dirty in order, appending all
	// evicted keys to dst and returning it.
	SetDirtyBatch(keys []Key, dst []Key) []Key
	// IsDirtyBatch appends one answer per key to dst and returns it.
	IsDirtyBatch(keys []Key, dst []bool) []bool
	// FlushRowsInto flushes the row of each key (duplicate rows flush
	// once — the first key wins, later ones find the row clean),
	// appending every harvested key to dst.
	FlushRowsInto(keys []Key, dst []Key) []Key
}

// geom maps keys to rows.
type geom struct {
	shift   uint
	rowSize int
}

func (g geom) rowOf(k Key) Row { return Row(uint64(k) >> g.shift) }

// shard is one internal/dbi core behind one mutex, plus the recycled
// scratch buffer its queries append into. The trailing pad keeps
// neighboring shards' mutexes off one cache line under striping.
type shard struct {
	mu          sync.Mutex
	d           *coredbi.DBI
	scratch     []addr.BlockAddr
	flushes     uint64
	flushedKeys uint64
	_           [32]byte
}

func (s *shard) setDirty(b addr.BlockAddr, dst []Key) []Key {
	s.mu.Lock()
	ev, evicted := s.d.SetDirtyInto(b, s.scratch)
	if evicted {
		s.scratch = ev.Blocks[:0]
		for _, blk := range ev.Blocks {
			dst = append(dst, Key(blk))
		}
	}
	s.mu.Unlock()
	return dst
}

func (s *shard) isDirty(b addr.BlockAddr) bool {
	s.mu.Lock()
	v := s.d.IsDirty(b)
	s.mu.Unlock()
	return v
}

func (s *shard) region(b addr.BlockAddr, dst []Key) []Key {
	s.mu.Lock()
	blocks := s.d.DirtyBlocksInRegionInto(b, s.scratch[:0])
	s.scratch = blocks
	for _, blk := range blocks {
		dst = append(dst, Key(blk))
	}
	s.mu.Unlock()
	return dst
}

func (s *shard) flushRow(b addr.BlockAddr, dst []Key) []Key {
	s.mu.Lock()
	blocks := s.d.FlushRegionInto(b, s.scratch[:0])
	s.scratch = blocks
	s.flushes++
	s.flushedKeys += uint64(len(blocks))
	for _, blk := range blocks {
		dst = append(dst, Key(blk))
	}
	s.mu.Unlock()
	return dst
}

func (s *shard) addStats(st *Stats) {
	s.mu.Lock()
	c := &s.d.Stat
	st.ValidRows += s.d.ValidEntries()
	st.DirtyKeys += s.d.DirtyCount()
	st.Lookups += c.Lookups.Value()
	st.Writes += c.Writes.Value()
	st.Inserts += c.EntryInserts.Value()
	st.Evictions += c.Evictions.Value()
	st.EvictedKeys += c.EvictionBlocks.Value()
	st.Flushes += s.flushes
	st.FlushedKeys += s.flushedKeys
	s.mu.Unlock()
}

// build constructs one shard's core sized for rows entries.
func (c cfg) build(rows int, seed int64) (*coredbi.DBI, error) {
	repl, err := c.repl.core()
	if err != nil {
		return nil, err
	}
	geo, err := addr.NewGeometry(1, uint64(c.rowSize), 1)
	if err != nil {
		return nil, fmt.Errorf("dbi: row size %d: %w", c.rowSize, err)
	}
	prm := coredbi.DefaultParams()
	prm.AlphaNum, prm.AlphaDen = 1, 1
	prm.Granularity = c.rowSize
	prm.Associativity = c.assoc
	prm.Replacement = repl
	return coredbi.New(
		coredbi.WithGeometry(geo),
		coredbi.WithParams(prm),
		coredbi.WithRows(rows),
		coredbi.WithSeed(seed),
	)
}

func (c cfg) validate() error {
	switch {
	case c.rows < 1:
		return fmt.Errorf("dbi: row capacity %d", c.rows)
	case c.rowSize < 1 || c.rowSize&(c.rowSize-1) != 0:
		return fmt.Errorf("dbi: row size %d not a power of two", c.rowSize)
	case c.assoc < 1:
		return fmt.Errorf("dbi: associativity %d", c.assoc)
	}
	return nil
}

func (c cfg) geom() geom {
	g := geom{rowSize: c.rowSize}
	for v := uint64(c.rowSize); v > 1; v >>= 1 {
		g.shift++
	}
	return g
}

// Single is a Tracker over one core behind one lock — the reference
// implementation, and what each shard of a Sharded tracker is.
type Single struct {
	g  geom
	sh shard
}

// New builds a single-core tracker.
func New(opts ...Option) (*Single, error) {
	c := defaults()
	for _, fn := range opts {
		fn(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	d, err := c.build(c.rows, c.seed)
	if err != nil {
		return nil, err
	}
	return &Single{g: c.geom(), sh: shard{d: d}}, nil
}

// RowOf returns the row containing k.
func (t *Single) RowOf(k Key) Row { return t.g.rowOf(k) }

// RowSize returns keys per row.
func (t *Single) RowSize() int { return t.g.rowSize }

// SetDirty implements Tracker.
func (t *Single) SetDirty(k Key) []Key { return t.sh.setDirty(addr.BlockAddr(k), nil) }

// IsDirty implements Tracker.
func (t *Single) IsDirty(k Key) bool { return t.sh.isDirty(addr.BlockAddr(k)) }

// DirtyBlocksInRegion implements Tracker.
func (t *Single) DirtyBlocksInRegion(k Key) []Key { return t.sh.region(addr.BlockAddr(k), nil) }

// FlushRow implements Tracker.
func (t *Single) FlushRow(k Key) []Key { return t.sh.flushRow(addr.BlockAddr(k), nil) }

// SetDirtyBatch implements Batcher.
func (t *Single) SetDirtyBatch(keys []Key, dst []Key) []Key {
	for _, k := range keys {
		dst = t.sh.setDirty(addr.BlockAddr(k), dst)
	}
	return dst
}

// IsDirtyBatch implements Batcher.
func (t *Single) IsDirtyBatch(keys []Key, dst []bool) []bool {
	for _, k := range keys {
		dst = append(dst, t.sh.isDirty(addr.BlockAddr(k)))
	}
	return dst
}

// FlushRowsInto implements Batcher.
func (t *Single) FlushRowsInto(keys []Key, dst []Key) []Key {
	for _, k := range keys {
		dst = t.sh.flushRow(addr.BlockAddr(k), dst)
	}
	return dst
}

// Stats implements Tracker.
func (t *Single) Stats() Stats {
	st := Stats{Shards: 1, Rows: t.sh.d.Entries(), RowSize: t.g.rowSize}
	t.sh.addStats(&st)
	return st
}

// fibMix is the 64-bit Fibonacci-hashing multiplier (2^64/φ, odd).
const fibMix = 0x9E3779B97F4A7C15

// Sharded stripes rows across a power-of-two number of lock-striped
// cores. Shard choice hashes the ROW, not the key, so every key of a
// row lands in the same shard: row queries and AWB flushes are
// single-lock, and a row's eviction batch never spans shards. The
// hash takes the product's top bits, disjoint from the bit range each
// core's own set index uses, so shard and set placement decorrelate.
type Sharded struct {
	g          geom
	shards     []shard
	shardShift uint
}

// NewSharded builds an n-shard tracker (n a power of two). The row
// capacity from WithRows is the total across shards, split evenly
// (rounded up, so effective capacity is never below the request).
func NewSharded(n int, opts ...Option) (*Sharded, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dbi: shard count %d not a power of two", n)
	}
	c := defaults()
	for _, fn := range opts {
		fn(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	t := &Sharded{g: c.geom(), shards: make([]shard, n), shardShift: 64}
	for v := n; v > 1; v >>= 1 {
		t.shardShift--
	}
	perShard := (c.rows + n - 1) / n
	for i := range t.shards {
		d, err := c.build(perShard, c.seed+int64(i))
		if err != nil {
			return nil, err
		}
		t.shards[i].d = d
	}
	return t, nil
}

// ShardOf returns the shard index k's row maps to.
func (t *Sharded) ShardOf(k Key) int {
	return int((uint64(t.g.rowOf(k)) * fibMix) >> t.shardShift)
}

// ShardCount returns the number of shards.
func (t *Sharded) ShardCount() int { return len(t.shards) }

// RowOf returns the row containing k.
func (t *Sharded) RowOf(k Key) Row { return t.g.rowOf(k) }

// RowSize returns keys per row.
func (t *Sharded) RowSize() int { return t.g.rowSize }

func (t *Sharded) shardFor(k Key) *shard { return &t.shards[t.ShardOf(k)] }

// SetDirty implements Tracker.
func (t *Sharded) SetDirty(k Key) []Key { return t.shardFor(k).setDirty(addr.BlockAddr(k), nil) }

// IsDirty implements Tracker.
func (t *Sharded) IsDirty(k Key) bool { return t.shardFor(k).isDirty(addr.BlockAddr(k)) }

// DirtyBlocksInRegion implements Tracker.
func (t *Sharded) DirtyBlocksInRegion(k Key) []Key {
	return t.shardFor(k).region(addr.BlockAddr(k), nil)
}

// FlushRow implements Tracker.
func (t *Sharded) FlushRow(k Key) []Key { return t.shardFor(k).flushRow(addr.BlockAddr(k), nil) }

// SetDirtyBatch implements Batcher. Keys are applied in order within
// each shard; cross-shard order inside one batch is unspecified (the
// answers — which keys each shard evicts — depend only on the
// per-shard subsequence, so results are deterministic for a given
// batch).
func (t *Sharded) SetDirtyBatch(keys []Key, dst []Key) []Key {
	if len(t.shards) == 1 {
		s := &t.shards[0]
		s.mu.Lock()
		for _, k := range keys {
			dst = t.lockedSet(s, addr.BlockAddr(k), dst)
		}
		s.mu.Unlock()
		return dst
	}
	for si := range t.shards {
		s := &t.shards[si]
		locked := false
		for _, k := range keys {
			if t.ShardOf(k) != si {
				continue
			}
			if !locked {
				s.mu.Lock()
				locked = true
			}
			dst = t.lockedSet(s, addr.BlockAddr(k), dst)
		}
		if locked {
			s.mu.Unlock()
		}
	}
	return dst
}

// lockedSet is setDirty with s.mu already held, for the batch paths.
func (t *Sharded) lockedSet(s *shard, b addr.BlockAddr, dst []Key) []Key {
	ev, evicted := s.d.SetDirtyInto(b, s.scratch)
	if evicted {
		s.scratch = ev.Blocks[:0]
		for _, blk := range ev.Blocks {
			dst = append(dst, Key(blk))
		}
	}
	return dst
}

// IsDirtyBatch implements Batcher. Answers stay in key order.
func (t *Sharded) IsDirtyBatch(keys []Key, dst []bool) []bool {
	for _, k := range keys {
		dst = append(dst, t.IsDirty(k))
	}
	return dst
}

// FlushRowsInto implements Batcher.
func (t *Sharded) FlushRowsInto(keys []Key, dst []Key) []Key {
	for _, k := range keys {
		dst = t.shardFor(k).flushRow(addr.BlockAddr(k), dst)
	}
	return dst
}

// Stats implements Tracker, aggregating across shards. Each shard is
// read under its own lock; the result is a consistent per-shard,
// approximate cross-shard snapshot.
func (t *Sharded) Stats() Stats {
	st := Stats{Shards: len(t.shards), RowSize: t.g.rowSize}
	for i := range t.shards {
		st.Rows += t.shards[i].d.Entries()
		t.shards[i].addStats(&st)
	}
	return st
}
