package dbi

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRowMapping(t *testing.T) {
	tr, err := New(WithRows(128), WithRowSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if tr.RowSize() != 64 {
		t.Fatalf("RowSize = %d, want 64", tr.RowSize())
	}
	for _, tc := range []struct {
		k Key
		r Row
	}{{0, 0}, {63, 0}, {64, 1}, {6400 + 7, 100}} {
		if got := tr.RowOf(tc.k); got != tc.r {
			t.Errorf("RowOf(%d) = %d, want %d", tc.k, got, tc.r)
		}
	}
}

func TestSetDirtyIsDirtyFlush(t *testing.T) {
	tr, err := New(WithRows(1024), WithRowSize(64))
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{0, 1, 63, 64, 1000, 1 << 30}
	for _, k := range keys {
		if ev := tr.SetDirty(k); len(ev) != 0 {
			t.Fatalf("SetDirty(%d) evicted %v with plenty of capacity", k, ev)
		}
	}
	for _, k := range keys {
		if !tr.IsDirty(k) {
			t.Errorf("IsDirty(%d) = false after SetDirty", k)
		}
	}
	if tr.IsDirty(2) {
		t.Error("IsDirty(2) = true, never set")
	}

	// Row 0 holds keys 0, 1, 63; region query sees all three.
	got := tr.DirtyBlocksInRegion(5)
	want := []Key{0, 1, 63}
	if !sameKeys(got, want) {
		t.Errorf("DirtyBlocksInRegion(5) = %v, want %v", got, want)
	}

	// FlushRow harvests and clears them; keys in other rows survive.
	flushed := tr.FlushRow(0)
	if !sameKeys(flushed, want) {
		t.Errorf("FlushRow(0) = %v, want %v", flushed, want)
	}
	for _, k := range want {
		if tr.IsDirty(k) {
			t.Errorf("IsDirty(%d) = true after flush", k)
		}
	}
	if !tr.IsDirty(64) || !tr.IsDirty(1000) {
		t.Error("flush of row 0 disturbed other rows")
	}
	if again := tr.FlushRow(0); len(again) != 0 {
		t.Errorf("second FlushRow(0) = %v, want empty", again)
	}

	st := tr.Stats()
	if st.Flushes != 2 || st.FlushedKeys != 3 {
		t.Errorf("Stats flushes=%d flushedKeys=%d, want 2 and 3", st.Flushes, st.FlushedKeys)
	}
	if st.DirtyKeys != len(keys)-len(want) {
		t.Errorf("DirtyKeys = %d, want %d", st.DirtyKeys, len(keys)-len(want))
	}
}

func TestEvictionReturnsDisplacedKeys(t *testing.T) {
	// Tiny tracker: capacity clamps to one set of `assoc` rows, so the
	// (assoc+1)-th distinct row must displace one and hand back its keys.
	tr, err := New(WithRows(4), WithRowSize(64), WithAssociativity(4))
	if err != nil {
		t.Fatal(err)
	}
	var evicted []Key
	inserted := map[Key]bool{}
	for r := 0; r < 5; r++ {
		k := Key(r * 64)
		inserted[k] = true
		evicted = append(evicted, tr.SetDirty(k)...)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %v, want exactly one key", evicted)
	}
	if !inserted[evicted[0]] {
		t.Fatalf("evicted key %d was never inserted", evicted[0])
	}
	if tr.IsDirty(evicted[0]) {
		t.Error("evicted key still reported dirty")
	}
	st := tr.Stats()
	if st.Evictions != 1 || st.EvictedKeys != 1 {
		t.Errorf("Stats evictions=%d evictedKeys=%d, want 1 and 1", st.Evictions, st.EvictedKeys)
	}
}

// TestShardedMatchesSingle drives an identical random workload through
// a Single and a Sharded tracker and requires identical answers to
// every query. Evictions differ (capacity is partitioned), so capacity
// is kept large enough that neither evicts.
func TestShardedMatchesSingle(t *testing.T) {
	single, err := New(WithRows(1<<14), WithRowSize(64))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(8, WithRows(1<<14), WithRowSize(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 4096)
	for i := range keys {
		keys[i] = Key(rng.Intn(1 << 16))
	}
	for _, k := range keys {
		if ev := single.SetDirty(k); len(ev) != 0 {
			t.Fatalf("single evicted at key %d; enlarge capacity", k)
		}
		if ev := sharded.SetDirty(k); len(ev) != 0 {
			t.Fatalf("sharded evicted at key %d; enlarge capacity", k)
		}
	}
	for probe := Key(0); probe < 1<<16; probe += 17 {
		if a, b := single.IsDirty(probe), sharded.IsDirty(probe); a != b {
			t.Fatalf("IsDirty(%d): single=%v sharded=%v", probe, a, b)
		}
	}
	for probe := Key(0); probe < 1<<16; probe += 640 {
		a, b := single.DirtyBlocksInRegion(probe), sharded.DirtyBlocksInRegion(probe)
		if !sameKeys(a, b) {
			t.Fatalf("DirtyBlocksInRegion(%d): single=%v sharded=%v", probe, a, b)
		}
	}
	for probe := Key(0); probe < 1<<16; probe += 640 {
		a, b := single.FlushRow(probe), sharded.FlushRow(probe)
		if !sameKeys(a, b) {
			t.Fatalf("FlushRow(%d): single=%v sharded=%v", probe, a, b)
		}
	}
	if a, b := single.Stats(), sharded.Stats(); a.DirtyKeys != b.DirtyKeys {
		t.Fatalf("DirtyKeys after flushes: single=%d sharded=%d", a.DirtyKeys, b.DirtyKeys)
	}
}

// TestBatchMatchesSingleOps checks the batch forms answer exactly like
// per-key calls on an identically-configured tracker.
func TestBatchMatchesSingleOps(t *testing.T) {
	for _, shards := range []int{1, 4} {
		mk := func() Batcher {
			tr, err := NewSharded(shards, WithRows(1<<12), WithRowSize(64))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}
		a, b := mk(), mk()
		rng := rand.New(rand.NewSource(11))
		keys := make([]Key, 2000)
		for i := range keys {
			keys[i] = Key(rng.Intn(1 << 15))
		}
		var evA []Key
		for _, k := range keys {
			evA = append(evA, a.SetDirty(k)...)
		}
		evB := b.SetDirtyBatch(keys, nil)
		if !sameKeys(evA, evB) {
			t.Fatalf("shards=%d: eviction sets differ: %v vs %v", shards, evA, evB)
		}
		probes := keys[:500]
		gotB := b.IsDirtyBatch(probes, nil)
		for i, k := range probes {
			if want := a.IsDirty(k); gotB[i] != want {
				t.Fatalf("shards=%d: IsDirtyBatch[%d] (key %d) = %v, want %v", shards, i, k, gotB[i], want)
			}
		}
		var flA []Key
		for _, k := range probes {
			flA = append(flA, a.FlushRow(k)...)
		}
		flB := b.FlushRowsInto(probes, nil)
		if !sameKeys(flA, flB) {
			t.Fatalf("shards=%d: flush sets differ (%d vs %d keys)", shards, len(flA), len(flB))
		}
	}
}

// TestShardDistribution hashes a dense row range and a strided key
// range across shards and requires every shard's share to stay within
// 25% of the mean — the Fibonacci row hash must not leave shards idle
// for regular key patterns, which is exactly what a naive modulo would
// do for strided rows.
func TestShardDistribution(t *testing.T) {
	const shards = 16
	tr, err := NewSharded(shards, WithRows(1<<12), WithRowSize(64))
	if err != nil {
		t.Fatal(err)
	}
	patterns := map[string]func(i int) Key{
		"dense-rows":   func(i int) Key { return Key(i * 64) },
		"strided-rows": func(i int) Key { return Key(i * 64 * shards) },
		"random":       func(i int) Key { return Key(rand.New(rand.NewSource(int64(i))).Uint64()) },
	}
	for name, gen := range patterns {
		const n = 1 << 14
		var counts [shards]int
		for i := 0; i < n; i++ {
			idx := tr.ShardOf(gen(i))
			if idx < 0 || idx >= shards {
				t.Fatalf("%s: ShardOf out of range: %d", name, idx)
			}
			counts[idx]++
		}
		mean := float64(n) / shards
		for s, c := range counts {
			if dev := math.Abs(float64(c)-mean) / mean; dev > 0.25 {
				t.Errorf("%s: shard %d holds %d of %d keys (%.0f%% off mean)",
					name, s, c, n, dev*100)
			}
		}
	}
	// Every key of a row must map to that row's shard.
	for r := 0; r < 1000; r++ {
		base := Key(r * 64)
		want := tr.ShardOf(base)
		for _, off := range []Key{1, 31, 63} {
			if got := tr.ShardOf(base + off); got != want {
				t.Fatalf("row %d split across shards %d and %d", r, want, got)
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewSharded(3); err == nil {
		t.Error("NewSharded(3) accepted a non-power-of-two shard count")
	}
	if _, err := NewSharded(0); err == nil {
		t.Error("NewSharded(0) accepted zero shards")
	}
	if _, err := New(WithRowSize(48)); err == nil {
		t.Error("New accepted non-power-of-two row size")
	}
	if _, err := New(WithRows(0)); err == nil {
		t.Error("New accepted zero rows")
	}
	if _, err := New(WithReplacement(Replacement(99))); err == nil {
		t.Error("New accepted unknown replacement policy")
	}
	for _, s := range []string{"lrw", "lrw-bip", "rwip", "max-dirty", "min-dirty"} {
		r, err := ParseReplacement(s)
		if err != nil {
			t.Errorf("ParseReplacement(%q): %v", s, err)
		}
		if _, err := New(WithReplacement(r)); err != nil {
			t.Errorf("New(WithReplacement(%q)): %v", s, err)
		}
	}
	if _, err := ParseReplacement("mru"); err == nil {
		t.Error("ParseReplacement accepted unknown name")
	}
}

func sameKeys(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Key(nil), a...)
	bs := append([]Key(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
