package dbi

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentStress hammers a Sharded tracker from N goroutines
// mixing every operation, sized so evictions fire constantly. Run
// under -race it is the lock-striping proof; the final invariant check
// (accounting identity over aggregated stats) catches lost updates
// even without the race detector.
func TestConcurrentStress(t *testing.T) {
	for _, shards := range []int{1, 8} {
		tr, err := NewSharded(shards, WithRows(256), WithRowSize(64), WithAssociativity(8))
		if err != nil {
			t.Fatal(err)
		}
		const clients = 16
		ops := 20_000
		if testing.Short() {
			ops = 2_000
		}
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(id)))
				var keys [32]Key
				var bools []bool
				var sink []Key
				for i := 0; i < ops; i++ {
					for j := range keys {
						keys[j] = Key(rng.Intn(1 << 18))
					}
					switch i % 5 {
					case 0, 1:
						sink = tr.SetDirtyBatch(keys[:], sink[:0])
					case 2:
						bools = tr.IsDirtyBatch(keys[:8], bools[:0])
					case 3:
						sink = tr.DirtyBlocksInRegion(keys[0])
						_ = sink
					case 4:
						sink = tr.FlushRowsInto(keys[:4], sink[:0])
					}
				}
			}(c)
		}
		wg.Wait()

		// Every key ever marked dirty is either still dirty, was
		// evicted, or was flushed. With per-shard mutexes these
		// counters can only balance if no update was lost.
		st := tr.Stats()
		recorded := st.EvictedKeys + st.FlushedKeys + uint64(st.DirtyKeys)
		if recorded > st.Writes {
			t.Fatalf("shards=%d: evicted(%d)+flushed(%d)+dirty(%d) > writes(%d)",
				shards, st.EvictedKeys, st.FlushedKeys, st.DirtyKeys, st.Writes)
		}
		if st.Writes == 0 || st.Evictions == 0 {
			t.Fatalf("shards=%d: stress produced no writes/evictions (writes=%d evictions=%d)",
				shards, st.Writes, st.Evictions)
		}
	}
}

func BenchmarkShardedSetDirtyBatch(b *testing.B) {
	tr, err := NewSharded(8, WithRows(1<<16), WithRowSize(64))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := make([]Key, 128)
	var sink []Key
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = Key(rng.Intn(1 << 24))
		}
		sink = tr.SetDirtyBatch(batch, sink[:0])
	}
	_ = sink
}
