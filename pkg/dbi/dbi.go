// Package dbi is the service-facing Dirty-Block Index: the paper's
// row-organized dirty-metadata structure (internal/dbi) promoted to a
// concurrency-safe tracking API with no simulator types in sight — no
// event engine, no cycle domains, no cache hierarchy.
//
// The vocabulary shifts from caches to services. A Key identifies one
// dirty-trackable unit (a cache line, a page, an object); RowSize
// consecutive keys form a Row — the unit whose co-located dirty state
// the DBI returns in one query, and the write-back batch a flush
// coordinator wants (the paper's AWB insight: harvest whole rows).
// Capacity is bounded: the tracker holds at most Rows row entries, and
// inserting beyond that evicts another row, returning its dirty keys
// as write-back work the caller must perform — exactly a DBI eviction
// (Section 2.2.4), reframed as back-pressure.
//
// Two implementations:
//
//   - Single: one internal/dbi core behind one mutex — the reference
//     implementation and the per-shard building block.
//   - Sharded: rows hashed across N lock-striped cores. A whole row
//     always lands in one shard, so row queries and flushes stay
//     single-lock and the AWB batch never spans shards.
//
// Both inherit the core's struct-of-arrays layout: row entries live in
// dense region/stamp probe columns and all dirty bits in one flat
// backing array, so the steady-state SetDirty/IsDirty/row-query paths
// touch a couple of cache lines and allocate nothing (DESIGN.md §12).
package dbi

import (
	"fmt"

	"dbisim/internal/config"
)

// Key identifies one dirty-trackable unit in the service's key space.
type Key uint64

// Row identifies one RowSize-aligned group of keys (Key >> log2(RowSize)).
type Row uint64

// Replacement selects the row-entry replacement policy (the paper's
// Section 4.3 DBI policies).
type Replacement int

const (
	// LRW evicts the least recently written row.
	LRW Replacement = iota
	// LRWBIP is LRW with bimodal insertion (burst-resistant).
	LRWBIP
	// RWIP is rewrite-interval prediction (RRIP-like).
	RWIP
	// MaxDirty evicts the row with the most dirty keys.
	MaxDirty
	// MinDirty evicts the row with the fewest dirty keys.
	MinDirty
)

func (r Replacement) core() (config.DBIReplacement, error) {
	switch r {
	case LRW:
		return config.DBILRW, nil
	case LRWBIP:
		return config.DBILRWBIP, nil
	case RWIP:
		return config.DBIRWIP, nil
	case MaxDirty:
		return config.DBIMaxDirty, nil
	case MinDirty:
		return config.DBIMinDirty, nil
	}
	return 0, fmt.Errorf("dbi: unknown replacement policy %d", int(r))
}

// ParseReplacement maps a policy name ("lrw", "lrw-bip", "rwip",
// "max-dirty", "min-dirty") to its Replacement, for CLI flags.
func ParseReplacement(s string) (Replacement, error) {
	switch s {
	case "lrw":
		return LRW, nil
	case "lrw-bip":
		return LRWBIP, nil
	case "rwip":
		return RWIP, nil
	case "max-dirty":
		return MaxDirty, nil
	case "min-dirty":
		return MinDirty, nil
	}
	return 0, fmt.Errorf("dbi: unknown replacement policy %q", s)
}

// Stats is a point-in-time summary of a tracker: capacity, occupancy
// and cumulative operation counts aggregated across shards.
type Stats struct {
	Shards      int    `json:"shards"`
	Rows        int    `json:"rows"`     // row-entry capacity
	RowSize     int    `json:"row_size"` // keys per row
	ValidRows   int    `json:"valid_rows"`
	DirtyKeys   int    `json:"dirty_keys"`
	Lookups     uint64 `json:"lookups"`
	Writes      uint64 `json:"writes"`
	Inserts     uint64 `json:"inserts"`
	Evictions   uint64 `json:"evictions"`
	EvictedKeys uint64 `json:"evicted_keys"`
	Flushes     uint64 `json:"flushes"`
	FlushedKeys uint64 `json:"flushed_keys"`
}

// Tracker is the dirty-tracking service API. All methods are safe for
// concurrent use.
//
// SetDirty marks a key dirty. When recording it forces out another
// row, the displaced row's dirty keys are returned: the tracker no
// longer remembers them, so the caller must write them back now (the
// DBI-eviction contract). Usually the return is nil.
//
// FlushRow harvests every dirty key of k's row and clears them in one
// step — the AWB batch. DirtyBlocksInRegion is the read-only form.
type Tracker interface {
	SetDirty(k Key) (evicted []Key)
	IsDirty(k Key) bool
	DirtyBlocksInRegion(k Key) []Key
	FlushRow(k Key) []Key
	Stats() Stats
}

// Option configures New and NewSharded.
type Option func(*cfg)

type cfg struct {
	rows    int
	rowSize int
	assoc   int
	repl    Replacement
	seed    int64
}

func defaults() cfg {
	return cfg{rows: 1 << 16, rowSize: 64, assoc: 16, repl: LRW, seed: 1}
}

// WithRows sets the total row-entry capacity (across all shards).
func WithRows(n int) Option { return func(c *cfg) { c.rows = n } }

// WithRowSize sets keys per row (power of two). Row k of the key
// space covers keys [k*RowSize, (k+1)*RowSize).
func WithRowSize(n int) Option { return func(c *cfg) { c.rowSize = n } }

// WithAssociativity sets the set associativity of each shard's index.
func WithAssociativity(n int) Option { return func(c *cfg) { c.assoc = n } }

// WithReplacement selects the row replacement policy (default LRW).
func WithReplacement(r Replacement) Option { return func(c *cfg) { c.repl = r } }

// WithSeed seeds replacement-policy randomness; same seed, same
// eviction decisions for the same operation stream.
func WithSeed(seed int64) Option { return func(c *cfg) { c.seed = seed } }
