package dbiproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary framing. Every message — request or response — is one frame:
//
//	uint32 LE  length   (bytes after this field: 6 + len(payload))
//	byte       version  (currently 1)
//	byte       opcode   (request op, or op|0x80 for its response)
//	uint32 LE  seq      (echoed verbatim in the response)
//	[]byte     payload
//
// Request payloads are a key batch (uvarint count, then count uint64
// LE keys); Ping and Stats send an empty payload. Response payloads
// open with one status byte; on StatusOK the answer follows (a key
// batch, a bool-per-key byte vector for IsDirty, or JSON for Stats),
// on error the remainder is a UTF-8 message.

// Request opcodes. Responses echo the opcode with RespBit set.
const (
	OpPing    = 0x01
	OpSet     = 0x02
	OpIsDirty = 0x03
	OpRegion  = 0x04
	OpFlush   = 0x05
	OpStats   = 0x06

	// RespBit marks a frame as a response to opcode&^RespBit.
	RespBit = 0x80
)

// MaxFrame caps the length field: nothing legitimate approaches 1 MiB
// (a maximal SetDirty batch of MaxBatch keys is ~512 KiB), and the cap
// keeps a corrupt or hostile length prefix from ballooning a read.
const MaxFrame = 1 << 20

// MaxBatch caps keys per request, keeping worst-case response sizes
// (every key evicting a full row) under MaxFrame.
const MaxBatch = 1 << 16

// headerLen is the fixed part covered by the length field.
const headerLen = 6

// Frame is one decoded message.
type Frame struct {
	Version byte
	Op      byte
	Seq     uint32
	Payload []byte
}

// AppendFrame serializes a frame into b and returns it — the writer
// side allocates nothing when b has capacity.
func AppendFrame(b []byte, f Frame) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(headerLen+len(f.Payload)))
	b = append(b, f.Version, f.Op)
	b = binary.LittleEndian.AppendUint32(b, f.Seq)
	return append(b, f.Payload...)
}

// ReadFrame reads one frame from r, reusing buf (grown as needed) for
// the payload; the returned Frame's Payload aliases the returned
// buffer. A length over MaxFrame or under the header size is a
// *StatusError with CodeTooLarge/CodeBadRequest — the stream is then
// unsynchronized and the connection should be dropped.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, buf, &StatusError{Code: CodeTooLarge, Message: fmt.Sprintf("frame length %d exceeds %d", n, MaxFrame)}
	}
	if n < headerLen {
		return Frame{}, buf, &StatusError{Code: CodeBadRequest, Message: fmt.Sprintf("frame length %d below header size", n)}
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, buf, err
	}
	return Frame{
		Version: buf[0],
		Op:      buf[1],
		Seq:     binary.LittleEndian.Uint32(buf[2:6]),
		Payload: buf[headerLen:],
	}, buf, nil
}

// AppendKeys serializes a key batch: uvarint count, then each key as
// uint64 LE.
func AppendKeys(b []byte, keys []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = binary.LittleEndian.AppendUint64(b, k)
	}
	return b
}

// DecodeKeys parses a key batch appended into dst, returning dst and
// the remaining bytes.
func DecodeKeys(p []byte, dst []uint64) ([]uint64, []byte, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, p, &StatusError{Code: CodeBadRequest, Message: "truncated key count"}
	}
	p = p[n:]
	if count > MaxBatch {
		return dst, p, &StatusError{Code: CodeTooLarge, Message: fmt.Sprintf("batch of %d keys exceeds %d", count, MaxBatch)}
	}
	if uint64(len(p)) < count*8 {
		return dst, p, &StatusError{Code: CodeBadRequest, Message: fmt.Sprintf("key batch truncated: %d keys declared, %d bytes left", count, len(p))}
	}
	for i := uint64(0); i < count; i++ {
		dst = append(dst, binary.LittleEndian.Uint64(p[i*8:]))
	}
	return dst, p[count*8:], nil
}

// AppendBools serializes the IsDirty answer vector, one byte (0/1)
// per key after a uvarint count.
func AppendBools(b []byte, vs []bool) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeBools parses an answer vector appended into dst.
func DecodeBools(p []byte, dst []bool) ([]bool, []byte, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, p, &StatusError{Code: CodeBadRequest, Message: "truncated bool count"}
	}
	p = p[n:]
	if count > MaxBatch {
		return dst, p, &StatusError{Code: CodeTooLarge, Message: fmt.Sprintf("batch of %d answers exceeds %d", count, MaxBatch)}
	}
	if uint64(len(p)) < count {
		return dst, p, &StatusError{Code: CodeBadRequest, Message: "bool vector truncated"}
	}
	for i := uint64(0); i < count; i++ {
		dst = append(dst, p[i] != 0)
	}
	return dst, p[count:], nil
}

// DecodeStatus splits a response payload into its status and body; a
// non-OK status yields the decoded *StatusError.
func DecodeStatus(p []byte) ([]byte, error) {
	if len(p) == 0 {
		return nil, &StatusError{Code: CodeBadRequest, Message: "empty response payload"}
	}
	if p[0] != StatusOK {
		return nil, &StatusError{Code: CodeOf(p[0]), Message: string(p[1:])}
	}
	return p[1:], nil
}
