// Package dbiproto defines the dbiserved wire protocols: the JSON
// types served over HTTP under /v1/, and the length-prefixed binary
// batch protocol the high-throughput path speaks over TCP. Both carry
// the same five operations against a dbi.Tracker and must return
// identical answers; PROTOCOL.md is the normative description.
//
// Versioning: the JSON protocol is versioned by URL prefix (/v1/),
// the binary protocol by the version byte in every frame header.
// Within a major version, fields/opcodes may be added but never
// removed or reinterpreted.
package dbiproto

import "fmt"

// Version is the current protocol major version, shared by the /v1/
// URL prefix and the binary frame version byte.
const Version = 1

// Error codes, shared verbatim by the JSON error envelope and (via
// StatusOf/CodeOf) the binary status byte.
const (
	CodeBadRequest = "bad_request" // malformed payload or parameters
	CodeBadVersion = "bad_version" // unsupported protocol version
	CodeTooLarge   = "too_large"   // frame or batch over the size cap
	CodeInternal   = "internal"    // server-side failure
)

// --- JSON v1 types -------------------------------------------------
//
// Key batches travel as arrays of uint64. Requests POST a KeysRequest;
// responses carry the operation-specific answer. Errors use the
// ErrorResponse envelope with a non-2xx status.

// KeysRequest is the request body for /v1/set, /v1/dirty, /v1/region
// and /v1/flush: the batch of keys to operate on.
type KeysRequest struct {
	Keys []uint64 `json:"keys"`
}

// SetResponse answers /v1/set: all keys displaced by evictions while
// applying the batch, in eviction order.
type SetResponse struct {
	Evicted []uint64 `json:"evicted"`
}

// DirtyResponse answers /v1/dirty: one answer per request key, in
// request order.
type DirtyResponse struct {
	Dirty []bool `json:"dirty"`
}

// KeysResponse answers /v1/region (dirty keys co-located in each
// queried key's row) and /v1/flush (keys harvested by flushing each
// key's row).
type KeysResponse struct {
	Keys []uint64 `json:"keys"`
}

// StatsResponse answers GET /v1/stats. The payload mirrors
// dbi.Stats' JSON encoding; it is declared in pkg/dbi to keep the
// field set single-sourced.

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries the machine-readable code and human detail.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// --- status byte mapping -------------------------------------------

// Binary status bytes. 0 is success; the rest map 1:1 onto the JSON
// error codes.
const (
	StatusOK         = 0
	StatusBadRequest = 1
	StatusBadVersion = 2
	StatusTooLarge   = 3
	StatusInternal   = 4
)

// StatusOf maps a JSON error code to its binary status byte.
func StatusOf(code string) byte {
	switch code {
	case CodeBadRequest:
		return StatusBadRequest
	case CodeBadVersion:
		return StatusBadVersion
	case CodeTooLarge:
		return StatusTooLarge
	}
	return StatusInternal
}

// CodeOf maps a binary status byte back to the JSON error code.
func CodeOf(status byte) string {
	switch status {
	case StatusBadRequest:
		return CodeBadRequest
	case StatusBadVersion:
		return CodeBadVersion
	case StatusTooLarge:
		return CodeTooLarge
	}
	return CodeInternal
}

// StatusError is the typed error a client returns when the server
// answered with a non-OK status.
type StatusError struct {
	Code    string
	Message string
}

func (e *StatusError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("dbiserved: %s", e.Code)
	}
	return fmt.Sprintf("dbiserved: %s: %s", e.Code, e.Message)
}
