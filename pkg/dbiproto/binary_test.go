package dbiproto

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
)

// TestFrameGolden pins the exact wire bytes of a SetDirty request so
// an incompatible re-encode fails loudly rather than silently: length
// 4+varint+2*8 = 21+6=27... computed below, version 1, opcode 0x02,
// seq 0x01020304, payload = uvarint(2) + keys 5 and 0x0102030405060708.
func TestFrameGolden(t *testing.T) {
	payload := AppendKeys(nil, []uint64{5, 0x0102030405060708})
	wire := AppendFrame(nil, Frame{Version: 1, Op: OpSet, Seq: 0x01020304, Payload: payload})
	const want = "17000000" + // length: 6 header + 17 payload = 23 = 0x17, LE
		"01" + "02" + // version, opcode
		"04030201" + // seq LE
		"02" + // uvarint key count
		"0500000000000000" + // key 5 LE
		"0807060504030201" // key 0x0102030405060708 LE
	if got := hex.EncodeToString(wire); got != want {
		t.Fatalf("wire bytes changed:\n got %s\nwant %s", got, want)
	}

	f, _, err := ReadFrame(bytes.NewReader(wire), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 1 || f.Op != OpSet || f.Seq != 0x01020304 {
		t.Fatalf("decoded header %+v", f)
	}
	keys, rest, err := DecodeKeys(f.Payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || len(keys) != 2 || keys[0] != 5 || keys[1] != 0x0102030405060708 {
		t.Fatalf("decoded keys %v, rest %d bytes", keys, len(rest))
	}
}

// TestResponseGolden pins an IsDirty response frame: status OK then a
// bool vector.
func TestResponseGolden(t *testing.T) {
	payload := append([]byte{StatusOK}, AppendBools(nil, []bool{true, false, true})...)
	wire := AppendFrame(nil, Frame{Version: 1, Op: OpIsDirty | RespBit, Seq: 7, Payload: payload})
	const want = "0b000000" + // length 6+5
		"01" + "83" + // version, OpIsDirty|RespBit
		"07000000" + // seq
		"00" + // StatusOK
		"03" + "010001" // 3 answers: true,false,true
	if got := hex.EncodeToString(wire); got != want {
		t.Fatalf("wire bytes changed:\n got %s\nwant %s", got, want)
	}
	f, _, err := ReadFrame(bytes.NewReader(wire), nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := DecodeStatus(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := DecodeBools(body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || !vs[0] || vs[1] || !vs[2] {
		t.Fatalf("decoded bools %v", vs)
	}
}

func TestRoundTripAllOps(t *testing.T) {
	keys := []uint64{0, 1, 1 << 40, ^uint64(0)}
	for _, op := range []byte{OpPing, OpSet, OpIsDirty, OpRegion, OpFlush, OpStats} {
		var payload []byte
		if op != OpPing && op != OpStats {
			payload = AppendKeys(nil, keys)
		}
		wire := AppendFrame(nil, Frame{Version: Version, Op: op, Seq: uint32(op) * 1000, Payload: payload})
		f, _, err := ReadFrame(bytes.NewReader(wire), nil)
		if err != nil {
			t.Fatalf("op %#x: %v", op, err)
		}
		if f.Op != op || f.Seq != uint32(op)*1000 || f.Version != Version {
			t.Fatalf("op %#x: header %+v", op, f)
		}
		if payload != nil {
			got, _, err := DecodeKeys(f.Payload, nil)
			if err != nil {
				t.Fatalf("op %#x: %v", op, err)
			}
			for i := range keys {
				if got[i] != keys[i] {
					t.Fatalf("op %#x: key[%d] = %d, want %d", op, i, got[i], keys[i])
				}
			}
		}
	}
}

func TestErrorStatus(t *testing.T) {
	payload := append([]byte{StatusTooLarge}, "batch of 70000 keys exceeds 65536"...)
	body, err := DecodeStatus(payload)
	if body != nil {
		t.Fatalf("body = %q on error", body)
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %T, want *StatusError", err)
	}
	if se.Code != CodeTooLarge || se.Message != "batch of 70000 keys exceeds 65536" {
		t.Fatalf("decoded %+v", se)
	}
	for _, code := range []string{CodeBadRequest, CodeBadVersion, CodeTooLarge, CodeInternal} {
		if got := CodeOf(StatusOf(code)); got != code {
			t.Errorf("CodeOf(StatusOf(%q)) = %q", code, got)
		}
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(huge), nil); err == nil {
		t.Error("accepted 4 GiB length prefix")
	}
	tiny := []byte{2, 0, 0, 0, 1, 2}
	if _, _, err := ReadFrame(bytes.NewReader(tiny), nil); err == nil {
		t.Error("accepted sub-header length prefix")
	}
}

func TestDecodeKeysRejectsTruncation(t *testing.T) {
	p := AppendKeys(nil, []uint64{1, 2, 3})
	if _, _, err := DecodeKeys(p[:len(p)-1], nil); err == nil {
		t.Error("accepted truncated key batch")
	}
	big := []byte{0xff, 0xff, 0xff, 0xff, 0x7f} // uvarint far over MaxBatch
	if _, _, err := DecodeKeys(big, nil); err == nil {
		t.Error("accepted oversized batch count")
	}
}
