// Package dbiclient is the Go client for dbiserved: a binary-protocol
// Client over one TCP connection (reused across calls, pipelinable via
// Pipeline) and a JSONClient speaking the HTTP v1 protocol through a
// keep-alive http.Client. Both implement the same five operations and
// must observe identical answers — the differential test in
// internal/dbiserve holds them to that.
package dbiclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"dbisim/pkg/dbi"
	"dbisim/pkg/dbiproto"
)

// Client speaks the binary batch protocol over one connection. A
// Client is safe for concurrent use: calls are serialized on the
// connection (use one Client per goroutine, or Pipeline, for
// parallelism — the protocol answers in order).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	seq  uint32
	rbuf []byte
	wbuf []byte
	fbuf []byte
}

// Dial connects to a dbiserved binary listener.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// deadline applies ctx's deadline to the whole exchange.
func (c *Client) deadline(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok {
		return c.conn.SetDeadline(d)
	}
	return c.conn.SetDeadline(time.Time{})
}

// roundTrip sends one request and reads its response body (status
// already checked). The returned bytes alias c.rbuf — decode before
// the next call.
func (c *Client) roundTrip(ctx context.Context, op byte, keys []uint64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.deadline(ctx); err != nil {
		return nil, err
	}
	c.seq++
	seq := c.seq
	var payload []byte
	if keys != nil {
		c.wbuf = dbiproto.AppendKeys(c.wbuf[:0], keys)
		payload = c.wbuf
	}
	c.fbuf = dbiproto.AppendFrame(c.fbuf[:0], dbiproto.Frame{
		Version: dbiproto.Version, Op: op, Seq: seq, Payload: payload,
	})
	if _, err := c.bw.Write(c.fbuf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return c.readResponse(op, seq)
}

func (c *Client) readResponse(op byte, seq uint32) ([]byte, error) {
	f, buf, err := dbiproto.ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return nil, err
	}
	if f.Op != op|dbiproto.RespBit || f.Seq != seq {
		return nil, fmt.Errorf("dbiclient: response mismatch: op %#x seq %d, want op %#x seq %d",
			f.Op, f.Seq, op|dbiproto.RespBit, seq)
	}
	return dbiproto.DecodeStatus(f.Payload)
}

// Ping round-trips an empty frame.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, dbiproto.OpPing, nil)
	return err
}

// SetDirty marks keys dirty and returns the keys evicted doing so.
func (c *Client) SetDirty(ctx context.Context, keys []uint64) ([]uint64, error) {
	body, err := c.roundTrip(ctx, dbiproto.OpSet, keys)
	if err != nil {
		return nil, err
	}
	out, _, err := dbiproto.DecodeKeys(body, nil)
	return out, err
}

// IsDirty reports each key's dirty status, in order.
func (c *Client) IsDirty(ctx context.Context, keys []uint64) ([]bool, error) {
	body, err := c.roundTrip(ctx, dbiproto.OpIsDirty, keys)
	if err != nil {
		return nil, err
	}
	out, _, err := dbiproto.DecodeBools(body, nil)
	return out, err
}

// Region returns the dirty keys co-located in each key's row.
func (c *Client) Region(ctx context.Context, keys []uint64) ([]uint64, error) {
	body, err := c.roundTrip(ctx, dbiproto.OpRegion, keys)
	if err != nil {
		return nil, err
	}
	out, _, err := dbiproto.DecodeKeys(body, nil)
	return out, err
}

// FlushRows flushes each key's row, returning all harvested keys.
func (c *Client) FlushRows(ctx context.Context, keys []uint64) ([]uint64, error) {
	body, err := c.roundTrip(ctx, dbiproto.OpFlush, keys)
	if err != nil {
		return nil, err
	}
	out, _, err := dbiproto.DecodeKeys(body, nil)
	return out, err
}

// Stats fetches the tracker snapshot.
func (c *Client) Stats(ctx context.Context) (dbi.Stats, error) {
	body, err := c.roundTrip(ctx, dbiproto.OpStats, nil)
	if err != nil {
		return dbi.Stats{}, err
	}
	var st dbi.Stats
	err = json.Unmarshal(body, &st)
	return st, err
}

// --- pipelining ----------------------------------------------------

// Pipeline queues several requests and sends them as one write; the
// server answers in order, so the whole batch costs one round trip.
// Queue ops, then Do. A Pipeline is not safe for concurrent use and
// is exhausted after Do.
type Pipeline struct {
	c    *Client
	wire []byte
	ops  []byte
	seqs []uint32
}

// Pipeline starts an empty pipeline on c.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Len reports the number of queued requests.
func (p *Pipeline) Len() int { return len(p.ops) }

func (p *Pipeline) queue(op byte, keys []uint64) {
	p.c.mu.Lock()
	p.c.seq++
	seq := p.c.seq
	p.c.mu.Unlock()
	var payload []byte
	if keys != nil {
		payload = dbiproto.AppendKeys(nil, keys)
	}
	p.wire = dbiproto.AppendFrame(p.wire, dbiproto.Frame{
		Version: dbiproto.Version, Op: op, Seq: seq, Payload: payload,
	})
	p.ops = append(p.ops, op)
	p.seqs = append(p.seqs, seq)
}

// SetDirty queues a set request.
func (p *Pipeline) SetDirty(keys []uint64) { p.queue(dbiproto.OpSet, keys) }

// IsDirty queues a dirty query.
func (p *Pipeline) IsDirty(keys []uint64) { p.queue(dbiproto.OpIsDirty, keys) }

// Region queues a region query.
func (p *Pipeline) Region(keys []uint64) { p.queue(dbiproto.OpRegion, keys) }

// FlushRows queues a flush.
func (p *Pipeline) FlushRows(keys []uint64) { p.queue(dbiproto.OpFlush, keys) }

// Result is one queued request's answer: Keys for set/region/flush,
// Dirty for dirty queries.
type Result struct {
	Op    byte
	Keys  []uint64
	Dirty []bool
}

// Do writes every queued frame in one burst and collects the answers
// in queue order. The first protocol error aborts the pipeline.
func (p *Pipeline) Do(ctx context.Context) ([]Result, error) {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.deadline(ctx); err != nil {
		return nil, err
	}
	if _, err := c.bw.Write(p.wire); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(p.ops))
	for i, op := range p.ops {
		body, err := c.readResponse(op, p.seqs[i])
		if err != nil {
			return results, err
		}
		r := Result{Op: op}
		if op == dbiproto.OpIsDirty {
			r.Dirty, _, err = dbiproto.DecodeBools(body, nil)
		} else {
			r.Keys, _, err = dbiproto.DecodeKeys(body, nil)
		}
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	p.wire, p.ops, p.seqs = p.wire[:0], p.ops[:0], p.seqs[:0]
	return results, nil
}
