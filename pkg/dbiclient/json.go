package dbiclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"dbisim/pkg/dbi"
	"dbisim/pkg/dbiproto"
)

// JSONClient speaks the HTTP v1 protocol. The zero http.Client reuses
// keep-alive connections, so sequential calls share a socket. Safe
// for concurrent use.
type JSONClient struct {
	base string
	hc   *http.Client
}

// NewJSON builds a client for a dbiserved HTTP address
// ("host:port" or a full http:// URL).
func NewJSON(addr string) *JSONClient {
	if len(addr) < 7 || addr[:7] != "http://" {
		addr = "http://" + addr
	}
	return &JSONClient{base: addr, hc: &http.Client{}}
}

func (c *JSONClient) post(ctx context.Context, path string, keys []uint64, out any) error {
	body, err := json.Marshal(dbiproto.KeysRequest{Keys: keys})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *JSONClient) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var e dbiproto.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error.Code != "" {
			return &dbiproto.StatusError{Code: e.Error.Code, Message: e.Error.Message}
		}
		return fmt.Errorf("dbiclient: HTTP %d from %s", resp.StatusCode, req.URL.Path)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SetDirty marks keys dirty and returns the keys evicted doing so.
func (c *JSONClient) SetDirty(ctx context.Context, keys []uint64) ([]uint64, error) {
	var r dbiproto.SetResponse
	if err := c.post(ctx, "/v1/set", keys, &r); err != nil {
		return nil, err
	}
	return r.Evicted, nil
}

// IsDirty reports each key's dirty status, in order.
func (c *JSONClient) IsDirty(ctx context.Context, keys []uint64) ([]bool, error) {
	var r dbiproto.DirtyResponse
	if err := c.post(ctx, "/v1/dirty", keys, &r); err != nil {
		return nil, err
	}
	return r.Dirty, nil
}

// Region returns the dirty keys co-located in each key's row.
func (c *JSONClient) Region(ctx context.Context, keys []uint64) ([]uint64, error) {
	var r dbiproto.KeysResponse
	if err := c.post(ctx, "/v1/region", keys, &r); err != nil {
		return nil, err
	}
	return r.Keys, nil
}

// FlushRows flushes each key's row, returning all harvested keys.
func (c *JSONClient) FlushRows(ctx context.Context, keys []uint64) ([]uint64, error) {
	var r dbiproto.KeysResponse
	if err := c.post(ctx, "/v1/flush", keys, &r); err != nil {
		return nil, err
	}
	return r.Keys, nil
}

// Stats fetches the tracker snapshot.
func (c *JSONClient) Stats(ctx context.Context) (dbi.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return dbi.Stats{}, err
	}
	var st dbi.Stats
	err = c.do(req, &st)
	return st, err
}
