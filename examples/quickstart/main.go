// Quickstart: the Dirty-Block Index as a data structure.
//
// This example uses the DBI directly — no simulator — to show its three
// defining abilities (Section 2 of the paper):
//
//  1. a block's dirty status is one fast lookup;
//  2. all dirty blocks of one DRAM row come back from a single query;
//  3. evicting an entry yields exactly the row-grouped writeback list
//     the memory controller wants.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/dbi"
)

func main() {
	geo := addr.Default() // 64B blocks, 8KB DRAM rows, 8 banks

	// A DBI for a 1MB cache (16384 blocks), α=1/4, one entry per 64
	// blocks: 128 entries of a 64-bit dirty vector each.
	params := config.DBIParams{
		AlphaNum: 1, AlphaDen: 2,
		Granularity:   64,
		Associativity: 8,
		Latency:       4,
		Replacement:   config.DBILRW,
		BIPEpsilonDen: 64,
	}
	index, err := dbi.New(dbi.WithGeometry(geo), dbi.WithParams(params),
		dbi.WithCacheBlocks(16384), dbi.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("DBI: %d entries × %d blocks = %d tracked blocks\n",
		index.Entries(), index.Granularity(), index.TrackedBlocks())

	// The cache receives writebacks for scattered blocks of DRAM row 7.
	row := addr.RowID(7)
	for _, col := range []int{3, 12, 40, 99, 100} {
		block := geo.BlockInRow(row, col)
		if ev, evicted := index.SetDirty(block); evicted {
			fmt.Printf("DBI eviction of region %d: %d blocks to write back\n",
				ev.Region, len(ev.Blocks))
		}
	}

	// 1. Dirty check: one lookup, no tag-store walk.
	probe := geo.BlockInRow(row, 12)
	fmt.Printf("block (row %d, col 12) dirty? %v\n", row, index.IsDirty(probe))
	fmt.Printf("block (row %d, col 13) dirty? %v\n", row, index.IsDirty(geo.BlockInRow(row, 13)))

	// 2. All dirty row-mates in one query — what AWB uses to group
	// writebacks by DRAM row.
	fmt.Printf("dirty blocks co-located with (row %d, col 12):\n", row)
	for _, b := range index.DirtyBlocksInRegion(probe) {
		fmt.Printf("  row %d col %3d\n", geo.RowOf(b), geo.ColumnOf(b))
	}

	// 3. Bulk queries from Section 7: row/bank dirty status, DMA ranges,
	// and the row-grouped flush.
	fmt.Printf("row %d has dirty blocks? %v\n", row, index.RowHasDirty(row))
	fmt.Printf("bank of row %d: %d; bank dirty? %v\n",
		row, geo.BankOf(row), index.BankHasDirty(geo.BankOf(row)))
	lo, hi := geo.BlockInRow(row, 0), geo.BlockInRow(row, 64)
	fmt.Printf("dirty blocks in DMA range [row %d, cols 0-63]: %d\n",
		row, len(index.DirtyInRange(lo, hi)))

	evs := index.Flush()
	total := 0
	for _, ev := range evs {
		total += len(ev.Blocks)
	}
	fmt.Printf("flush: %d row-grouped eviction(s), %d blocks written back\n",
		len(evs), total)
	fmt.Printf("dirty blocks after flush: %d\n", index.DirtyCount())
}
