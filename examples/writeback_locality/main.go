// Writeback locality: the Figure-6 single-core experiment in miniature.
//
// This example runs one write-heavy streaming benchmark model (lbm) under
// the baseline TA-DIP cache and under DBI+AWB, and shows how the DBI's
// row-grouped writebacks raise the DRAM write row hit rate — the effect
// behind the paper's single-core performance gains. It also demonstrates
// the system.New functional options: each run arms an epoch sampler via
// system.WithTimeSeries at construction and reports the burstiest epoch's
// DRAM write count.
//
// Run with: go run ./examples/writeback_locality
package main

import (
	"fmt"

	"dbisim/internal/config"
	"dbisim/internal/system"
)

const epochCycles = 200_000

func run(mech config.Mechanism, bench string) (system.Results, float64) {
	cfg := config.Scaled(1, mech)
	cfg.WarmupInstructions = 1_000_000
	cfg.MeasureInstructions = 1_500_000
	sys, err := system.New(cfg, []string{bench}, 42,
		system.WithTimeSeries(epochCycles))
	if err != nil {
		panic(err)
	}
	r := sys.Run()

	// Counters are exported as per-epoch deltas, so the max over the
	// dram.writes column is the single burstiest epoch of the run.
	ts := sys.Sampler().Series()
	col := -1
	for i, name := range ts.Metrics {
		if name == "dram.writes" {
			col = i
		}
	}
	var peak float64
	for _, s := range ts.Samples {
		if col >= 0 && s.Values[col] > peak {
			peak = s.Values[col]
		}
	}
	return r, peak
}

func main() {
	const bench = "lbm"
	fmt.Printf("benchmark: %s (write-heavy streaming kernel)\n\n", bench)
	fmt.Printf("%-12s %8s %10s %10s %10s %10s %10s\n",
		"mechanism", "IPC", "writeRHR", "readRHR", "WPKI", "tagPKI", "peakWr/ep")
	var rows []system.Results
	for _, mech := range []config.Mechanism{
		config.TADIP, config.DAWB, config.DBI, config.DBIAWB,
	} {
		r, peak := run(mech, bench)
		rows = append(rows, r)
		fmt.Printf("%-12s %8.4f %10.3f %10.3f %10.2f %10.1f %10.0f\n",
			mech, r.PerCore[0].IPC, r.WriteRowHitRate, r.ReadRowHitRate,
			r.MemWritesPKI, r.TagLookupsPKI, peak)
	}
	base, awb := rows[0], rows[3]
	fmt.Printf("\nDBI+AWB vs TA-DIP: IPC %+0.1f%%, write row hits %.0f%% -> %.0f%%\n",
		100*(awb.PerCore[0].IPC/base.PerCore[0].IPC-1),
		100*base.WriteRowHitRate, 100*awb.WriteRowHitRate)
	fmt.Println("\nNote how DAWB gets similar row-hit gains but pays for them")
	fmt.Println("with many times more tag-store lookups (the tagPKI column) —")
	fmt.Println("the contention that hurts it in multi-core runs.")
}
