// ECC area: the heterogeneous-ECC optimization of Section 3.3.
//
// Only dirty blocks need error *correction* — a clean block that fails
// its error *detection* check can be re-fetched from memory. Because the
// DBI is the authoritative record of dirty blocks, full SECDED ECC is
// needed only for the blocks the DBI tracks, and every block keeps just
// a parity EDC. This example reproduces Table 4 (bit storage) and the
// Section-6.3 area claims with the analytical SRAM model.
//
// Run with: go run ./examples/ecc_area
package main

import (
	"fmt"

	"dbisim/internal/areamodel"
	"dbisim/internal/config"
)

func main() {
	bits := areamodel.DefaultBits()
	sram := areamodel.DefaultSRAM()
	cfg := config.PaperWithL3PerCore(8, config.DBIAWBCLB, 2<<20) // 16MB LLC

	fmt.Printf("cache: %dMB, %d-way, %d blocks\n",
		cfg.L3.SizeBytes>>20, cfg.L3.Ways, cfg.L3.Blocks())
	fmt.Printf("SECDED per block: %d bits (12.5%%); parity EDC: %d bits (1.6%%)\n\n",
		bits.SECDEDBitsPerBlock(), bits.ParityBitsPerBlock())

	conv := bits.Conventional(cfg.L3, true)
	fmt.Printf("conventional (ECC on every block): tag store %.2f Mbit, total %.2f Mbit\n",
		float64(conv.TagStoreBits)/1e6, float64(conv.TotalBits())/1e6)

	for _, alpha := range [][2]int{{1, 4}, {1, 2}} {
		d := cfg.DBI
		d.AlphaNum, d.AlphaDen = alpha[0], alpha[1]
		org := bits.WithDBI(cfg.L3, d, true)
		fmt.Printf("DBI α=%d/%d (EDC everywhere, ECC only for tracked blocks):\n",
			alpha[0], alpha[1])
		fmt.Printf("  tag store %.2f Mbit, DBI+ECC %.2f Mbit, total %.2f Mbit\n",
			float64(org.TagStoreBits)/1e6, float64(org.DBIBits)/1e6,
			float64(org.TotalBits())/1e6)
		fmt.Printf("  area: %.2f mm² vs %.2f mm² conventional (-%.1f%%)\n",
			sram.AreaMM2(org.TotalBits()), sram.AreaMM2(conv.TotalBits()),
			100*areamodel.CacheAreaReduction(bits, sram, cfg.L3, d))
	}

	fmt.Println("\nTable 4 (bit storage reduction):")
	for _, row := range areamodel.Table4(bits, cfg.L3, cfg.DBI) {
		fmt.Println(" ", row)
	}

	fmt.Println("\nTable 5 (DBI power as fraction of cache power):")
	for _, r := range areamodel.Table5(bits, sram, cfg.DBI, 3) {
		fmt.Printf("  %2dMB  static %.2f%%  dynamic %.1f%%\n",
			r.CacheBytes>>20, 100*r.StaticFraction, 100*r.DynamicFraction)
	}
}
