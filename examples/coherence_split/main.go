// Coherence split: the Section-2.3 protocol adaptation.
//
// MOESI encodes dirtiness implicitly: M and O are the dirty twins of E
// and S. This example splits the state space into (M,E), (O,S), (I)
// pairs, stores the pair in a (map-backed) tag directory, keeps the
// selecting bit in a real Dirty-Block Index, and replays a sharing
// scenario to show that the reconstructed states — and the protocol's
// writeback/supply actions — are exactly those of an unsplit MOESI
// machine, while the DBI simultaneously provides its row-grouped view of
// all dirty data.
//
// Run with: go run ./examples/coherence_split
package main

import (
	"fmt"

	"dbisim/internal/addr"
	"dbisim/internal/coherence"
	"dbisim/internal/config"
	"dbisim/internal/dbi"
)

func main() {
	geo := addr.Default()
	index, err := dbi.New(dbi.WithGeometry(geo), dbi.WithParams(config.DBIParams{
		AlphaNum: 1, AlphaDen: 4, Granularity: 64,
		Associativity: 16, Latency: 4, Replacement: config.DBILRW,
	}), dbi.WithCacheBlocks(32768), dbi.WithSeed(1))
	if err != nil {
		panic(err)
	}
	adapter := &coherence.DBIAdapter{D: index, OnEviction: func(ev dbi.Eviction) {
		fmt.Printf("  [DBI eviction: region %d, %d blocks written back]\n",
			ev.Region, len(ev.Blocks))
	}}
	dir := coherence.NewSplitDirectory(adapter)

	const block = uint64(0x1000)
	show := func(label string) {
		s := dir.StateOf(block)
		fmt.Printf("%-34s state=%v (dirty in DBI: %v)\n",
			label, s, index.IsDirty(addr.BlockAddr(block)))
	}

	fmt.Println("MOESI with the dirty half of each state pair in the DBI:")
	dir.SetState(block, coherence.Exclusive) // fill on a read miss
	show("fill (read miss)")

	out := dir.Apply(block, coherence.LocalWrite)
	show("local write (E->M)")
	_ = out

	out = dir.Apply(block, coherence.RemoteRead)
	show("remote read (M->O, supplies data)")
	fmt.Printf("  supplied data to requester: %v\n", out.SupplyData)

	out = dir.Apply(block, coherence.Evict)
	show("evict (O->I, writes back)")
	fmt.Printf("  writeback to memory: %v\n", out.WritebackToMemory)

	// The same split works for whole rows at once: dirty a row's worth
	// of blocks through the directory and ask the DBI for the row view.
	fmt.Println("\nrow-grouped view of directory-managed dirty data:")
	row := addr.RowID(5)
	for col := 0; col < 4; col++ {
		b := uint64(geo.BlockInRow(row, col*16))
		dir.SetState(b, coherence.Modified)
	}
	blocks := index.DirtyBlocksInRegion(geo.BlockInRow(row, 0))
	fmt.Printf("DBI lists %d dirty blocks of row %d in one query\n", len(blocks), row)
}
