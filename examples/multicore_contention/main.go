// Multi-core contention: the Section-6.2 case study.
//
// Two cores share the LLC: GemsFDTD (write-heavy, feeds the writeback
// mechanisms) and libquantum (a streaming read workload whose LLC
// accesses almost always miss — the ideal cache-lookup-bypass victim).
// The example reproduces the paper's observation chain:
//
//   - DAWB helps DRAM writes but floods the shared tag port with filler
//     lookups, which delays the other core's demand accesses;
//   - plain DBI gets the row-grouped writebacks "for free" through its
//     own evictions, without the lookup flood;
//   - adding CLB removes libquantum's useless lookups entirely.
//
// Run with: go run ./examples/multicore_contention
package main

import (
	"fmt"

	"dbisim/internal/config"
	"dbisim/internal/system"
)

func main() {
	mix := []string{"GemsFDTD", "libquantum"}

	// Alone IPCs on the baseline machine give the speedup denominators.
	alone := map[string]float64{}
	for _, b := range mix {
		cfg := config.Scaled(1, config.Baseline)
		cfg.WarmupInstructions, cfg.MeasureInstructions = 800_000, 1_000_000
		sys, err := system.New(cfg, []string{b}, 42)
		if err != nil {
			panic(err)
		}
		alone[b] = sys.Run().PerCore[0].IPC
	}
	fmt.Printf("alone IPC: %s=%.3f %s=%.3f\n\n",
		mix[0], alone[mix[0]], mix[1], alone[mix[1]])

	fmt.Printf("%-12s %10s %10s %10s %12s\n",
		"mechanism", "WS", "tagPKI", "writeRHR", "portDelay")
	var baseWS float64
	for _, mech := range []config.Mechanism{
		config.Baseline, config.DAWB, config.DBI, config.DBIAWB, config.DBIAWBCLB,
	} {
		cfg := config.Scaled(2, mech)
		cfg.WarmupInstructions, cfg.MeasureInstructions = 800_000, 1_000_000
		sys, err := system.New(cfg, mix, 42)
		if err != nil {
			panic(err)
		}
		r := sys.Run()
		ws := system.WeightedSpeedup(r.PerCore, alone)
		if mech == config.Baseline {
			baseWS = ws
		}
		fmt.Printf("%-12s %10.3f %10.1f %10.3f %12d\n",
			mech, ws, r.TagLookupsPKI, r.WriteRowHitRate, r.PortQueueDelay)
	}
	_ = baseWS
	fmt.Println("\nWS = weighted speedup vs running alone; portDelay = cycles")
	fmt.Println("demand lookups spent queued behind other tag-store work.")
}
