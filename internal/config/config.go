// Package config defines the typed configuration for every simulated
// component and provides the presets from Table 1 of the DBI paper
// (1/2/4/8-core systems with a three-level cache hierarchy and DDR3-1066
// DRAM).
package config

import "fmt"

// Mechanism selects the last-level cache organization under study.
// These are the nine mechanisms of Table 2 in the paper.
type Mechanism int

const (
	// Baseline is a plain LRU LLC.
	Baseline Mechanism = iota
	// TADIP is the thread-aware dynamic insertion policy LLC.
	TADIP
	// DAWB is TA-DIP plus DRAM-aware writeback (indiscriminate row-mate
	// tag lookups on dirty evictions).
	DAWB
	// VWQ is TA-DIP plus the Virtual Write Queue (Set State Vector over
	// the LRU ways).
	VWQ
	// SkipCache is the per-application lookup-bypass mechanism with a
	// write-through LLC.
	SkipCache
	// DBI is the plain Dirty-Block Index LLC without optimizations.
	DBI
	// DBIAWB adds aggressive DRAM-aware writeback to DBI.
	DBIAWB
	// DBICLB adds cache lookup bypass to DBI.
	DBICLB
	// DBIAWBCLB enables both optimizations.
	DBIAWBCLB
)

var mechanismNames = map[Mechanism]string{
	Baseline:  "Baseline",
	TADIP:     "TA-DIP",
	DAWB:      "DAWB",
	VWQ:       "VWQ",
	SkipCache: "SkipCache",
	DBI:       "DBI",
	DBIAWB:    "DBI+AWB",
	DBICLB:    "DBI+CLB",
	DBIAWBCLB: "DBI+AWB+CLB",
}

// String returns the label used in the paper's figures.
func (m Mechanism) String() string {
	if s, ok := mechanismNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// UsesDBI reports whether the mechanism maintains a Dirty-Block Index.
func (m Mechanism) UsesDBI() bool {
	switch m {
	case DBI, DBIAWB, DBICLB, DBIAWBCLB:
		return true
	}
	return false
}

// HasAWB reports whether aggressive writeback is enabled.
func (m Mechanism) HasAWB() bool { return m == DBIAWB || m == DBIAWBCLB }

// HasCLB reports whether cache lookup bypass is enabled.
func (m Mechanism) HasCLB() bool { return m == DBICLB || m == DBIAWBCLB }

// AllMechanisms lists every mechanism in the order the paper reports them.
func AllMechanisms() []Mechanism {
	return []Mechanism{Baseline, TADIP, DAWB, VWQ, SkipCache, DBI, DBIAWB, DBICLB, DBIAWBCLB}
}

// ReplacementKind selects the cache replacement/insertion policy.
type ReplacementKind int

const (
	// ReplLRU is least-recently-used with MRU insertion.
	ReplLRU ReplacementKind = iota
	// ReplTADIP is thread-aware DIP with set dueling.
	ReplTADIP
	// ReplDRRIP is thread-aware dynamic RRIP with set dueling.
	ReplDRRIP
)

func (r ReplacementKind) String() string {
	switch r {
	case ReplLRU:
		return "LRU"
	case ReplTADIP:
		return "TA-DIP"
	case ReplDRRIP:
		return "DRRIP"
	}
	return fmt.Sprintf("ReplacementKind(%d)", int(r))
}

// DBIReplacement selects the DBI entry replacement policy (Section 4.3).
type DBIReplacement int

const (
	// DBILRW evicts the least recently written entry.
	DBILRW DBIReplacement = iota
	// DBILRWBIP is LRW with bimodal insertion.
	DBILRWBIP
	// DBIRWIP is the rewrite-interval prediction policy (RRIP-like).
	DBIRWIP
	// DBIMaxDirty evicts the entry with the most dirty blocks.
	DBIMaxDirty
	// DBIMinDirty evicts the entry with the fewest dirty blocks.
	DBIMinDirty
)

func (r DBIReplacement) String() string {
	switch r {
	case DBILRW:
		return "LRW"
	case DBILRWBIP:
		return "LRW-BIP"
	case DBIRWIP:
		return "RWIP"
	case DBIMaxDirty:
		return "Max-Dirty"
	case DBIMinDirty:
		return "Min-Dirty"
	}
	return fmt.Sprintf("DBIReplacement(%d)", int(r))
}

// CacheParams configures one cache level.
type CacheParams struct {
	SizeBytes     uint64
	Ways          int
	BlockSize     uint64
	TagLatency    uint64 // cycles for a tag lookup
	DataLatency   uint64 // cycles for a data access
	SerialTagData bool   // serial (LLC) vs parallel (L1/L2) tag+data
	MSHRs         int
	Replacement   ReplacementKind
}

// Sets returns the number of sets implied by the geometry.
func (c CacheParams) Sets() int {
	return int(c.SizeBytes / (c.BlockSize * uint64(c.Ways)))
}

// Blocks returns the total number of blocks the cache holds.
func (c CacheParams) Blocks() int { return int(c.SizeBytes / c.BlockSize) }

// AccessLatency is the latency of a full hit (tag+data), honouring
// serial vs parallel lookup.
func (c CacheParams) AccessLatency() uint64 {
	if c.SerialTagData {
		return c.TagLatency + c.DataLatency
	}
	if c.DataLatency > c.TagLatency {
		return c.DataLatency
	}
	return c.TagLatency
}

// Validate reports configuration errors.
func (c CacheParams) Validate() error {
	switch {
	case c.BlockSize == 0 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("config: cache block size %d not a power of two", c.BlockSize)
	case c.Ways <= 0:
		return fmt.Errorf("config: cache ways %d", c.Ways)
	case c.SizeBytes%(c.BlockSize*uint64(c.Ways)) != 0:
		return fmt.Errorf("config: cache size %d not divisible into %d-way sets of %dB blocks",
			c.SizeBytes, c.Ways, c.BlockSize)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("config: cache set count %d not a power of two", c.Sets())
	}
	return nil
}

// DBIParams configures the Dirty-Block Index (Table 1 row "DBI").
type DBIParams struct {
	// AlphaNum/AlphaDen express the DBI size α as a fraction of the
	// number of blocks tracked by the main tag store (e.g. 1/4).
	AlphaNum, AlphaDen int
	// Granularity is the number of blocks tracked per DBI entry
	// (up to blocks-per-DRAM-row).
	Granularity   int
	Associativity int
	Latency       uint64 // cycles per DBI lookup
	Replacement   DBIReplacement
	// BIPEpsilon is the 1/N probability of MRU insertion for LRW-BIP.
	BIPEpsilonDen int
}

// Entries returns the number of DBI entries needed to track
// α × cacheBlocks blocks at the configured granularity.
func (d DBIParams) Entries(cacheBlocks int) int {
	tracked := cacheBlocks * d.AlphaNum / d.AlphaDen
	e := tracked / d.Granularity
	if e < d.Associativity {
		e = d.Associativity
	}
	return e
}

// Validate reports configuration errors.
func (d DBIParams) Validate() error {
	switch {
	case d.AlphaNum <= 0 || d.AlphaDen <= 0:
		return fmt.Errorf("config: DBI alpha %d/%d", d.AlphaNum, d.AlphaDen)
	case d.Granularity <= 0 || d.Granularity&(d.Granularity-1) != 0:
		return fmt.Errorf("config: DBI granularity %d not a power of two", d.Granularity)
	case d.Associativity <= 0:
		return fmt.Errorf("config: DBI associativity %d", d.Associativity)
	}
	return nil
}

// DRAMParams configures the DDR3 model. All latencies are in CPU cycles
// (the paper's 2.67GHz core against DDR3-1066 gives 5 CPU cycles per
// memory bus cycle).
type DRAMParams struct {
	Channels int
	Ranks    int
	Banks    int
	RowBytes uint64

	// Timing in CPU cycles.
	TCAS   uint64 // column access (row hit read latency to first data)
	TRCD   uint64 // activate to column access
	TRP    uint64 // precharge
	TWR    uint64 // write recovery before precharge after a write
	TBurst uint64 // data bus occupancy per 64B burst (BL8 on an 8B bus)

	WriteBufferEntries int
	// WriteDrainLow is the buffer occupancy at which a drain stops
	// (drain-when-full policy: start at full, stop at low watermark).
	WriteDrainLow int

	// RefreshInterval, when non-zero, blocks all banks for
	// RefreshLatency cycles every RefreshInterval cycles (DDR3
	// auto-refresh: tREFI ~ 7.8us, tRFC ~ 110-350ns). Zero disables
	// refresh, the default for the paper-shape experiments.
	RefreshInterval uint64
	RefreshLatency  uint64
}

// RowHitLatency is the read latency when the row is already open.
func (d DRAMParams) RowHitLatency() uint64 { return d.TCAS + d.TBurst }

// RowClosedLatency is the read latency when the bank is precharged.
func (d DRAMParams) RowClosedLatency() uint64 { return d.TRCD + d.TCAS + d.TBurst }

// RowConflictLatency is the read latency when another row is open.
func (d DRAMParams) RowConflictLatency() uint64 {
	return d.TRP + d.TRCD + d.TCAS + d.TBurst
}

// Validate reports configuration errors.
func (d DRAMParams) Validate() error {
	switch {
	case d.Channels <= 0 || d.Ranks <= 0 || d.Banks <= 0:
		return fmt.Errorf("config: DRAM topology %d/%d/%d", d.Channels, d.Ranks, d.Banks)
	case d.Banks&(d.Banks-1) != 0:
		return fmt.Errorf("config: DRAM bank count %d not a power of two", d.Banks)
	case d.RowBytes == 0 || d.RowBytes&(d.RowBytes-1) != 0:
		return fmt.Errorf("config: DRAM row size %d not a power of two", d.RowBytes)
	case d.WriteBufferEntries <= 0:
		return fmt.Errorf("config: write buffer entries %d", d.WriteBufferEntries)
	case d.WriteDrainLow < 0 || d.WriteDrainLow >= d.WriteBufferEntries:
		return fmt.Errorf("config: write drain low watermark %d with %d entries",
			d.WriteDrainLow, d.WriteBufferEntries)
	}
	return nil
}

// CoreParams configures one out-of-order core.
type CoreParams struct {
	WindowSize int // reorder-buffer entries (128 in the paper)
	IssueWidth int // instructions issued per cycle (1 in the paper)
}

// MissPredictorParams configures the Skip-Cache-style miss predictor used
// by the CLB optimization.
type MissPredictorParams struct {
	Threshold    float64 // miss-rate threshold for predicting misses (0.95)
	EpochCycles  uint64  // epoch length in cycles
	SampledSets  int     // number of sampled sets per thread
	SetSampleLog int     // sample one in 2^SetSampleLog sets
}

// SystemConfig is the complete configuration of a simulated machine.
type SystemConfig struct {
	NumCores  int
	Mechanism Mechanism
	Core      CoreParams
	L1        CacheParams
	L2        CacheParams
	L3        CacheParams
	DBI       DBIParams
	MissPred  MissPredictorParams
	DRAM      DRAMParams

	// WarmupInstructions / MeasureInstructions are per-core instruction
	// budgets (the paper uses 200M warmup + 300M measured; the default
	// presets scale this down; experiments may override).
	WarmupInstructions  uint64
	MeasureInstructions uint64
}

// Validate reports the first configuration error found.
func (s SystemConfig) Validate() error {
	if s.NumCores <= 0 {
		return fmt.Errorf("config: %d cores", s.NumCores)
	}
	for _, c := range []struct {
		name string
		p    CacheParams
	}{{"L1", s.L1}, {"L2", s.L2}, {"L3", s.L3}} {
		if err := c.p.Validate(); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}
	if s.Mechanism.UsesDBI() {
		if err := s.DBI.Validate(); err != nil {
			return err
		}
	}
	if err := s.DRAM.Validate(); err != nil {
		return err
	}
	if s.Core.WindowSize <= 0 || s.Core.IssueWidth <= 0 {
		return fmt.Errorf("config: core window %d width %d", s.Core.WindowSize, s.Core.IssueWidth)
	}
	return nil
}

// l3Geometry returns (ways, tagLat, dataLat) for an n-core Table-1 LLC.
func l3Geometry(cores int) (ways int, tagLat, dataLat uint64) {
	switch {
	case cores <= 1:
		return 16, 10, 24
	case cores == 2:
		return 32, 12, 29
	case cores <= 4:
		return 32, 13, 31
	default:
		return 32, 14, 33
	}
}

// Paper returns the Table-1 configuration for an n-core system
// (2MB of shared L3 per core) with the given mechanism.
func Paper(cores int, mech Mechanism) SystemConfig {
	return PaperWithL3PerCore(cores, mech, 2<<20)
}

// Scaled returns the laptop-scale experiment configuration: identical
// structure to Paper but with a 1MB-per-core LLC, a half-scale private
// hierarchy and instruction budgets sized so a run completes in about a
// second. The benchmark models keep the same footprint/LLC ratios the
// paper's workloads have against the 2MB-per-core LLC, so every
// mechanism comparison preserves its shape. EXPERIMENTS.md documents
// this scaling.
func Scaled(cores int, mech Mechanism) SystemConfig {
	cfg := PaperWithL3PerCore(cores, mech, 1<<20)
	// Preserve the paper's L1:L2:LLC capacity ratios (1:8:64 per core) at
	// half scale so dirty-block residence windows keep their shape.
	cfg.L1.SizeBytes = 16 << 10
	cfg.L2.SizeBytes = 128 << 10
	cfg.WarmupInstructions = 500_000
	cfg.MeasureInstructions = 700_000
	// Keep the paper's absolute DBI entry count (128 entries for the
	// 1-core LLC): an entry's lifetime is entries divided by the
	// cold-region insert rate — an absolute quantity that halving the
	// cache would otherwise halve, making the scaled DBI prematurely
	// flush write working sets the paper's DBI retains.
	cfg.DBI.AlphaNum, cfg.DBI.AlphaDen = 1, 2
	cfg.DBI.Associativity = 8
	cfg.MissPred.EpochCycles = 600_000
	return cfg
}

// PaperWithL3PerCore is Paper with an explicit L3 capacity per core,
// used by the Table-7 cache-size sensitivity study.
func PaperWithL3PerCore(cores int, mech Mechanism, l3PerCore uint64) SystemConfig {
	ways, tagLat, dataLat := l3Geometry(cores)
	l3Repl := ReplTADIP
	if mech == Baseline {
		l3Repl = ReplLRU
	}
	cfg := SystemConfig{
		NumCores:  cores,
		Mechanism: mech,
		Core:      CoreParams{WindowSize: 128, IssueWidth: 1},
		L1: CacheParams{
			SizeBytes: 32 << 10, Ways: 2, BlockSize: 64,
			TagLatency: 2, DataLatency: 2, MSHRs: 32,
			Replacement: ReplLRU,
		},
		L2: CacheParams{
			SizeBytes: 256 << 10, Ways: 8, BlockSize: 64,
			TagLatency: 12, DataLatency: 14, MSHRs: 32,
			Replacement: ReplLRU,
		},
		L3: CacheParams{
			SizeBytes: l3PerCore * uint64(cores), Ways: ways, BlockSize: 64,
			TagLatency: tagLat, DataLatency: dataLat, SerialTagData: true,
			MSHRs: 32 * cores, Replacement: l3Repl,
		},
		DBI: DBIParams{
			AlphaNum: 1, AlphaDen: 4, Granularity: 64,
			Associativity: 16, Latency: 4,
			Replacement: DBILRW, BIPEpsilonDen: 64,
		},
		MissPred: MissPredictorParams{
			Threshold:    0.95,
			EpochCycles:  2_000_000,
			SampledSets:  32,
			SetSampleLog: 5,
		},
		DRAM: DRAMParams{
			Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10,
			// DDR3-1066 at a 2.67GHz core: 5 CPU cycles per bus cycle.
			// tCAS = tRCD = tRP = 7 bus cycles; BL8 on an 8B bus = 4 bus
			// cycles of data transfer.
			TCAS: 35, TRCD: 35, TRP: 35, TWR: 40, TBurst: 20,
			WriteBufferEntries: 64,
			WriteDrainLow:      16,
		},
		WarmupInstructions:  200_000,
		MeasureInstructions: 300_000,
	}
	return cfg
}
