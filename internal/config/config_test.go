package config

import "testing"

func TestMechanismStrings(t *testing.T) {
	want := map[Mechanism]string{
		Baseline:  "Baseline",
		TADIP:     "TA-DIP",
		DAWB:      "DAWB",
		VWQ:       "VWQ",
		SkipCache: "SkipCache",
		DBI:       "DBI",
		DBIAWB:    "DBI+AWB",
		DBICLB:    "DBI+CLB",
		DBIAWBCLB: "DBI+AWB+CLB",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Mechanism(99).String() != "Mechanism(99)" {
		t.Error("unknown mechanism string")
	}
}

func TestMechanismFlags(t *testing.T) {
	cases := []struct {
		m             Mechanism
		dbi, awb, clb bool
	}{
		{Baseline, false, false, false},
		{TADIP, false, false, false},
		{DAWB, false, false, false},
		{VWQ, false, false, false},
		{SkipCache, false, false, false},
		{DBI, true, false, false},
		{DBIAWB, true, true, false},
		{DBICLB, true, false, true},
		{DBIAWBCLB, true, true, true},
	}
	for _, c := range cases {
		if c.m.UsesDBI() != c.dbi || c.m.HasAWB() != c.awb || c.m.HasCLB() != c.clb {
			t.Errorf("%v flags = (%v,%v,%v), want (%v,%v,%v)", c.m,
				c.m.UsesDBI(), c.m.HasAWB(), c.m.HasCLB(), c.dbi, c.awb, c.clb)
		}
	}
	if len(AllMechanisms()) != 9 {
		t.Errorf("AllMechanisms length %d, want 9", len(AllMechanisms()))
	}
}

func TestCacheParamsGeometry(t *testing.T) {
	p := CacheParams{SizeBytes: 2 << 20, Ways: 16, BlockSize: 64,
		TagLatency: 10, DataLatency: 24, SerialTagData: true}
	if p.Sets() != 2048 {
		t.Fatalf("Sets = %d, want 2048", p.Sets())
	}
	if p.Blocks() != 32768 {
		t.Fatalf("Blocks = %d, want 32768", p.Blocks())
	}
	if p.AccessLatency() != 34 {
		t.Fatalf("serial AccessLatency = %d, want 34", p.AccessLatency())
	}
	p.SerialTagData = false
	if p.AccessLatency() != 24 {
		t.Fatalf("parallel AccessLatency = %d, want 24", p.AccessLatency())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestCacheParamsValidate(t *testing.T) {
	bad := []CacheParams{
		{SizeBytes: 1 << 20, Ways: 8, BlockSize: 0},
		{SizeBytes: 1 << 20, Ways: 0, BlockSize: 64},
		{SizeBytes: 1000, Ways: 8, BlockSize: 64},
		{SizeBytes: 3 * 64 * 8 * 4, Ways: 8, BlockSize: 64}, // 3 sets: not pow2
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestDBIEntries(t *testing.T) {
	d := DBIParams{AlphaNum: 1, AlphaDen: 4, Granularity: 64, Associativity: 16}
	// 2MB cache, 64B blocks -> 32768 blocks; α=1/4 -> 8192 tracked;
	// granularity 64 -> 128 entries.
	if got := d.Entries(32768); got != 128 {
		t.Fatalf("Entries = %d, want 128", got)
	}
	// Tiny cache: floor at associativity.
	if got := d.Entries(64); got != 16 {
		t.Fatalf("Entries floor = %d, want 16", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid DBI params rejected: %v", err)
	}
	for _, bad := range []DBIParams{
		{AlphaNum: 0, AlphaDen: 4, Granularity: 64, Associativity: 16},
		{AlphaNum: 1, AlphaDen: 4, Granularity: 48, Associativity: 16},
		{AlphaNum: 1, AlphaDen: 4, Granularity: 64, Associativity: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid DBI params accepted: %+v", bad)
		}
	}
}

func TestDRAMLatencies(t *testing.T) {
	d := Paper(1, TADIP).DRAM
	if d.RowHitLatency() != 55 {
		t.Fatalf("RowHitLatency = %d, want 55", d.RowHitLatency())
	}
	if d.RowClosedLatency() != 90 {
		t.Fatalf("RowClosedLatency = %d, want 90", d.RowClosedLatency())
	}
	if d.RowConflictLatency() != 125 {
		t.Fatalf("RowConflictLatency = %d, want 125", d.RowConflictLatency())
	}
	if d.RowHitLatency() >= d.RowClosedLatency() || d.RowClosedLatency() >= d.RowConflictLatency() {
		t.Fatal("latency ordering violated")
	}
}

func TestPaperPresets(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := Paper(cores, DBIAWBCLB)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%d-core preset invalid: %v", cores, err)
		}
		if got := cfg.L3.SizeBytes; got != uint64(cores)*(2<<20) {
			t.Fatalf("%d-core L3 size = %d", cores, got)
		}
	}
	// Table-1 LLC geometry: 16/32/32/32 ways, 10/12/13/14-cycle tags.
	ways := []int{16, 32, 32, 32}
	tags := []uint64{10, 12, 13, 14}
	for i, cores := range []int{1, 2, 4, 8} {
		cfg := Paper(cores, TADIP)
		if cfg.L3.Ways != ways[i] || cfg.L3.TagLatency != tags[i] {
			t.Fatalf("%d-core L3 geometry = %d ways, %d tag cycles",
				cores, cfg.L3.Ways, cfg.L3.TagLatency)
		}
		if !cfg.L3.SerialTagData {
			t.Fatal("L3 must use serial tag+data lookup")
		}
	}
}

func TestBaselineUsesLRU(t *testing.T) {
	if Paper(1, Baseline).L3.Replacement != ReplLRU {
		t.Fatal("baseline preset must use LRU at L3")
	}
	if Paper(1, DAWB).L3.Replacement != ReplTADIP {
		t.Fatal("DAWB preset must use TA-DIP at L3")
	}
}

func TestSystemValidateCatchesBadParts(t *testing.T) {
	cfg := Paper(1, DBIAWB)
	cfg.DBI.Granularity = 48
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid DBI granularity accepted")
	}
	cfg = Paper(1, TADIP)
	cfg.DBI.Granularity = 48 // irrelevant without DBI
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DBI params validated for non-DBI mechanism: %v", err)
	}
	cfg = Paper(1, TADIP)
	cfg.NumCores = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = Paper(1, TADIP)
	cfg.DRAM.WriteDrainLow = 64
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad drain watermark accepted")
	}
	cfg = Paper(1, TADIP)
	cfg.Core.WindowSize = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestPaperWithL3PerCore(t *testing.T) {
	cfg := PaperWithL3PerCore(4, DBIAWBCLB, 4<<20)
	if cfg.L3.SizeBytes != 16<<20 {
		t.Fatalf("L3 size = %d, want 16MB", cfg.L3.SizeBytes)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplacementKindStrings(t *testing.T) {
	if ReplLRU.String() != "LRU" || ReplTADIP.String() != "TA-DIP" || ReplDRRIP.String() != "DRRIP" {
		t.Fatal("replacement kind strings wrong")
	}
	if DBILRW.String() != "LRW" || DBIMinDirty.String() != "Min-Dirty" {
		t.Fatal("DBI replacement strings wrong")
	}
}
