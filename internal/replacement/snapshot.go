package replacement

import "dbisim/internal/randstate"

// PolicyState is a checkpoint container shared by every policy: each
// policy fills the fields it owns and ignores the rest. One shared
// shape keeps the cache layer policy-agnostic — it holds a PolicyState
// per cache and lets the concrete policy interpret it. The zero value
// is ready; buffers are reused across captures.
type PolicyState struct {
	stamps []uint64 // LRU/TA-DIP recency stamps
	clock  uint64
	rrpv   []uint8 // (D)RRIP re-reference values
	psel   []int   // set-dueling selectors
	rng    randstate.State
}

func copyU64(dst []uint64, src []uint64) []uint64 {
	if len(dst) != len(src) {
		dst = make([]uint64, len(src))
	}
	copy(dst, src)
	return dst
}

func copyU8(dst []uint8, src []uint8) []uint8 {
	if len(dst) != len(src) {
		dst = make([]uint8, len(src))
	}
	copy(dst, src)
	return dst
}

func copyInt(dst []int, src []int) []int {
	if len(dst) != len(src) {
		dst = make([]int, len(src))
	}
	copy(dst, src)
	return dst
}

// Snapshot implements Policy.
func (l *LRU) Snapshot(st *PolicyState) {
	st.stamps = copyU64(st.stamps, l.s.stamps)
	st.clock = l.s.clock
}

// Restore implements Policy.
func (l *LRU) Restore(st *PolicyState) {
	copy(l.s.stamps, st.stamps)
	l.s.clock = st.clock
}

// Snapshot implements Policy.
func (d *TADIP) Snapshot(st *PolicyState) {
	st.stamps = copyU64(st.stamps, d.s.stamps)
	st.clock = d.s.clock
	st.psel = copyInt(st.psel, d.psel)
	randstate.MustSave(d.src, &st.rng)
}

// Restore implements Policy.
func (d *TADIP) Restore(st *PolicyState) {
	copy(d.s.stamps, st.stamps)
	d.s.clock = st.clock
	copy(d.psel, st.psel)
	randstate.MustRestore(d.src, &st.rng)
}

// Snapshot implements Policy.
func (d *DRRIP) Snapshot(st *PolicyState) {
	st.rrpv = copyU8(st.rrpv, d.r.rrpv)
	st.psel = copyInt(st.psel, d.psel)
	randstate.MustSave(d.src, &st.rng)
}

// Restore implements Policy.
func (d *DRRIP) Restore(st *PolicyState) {
	copy(d.r.rrpv, st.rrpv)
	copy(d.psel, st.psel)
	randstate.MustRestore(d.src, &st.rng)
}
