package replacement

// Ranker is implemented by policies that can order the ways of a set by
// eviction priority: rank 0 is the next victim (LRU-most position).
// The Virtual Write Queue's Set State Vector consults ranks to find dirty
// blocks in the LRU ways without a full tag lookup.
type Ranker interface {
	// Rank returns the eviction rank of (set, way): 0 = next victim.
	Rank(set, way int) int
}

// rank returns how many ways of the set have strictly smaller stamps
// (ties broken by way index), i.e. the way's distance from the LRU end.
func (s *lruState) rank(set, way int) int {
	self := s.stamps[set*s.ways+way]
	r := 0
	for w := 0; w < s.ways; w++ {
		if w == way {
			continue
		}
		v := s.stamps[set*s.ways+w]
		if v < self || (v == self && w < way) {
			r++
		}
	}
	return r
}

// Rank implements Ranker.
func (l *LRU) Rank(set, way int) int { return l.s.rank(set, way) }

// Rank implements Ranker.
func (d *TADIP) Rank(set, way int) int { return d.s.rank(set, way) }

// Rank implements Ranker: ways with larger RRPVs are closer to eviction
// (rank 0), ties broken by way index.
func (d *DRRIP) Rank(set, way int) int {
	self := d.r.rrpv[set*d.r.ways+way]
	r := 0
	for w := 0; w < d.r.ways; w++ {
		if w == way {
			continue
		}
		v := d.r.rrpv[set*d.r.ways+w]
		if v > self || (v == self && w < way) {
			r++
		}
	}
	return r
}
