package replacement

import (
	"testing"
	"testing/quick"
)

func TestLRUBasic(t *testing.T) {
	p := NewLRU(4, 4)
	// Fill ways 0..3 in order; way 0 is LRU.
	for w := 0; w < 4; w++ {
		p.Insert(1, w, 0)
	}
	if v := p.Victim(1); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	// Touch way 0; way 1 becomes LRU.
	p.Touch(1, 0)
	if v := p.Victim(1); v != 1 {
		t.Fatalf("victim after touch = %d, want 1", v)
	}
	if p.Name() != "LRU" {
		t.Fatal("name")
	}
	p.OnMiss(1, 0) // no-op, must not panic
}

func TestLRUSetsIndependent(t *testing.T) {
	p := NewLRU(2, 2)
	p.Insert(0, 0, 0)
	p.Insert(0, 1, 0)
	p.Insert(1, 1, 0)
	p.Insert(1, 0, 0)
	if p.Victim(0) != 0 {
		t.Fatal("set 0 victim wrong")
	}
	if p.Victim(1) != 1 {
		t.Fatal("set 1 victim wrong")
	}
}

// Exercising an access sequence: LRU victim is always the least recently
// touched/inserted way.
func TestLRUMatchesReference(t *testing.T) {
	const ways = 8
	p := NewLRU(1, ways)
	ref := make([]int, 0, ways) // recency list, LRU first
	touch := func(w int) {
		for i, v := range ref {
			if v == w {
				ref = append(ref[:i], ref[i+1:]...)
				break
			}
		}
		ref = append(ref, w)
	}
	for w := 0; w < ways; w++ {
		p.Insert(0, w, 0)
		touch(w)
	}
	seq := []int{3, 1, 4, 1, 5, 0, 2, 6, 7, 3}
	for _, w := range seq {
		p.Touch(0, w)
		touch(w)
		if got, want := p.Victim(0), ref[0]; got != want {
			t.Fatalf("after touching %d: victim %d, want %d", w, got, want)
		}
	}
}

func TestTADIPLeaderSetsDisjoint(t *testing.T) {
	d := NewTADIP(TADIPConfig{Sets: 2048, Ways: 16, Threads: 2, Seed: 1})
	lru, bip := 0, 0
	for s := 0; s < 2048; s++ {
		switch d.leaderKind(s, 0) {
		case 1:
			lru++
		case -1:
			bip++
		}
	}
	if lru != 32 || bip != 32 {
		t.Fatalf("thread 0 leaders: %d LRU, %d BIP; want 32/32", lru, bip)
	}
	// Different threads use different leader sets.
	same := 0
	for s := 0; s < 2048; s++ {
		if d.leaderKind(s, 0) != 0 && d.leaderKind(s, 0) == d.leaderKind(s, 1) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("threads share %d leader sets", same)
	}
}

func TestTADIPPSELMovement(t *testing.T) {
	d := NewTADIP(TADIPConfig{Sets: 256, Ways: 4, Threads: 1, DuelingSets: 32, Seed: 1})
	start := d.PSEL(0)
	// Misses in LRU leader sets push PSEL up (toward BIP).
	for s := 0; s < 256; s++ {
		if d.leaderKind(s, 0) == 1 {
			for i := 0; i < 10; i++ {
				d.OnMiss(s, 0)
			}
		}
	}
	if d.PSEL(0) <= start {
		t.Fatalf("PSEL did not rise: %d -> %d", start, d.PSEL(0))
	}
	// Misses in BIP leader sets push it back down.
	for s := 0; s < 256; s++ {
		if d.leaderKind(s, 0) == -1 {
			for i := 0; i < 40; i++ {
				d.OnMiss(s, 0)
			}
		}
	}
	if d.PSEL(0) >= start {
		t.Fatalf("PSEL did not fall below start: %d", d.PSEL(0))
	}
}

func TestTADIPPSELSaturates(t *testing.T) {
	d := NewTADIP(TADIPConfig{Sets: 64, Ways: 4, Threads: 1, DuelingSets: 32, PSELBits: 4, Seed: 1})
	var lruLeader, bipLeader int = -1, -1
	for s := 0; s < 256; s++ {
		switch d.leaderKind(s, 0) {
		case 1:
			lruLeader = s
		case -1:
			bipLeader = s
		}
	}
	for i := 0; i < 1000; i++ {
		d.OnMiss(lruLeader, 0)
	}
	if d.PSEL(0) != 15 {
		t.Fatalf("PSEL = %d, want saturation at 15", d.PSEL(0))
	}
	for i := 0; i < 1000; i++ {
		d.OnMiss(bipLeader, 0)
	}
	if d.PSEL(0) != 0 {
		t.Fatalf("PSEL = %d, want saturation at 0", d.PSEL(0))
	}
}

func TestTADIPBIPInsertsAtLRU(t *testing.T) {
	// With PSEL saturated high, follower sets use BIP: inserted blocks
	// mostly stay the next victim.
	d := NewTADIP(TADIPConfig{Sets: 256, Ways: 4, Threads: 1, DuelingSets: 32, Seed: 1})
	for s := 0; s < 256; s++ {
		if d.leaderKind(s, 0) == 1 {
			for i := 0; i < 2000; i++ {
				d.OnMiss(s, 0)
			}
		}
	}
	follower := -1
	for s := 0; s < 256; s++ {
		if d.leaderKind(s, 0) == 0 {
			follower = s
			break
		}
	}
	for w := 0; w < 4; w++ {
		d.Insert(follower, w, 0)
		d.Touch(follower, w)
	}
	victimAfterInsert := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := d.Victim(follower)
		d.Insert(follower, v, 0)
		if d.Victim(follower) == v {
			victimAfterInsert++
		}
	}
	if victimAfterInsert < trials*8/10 {
		t.Fatalf("BIP kept only %d/%d inserts at LRU", victimAfterInsert, trials)
	}
}

func TestTADIPLRUModeInsertsAtMRU(t *testing.T) {
	d := NewTADIP(TADIPConfig{Sets: 256, Ways: 4, Threads: 1, DuelingSets: 32, Seed: 1})
	// PSEL starts at midpoint; drive it low so followers use LRU insertion.
	for s := 0; s < 256; s++ {
		if d.leaderKind(s, 0) == -1 {
			for i := 0; i < 2000; i++ {
				d.OnMiss(s, 0)
			}
		}
	}
	follower := -1
	for s := 0; s < 256; s++ {
		if d.leaderKind(s, 0) == 0 {
			follower = s
			break
		}
	}
	for w := 0; w < 4; w++ {
		d.Insert(follower, w, 0)
	}
	v := d.Victim(follower)
	d.Insert(follower, v, 0)
	if d.Victim(follower) == v {
		t.Fatal("LRU-mode insert stayed at LRU position")
	}
}

func TestDRRIPVictimPrefersMaxRRPV(t *testing.T) {
	d := NewDRRIP(TADIPConfig{Sets: 16, Ways: 4, Threads: 1, Seed: 1})
	// All RRPVs start at max: way 0 is the first victim.
	if v := d.Victim(0); v != 0 {
		t.Fatalf("initial victim = %d, want 0", v)
	}
	d.Insert(0, 0, 0) // SRRIP leader or follower: inserts below max
	d.Touch(0, 1)     // way 1 becomes RRPV 0
	if v := d.Victim(0); v == 1 {
		t.Fatal("victim chose the just-touched way")
	}
	if d.Name() != "DRRIP" {
		t.Fatal("name")
	}
}

func TestDRRIPAging(t *testing.T) {
	d := NewDRRIP(TADIPConfig{Sets: 1, Ways: 2, Threads: 1, Seed: 1})
	d.Touch(0, 0)
	d.Touch(0, 1)
	// No way has max RRPV; victim search must age and terminate.
	v := d.Victim(0)
	if v != 0 && v != 1 {
		t.Fatalf("victim = %d", v)
	}
}

func TestDRRIPPSEL(t *testing.T) {
	d := NewDRRIP(TADIPConfig{Sets: 64, Ways: 4, Threads: 1, DuelingSets: 32, Seed: 1})
	srrip, brrip := -1, -1
	for s := 0; s < 256; s++ {
		switch d.leaderKind(s, 0) {
		case 1:
			srrip = s
		case -1:
			brrip = s
		}
	}
	if srrip < 0 || brrip < 0 {
		t.Fatal("missing leader sets")
	}
	before := d.psel[0]
	d.OnMiss(srrip, 0)
	if d.psel[0] != before+1 {
		t.Fatal("SRRIP-leader miss did not increment PSEL")
	}
	d.OnMiss(brrip, 0)
	d.OnMiss(brrip, 0)
	if d.psel[0] != before-1 {
		t.Fatal("BRRIP-leader misses did not decrement PSEL")
	}
}

func TestNewByKind(t *testing.T) {
	for _, k := range []Kind{KindLRU, KindTADIP, KindDRRIP} {
		p, err := New(k, Config{Sets: 64, Ways: 8, Threads: 2, Seed: 1})
		if err != nil {
			t.Fatalf("New(%d): %v", k, err)
		}
		if p == nil {
			t.Fatalf("New(%d) returned nil", k)
		}
	}
	if _, err := New(Kind(99), Config{Sets: 4, Ways: 2}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Property: Victim always returns a legal way index, for every policy.
func TestQuickVictimInRange(t *testing.T) {
	mk := []func() Policy{
		func() Policy { return NewLRU(16, 8) },
		func() Policy {
			return NewTADIP(TADIPConfig{Sets: 16, Ways: 8, Threads: 2, DuelingSets: 4, Seed: 3})
		},
		func() Policy {
			return NewDRRIP(TADIPConfig{Sets: 16, Ways: 8, Threads: 2, DuelingSets: 4, Seed: 3})
		},
	}
	for _, make := range mk {
		p := make()
		f := func(ops []uint16) bool {
			for _, op := range ops {
				set := int(op) % 16
				way := int(op>>4) % 8
				thread := int(op >> 8 & 1)
				switch op % 4 {
				case 0:
					p.Touch(set, way)
				case 1:
					p.Insert(set, way, thread)
				case 2:
					p.OnMiss(set, thread)
				case 3:
					if v := p.Victim(set); v < 0 || v >= 8 {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}
