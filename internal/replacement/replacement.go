// Package replacement implements the cache replacement and insertion
// policies evaluated in the DBI paper: LRU, BIP, thread-aware DIP with
// set dueling (TA-DIP, the default LLC policy for every non-baseline
// mechanism), and SRRIP/BRRIP/DRRIP (the Section 6.5 sensitivity study).
//
// A Policy manages recency state for a set-associative structure with a
// fixed number of sets and ways. The owning cache calls Touch on hits,
// Insert on fills, OnMiss on demand misses (for set-dueling counters) and
// Victim to choose an eviction way when a set is full.
package replacement

import (
	"fmt"
	"math/rand"
)

// Policy is the replacement interface shared by all cache levels.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Touch records a hit on (set, way).
	Touch(set, way int)
	// Insert records a fill of (set, way) by thread.
	Insert(set, way, thread int)
	// OnMiss records a demand miss by thread in set (set-dueling input).
	OnMiss(set, thread int)
	// Victim returns the way to evict from a full set.
	Victim(set int) int
	// Reset returns the policy to the state a fresh construction with the
	// given seed would have, reusing its arrays. Recency stamps and RRPVs
	// are restored to their exact power-on values (not merely offset):
	// stale values would leak through tie-breaks and demotion minima and
	// break the fresh-vs-reset bit-identity the sweep pool depends on.
	Reset(seed int64)
	// Snapshot captures the policy's full state (recency/RRPV arrays,
	// dueling selectors, rng) into st; Restore writes it back, so a
	// restored policy makes exactly the decisions the captured one would
	// have. Both reuse st's buffers across captures.
	Snapshot(st *PolicyState)
	Restore(st *PolicyState)
}

// lruState holds per-block recency stamps; higher is more recent.
type lruState struct {
	ways   int
	stamps []uint64
	clock  uint64
}

func newLRUState(sets, ways int) *lruState {
	return &lruState{ways: ways, stamps: make([]uint64, sets*ways)}
}

func (s *lruState) touch(set, way int) {
	s.clock++
	s.stamps[set*s.ways+way] = s.clock
}

// demote makes (set, way) the LRU candidate of its set.
func (s *lruState) demote(set, way int) {
	min := s.stamps[set*s.ways]
	for w := 1; w < s.ways; w++ {
		if v := s.stamps[set*s.ways+w]; v < min {
			min = v
		}
	}
	if min == 0 {
		min = 1
	}
	s.stamps[set*s.ways+way] = min - 1
}

func (s *lruState) reset() {
	for i := range s.stamps {
		s.stamps[i] = 0
	}
	s.clock = 0
}

func (s *lruState) victim(set int) int {
	best, bestStamp := 0, s.stamps[set*s.ways]
	for w := 1; w < s.ways; w++ {
		if v := s.stamps[set*s.ways+w]; v < bestStamp {
			best, bestStamp = w, v
		}
	}
	return best
}

// LRU is classic least-recently-used with MRU insertion.
type LRU struct{ s *lruState }

// NewLRU returns an LRU policy for a sets×ways structure.
func NewLRU(sets, ways int) *LRU { return &LRU{s: newLRUState(sets, ways)} }

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Touch implements Policy.
func (l *LRU) Touch(set, way int) { l.s.touch(set, way) }

// Insert implements Policy (MRU insertion).
func (l *LRU) Insert(set, way, thread int) { l.s.touch(set, way) }

// OnMiss implements Policy (no dueling state).
func (l *LRU) OnMiss(set, thread int) {}

// Victim implements Policy.
func (l *LRU) Victim(set int) int { return l.s.victim(set) }

// Reset implements Policy (seed unused: LRU has no random component).
func (l *LRU) Reset(seed int64) { l.s.reset() }

// TADIP is the thread-aware dynamic insertion policy [Jaleel+, PACT'08;
// Qureshi+, ISCA'07]: each thread duels LRU insertion against bimodal
// insertion (BIP) on a few leader sets and follows the winner elsewhere.
type TADIP struct {
	s          *lruState
	sets       int
	period     int // one LRU leader and one BIP leader per period, per thread
	psel       []int
	pselMax    int
	epsilonDen int
	rng        *rand.Rand
	src        rand.Source // rng's source, retained for state capture
}

// TADIPConfig configures TA-DIP.
type TADIPConfig struct {
	Sets, Ways int
	Threads    int
	// DuelingSets is the number of leader sets per policy per thread (32
	// in the paper).
	DuelingSets int
	// PSELBits sizes the per-thread policy selector (10 in the paper).
	PSELBits int
	// EpsilonDen is the 1/N probability of MRU insertion under BIP (64).
	EpsilonDen int
	Seed       int64
}

// NewTADIP returns a TA-DIP policy.
func NewTADIP(c TADIPConfig) *TADIP {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.DuelingSets < 1 {
		c.DuelingSets = 32
	}
	if c.PSELBits < 1 {
		c.PSELBits = 10
	}
	if c.EpsilonDen < 1 {
		c.EpsilonDen = 64
	}
	period := c.Sets / c.DuelingSets
	if period < 2 {
		period = 2
	}
	max := 1<<c.PSELBits - 1
	psel := make([]int, c.Threads)
	for i := range psel {
		psel[i] = max / 2
	}
	src := rand.NewSource(c.Seed)
	return &TADIP{
		s:          newLRUState(c.Sets, c.Ways),
		sets:       c.Sets,
		period:     period,
		psel:       psel,
		pselMax:    max,
		epsilonDen: c.EpsilonDen,
		rng:        rand.New(src),
		src:        src,
	}
}

// Name implements Policy.
func (d *TADIP) Name() string { return "TA-DIP" }

// leaderKind returns +1 for thread's LRU leader sets, -1 for BIP leader
// sets and 0 for follower sets. Thread offsets decorrelate the leader
// sets of different threads.
func (d *TADIP) leaderKind(set, thread int) int {
	t := thread % len(d.psel)
	switch (set + 2*t) % d.period {
	case 0:
		return 1
	case d.period / 2:
		return -1
	}
	return 0
}

// Touch implements Policy.
func (d *TADIP) Touch(set, way int) { d.s.touch(set, way) }

// OnMiss implements Policy: a miss in a leader set moves the selector
// away from that leader's policy.
func (d *TADIP) OnMiss(set, thread int) {
	t := thread % len(d.psel)
	switch d.leaderKind(set, thread) {
	case 1: // miss under LRU insertion: vote for BIP
		if d.psel[t] < d.pselMax {
			d.psel[t]++
		}
	case -1: // miss under BIP insertion: vote for LRU
		if d.psel[t] > 0 {
			d.psel[t]--
		}
	}
}

// useBIP decides the insertion policy for thread in set.
func (d *TADIP) useBIP(set, thread int) bool {
	switch d.leaderKind(set, thread) {
	case 1:
		return false
	case -1:
		return true
	}
	t := thread % len(d.psel)
	return d.psel[t] > d.pselMax/2
}

// Insert implements Policy: MRU insertion under LRU, LRU insertion with
// 1/epsilon MRU promotion under BIP.
func (d *TADIP) Insert(set, way, thread int) {
	if d.useBIP(set, thread) && d.rng.Intn(d.epsilonDen) != 0 {
		d.s.demote(set, way)
		return
	}
	d.s.touch(set, way)
}

// Victim implements Policy.
func (d *TADIP) Victim(set int) int { return d.s.victim(set) }

// Reset implements Policy: recency cleared, selectors back to neutral,
// rng reseeded to the same stream construction with seed yields.
func (d *TADIP) Reset(seed int64) {
	d.s.reset()
	for i := range d.psel {
		d.psel[i] = d.pselMax / 2
	}
	d.rng.Seed(seed)
}

// PSEL exposes the selector value for a thread (for tests/diagnostics).
func (d *TADIP) PSEL(thread int) int { return d.psel[thread%len(d.psel)] }

// rripState holds per-block re-reference prediction values.
type rripState struct {
	ways int
	rrpv []uint8
	max  uint8
}

func newRRIPState(sets, ways int, bits int) *rripState {
	max := uint8(1<<bits - 1)
	r := &rripState{ways: ways, rrpv: make([]uint8, sets*ways), max: max}
	for i := range r.rrpv {
		r.rrpv[i] = max
	}
	return r
}

func (r *rripState) reset() {
	for i := range r.rrpv {
		r.rrpv[i] = r.max
	}
}

func (r *rripState) victim(set int) int {
	base := set * r.ways
	for {
		for w := 0; w < r.ways; w++ {
			if r.rrpv[base+w] == r.max {
				return w
			}
		}
		for w := 0; w < r.ways; w++ {
			r.rrpv[base+w]++
		}
	}
}

// DRRIP is thread-aware dynamic RRIP [Jaleel+, ISCA'10]: SRRIP duels
// against BRRIP per thread with the same set-dueling machinery as TA-DIP.
type DRRIP struct {
	r          *rripState
	period     int
	psel       []int
	pselMax    int
	epsilonDen int
	rng        *rand.Rand
	src        rand.Source // rng's source, retained for state capture
}

// NewDRRIP returns a DRRIP policy with 2-bit RRPVs.
func NewDRRIP(c TADIPConfig) *DRRIP {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.DuelingSets < 1 {
		c.DuelingSets = 32
	}
	if c.PSELBits < 1 {
		c.PSELBits = 10
	}
	if c.EpsilonDen < 1 {
		c.EpsilonDen = 32
	}
	period := c.Sets / c.DuelingSets
	if period < 2 {
		period = 2
	}
	max := 1<<c.PSELBits - 1
	psel := make([]int, c.Threads)
	for i := range psel {
		psel[i] = max / 2
	}
	src := rand.NewSource(c.Seed)
	return &DRRIP{
		r:          newRRIPState(c.Sets, c.Ways, 2),
		period:     period,
		psel:       psel,
		pselMax:    max,
		epsilonDen: c.EpsilonDen,
		rng:        rand.New(src),
		src:        src,
	}
}

// Name implements Policy.
func (d *DRRIP) Name() string { return "DRRIP" }

func (d *DRRIP) leaderKind(set, thread int) int {
	t := thread % len(d.psel)
	switch (set + 2*t) % d.period {
	case 0:
		return 1 // SRRIP leader
	case d.period / 2:
		return -1 // BRRIP leader
	}
	return 0
}

// Touch implements Policy: promote to near-immediate re-reference.
func (d *DRRIP) Touch(set, way int) { d.r.rrpv[set*d.r.ways+way] = 0 }

// OnMiss implements Policy.
func (d *DRRIP) OnMiss(set, thread int) {
	t := thread % len(d.psel)
	switch d.leaderKind(set, thread) {
	case 1:
		if d.psel[t] < d.pselMax {
			d.psel[t]++
		}
	case -1:
		if d.psel[t] > 0 {
			d.psel[t]--
		}
	}
}

// Insert implements Policy: SRRIP inserts at max-1; BRRIP inserts at max
// with a 1/epsilon chance of max-1.
func (d *DRRIP) Insert(set, way, thread int) {
	useBRRIP := false
	switch d.leaderKind(set, thread) {
	case 1:
		useBRRIP = false
	case -1:
		useBRRIP = true
	default:
		t := thread % len(d.psel)
		useBRRIP = d.psel[t] > d.pselMax/2
	}
	v := d.r.max - 1
	if useBRRIP && d.rng.Intn(d.epsilonDen) != 0 {
		v = d.r.max
	}
	d.r.rrpv[set*d.r.ways+way] = v
}

// Victim implements Policy.
func (d *DRRIP) Victim(set int) int { return d.r.victim(set) }

// Reset implements Policy.
func (d *DRRIP) Reset(seed int64) {
	d.r.reset()
	for i := range d.psel {
		d.psel[i] = d.pselMax / 2
	}
	d.rng.Seed(seed)
}

// Config bundles what caches need to construct a policy by kind.
type Config struct {
	Sets, Ways, Threads int
	Seed                int64
}

// Kind names a policy for New.
type Kind int

const (
	// KindLRU selects LRU.
	KindLRU Kind = iota
	// KindTADIP selects thread-aware DIP.
	KindTADIP
	// KindDRRIP selects thread-aware DRRIP.
	KindDRRIP
)

// New constructs the named policy with paper-default dueling parameters.
func New(k Kind, c Config) (Policy, error) {
	switch k {
	case KindLRU:
		return NewLRU(c.Sets, c.Ways), nil
	case KindTADIP:
		return NewTADIP(TADIPConfig{
			Sets: c.Sets, Ways: c.Ways, Threads: c.Threads,
			DuelingSets: 32, PSELBits: 10, EpsilonDen: 64, Seed: c.Seed,
		}), nil
	case KindDRRIP:
		return NewDRRIP(TADIPConfig{
			Sets: c.Sets, Ways: c.Ways, Threads: c.Threads,
			DuelingSets: 32, PSELBits: 10, EpsilonDen: 32, Seed: c.Seed,
		}), nil
	}
	return nil, fmt.Errorf("replacement: unknown kind %d", int(k))
}
