// Package misspred implements the Skip-Cache-style miss predictor the
// paper pairs with the cache-lookup-bypass (CLB) optimization
// (Section 3.2): execution is divided into epochs; each thread's LLC miss
// rate is monitored on a small number of sampled sets; when a thread's
// miss rate in an epoch exceeds a threshold (0.95 in the paper), all of
// its accesses in the next epoch — except those to the sampled sets,
// which keep the monitor alive — are predicted to miss.
package misspred

import (
	"fmt"

	"dbisim/internal/config"
	"dbisim/internal/event"
	"dbisim/internal/stats"
)

// Stats counts predictor activity.
type Stats struct {
	Predictions stats.Counter // PredictMiss calls that returned true
	Epochs      stats.Counter
}

type threadState struct {
	sampledHits   uint64
	sampledMisses uint64
	bypass        bool
}

// Predictor is a per-thread epoch-based miss-rate monitor.
type Predictor struct {
	prm        config.MissPredictorParams
	sets       int
	samplePer  int // one sampled set every samplePer sets
	epochStart event.Cycle
	threads    []threadState

	Stat Stats
}

// New builds a predictor for an LLC with the given set count.
func New(prm config.MissPredictorParams, llcSets, threads int) (*Predictor, error) {
	if prm.Threshold <= 0 || prm.Threshold > 1 {
		return nil, fmt.Errorf("misspred: threshold %v", prm.Threshold)
	}
	if prm.EpochCycles == 0 {
		return nil, fmt.Errorf("misspred: zero epoch length")
	}
	if prm.SampledSets <= 0 || llcSets <= 0 {
		return nil, fmt.Errorf("misspred: %d sampled of %d sets", prm.SampledSets, llcSets)
	}
	if threads < 1 {
		threads = 1
	}
	per := llcSets / prm.SampledSets
	if per < 1 {
		per = 1
	}
	return &Predictor{
		prm:       prm,
		sets:      llcSets,
		samplePer: per,
		threads:   make([]threadState, threads),
	}, nil
}

// Reset returns the predictor to power-on state: all threads out of
// bypass mode, sample counters and statistics zeroed.
func (p *Predictor) Reset() {
	p.epochStart = 0
	for i := range p.threads {
		p.threads[i] = threadState{}
	}
	p.Stat.Predictions, p.Stat.Epochs = 0, 0
}

// Sampled reports whether a set is a monitored sample set. Accesses to
// sampled sets are never bypassed.
func (p *Predictor) Sampled(set int) bool { return set%p.samplePer == 0 }

// PredictMiss reports whether the access should be predicted to miss
// (and therefore have its tag lookup bypassed, dirty status permitting).
func (p *Predictor) PredictMiss(thread, set int, now event.Cycle) bool {
	p.roll(now)
	if p.Sampled(set) {
		return false
	}
	if p.threads[thread%len(p.threads)].bypass {
		p.Stat.Predictions.Inc()
		return true
	}
	return false
}

// Observe records the outcome of a lookup in a sampled set.
func (p *Predictor) Observe(thread, set int, hit bool, now event.Cycle) {
	p.roll(now)
	if !p.Sampled(set) {
		return
	}
	t := &p.threads[thread%len(p.threads)]
	if hit {
		t.sampledHits++
	} else {
		t.sampledMisses++
	}
}

// Bypassing reports whether a thread is in bypass mode this epoch.
func (p *Predictor) Bypassing(thread int) bool {
	return p.threads[thread%len(p.threads)].bypass
}

// roll closes the epoch if it has expired, updating bypass decisions.
func (p *Predictor) roll(now event.Cycle) {
	if now-p.epochStart < event.Cycle(p.prm.EpochCycles) {
		return
	}
	p.epochStart = now
	p.Stat.Epochs.Inc()
	for i := range p.threads {
		t := &p.threads[i]
		total := t.sampledHits + t.sampledMisses
		// Require a minimum of observations before trusting the rate;
		// otherwise keep the previous decision.
		if total >= 16 {
			rate := float64(t.sampledMisses) / float64(total)
			t.bypass = rate > p.prm.Threshold
		}
		t.sampledHits, t.sampledMisses = 0, 0
	}
}
