package misspred

import "dbisim/internal/event"

// State is a checkpoint of a Predictor: the epoch cursor, per-thread
// sample counters and bypass decisions, and the statistics. The zero
// value is ready; the thread buffer is reused across captures.
type State struct {
	epochStart event.Cycle
	threads    []threadState
	stat       Stats
}

// Snapshot captures the predictor into st.
func (p *Predictor) Snapshot(st *State) {
	st.epochStart = p.epochStart
	st.threads = append(st.threads[:0], p.threads...)
	st.stat = p.Stat
}

// Restore writes st back.
func (p *Predictor) Restore(st *State) {
	p.epochStart = st.epochStart
	copy(p.threads, st.threads)
	p.Stat = st.stat
}
