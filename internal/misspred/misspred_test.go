package misspred

import (
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/event"
)

func prm() config.MissPredictorParams {
	return config.MissPredictorParams{
		Threshold:   0.95,
		EpochCycles: 1000,
		SampledSets: 32,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(prm(), 2048, 2); err != nil {
		t.Fatal(err)
	}
	bad := prm()
	bad.Threshold = 0
	if _, err := New(bad, 2048, 2); err == nil {
		t.Fatal("zero threshold accepted")
	}
	bad = prm()
	bad.EpochCycles = 0
	if _, err := New(bad, 2048, 2); err == nil {
		t.Fatal("zero epoch accepted")
	}
	bad = prm()
	bad.SampledSets = 0
	if _, err := New(bad, 2048, 2); err == nil {
		t.Fatal("zero sampled sets accepted")
	}
}

func TestSampledSets(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	n := 0
	for s := 0; s < 2048; s++ {
		if p.Sampled(s) {
			n++
		}
	}
	if n != 32 {
		t.Fatalf("%d sampled sets, want 32", n)
	}
}

func TestBypassAfterHighMissEpoch(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	// All sampled lookups miss during epoch 0.
	for i := 0; i < 100; i++ {
		p.Observe(0, 0, false, event.Cycle(i))
	}
	// No bypass before the epoch boundary.
	if p.PredictMiss(0, 1, 500) {
		t.Fatal("bypassing mid-epoch without evidence")
	}
	// After the boundary the thread enters bypass mode.
	if !p.PredictMiss(0, 1, 1001) {
		t.Fatal("no bypass after a 100% miss epoch")
	}
	if !p.Bypassing(0) {
		t.Fatal("Bypassing() false")
	}
	// Sampled sets are never bypassed.
	if p.PredictMiss(0, 0, 1002) {
		t.Fatal("sampled set bypassed")
	}
	if p.Stat.Predictions.Value() != 1 {
		t.Fatalf("predictions = %d", p.Stat.Predictions.Value())
	}
}

func TestNoBypassBelowThreshold(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	// 90% miss rate: below the 0.95 threshold.
	for i := 0; i < 90; i++ {
		p.Observe(0, 0, false, event.Cycle(i))
	}
	for i := 0; i < 10; i++ {
		p.Observe(0, 0, true, event.Cycle(90+i))
	}
	if p.PredictMiss(0, 1, 1001) {
		t.Fatal("bypassing at 90% miss rate")
	}
}

func TestBypassRevoked(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	for i := 0; i < 50; i++ {
		p.Observe(0, 0, false, event.Cycle(i))
	}
	if !p.PredictMiss(0, 1, 1001) {
		t.Fatal("not bypassing")
	}
	// Next epoch: sampled sets now hit (phase change).
	for i := 0; i < 50; i++ {
		p.Observe(0, 0, true, event.Cycle(1002+uint64(i)))
	}
	if p.PredictMiss(0, 1, 2500) {
		t.Fatal("bypass not revoked after hit-heavy epoch")
	}
}

func TestInsufficientSamplesKeepDecision(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	for i := 0; i < 100; i++ {
		p.Observe(0, 0, false, event.Cycle(i))
	}
	if !p.PredictMiss(0, 1, 1001) {
		t.Fatal("not bypassing")
	}
	// Epoch with only 3 observations: decision must persist.
	p.Observe(0, 0, true, 1500)
	p.Observe(0, 0, true, 1600)
	p.Observe(0, 0, true, 1700)
	if !p.PredictMiss(0, 1, 2100) {
		t.Fatal("decision dropped on insufficient samples")
	}
}

func TestThreadsIndependent(t *testing.T) {
	p, _ := New(prm(), 2048, 2)
	for i := 0; i < 50; i++ {
		p.Observe(0, 0, false, event.Cycle(i)) // thread 0 misses
		p.Observe(1, 0, true, event.Cycle(i))  // thread 1 hits
	}
	if !p.PredictMiss(0, 1, 1001) {
		t.Fatal("thread 0 not bypassing")
	}
	if p.PredictMiss(1, 1, 1002) {
		t.Fatal("thread 1 bypassing")
	}
}

func TestUnsampledObservationsIgnored(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	// Misses in non-sampled sets must not drive the decision.
	for i := 0; i < 100; i++ {
		p.Observe(0, 3, false, event.Cycle(i))
	}
	if p.PredictMiss(0, 1, 1001) {
		t.Fatal("decision driven by unsampled sets")
	}
}

func TestEpochCounter(t *testing.T) {
	p, _ := New(prm(), 2048, 1)
	for i := 0; i < 20; i++ {
		p.Observe(0, 0, false, event.Cycle(i))
	}
	p.PredictMiss(0, 1, 1001)
	p.PredictMiss(0, 1, 2500)
	p.PredictMiss(0, 1, 2600)
	if p.Stat.Epochs.Value() != 2 {
		t.Fatalf("epochs = %d, want 2", p.Stat.Epochs.Value())
	}
}

func TestTinyLLC(t *testing.T) {
	// More sampled sets than sets: every set is sampled, never bypass.
	p, err := New(prm(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if !p.Sampled(s) {
			t.Fatalf("set %d not sampled in tiny LLC", s)
		}
	}
}
