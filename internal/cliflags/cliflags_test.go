package cliflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/system"
	"dbisim/internal/telemetry"
)

func parse(t *testing.T, tel *Telemetry, out *Output, args ...string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	if tel != nil {
		tel.Register(fs)
	}
	if out != nil {
		out.Register(fs, "write results here")
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryDefaultsProduceNoOptions(t *testing.T) {
	var tel Telemetry
	parse(t, &tel, nil)
	if tel.TraceCap != telemetry.DefaultCapacity || tel.Epoch != 100_000 {
		t.Fatalf("defaults wrong: %+v", tel)
	}
	if opts := tel.Options(); len(opts) != 0 {
		t.Fatalf("zero-value flags produced %d options", len(opts))
	}
}

func TestTelemetryOptionsWireObservers(t *testing.T) {
	dir := t.TempDir()
	var tel Telemetry
	parse(t, &tel, nil,
		"-trace", filepath.Join(dir, "trace.json"),
		"-tracecap", "512",
		"-timeseries", filepath.Join(dir, "ts.csv"),
		"-epoch", "5000")

	cfg := config.Scaled(1, config.DBI)
	cfg.WarmupInstructions = 5_000
	cfg.MeasureInstructions = 10_000
	sys, err := system.New(cfg, []string{"stream"}, 42, tel.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer() == nil || sys.Sampler() == nil {
		t.Fatal("options did not attach tracer and sampler")
	}
	sys.Run()

	var log bytes.Buffer
	if err := tel.WriteArtifacts(sys, "test", &log); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tel.TracePath, tel.TimeSeriesPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty (err=%v)", p, err)
		}
	}
	if !strings.Contains(log.String(), "test: ") {
		t.Fatalf("artifact log lines missing prefix: %q", log.String())
	}
}

func TestOutputWrite(t *testing.T) {
	var out Output
	parse(t, nil, &out, "-json", filepath.Join(t.TempDir(), "r.json"))
	if !out.Enabled() {
		t.Fatal("Enabled false after -json")
	}
	if err := out.Write(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(b, []byte("\n")) {
		t.Fatal("output missing trailing newline")
	}
	var got map[string]int
	if err := json.Unmarshal(b, &got); err != nil || got["a"] != 1 {
		t.Fatalf("round-trip failed: %v %v", got, err)
	}
}

func TestOutputDisabledByDefault(t *testing.T) {
	var out Output
	parse(t, nil, &out)
	if out.Enabled() {
		t.Fatal("Enabled true with no -json flag")
	}
}
