// Package cliflags holds the flag clusters the dbisim and dbibench
// commands used to duplicate: the telemetry observers (-trace,
// -tracecap, -timeseries, -epoch) and the machine-readable output path
// (-json). Each cluster is a small struct that registers itself on a
// flag.FlagSet, so both commands parse identical spellings and the
// wiring into system.New options lives in exactly one place.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dbisim/internal/obs"
	"dbisim/internal/system"
	"dbisim/internal/telemetry"
)

// Telemetry is the observer flag cluster. All four flags are additive
// observers: enabling them never changes simulated Results.
type Telemetry struct {
	TracePath      string
	TraceCap       int
	TimeSeriesPath string
	Epoch          uint64
}

// Register installs the -trace/-tracecap/-timeseries/-epoch flags.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.TracePath, "trace", "",
		"write a Chrome trace-event JSON of the run (load in Perfetto or chrome://tracing)")
	fs.IntVar(&t.TraceCap, "tracecap", telemetry.DefaultCapacity,
		"trace ring-buffer capacity in events (oldest events drop beyond it)")
	fs.StringVar(&t.TimeSeriesPath, "timeseries", "",
		"write epoch-sampled component metrics to this file (.csv for CSV, else JSON)")
	fs.Uint64Var(&t.Epoch, "epoch", 100_000,
		"time-series sampling epoch in cycles")
}

// Options converts the parsed flags into system.New options. Flags
// left at their zero value contribute nothing, so the returned slice
// can always be splatted into New.
func (t *Telemetry) Options() []system.Option {
	var opts []system.Option
	if t.TracePath != "" {
		opts = append(opts, system.WithTracer(telemetry.NewTracer(t.TraceCap)))
	}
	if t.TimeSeriesPath != "" {
		opts = append(opts, system.WithTimeSeries(t.Epoch))
	}
	return opts
}

// WriteArtifacts writes whichever telemetry files the flags requested
// from a finished run, logging a one-line summary per artifact to errw
// prefixed with prog (the command name).
func (t *Telemetry) WriteArtifacts(sys *system.System, prog string, errw io.Writer) error {
	if t.TracePath != "" {
		tr := sys.Tracer()
		if err := tr.WriteFile(t.TracePath); err != nil {
			return err
		}
		fmt.Fprintf(errw, "%s: %d trace events (%d dropped) -> %s\n",
			prog, tr.Len(), tr.Dropped(), t.TracePath)
	}
	if t.TimeSeriesPath != "" {
		ts := sys.Sampler().Series()
		if err := ts.WriteFile(t.TimeSeriesPath); err != nil {
			return err
		}
		fmt.Fprintf(errw, "%s: %d samples x %d metrics -> %s\n",
			prog, len(ts.Samples), len(ts.Metrics), t.TimeSeriesPath)
	}
	return nil
}

// Ops is the live ops-plane flag cluster (-listen, -flightrecord),
// shared by the CLIs. Off by default: with no -listen the process runs
// exactly as before the ops plane existed.
type Ops struct {
	Listen     string
	FlightPath string
}

// Register installs the -listen and -flightrecord flags.
func (o *Ops) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Listen, "listen", "",
		"serve the live ops plane on this address (/metrics, /sweep, /debug/pprof, "+
			"/debug/flightrecord); empty disables it")
	fs.StringVar(&o.FlightPath, "flightrecord", "flightrecord.json",
		"with -listen, dump the flight recorder (Chrome trace JSON) here on panic or SIGQUIT")
}

// Start boots the ops server when -listen was given, logging the bound
// address to errw prefixed with prog. register, when non-nil, adds
// caller-specific probes to the served metrics registry. Returns (nil,
// nil) when the plane is disabled.
func (o *Ops) Start(register func(*telemetry.Registry), prog string, errw io.Writer) (*obs.Server, error) {
	if o.Listen == "" {
		return nil, nil
	}
	srv, err := obs.Start(obs.Config{
		Addr:       o.Listen,
		FlightPath: o.FlightPath,
		Register:   register,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(errw, "%s: ops plane on http://%s (flight record -> %s on panic/SIGQUIT)\n",
		prog, srv.Addr(), o.FlightPath)
	return srv, nil
}

// Output is the -json machine-readable output flag.
type Output struct {
	Path string
}

// Register installs the -json flag with a command-specific usage line.
func (o *Output) Register(fs *flag.FlagSet, usage string) {
	fs.StringVar(&o.Path, "json", "", usage)
}

// Enabled reports whether the caller asked for JSON output.
func (o *Output) Enabled() bool { return o.Path != "" }

// Write serializes v as indented JSON with a trailing newline to the
// requested path, or to stdout when the path is "-".
func (o *Output) Write(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if o.Path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(o.Path, b, 0o644)
}
