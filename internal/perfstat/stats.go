// Statistical machinery for benchmark comparisons: per-metric
// summaries with confidence intervals and Welch's unequal-variance
// t-test, the significance test dbistat uses to separate real
// regressions from run-to-run noise.

package perfstat

import "math"

// Summary condenses the per-round observations of one metric.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	// CI95 is the half-width of the 95% confidence interval of the
	// mean (Student's t); 0 when fewer than two observations exist.
	CI95   float64   `json:"ci95"`
	Values []float64 `json:"values,omitempty"`
}

// Summarize computes a Summary over the raw observations. The raw
// values are retained so recordings stay re-analyzable.
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals), Values: append([]float64(nil), vals...)}
	if s.N == 0 {
		return s
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = tCrit95(s.N-1) * s.Stddev / math.Sqrt(float64(s.N))
	return s
}

// tCrit95 returns the two-sided 95% critical value of Student's t
// distribution with df degrees of freedom (the table every stats text
// prints; beyond df 120 the normal limit 1.96 is exact to three
// digits).
func tCrit95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
		2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
		2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return 0
	case df < len(table):
		return table[df]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// Welch performs Welch's unequal-variance two-sample t-test on two
// summaries and returns the two-sided p-value. Degenerate inputs get
// the conservative answer: with fewer than two observations on either
// side no test is possible (p = 1); with zero variance on both sides
// the samples are point masses, so unequal means are certain (p = 0)
// and equal means are indistinguishable (p = 1).
func Welch(a, b Summary) (t, df, p float64) {
	if a.N < 2 || b.N < 2 {
		return 0, 0, 1
	}
	va := a.Stddev * a.Stddev / float64(a.N)
	vb := b.Stddev * b.Stddev / float64(b.N)
	se2 := va + vb
	if se2 == 0 {
		if a.Mean == b.Mean {
			return 0, 0, 1
		}
		return math.Inf(sign(a.Mean - b.Mean)), math.Inf(1), 0
	}
	t = (a.Mean - b.Mean) / math.Sqrt(se2)
	df = se2 * se2 / (va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	// Two-sided p-value via the regularized incomplete beta function:
	// P(|T| > |t|) = I_{df/(df+t^2)}(df/2, 1/2).
	p = betaInc(df/2, 0.5, df/(df+t*t))
	return t, df, p
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// betaInc is the regularized incomplete beta function I_x(a, b),
// evaluated with the continued-fraction expansion (Numerical Recipes
// §6.4); it converges fast for the t-distribution arguments used here.
func betaInc(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	la, _ := math.Lgamma(a + b)
	lb, _ := math.Lgamma(a)
	lc, _ := math.Lgamma(b)
	front := math.Exp(la - lb - lc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for betaInc by the modified
// Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
