package perfstat

import (
	"math"
	"strings"
	"testing"
)

// TestRunInterleavesRounds pins the round-robin execution order: every
// round visits all targets in list order before the next round starts,
// and the order is a pure function of the inputs (determinism).
func TestRunInterleavesRounds(t *testing.T) {
	var order []string
	mk := func(name string) Target {
		return Target{Name: name, Kind: KindMicro, Run: func() (Counts, error) {
			order = append(order, name)
			return Counts{Ops: 1}, nil
		}}
	}
	targets := []Target{mk("a"), mk("b"), mk("c")}
	benches, err := Run(targets, RunConfig{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("execution order %v, want interleaved %v", order, want)
	}
	if len(benches) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(benches))
	}
	for _, b := range benches {
		if s := b.Metrics["wall_ns"]; s.N != 3 {
			t.Errorf("%s wall_ns has n=%d, want 3", b.Name, s.N)
		}
		if s := b.Metrics["ops_per_sec"]; s.N != 3 {
			t.Errorf("%s ops_per_sec has n=%d, want 3", b.Name, s.N)
		}
	}

	// A second identical session must execute the identical schedule.
	first := append([]string(nil), order...)
	order = order[:0]
	if _, err := Run(targets, RunConfig{Rounds: 3}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != strings.Join(first, ",") {
		t.Fatalf("rerun order %v differs from first run %v", order, first)
	}
}

func TestRunPropagatesTargetError(t *testing.T) {
	boom := Target{Name: "boom", Kind: KindMicro, Run: func() (Counts, error) {
		return Counts{}, errTest
	}}
	if _, err := Run([]Target{boom}, RunConfig{Rounds: 2}); err == nil {
		t.Fatal("Run swallowed the target error")
	}
}

var errTest = errorString("synthetic failure")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if s.N != 3 || s.Mean != 12 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.Stddev)
	}
	// CI95 = t(df=2) * s/sqrt(n) = 4.303 * 2/sqrt(3).
	if want := 4.303 * 2 / math.Sqrt(3); math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("ci95 = %v, want %v", s.CI95, want)
	}

	one := Summarize([]float64{5})
	if one.N != 1 || one.Mean != 5 || one.Stddev != 0 || one.CI95 != 0 {
		t.Fatalf("n=1 summary = %+v, want zero spread", one)
	}
	if empty := Summarize(nil); empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

// TestWelchEdgeCases covers the degenerate inputs the ISSUE calls out:
// n=1 samples (no test possible) and zero-variance samples.
func TestWelchEdgeCases(t *testing.T) {
	if _, _, p := Welch(Summarize([]float64{1}), Summarize([]float64{2, 3})); p != 1 {
		t.Errorf("n=1 sample: p = %v, want 1 (untestable)", p)
	}
	if _, _, p := Welch(Summarize([]float64{4, 4, 4}), Summarize([]float64{4, 4, 4})); p != 1 {
		t.Errorf("identical point masses: p = %v, want 1", p)
	}
	if _, _, p := Welch(Summarize([]float64{4, 4, 4}), Summarize([]float64{9, 9, 9})); p != 0 {
		t.Errorf("distinct point masses: p = %v, want 0", p)
	}
	// One-sided zero variance still yields a finite test.
	_, _, p := Welch(Summarize([]float64{4, 4, 4}), Summarize([]float64{8.9, 9, 9.1}))
	if p >= 0.05 {
		t.Errorf("clearly separated samples: p = %v, want < 0.05", p)
	}
}

// TestWelchKnownValue checks the statistic and degrees of freedom
// against an independent hand computation of the Welch formulas.
func TestWelchKnownValue(t *testing.T) {
	a := Summarize([]float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4})
	b := Summarize([]float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.3})
	tt, df, p := Welch(a, b)
	if math.Abs(tt-(-2.84720445657712)) > 1e-9 {
		t.Errorf("t = %v, want -2.84720445657712", tt)
	}
	if math.Abs(df-27.8847494671033) > 1e-9 {
		t.Errorf("df = %v, want 27.8847494671033", df)
	}
	if p <= 0.005 || p >= 0.01 {
		t.Errorf("p = %v, want in (0.005, 0.01) for |t|=2.85 at df=27.9", p)
	}
}

// TestPValueMatchesTTable anchors the incomplete-beta p-value against
// the textbook two-sided 95% critical values: evaluating the test at
// exactly t = tCrit95(df) must give p ≈ 0.05 for every tabulated df.
func TestPValueMatchesTTable(t *testing.T) {
	for _, df := range []int{1, 2, 5, 10, 20, 30, 200} {
		crit := tCrit95(df)
		fdf := float64(df)
		p := betaInc(fdf/2, 0.5, fdf/(fdf+crit*crit))
		if math.Abs(p-0.05) > 2e-3 {
			t.Errorf("df=%d: p at critical value = %v, want ~0.05", df, p)
		}
	}
}

func TestDiffVerdicts(t *testing.T) {
	mk := func(name string, wall []float64) Benchmark {
		return Benchmark{Name: name, Kind: KindMicro, Metrics: map[string]Summary{
			"wall_ns": Summarize(wall),
		}}
	}
	base := &Report{Schema: Schema, Benchmarks: []Benchmark{
		mk("steady", []float64{100, 101, 99, 100, 100}),
		mk("regressed", []float64{100, 101, 99, 100, 100}),
		mk("improved", []float64{100, 101, 99, 100, 100}),
		mk("noisy", []float64{100, 101, 99, 100, 100}),
	}}
	head := &Report{Schema: Schema, Benchmarks: []Benchmark{
		mk("steady", []float64{100, 100, 101, 99, 100}),
		mk("regressed", []float64{150, 151, 149, 150, 150}), // +50%, tight
		mk("improved", []float64{50, 51, 49, 50, 50}),       // -50%, tight
		mk("noisy", []float64{40, 260, 90, 110, 100}),       // mean shift inside variance
		mk("new-only", []float64{1, 2, 3}),                  // skipped: no baseline
	}}
	deltas := Diff(base, head, DiffOptions{})
	got := map[string]Verdict{}
	for _, d := range deltas {
		got[d.Benchmark] = d.Verdict
	}
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4 (new-only skipped): %+v", len(deltas), got)
	}
	want := map[string]Verdict{
		"steady":    VerdictOK,
		"regressed": VerdictRegressed,
		"improved":  VerdictImproved,
		"noisy":     VerdictNoise,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s: verdict %s, want %s", name, got[name], v)
		}
	}
	if regs := Regressions(deltas); len(regs) != 1 || regs[0].Benchmark != "regressed" {
		t.Errorf("Regressions = %+v, want exactly the regressed benchmark", regs)
	}

	var sb strings.Builder
	WriteTable(&sb, deltas)
	out := sb.String()
	for _, needle := range []string{"REGRESSED", "improved", "~noise", "wall_ns", "p"} {
		if !strings.Contains(out, needle) {
			t.Errorf("table output missing %q:\n%s", needle, out)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_test.json"
	rep := NewReport(CaptureEnv(), 3, "micro", 42, []Benchmark{
		{Name: "x", Kind: KindMicro, Metrics: map[string]Summary{"wall_ns": Summarize([]float64{1, 2, 3})}},
	})
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Rounds != 3 || got.Suite != "micro" {
		t.Fatalf("round-trip header = %+v", got)
	}
	b := got.Benchmark("x")
	if b == nil || b.Metrics["wall_ns"].N != 3 {
		t.Fatalf("round-trip benchmark = %+v", b)
	}

	// Foreign schemas must be rejected, not misread.
	bad := dir + "/bad.json"
	rep.Schema = "othertool/v1"
	if err := rep.WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Fatal("ReadReport accepted a foreign schema")
	}

	// Future dbistat schemas load — the version skew is surfaced by
	// SchemaMismatch at diff time instead of failing the read.
	future := dir + "/future.json"
	rep.Schema = "dbistat/v999"
	if err := rep.WriteFile(future); err != nil {
		t.Fatal(err)
	}
	fut, err := ReadReport(future)
	if err != nil {
		t.Fatalf("ReadReport rejected a future dbistat schema: %v", err)
	}
	if _, mismatch := SchemaMismatch(got, fut); !mismatch {
		t.Fatal("SchemaMismatch missed differing schema versions")
	}
	if why, mismatch := SchemaMismatch(got, got); mismatch {
		t.Fatalf("SchemaMismatch on identical schemas: %s", why)
	}
}

func TestDirection(t *testing.T) {
	for metric, want := range map[string]int{
		"cycles_per_sec":  +1,
		"events_per_sec":  +1,
		"cells_per_sec":   +1,
		"ops_per_sec":     +1,
		"wall_ns":         -1,
		"allocs_per_cell": -1,
		"bytes_per_cell":  -1,
		"anything_else":   -1,
	} {
		if got := Direction(metric); got != want {
			t.Errorf("Direction(%s) = %d, want %d", metric, got, want)
		}
	}
}

func TestCellCounter(t *testing.T) {
	before := CellCount()
	CellDone(3)
	if got := CellCount() - before; got != 3 {
		t.Fatalf("cell counter advanced by %d, want 3", got)
	}
}

func TestDefaultFileName(t *testing.T) {
	r := &Report{Env: Env{GitSHA: "0123456789abcdef0123"}}
	if got := r.DefaultFileName(); got != "BENCH_0123456789ab.json" {
		t.Fatalf("DefaultFileName = %q", got)
	}
	if got := (&Report{}).DefaultFileName(); got != "BENCH_unversioned.json" {
		t.Fatalf("no-git DefaultFileName = %q", got)
	}
}
