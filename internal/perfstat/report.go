package perfstat

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Schema is the current report schema identifier. Readers reject
// unknown schemas instead of misinterpreting them; bump the suffix on
// incompatible changes.
const Schema = "dbistat/v1"

// Report is one serialized recording: the BENCH_<sha>.json document CI
// uploads per commit and diffs against the committed baseline.
type Report struct {
	Schema     string      `json:"schema"`
	RecordedAt string      `json:"recorded_at"`
	Env        Env         `json:"env"`
	Rounds     int         `json:"rounds"`
	Suite      string      `json:"suite"`
	Seed       int64       `json:"seed"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// NewReport assembles a recording document around runner output.
func NewReport(env Env, rounds int, suite string, seed int64, benches []Benchmark) *Report {
	return &Report{
		Schema:     Schema,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Env:        env,
		Rounds:     rounds,
		Suite:      suite,
		Seed:       seed,
		Benchmarks: benches,
	}
}

// Benchmark returns the named benchmark, or nil.
func (r *Report) Benchmark(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// DefaultFileName is the conventional recording name for a commit:
// BENCH_<sha12>.json, or BENCH_unversioned.json outside a git
// checkout.
func (r *Report) DefaultFileName() string {
	sha := r.Env.GitSHA
	if sha == "" {
		return "BENCH_unversioned.json"
	}
	if len(sha) > 12 {
		sha = sha[:12]
	}
	return "BENCH_" + sha + ".json"
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads and validates a recording. Any dbistat/* schema
// loads — summaries are forward-readable — so a version skew between
// two recordings surfaces where it matters, in the diff, as an
// explicit mismatch instead of a bogus delta (see SchemaMismatch).
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perfstat: parsing %s: %w", path, err)
	}
	if !strings.HasPrefix(r.Schema, "dbistat/") {
		return nil, fmt.Errorf("perfstat: %s has schema %q, this build reads %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// SchemaMismatch reports whether two recordings use different schema
// versions — in which case metric definitions (names, units) may
// disagree and a diff between them would compare unlike quantities.
// Diff front-ends must refuse with the returned explanation rather
// than print a delta table.
func SchemaMismatch(a, b *Report) (string, bool) {
	if a.Schema == b.Schema {
		return "", false
	}
	return fmt.Sprintf("schema mismatch: recordings use %q and %q — metric units may differ, refusing to diff unlike quantities", a.Schema, b.Schema), true
}
