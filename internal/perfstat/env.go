package perfstat

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Env is the environment metadata stamped into every recording, so a
// diff can tell "the code got slower" apart from "the machine
// changed". Every field is best-effort: a missing git binary or a
// non-linux host leaves the corresponding fields empty rather than
// failing the recording.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
	GitSHA     string `json:"git_sha,omitempty"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
}

// CaptureEnv snapshots the current environment.
func CaptureEnv() Env {
	e := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	e.Hostname, _ = os.Hostname()
	e.GitSHA, e.GitDirty = gitState()
	return e
}

// Comparable reports whether two environments are similar enough for
// wall-clock comparisons to mean anything, and if not, why. Metadata
// like hostname is allowed to differ; the compute substrate is not.
func (e Env) Comparable(o Env) (ok bool, reason string) {
	switch {
	case e.CPUModel != o.CPUModel:
		return false, "cpu model differs: " + orUnknown(e.CPUModel) + " vs " + orUnknown(o.CPUModel)
	case e.GOMAXPROCS != o.GOMAXPROCS:
		return false, "GOMAXPROCS differs"
	case e.GOARCH != o.GOARCH:
		return false, "GOARCH differs"
	default:
		return true, ""
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}

// cpuModel reads the CPU model name from /proc/cpuinfo (linux); other
// platforms report empty.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// gitState returns the checked-out commit and whether the tree has
// uncommitted changes; both empty/false when git is unavailable.
func gitState() (sha string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	sha = strings.TrimSpace(string(out))
	status, err := exec.Command("git", "status", "--porcelain").Output()
	if err != nil {
		return sha, false
	}
	return sha, len(strings.TrimSpace(string(status))) > 0
}
