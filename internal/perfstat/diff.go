package perfstat

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Verdict classifies one metric's old-vs-new delta.
type Verdict string

const (
	// VerdictOK: the delta is below the gating threshold (or exactly
	// zero) — within the band the project accepts without comment.
	VerdictOK Verdict = "ok"
	// VerdictNoise: the delta exceeds the threshold but Welch's test
	// cannot distinguish it from run-to-run variance. Warn, don't gate.
	VerdictNoise Verdict = "~noise"
	// VerdictImproved: statistically significant change in the good
	// direction.
	VerdictImproved Verdict = "improved"
	// VerdictRegressed: statistically significant change in the bad
	// direction beyond the threshold — the gate fails on these.
	VerdictRegressed Verdict = "REGRESSED"
)

// Delta is one benchmark×metric comparison between two recordings.
type Delta struct {
	Benchmark string
	Metric    string
	Old, New  Summary
	// Pct is the relative change of the mean, signed in value domain
	// (not goodness domain): +0.10 means the new mean is 10% larger.
	Pct float64
	// P is Welch's two-sided p-value; T its statistic.
	T, P float64
	// Significant is P < alpha.
	Significant bool
	Verdict     Verdict
}

// DiffOptions tunes the significance gate.
type DiffOptions struct {
	// Alpha is the significance level for Welch's test (default 0.05).
	Alpha float64
	// Threshold is the minimum relative mean change that can count as
	// a regression or improvement (default 0.10 = 10%); smaller
	// significant deltas report as ok.
	Threshold float64
}

func (o DiffOptions) alpha() float64 {
	if o.Alpha <= 0 {
		return 0.05
	}
	return o.Alpha
}

func (o DiffOptions) threshold() float64 {
	if o.Threshold <= 0 {
		return 0.10
	}
	return o.Threshold
}

// Diff compares every benchmark×metric present in both reports and
// returns the deltas sorted by benchmark then metric name. Benchmarks
// or metrics present on only one side are skipped: the gate judges
// common ground, the caller can report coverage separately.
func Diff(base, head *Report, opt DiffOptions) []Delta {
	var out []Delta
	for _, nb := range head.Benchmarks {
		ob := base.Benchmark(nb.Name)
		if ob == nil {
			continue
		}
		for metric, ns := range nb.Metrics {
			os, ok := ob.Metrics[metric]
			if !ok {
				continue
			}
			out = append(out, compare(nb.Name, metric, os, ns, opt))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

func compare(bench, metric string, o, n Summary, opt DiffOptions) Delta {
	d := Delta{Benchmark: bench, Metric: metric, Old: o, New: n}
	if o.Mean != 0 {
		d.Pct = (n.Mean - o.Mean) / math.Abs(o.Mean)
	} else if n.Mean != 0 {
		d.Pct = math.Inf(sign(n.Mean))
	}
	// Welch orders (new, old): a positive t means new > old.
	d.T, _, d.P = Welch(n, o)
	d.Significant = d.P < opt.alpha()
	switch {
	case math.Abs(d.Pct) < opt.threshold():
		d.Verdict = VerdictOK
	case !d.Significant:
		d.Verdict = VerdictNoise
	case float64(Direction(metric))*d.Pct > 0:
		d.Verdict = VerdictImproved
	default:
		d.Verdict = VerdictRegressed
	}
	return d
}

// Regressions filters the deltas down to gate failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Verdict == VerdictRegressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteTable renders the deltas as an aligned significance-annotated
// table, benchstat-style.
func WriteTable(w io.Writer, deltas []Delta) {
	fmt.Fprintf(w, "%-26s %-16s %14s %14s %9s %8s  %s\n",
		"benchmark", "metric", "old", "new", "delta", "p", "verdict")
	for _, d := range deltas {
		fmt.Fprintf(w, "%-26s %-16s %14s %14s %+8.1f%% %8.3f  %s\n",
			d.Benchmark, d.Metric,
			formatMean(d.Old), formatMean(d.New),
			100*d.Pct, d.P, d.Verdict)
	}
}

// formatMean renders mean±stddev with engineering-friendly precision.
func formatMean(s Summary) string {
	return fmt.Sprintf("%s±%s", siValue(s.Mean), siValue(s.Stddev))
}

// siValue compacts large magnitudes with SI suffixes so throughput
// columns stay readable.
func siValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
