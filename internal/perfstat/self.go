package perfstat

import "sync/atomic"

// cellsDone counts simulation cells completed process-wide. The sweep
// worker pool increments it after every finished cell; the telemetry
// self-metrics gauges (internal/system) and dbistat's macro targets
// read it to derive cells/sec and allocs/cell. One atomic add per cell
// is host-side bookkeeping only — it can never perturb simulated
// state.
var cellsDone atomic.Uint64

// CellDone records n completed simulation cells.
func CellDone(n uint64) { cellsDone.Add(n) }

// CellCount returns the process-wide completed-cell count.
func CellCount() uint64 { return cellsDone.Load() }
