// Package perfstat is the simulator's performance observatory: a
// statistically rigorous benchmark-run model plus the self-throughput
// counters that let the project watch its own speed over time.
//
// The paper this repository reproduces argues every mechanism with
// measured deltas; perfstat applies the same discipline to the
// simulator itself. A Runner executes each target N times in
// interleaved rounds (round-robin across targets rather than
// back-to-back, so drift — thermal, frequency scaling, page cache —
// spreads evenly over all targets instead of biasing the last one),
// derives throughput metrics from each run, and condenses them into
// mean/stddev/95%-CI summaries. Recordings serialize to a versioned
// BENCH_<sha>.json schema (report.go) carrying full environment
// metadata, and two recordings can be compared with Welch's t-test
// (diff.go) so "it got slower" is a statistical verdict, not a vibe.
package perfstat

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Kind classifies a benchmark target.
const (
	KindMicro = "micro" // component-level hot-path loops
	KindMacro = "macro" // whole experiment sweeps via internal/sweep
)

// Counts is what a target reports about one execution: how much
// simulated work it performed. The runner measures wall time and
// allocation deltas around the call; the target fills in the
// work-domain counters it knows about (zeros mean "not applicable"
// and suppress the derived metric).
type Counts struct {
	// Cycles is simulated cycles executed (event.Engine.Now).
	Cycles uint64
	// Events is engine events fired (event.Engine.Fired).
	Events uint64
	// Cells is simulation cells completed (sweep cells, or 1 for a
	// single full-system run).
	Cells uint64
	// Ops is abstract operations for micro loops (DBI lookups, events
	// scheduled, ...).
	Ops uint64
	// Extra carries target-specific metrics the runner records as-is
	// (already in final units, e.g. "p99_us" from a load driver) rather
	// than deriving per-second rates. Keys ending in _per_sec gate as
	// larger-is-better; everything else as smaller-is-better, per
	// Direction.
	Extra map[string]float64
}

// Target is one benchmark the runner executes.
type Target struct {
	Name string
	Kind string // KindMicro or KindMacro
	Run  func() (Counts, error)
}

// Benchmark is the recorded result of one target: a summary per
// derived metric.
type Benchmark struct {
	Name    string             `json:"name"`
	Kind    string             `json:"kind"`
	Metrics map[string]Summary `json:"metrics"`
}

// Direction returns +1 when larger values of the metric are better
// (throughputs), -1 when smaller values are better (durations and
// per-cell costs). Unknown metrics default to -1, the conservative
// choice for a regression gate.
func Direction(metric string) int {
	switch metric {
	case "cycles_per_sec", "events_per_sec", "cells_per_sec", "ops_per_sec":
		return +1
	default: // wall_ns, allocs_per_cell, bytes_per_cell, p99_us, ...
		if strings.HasSuffix(metric, "_per_sec") {
			return +1
		}
		return -1
	}
}

// RunConfig controls a recording session.
type RunConfig struct {
	// Rounds is how many times each target executes (minimum 1).
	Rounds int
	// Log, when non-nil, receives one progress line per completed run.
	Log func(format string, args ...any)
}

// Run executes every target Rounds times in interleaved rounds and
// returns one Benchmark per target, in target order. Round r runs
// target 0, 1, 2, ... before round r+1 begins, so slow environmental
// drift affects all targets alike. Execution order is deterministic:
// it depends only on the target list and round count.
func Run(targets []Target, cfg RunConfig) ([]Benchmark, error) {
	rounds := cfg.Rounds
	if rounds < 1 {
		rounds = 1
	}
	obs := make([]map[string][]float64, len(targets))
	for i := range obs {
		obs[i] = map[string][]float64{}
	}
	for r := 0; r < rounds; r++ {
		for i, t := range targets {
			sample, err := measure(t)
			if err != nil {
				return nil, fmt.Errorf("perfstat: %s (round %d): %w", t.Name, r+1, err)
			}
			for name, v := range sample {
				obs[i][name] = append(obs[i][name], v)
			}
			if cfg.Log != nil {
				cfg.Log("[%d/%d] %-24s %.3fs", r+1, rounds, t.Name,
					sample["wall_ns"]/1e9)
			}
		}
	}
	out := make([]Benchmark, len(targets))
	for i, t := range targets {
		b := Benchmark{Name: t.Name, Kind: t.Kind, Metrics: map[string]Summary{}}
		for name, vals := range obs[i] {
			b.Metrics[name] = Summarize(vals)
		}
		out[i] = b
	}
	return out, nil
}

// measure executes one target once and derives its metric values for
// this run. Allocation counters come from runtime.ReadMemStats deltas;
// a GC beforehand keeps one target's garbage from being charged to the
// next.
func measure(t Target) (map[string]float64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	c, err := t.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, err
	}
	secs := wall.Seconds()
	m := map[string]float64{"wall_ns": float64(wall.Nanoseconds())}
	if secs > 0 {
		if c.Cycles > 0 {
			m["cycles_per_sec"] = float64(c.Cycles) / secs
		}
		if c.Events > 0 {
			m["events_per_sec"] = float64(c.Events) / secs
		}
		if c.Cells > 0 {
			m["cells_per_sec"] = float64(c.Cells) / secs
		}
		if c.Ops > 0 {
			m["ops_per_sec"] = float64(c.Ops) / secs
		}
	}
	if c.Cells > 0 {
		m["allocs_per_cell"] = float64(after.Mallocs-before.Mallocs) / float64(c.Cells)
		m["bytes_per_cell"] = float64(after.TotalAlloc-before.TotalAlloc) / float64(c.Cells)
	}
	for name, v := range c.Extra {
		m[name] = v
	}
	return m, nil
}
