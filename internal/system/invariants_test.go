package system

import (
	"testing"

	"dbisim/internal/config"
)

// TestDBIDirtyImpliesResident checks the system-wide invariant behind
// the DBI's correctness argument: any block the DBI marks dirty must be
// resident in the LLC (the DBI is the only record of its dirtiness, and
// the data lives in the cache until written back).
func TestDBIDirtyImpliesResident(t *testing.T) {
	for _, mech := range []config.Mechanism{config.DBI, config.DBIAWB, config.DBIAWBCLB} {
		sys, err := New(smallCfg(1, mech), []string{"GemsFDTD"}, 9)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run()
		for _, b := range sys.LLC.DBI.AllDirtyBlocks() {
			if !sys.LLC.Cache.Contains(b) {
				t.Fatalf("%v: block %d dirty in DBI but not resident", mech, b)
			}
		}
	}
}

// TestConventionalDirtyStaysInTags checks the complementary invariant
// for conventional mechanisms: the DBI is absent and dirty state lives
// in the tag entries.
func TestConventionalDirtyStaysInTags(t *testing.T) {
	sys, err := New(smallCfg(1, config.DAWB), []string{"GemsFDTD"}, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if sys.LLC.DBI != nil {
		t.Fatal("conventional mechanism built a DBI")
	}
	if len(sys.LLC.Cache.DirtyBlocks()) == 0 {
		t.Fatal("no dirty blocks in the tag store after a write-heavy run")
	}
}

// TestSkipCacheHoldsNoDirtyData: the write-through Skip Cache never has
// dirty blocks anywhere.
func TestSkipCacheHoldsNoDirtyData(t *testing.T) {
	sys, err := New(smallCfg(1, config.SkipCache), []string{"GemsFDTD"}, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if n := len(sys.LLC.Cache.DirtyBlocks()); n != 0 {
		t.Fatalf("write-through LLC holds %d dirty blocks", n)
	}
	if sys.LLC.Stat.WriteThroughs.Value() == 0 {
		t.Fatal("no write-through traffic recorded")
	}
}

// TestMultiCoreDeterminism: identical seeds give identical multi-core
// results despite the interleaved event streams.
func TestMultiCoreDeterminism(t *testing.T) {
	run := func() Results {
		sys, err := New(smallCfg(2, config.DBIAWBCLB), []string{"lbm", "mcf"}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	for i := range a.PerCore {
		if a.PerCore[i].IPC != b.PerCore[i].IPC {
			t.Fatalf("core %d IPC differs: %v vs %v", i, a.PerCore[i].IPC, b.PerCore[i].IPC)
		}
	}
	if a.WriteRowHitRate != b.WriteRowHitRate || a.TagLookupsPKI != b.TagLookupsPKI {
		t.Fatal("global stats differ across identical runs")
	}
}

// TestWritebacksNeverLost: every writeback request is eventually either
// resident-dirty (in tags or DBI) or written to memory — dirty data is
// never silently dropped.
func TestWritebacksNeverLost(t *testing.T) {
	for _, mech := range []config.Mechanism{config.TADIP, config.DBI, config.DBIAWB} {
		sys, err := New(smallCfg(1, mech), []string{"milc"}, 13)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run()
		// Flush whatever is still dirty, then compare totals: writes to
		// memory (run + flush) must be at least the number of distinct
		// writeback requests minus merges — conservatively, > 0 and the
		// flush must empty all dirty state.
		sys.LLC.Flush()
		if sys.LLC.DBI != nil && sys.LLC.DBI.DirtyCount() != 0 {
			t.Fatalf("%v: dirty blocks remain after flush", mech)
		}
		if sys.LLC.DBI == nil && len(sys.LLC.Cache.DirtyBlocks()) != 0 {
			t.Fatalf("%v: dirty tag entries remain after flush", mech)
		}
		if sys.Mem.Stat.Writes.Value() == 0 && sys.Mem.WriteQueueLen() == 0 {
			t.Fatalf("%v: no writes reached memory", mech)
		}
	}
}
