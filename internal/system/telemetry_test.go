package system

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/telemetry"
)

// telemetryCfg is a small-but-real configuration that exercises the
// whole instrumented path: DBI entry churn, AWB harvests, CLB bypasses
// and write-drain episodes.
func telemetryCfg() (config.SystemConfig, []string) {
	cfg := config.Scaled(1, config.DBIAWBCLB)
	cfg.WarmupInstructions = 60_000
	cfg.MeasureInstructions = 120_000
	return cfg, []string{"stream"}
}

// TestTelemetryDoesNotPerturbResults is the determinism contract: a run
// with tracing and time-series sampling enabled must produce Results
// bit-identical to a run without them.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cfg, benches := telemetryCfg()

	plain, err := New(cfg, benches, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Run()

	traced, err := New(cfg, benches, 42,
		WithTracer(telemetry.NewTracer(1<<16)), WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	smp := traced.Sampler()
	got := traced.Run()

	if !reflect.DeepEqual(want, got) {
		t.Errorf("telemetry perturbed Results:\nwithout: %+v\nwith:    %+v", want, got)
	}
	if traced.Tracer().Emitted() == 0 {
		t.Error("tracer collected no events")
	}
	if len(smp.Series().Samples) == 0 {
		t.Error("sampler collected no samples")
	}
}

// TestTraceContainsLifecycleEvents asserts the acceptance criteria on
// the trace content: DRAM bank-service duration events and DBI drain
// instants from a DBI+AWB+CLB run, serializable as valid JSON.
func TestTraceContainsLifecycleEvents(t *testing.T) {
	cfg, benches := telemetryCfg()
	trc := telemetry.NewTracer(1 << 16)
	sys, err := New(cfg, benches, 42, WithTracer(trc))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()

	want := map[string]bool{
		"dram/X/read":  false, // bank service spans
		"dram/X/write": false,
		"cpu/X":        false, // llc_read lifecycle spans
		"dbi/i":        false, // entry/drain instants
	}
	for _, e := range trc.Events() {
		switch {
		case e.Cat == "dram" && e.Ph == telemetry.PhaseComplete && e.Name == "read":
			want["dram/X/read"] = true
		case e.Cat == "dram" && e.Ph == telemetry.PhaseComplete && e.Name == "write":
			want["dram/X/write"] = true
		case e.Cat == "cpu" && e.Ph == telemetry.PhaseComplete:
			want["cpu/X"] = true
		case e.Cat == "dbi" && e.Ph == telemetry.PhaseInstant:
			want["dbi/i"] = true
		}
	}
	for k, ok := range want {
		if !ok {
			t.Errorf("trace is missing %s events", k)
		}
	}

	var buf bytes.Buffer
	if err := trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace JSON has no traceEvents")
	}
}

// TestTimeSeriesCoversRun checks that sampling yields epoch-spaced
// samples across the run, with DBI and DRAM columns present and the
// dirty-at-eviction histogram tracked.
func TestTimeSeriesCoversRun(t *testing.T) {
	cfg, benches := telemetryCfg()
	sys, err := New(cfg, benches, 42, WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	smp := sys.Sampler()
	sys.Run()

	ts := smp.Series()
	if len(ts.Samples) < 3 {
		t.Fatalf("only %d samples; want several epochs", len(ts.Samples))
	}
	cols := make(map[string]bool, len(ts.Metrics))
	for _, n := range ts.Metrics {
		cols[n] = true
	}
	for _, need := range []string{
		"cpu0.instructions", "llc.writeback_reqs", "llc.port.busy_cycles",
		"dbi.evictions", "dbi.valid_entries", "dram.writes", "dram.write_queue",
		"self.sim_cycles_per_sec", "self.engine_events_per_sec",
		"self.cells_per_sec", "self.allocs_per_cell",
	} {
		if !cols[need] {
			t.Errorf("time series missing column %s", need)
		}
	}
	if _, ok := ts.Histograms["dbi.dirty_at_eviction"]; !ok {
		t.Error("time series missing dbi.dirty_at_eviction histogram track")
	}
	if _, ok := ts.Histograms["dram.drain_burst"]; !ok {
		t.Error("time series missing dram.drain_burst histogram track")
	}
	for i, s := range ts.Samples[:len(ts.Samples)-1] {
		if want := uint64(10_000 * (i + 1)); s.Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, s.Cycle, want)
		}
	}
	for _, hs := range ts.Histograms["dbi.dirty_at_eviction"] {
		if hs.Count > 0 && (hs.P95 < hs.P50 || hs.P99 < hs.P95) {
			t.Fatalf("histogram quantiles not monotone: %+v", hs)
		}
	}
}

// TestTelemetrySplitPhaseMatchesMonolithic pins telemetry across the
// RunWarmup/RunMeasure fork boundary: a split run with a tracer and an
// epoch sampler attached must produce the same Results, the same trace
// events, and the same epoch time series (histograms included) as a
// monolithic Run — the sampler arms once at warmup and keeps ticking
// through the measurement phase.
func TestTelemetrySplitPhaseMatchesMonolithic(t *testing.T) {
	cfg, benches := telemetryCfg()

	mono, err := New(cfg, benches, 42,
		WithTracer(telemetry.NewTracer(1<<16)), WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	wantRes := mono.Run()
	wantTS := mono.Sampler().Series()

	split, err := New(cfg, benches, 42,
		WithTracer(telemetry.NewTracer(1<<16)), WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := split.RunWarmup(); err != nil {
		t.Fatalf("RunWarmup with telemetry: %v", err)
	}
	gotRes, err := split.RunMeasure()
	if err != nil {
		t.Fatalf("RunMeasure with telemetry: %v", err)
	}
	gotTS := split.Sampler().Series()

	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("split-phase run perturbed Results:\nmono:  %+v\nsplit: %+v", wantRes, gotRes)
	}
	if !reflect.DeepEqual(mono.Tracer().Events(), split.Tracer().Events()) {
		t.Error("split-phase trace differs from monolithic trace")
	}
	if !reflect.DeepEqual(wantTS.Metrics, gotTS.Metrics) {
		t.Fatalf("metric columns differ:\nmono:  %v\nsplit: %v", wantTS.Metrics, gotTS.Metrics)
	}
	if len(wantTS.Samples) != len(gotTS.Samples) {
		t.Fatalf("sample count differs: mono %d, split %d", len(wantTS.Samples), len(gotTS.Samples))
	}
	// The self.* gauges read the host's wall clock, so their values
	// legitimately differ run to run; every simulation-domain column
	// must match exactly.
	for i, want := range wantTS.Samples {
		got := gotTS.Samples[i]
		if want.Cycle != got.Cycle {
			t.Fatalf("sample %d cycle: mono %d, split %d", i, want.Cycle, got.Cycle)
		}
		for c, name := range wantTS.Metrics {
			if len(name) >= 5 && name[:5] == "self." {
				continue
			}
			if want.Values[c] != got.Values[c] {
				t.Errorf("sample %d %s: mono %v, split %v", i, name, want.Values[c], got.Values[c])
			}
		}
	}
	if !reflect.DeepEqual(wantTS.Histograms, gotTS.Histograms) {
		t.Error("histogram tracks differ between monolithic and split runs")
	}
}

// TestForkPoolMatchesTelemetryRun closes the loop between the fork
// scheduler and the telemetry contract: cells run through a ForkPool
// (which warms once and forks the second cell from the checkpoint) must
// be bit-identical to fresh monolithic runs with telemetry attached —
// i.e. the two "observation must not perturb" invariants compose.
func TestForkPoolMatchesTelemetryRun(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable; forking disabled on this runtime")
	}
	cfg, benches := telemetryCfg()
	var pool ForkPool

	// Two measure budgets sharing one warmup identity: the second cell
	// restores the first's checkpoint.
	for _, measure := range []uint64{cfg.MeasureInstructions, cfg.MeasureInstructions / 2} {
		c := cfg
		c.MeasureInstructions = measure
		got, err := pool.Run(c, benches, 42)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(c, benches, 42,
			WithTracer(telemetry.NewTracer(1<<16)), WithTimeSeries(10_000))
		if err != nil {
			t.Fatal(err)
		}
		want := fresh.Run()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("measure=%d: forked cell differs from telemetry-attached scratch run:\nscratch: %+v\nforked:  %+v",
				measure, want, got)
		}
	}
}

// TestSelfMetricsReportThroughput checks that the simulator's
// self-throughput gauges carry live values during a run: the simulated
// clock and the event counter advance, so by the last full epoch both
// rates must be positive.
func TestSelfMetricsReportThroughput(t *testing.T) {
	cfg, benches := telemetryCfg()
	sys, err := New(cfg, benches, 42, WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	smp := sys.Sampler()
	sys.Run()

	ts := smp.Series()
	col := map[string]int{}
	for i, n := range ts.Metrics {
		col[n] = i
	}
	last := ts.Samples[len(ts.Samples)-1]
	if v := last.Values[col["self.sim_cycles_per_sec"]]; v <= 0 {
		t.Errorf("self.sim_cycles_per_sec = %v, want > 0", v)
	}
	if v := last.Values[col["self.engine_events_per_sec"]]; v <= 0 {
		t.Errorf("self.engine_events_per_sec = %v, want > 0", v)
	}
	// No sweep cells complete inside a single standalone run, so the
	// per-cell gauges stay at their well-defined zero.
	if v := last.Values[col["self.allocs_per_cell"]]; v < 0 {
		t.Errorf("self.allocs_per_cell = %v, want >= 0", v)
	}
}
