package system

import (
	"reflect"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/sweep"
)

// TestForkedGoldenReplay replays the whole golden grid through a single
// ForkPool twice — the first pass warms machines and takes checkpoints,
// the second forks every cell from them — and asserts each cell's
// Results remain bit-identical to the pinned seed-checkout values both
// times. This is the tentpole guarantee: fork-then-measure ≡
// run-from-scratch.
func TestForkedGoldenReplay(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	t.Setenv(NoPoolEnv, "")
	t.Setenv(NoForkEnv, "")
	cells := loadGoldenCells(t)
	var pool ForkPool
	for pass := 0; pass < 2; pass++ {
		for _, c := range cells {
			cfg := goldenConfig(t, c)
			got, err := pool.Run(cfg, c.Benches, c.Seed)
			if err != nil {
				t.Fatalf("pass %d %s/%v: %v", pass, c.Mech, c.Benches, err)
			}
			if !reflect.DeepEqual(got, c.Results) {
				t.Errorf("pass %d %s/%v: forked Results diverge from golden\n got: %+v\nwant: %+v",
					pass, c.Mech, c.Benches, got, c.Results)
			}
		}
	}
}

// TestForkMatchesScratchDifferential exercises the restore path
// directly: for every mechanism, several cells share one warmup
// identity (same config but for the measurement budget, same benches,
// same seed) so every cell after the first forks from the group's
// checkpoint — and each must equal a fresh scratch machine's Run
// bit for bit.
func TestForkMatchesScratchDifferential(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	t.Setenv(NoPoolEnv, "")
	t.Setenv(NoForkEnv, "")
	var pool ForkPool
	mechs := []config.Mechanism{
		config.Baseline, config.TADIP, config.DAWB, config.VWQ,
		config.SkipCache, config.DBIAWB, config.DBICLB, config.DBIAWBCLB,
	}
	for _, mech := range mechs {
		for _, measure := range []uint64{3000, 5000, 8000} {
			cfg := config.Scaled(2, mech)
			cfg.WarmupInstructions, cfg.MeasureInstructions = 4000, measure
			benches := []string{"stream", "mcf"}
			forked, err := pool.Run(cfg, benches, 11)
			if err != nil {
				t.Fatalf("%v measure=%d: forked: %v", mech, measure, err)
			}
			fresh, err := New(cfg, benches, 11)
			if err != nil {
				t.Fatal(err)
			}
			if want := fresh.Run(); !reflect.DeepEqual(forked, want) {
				t.Errorf("%v measure=%d: forked vs scratch diverge\nforked:  %+v\nscratch: %+v",
					mech, measure, forked, want)
			}
		}
	}
}

// TestNoForkEnvDisablesForking verifies the DBISIM_NO_FORK escape
// hatch: with it set the pool keeps no fork machines, still returns
// correct results, and matches the forked path bit for bit.
func TestNoForkEnvDisablesForking(t *testing.T) {
	cfg := config.Scaled(1, config.DBIAWBCLB)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 3000, 5000
	benches := []string{"milc"}

	t.Setenv(NoForkEnv, "1")
	var plain ForkPool
	first, err := plain.Run(cfg, benches, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.machines) != 0 {
		t.Error("ForkPool retained fork machines with DBISIM_NO_FORK set")
	}

	t.Setenv(NoForkEnv, "")
	if !Forkable() {
		return
	}
	var forking ForkPool
	for i := 0; i < 2; i++ {
		got, err := forking.Run(cfg, benches, 21)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, got) {
			t.Errorf("run %d: NO_FORK vs forked results diverge", i)
		}
	}
}

// TestForkedParallelSweep runs a warmup-grouped grid through
// sweep.RunState on one and four workers with ForkPool states and
// requires bit-identical outcome sets; under -race it also proves the
// Release/adopt handoff shares no mutable state between live workers.
func TestForkedParallelSweep(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	t.Setenv(NoPoolEnv, "")
	t.Setenv(NoForkEnv, "")
	mechs := []config.Mechanism{config.Baseline, config.DBIAWBCLB}
	var cells []sweep.StateCell[Results, ForkPool]
	for _, m := range mechs {
		for _, measure := range []uint64{2000, 4000, 6000} {
			cfg := config.Scaled(1, m)
			cfg.WarmupInstructions, cfg.MeasureInstructions = 2000, measure
			seed := int64(31)
			cells = append(cells, sweep.StateCell[Results, ForkPool]{
				Key: sweep.Key{Experiment: "t", Benchmark: "stream", Mechanism: m.String(),
					Param: WarmupKey(cfg, []string{"stream"}, seed)[:8]},
				Run: func(p *ForkPool) (Results, error) {
					return p.Run(cfg, []string{"stream"}, seed)
				},
				Group: WarmupKey(cfg, []string{"stream"}, seed),
			})
		}
	}
	seq, err := sweep.RunState(cells, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.RunState(cells, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Value, par[i].Value) {
			t.Errorf("cell %d: sequential vs 4-worker forked results diverge", i)
		}
	}
}

// TestGroupedCellsShareWorkerChains pins the scheduler contract the
// fork pool relies on: same-Group cells run consecutively on one
// worker state even when scattered through the input.
func TestGroupedCellsShareWorkerChains(t *testing.T) {
	type w struct{ seen []int }
	cells := make([]sweep.StateCell[int, w], 6)
	groups := []string{"a", "b", "a", "", "b", "a"}
	for i := range cells {
		i := i
		cells[i] = sweep.StateCell[int, w]{
			Key:   sweep.Key{Experiment: "g", Run: i},
			Group: groups[i],
			Run: func(st *w) (int, error) {
				st.seen = append(st.seen, i)
				return len(st.seen), nil
			},
		}
	}
	outs, err := sweep.RunState(cells, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Within a group, the per-state counter must increase in input
	// order: 1, 2, 3 for group "a" (cells 0, 2, 5), 1, 2 for "b".
	if outs[0].Value >= outs[2].Value || outs[2].Value >= outs[5].Value {
		t.Errorf("group a cells did not run in order on one state: %d %d %d",
			outs[0].Value, outs[2].Value, outs[5].Value)
	}
	if outs[1].Value >= outs[4].Value {
		t.Errorf("group b cells did not run in order on one state: %d %d",
			outs[1].Value, outs[4].Value)
	}
}
