package system

import (
	"testing"

	"dbisim/internal/config"
)

// smallCfg shrinks the scaled preset further (quarter-size hierarchy,
// short budgets) so each test run finishes in tens of milliseconds while
// still reaching steady-state evictions.
func smallCfg(cores int, mech config.Mechanism) config.SystemConfig {
	cfg := config.Scaled(cores, mech)
	cfg.L1.SizeBytes = 8 << 10
	cfg.L2.SizeBytes = 32 << 10
	cfg.L3.SizeBytes = 256 << 10 * uint64(cores)
	cfg.WarmupInstructions = 80_000
	cfg.MeasureInstructions = 160_000
	cfg.MissPred.EpochCycles = 200_000
	return cfg
}

func TestNewValidations(t *testing.T) {
	if _, err := New(smallCfg(1, config.TADIP), []string{"mcf", "lbm"}, 1); err == nil {
		t.Fatal("benchmark/core count mismatch accepted")
	}
	if _, err := New(smallCfg(1, config.TADIP), []string{"nonexistent"}, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	cfg := smallCfg(1, config.TADIP)
	cfg.NumCores = 0
	if _, err := New(cfg, nil, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSingleCoreRunProducesSaneResults(t *testing.T) {
	sys, err := New(smallCfg(1, config.TADIP), []string{"stream"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if len(r.PerCore) != 1 {
		t.Fatalf("per-core results: %d", len(r.PerCore))
	}
	c := r.PerCore[0]
	if c.IPC <= 0 || c.IPC > 1 {
		t.Fatalf("IPC = %v, want (0,1] for a single-issue core", c.IPC)
	}
	if c.Cycles == 0 {
		t.Fatal("no cycles recorded")
	}
	if r.TotalInstructions < 50_000 {
		t.Fatalf("instructions = %d, want >= warmup+measure", r.TotalInstructions)
	}
	if r.TagLookupsPKI <= 0 {
		t.Fatal("no tag lookups")
	}
	if r.MemWritesPKI <= 0 {
		t.Fatal("stream generated no memory writes")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results {
		sys, err := New(smallCfg(1, config.DBIAWB), []string{"lbm"}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if a.PerCore[0].IPC != b.PerCore[0].IPC {
		t.Fatalf("IPC differs across identical runs: %v vs %v", a.PerCore[0].IPC, b.PerCore[0].IPC)
	}
	if a.WriteRowHitRate != b.WriteRowHitRate {
		t.Fatal("write RHR differs across identical runs")
	}
	if a.TagLookupsPKI != b.TagLookupsPKI {
		t.Fatal("tag lookups differ across identical runs")
	}
}

func TestMultiCoreRunCompletes(t *testing.T) {
	cfg := smallCfg(2, config.DBIAWBCLB)
	sys, err := New(cfg, []string{"GemsFDTD", "libquantum"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if len(r.PerCore) != 2 {
		t.Fatalf("per-core results: %d", len(r.PerCore))
	}
	for i, c := range r.PerCore {
		if c.IPC <= 0 {
			t.Fatalf("core %d IPC = %v", i, c.IPC)
		}
	}
}

func TestAWBRaisesWriteRowHitRate(t *testing.T) {
	base, err := New(smallCfg(1, config.TADIP), []string{"lbm"}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rb := base.Run()
	awb, err := New(smallCfg(1, config.DBIAWB), []string{"lbm"}, 11)
	if err != nil {
		t.Fatal(err)
	}
	ra := awb.Run()
	if ra.WriteRowHitRate <= rb.WriteRowHitRate {
		t.Fatalf("AWB write RHR %.3f not above TA-DIP %.3f",
			ra.WriteRowHitRate, rb.WriteRowHitRate)
	}
}

func TestDAWBInflatesTagLookups(t *testing.T) {
	base, _ := New(smallCfg(1, config.TADIP), []string{"lbm"}, 11)
	rb := base.Run()
	dawb, _ := New(smallCfg(1, config.DAWB), []string{"lbm"}, 11)
	rd := dawb.Run()
	if rd.TagLookupsPKI <= rb.TagLookupsPKI*1.2 {
		t.Fatalf("DAWB lookups PKI %.1f not clearly above TA-DIP %.1f",
			rd.TagLookupsPKI, rb.TagLookupsPKI)
	}
	// DBI's key efficiency claim (Section 3.1): it looks up the tag
	// store only for blocks that are actually dirty, so its useful
	// writebacks per filler lookup are far higher than DAWB's
	// indiscriminate row scan.
	dbia, _ := New(smallCfg(1, config.DBIAWB), []string{"lbm"}, 11)
	ra := dbia.Run()
	dawbUseful := float64(dawb.LLC.Stat.ProactiveWBs.Value())
	dawbEff := dawbUseful / float64(dawb.LLC.Stat.FillerLookups.Value())
	dbiUseful := float64(dbia.LLC.Stat.ProactiveWBs.Value() + dbia.LLC.Stat.DBIEvictionWBs.Value())
	dbiEff := dbiUseful / float64(dbia.LLC.Stat.FillerLookups.Value())
	if dbiEff <= dawbEff*2 {
		t.Fatalf("DBI+AWB filler efficiency %.3f not clearly above DAWB %.3f",
			dbiEff, dawbEff)
	}
	_ = ra
}

func TestCLBReducesTagLookupsForStreamingApp(t *testing.T) {
	cfg := smallCfg(1, config.DBICLB)
	cfg.MissPred.EpochCycles = 50_000
	clb, err := New(cfg, []string{"libquantum"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rc := clb.Run()
	base, _ := New(smallCfg(1, config.DBI), []string{"libquantum"}, 5)
	rb := base.Run()
	if rc.Bypasses == 0 {
		t.Fatal("CLB produced no bypasses on a ~100% miss-rate app")
	}
	if rc.TagLookupsPKI >= rb.TagLookupsPKI {
		t.Fatalf("CLB lookups PKI %.1f not below plain DBI %.1f",
			rc.TagLookupsPKI, rb.TagLookupsPKI)
	}
}

func TestMetricsHelpers(t *testing.T) {
	shared := []CoreResult{
		{Bench: "a", IPC: 0.5},
		{Bench: "b", IPC: 0.25},
	}
	alone := map[string]float64{"a": 1.0, "b": 0.5}
	if ws := WeightedSpeedup(shared, alone); ws != 1.0 {
		t.Fatalf("WS = %v, want 1.0", ws)
	}
	if hs := HarmonicSpeedup(shared, alone); hs != 0.5 {
		t.Fatalf("HS = %v, want 0.5", hs)
	}
	if ms := MaxSlowdown(shared, alone); ms != 2.0 {
		t.Fatalf("MaxSlowdown = %v, want 2.0", ms)
	}
	if it := InstructionThroughput(shared); it != 0.75 {
		t.Fatalf("IT = %v", it)
	}
	// Missing alone data is skipped, not a crash.
	if ws := WeightedSpeedup(shared, map[string]float64{"a": 1}); ws != 0.5 {
		t.Fatalf("partial WS = %v", ws)
	}
}
