package system

import (
	"reflect"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/telemetry"
)

// attrMechs is the mechanism spread the attribution tests sweep: every
// writeback path (demand, proactive, AWB harvest, DBI drain, skip-cache
// write-through) is exercised by at least one of them.
var attrMechs = []config.Mechanism{
	config.Baseline, config.TADIP, config.DAWB, config.VWQ,
	config.SkipCache, config.DBIAWB, config.DBICLB, config.DBIAWBCLB,
}

// TestAttributionBitIdentity is the headline guarantee: attaching an
// attribution ledger never changes simulated behavior. For every
// mechanism, a plain run and an attributed run must produce Results
// that are bit-identical once the Attr report itself is set aside.
func TestAttributionBitIdentity(t *testing.T) {
	for _, mech := range attrMechs {
		cfg := smallCfg(2, mech)
		benches := []string{"stream", "mcf"}
		plain, err := New(cfg, benches, 42)
		if err != nil {
			t.Fatal(err)
		}
		attributed, err := New(cfg, benches, 42, WithAttribution())
		if err != nil {
			t.Fatal(err)
		}
		want := plain.Run()
		got := attributed.Run()
		if got.Attr == nil {
			t.Fatalf("%v: attributed run produced no Attr report", mech)
		}
		if want.Attr != nil {
			t.Fatalf("%v: plain run produced an Attr report", mech)
		}
		got.Attr = nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: attribution perturbed Results\nattr: %+v\nplain: %+v", mech, got, want)
		}
	}
}

// TestAttributionReconciles checks the ledger's accounting equation on
// real runs: for every mechanism, both windows of the report reconcile
// (closed domains sum exactly) and the domains the workload must have
// touched are non-zero.
func TestAttributionReconciles(t *testing.T) {
	for _, mech := range attrMechs {
		sys, err := New(smallCfg(2, mech), []string{"stream", "mcf"}, 7, WithAttribution())
		if err != nil {
			t.Fatal(err)
		}
		r := sys.Run()
		if r.Attr == nil {
			t.Fatalf("%v: no Attr report", mech)
		}
		for _, w := range []struct {
			name string
			win  telemetry.AttrWindow
		}{{"warmup", r.Attr.Warmup}, {"measure", r.Attr.Measure}} {
			if err := w.win.Reconcile(); err != nil {
				t.Errorf("%v %s window: %v", mech, w.name, err)
			}
			if w.win.Cycles == 0 {
				t.Errorf("%v %s window: zero cycles", mech, w.name)
			}
			for _, dom := range []string{"llc_port", "dram_bank", "dram_bus"} {
				if w.win.Domains[dom] == 0 {
					t.Errorf("%v %s window: domain %q untouched", mech, w.name, dom)
				}
			}
			for _, cat := range []string{"cpu.issue", "llc.tag_probe", "dram.bank_service"} {
				if w.win.Categories[cat] == 0 {
					t.Errorf("%v %s window: category %q untouched", mech, w.name, cat)
				}
			}
		}
	}
}

// TestAttributionSurvivesReset: Reset returns the ledger to power-on
// zero, so a reset machine's report must equal a fresh machine's bit
// for bit — the reuse path cannot leak the previous cell's charges.
func TestAttributionSurvivesReset(t *testing.T) {
	cfg := smallCfg(1, config.DBIAWB)
	sys, err := New(cfg, []string{"stream"}, 3, WithAttribution())
	if err != nil {
		t.Fatal(err)
	}
	first := sys.Run()
	if err := sys.Reset(cfg, []string{"stream"}, 3); err != nil {
		t.Fatal(err)
	}
	second := sys.Run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("reset run diverges from first\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestAttributionForkMatchesScratch: attribution is checkpoint-carried
// state, so a forked measure window must report exactly what a scratch
// run reports — including the Attr report, compared bit for bit. The
// process-wide toggle routes the ledger into the pool's internally
// constructed machines.
func TestAttributionForkMatchesScratch(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	t.Setenv(NoPoolEnv, "")
	t.Setenv(NoForkEnv, "")
	SetAttributionEnabled(true)
	defer SetAttributionEnabled(false)
	var pool ForkPool
	for _, mech := range []config.Mechanism{config.Baseline, config.DBIAWBCLB} {
		for _, measure := range []uint64{3000, 6000} {
			cfg := config.Scaled(2, mech)
			cfg.WarmupInstructions, cfg.MeasureInstructions = 4000, measure
			benches := []string{"stream", "mcf"}
			forked, err := pool.Run(cfg, benches, 11)
			if err != nil {
				t.Fatalf("%v measure=%d: %v", mech, measure, err)
			}
			fresh, err := New(cfg, benches, 11)
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.Run()
			if want.Attr == nil || forked.Attr == nil {
				t.Fatalf("%v measure=%d: missing Attr report (toggle not honored)", mech, measure)
			}
			if !reflect.DeepEqual(forked, want) {
				t.Errorf("%v measure=%d: forked vs scratch diverge\nforked:  %+v\nscratch: %+v",
					mech, measure, forked, want)
			}
		}
	}
}

// TestAttributionSnapshotAllowed: unlike tracers and samplers, an
// attached ledger must not make Snapshot/Restore refuse.
func TestAttributionSnapshotAllowed(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	cfg := smallCfg(1, config.TADIP)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 4000, 4000
	sys, err := New(cfg, []string{"stream"}, 5, WithAttribution())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWarmup(); err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	if err := sys.Snapshot(&ck); err != nil {
		t.Fatalf("snapshot refused with attribution attached: %v", err)
	}
	first, err := sys.RunMeasure()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(cfg, &ck); err != nil {
		t.Fatalf("restore refused with attribution attached: %v", err)
	}
	second, err := sys.RunMeasure()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("restored measure diverges\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
