package system

import (
	"dbisim/internal/telemetry"
)

// Option configures a System at construction time. Options are applied
// by New in a fixed internal order (tracer, metrics registry, time
// series), so combinations behave the same regardless of the order they
// are passed in:
//
//	sys, err := system.New(cfg, benches, seed,
//		system.WithTracer(t),
//		system.WithTimeSeries(epoch),
//		system.WithMetrics(reg))
//
// A System built with options is fully configured when New returns.
// (The AttachTracer/EnableTimeSeries mutator shims these options
// replaced have been removed.)
type Option func(*options)

type options struct {
	tracer *telemetry.Tracer
	epoch  uint64
	reg    *telemetry.Registry
	attr   bool
}

// WithTracer wires a request-lifecycle tracer into every component and
// labels their viewer lanes. Tracing never changes simulated behavior:
// Results stay bit-identical with and without it
// (TestTelemetryDoesNotPerturbResults).
func WithTracer(t *telemetry.Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// WithTimeSeries registers every component's metrics (and the
// simulator's self-throughput gauges) and arms an epoch sampler that
// snapshots them every epochCycles cycles during Run. The sampler only
// reads counters at epoch boundaries, so — like tracing — it cannot
// perturb the simulation's results. Retrieve the sampler with Sampler
// after New.
//
// When combined with WithMetrics, the sampler snapshots the caller's
// registry instead of a private one.
func WithTimeSeries(epochCycles uint64) Option {
	return func(o *options) { o.epoch = epochCycles }
}

// WithMetrics registers every component's probes into the caller's
// registry, for callers that sample or export metrics themselves. The
// self.* throughput gauges are only added (and only meaningful) when a
// sampler is armed via WithTimeSeries, which then shares this registry.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithAttribution attaches a cycle/bandwidth attribution ledger to
// every component. Unlike tracers and samplers, attribution is plain
// counter state that Reset/Snapshot/Restore carry exactly, so an
// attributed System still pools, forks and resets; Results gain an
// Attr report split at the warmup→measure boundary. Attribution never
// schedules events or influences decisions, so Results stay
// bit-identical with and without it.
//
// Pools construct their Systems internally with no options; use
// SetAttributionEnabled for a process-wide default that reaches them.
func WithAttribution() Option {
	return func(o *options) { o.attr = true }
}

// apply wires the collected options into the assembled system.
func (s *System) apply(o *options) {
	if o.tracer != nil {
		s.attachTracer(o.tracer)
	}
	if o.attr || AttributionEnabled() {
		s.attachAttr(&telemetry.Attribution{})
	}
	if o.reg != nil || o.epoch > 0 {
		reg := o.reg
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		s.registerComponentMetrics(reg)
		if o.epoch > 0 {
			s.registerSelfMetrics(reg)
			s.sampler = telemetry.NewSampler(reg, o.epoch)
		}
	}
}
