// Package system assembles a complete simulated machine — N trace-driven
// cores with private L1/L2, one shared LLC in the configured mechanism,
// and the DDR3 memory controller — and runs the two-phase (warmup,
// measure) experiment protocol of Section 5 of the DBI paper.
package system

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/cpu"
	"dbisim/internal/dram"
	"dbisim/internal/event"
	"dbisim/internal/llc"
	"dbisim/internal/perfstat"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
	"dbisim/internal/trace"
)

// System is one assembled machine.
type System struct {
	Eng   event.Engine
	Cfg   config.SystemConfig
	Geo   addr.Geometry
	Mem   *dram.Controller
	LLC   *llc.LLC
	Cores []*cpu.Core

	benchNames []string
	gens       []trace.Generator // per-core generators, kept for Reset
	snap       snapshot

	// attr is the machine's attribution ledger (nil when attribution
	// is off). Unlike tracer/sampler it is plain simulated-counter
	// state: Reset zeroes it, Snapshot/Restore carry it, and none of
	// those operations refuse because of it.
	attr *telemetry.Attribution

	tracer  *telemetry.Tracer
	sampler *telemetry.Sampler
	// samplerStop finishes an armed epoch sampler. It is non-nil only
	// while the sampler's Every event is live, which may span a
	// RunWarmup/RunMeasure phase split: the sampler arms at the first
	// phase and finishes when the measurement phase completes, so a
	// split run exports the same time series as a monolithic Run.
	samplerStop func()

	// Self-throughput baselines, captured at Run entry when time series
	// are armed. They live in the host domain (wall clock, allocation
	// counters, process-wide cell count), so the self.* gauges can
	// report how fast the simulator itself is running without touching
	// simulated state.
	perfStart   time.Time
	perfMallocs uint64
	perfCells   uint64
}

// CoreResult is one core's measured performance.
type CoreResult struct {
	Bench        string
	IPC          float64
	Instructions uint64
	Cycles       uint64
	MPKI         float64 // LLC demand reads per kilo instruction that missed
	L1HitRate    float64
}

// Results aggregates everything the paper's figures report.
type Results struct {
	Mechanism config.Mechanism
	PerCore   []CoreResult

	// Figure 6 series (whole-run rates; the synthetic workloads are
	// stationary, so whole-run and post-warmup rates agree closely).
	WriteRowHitRate float64
	ReadRowHitRate  float64
	TagLookupsPKI   float64
	MemWritesPKI    float64
	MemReadsPKI     float64
	LLCMPKI         float64

	TotalInstructions uint64
	// Measured-window DRAM command counts (for the energy model).
	MemReads, MemWrites, MemActivates uint64
	Bypasses                          uint64
	FillerLookups                     uint64
	DBIEvictions                      uint64
	AvgReadLatency                    float64
	PortQueueDelay                    uint64
	DrainsStarted                     uint64

	// Attr is the run's attribution report (nil when attribution is
	// off): where simulated cycles and DRAM bytes went, split at the
	// warmup→measure boundary. It is carried separately from Metrics()
	// so existing golden grids and -check flows are untouched.
	Attr *telemetry.AttrReport
}

// attrEnabled is the process-wide attribution default. The pool and
// fork schedulers construct Systems internally with no options, so a
// CLI -attr flag reaches them through this toggle instead.
var attrEnabled atomic.Bool

// SetAttributionEnabled sets the process-wide attribution default:
// when on, every System built by New (and every pooled machine on its
// next Reset) carries an attribution ledger. Flip it before starting
// sweeps; machines already warmed keep their current attachment until
// they reset.
func SetAttributionEnabled(on bool) { attrEnabled.Store(on) }

// AttributionEnabled reports the process-wide attribution default.
func AttributionEnabled() bool { return attrEnabled.Load() }

// New builds a system running the named benchmark on every core
// (len(benches) must equal cfg.NumCores). Each core's footprint is
// offset so address streams never overlap, exactly like distinct
// processes in the paper's multiprogrammed workloads.
//
// Optional observability is configured at construction with functional
// options — WithTracer, WithTimeSeries, WithMetrics — so the returned
// System is fully wired before its first cycle.
func New(cfg config.SystemConfig, benches []string, seed int64, opts ...Option) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(benches) != cfg.NumCores {
		return nil, fmt.Errorf("system: %d benchmarks for %d cores", len(benches), cfg.NumCores)
	}
	s := &System{Cfg: cfg, Geo: addr.Default(), benchNames: benches}
	mem, err := dram.New(&s.Eng, s.Geo, cfg.DRAM)
	if err != nil {
		return nil, err
	}
	s.Mem = mem
	l3, err := llc.New(&s.Eng, s.Geo, llc.Config{
		Cores: cfg.NumCores, Sys: cfg, Mem: mem, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	s.LLC = l3
	for i := 0; i < cfg.NumCores; i++ {
		p, err := trace.ByName(benches[i])
		if err != nil {
			return nil, err
		}
		gen := trace.New(p, addr.Addr(uint64(i+1)<<36), seed+int64(i)*131)
		core, err := cpu.New(&s.Eng, i, cfg, gen, l3, seed+int64(i)*977)
		if err != nil {
			return nil, err
		}
		s.gens = append(s.gens, gen)
		s.Cores = append(s.Cores, core)
	}
	var o options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	s.apply(&o)
	return s, nil
}

// Signature returns the geometry signature of a config: everything that
// determines allocated structure shape — cache organizations, DBI and
// predictor parameters, DRAM timing, core count, mechanism — i.e. the
// config with only the run-length budgets zeroed. Two configs with equal
// signatures can share one System through Reset.
func Signature(cfg config.SystemConfig) config.SystemConfig {
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 0
	return cfg
}

// Reset returns the whole machine to power-on state for a new run
// without reallocating any of its structures, exactly as if it had been
// freshly built by New(cfg, benches, seed): same seed derivations, same
// event numbering (the DRAM refresh is re-armed first, as in
// construction), so a reset-then-Run is bit-identical to a fresh
// System's Run. cfg may differ from the construction config only in its
// warmup/measure budgets (Signature must match); benches may change
// freely. Systems with telemetry options attached refuse to reset —
// tracers and samplers accumulate host-side state a reset cannot
// unwind — as do systems whose cores were built with a non-resettable
// trace generator. On error the system is untouched.
func (s *System) Reset(cfg config.SystemConfig, benches []string, seed int64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(benches) != cfg.NumCores {
		return fmt.Errorf("system: %d benchmarks for %d cores", len(benches), cfg.NumCores)
	}
	if Signature(cfg) != Signature(s.Cfg) {
		return fmt.Errorf("system: reset requires matching geometry signatures")
	}
	if s.tracer != nil || s.sampler != nil {
		return fmt.Errorf("system: cannot reset with telemetry attached")
	}
	profiles := make([]trace.Profile, len(benches))
	for i, b := range benches {
		p, err := trace.ByName(b)
		if err != nil {
			return err
		}
		profiles[i] = p
	}
	resetters := make([]trace.Resetter, len(s.gens))
	for i, g := range s.gens {
		r, ok := g.(trace.Resetter)
		if !ok {
			return fmt.Errorf("system: core %d generator is not resettable", i)
		}
		resetters[i] = r
	}
	s.Cfg = cfg
	s.Eng.Reset()
	s.Mem.Reset()
	s.LLC.Reset(seed)
	for i, c := range s.Cores {
		resetters[i].Reset(profiles[i], addr.Addr(uint64(i+1)<<36), seed+int64(i)*131)
		c.Reset(seed + int64(i)*977)
	}
	s.benchNames = append(s.benchNames[:0], benches...)
	s.snap = snapshot{}
	// Attribution is counter state, not host-side telemetry: reset
	// returns it to power-on zero rather than refusing. A machine
	// built before the process-wide toggle flipped on gains its ledger
	// here, so pooled machines honor the toggle from their next run.
	if s.attr != nil {
		s.attr.Reset()
	} else if AttributionEnabled() {
		s.attachAttr(&telemetry.Attribution{})
	}
	return nil
}

// attachAttr wires one attribution ledger into every component that
// charges it.
func (s *System) attachAttr(a *telemetry.Attribution) {
	s.attr = a
	s.Mem.Attr = a
	s.LLC.Attr = a
	s.LLC.Port.Attr = a
	for _, c := range s.Cores {
		c.Attr = a
	}
}

// attachTracer is the tracer wiring behind WithTracer. Tracing must
// never change simulated behavior — TestTelemetryDoesNotPerturbResults
// holds Run's Results bit-identical with and without it.
func (s *System) attachTracer(t *telemetry.Tracer) {
	s.tracer = t
	s.Mem.Trc = t
	s.LLC.Trc = t
	for i, c := range s.Cores {
		c.Trc = t
		t.NameThread(i, fmt.Sprintf("core %d", i))
	}
	t.NameThread(telemetry.TIDLLC, "llc")
	t.NameThread(telemetry.TIDDBI, "dbi")
	t.NameThread(telemetry.TIDDRAM, "dram ctrl")
	for b := 0; b < s.Cfg.DRAM.Banks; b++ {
		t.NameThread(telemetry.TIDBank(b), fmt.Sprintf("dram bank %d", b))
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (s *System) Tracer() *telemetry.Tracer { return s.tracer }

// RegisterMetrics adds every component's probes to the caller's
// registry after construction — the hook cmd/dbisim uses to expose a
// live single-run registry on the ops-plane /metrics endpoint without
// routing it through the epoch sampler. Component counters are plain
// (non-atomic) uint64s, so values scraped mid-run are monitoring
// approximations; they are exact whenever the engine is quiescent.
func (s *System) RegisterMetrics(reg *telemetry.Registry) {
	s.registerComponentMetrics(reg)
}

// registerComponentMetrics adds every component's probes to a registry.
func (s *System) registerComponentMetrics(reg *telemetry.Registry) {
	for _, c := range s.Cores {
		c.RegisterMetrics(reg)
	}
	s.LLC.RegisterMetrics(reg)
	s.Mem.RegisterMetrics(reg)
}

// registerSelfMetrics adds the simulator-throughput gauges — how fast
// the simulation itself executes on the host — so they ride the same
// time-series export path as the workload metrics. All four only read
// host-domain state (wall clock, engine counters, allocation totals,
// the process-wide sweep cell count), so they preserve the
// bit-identical-Results guarantee like every other probe.
func (s *System) registerSelfMetrics(reg *telemetry.Registry) {
	elapsed := func() float64 { return time.Since(s.perfStart).Seconds() }
	reg.Gauge("self.sim_cycles_per_sec", func() float64 {
		if el := elapsed(); el > 0 {
			return float64(s.Eng.Now()) / el
		}
		return 0
	})
	reg.Gauge("self.engine_events_per_sec", func() float64 {
		if el := elapsed(); el > 0 {
			return float64(s.Eng.Fired()) / el
		}
		return 0
	})
	reg.Gauge("self.cells_per_sec", func() float64 {
		if el := elapsed(); el > 0 {
			return float64(perfstat.CellCount()-s.perfCells) / el
		}
		return 0
	})
	reg.Gauge("self.allocs_per_cell", func() float64 {
		cells := perfstat.CellCount() - s.perfCells
		if cells == 0 {
			return 0
		}
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.Mallocs-s.perfMallocs) / float64(cells)
	})
}

// Sampler returns the armed epoch sampler (nil when time series are
// off).
func (s *System) Sampler() *telemetry.Sampler { return s.sampler }

// snapshot captures the global counters at the start of the measurement
// window so harvest can report measured-window rates. Without it, the
// warmup transient (an LLC filling with dirty blocks writes nothing to
// memory) would distort every writeback-related comparison.
type snapshot struct {
	reads, writes             uint64
	readRowHits, writeRowHits uint64
	tagLookups, readMisses    uint64
	bypasses, fillerLookups   uint64
	dbiEvictions              uint64
	readLatencySum            uint64
	portQueueDelay, drains    uint64
	activates                 uint64
	coreIssued                []uint64

	// attr/atCycle baseline the attribution ledger at the same instant
	// as the counters above, so harvest can split warmup from measure.
	// AttrValues is a plain array pair, so the struct copy semantics
	// snapshot/checkpoint rely on still hold.
	attr    telemetry.AttrValues
	atCycle uint64
}

func (s *System) takeSnapshot() snapshot {
	ms := &s.Mem.Stat
	sn := snapshot{
		reads:          ms.Reads.Value(),
		writes:         ms.Writes.Value(),
		readRowHits:    ms.ReadRowHits.Value(),
		writeRowHits:   ms.WriteRowHits.Value(),
		tagLookups:     s.LLC.TagLookups(),
		readMisses:     s.LLC.Stat.ReadMisses.Value(),
		bypasses:       s.LLC.Stat.Bypasses.Value(),
		fillerLookups:  s.LLC.Stat.FillerLookups.Value(),
		readLatencySum: ms.ReadLatencySum.Value(),
		portQueueDelay: s.LLC.Port.QueueDelay.Value(),
		drains:         ms.DrainsStarted.Value(),
		activates:      ms.Activates.Value(),
		attr:           s.attr.Values(),
		atCycle:        uint64(s.Eng.Now()),
	}
	if s.LLC.DBI != nil {
		sn.dbiEvictions = s.LLC.DBI.Stat.Evictions.Value()
	}
	for _, c := range s.Cores {
		sn.coreIssued = append(sn.coreIssued, c.Issued())
	}
	return sn
}

// armSampler arms the epoch sampler's engine event and captures the
// host-domain baselines for the self.* gauges. It is idempotent: a
// sampler armed by RunWarmup stays armed across the phase split until
// finishSampler runs at the end of the measurement phase.
func (s *System) armSampler() {
	if s.sampler == nil || s.samplerStop != nil {
		return
	}
	s.perfStart = time.Now()
	s.perfCells = perfstat.CellCount()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.perfMallocs = m.Mallocs
	smp := s.sampler
	cancel := s.Eng.Every(event.Cycle(smp.Epoch()), func() {
		smp.Tick(uint64(s.Eng.Now()))
	})
	s.samplerStop = func() {
		cancel()
		smp.Finish(uint64(s.Eng.Now()))
	}
}

// finishSampler cancels the epoch event and records the final
// partial-epoch sample, if a sampler is armed.
func (s *System) finishSampler() {
	if s.samplerStop != nil {
		s.samplerStop()
		s.samplerStop = nil
	}
}

// Run executes warmup then measurement on every core and returns the
// harvested results. Cores that finish early keep executing (preserving
// contention) until the last core completes its measured budget. Global
// rates are measured from the moment the last core finishes warmup.
func (s *System) Run() Results {
	s.armSampler()
	defer s.finishSampler()
	remaining := len(s.Cores)
	warming := len(s.Cores)
	for _, c := range s.Cores {
		c := c
		c.Start(s.Cfg.WarmupInstructions, func() {
			warming--
			if warming == 0 {
				s.snap = s.takeSnapshot()
			}
			// Warmup done: immediately begin this core's measure window.
			c.Rebudget(s.Cfg.MeasureInstructions, func() {
				remaining--
				if remaining == 0 {
					s.Eng.Stop()
				}
			})
		})
	}
	s.Eng.Run()
	return s.harvest()
}

func (s *System) harvest() Results {
	r := Results{Mechanism: s.Cfg.Mechanism}
	sn := &s.snap
	var insts uint64
	for i, c := range s.Cores {
		measured := c.Issued()
		if i < len(sn.coreIssued) {
			measured -= sn.coreIssued[i]
		}
		ci := CoreResult{
			Bench:        s.benchNames[i],
			IPC:          c.IPC(),
			Instructions: measured,
			Cycles:       c.Cycles(),
		}
		ci.MPKI = stats.PerKilo(c.Stat.LLCAccesses.Value(), c.Stat.Instructions.Value())
		ci.L1HitRate = stats.Ratio(c.Stat.L1Hits.Value(), c.Stat.Loads.Value()+c.Stat.Stores.Value())
		insts += measured
		r.PerCore = append(r.PerCore, ci)
	}
	r.TotalInstructions = insts
	ms := &s.Mem.Stat
	reads := ms.Reads.Value() - sn.reads
	writes := ms.Writes.Value() - sn.writes
	r.WriteRowHitRate = stats.Ratio(ms.WriteRowHits.Value()-sn.writeRowHits, writes)
	r.ReadRowHitRate = stats.Ratio(ms.ReadRowHits.Value()-sn.readRowHits, reads)
	r.TagLookupsPKI = stats.PerKilo(s.LLC.TagLookups()-sn.tagLookups, insts)
	r.MemWritesPKI = stats.PerKilo(writes, insts)
	r.MemReadsPKI = stats.PerKilo(reads, insts)
	r.MemReads, r.MemWrites = reads, writes
	r.MemActivates = ms.Activates.Value() - sn.activates
	r.LLCMPKI = stats.PerKilo(
		s.LLC.Stat.ReadMisses.Value()-sn.readMisses+
			s.LLC.Stat.Bypasses.Value()-sn.bypasses, insts)
	r.Bypasses = s.LLC.Stat.Bypasses.Value() - sn.bypasses
	r.FillerLookups = s.LLC.Stat.FillerLookups.Value() - sn.fillerLookups
	if s.LLC.DBI != nil {
		r.DBIEvictions = s.LLC.DBI.Stat.Evictions.Value() - sn.dbiEvictions
	}
	r.AvgReadLatency = stats.Ratio(ms.ReadLatencySum.Value()-sn.readLatencySum, reads)
	r.PortQueueDelay = s.LLC.Port.QueueDelay.Value() - sn.portQueueDelay
	r.DrainsStarted = ms.DrainsStarted.Value() - sn.drains
	if s.attr != nil {
		cur := s.attr.Values()
		measured := cur.Sub(sn.attr)
		r.Attr = &telemetry.AttrReport{
			Warmup:  telemetry.NewAttrWindow(sn.attr, sn.atCycle),
			Measure: telemetry.NewAttrWindow(measured, uint64(s.Eng.Now())-sn.atCycle),
		}
		// Fold the measure window into the process-wide aggregate the
		// ops plane serves; host-side only, so Results stay identical.
		telemetry.AttrTotals.Add(measured)
	}
	return r
}

// Metrics flattens the results into the name→value map carried by
// sweep records and the -json output of cmd/dbisim, so single runs and
// sweep cells share one schema.
func (r Results) Metrics() map[string]float64 {
	m := map[string]float64{
		"write_row_hit_rate": r.WriteRowHitRate,
		"read_row_hit_rate":  r.ReadRowHitRate,
		"tag_lookups_pki":    r.TagLookupsPKI,
		"mem_writes_pki":     r.MemWritesPKI,
		"mem_reads_pki":      r.MemReadsPKI,
		"llc_mpki":           r.LLCMPKI,
		"avg_read_latency":   r.AvgReadLatency,
	}
	for i, c := range r.PerCore {
		m[fmt.Sprintf("ipc_core%d", i)] = c.IPC
	}
	return m
}

// WeightedSpeedup computes Σ IPCshared/IPCalone over cores, given the
// alone-IPC of each benchmark measured on a single-core system with the
// same mechanism's baseline (Section 5, Metrics).
func WeightedSpeedup(shared []CoreResult, alone map[string]float64) float64 {
	ws := 0.0
	for _, c := range shared {
		if a := alone[c.Bench]; a > 0 {
			ws += c.IPC / a
		}
	}
	return ws
}

// HarmonicSpeedup computes the harmonic mean of per-core speedups
// (balances throughput and fairness).
func HarmonicSpeedup(shared []CoreResult, alone map[string]float64) float64 {
	var sum float64
	n := 0
	for _, c := range shared {
		if a := alone[c.Bench]; a > 0 && c.IPC > 0 {
			sum += a / c.IPC
			n++
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// MaxSlowdown returns max over cores of IPCalone/IPCshared (lower is
// fairer).
func MaxSlowdown(shared []CoreResult, alone map[string]float64) float64 {
	m := 0.0
	for _, c := range shared {
		if a := alone[c.Bench]; a > 0 && c.IPC > 0 {
			if s := a / c.IPC; s > m {
				m = s
			}
		}
	}
	return m
}

// InstructionThroughput sums per-core IPC.
func InstructionThroughput(shared []CoreResult) float64 {
	t := 0.0
	for _, c := range shared {
		t += c.IPC
	}
	return t
}
