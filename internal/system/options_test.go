package system

import (
	"reflect"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/telemetry"
)

func testCfg() config.SystemConfig {
	cfg := config.Scaled(1, config.DBIAWBCLB)
	cfg.WarmupInstructions = 20_000
	cfg.MeasureInstructions = 40_000
	return cfg
}

// TestOptionsWireTelemetry holds the construction-time options to their
// contract: WithTracer/WithTimeSeries attach live instrumentation, and a
// telemetry-equipped run produces Results bit-identical to a bare one
// (the mutator shims these options replaced are gone).
func TestOptionsWireTelemetry(t *testing.T) {
	bare, err := New(testCfg(), []string{"stream"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	r1 := bare.Run()

	tr := telemetry.NewTracer(1024)
	viaOpts, err := New(testCfg(), []string{"stream"}, 42,
		WithTracer(tr), WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	r2 := viaOpts.Run()

	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("telemetry options perturbed Results:\n%+v\nvs\n%+v", r1, r2)
	}
	if viaOpts.Tracer() != tr {
		t.Fatal("WithTracer did not attach the tracer")
	}
	if viaOpts.Sampler() == nil {
		t.Fatal("WithTimeSeries did not arm a sampler")
	}
	if tr.Len() == 0 {
		t.Fatal("tracer attached via option captured no events")
	}
	if s := viaOpts.Sampler().Series(); len(s.Samples) == 0 {
		t.Fatal("sampler via option took no samples")
	}
}

// TestWithMetricsUsesCallerRegistry checks WithMetrics registers the
// component probes into the caller's registry, and that WithTimeSeries
// shares it when both are given.
func TestWithMetricsUsesCallerRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys, err := New(testCfg(), []string{"stream"}, 42,
		WithMetrics(reg), WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("WithMetrics registered nothing")
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"llc.reads", "dram.reads", "cpu0.instructions",
		"self.sim_cycles_per_sec"} {
		if !found[want] {
			t.Fatalf("registry missing %q (got %d names)", want, len(names))
		}
	}
	sys.Run()
	if got := sys.Sampler().Series(); len(got.Samples) == 0 {
		t.Fatal("shared-registry sampler took no samples")
	}
}

// TestWithMetricsAlone: without a sampler, only component probes are
// registered (the self.* gauges need Run's sampler arming to be
// meaningful).
func TestWithMetricsAlone(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys, err := New(testCfg(), []string{"stream"}, 42, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Sampler() != nil {
		t.Fatal("WithMetrics alone must not arm a sampler")
	}
	for _, n := range reg.Names() {
		if n == "self.sim_cycles_per_sec" {
			t.Fatal("self.* gauges registered without a sampler")
		}
	}
	if len(reg.Names()) == 0 {
		t.Fatal("component probes missing")
	}
}

// TestOptionOrderIrrelevant: options apply in a fixed internal order.
func TestOptionOrderIrrelevant(t *testing.T) {
	reg1 := telemetry.NewRegistry()
	a, err := New(testCfg(), []string{"stream"}, 42,
		WithTimeSeries(10_000), WithMetrics(reg1))
	if err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	b, err := New(testCfg(), []string{"stream"}, 42,
		WithMetrics(reg2), WithTimeSeries(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reg1.Names(), reg2.Names()) {
		t.Fatal("option order changed registry layout")
	}
	if !reflect.DeepEqual(a.Run(), b.Run()) {
		t.Fatal("option order changed Results")
	}
}

// TestNilOptionTolerated: a nil Option is skipped, keeping variadic
// call sites that conditionally build option slices simple.
func TestNilOptionTolerated(t *testing.T) {
	sys, err := New(testCfg(), []string{"stream"}, 42, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer() != nil || sys.Sampler() != nil {
		t.Fatal("nil options configured something")
	}
}
