package system

import (
	"reflect"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/event"
)

// driveUntil starts every core with an effectively unbounded budget and
// advances the engine in small slices until cond holds, failing if it
// never does. The machine is left mid-flight — precisely the state the
// edge-case snapshots want to catch.
func driveUntil(t *testing.T, s *System, cond func() bool) {
	t.Helper()
	for _, c := range s.Cores {
		c.Start(1<<62, nil)
	}
	limit := event.Cycle(0)
	for i := 0; i < 4000; i++ {
		if cond() {
			return
		}
		limit += 256
		s.Eng.RunUntil(limit)
	}
	t.Fatal("condition never reached while driving the machine")
}

// fingerprint flattens the counters a divergence would perturb first:
// engine clocks, per-core issue state, LLC and memory statistics.
func fingerprint(s *System) []uint64 {
	fp := []uint64{uint64(s.Eng.Now()), s.Eng.Fired()}
	for _, c := range s.Cores {
		fp = append(fp, c.Issued(),
			c.Stat.Instructions.Value(), c.Stat.Loads.Value(), c.Stat.Stores.Value(),
			c.Stat.L1Hits.Value(), c.Stat.L2Hits.Value(),
			c.Stat.LLCAccesses.Value(), c.Stat.WindowStalls.Value())
	}
	ls := &s.LLC.Stat
	fp = append(fp, ls.Reads.Value(), ls.ReadHits.Value(), ls.ReadMisses.Value(),
		ls.Bypasses.Value(), ls.WritebackReqs.Value(), ls.FillerLookups.Value(),
		ls.ProactiveWBs.Value(), ls.DBIEvictionWBs.Value(), ls.VictimWBs.Value(),
		ls.ScanDrops.Value(), s.LLC.TagLookups(),
		uint64(s.LLC.MSHRLen()), uint64(s.LLC.ScanQueueLen()))
	ms := &s.Mem.Stat
	fp = append(fp, ms.Reads.Value(), ms.Writes.Value(), ms.Activates.Value(),
		ms.ReadRowHits.Value(), ms.WriteRowHits.Value(),
		ms.DrainsStarted.Value(), ms.ReadLatencySum.Value())
	return fp
}

// snapshotReplayCheck snapshots the machine in its current state, runs
// it 30k cycles further to record the reference trajectory, restores,
// replays, and requires a bit-identical fingerprint.
func snapshotReplayCheck(t *testing.T, s *System) {
	t.Helper()
	var ck Checkpoint
	if err := s.Snapshot(&ck); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	target := s.Eng.Now() + 30000
	s.Eng.RunUntil(target)
	want := fingerprint(s)
	if err := s.Restore(s.Cfg, &ck); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	s.Eng.RunUntil(target)
	if got := fingerprint(s); !reflect.DeepEqual(got, want) {
		t.Errorf("replay after mid-flight restore diverges\n got: %v\nwant: %v", got, want)
	}
}

// TestSnapshotMidDrain catches a DBI+AWB machine with harvest work
// queued in the scan state machine (the evict-buffer/AWB drain in
// flight) and proves a snapshot/restore replays the drain identically.
func TestSnapshotMidDrain(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	cfg := config.Scaled(1, config.DBIAWB)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 1000, 1000
	s, err := New(cfg, []string{"stream"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	driveUntil(t, s, func() bool { return s.LLC.ScanQueueLen() > 0 })
	snapshotReplayCheck(t, s)
}

// TestSnapshotWithOccupiedMSHR catches the machine with outstanding
// merged misses (MSHR waiters parked on in-flight fills) and proves the
// waiter callbacks survive the round trip.
func TestSnapshotWithOccupiedMSHR(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	cfg := config.Scaled(2, config.Baseline)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 1000, 1000
	s, err := New(cfg, []string{"mcf", "milc"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	driveUntil(t, s, func() bool { return s.LLC.MSHRLen() > 0 })
	snapshotReplayCheck(t, s)
}

// TestRestoreRefusals pins the error paths and their
// error-before-mutation contract (same as Reset): a refused restore
// leaves the machine untouched and still usable.
func TestRestoreRefusals(t *testing.T) {
	if !Forkable() {
		t.Skip("rand.Source mirror unavailable on this runtime")
	}
	cfg := config.Scaled(1, config.DBIAWBCLB)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 2000, 3000
	benches := []string{"stream"}
	s, err := New(cfg, benches, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWarmup(); err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	if err := s.Snapshot(&ck); err != nil {
		t.Fatal(err)
	}
	before := fingerprint(s)

	// Mismatched geometry: a different mechanism describes a different
	// machine; the checkpoint must be refused before any mutation.
	other := cfg
	other.Mechanism = config.Baseline
	if err := s.Restore(other, &ck); err == nil {
		t.Error("Restore succeeded across a mechanism change")
	}
	// Mismatched warmup identity within the same geometry.
	other = cfg
	other.WarmupInstructions += 1000
	if err := s.Restore(other, &ck); err == nil {
		t.Error("Restore succeeded across a warmup-budget change")
	}
	if got := fingerprint(s); !reflect.DeepEqual(got, before) {
		t.Error("refused Restore mutated the machine")
	}

	// A foreign machine must refuse the checkpoint outright.
	foreign, err := New(cfg, benches, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := foreign.Restore(cfg, &ck); err == nil {
		t.Error("Restore accepted a checkpoint from a different machine")
	}

	// A measure-budget-only change is the designed use: accepted, and
	// the machine measures with the new budget.
	rebud := cfg
	rebud.MeasureInstructions = 4000
	if err := s.Restore(rebud, &ck); err != nil {
		t.Fatalf("Restore refused a measure-budget-only change: %v", err)
	}
	res, err := s.RunMeasure()
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := New(rebud, benches, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := scratch.Run(); !reflect.DeepEqual(res, want) {
		t.Errorf("restored measure diverges from scratch\n got: %+v\nwant: %+v", res, want)
	}
}

// TestPhaseSplitRefusals pins RunWarmup/RunMeasure/Snapshot guards:
// zero budgets and attached telemetry refuse loudly.
func TestPhaseSplitRefusals(t *testing.T) {
	cfg := config.Scaled(1, config.Baseline)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 0, 1000
	s, err := New(cfg, []string{"stream"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWarmup(); err == nil {
		t.Error("RunWarmup accepted a zero warmup budget")
	}

	cfg.WarmupInstructions, cfg.MeasureInstructions = 1000, 0
	s2, err := New(cfg, []string{"stream"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.RunMeasure(); err == nil {
		t.Error("RunMeasure accepted a zero measurement budget")
	}

	cfg.MeasureInstructions = 1000
	traced, err := New(cfg, []string{"stream"}, 8, WithTimeSeries(100))
	if err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	if err := traced.Snapshot(&ck); err == nil {
		t.Error("Snapshot accepted a telemetry-armed system")
	}
	// Phase splitting itself tolerates telemetry (the sampler arms
	// across the boundary; TestTelemetrySplitPhaseMatchesMonolithic
	// pins the series), but the machine still cannot be checkpointed.
	if err := traced.RunWarmup(); err != nil {
		t.Errorf("RunWarmup refused a telemetry-armed system: %v", err)
	}
	if err := traced.Snapshot(&ck); err == nil {
		t.Error("Snapshot accepted a telemetry-armed system at the boundary")
	}
	if _, err := traced.RunMeasure(); err != nil {
		t.Errorf("RunMeasure after telemetry-armed warmup: %v", err)
	}
}
