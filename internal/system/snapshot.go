package system

import (
	"fmt"

	"dbisim/internal/config"
	"dbisim/internal/cpu"
	"dbisim/internal/dram"
	"dbisim/internal/event"
	"dbisim/internal/llc"
	"dbisim/internal/randstate"
	"dbisim/internal/telemetry"
	"dbisim/internal/trace"
)

// Checkpoint is a deep copy of a warmed machine, taken at the
// warmup→measure boundary. It is bound to the System that produced it:
// the event queue it carries holds that machine's prebound callbacks,
// so restoring into any other System would fire closures against the
// wrong components. Restore enforces the binding.
//
// A checkpoint is allocation-bounded: component states reuse their
// buffers capture after capture (the PR 5 arena layout), so snapshotting
// in a loop settles into zero steady-state allocation.
type Checkpoint struct {
	owner   *System
	cfg     config.SystemConfig
	benches []string

	eng   event.EngineState
	cores []cpu.State
	gens  []trace.GenState
	llc   llc.State
	mem   dram.State
	snap  snapshot

	// attr is the ledger's value at capture time. The warmup baseline
	// (snap.attr) rides along in the snapshot struct copy; this field
	// additionally carries any charges landed between that baseline and
	// the engine halt, so a restored machine resumes with the exact
	// ledger the scratch run had.
	attr telemetry.AttrValues
}

// Owner returns the System the checkpoint was taken from (nil for a
// zero checkpoint).
func (ck *Checkpoint) Owner() *System { return ck.owner }

// WarmupSignature returns the part of a config that determines the
// machine state at the warmup→measure boundary: everything except the
// measurement budget. Two cells whose WarmupSignatures, benchmarks and
// seeds agree reach bit-identical warmed machines, so one checkpoint
// serves them all.
func WarmupSignature(cfg config.SystemConfig) config.SystemConfig {
	cfg.MeasureInstructions = 0
	return cfg
}

// WarmupKey renders the full warmup identity — config warmup signature,
// benchmark mix, seed — as a string, usable as a map key and as the
// sweep scheduler's grouping label.
func WarmupKey(cfg config.SystemConfig, benches []string, seed int64) string {
	return fmt.Sprintf("%+v|%v|%d", WarmupSignature(cfg), benches, seed)
}

// Forkable reports whether this build can checkpoint machines at all:
// it requires the runtime-probed rand.Source mirror (see
// internal/randstate) that lets generator and policy RNGs travel with
// the checkpoint.
func Forkable() bool { return randstate.Supported() }

// RunWarmup executes only the warmup phase and parks the machine at the
// warmup→measure boundary, leaving it in exactly the state a scratch
// Run would pass through at that instant: each core's measurement
// window markers are pinned at its own warmup completion (via a
// zero-budget Rebudget, which is behaviorally inert), the global stats
// baseline is captured when the last core finishes, and the engine is
// stopped with all in-flight events still queued. A subsequent
// RunMeasure — immediately or after Restore — continues the run
// bit-identically.
//
// Telemetry survives the split: an attached tracer keeps emitting, and
// an attached epoch sampler arms here and keeps ticking through
// RunMeasure, so a split run's time series equals a monolithic Run's
// (TestTelemetrySplitPhaseMatchesMonolithic). Such a machine still
// cannot be snapshotted, restored, or reset — those refusals stand —
// so the fork scheduler only ever forks telemetry-free machines.
func (s *System) RunWarmup() error {
	if s.Cfg.WarmupInstructions == 0 {
		return fmt.Errorf("system: RunWarmup requires a warmup budget")
	}
	s.armSampler()
	warming := len(s.Cores)
	for _, c := range s.Cores {
		c := c
		c.Start(s.Cfg.WarmupInstructions, func() {
			warming--
			if warming == 0 {
				s.snap = s.takeSnapshot()
			}
			// Pin this core's measurement markers now, at the same
			// instant the scratch Run's Rebudget(measure, ...) would.
			c.Rebudget(0, nil)
			if warming == 0 {
				s.Eng.Stop()
			}
		})
	}
	s.Eng.Run()
	return nil
}

// RunMeasure resumes a machine parked at the warmup→measure boundary
// (by RunWarmup or Restore) and executes the measurement phase,
// returning the same Results a scratch Run would have.
//
// It refuses — before touching anything — when a core already issued
// its whole measurement budget during the warmup overhang (cores that
// finish warmup early keep executing to preserve contention): a scratch
// run would have completed that core's window mid-warmup, which a
// forked run cannot reproduce. The caller falls back to a scratch run;
// refusal is loud, not wrong.
func (s *System) RunMeasure() (Results, error) {
	if s.Cfg.MeasureInstructions == 0 {
		return Results{}, fmt.Errorf("system: RunMeasure requires a measurement budget")
	}
	for i, c := range s.Cores {
		if c.MeasuredSince() >= s.Cfg.MeasureInstructions {
			return Results{}, fmt.Errorf(
				"system: core %d issued %d ≥ budget %d during warmup overhang; not forkable",
				i, c.MeasuredSince(), s.Cfg.MeasureInstructions)
		}
	}
	remaining := len(s.Cores)
	for _, c := range s.Cores {
		c.ResumeMeasure(s.Cfg.MeasureInstructions, func() {
			remaining--
			if remaining == 0 {
				s.Eng.Stop()
			}
		})
	}
	s.Eng.Run()
	s.finishSampler()
	return s.harvest(), nil
}

// Snapshot deep-copies the machine into ck. It is legal at any
// quiescent point (the engine must not be mid-Run); the fork scheduler
// always takes it at the warmup→measure boundary. Systems with
// telemetry attached refuse — tracers and samplers accumulate host-side
// state a restore cannot unwind — as do builds where the RNG mirror is
// unavailable or a generator cannot checkpoint itself. On error ck is
// unchanged except for its owner binding.
func (s *System) Snapshot(ck *Checkpoint) error {
	if s.tracer != nil || s.sampler != nil {
		return fmt.Errorf("system: cannot snapshot with telemetry attached")
	}
	if !randstate.Supported() {
		return fmt.Errorf("system: rand.Source mirror unavailable on this runtime")
	}
	snaps := make([]trace.Snapshotter, len(s.gens))
	for i, g := range s.gens {
		sn, ok := g.(trace.Snapshotter)
		if !ok {
			return fmt.Errorf("system: core %d generator is not snapshottable", i)
		}
		snaps[i] = sn
	}
	ck.owner = s
	ck.cfg = s.Cfg
	ck.benches = append(ck.benches[:0], s.benchNames...)
	s.Eng.Snapshot(&ck.eng)
	if len(ck.cores) != len(s.Cores) {
		ck.cores = make([]cpu.State, len(s.Cores))
		ck.gens = make([]trace.GenState, len(s.Cores))
	}
	for i, c := range s.Cores {
		c.Snapshot(&ck.cores[i])
		snaps[i].Snapshot(&ck.gens[i])
	}
	s.LLC.Snapshot(&ck.llc)
	s.Mem.Snapshot(&ck.mem)
	issued := ck.snap.coreIssued
	ck.snap = s.snap
	ck.snap.coreIssued = append(issued[:0], s.snap.coreIssued...)
	ck.attr = s.attr.Values()
	return nil
}

// Restore writes ck back into the machine that produced it, rebinding
// the run to cfg — which may differ from the captured config only in
// its measurement budget (the warmup signatures must match, or the
// checkpoint would describe a different warmed machine). All
// validation happens before any mutation, the same contract as Reset:
// on error the system is untouched.
func (s *System) Restore(cfg config.SystemConfig, ck *Checkpoint) error {
	if ck.owner != s {
		return fmt.Errorf("system: checkpoint belongs to a different machine")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if WarmupSignature(cfg) != WarmupSignature(ck.cfg) {
		return fmt.Errorf("system: restore requires matching warmup signatures")
	}
	if s.tracer != nil || s.sampler != nil {
		return fmt.Errorf("system: cannot restore with telemetry attached")
	}
	snaps := make([]trace.Snapshotter, len(s.gens))
	for i, g := range s.gens {
		sn, ok := g.(trace.Snapshotter)
		if !ok {
			return fmt.Errorf("system: core %d generator is not snapshottable", i)
		}
		snaps[i] = sn
	}
	s.Cfg = cfg
	s.Eng.Restore(&ck.eng)
	for i, c := range s.Cores {
		c.Restore(&ck.cores[i])
		snaps[i].Restore(&ck.gens[i])
	}
	s.LLC.Restore(&ck.llc)
	s.Mem.Restore(&ck.mem)
	s.benchNames = append(s.benchNames[:0], ck.benches...)
	issued := s.snap.coreIssued
	s.snap = ck.snap
	s.snap.coreIssued = append(issued[:0], ck.snap.coreIssued...)
	s.attr.SetValues(ck.attr)
	return nil
}
