package system

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"dbisim/internal/config"
)

// TestGoldenResults replays the committed golden grid —
// testdata/golden_results.json, captured from the seed checkout's
// container/heap scheduler before the timing-wheel rewrite — and
// asserts the current engine reproduces every cell's Results
// bit-identically. This is the heap-vs-wheel identity guarantee in
// executable form: any scheduler change that perturbs event order or
// timing fails here first.
func TestGoldenResults(t *testing.T) {
	type cell struct {
		Mech    string   `json:"mech"`
		Benches []string `json:"benches"`
		Seed    int64    `json:"seed"`
		Warmup  uint64   `json:"warmup"`
		Measure uint64   `json:"measure"`
		Results Results  `json:"results"`
	}
	raw, err := os.ReadFile("testdata/golden_results.json")
	if err != nil {
		t.Fatal(err)
	}
	var cells []cell
	if err := json.Unmarshal(raw, &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("golden file holds no cells")
	}
	mechByName := map[string]config.Mechanism{}
	for _, m := range config.AllMechanisms() {
		mechByName[m.String()] = m
	}
	for _, c := range cells {
		mech, ok := mechByName[c.Mech]
		if !ok {
			t.Fatalf("unknown mechanism %q in golden file", c.Mech)
		}
		cfg := config.Scaled(len(c.Benches), mech)
		cfg.WarmupInstructions = c.Warmup
		cfg.MeasureInstructions = c.Measure
		sys, err := New(cfg, c.Benches, c.Seed)
		if err != nil {
			t.Fatalf("%s/%v: %v", c.Mech, c.Benches, err)
		}
		got := sys.Run()
		if !reflect.DeepEqual(got, c.Results) {
			t.Errorf("%s/%v: Results diverge from the seed checkout\n got: %+v\nwant: %+v",
				c.Mech, c.Benches, got, c.Results)
		}
	}
}
