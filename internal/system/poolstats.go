package system

import (
	"sync/atomic"

	"dbisim/internal/telemetry"
)

// PoolCounters aggregates the pool/fork schedulers' decisions
// process-wide. Pools are per-worker and short-lived, so the usable
// ops-plane signal is the sum over all of them: every Pool and ForkPool
// increments these shared atomics as it runs cells. Increments are one
// atomic add per cell-level decision — never on a simulated hot path —
// so they are always on: zero allocation, no measurable cost, and no
// effect on simulated Results.
//
// The counters make the previously invisible policy machinery
// observable: whether cells are being forked from checkpoints, reset in
// place, or rebuilt from scratch; whether the machine/checkpoint LRUs
// are thrashing (the +64% bytes/cell casestudy regression of PR 6 was
// exactly an eviction storm these would have shown live); and why the
// fork scheduler refuses cells when it does.
type PoolCounters struct {
	// Resets counts cells run by resetting a pooled machine in place
	// (the plain Pool fast path, and the ForkPool's warm-from-reset).
	Resets atomic.Uint64
	// Rebuilds counts cells that constructed a fresh System — first use
	// of a worker's pool, geometry mismatch, or reset refusal.
	Rebuilds atomic.Uint64
	// ResetRefusals counts reset attempts that failed and fell back to
	// a rebuild.
	ResetRefusals atomic.Uint64

	// CkptHits counts cells measured from a restored warmup checkpoint
	// (the fork fast path: no warmup simulated at all).
	CkptHits atomic.Uint64
	// CkptMisses counts fork-eligible cells that found no usable
	// checkpoint and had to warm a machine themselves.
	CkptMisses atomic.Uint64
	// CkptTaken counts warmup checkpoints successfully captured.
	CkptTaken atomic.Uint64
	// MachineEvictions counts ForkPool machine-LRU evictions; a high
	// rate relative to CkptHits means the machine cap is thrashing.
	MachineEvictions atomic.Uint64
	// CkptEvictions counts per-machine checkpoint-LRU evictions.
	CkptEvictions atomic.Uint64

	// Adopts / Releases count warmed machine sets moving across sweeps
	// through the process-wide stack; AdoptStackDepth tracks its
	// current occupancy (a gauge).
	Adopts          atomic.Uint64
	Releases        atomic.Uint64
	AdoptStackDepth atomic.Int64

	// Refusal reasons, by kind. Each counts cells the fork scheduler
	// could not serve from a checkpoint and why:
	//
	//   - Disabled: forking was off for the cell (DBISIM_NO_FORK, an
	//     unforkable runtime, or a zero warmup/measure budget).
	//   - Restore: a retained checkpoint failed to restore or measure
	//     and was dropped.
	//   - Snapshot: the warmup boundary could not be captured.
	//   - Warmup: RunWarmup refused the phase split; the cell ran whole.
	//   - Overhang: a core issued its full measurement budget during the
	//     warmup overhang, so only a scratch run reproduces the cell.
	RefusedDisabled atomic.Uint64
	RefusedRestore  atomic.Uint64
	RefusedSnapshot atomic.Uint64
	RefusedWarmup   atomic.Uint64
	RefusedOverhang atomic.Uint64
}

// PoolStat is the process-wide instance every pool increments.
var PoolStat PoolCounters

// PoolSnapshot is a plain-value copy of PoolCounters, for before/after
// deltas (the dbibench per-sweep summary line) and for JSON serving
// (the ops plane's /sweep document).
type PoolSnapshot struct {
	Resets           uint64 `json:"resets"`
	Rebuilds         uint64 `json:"rebuilds"`
	ResetRefusals    uint64 `json:"reset_refusals"`
	CkptHits         uint64 `json:"ckpt_hits"`
	CkptMisses       uint64 `json:"ckpt_misses"`
	CkptTaken        uint64 `json:"ckpts_taken"`
	MachineEvictions uint64 `json:"machine_evictions"`
	CkptEvictions    uint64 `json:"ckpt_evictions"`
	Adopts           uint64 `json:"adopts"`
	Releases         uint64 `json:"releases"`
	RefusedDisabled  uint64 `json:"refused_disabled"`
	RefusedRestore   uint64 `json:"refused_restore"`
	RefusedSnapshot  uint64 `json:"refused_snapshot"`
	RefusedWarmup    uint64 `json:"refused_warmup"`
	RefusedOverhang  uint64 `json:"refused_overhang"`
}

// Snapshot reads every counter once. Reads are individually atomic but
// not mutually consistent, which is fine for monitoring deltas.
func (c *PoolCounters) Snapshot() PoolSnapshot {
	return PoolSnapshot{
		Resets:           c.Resets.Load(),
		Rebuilds:         c.Rebuilds.Load(),
		ResetRefusals:    c.ResetRefusals.Load(),
		CkptHits:         c.CkptHits.Load(),
		CkptMisses:       c.CkptMisses.Load(),
		CkptTaken:        c.CkptTaken.Load(),
		MachineEvictions: c.MachineEvictions.Load(),
		CkptEvictions:    c.CkptEvictions.Load(),
		Adopts:           c.Adopts.Load(),
		Releases:         c.Releases.Load(),
		RefusedDisabled:  c.RefusedDisabled.Load(),
		RefusedRestore:   c.RefusedRestore.Load(),
		RefusedSnapshot:  c.RefusedSnapshot.Load(),
		RefusedWarmup:    c.RefusedWarmup.Load(),
		RefusedOverhang:  c.RefusedOverhang.Load(),
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s PoolSnapshot) Sub(prev PoolSnapshot) PoolSnapshot {
	return PoolSnapshot{
		Resets:           s.Resets - prev.Resets,
		Rebuilds:         s.Rebuilds - prev.Rebuilds,
		ResetRefusals:    s.ResetRefusals - prev.ResetRefusals,
		CkptHits:         s.CkptHits - prev.CkptHits,
		CkptMisses:       s.CkptMisses - prev.CkptMisses,
		CkptTaken:        s.CkptTaken - prev.CkptTaken,
		MachineEvictions: s.MachineEvictions - prev.MachineEvictions,
		CkptEvictions:    s.CkptEvictions - prev.CkptEvictions,
		Adopts:           s.Adopts - prev.Adopts,
		Releases:         s.Releases - prev.Releases,
		RefusedDisabled:  s.RefusedDisabled - prev.RefusedDisabled,
		RefusedRestore:   s.RefusedRestore - prev.RefusedRestore,
		RefusedSnapshot:  s.RefusedSnapshot - prev.RefusedSnapshot,
		RefusedWarmup:    s.RefusedWarmup - prev.RefusedWarmup,
		RefusedOverhang:  s.RefusedOverhang - prev.RefusedOverhang,
	}
}

// CkptHitRate returns hits/(hits+misses) over the fork-eligible cells
// in the snapshot, or 0 when none ran.
func (s PoolSnapshot) CkptHitRate() float64 {
	if s.CkptHits+s.CkptMisses == 0 {
		return 0
	}
	return float64(s.CkptHits) / float64(s.CkptHits+s.CkptMisses)
}

// RegisterPoolMetrics adds the pool/fork counters to a telemetry
// registry under the pool.* / fork.* names documented in DESIGN.md §10.
// All probes read atomics, so the registry is safe to serve live.
func RegisterPoolMetrics(reg *telemetry.Registry) {
	c := &PoolStat
	reg.Counter("pool.resets", c.Resets.Load)
	reg.Counter("pool.rebuilds", c.Rebuilds.Load)
	reg.Counter("pool.reset_refusals", c.ResetRefusals.Load)
	reg.Counter("fork.ckpt_hits", c.CkptHits.Load)
	reg.Counter("fork.ckpt_misses", c.CkptMisses.Load)
	reg.Counter("fork.ckpts_taken", c.CkptTaken.Load)
	reg.Counter("fork.machine_evictions", c.MachineEvictions.Load)
	reg.Counter("fork.ckpt_evictions", c.CkptEvictions.Load)
	reg.Counter("fork.adopts", c.Adopts.Load)
	reg.Counter("fork.releases", c.Releases.Load)
	reg.Gauge("fork.adopt_stack_depth", func() float64 {
		return float64(c.AdoptStackDepth.Load())
	})
	reg.Counter("fork.refused_disabled", c.RefusedDisabled.Load)
	reg.Counter("fork.refused_restore", c.RefusedRestore.Load)
	reg.Counter("fork.refused_snapshot", c.RefusedSnapshot.Load)
	reg.Counter("fork.refused_warmup", c.RefusedWarmup.Load)
	reg.Counter("fork.refused_overhang", c.RefusedOverhang.Load)
}

// poolHookFn receives one pool/fork scheduler decision: which worker's
// pool made it (-1 when unknown), a short kind tag ("fork", "warm",
// "reset", "rebuild", "refuse:restore", ...) and a human detail string.
type poolHookFn func(worker int, kind, detail string)

var poolHook atomic.Pointer[poolHookFn]

// SetPoolEventHook installs (or, with nil, removes) the process-wide
// observer for pool/fork decisions — the ops plane's flight recorder.
// When no hook is installed the emit path is one atomic pointer load,
// so the disabled cost is nil-check cheap and allocation-free.
func SetPoolEventHook(fn func(worker int, kind, detail string)) {
	if fn == nil {
		poolHook.Store(nil)
		return
	}
	h := poolHookFn(fn)
	poolHook.Store(&h)
}

// poolEvent emits one decision to the installed hook, if any.
func poolEvent(worker int, kind, detail string) {
	if h := poolHook.Load(); h != nil {
		(*h)(worker, kind, detail)
	}
}
