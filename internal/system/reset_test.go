package system

import (
	"encoding/json"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/sweep"
)

// goldenCells loads the committed golden grid (shared with
// TestGoldenResults).
type goldenCell struct {
	Mech    string   `json:"mech"`
	Benches []string `json:"benches"`
	Seed    int64    `json:"seed"`
	Warmup  uint64   `json:"warmup"`
	Measure uint64   `json:"measure"`
	Results Results  `json:"results"`
}

func loadGoldenCells(t *testing.T) []goldenCell {
	t.Helper()
	raw, err := os.ReadFile("testdata/golden_results.json")
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	if err := json.Unmarshal(raw, &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("golden file holds no cells")
	}
	return cells
}

func goldenConfig(t *testing.T, c goldenCell) config.SystemConfig {
	t.Helper()
	mechByName := map[string]config.Mechanism{}
	for _, m := range config.AllMechanisms() {
		mechByName[m.String()] = m
	}
	mech, ok := mechByName[c.Mech]
	if !ok {
		t.Fatalf("unknown mechanism %q in golden file", c.Mech)
	}
	cfg := config.Scaled(len(c.Benches), mech)
	cfg.WarmupInstructions = c.Warmup
	cfg.MeasureInstructions = c.Measure
	return cfg
}

// TestPooledGoldenReplay replays the whole golden grid through a single
// Pool — so most cells execute on a machine dirtied by a previous cell
// (reset path), and every mechanism/core-count transition exercises the
// rebuild path — and asserts each cell's Results remain bit-identical to
// the pinned seed-checkout values. This is the tentpole guarantee:
// reset-then-run ≡ fresh-construction-then-run.
func TestPooledGoldenReplay(t *testing.T) {
	t.Setenv(NoPoolEnv, "")
	cells := loadGoldenCells(t)
	var pool Pool
	for _, c := range cells {
		cfg := goldenConfig(t, c)
		got, err := pool.Run(cfg, c.Benches, c.Seed)
		if err != nil {
			t.Fatalf("%s/%v: %v", c.Mech, c.Benches, err)
		}
		if !reflect.DeepEqual(got, c.Results) {
			t.Errorf("%s/%v: pooled Results diverge from golden\n got: %+v\nwant: %+v",
				c.Mech, c.Benches, got, c.Results)
		}
	}
}

// TestResetMatchesFreshRandomized interleaves cells in a shuffled order
// through one Pool and checks every cell against a fresh System built
// from scratch, with varied seeds and budgets layered on top of the
// golden grid's geometries. Unlike the golden replay this also covers
// (cfg, seed) points the pinned file never saw.
func TestResetMatchesFreshRandomized(t *testing.T) {
	t.Setenv(NoPoolEnv, "")
	cells := loadGoldenCells(t)
	rng := rand.New(rand.NewSource(7))
	// Sample a manageable subset: full golden replay is covered above.
	type point struct {
		cfg     config.SystemConfig
		benches []string
		seed    int64
	}
	var pts []point
	for i := 0; i < 24; i++ {
		c := cells[rng.Intn(len(cells))]
		cfg := goldenConfig(t, c)
		// Perturb what Reset must honor: seed and budgets (budget
		// changes keep the signature; Reset must still apply them).
		seed := c.Seed + int64(rng.Intn(5))
		if rng.Intn(2) == 0 {
			cfg.WarmupInstructions += uint64(rng.Intn(3)) * 1000
		}
		pts = append(pts, point{cfg, c.Benches, seed})
	}
	var pool Pool
	for i, p := range pts {
		pooled, err := pool.Run(p.cfg, p.benches, p.seed)
		if err != nil {
			t.Fatalf("point %d: pooled: %v", i, err)
		}
		fresh, err := New(p.cfg, p.benches, p.seed)
		if err != nil {
			t.Fatalf("point %d: fresh: %v", i, err)
		}
		if got := fresh.Run(); !reflect.DeepEqual(pooled, got) {
			t.Errorf("point %d (%s/%v seed %d): pooled vs fresh diverge\npooled: %+v\n fresh: %+v",
				i, p.cfg.Mechanism, p.benches, p.seed, pooled, got)
		}
	}
}

// TestPoolGeometryMismatchRebuilds drives a Pool across a geometry
// change (core count, then mechanism) and verifies it silently falls
// back to fresh construction with correct results, then resumes
// resetting once geometries match again.
func TestPoolGeometryMismatchRebuilds(t *testing.T) {
	t.Setenv(NoPoolEnv, "")
	var pool Pool
	run := func(cores int, mech config.Mechanism, seed int64) Results {
		t.Helper()
		cfg := config.Scaled(cores, mech)
		cfg.WarmupInstructions, cfg.MeasureInstructions = 2000, 4000
		benches := make([]string, cores)
		for i := range benches {
			benches[i] = "stream"
		}
		got, err := pool.Run(cfg, benches, seed)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(cfg, benches, seed)
		if err != nil {
			t.Fatal(err)
		}
		if want := fresh.Run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d cores %v seed %d: pooled vs fresh diverge", cores, mech, seed)
		}
		return got
	}
	run(1, config.Baseline, 1)  // build
	run(1, config.Baseline, 2)  // reset (same signature)
	run(2, config.Baseline, 3)  // rebuild: core count changed
	run(2, config.DBIAWBCLB, 4) // rebuild: mechanism changed
	run(2, config.DBIAWBCLB, 5) // reset again
}

// TestResetRefusals pins the error paths: telemetry-armed systems and
// geometry mismatches refuse to reset, leaving the system usable.
func TestResetRefusals(t *testing.T) {
	cfg := config.Scaled(1, config.Baseline)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 1000, 1000
	benches := []string{"stream"}

	sys, err := New(cfg, benches, 1, WithTimeSeries(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Reset(cfg, benches, 2); err == nil {
		t.Error("Reset succeeded on a system with a sampler attached")
	}

	plain, err := New(cfg, benches, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Mechanism = config.DBIAWBCLB
	if err := plain.Reset(other, benches, 2); err == nil {
		t.Error("Reset succeeded across a mechanism change")
	}
	if err := plain.Reset(cfg, []string{"stream", "mcf"}, 2); err == nil {
		t.Error("Reset succeeded with a bench/core mismatch")
	}
	// Still usable after refusals.
	if err := plain.Reset(cfg, []string{"mcf"}, 2); err != nil {
		t.Fatalf("legitimate Reset failed after refusals: %v", err)
	}
	plain.Run()
}

// TestPooledParallelSweep runs a mixed-mechanism cell grid through
// sweep.RunState with per-worker Pools, sequentially and on four
// workers, and requires bit-identical outcome sets. Under -race this is
// also the proof that pooled workers share no mutable state.
func TestPooledParallelSweep(t *testing.T) {
	t.Setenv(NoPoolEnv, "")
	mechs := []config.Mechanism{config.Baseline, config.DAWB, config.DBIAWBCLB}
	benches := []string{"stream", "mcf", "lbm", "milc"}
	var cells []sweep.StateCell[Results, Pool]
	for _, m := range mechs {
		for i, b := range benches {
			cfg := config.Scaled(1, m)
			cfg.WarmupInstructions, cfg.MeasureInstructions = 2000, 4000
			bench, seed := b, int64(100+i)
			cells = append(cells, sweep.StateCell[Results, Pool]{
				Key: sweep.Key{Experiment: "t", Benchmark: b, Mechanism: m.String()},
				Run: func(p *Pool) (Results, error) { return p.Run(cfg, []string{bench}, seed) },
			})
		}
	}
	seq, err := sweep.RunState(cells, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.RunState(cells, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Value, par[i].Value) {
			t.Errorf("cell %s: sequential vs 4-worker pooled results diverge", seq[i].Key)
		}
	}
}

// TestNoPoolEnvDisablesReuse verifies the DBISIM_NO_POOL escape hatch:
// with it set, the pool builds fresh machines (and still returns
// correct results).
func TestNoPoolEnvDisablesReuse(t *testing.T) {
	t.Setenv(NoPoolEnv, "1")
	cfg := config.Scaled(1, config.Baseline)
	cfg.WarmupInstructions, cfg.MeasureInstructions = 1000, 2000
	var pool Pool
	first, err := pool.Run(cfg, []string{"stream"}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pool.sys != nil {
		t.Error("pool retained a System with DBISIM_NO_POOL set")
	}
	second, err := pool.Run(cfg, []string{"stream"}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("same-seed runs diverge under DBISIM_NO_POOL")
	}
}
