package system

import (
	"os"
	"sync"

	"dbisim/internal/config"
)

// NoForkEnv, when set to any non-empty value, disables checkpoint
// forking: ForkPool degrades to the plain reset Pool (which itself
// honors DBISIM_NO_POOL). It is the escape hatch for bisecting a
// suspected checkpoint bug and the lever CI uses to smoke both paths.
const NoForkEnv = "DBISIM_NO_FORK"

const (
	// forkMachineCap bounds how many distinct-geometry machines one
	// ForkPool keeps alive. It must cover the signature working set of
	// the recorded macro sweeps (casestudy cycles 6, fig6 cycles 8, the
	// clbsens thresholds 3) or the LRU thrashes: every round then
	// repays full construction plus a checkpoint that is evicted before
	// it can ever be forked.
	forkMachineCap = 12
	// forkCkptCap bounds the checkpoints retained per machine (one per
	// warmup identity).
	forkCkptCap = 8
	// sharedPoolCap bounds the process-wide free stack that carries
	// warmed machines from one sweep's workers to the next.
	sharedPoolCap = 16
)

// forkCkpt is one retained warmup checkpoint with its identity key.
type forkCkpt struct {
	key   string
	ck    Checkpoint
	stamp uint64
}

// forkMachine is one pooled System plus the checkpoints taken on it.
type forkMachine struct {
	sys   *System
	sig   config.SystemConfig
	ckpts []*forkCkpt
	stamp uint64
}

func (m *forkMachine) ckpt(key string) *forkCkpt {
	for _, c := range m.ckpts {
		if c.key == key {
			return c
		}
	}
	return nil
}

func (m *forkMachine) drop(key string) {
	for i, c := range m.ckpts {
		if c.key == key {
			m.ckpts = append(m.ckpts[:i], m.ckpts[i+1:]...)
			return
		}
	}
}

// take returns the checkpoint slot for key, creating it (evicting the
// least-recently-used one at capacity) if absent.
func (m *forkMachine) take(key string, clock uint64) *forkCkpt {
	if c := m.ckpt(key); c != nil {
		c.stamp = clock
		return c
	}
	if len(m.ckpts) >= forkCkptCap {
		lru := 0
		for i := range m.ckpts {
			if m.ckpts[i].stamp < m.ckpts[lru].stamp {
				lru = i
			}
		}
		c := m.ckpts[lru]
		m.ckpts = append(m.ckpts[:lru], m.ckpts[lru+1:]...)
		c.key, c.stamp = key, clock
		m.ckpts = append(m.ckpts, c)
		PoolStat.CkptEvictions.Add(1)
		return c
	}
	c := &forkCkpt{key: key, stamp: clock}
	m.ckpts = append(m.ckpts, c)
	return c
}

// ForkPool runs sweep cells with checkpoint forking: the first cell of
// a warmup group warms a machine, snapshots it at the warmup→measure
// boundary, and measures; every later cell with the same warmup
// identity restores the snapshot and measures only — turning
// O(N·(warmup+measure)) sweeps into O(warmup + N·measure). Results are
// bit-identical to New(cfg, benches, seed).Run() regardless of history;
// whenever a checkpoint cannot be taken, restored, or measured from,
// the pool falls back to the plain reset path.
//
// A ForkPool is NOT safe for concurrent use: each sweep worker owns its
// own. The zero value is ready. Call Release when the worker is done to
// push the warmed machines onto a process-wide stack for the next
// sweep's workers to adopt — that is what amortizes warmup across
// repeated sweeps (a dbistat round, a clbsens-style multi-config
// macro).
//
// Every decision the pool makes increments the process-wide PoolStat
// counters and (when the ops plane installed a hook) emits a flight-
// recorder event, so fork/reset/rebuild mix, LRU evictions and refusal
// reasons are visible live.
type ForkPool struct {
	machines []*forkMachine
	clock    uint64
	plain    Pool
	adopted  bool
}

// SetWorker labels the pool (and its plain fallback) with the owning
// sweep worker's index for ops-plane event attribution.
func (p *ForkPool) SetWorker(w int) { p.plain.SetWorker(w) }

func (p *ForkPool) workerID() int { return p.plain.workerID() }

// sharedPools carries released machine sets across ForkPool lifetimes.
var (
	sharedPoolsMu sync.Mutex
	sharedPools   [][]*forkMachine
)

func (p *ForkPool) adopt() {
	if p.adopted {
		return
	}
	p.adopted = true
	sharedPoolsMu.Lock()
	if n := len(sharedPools); n > 0 {
		p.machines = sharedPools[n-1]
		sharedPools[n-1] = nil
		sharedPools = sharedPools[:n-1]
		PoolStat.Adopts.Add(1)
		PoolStat.AdoptStackDepth.Add(-1)
	}
	sharedPoolsMu.Unlock()
	if len(p.machines) > 0 {
		poolEvent(p.workerID(), "adopt", "")
	}
}

// Release hands the pool's machines to the process-wide stack (dropped
// if the stack is full) and empties the pool. The sweep scheduler calls
// it when a worker retires.
func (p *ForkPool) Release() {
	if len(p.machines) == 0 {
		return
	}
	m := p.machines
	p.machines = nil
	p.adopted = false
	sharedPoolsMu.Lock()
	if len(sharedPools) < sharedPoolCap {
		sharedPools = append(sharedPools, m)
		PoolStat.Releases.Add(1)
		PoolStat.AdoptStackDepth.Add(1)
	}
	sharedPoolsMu.Unlock()
	poolEvent(p.workerID(), "release", "")
}

func (p *ForkPool) machine(sig config.SystemConfig) *forkMachine {
	for _, m := range p.machines {
		if m.sig == sig {
			p.clock++
			m.stamp = p.clock
			return m
		}
	}
	return nil
}

// insert adds a machine, evicting the least-recently-used at capacity.
func (p *ForkPool) insert(sys *System, sig config.SystemConfig) *forkMachine {
	p.clock++
	m := &forkMachine{sys: sys, sig: sig, stamp: p.clock}
	if len(p.machines) >= forkMachineCap {
		lru := 0
		for i, mm := range p.machines {
			if mm.stamp < p.machines[lru].stamp {
				lru = i
			}
		}
		p.machines = append(p.machines[:lru], p.machines[lru+1:]...)
		PoolStat.MachineEvictions.Add(1)
		poolEvent(p.workerID(), "evict:machine", "")
	}
	p.machines = append(p.machines, m)
	return m
}

// Run executes one cell, forking from a warmup checkpoint when one is
// available and taking one when it is not.
func (p *ForkPool) Run(cfg config.SystemConfig, benches []string, seed int64) (Results, error) {
	if os.Getenv(NoForkEnv) != "" || !Forkable() ||
		cfg.WarmupInstructions == 0 || cfg.MeasureInstructions == 0 {
		PoolStat.RefusedDisabled.Add(1)
		return p.plain.Run(cfg, benches, seed)
	}
	if os.Getenv(NoPoolEnv) != "" {
		PoolStat.RefusedDisabled.Add(1)
		return p.plain.Run(cfg, benches, seed)
	}
	p.adopt()

	sig := Signature(cfg)
	key := WarmupKey(cfg, benches, seed)
	m := p.machine(sig)

	// Fast path: restore the group's checkpoint and measure.
	if m != nil {
		if c := m.ckpt(key); c != nil {
			p.clock++
			c.stamp = p.clock
			if err := m.sys.Restore(cfg, &c.ck); err == nil {
				if res, err := m.sys.RunMeasure(); err == nil {
					PoolStat.CkptHits.Add(1)
					poolEvent(p.workerID(), "fork", "")
					return res, nil
				}
			}
			// Unusable checkpoint (or unforkable budget): drop it and
			// warm from scratch below.
			m.drop(key)
			PoolStat.RefusedRestore.Add(1)
			poolEvent(p.workerID(), "refuse:restore", "checkpoint dropped")
		}
	}
	PoolStat.CkptMisses.Add(1)

	// Slow path: get a machine at this cell's run state, warm it,
	// checkpoint the boundary, then measure.
	if m == nil {
		sys, err := New(cfg, benches, seed)
		if err != nil {
			return Results{}, err
		}
		m = p.insert(sys, sig)
		PoolStat.Rebuilds.Add(1)
		poolEvent(p.workerID(), "rebuild", "new fork machine")
	} else {
		if err := m.sys.Reset(cfg, benches, seed); err != nil {
			return Results{}, err
		}
		PoolStat.Resets.Add(1)
		poolEvent(p.workerID(), "reset", "warming for checkpoint")
	}
	if err := m.sys.RunWarmup(); err != nil {
		// Phase-split refused (zero warmup is excluded above, so this
		// is unreachable in practice). The machine is untouched; run it
		// whole.
		PoolStat.RefusedWarmup.Add(1)
		poolEvent(p.workerID(), "refuse:warmup", err.Error())
		return m.sys.Run(), nil
	}
	p.clock++
	c := m.take(key, p.clock)
	if err := m.sys.Snapshot(&c.ck); err != nil {
		m.drop(key)
		PoolStat.RefusedSnapshot.Add(1)
		poolEvent(p.workerID(), "refuse:snapshot", err.Error())
	} else {
		PoolStat.CkptTaken.Add(1)
		poolEvent(p.workerID(), "warm", "checkpoint taken")
	}
	res, err := m.sys.RunMeasure()
	if err != nil {
		// A core overran its measurement budget during the warmup
		// overhang; only a scratch run reproduces that cell.
		PoolStat.RefusedOverhang.Add(1)
		poolEvent(p.workerID(), "refuse:overhang", err.Error())
		if rerr := m.sys.Reset(cfg, benches, seed); rerr != nil {
			return Results{}, rerr
		}
		PoolStat.Resets.Add(1)
		return m.sys.Run(), nil
	}
	return res, err
}
