package system

import (
	"os"

	"dbisim/internal/config"
)

// NoPoolEnv, when set to any non-empty value, disables System reuse:
// every Pool.Run builds a fresh System. It is the escape hatch for
// bisecting a suspected reset bug and the lever CI uses to smoke both
// paths.
const NoPoolEnv = "DBISIM_NO_POOL"

// Pool keeps one reusable System for a single sweep worker. When the
// next cell's config has the same geometry signature as the pooled
// machine, the machine is Reset in place — O(touched state), no
// allocation; on a signature mismatch (or any reset refusal) the pool
// falls back to building a fresh System and keeps that one instead.
//
// A Pool is NOT safe for concurrent use: each worker goroutine owns its
// own Pool, mirroring how each worker previously built its own Systems.
// The zero value is ready to use.
type Pool struct {
	sys *System
	sig config.SystemConfig

	// worker is the owning sweep worker's index (-1 when unassigned),
	// carried into the ops-plane pool events.
	worker    int
	workerSet bool
}

// SetWorker labels the pool with its owning sweep worker's index, so
// ops-plane events attribute decisions to worker lanes. The sweep
// scheduler calls it once per worker state; it has no effect on
// simulation.
func (p *Pool) SetWorker(w int) { p.worker, p.workerSet = w, true }

func (p *Pool) workerID() int {
	if !p.workerSet {
		return -1
	}
	return p.worker
}

// Run executes one cell — warmup plus measurement — on the pooled
// machine, building or rebuilding it as needed. Results are
// bit-identical to New(cfg, benches, seed).Run() regardless of what the
// pool ran before.
func (p *Pool) Run(cfg config.SystemConfig, benches []string, seed int64) (Results, error) {
	if os.Getenv(NoPoolEnv) != "" {
		sys, err := New(cfg, benches, seed)
		if err != nil {
			return Results{}, err
		}
		PoolStat.Rebuilds.Add(1)
		poolEvent(p.workerID(), "rebuild", "pooling disabled ("+NoPoolEnv+")")
		return sys.Run(), nil
	}
	if p.sys != nil && p.sig == Signature(cfg) {
		if err := p.sys.Reset(cfg, benches, seed); err == nil {
			PoolStat.Resets.Add(1)
			poolEvent(p.workerID(), "reset", "")
			return p.sys.Run(), nil
		}
		PoolStat.ResetRefusals.Add(1)
		poolEvent(p.workerID(), "refuse:reset", "reset refused; rebuilding")
	}
	sys, err := New(cfg, benches, seed)
	if err != nil {
		return Results{}, err
	}
	p.sys, p.sig = sys, Signature(cfg)
	PoolStat.Rebuilds.Add(1)
	poolEvent(p.workerID(), "rebuild", "")
	return sys.Run(), nil
}
