package randstate

import (
	"math/rand"
	"testing"
)

func TestSupportedOnThisRuntime(t *testing.T) {
	// The simulator's checkpoint-fork path depends on this; if a Go
	// release changes math/rand internals the probe must fail closed,
	// but on the toolchains CI runs it should pass.
	if !Supported() {
		t.Fatalf("randstate: math/rand layout probe failed on this runtime")
	}
}

func TestRoundTripMidStream(t *testing.T) {
	src := rand.NewSource(42)
	rng := rand.New(src)
	for i := 0; i < 1000; i++ {
		rng.Float64()
	}
	var st State
	if !Save(src, &st) {
		t.Fatal("Save refused a rand.NewSource source")
	}
	want := make([]float64, 100)
	for i := range want {
		want[i] = rng.Float64()
	}
	// Restore into a different, differently-seeded source and check the
	// continuation matches. A fresh Rand wrapper is fine: the wrapper
	// itself is stateless for Float64/Int63n/ExpFloat64 draws.
	src2 := rand.NewSource(7)
	rng2 := rand.New(src2)
	rng2.Float64()
	if !Restore(src2, &st) {
		t.Fatal("Restore refused a rand.NewSource source")
	}
	for i := range want {
		if got := rng2.Float64(); got != want[i] {
			t.Fatalf("draw %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestRefusesForeignSource(t *testing.T) {
	var st State
	if Save(foreignSource{}, &st) {
		t.Fatal("Save accepted a non-runtime source")
	}
	if Restore(foreignSource{}, &st) {
		t.Fatal("Restore accepted a non-runtime source")
	}
}

type foreignSource struct{}

func (foreignSource) Int63() int64    { return 0 }
func (foreignSource) Seed(seed int64) {}
