// Package randstate captures and restores the internal state of a
// math/rand generator, the one piece of simulator state the standard
// library hides. Checkpoint-fork sweeps (system.Snapshot/Restore) need
// it: the trace generators and adaptive replacement policies draw from
// their rand.Source mid-stream, so a restored machine must resume the
// very same random sequence or fork-then-measure would diverge from
// run-from-scratch.
//
// The package mirrors the layout of math/rand's unexported rngSource
// (an additive Lagged Fibonacci generator: two taps into a 607-word
// vector) and copies the words out through unsafe. That layout has been
// stable since Go 1.0, but it is still an implementation detail, so
// nothing is assumed: an init-time probe verifies the concrete type's
// size, field names, offsets and types via reflection and then proves a
// save/restore round trip reproduces the stream. If any check fails,
// Supported reports false and callers (system.Snapshot) degrade to
// running cells from scratch — slower, never wrong.
package randstate

import (
	"math/rand"
	"reflect"
	"unsafe"
)

// mirror replicates math/rand.rngSource field for field. The init-time
// probe guarantees the replica matches before any unsafe cast happens.
type mirror struct {
	tap  int
	feed int
	vec  [607]int64
}

// State is a captured generator state. The zero value is not a valid
// state to restore; fill it with Save first.
type State struct {
	m mirror
}

var (
	supported bool
	rngType   reflect.Type // concrete *rngSource type, captured at init
)

func init() {
	t := reflect.TypeOf(rand.NewSource(1))
	if t.Kind() != reflect.Pointer {
		return
	}
	e := t.Elem()
	if e.Kind() != reflect.Struct || e.NumField() != 3 || e.Size() != unsafe.Sizeof(mirror{}) {
		return
	}
	f0, f1, f2 := e.Field(0), e.Field(1), e.Field(2)
	if f0.Name != "tap" || f0.Type.Kind() != reflect.Int || f0.Offset != unsafe.Offsetof(mirror{}.tap) {
		return
	}
	if f1.Name != "feed" || f1.Type.Kind() != reflect.Int || f1.Offset != unsafe.Offsetof(mirror{}.feed) {
		return
	}
	if f2.Name != "vec" || f2.Type != reflect.TypeOf([607]int64{}) || f2.Offset != unsafe.Offsetof(mirror{}.vec) {
		return
	}
	rngType = t
	supported = roundTrip()
	if !supported {
		rngType = nil
	}
}

// roundTrip proves Save/Restore reproduce the stream on this runtime:
// capture a warmed source, restore it into a differently-seeded one,
// and check the two emit identical values.
func roundTrip() bool {
	a, aok := rand.NewSource(12345).(rand.Source64)
	b, bok := rand.NewSource(99999).(rand.Source64)
	if !aok || !bok {
		return false
	}
	for i := 0; i < 13; i++ {
		a.Uint64()
	}
	var st State
	if !save(a, &st) || !restore(b, &st) {
		return false
	}
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			return false
		}
	}
	return true
}

// Supported reports whether this runtime's math/rand layout matched the
// probe. When false, Save and Restore refuse and checkpointing callers
// must fall back to scratch runs.
func Supported() bool { return supported }

// mirrorOf returns the source's state words, or nil when the source is
// not the probed concrete type.
func mirrorOf(src rand.Source) *mirror {
	v := reflect.ValueOf(src)
	if rngType == nil || v.Type() != rngType {
		return nil
	}
	return (*mirror)(v.UnsafePointer())
}

func save(src rand.Source, st *State) bool {
	m := mirrorOf(src)
	if m == nil {
		return false
	}
	st.m = *m
	return true
}

func restore(src rand.Source, st *State) bool {
	m := mirrorOf(src)
	if m == nil {
		return false
	}
	*m = st.m
	return true
}

// Save captures src's state into st. It reports false — leaving st
// unspecified — when the runtime layout is unsupported or src is not a
// rand.NewSource source.
func Save(src rand.Source, st *State) bool { return save(src, st) }

// MustSave is Save for callers that have already gated on Supported and
// hold a source known to come from rand.NewSource — the simulator's
// components after system.Snapshot's entry check. Failure there is a
// wiring bug, so it panics rather than silently corrupting a
// checkpoint.
func MustSave(src rand.Source, st *State) {
	if !save(src, st) {
		panic("randstate: MustSave on unsupported source")
	}
}

// MustRestore is Restore with MustSave's contract.
func MustRestore(src rand.Source, st *State) {
	if !restore(src, st) {
		panic("randstate: MustRestore on unsupported source")
	}
}

// Restore overwrites src's state with st, so src continues the exact
// stream the saved source would have produced. It reports false (and
// leaves src untouched) under the same conditions Save does.
func Restore(src rand.Source, st *State) bool { return restore(src, st) }
