package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if !almost(Ratio(1, 4), 0.25) {
		t.Fatal("Ratio(1,4) != 0.25")
	}
	if Ratio(5, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
}

func TestPerKilo(t *testing.T) {
	if !almost(PerKilo(5, 1000), 5) {
		t.Fatal("PerKilo(5,1000) != 5")
	}
	if PerKilo(5, 0) != 0 {
		t.Fatal("PerKilo with zero units must be 0")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.315); got != "31.5%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestMeans(t *testing.T) {
	vals := []float64{1, 2, 4}
	if !almost(Mean(vals), 7.0/3) {
		t.Fatal("Mean wrong")
	}
	if !almost(GeoMean(vals), 2) {
		t.Fatalf("GeoMean = %v, want 2", GeoMean(vals))
	}
	if !almost(HarmonicMean([]float64{1, 1}), 1) {
		t.Fatal("HarmonicMean of ones wrong")
	}
	if GeoMean(nil) != 0 || Mean(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
	if GeoMean([]float64{1, 0}) != 0 || HarmonicMean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive values must give 0")
	}
}

func TestMax(t *testing.T) {
	if Max([]float64{3, 7, 2}) != 7 {
		t.Fatal("Max wrong")
	}
	if Max(nil) != 0 {
		t.Fatal("Max(nil) != 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 3, 9, -2} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Fatalf("Bucket(1) = %d, want 2", h.Bucket(1))
	}
	// 9 clamps into overflow bucket (index 4); -2 clamps to 0.
	if h.Bucket(4) != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h.Bucket(4))
	}
	if h.Bucket(0) != 2 {
		t.Fatalf("Bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Fatal("out-of-range Bucket must be 0")
	}
	// Mean uses un-clamped sum: (0+1+1+3+9+0)/6.
	if !almost(h.Mean(), 14.0/6) {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10)
	for v := 0; v < 10; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("median = %d, want 4", q)
	}
	if q := h.Quantile(1.0); q != 9 {
		t.Fatalf("p100 = %d, want 9", q)
	}
	if q := h.Quantile(-1); q != 0 {
		t.Fatalf("clamped low quantile = %d, want 0", q)
	}
	empty := NewHistogram(4)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram must be 0")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 3, 4})
	want := []float64{1, 1.5, 2}
	for i := range want {
		if !almost(out[i], want[i]) {
			t.Fatalf("Normalize = %v", out)
		}
	}
	if got := Normalize([]float64{0, 1}); got[0] != 0 || got[1] != 0 {
		t.Fatal("zero baseline must normalize to zeros")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if in[0] != 3 {
		t.Fatal("SortedCopy mutated its input")
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("SortedCopy = %v", out)
	}
}

// Property: histogram count equals number of observations and quantile is
// within bucket range.
func TestQuickHistogram(t *testing.T) {
	f := func(samples []uint8) bool {
		h := NewHistogram(16)
		for _, s := range samples {
			h.Observe(int(s))
		}
		if h.Count() != uint64(len(samples)) {
			return false
		}
		q := h.Quantile(0.9)
		return q >= 0 && q <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GeoMean of positive values lies between min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, 0, len(raw))
		for _, r := range raw {
			vals = append(vals, float64(r)+1)
		}
		if len(vals) == 0 {
			return true
		}
		g := GeoMean(vals)
		sorted := SortedCopy(vals)
		return g >= sorted[0]-1e-9 && g <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAccessor(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(1)
	h.Observe(1)
	h.Observe(9) // clamps into the overflow bucket
	b := h.Buckets()
	if len(b) != 5 {
		t.Fatalf("buckets len = %d, want 5 (0..3 + overflow)", len(b))
	}
	if b[1] != 2 || b[4] != 1 {
		t.Fatalf("buckets = %v, want [0 2 0 0 1]", b)
	}
	b[1] = 99 // the accessor must copy, not alias
	if h.Bucket(1) != 2 {
		t.Fatal("Buckets() aliases internal state")
	}
	if h.Sum() != 1+1+9 {
		t.Fatalf("Sum = %d, want 11", h.Sum())
	}
}

func TestHistogramMarshalJSON(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(2)
	h.Observe(2)
	out, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Count   uint64   `json:"count"`
		Sum     uint64   `json:"sum"`
		Mean    float64  `json:"mean"`
		P50     int      `json:"p50"`
		P95     int      `json:"p95"`
		P99     int      `json:"p99"`
		Buckets []uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("histogram JSON does not round-trip: %v\n%s", err, out)
	}
	if got.Count != 2 || got.Sum != 4 || got.Mean != 2 {
		t.Fatalf("summary = %+v", got)
	}
	if got.P50 != 2 || got.P95 != 2 || got.P99 != 2 {
		t.Fatalf("quantiles = p50=%d p95=%d p99=%d, want all 2", got.P50, got.P95, got.P99)
	}
	if len(got.Buckets) != 4 || got.Buckets[2] != 2 {
		t.Fatalf("buckets = %v", got.Buckets)
	}
}
