// Package stats provides the small statistics primitives shared by the
// simulator components: counters, ratios, rate helpers and histograms.
// Components embed these in their own typed stats structs so that hot
// paths stay allocation-free and reporting stays uniform.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event counter.
type Counter uint64

// Inc adds one to the counter.
func (c *Counter) Inc() { *c++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Ratio returns num/den, or 0 when den is zero. It is the safe division
// used for every hit rate and fraction in the simulator's reports.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PerKilo returns events per thousand units (e.g. misses per kilo
// instruction), or 0 when units is zero.
func PerKilo(events, units uint64) float64 {
	return 1000 * Ratio(events, units)
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// GeoMean returns the geometric mean of the values. Non-positive values
// are invalid for a geometric mean and cause a 0 return.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Mean returns the arithmetic mean of the values, or 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// HarmonicMean returns the harmonic mean of the values, or 0 when the
// input is empty or contains a non-positive value.
func HarmonicMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += 1 / v
	}
	return float64(len(vals)) / sum
}

// Max returns the maximum value, or 0 for empty input.
func Max(vals []float64) float64 {
	m := 0.0
	for i, v := range vals {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Histogram is a fixed-bucket histogram over non-negative integer samples
// (e.g. dirty blocks per DBI entry, burst lengths). Samples beyond the
// last bucket are clamped into it.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     uint64
}

// NewHistogram creates a histogram with buckets for values 0..max-1 plus
// an overflow bucket for values >= max.
func NewHistogram(max int) *Histogram {
	if max < 1 {
		max = 1
	}
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += uint64(v)
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
}

// Reset discards all observed samples, keeping the bucket layout. It is
// the histogram half of the simulator-wide Reset protocol: components
// zero their counters and Reset their histograms instead of reallocating.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum = 0, 0
}

// CopyFrom makes h an exact copy of src — bucket contents, count and
// sum — reallocating h's bucket array only when the layouts differ. It
// is the histogram half of the checkpoint protocol: Snapshot copies a
// component's histogram into checkpoint-owned storage, Restore copies
// it back, and neither walk depends on how many samples were observed.
func (h *Histogram) CopyFrom(src *Histogram) {
	if len(h.buckets) != len(src.buckets) {
		h.buckets = make([]uint64, len(src.buckets))
	}
	copy(h.buckets, src.buckets)
	h.count, h.sum = src.count, src.sum
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of all observed samples (un-clamped).
func (h *Histogram) Mean() float64 { return Ratio(h.sum, h.count) }

// Bucket returns the count of samples equal to v (or clamped into the
// overflow bucket when v is the last index).
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Buckets returns a copy of the per-value sample counts (index = sample
// value, last index = overflow bucket). Telemetry snapshots use it to
// export histograms into time-series records.
func (h *Histogram) Buckets() []uint64 {
	return append([]uint64(nil), h.buckets...)
}

// Sum returns the sum of all observed samples (un-clamped).
func (h *Histogram) Sum() uint64 { return h.sum }

// MarshalJSON serializes the histogram as its summary plus buckets, so
// histograms embedded in exported stats structs appear in JSON reports
// instead of being report-only. The p50/p95/p99 tail quantiles are
// precomputed so consumers can plot latency percentiles without
// client-side bucket math.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Count   uint64   `json:"count"`
		Sum     uint64   `json:"sum"`
		Mean    float64  `json:"mean"`
		P50     int      `json:"p50"`
		P95     int      `json:"p95"`
		P99     int      `json:"p99"`
		Buckets []uint64 `json:"buckets"`
	}{h.count, h.sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Buckets()})
}

// Quantile returns the smallest bucket value at or below which at least
// fraction q of samples fall. q outside (0,1] is clamped.
func (h *Histogram) Quantile(q float64) int {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Normalize divides each value by the first and returns the result; it is
// used for "normalized to baseline" report rows. A zero baseline yields
// zeros.
func Normalize(vals []float64) []float64 {
	out := make([]float64, len(vals))
	if len(vals) == 0 || vals[0] == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = v / vals[0]
	}
	return out
}

// SortedCopy returns an ascending copy of vals.
func SortedCopy(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	sort.Float64s(out)
	return out
}
