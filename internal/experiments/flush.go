package experiments

import (
	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
	"dbisim/internal/llc"
	"dbisim/internal/sweep"
)

// FlushResult compares whole-cache flush latency between the
// conventional tag walk and the DBI walk (Section 7, "Cache Flushing").
type FlushResult struct {
	DirtyBlocks    int
	TagWalkCycles  event.Cycle
	DBIWalkCycles  event.Cycle
	Speedup        float64
	TagWalkLookups uint64
	DBIWalkLookups uint64
}

// nullMem is a zero-latency memory for the flush micro-experiment.
type nullMem struct{ eng *event.Engine }

func (m nullMem) Read(b addr.BlockAddr, done func()) { m.eng.After(1, done) }
func (m nullMem) Write(b addr.BlockAddr)             {}

// Flush measures the latency of writing back a fixed dirty population
// under both organizations.
func Flush(o Options) (*FlushResult, error) {
	const dirty = 256
	build := func(mech config.Mechanism) (*event.Engine, *llc.LLC, error) {
		eng := &event.Engine{}
		cfg := config.Scaled(1, mech)
		l, err := llc.New(eng, addr.Default(), llc.Config{
			Cores: 1, Sys: cfg, Mem: nullMem{eng: eng}, Seed: o.seed(),
		})
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < dirty; i++ {
			// Spread across sets and regions; keep DBI pressure below
			// its capacity so both organizations flush the same blocks.
			l.Writeback(addr.BlockAddr(i*65), 0)
		}
		eng.Run()
		return eng, l, nil
	}

	res := &FlushResult{DirtyBlocks: dirty}

	// The two organizations flush fully independent systems, so they
	// run as two cells of a (tiny) sweep.
	type walk struct {
		cycles  event.Cycle
		lookups uint64
	}
	cell := func(mech config.Mechanism) sweep.Cell[walk] {
		return sweep.Cell[walk]{
			Key: sweep.Key{Experiment: "flushlat", Mechanism: mech.String()},
			Run: func() (walk, error) {
				eng, l, err := build(mech)
				if err != nil {
					return walk{}, err
				}
				var w walk
				before := l.TagLookups()
				l.FlushTimed(func(_ int, c event.Cycle) { w.cycles = c })
				eng.Run()
				w.lookups = l.TagLookups() - before
				return w, nil
			},
		}
	}
	outs, err := sweep.RunWithProgress([]sweep.Cell[walk]{cell(config.TADIP), cell(config.DBI)}, o.workers(), o.Progress)
	if err != nil {
		return nil, err
	}
	res.TagWalkCycles, res.TagWalkLookups = outs[0].Value.cycles, outs[0].Value.lookups
	res.DBIWalkCycles, res.DBIWalkLookups = outs[1].Value.cycles, outs[1].Value.lookups

	if res.DBIWalkCycles > 0 {
		res.Speedup = float64(res.TagWalkCycles) / float64(res.DBIWalkCycles)
	}
	w := o.out()
	fprintf(w, "\nSection 7: whole-cache flush latency (%d dirty blocks)\n", dirty)
	fprintf(w, "tag walk: %d cycles, %d tag lookups\n", res.TagWalkCycles, res.TagWalkLookups)
	fprintf(w, "DBI walk: %d cycles, %d tag lookups\n", res.DBIWalkCycles, res.DBIWalkLookups)
	fprintf(w, "speedup:  %.1fx\n", res.Speedup)
	return res, nil
}
