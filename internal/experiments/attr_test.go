package experiments

import (
	"io"
	"testing"

	"dbisim/internal/sweep"
	"dbisim/internal/system"
)

// TestEveryRunnerAttributionReconciles runs every simulation-backed
// experiment runner with the process-wide attribution toggle on and
// checks the accounting equation on every cell it records: each record
// carries an Attr report and both of its windows reconcile (closed
// domains sum exactly). A new call site that charges a domain total
// without its category — or vice versa — fails here for whichever
// experiment reaches it.
func TestEveryRunnerAttributionReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	if raceEnabled {
		t.Skip("deterministic single-run property; -race only multiplies the runtime")
	}
	system.SetAttributionEnabled(true)
	defer system.SetAttributionEnabled(false)
	runners := []struct {
		name string
		run  func(Options) error
	}{
		{"fig6", func(o Options) error { _, err := Fig6(o); return err }},
		{"fig7", func(o Options) error { _, err := Fig7(o); return err }},
		{"fig8", func(o Options) error { _, err := Fig8(o); return err }},
		{"table3", func(o Options) error { _, err := Table3(o); return err }},
		{"table6", func(o Options) error { _, err := Table6(o); return err }},
		{"table7", func(o Options) error { _, err := Table7(o); return err }},
		{"ablation", func(o Options) error { _, err := Ablation(o); return err }},
		{"dbipolicy", func(o Options) error { _, err := DBIPolicy(o); return err }},
		{"clbsens", func(o Options) error { _, err := CLBSensitivity(o); return err }},
		{"drrip", func(o Options) error { _, err := DRRIP(o); return err }},
		{"casestudy", func(o Options) error { _, err := CaseStudy(o); return err }},
	}
	for _, r := range runners {
		r := r
		t.Run(r.name, func(t *testing.T) {
			rec := &sweep.Recorder{}
			o := tiny()
			o.Out = io.Discard
			o.Recorder = rec
			if err := r.run(o); err != nil {
				t.Fatal(err)
			}
			records := rec.Records()
			if len(records) == 0 {
				t.Fatal("runner produced no records")
			}
			for _, cell := range records {
				if cell.Attr == nil {
					t.Fatalf("%s: no attribution report", cell.Key)
				}
				if err := cell.Attr.Warmup.Reconcile(); err != nil {
					t.Errorf("%s warmup: %v", cell.Key, err)
				}
				if err := cell.Attr.Measure.Reconcile(); err != nil {
					t.Errorf("%s measure: %v", cell.Key, err)
				}
			}
		})
	}
}
