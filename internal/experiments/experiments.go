// Package experiments contains one runner per table and figure of the
// DBI paper's evaluation (Section 6). Every runner builds the workloads,
// sweeps the mechanisms, renders the same rows/series the paper reports
// and returns structured results for the benchmark harness to assert on.
//
// The runners use the laptop-scale configuration (config.Scaled); the
// per-experiment index and the paper-vs-measured record live in
// DESIGN.md and EXPERIMENTS.md at the repository root.
package experiments

import (
	"fmt"
	"io"

	"dbisim/internal/config"
	"dbisim/internal/sweep"
	"dbisim/internal/system"
	"dbisim/internal/trace"
)

// Options controls sweep sizes, parallelism and output.
type Options struct {
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
	// Quick shrinks instruction budgets and workload counts so the full
	// suite finishes in minutes (the default for `go test -bench`).
	Quick bool
	// Seed fixes all randomness.
	Seed int64
	// Parallel caps the worker goroutines each sweep fans out over:
	// 0 means one per CPU, 1 reproduces the old sequential path. Cell
	// seeds are derived from the cell identity (sweep.CellSeed), so
	// every worker count yields the identical result set.
	Parallel int
	// Recorder, when non-nil, receives one machine-readable record per
	// simulation cell for the -json report.
	Recorder *sweep.Recorder
	// Progress, when non-nil, fires after each simulation cell
	// completes with (done, total) for the current sweep. Callbacks
	// arrive from worker goroutines; the callee must be
	// concurrency-safe.
	Progress func(done, total int)
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// singleBudgets returns (warmup, measure) for single-core runs. Warmup
// must stream enough blocks to fill the LLC with steady-state dirty
// data; otherwise the baseline's deferred writebacks flatter it.
func (o Options) singleBudgets() (uint64, uint64) {
	if o.Quick {
		return 800_000, 1_000_000
	}
	return 1_500_000, 2_500_000
}

// multiBudgets returns per-core (warmup, measure) for multi-core runs.
// The shared LLC grows with the core count but so does the combined fill
// rate, so the per-core warmup stays roughly constant.
func (o Options) multiBudgets() (uint64, uint64) {
	if o.Quick {
		return 500_000, 700_000
	}
	return 800_000, 1_200_000
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// weightedSpeedup is a convenience wrapper over system.WeightedSpeedup.
func weightedSpeedup(r system.Results, alone map[string]float64) float64 {
	return system.WeightedSpeedup(r.PerCore, alone)
}

// aloneIPC measures each benchmark's single-core IPC on the baseline
// machine — the denominator of every speedup metric (Section 5). The
// runs are independent, so they go through the worker pool like any
// other sweep cells.
func (o Options) aloneIPC(exp string, benches []string) (map[string]float64, error) {
	var cells []simCell
	seen := map[string]bool{}
	for _, b := range benches {
		if seen[b] {
			continue
		}
		seen[b] = true
		cells = append(cells, o.singleCell(exp+"/alone", config.Baseline, b))
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i, c := range cells {
		out[c.key.Benchmark] = rs[i].PerCore[0].IPC
	}
	return out, nil
}

// uniqueBenches flattens mixes into the set of distinct benchmarks.
func uniqueBenches(mixes [][]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range mixes {
		for _, b := range m {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}

// fig6Mechanisms are the mechanisms Figure 6 plots.
func fig6Mechanisms() []config.Mechanism {
	return []config.Mechanism{
		config.TADIP, config.DAWB, config.VWQ,
		config.DBI, config.DBIAWB, config.DBICLB, config.DBIAWBCLB,
	}
}

// fig7Mechanisms are the mechanisms Figure 7 plots.
func fig7Mechanisms() []config.Mechanism {
	return []config.Mechanism{
		config.Baseline, config.TADIP, config.DAWB,
		config.DBI, config.DBIAWB, config.DBICLB, config.DBIAWBCLB,
	}
}

// benchList returns the benchmarks Figure 6 sweeps (all models).
func benchList(_ bool) []string {
	return trace.Benchmarks()
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
