package experiments

import (
	"runtime"

	"dbisim/internal/config"
	"dbisim/internal/sweep"
	"dbisim/internal/system"
	"dbisim/internal/workloads"
)

// simCell is one simulation the worker pool can run: a complete system
// configuration plus the benchmark on each of its cores.
type simCell struct {
	key     sweep.Key
	cfg     config.SystemConfig
	benches []string
}

// workers resolves the Parallel option: 0 means one worker per
// available CPU, 1 reproduces the old sequential path.
func (o Options) workers() int {
	if o.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

// singleCell builds a 1-core cell with the experiment's single-core
// instruction budgets.
func (o Options) singleCell(exp string, mech config.Mechanism, bench string) simCell {
	cfg := config.Scaled(1, mech)
	cfg.WarmupInstructions, cfg.MeasureInstructions = o.singleBudgets()
	return simCell{
		key:     sweep.Key{Experiment: exp, Benchmark: bench, Mechanism: mech.String()},
		cfg:     cfg,
		benches: []string{bench},
	}
}

// multiCell builds a multi-core cell for a workload mix with the
// multi-core budgets.
func (o Options) multiCell(exp string, mech config.Mechanism, mixName string, benches []string) simCell {
	cfg := config.Scaled(len(benches), mech)
	cfg.WarmupInstructions, cfg.MeasureInstructions = o.multiBudgets()
	return simCell{
		key: sweep.Key{
			Experiment: exp, Benchmark: mixName,
			Mechanism: mech.String(), Cores: len(benches),
		},
		cfg:     cfg,
		benches: benches,
	}
}

// runCells executes the cells across the worker pool and returns their
// results in cell order. Per-cell seeds come from sweep.CellSeed, so
// the result set is identical for every worker count; each outcome is
// also pushed to the Recorder for the -json report. Each worker keeps
// one system.ForkPool: cells are grouped by warmup identity, so a group
// warms one machine, checkpoints it at the warmup→measure boundary and
// forks every sibling cell from the snapshot — and falls back to the
// plain reset path otherwise (results stay bit-identical either way —
// set DBISIM_NO_FORK to force reset-per-cell, DBISIM_NO_POOL to force
// fresh construction per cell).
func (o Options) runCells(cells []simCell) ([]system.Results, error) {
	sc := make([]sweep.StateCell[system.Results, system.ForkPool], len(cells))
	seeds := make([]int64, len(cells))
	for i := range cells {
		c := cells[i]
		seed := sweep.CellSeed(o.seed(), c.key.Benchmark, c.key.Mechanism, c.key.Run)
		seeds[i] = seed
		sc[i] = sweep.StateCell[system.Results, system.ForkPool]{
			Key: c.key,
			Run: func(p *system.ForkPool) (system.Results, error) {
				return p.Run(c.cfg, c.benches, seed)
			},
			Group: system.WarmupKey(c.cfg, c.benches, seed),
		}
	}
	outs, err := sweep.RunState(sc, o.workers(), o.Progress)
	if err != nil {
		return nil, err
	}
	res := make([]system.Results, len(outs))
	for i, out := range outs {
		res[i] = out.Value
		o.Recorder.Add(sweep.Record{
			Key:        out.Key.String(),
			Experiment: out.Key.Experiment,
			Benchmark:  out.Key.Benchmark,
			Mechanism:  out.Key.Mechanism,
			Cores:      out.Key.Cores,
			Param:      out.Key.Param,
			Run:        out.Key.Run,
			Seed:       seeds[i],
			Metrics:    out.Value.Metrics(),
			Attr:       out.Value.Attr,
			ElapsedMS:  float64(out.Elapsed.Microseconds()) / 1000,
		})
	}
	return res, nil
}

// mixBenches flattens mixes into per-mix benchmark lists for alone-IPC
// deduplication.
func mixBenches(mixes []workloads.Mix) [][]string {
	lists := make([][]string, len(mixes))
	for i, m := range mixes {
		lists[i] = m.Benches
	}
	return lists
}
