package experiments

import (
	"fmt"

	"dbisim/internal/areamodel"
	"dbisim/internal/config"
	"dbisim/internal/stats"
)

// Table4 renders the paper's Table 4 (bit-storage cost reduction) and
// returns its rows.
func Table4(o Options) []areamodel.Table4Row {
	cfg := config.PaperWithL3PerCore(8, config.DBIAWBCLB, 2<<20) // 16MB LLC
	rows := areamodel.Table4(areamodel.DefaultBits(), cfg.L3, cfg.DBI)
	w := o.out()
	fprintf(w, "\nTable 4: bit storage cost reduction (16MB cache)\n")
	for _, r := range rows {
		fprintf(w, "%s\n", r)
	}
	return rows
}

// Table5 renders the paper's Table 5 (DBI power fraction) and returns
// its rows.
func Table5(o Options) []areamodel.Table5Row {
	cfg := config.Paper(1, config.DBIAWBCLB)
	rows := areamodel.Table5(areamodel.DefaultBits(), areamodel.DefaultSRAM(), cfg.DBI, 3)
	w := o.out()
	fprintf(w, "\nTable 5: DBI power as a fraction of cache power\n")
	for _, r := range rows {
		fprintf(w, "%2dMB  static %.2f%%  dynamic %.1f%%\n",
			r.CacheBytes>>20, 100*r.StaticFraction, 100*r.DynamicFraction)
	}
	return rows
}

// Table6Result maps (alpha, granularity) to the average IPC improvement
// of DBI+AWB over the baseline — the paper's Table 6.
type Table6Result struct {
	Granularities []int
	Alphas        [][2]int
	// Improvement[alphaIdx][granIdx].
	Improvement [][]float64
}

// table6Benches is the write-sensitive subset used for the sensitivity
// sweeps (full Figure-6 sweeps would multiply runtime without changing
// the trend).
func table6Benches(quick bool) []string {
	if quick {
		return []string{"lbm", "GemsFDTD", "milc"}
	}
	return []string{"lbm", "GemsFDTD", "stream", "milc", "cactusADM", "leslie3d"}
}

// Table6 reproduces Table 6: sensitivity of the AWB optimization to DBI
// size (α) and granularity.
func Table6(o Options) (*Table6Result, error) {
	res := &Table6Result{
		Granularities: []int{16, 32, 64, 128},
		Alphas:        [][2]int{{1, 4}, {1, 2}},
	}
	benches := table6Benches(o.Quick)
	warm, meas := o.singleBudgets()

	baseIPC, err := o.aloneIPC("tab6", benches)
	if err != nil {
		return nil, err
	}
	var cells []simCell
	for _, alpha := range res.Alphas {
		for _, gran := range res.Granularities {
			for _, b := range benches {
				c := o.singleCell("tab6", config.DBIAWB, b)
				c.cfg.WarmupInstructions, c.cfg.MeasureInstructions = warm, meas
				c.cfg.DBI.AlphaNum, c.cfg.DBI.AlphaDen = alpha[0], alpha[1]
				c.cfg.DBI.Granularity = gran
				c.key.Param = fmt.Sprintf("alpha=%d/%d,gran=%d", alpha[0], alpha[1], gran)
				cells = append(cells, c)
			}
		}
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for range res.Alphas {
		var row []float64
		for range res.Granularities {
			var speedups []float64
			for _, b := range benches {
				speedups = append(speedups, rs[i].PerCore[0].IPC/baseIPC[b])
				i++
			}
			row = append(row, stats.GeoMean(speedups)-1)
		}
		res.Improvement = append(res.Improvement, row)
	}
	w := o.out()
	fprintf(w, "\nTable 6: AWB sensitivity to DBI size and granularity\n")
	fprintf(w, "%-10s", "size\\gran")
	for _, g := range res.Granularities {
		fprintf(w, "%8d", g)
	}
	fprintf(w, "\n")
	for i, alpha := range res.Alphas {
		fprintf(w, "α=%d/%-6d", alpha[0], alpha[1])
		for j := range res.Granularities {
			fprintf(w, "%+7.0f%%", 100*res.Improvement[i][j])
		}
		fprintf(w, "\n")
	}
	return res, nil
}

// Table7Result maps LLC capacity per core to the WS improvement of
// DBI+AWB+CLB over baseline.
type Table7Result struct {
	Cores []int
	// Improvement[l3PerCoreMB][cores].
	Improvement map[uint64]map[int]float64
}

// Table7 reproduces Table 7: the effect of cache size (the scaled
// analogues of the paper's 2MB/core and 4MB/core) on the multi-core
// improvement.
func Table7(o Options) (*Table7Result, error) {
	res := &Table7Result{
		Cores:       []int{2, 4, 8},
		Improvement: map[uint64]map[int]float64{},
	}
	sizes := []uint64{1 << 20, 2 << 20} // scaled analogues of 2MB/4MB per core
	warm, meas := o.multiBudgets()
	for _, size := range sizes {
		res.Improvement[size] = map[int]float64{}
		for _, cores := range res.Cores {
			mixes := o.mixesFor(cores)
			if o.Quick {
				mixes = mixes[:2]
			}
			alone, err := o.aloneIPC("tab7", uniqueBenches(mixBenches(mixes)))
			if err != nil {
				return nil, err
			}
			var cells []simCell
			for _, mix := range mixes {
				for _, mech := range []config.Mechanism{config.Baseline, config.DBIAWBCLB} {
					c := o.multiCell("tab7", mech, mix.Name, mix.Benches)
					c.cfg.L3.SizeBytes = size * uint64(cores)
					c.cfg.WarmupInstructions, c.cfg.MeasureInstructions = warm, meas
					c.key.Param = fmt.Sprintf("llc=%dKB/core", size>>10)
					cells = append(cells, c)
				}
			}
			rs, err := o.runCells(cells)
			if err != nil {
				return nil, err
			}
			var base, dbi []float64
			for i := range mixes {
				base = append(base, weightedSpeedup(rs[2*i], alone))
				dbi = append(dbi, weightedSpeedup(rs[2*i+1], alone))
			}
			res.Improvement[size][cores] = stats.Mean(dbi)/stats.Mean(base) - 1
		}
	}
	w := o.out()
	fprintf(w, "\nTable 7: effect of cache size (DBI+AWB+CLB vs baseline WS)\n")
	fprintf(w, "%-14s", "LLC/core")
	for _, c := range res.Cores {
		fprintf(w, "%9d-core", c)
	}
	fprintf(w, "\n")
	for _, size := range sizes {
		fprintf(w, "%10dKB  ", size>>10)
		for _, c := range res.Cores {
			fprintf(w, "%+12.0f%%", 100*res.Improvement[size][c])
		}
		fprintf(w, "\n")
	}
	return res, nil
}
