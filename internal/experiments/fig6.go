package experiments

import (
	"fmt"

	"dbisim/internal/config"
	"dbisim/internal/stats"
	"dbisim/internal/system"
)

// Fig6Result holds the five per-benchmark series of Figure 6.
type Fig6Result struct {
	Benchmarks []string
	Mechanisms []config.Mechanism
	// Indexed [mechanism][benchmark].
	IPC        map[config.Mechanism]map[string]float64
	WriteRHR   map[config.Mechanism]map[string]float64
	TagPKI     map[config.Mechanism]map[string]float64
	WPKI       map[config.Mechanism]map[string]float64
	ReadRHR    map[config.Mechanism]map[string]float64
	GMeanIPC   map[config.Mechanism]float64
	MeanWRHR   map[config.Mechanism]float64
	MeanTagPKI map[config.Mechanism]float64
}

// Fig6 reproduces Figure 6: single-core IPC, write row hit rate, tag
// lookups PKI, memory writes PKI and read row hit rate for the 14
// benchmark models under the seven mechanisms.
func Fig6(o Options) (*Fig6Result, error) {
	res := &Fig6Result{
		Benchmarks: benchList(o.Quick),
		Mechanisms: fig6Mechanisms(),
		IPC:        map[config.Mechanism]map[string]float64{},
		WriteRHR:   map[config.Mechanism]map[string]float64{},
		TagPKI:     map[config.Mechanism]map[string]float64{},
		WPKI:       map[config.Mechanism]map[string]float64{},
		ReadRHR:    map[config.Mechanism]map[string]float64{},
		GMeanIPC:   map[config.Mechanism]float64{},
		MeanWRHR:   map[config.Mechanism]float64{},
		MeanTagPKI: map[config.Mechanism]float64{},
	}
	var cells []simCell
	for _, mech := range res.Mechanisms {
		for _, b := range res.Benchmarks {
			cells = append(cells, o.singleCell("fig6", mech, b))
		}
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, mech := range res.Mechanisms {
		res.IPC[mech] = map[string]float64{}
		res.WriteRHR[mech] = map[string]float64{}
		res.TagPKI[mech] = map[string]float64{}
		res.WPKI[mech] = map[string]float64{}
		res.ReadRHR[mech] = map[string]float64{}
		var ipcs, wrhrs, tags []float64
		for _, b := range res.Benchmarks {
			r := rs[i]
			i++
			res.IPC[mech][b] = r.PerCore[0].IPC
			res.WriteRHR[mech][b] = r.WriteRowHitRate
			res.TagPKI[mech][b] = r.TagLookupsPKI
			res.WPKI[mech][b] = r.MemWritesPKI
			res.ReadRHR[mech][b] = r.ReadRowHitRate
			ipcs = append(ipcs, r.PerCore[0].IPC)
			wrhrs = append(wrhrs, r.WriteRowHitRate)
			tags = append(tags, r.TagLookupsPKI)
		}
		res.GMeanIPC[mech] = stats.GeoMean(ipcs)
		res.MeanWRHR[mech] = stats.Mean(wrhrs)
		res.MeanTagPKI[mech] = stats.Mean(tags)
	}
	res.render(o)
	return res, nil
}

// CheckPaperOrdering verifies the Figure-6a mechanism ordering the
// paper reports and EXPERIMENTS.md records as preserved:
// DBI+AWB+CLB > DBI+AWB > DAWB > VWQ > TA-DIP on gmean IPC. The CI
// smoke job gates on it via `dbibench -experiment fig6 -check`.
func (res *Fig6Result) CheckPaperOrdering() error {
	order := []config.Mechanism{
		config.DBIAWBCLB, config.DBIAWB, config.DAWB, config.VWQ, config.TADIP,
	}
	for i := 0; i+1 < len(order); i++ {
		hi, lo := order[i], order[i+1]
		a, ok := res.GMeanIPC[hi]
		b, ok2 := res.GMeanIPC[lo]
		if !ok || !ok2 {
			return fmt.Errorf("fig6: ordering check needs %v and %v in the sweep", hi, lo)
		}
		if a <= b {
			return fmt.Errorf("fig6: paper ordering violated: gmean IPC %v (%.4f) <= %v (%.4f)",
				hi, a, lo, b)
		}
	}
	return nil
}

func (res *Fig6Result) render(o Options) {
	w := o.out()
	series := []struct {
		title string
		data  map[config.Mechanism]map[string]float64
	}{
		{"Figure 6a: Instructions per cycle (IPC)", res.IPC},
		{"Figure 6b: Write row hit rate", res.WriteRHR},
		{"Figure 6c: LLC tag lookups per kilo instruction", res.TagPKI},
		{"Figure 6d: Memory writes per kilo instruction", res.WPKI},
		{"Figure 6e: Read row hit rate", res.ReadRHR},
	}
	for _, s := range series {
		fprintf(w, "\n%s\n", s.title)
		fprintf(w, "%-12s", "benchmark")
		for _, m := range res.Mechanisms {
			fprintf(w, "%12s", m)
		}
		fprintf(w, "\n")
		for _, b := range res.Benchmarks {
			fprintf(w, "%-12s", b)
			for _, m := range res.Mechanisms {
				fprintf(w, "%12.3f", s.data[m][b])
			}
			fprintf(w, "\n")
		}
	}
	fprintf(w, "\nSummary (gmean IPC / mean write RHR / mean tag PKI)\n")
	for _, m := range res.Mechanisms {
		fprintf(w, "%-12s %8.4f %8.3f %8.1f\n",
			m, res.GMeanIPC[m], res.MeanWRHR[m], res.MeanTagPKI[m])
	}
	base := res.GMeanIPC[config.TADIP]
	if base > 0 {
		fprintf(w, "\nIPC improvement over TA-DIP:\n")
		for _, m := range res.Mechanisms {
			fprintf(w, "%-12s %+.1f%%\n", m, 100*(res.GMeanIPC[m]/base-1))
		}
	}
}

// CaseStudyResult is the Section 6.2 GemsFDTD+libquantum study.
type CaseStudyResult struct {
	Mechanisms []config.Mechanism
	WS         map[config.Mechanism]float64 // weighted speedup
	TagPKI     map[config.Mechanism]float64
}

// CaseStudy reproduces the 2-core GemsFDTD+libquantum case study: DBI
// (even without AWB) captures most of the DRAM-aware-writeback benefit
// while CLB removes libquantum's useless lookups.
func CaseStudy(o Options) (*CaseStudyResult, error) {
	mix := []string{"GemsFDTD", "libquantum"}
	alone, err := o.aloneIPC("casestudy", mix)
	if err != nil {
		return nil, err
	}
	mechs := []config.Mechanism{
		config.Baseline, config.DAWB, config.DBI, config.DBIAWB, config.DBIAWBCLB,
	}
	res := &CaseStudyResult{
		Mechanisms: mechs,
		WS:         map[config.Mechanism]float64{},
		TagPKI:     map[config.Mechanism]float64{},
	}
	var cells []simCell
	for _, mech := range mechs {
		cells = append(cells, o.multiCell("casestudy", mech, "GemsFDTD+libquantum", mix))
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	w := o.out()
	fprintf(w, "\nSection 6.2 case study: 2-core GemsFDTD + libquantum\n")
	for i, mech := range mechs {
		res.WS[mech] = system.WeightedSpeedup(rs[i].PerCore, alone)
		res.TagPKI[mech] = rs[i].TagLookupsPKI
		fprintf(w, "%-12s WS=%.3f tagPKI=%.1f\n", mech, res.WS[mech], res.TagPKI[mech])
	}
	base := res.WS[config.Baseline]
	if base > 0 {
		for _, mech := range mechs[1:] {
			fprintf(w, "%-12s %+.0f%% vs baseline\n", mech, 100*(res.WS[mech]/base-1))
		}
	}
	return res, nil
}
