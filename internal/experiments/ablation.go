package experiments

import (
	"fmt"

	"dbisim/internal/config"
	"dbisim/internal/stats"
)

// AblationResult collects the design-choice sweeps DESIGN.md calls out:
// the memory controller's write-buffer depth (the FR-FCFS regrouping
// window), the drain-stop watermark, and the DBI associativity. Each
// sweep reports the write row hit rate and IPC of DBI+AWB on the
// write-sensitive benchmark subset.
type AblationResult struct {
	WriteBufferEntries []int
	WBufWriteRHR       map[int]float64
	WBufIPC            map[int]float64

	DrainLow     []int
	DrainIPC     map[int]float64
	DrainStarted map[int]float64

	DBIAssoc    []int
	DBIAssocIPC map[int]float64
}

// Ablation sweeps the secondary design parameters to show which carry
// the mechanism and which are second-order.
func Ablation(o Options) (*AblationResult, error) {
	benches := table6Benches(o.Quick)
	warm, meas := o.singleBudgets()
	res := &AblationResult{
		WriteBufferEntries: []int{16, 64, 256},
		WBufWriteRHR:       map[int]float64{},
		WBufIPC:            map[int]float64{},
		DrainLow:           []int{0, 16, 48},
		DrainIPC:           map[int]float64{},
		DrainStarted:       map[int]float64{},
		DBIAssoc:           []int{4, 8, 16},
		DBIAssocIPC:        map[int]float64{},
	}

	// Each parameter family is one sweep: every (value, benchmark) pair
	// is an independent cell, so a whole family fans out at once.
	family := func(params []int, param string, mut func(*config.SystemConfig, int)) (ipc, wrhr, drains map[int]float64, err error) {
		var cells []simCell
		for _, p := range params {
			for _, b := range benches {
				c := o.singleCell("ablation", config.DBIAWB, b)
				c.cfg.WarmupInstructions, c.cfg.MeasureInstructions = warm, meas
				mut(&c.cfg, p)
				c.key.Param = fmt.Sprintf("%s=%d", param, p)
				cells = append(cells, c)
			}
		}
		rs, err := o.runCells(cells)
		if err != nil {
			return nil, nil, nil, err
		}
		ipc, wrhr, drains = map[int]float64{}, map[int]float64{}, map[int]float64{}
		i := 0
		for _, p := range params {
			var ipcs, rhrs, drs []float64
			for range benches {
				ipcs = append(ipcs, rs[i].PerCore[0].IPC)
				rhrs = append(rhrs, rs[i].WriteRowHitRate)
				drs = append(drs, float64(rs[i].DrainsStarted))
				i++
			}
			ipc[p], wrhr[p], drains[p] = stats.GeoMean(ipcs), stats.Mean(rhrs), stats.Mean(drs)
		}
		return ipc, wrhr, drains, nil
	}

	var err error
	if res.WBufIPC, res.WBufWriteRHR, _, err = family(res.WriteBufferEntries, "wbuf",
		func(c *config.SystemConfig, n int) {
			c.DRAM.WriteBufferEntries = n
			if c.DRAM.WriteDrainLow >= n {
				c.DRAM.WriteDrainLow = n / 4
			}
		}); err != nil {
		return nil, err
	}
	if res.DrainIPC, _, res.DrainStarted, err = family(res.DrainLow, "drainlow",
		func(c *config.SystemConfig, low int) {
			c.DRAM.WriteDrainLow = low
		}); err != nil {
		return nil, err
	}
	if res.DBIAssocIPC, _, _, err = family(res.DBIAssoc, "assoc",
		func(c *config.SystemConfig, assoc int) {
			c.DBI.Associativity = assoc
		}); err != nil {
		return nil, err
	}

	w := o.out()
	fprintf(w, "\nAblations (DBI+AWB on the write-sensitive subset)\n")
	fprintf(w, "write buffer entries:")
	for _, n := range res.WriteBufferEntries {
		fprintf(w, "  %d: IPC %.4f, wRHR %.3f", n, res.WBufIPC[n], res.WBufWriteRHR[n])
	}
	fprintf(w, "\ndrain-stop watermark:")
	for _, l := range res.DrainLow {
		fprintf(w, "  %d: IPC %.4f (%.0f drains)", l, res.DrainIPC[l], res.DrainStarted[l])
	}
	fprintf(w, "\nDBI associativity:")
	for _, a := range res.DBIAssoc {
		fprintf(w, "  %d: IPC %.4f", a, res.DBIAssocIPC[a])
	}
	fprintf(w, "\n")
	return res, nil
}
