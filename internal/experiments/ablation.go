package experiments

import (
	"dbisim/internal/config"
	"dbisim/internal/stats"
)

// AblationResult collects the design-choice sweeps DESIGN.md calls out:
// the memory controller's write-buffer depth (the FR-FCFS regrouping
// window), the drain-stop watermark, and the DBI associativity. Each
// sweep reports the write row hit rate and IPC of DBI+AWB on the
// write-sensitive benchmark subset.
type AblationResult struct {
	WriteBufferEntries []int
	WBufWriteRHR       map[int]float64
	WBufIPC            map[int]float64

	DrainLow     []int
	DrainIPC     map[int]float64
	DrainStarted map[int]float64

	DBIAssoc    []int
	DBIAssocIPC map[int]float64
}

// Ablation sweeps the secondary design parameters to show which carry
// the mechanism and which are second-order.
func Ablation(o Options) (*AblationResult, error) {
	benches := table6Benches(o.Quick)
	warm, meas := o.singleBudgets()
	res := &AblationResult{
		WriteBufferEntries: []int{16, 64, 256},
		WBufWriteRHR:       map[int]float64{},
		WBufIPC:            map[int]float64{},
		DrainLow:           []int{0, 16, 48},
		DrainIPC:           map[int]float64{},
		DrainStarted:       map[int]float64{},
		DBIAssoc:           []int{4, 8, 16},
		DBIAssocIPC:        map[int]float64{},
	}

	sweep := func(mut func(*config.SystemConfig)) (ipc, wrhr, drains float64, err error) {
		var ipcs, rhrs, drs []float64
		for _, b := range benches {
			cfg := config.Scaled(1, config.DBIAWB)
			cfg.WarmupInstructions, cfg.MeasureInstructions = warm, meas
			mut(&cfg)
			r, err := runCfg(cfg, []string{b}, o.seed())
			if err != nil {
				return 0, 0, 0, err
			}
			ipcs = append(ipcs, r.PerCore[0].IPC)
			rhrs = append(rhrs, r.WriteRowHitRate)
			drs = append(drs, float64(r.DrainsStarted))
		}
		return stats.GeoMean(ipcs), stats.Mean(rhrs), stats.Mean(drs), nil
	}

	for _, n := range res.WriteBufferEntries {
		n := n
		ipc, rhr, _, err := sweep(func(c *config.SystemConfig) {
			c.DRAM.WriteBufferEntries = n
			if c.DRAM.WriteDrainLow >= n {
				c.DRAM.WriteDrainLow = n / 4
			}
		})
		if err != nil {
			return nil, err
		}
		res.WBufIPC[n], res.WBufWriteRHR[n] = ipc, rhr
	}
	for _, low := range res.DrainLow {
		low := low
		ipc, _, drains, err := sweep(func(c *config.SystemConfig) {
			c.DRAM.WriteDrainLow = low
		})
		if err != nil {
			return nil, err
		}
		res.DrainIPC[low], res.DrainStarted[low] = ipc, drains
	}
	for _, assoc := range res.DBIAssoc {
		assoc := assoc
		ipc, _, _, err := sweep(func(c *config.SystemConfig) {
			c.DBI.Associativity = assoc
		})
		if err != nil {
			return nil, err
		}
		res.DBIAssocIPC[assoc] = ipc
	}

	w := o.out()
	fprintf(w, "\nAblations (DBI+AWB on the write-sensitive subset)\n")
	fprintf(w, "write buffer entries:")
	for _, n := range res.WriteBufferEntries {
		fprintf(w, "  %d: IPC %.4f, wRHR %.3f", n, res.WBufIPC[n], res.WBufWriteRHR[n])
	}
	fprintf(w, "\ndrain-stop watermark:")
	for _, l := range res.DrainLow {
		fprintf(w, "  %d: IPC %.4f (%.0f drains)", l, res.DrainIPC[l], res.DrainStarted[l])
	}
	fprintf(w, "\nDBI associativity:")
	for _, a := range res.DBIAssoc {
		fprintf(w, "  %d: IPC %.4f", a, res.DBIAssocIPC[a])
	}
	fprintf(w, "\n")
	return res, nil
}
