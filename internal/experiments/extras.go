package experiments

import (
	"fmt"

	"dbisim/internal/areamodel"
	"dbisim/internal/config"
	"dbisim/internal/stats"
)

// DBIPolicyResult compares the five DBI replacement policies of
// Section 4.3.
type DBIPolicyResult struct {
	Policies []config.DBIReplacement
	GMeanIPC map[config.DBIReplacement]float64
}

// DBIPolicy evaluates LRW against the other four DBI replacement
// policies on the write-sensitive benchmark subset. The paper finds LRW
// comparable to or better than the alternatives.
func DBIPolicy(o Options) (*DBIPolicyResult, error) {
	policies := []config.DBIReplacement{
		config.DBILRW, config.DBILRWBIP, config.DBIRWIP,
		config.DBIMaxDirty, config.DBIMinDirty,
	}
	benches := table6Benches(o.Quick)
	warm, meas := o.singleBudgets()
	res := &DBIPolicyResult{
		Policies: policies,
		GMeanIPC: map[config.DBIReplacement]float64{},
	}
	var cells []simCell
	for _, pol := range policies {
		for _, b := range benches {
			c := o.singleCell("dbipolicy", config.DBIAWB, b)
			c.cfg.WarmupInstructions, c.cfg.MeasureInstructions = warm, meas
			c.cfg.DBI.Replacement = pol
			c.key.Param = fmt.Sprintf("policy=%v", pol)
			cells = append(cells, c)
		}
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, pol := range policies {
		var ipcs []float64
		for range benches {
			ipcs = append(ipcs, rs[i].PerCore[0].IPC)
			i++
		}
		res.GMeanIPC[pol] = stats.GeoMean(ipcs)
	}
	w := o.out()
	fprintf(w, "\nSection 4.3: DBI replacement policy comparison (gmean IPC)\n")
	for _, pol := range policies {
		fprintf(w, "%-10s %.4f\n", pol, res.GMeanIPC[pol])
	}
	return res, nil
}

// CLBSensitivityResult sweeps the CLB parameters of Section 6.4.
type CLBSensitivityResult struct {
	Thresholds []float64
	IPC        map[float64]float64
	Spread     float64 // max/min - 1 across the sweep
}

// CLBSensitivity reproduces the Section 6.4 finding that CLB performance
// is insensitive to the miss-predictor threshold for reasonable values.
func CLBSensitivity(o Options) (*CLBSensitivityResult, error) {
	res := &CLBSensitivityResult{
		Thresholds: []float64{0.5, 0.75, 0.95},
		IPC:        map[float64]float64{},
	}
	benches := []string{"libquantum", "stream", "mcf"}
	warm, meas := o.singleBudgets()
	var cells []simCell
	for _, th := range res.Thresholds {
		for _, b := range benches {
			c := o.singleCell("clbsens", config.DBIAWBCLB, b)
			c.cfg.WarmupInstructions, c.cfg.MeasureInstructions = warm, meas
			c.cfg.MissPred.Threshold = th
			c.key.Param = fmt.Sprintf("threshold=%.2f", th)
			cells = append(cells, c)
		}
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	var all []float64
	i := 0
	for _, th := range res.Thresholds {
		var ipcs []float64
		for range benches {
			ipcs = append(ipcs, rs[i].PerCore[0].IPC)
			i++
		}
		res.IPC[th] = stats.GeoMean(ipcs)
		all = append(all, res.IPC[th])
	}
	sorted := stats.SortedCopy(all)
	if sorted[0] > 0 {
		res.Spread = sorted[len(sorted)-1]/sorted[0] - 1
	}
	w := o.out()
	fprintf(w, "\nSection 6.4: CLB sensitivity to miss-predictor threshold\n")
	for _, th := range res.Thresholds {
		fprintf(w, "threshold %.2f  gmean IPC %.4f\n", th, res.IPC[th])
	}
	fprintf(w, "spread %.1f%%\n", 100*res.Spread)
	return res, nil
}

// DRRIPResult compares DAWB and DBI+AWB+CLB under the DRRIP replacement
// policy (Section 6.5).
type DRRIPResult struct {
	WSDAWB float64
	WSDBI  float64
}

// DRRIP reproduces the Section 6.5 check: DBI's benefit persists under a
// better replacement policy (the paper reports +7% over DAWB at 8
// cores with DRRIP).
func DRRIP(o Options) (*DRRIPResult, error) {
	cores := 8
	mixes := o.mixesFor(cores)
	if o.Quick {
		mixes = mixes[:2]
	}
	alone, err := o.aloneIPC("drrip", uniqueBenches(mixBenches(mixes)))
	if err != nil {
		return nil, err
	}
	warm, meas := o.multiBudgets()
	mechs := []config.Mechanism{config.DAWB, config.DBIAWBCLB}
	var cells []simCell
	for _, mech := range mechs {
		for _, mix := range mixes {
			c := o.multiCell("drrip", mech, mix.Name, mix.Benches)
			c.cfg.L3.Replacement = config.ReplDRRIP
			c.cfg.WarmupInstructions, c.cfg.MeasureInstructions = warm, meas
			c.key.Param = "repl=DRRIP"
			cells = append(cells, c)
		}
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	mean := func(off int) float64 {
		var ws []float64
		for i := range mixes {
			ws = append(ws, weightedSpeedup(rs[off+i], alone))
		}
		return stats.Mean(ws)
	}
	res := &DRRIPResult{WSDAWB: mean(0), WSDBI: mean(len(mixes))}
	w := o.out()
	fprintf(w, "\nSection 6.5: 8-core with DRRIP replacement\n")
	fprintf(w, "DAWB        WS=%.3f\nDBI+AWB+CLB WS=%.3f (%+.0f%%)\n",
		res.WSDAWB, res.WSDBI, 100*(res.WSDBI/res.WSDAWB-1))
	return res, nil
}

// AreaPowerResult carries the Section 6.3 headline numbers.
type AreaPowerResult struct {
	AreaReductionQuarter float64 // α=1/4, 16MB cache, with ECC
	AreaReductionHalf    float64 // α=1/2
	DRAMEnergyReduction  float64 // single-core mean, DBI+AWB+CLB vs baseline
}

// AreaPower reproduces the Section 6.3 area and energy claims: ~8%/5%
// cache area reduction for α=1/4 and 1/2 at 16MB, and the DRAM energy
// reduction from higher row hit rates.
func AreaPower(o Options) (*AreaPowerResult, error) {
	cfg16 := config.PaperWithL3PerCore(8, config.DBIAWBCLB, 2<<20)
	bits, sram := areamodel.DefaultBits(), areamodel.DefaultSRAM()
	res := &AreaPowerResult{}
	d := cfg16.DBI
	res.AreaReductionQuarter = areamodel.CacheAreaReduction(bits, sram, cfg16.L3, d)
	d.AlphaNum, d.AlphaDen = 1, 2
	res.AreaReductionHalf = areamodel.CacheAreaReduction(bits, sram, cfg16.L3, d)

	energy := areamodel.DefaultDRAMEnergy()
	benches := table6Benches(o.Quick)
	var cells []simCell
	for _, b := range benches {
		cells = append(cells, o.singleCell("area", config.Baseline, b))
		cells = append(cells, o.singleCell("area", config.DBIAWBCLB, b))
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	var ratios []float64
	for i := range benches {
		base, dbi := rs[2*i], rs[2*i+1]
		eb := energy.EnergyFromCounts(base.MemActivates, base.MemReads, base.MemWrites)
		ed := energy.EnergyFromCounts(dbi.MemActivates, dbi.MemReads, dbi.MemWrites)
		if eb > 0 {
			// Normalize per measured instruction so run lengths compare.
			ebPI := eb / float64(base.TotalInstructions)
			edPI := ed / float64(dbi.TotalInstructions)
			ratios = append(ratios, edPI/ebPI)
		}
	}
	res.DRAMEnergyReduction = 1 - stats.GeoMean(ratios)
	w := o.out()
	fprintf(w, "\nSection 6.3: area and energy\n")
	fprintf(w, "cache area reduction (16MB, ECC): α=1/4 %.1f%%, α=1/2 %.1f%%\n",
		100*res.AreaReductionQuarter, 100*res.AreaReductionHalf)
	fprintf(w, "DRAM energy change (DBI+AWB+CLB vs baseline): %+.1f%%\n",
		-100*res.DRAMEnergyReduction)
	return res, nil
}
