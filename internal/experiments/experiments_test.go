package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/sweep"
)

// tiny returns options with the smallest budgets that still exercise the
// mechanisms, for unit-testing the runners themselves.
func tiny() Options {
	return Options{Quick: true, Seed: 7}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.out() == nil {
		t.Fatal("nil writer not defaulted")
	}
	if o.seed() != 42 {
		t.Fatal("seed default wrong")
	}
	w, m := o.singleBudgets()
	if w == 0 || m == 0 {
		t.Fatal("zero budgets")
	}
	qw, _ := Options{Quick: true}.singleBudgets()
	if qw >= w {
		t.Fatal("quick budgets not smaller")
	}
}

func TestTable4And5Render(t *testing.T) {
	var buf bytes.Buffer
	rows := Table4(Options{Out: &buf})
	if len(rows) != 2 {
		t.Fatalf("Table4 rows = %d", len(rows))
	}
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("Table 4 not rendered")
	}
	buf.Reset()
	rows5 := Table5(Options{Out: &buf})
	if len(rows5) != 4 {
		t.Fatalf("Table5 rows = %d", len(rows5))
	}
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("Table 5 not rendered")
	}
}

func TestCaseStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	o := tiny()
	o.Out = &buf
	res, err := CaseStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WS) != 5 {
		t.Fatalf("WS entries = %d", len(res.WS))
	}
	for m, ws := range res.WS {
		if ws <= 0 {
			t.Fatalf("%v WS = %v", m, ws)
		}
	}
	// The paper's case-study ordering: every DBI variant beats baseline.
	if res.WS[config.DBIAWBCLB] <= res.WS[config.Baseline] {
		t.Fatal("DBI+AWB+CLB did not beat baseline on the case study")
	}
	if !strings.Contains(buf.String(), "case study") {
		t.Fatal("not rendered")
	}
}

func TestCLBSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := CLBSensitivity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 3 {
		t.Fatalf("thresholds = %d", len(res.IPC))
	}
	// Section 6.4: no significant difference across reasonable values.
	if res.Spread > 0.15 {
		t.Fatalf("CLB spread %v too large", res.Spread)
	}
}

func TestDBIPolicyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := DBIPolicy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GMeanIPC) != 5 {
		t.Fatalf("policies = %d", len(res.GMeanIPC))
	}
	lrw := res.GMeanIPC[config.DBILRW]
	if lrw <= 0 {
		t.Fatal("LRW IPC zero")
	}
	// Paper: LRW comparable to or better than the others. Allow 10%
	// slack for the scaled configuration.
	for pol, ipc := range res.GMeanIPC {
		if ipc > lrw*1.10 {
			t.Fatalf("%v (%.4f) clearly beats LRW (%.4f)", pol, ipc, lrw)
		}
	}
}

func TestAreaPowerRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := AreaPower(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaReductionQuarter < 0.05 || res.AreaReductionQuarter > 0.11 {
		t.Fatalf("area reduction α=1/4 = %v, want ≈0.08", res.AreaReductionQuarter)
	}
	if res.AreaReductionHalf >= res.AreaReductionQuarter {
		t.Fatal("α=1/2 must save less area")
	}
	// Row-hit gains must reduce DRAM energy on the write-heavy subset.
	if res.DRAMEnergyReduction <= 0 {
		t.Fatalf("DRAM energy reduction = %v, want positive", res.DRAMEnergyReduction)
	}
}

func TestMixesFor(t *testing.T) {
	o := tiny()
	mixes := o.mixesFor(4)
	if len(mixes) == 0 {
		t.Fatal("no mixes")
	}
	for _, m := range mixes {
		if len(m.Benches) != 4 {
			t.Fatalf("%s: %d benches", m.Name, len(m.Benches))
		}
	}
	full := Options{Seed: 7}
	if len(full.mixesFor(2)) < len(mixes) {
		t.Fatal("full mode has fewer mixes than quick")
	}
}

func TestFlushExperiment(t *testing.T) {
	var buf bytes.Buffer
	o := tiny()
	o.Out = &buf
	res, err := Flush(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1 {
		t.Fatalf("DBI flush speedup = %v, want > 1", res.Speedup)
	}
	if res.TagWalkLookups <= res.DBIWalkLookups {
		t.Fatal("tag walk should need more lookups than the DBI walk")
	}
	if !strings.Contains(buf.String(), "flush") {
		t.Fatal("not rendered")
	}
}

// heapEngineCLBGolden holds the CLBSensitivity(tiny()) results captured
// on the seed checkout's container/heap scheduler, before the timing
// wheel replaced it. TestParallelMatchesSequential checks the current
// engine against these values, extending the parallel==sequential
// identity to a heap-vs-wheel identity: the scheduler rewrite must not
// perturb a single bit of any experiment's results.
var heapEngineCLBGolden = struct {
	ipc    map[float64]float64
	spread float64
}{
	ipc: map[float64]float64{
		0.50: 0.3521072965004075,
		0.75: 0.367866969931133,
		0.95: 0.367720995425422,
	},
	spread: 0.04475815635563585,
}

// TestParallelMatchesSequential is the harness's core invariant: a
// sweep fanned out over many workers must produce bit-identical
// results to the sequential path, because per-cell seeds depend only
// on cell identity, never on scheduling. It also pins both paths to
// the heap-scheduler golden above (heap-vs-wheel identity).
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seq := tiny()
	seq.Parallel = 1
	par := tiny()
	par.Parallel = 4
	a, err := CLBSensitivity(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CLBSensitivity(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IPC) != len(b.IPC) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.IPC), len(b.IPC))
	}
	for th, ipc := range a.IPC {
		if b.IPC[th] != ipc {
			t.Fatalf("threshold %.2f: sequential IPC %v != parallel IPC %v", th, ipc, b.IPC[th])
		}
	}
	if a.Spread != b.Spread {
		t.Fatalf("spread differs: %v vs %v", a.Spread, b.Spread)
	}
	if len(a.IPC) != len(heapEngineCLBGolden.ipc) {
		t.Fatalf("cell count %d differs from heap-engine golden %d",
			len(a.IPC), len(heapEngineCLBGolden.ipc))
	}
	for th, want := range heapEngineCLBGolden.ipc {
		if got := a.IPC[th]; got != want {
			t.Errorf("threshold %.2f: IPC %v differs from heap-engine golden %v", th, got, want)
		}
	}
	if a.Spread != heapEngineCLBGolden.spread {
		t.Errorf("spread %v differs from heap-engine golden %v", a.Spread, heapEngineCLBGolden.spread)
	}
}

// TestRecorderCapturesCells checks that every simulation cell of a
// sweep lands in the JSON recorder with its metrics and timing.
func TestRecorderCapturesCells(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := tiny()
	o.Parallel = 2
	o.Recorder = &sweep.Recorder{}
	if _, err := CLBSensitivity(o); err != nil {
		t.Fatal(err)
	}
	recs := o.Recorder.Records()
	if len(recs) != 9 { // 3 thresholds x 3 benchmarks
		t.Fatalf("recorded %d cells, want 9", len(recs))
	}
	for _, r := range recs {
		if r.Experiment != "clbsens" || r.Benchmark == "" || r.Param == "" {
			t.Fatalf("incomplete record %+v", r)
		}
		if r.Metrics["ipc_core0"] <= 0 {
			t.Fatalf("record %s missing ipc metric", r.Key)
		}
		if r.Seed != o.seed() {
			t.Fatalf("record %s seed %d, want base seed %d (run-0 cell)", r.Key, r.Seed, o.seed())
		}
	}
}

func TestFig6OrderingCheck(t *testing.T) {
	res := &Fig6Result{GMeanIPC: map[config.Mechanism]float64{
		config.DBIAWBCLB: 0.95, config.DBIAWB: 0.94, config.DAWB: 0.93,
		config.VWQ: 0.92, config.TADIP: 0.91,
	}}
	if err := res.CheckPaperOrdering(); err != nil {
		t.Fatalf("valid ordering rejected: %v", err)
	}
	res.GMeanIPC[config.VWQ] = 0.94
	if err := res.CheckPaperOrdering(); err == nil {
		t.Fatal("violated ordering accepted")
	}
	delete(res.GMeanIPC, config.TADIP)
	if err := res.CheckPaperOrdering(); err == nil {
		t.Fatal("incomplete sweep accepted")
	}
}

func TestUniqueBenches(t *testing.T) {
	got := uniqueBenches([][]string{{"a", "b"}, {"b", "c"}})
	if len(got) != 3 {
		t.Fatalf("unique = %v", got)
	}
}
