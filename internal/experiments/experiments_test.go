package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dbisim/internal/config"
)

// tiny returns options with the smallest budgets that still exercise the
// mechanisms, for unit-testing the runners themselves.
func tiny() Options {
	return Options{Quick: true, Seed: 7}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.out() == nil {
		t.Fatal("nil writer not defaulted")
	}
	if o.seed() != 42 {
		t.Fatal("seed default wrong")
	}
	w, m := o.singleBudgets()
	if w == 0 || m == 0 {
		t.Fatal("zero budgets")
	}
	qw, _ := Options{Quick: true}.singleBudgets()
	if qw >= w {
		t.Fatal("quick budgets not smaller")
	}
}

func TestTable4And5Render(t *testing.T) {
	var buf bytes.Buffer
	rows := Table4(Options{Out: &buf})
	if len(rows) != 2 {
		t.Fatalf("Table4 rows = %d", len(rows))
	}
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("Table 4 not rendered")
	}
	buf.Reset()
	rows5 := Table5(Options{Out: &buf})
	if len(rows5) != 4 {
		t.Fatalf("Table5 rows = %d", len(rows5))
	}
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("Table 5 not rendered")
	}
}

func TestCaseStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	o := tiny()
	o.Out = &buf
	res, err := CaseStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WS) != 5 {
		t.Fatalf("WS entries = %d", len(res.WS))
	}
	for m, ws := range res.WS {
		if ws <= 0 {
			t.Fatalf("%v WS = %v", m, ws)
		}
	}
	// The paper's case-study ordering: every DBI variant beats baseline.
	if res.WS[config.DBIAWBCLB] <= res.WS[config.Baseline] {
		t.Fatal("DBI+AWB+CLB did not beat baseline on the case study")
	}
	if !strings.Contains(buf.String(), "case study") {
		t.Fatal("not rendered")
	}
}

func TestCLBSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := CLBSensitivity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 3 {
		t.Fatalf("thresholds = %d", len(res.IPC))
	}
	// Section 6.4: no significant difference across reasonable values.
	if res.Spread > 0.15 {
		t.Fatalf("CLB spread %v too large", res.Spread)
	}
}

func TestDBIPolicyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := DBIPolicy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GMeanIPC) != 5 {
		t.Fatalf("policies = %d", len(res.GMeanIPC))
	}
	lrw := res.GMeanIPC[config.DBILRW]
	if lrw <= 0 {
		t.Fatal("LRW IPC zero")
	}
	// Paper: LRW comparable to or better than the others. Allow 10%
	// slack for the scaled configuration.
	for pol, ipc := range res.GMeanIPC {
		if ipc > lrw*1.10 {
			t.Fatalf("%v (%.4f) clearly beats LRW (%.4f)", pol, ipc, lrw)
		}
	}
}

func TestAreaPowerRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := AreaPower(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaReductionQuarter < 0.05 || res.AreaReductionQuarter > 0.11 {
		t.Fatalf("area reduction α=1/4 = %v, want ≈0.08", res.AreaReductionQuarter)
	}
	if res.AreaReductionHalf >= res.AreaReductionQuarter {
		t.Fatal("α=1/2 must save less area")
	}
	// Row-hit gains must reduce DRAM energy on the write-heavy subset.
	if res.DRAMEnergyReduction <= 0 {
		t.Fatalf("DRAM energy reduction = %v, want positive", res.DRAMEnergyReduction)
	}
}

func TestMixesFor(t *testing.T) {
	o := tiny()
	mixes := o.mixesFor(4)
	if len(mixes) == 0 {
		t.Fatal("no mixes")
	}
	for _, m := range mixes {
		if len(m.Benches) != 4 {
			t.Fatalf("%s: %d benches", m.Name, len(m.Benches))
		}
	}
	full := Options{Seed: 7}
	if len(full.mixesFor(2)) < len(mixes) {
		t.Fatal("full mode has fewer mixes than quick")
	}
}

func TestFlushExperiment(t *testing.T) {
	var buf bytes.Buffer
	o := tiny()
	o.Out = &buf
	res, err := Flush(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1 {
		t.Fatalf("DBI flush speedup = %v, want > 1", res.Speedup)
	}
	if res.TagWalkLookups <= res.DBIWalkLookups {
		t.Fatal("tag walk should need more lookups than the DBI walk")
	}
	if !strings.Contains(buf.String(), "flush") {
		t.Fatal("not rendered")
	}
}

func TestUniqueBenches(t *testing.T) {
	got := uniqueBenches([][]string{{"a", "b"}, {"b", "c"}})
	if len(got) != 3 {
		t.Fatalf("unique = %v", got)
	}
}
