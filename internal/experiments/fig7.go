package experiments

import (
	"sort"

	"dbisim/internal/config"
	"dbisim/internal/stats"
	"dbisim/internal/system"
	"dbisim/internal/workloads"
)

// mixesFor returns the workload mixes for a core count: a representative
// fixed set in Quick mode, a seeded sample otherwise. The paper's full
// counts (102/259/120) are available by raising sample.
func (o Options) mixesFor(cores int) []workloads.Mix {
	if o.Quick {
		return workloads.Representative(cores)[:4]
	}
	n := 12
	return workloads.Generate(cores, n, o.seed())
}

// Fig7Result holds the multi-core weighted speedups of Figure 7.
type Fig7Result struct {
	Cores      []int
	Mechanisms []config.Mechanism
	// AvgWS[cores][mechanism] is the mean weighted speedup across mixes.
	AvgWS map[int]map[config.Mechanism]float64
}

// Improvement returns a mechanism's average WS improvement over the
// baseline for a core count.
func (r *Fig7Result) Improvement(cores int, m config.Mechanism) float64 {
	base := r.AvgWS[cores][config.Baseline]
	if base == 0 {
		return 0
	}
	return r.AvgWS[cores][m]/base - 1
}

// Fig7 reproduces Figure 7: average weighted speedup for 2-, 4- and
// 8-core systems under each mechanism.
func Fig7(o Options) (*Fig7Result, error) {
	res := &Fig7Result{
		Cores:      []int{2, 4, 8},
		Mechanisms: fig7Mechanisms(),
		AvgWS:      map[int]map[config.Mechanism]float64{},
	}
	w := o.out()
	for _, cores := range res.Cores {
		mixes := o.mixesFor(cores)
		alone, err := o.aloneIPC("fig7", uniqueBenches(mixBenches(mixes)))
		if err != nil {
			return nil, err
		}
		var cells []simCell
		for _, mech := range res.Mechanisms {
			for _, mix := range mixes {
				cells = append(cells, o.multiCell("fig7", mech, mix.Name, mix.Benches))
			}
		}
		rs, err := o.runCells(cells)
		if err != nil {
			return nil, err
		}
		res.AvgWS[cores] = map[config.Mechanism]float64{}
		i := 0
		for _, mech := range res.Mechanisms {
			var wss []float64
			for range mixes {
				wss = append(wss, system.WeightedSpeedup(rs[i].PerCore, alone))
				i++
			}
			res.AvgWS[cores][mech] = stats.Mean(wss)
		}
	}
	fprintf(w, "\nFigure 7: Multi-core weighted speedup (mean over mixes)\n")
	fprintf(w, "%-12s", "mechanism")
	for _, c := range res.Cores {
		fprintf(w, "%10d-core", c)
	}
	fprintf(w, "\n")
	for _, mech := range res.Mechanisms {
		fprintf(w, "%-12s", mech)
		for _, c := range res.Cores {
			fprintf(w, "%15.3f", res.AvgWS[c][mech])
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nWS improvement of DBI+AWB+CLB over baseline: ")
	for _, c := range res.Cores {
		fprintf(w, "%d-core %+.0f%%  ", c, 100*res.Improvement(c, config.DBIAWBCLB))
	}
	fprintf(w, "\n")
	return res, nil
}

// Fig8Result is the per-workload normalized weighted speedup S-curve of
// Figure 8 (4-core).
type Fig8Result struct {
	// Normalized[mechanism] is the per-mix WS normalized to baseline,
	// sorted ascending by the DBI+AWB+CLB improvement (the paper's
	// x-axis ordering).
	Normalized map[config.Mechanism][]float64
	Mixes      int
}

// Fig8 reproduces Figure 8: per-workload 4-core weighted speedup of DAWB
// and DBI+AWB+CLB normalized to baseline, sorted by DBI improvement.
func Fig8(o Options) (*Fig8Result, error) {
	mixes := o.mixesFor(4)
	if !o.Quick {
		mixes = workloads.Generate(4, 24, o.seed())
	}
	alone, err := o.aloneIPC("fig8", uniqueBenches(mixBenches(mixes)))
	if err != nil {
		return nil, err
	}
	mechs := []config.Mechanism{config.Baseline, config.DAWB, config.DBIAWBCLB}
	var cells []simCell
	for _, mech := range mechs {
		for _, mix := range mixes {
			cells = append(cells, o.multiCell("fig8", mech, mix.Name, mix.Benches))
		}
	}
	rs, err := o.runCells(cells)
	if err != nil {
		return nil, err
	}
	ws := map[config.Mechanism][]float64{}
	i := 0
	for _, mech := range mechs {
		for range mixes {
			ws[mech] = append(ws[mech], system.WeightedSpeedup(rs[i].PerCore, alone))
			i++
		}
	}
	res := &Fig8Result{Normalized: map[config.Mechanism][]float64{}, Mixes: len(mixes)}
	type row struct{ dawb, dbi float64 }
	rows := make([]row, len(mixes))
	for i := range mixes {
		base := ws[config.Baseline][i]
		if base == 0 {
			continue
		}
		rows[i] = row{dawb: ws[config.DAWB][i] / base, dbi: ws[config.DBIAWBCLB][i] / base}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dbi < rows[j].dbi })
	for _, r := range rows {
		res.Normalized[config.DAWB] = append(res.Normalized[config.DAWB], r.dawb)
		res.Normalized[config.DBIAWBCLB] = append(res.Normalized[config.DBIAWBCLB], r.dbi)
	}
	w := o.out()
	fprintf(w, "\nFigure 8: 4-core per-workload WS normalized to baseline (sorted)\n")
	fprintf(w, "%-6s %10s %14s\n", "mix#", "DAWB", "DBI+AWB+CLB")
	for i := range rows {
		fprintf(w, "%-6d %10.3f %14.3f\n", i, rows[i].dawb, rows[i].dbi)
	}
	return res, nil
}

// Table3Result holds the paper's Table 3 metrics.
type Table3Result struct {
	Cores []int
	// All values are fractional improvements of DBI+AWB+CLB vs baseline
	// (MaxSlowdown is a reduction).
	WSImprovement map[int]float64
	ITImprovement map[int]float64
	HSImprovement map[int]float64
	MSReduction   map[int]float64
}

// Table3 reproduces Table 3: weighted speedup, instruction throughput
// and harmonic speedup improvements plus maximum slowdown reduction of
// DBI+AWB+CLB over the baseline for 2/4/8-core systems.
func Table3(o Options) (*Table3Result, error) {
	res := &Table3Result{
		Cores:         []int{2, 4, 8},
		WSImprovement: map[int]float64{},
		ITImprovement: map[int]float64{},
		HSImprovement: map[int]float64{},
		MSReduction:   map[int]float64{},
	}
	for _, cores := range res.Cores {
		mixes := o.mixesFor(cores)
		alone, err := o.aloneIPC("tab3", uniqueBenches(mixBenches(mixes)))
		if err != nil {
			return nil, err
		}
		var cells []simCell
		for _, mix := range mixes {
			cells = append(cells, o.multiCell("tab3", config.Baseline, mix.Name, mix.Benches))
			cells = append(cells, o.multiCell("tab3", config.DBIAWBCLB, mix.Name, mix.Benches))
		}
		rs, err := o.runCells(cells)
		if err != nil {
			return nil, err
		}
		var wsB, wsD, itB, itD, hsB, hsD, msB, msD []float64
		for i := range mixes {
			rb, rd := rs[2*i], rs[2*i+1]
			wsB = append(wsB, system.WeightedSpeedup(rb.PerCore, alone))
			wsD = append(wsD, system.WeightedSpeedup(rd.PerCore, alone))
			itB = append(itB, system.InstructionThroughput(rb.PerCore))
			itD = append(itD, system.InstructionThroughput(rd.PerCore))
			hsB = append(hsB, system.HarmonicSpeedup(rb.PerCore, alone))
			hsD = append(hsD, system.HarmonicSpeedup(rd.PerCore, alone))
			msB = append(msB, system.MaxSlowdown(rb.PerCore, alone))
			msD = append(msD, system.MaxSlowdown(rd.PerCore, alone))
		}
		res.WSImprovement[cores] = stats.Mean(wsD)/stats.Mean(wsB) - 1
		res.ITImprovement[cores] = stats.Mean(itD)/stats.Mean(itB) - 1
		res.HSImprovement[cores] = stats.Mean(hsD)/stats.Mean(hsB) - 1
		res.MSReduction[cores] = 1 - stats.Mean(msD)/stats.Mean(msB)
	}
	w := o.out()
	fprintf(w, "\nTable 3: DBI+AWB+CLB vs baseline\n")
	fprintf(w, "%-28s", "metric")
	for _, c := range res.Cores {
		fprintf(w, "%9d-core", c)
	}
	fprintf(w, "\n")
	rows := []struct {
		name string
		m    map[int]float64
	}{
		{"Weighted speedup improv.", res.WSImprovement},
		{"Instr. throughput improv.", res.ITImprovement},
		{"Harmonic speedup improv.", res.HSImprovement},
		{"Maximum slowdown reduction", res.MSReduction},
	}
	for _, r := range rows {
		fprintf(w, "%-28s", r.name)
		for _, c := range res.Cores {
			fprintf(w, "%13.0f%%", 100*r.m[c])
		}
		fprintf(w, "\n")
	}
	return res, nil
}
