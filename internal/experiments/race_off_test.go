//go:build !race

package experiments

// raceEnabled lets simulation-heavy, concurrency-free tests opt out of
// -race runs (the detector multiplies their runtime without adding
// coverage: they assert determinism, not synchronization).
const raceEnabled = false
