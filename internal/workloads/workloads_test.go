package workloads

import (
	"testing"

	"dbisim/internal/trace"
)

func TestPaperCounts(t *testing.T) {
	if PaperCount(2) != 102 || PaperCount(4) != 259 || PaperCount(8) != 120 {
		t.Fatal("paper workload counts wrong")
	}
	if PaperCount(3) != 32 {
		t.Fatal("default count wrong")
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	a := Generate(4, 20, 7)
	b := Generate(4, 20, 7)
	if len(a) != 20 {
		t.Fatalf("got %d mixes", len(a))
	}
	valid := map[string]bool{}
	for _, n := range trace.Benchmarks() {
		valid[n] = true
	}
	for i := range a {
		if len(a[i].Benches) != 4 {
			t.Fatalf("mix %d has %d benches", i, len(a[i].Benches))
		}
		for j, bench := range a[i].Benches {
			if !valid[bench] {
				t.Fatalf("unknown benchmark %q", bench)
			}
			if a[i].Benches[j] != b[i].Benches[j] {
				t.Fatal("generation not deterministic")
			}
		}
		if a[i].Name == "" {
			t.Fatal("unnamed mix")
		}
	}
	c := Generate(4, 20, 8)
	same := true
	for i := range a {
		for j := range a[i].Benches {
			if a[i].Benches[j] != c[i].Benches[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical mixes")
	}
}

func TestGenerateCoversIntensityClasses(t *testing.T) {
	mixes := Generate(8, 60, 3)
	seen := map[string]bool{}
	for _, m := range mixes {
		for _, b := range m.Benches {
			seen[b] = true
		}
	}
	// A broad sweep should touch most benchmark models.
	if len(seen) < 10 {
		t.Fatalf("only %d distinct benchmarks across 60 8-core mixes", len(seen))
	}
}

func TestRepresentative(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		mixes := Representative(cores)
		if len(mixes) == 0 {
			t.Fatal("no representative mixes")
		}
		for _, m := range mixes {
			if len(m.Benches) != cores {
				t.Fatalf("%s has %d benches, want %d", m.Name, len(m.Benches), cores)
			}
			for _, b := range m.Benches {
				if _, err := trace.ByName(b); err != nil {
					t.Fatalf("%s: %v", m.Name, err)
				}
			}
		}
	}
}
