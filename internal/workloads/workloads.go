// Package workloads generates the multiprogrammed workload mixes of the
// paper's multi-core evaluation (Section 5): benchmarks are classified
// into nine categories by read and write intensity (low/medium/high ×
// low/medium/high) and mixes are sampled so that every combination of
// read- and write-intensity pressure is represented. The paper evaluates
// 102 2-core, 259 4-core and 120 8-core mixes.
package workloads

import (
	"fmt"
	"math/rand"

	"dbisim/internal/trace"
)

// Mix is one multiprogrammed workload: one benchmark model per core.
type Mix struct {
	Name    string
	Benches []string
}

// PaperCount returns the number of mixes the paper evaluates for a core
// count (102/259/120 for 2/4/8 cores).
func PaperCount(cores int) int {
	switch cores {
	case 2:
		return 102
	case 4:
		return 259
	case 8:
		return 120
	}
	return 32
}

// Generate returns count deterministic mixes for the given core count.
// Each mix draws its benchmarks from intensity classes chosen to sweep
// read and write pressure, mirroring the paper's workload construction.
func Generate(cores, count int, seed int64) []Mix {
	rng := rand.New(rand.NewSource(seed))
	classes := nonEmptyClasses()
	mixes := make([]Mix, 0, count)
	for i := 0; i < count; i++ {
		benches := make([]string, cores)
		for c := 0; c < cores; c++ {
			// Cycle the class emphasis across mixes so low/medium/high
			// read and write intensities all appear.
			class := classes[(i+c*7+rng.Intn(len(classes)))%len(classes)]
			benches[c] = class[rng.Intn(len(class))]
		}
		mixes = append(mixes, Mix{
			Name:    fmt.Sprintf("%dcore-%03d", cores, i),
			Benches: benches,
		})
	}
	return mixes
}

// nonEmptyClasses lists the benchmark names of each populated
// read×write intensity class.
func nonEmptyClasses() [][]string {
	var out [][]string
	for _, r := range []trace.Intensity{trace.Low, trace.Medium, trace.High} {
		for _, w := range []trace.Intensity{trace.Low, trace.Medium, trace.High} {
			if names := trace.ByIntensity(r, w); len(names) > 0 {
				out = append(out, names)
			}
		}
	}
	return out
}

// Representative returns a small fixed set of mixes that spans the
// intensity space — the CI-scale stand-in for the full sweep. The mixes
// are hand-picked: write-heavy, read-heavy, mixed, and cache-friendly
// combinations.
func Representative(cores int) []Mix {
	pools := [][]string{
		{"lbm", "GemsFDTD", "stream", "milc"},         // write-heavy
		{"mcf", "libquantum", "soplex", "omnetpp"},    // read-heavy
		{"cactusADM", "leslie3d", "sphinx3", "milc"},  // medium
		{"bzip2", "astar", "bwaves", "sphinx3"},       // cache-friendly
		{"GemsFDTD", "libquantum", "lbm", "mcf"},      // contention case study
		{"stream", "bzip2", "omnetpp", "leslie3d"},    // mixed pressure
		{"milc", "soplex", "GemsFDTD", "astar"},       // write+read mix
		{"libquantum", "lbm", "sphinx3", "cactusADM"}, // bypass-friendly
	}
	var out []Mix
	for i, pool := range pools {
		benches := make([]string, cores)
		for c := 0; c < cores; c++ {
			benches[c] = pool[c%len(pool)]
		}
		out = append(out, Mix{
			Name:    fmt.Sprintf("%dcore-rep%d", cores, i),
			Benches: benches,
		})
	}
	return out
}
