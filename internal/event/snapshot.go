package event

import "math/bits"

// EngineState is a checkpoint of an Engine: the clock, the counters the
// determinism contract depends on (sequence numbers, fired count), and
// every live pending event as an (at, seq, fn) triple. The callbacks
// are captured as function values, so a checkpoint is only meaningful
// for restoring into the same component graph that scheduled them —
// the closures reference pooled records and prebound methods of those
// very components. The system layer enforces that ownership rule.
//
// The zero value is ready; Snapshot reuses the event buffer across
// captures, so steady-state checkpointing does not allocate.
type EngineState struct {
	now       Cycle
	seq       uint64
	fired     uint64
	stopped   bool
	wheelBase Cycle
	events    []eventState
}

type eventState struct {
	at  Cycle
	seq uint64
	fn  Func
}

// Pending reports how many live events the checkpoint holds.
func (st *EngineState) Pending() int { return len(st.events) }

// Snapshot captures the engine's clock and pending schedule into st.
// Canceled records are skipped — they are behaviorally inert and would
// only be swept out by pop anyway. The walk visits occupied wheel slots
// via the occupancy bitmaps, so its cost is O(pending), not O(wheel).
func (e *Engine) Snapshot(st *EngineState) {
	st.now, st.seq, st.fired = e.now, e.seq, e.fired
	st.stopped = e.stopped
	st.wheelBase = e.wheelBase
	st.events = st.events[:0]
	add := func(r *record) {
		if !r.canceled {
			st.events = append(st.events, eventState{r.at, r.seq, r.fn})
		}
	}
	for _, r := range e.front.recs {
		add(r)
	}
	for level := 0; level < wheelLevels; level++ {
		for w := range e.occ[level] {
			word := e.occ[level][w]
			for word != 0 {
				slot := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				for r := e.wheel[level][slot].head; r != nil; r = r.next {
					add(r)
				}
			}
		}
	}
	for _, r := range e.overflow.recs {
		add(r)
	}
}

// Restore rewinds the engine to the checkpoint: the current schedule is
// drained (recycling its records exactly like Reset, so stale Handles
// go inert), the clock, sequence and fired counters come back, and the
// saved events re-enter the wheel against the saved cursor with their
// original sequence numbers. Because events fire in global (at, seq)
// order regardless of which wheel structure holds them, the restored
// engine fires the identical event sequence the snapshotted one would
// have — the property the fork-vs-scratch differential tests pin.
func (e *Engine) Restore(st *EngineState) {
	e.Reset()
	e.now, e.seq, e.fired = st.now, st.seq, st.fired
	e.stopped = st.stopped
	e.wheelBase = st.wheelBase
	e.pending = len(st.events)
	for i := range st.events {
		ev := &st.events[i]
		r := e.newRecord()
		r.at, r.seq, r.fn = ev.at, ev.seq, ev.fn
		e.place(r)
	}
}
