package event

import (
	"reflect"
	"testing"
)

// script runs a fixed scheduling scenario — same-cycle FIFO ties, all
// three wheel horizons, the overflow list, a cancellation, a recurring
// tick — and returns the firing order.
func script(e *Engine) []int {
	var order []int
	mark := func(id int) Func { return func() { order = append(order, id) } }
	e.After(3, mark(0))
	e.After(3, mark(1)) // same-cycle tie: FIFO with 0
	e.At(300, mark(2))  // level-1 horizon
	e.At(70_000, mark(3))
	e.At(20_000_000, mark(4)) // beyond level 2: overflow
	h := e.After(5, mark(99))
	h.Cancel()
	n := 0
	cancel := e.Every(1000, func() {
		order = append(order, 1000+n)
		n++
		if n == 3 {
			e.Stop()
		}
	})
	defer cancel()
	e.Run()
	return order
}

// TestEngineResetReplaysIdentically fills an engine with events across
// every internal structure, resets it mid-flight, and requires the
// replayed script to fire in exactly the order a factory-fresh engine
// produces — with zeroed clock, fired counter, and pending count.
func TestEngineResetReplaysIdentically(t *testing.T) {
	var fresh Engine
	want := script(&fresh)

	var e Engine
	// Dirty the engine: park events everywhere, fire a few, then stop.
	for i := 0; i < 10; i++ {
		e.After(Cycle(1+i*i*i*i), func() {})
	}
	e.At(50_000_000, func() {})
	e.RunUntil(100)

	e.Reset()
	if e.Now() != 0 || e.Fired() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%d fired=%d pending=%d, want all zero",
			e.Now(), e.Fired(), e.Pending())
	}
	if got := script(&e); !reflect.DeepEqual(got, want) {
		t.Errorf("replay after Reset fired %v, fresh engine fired %v", got, want)
	}
}

// TestEngineResetTwice guards the trivial but easy-to-break case:
// resetting an already-reset (or never-used) engine is a no-op.
func TestEngineResetTwice(t *testing.T) {
	var e Engine
	e.Reset()
	e.Reset()
	fired := false
	e.After(1, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("event did not fire after double Reset")
	}
}
