package event

import "testing"

// TestSteadyStateDoesNotAllocate pins the zero-allocation contract of
// the scheduling hot paths after the sorted-list columnarization: the
// chained schedule-fire loop, and the overflow path (insert beyond the
// wheel horizon, refill, fire) once the column capacities have grown.
func TestSteadyStateDoesNotAllocate(t *testing.T) {
	var e Engine
	if n := testing.AllocsPerRun(1000, func() {
		e.After(3, func() {})
		e.Step()
	}); n != 0 {
		t.Fatalf("schedule-fire chain allocates %.1f per op", n)
	}

	// Overflow steady state: each op parks one event past the 2^24
	// horizon (sorted-list insert), then drains it (refill + fire).
	const horizon = Cycle(1) << (wheelLevels * wheelBits)
	if n := testing.AllocsPerRun(1000, func() {
		e.At(e.Now()+horizon+5, func() {})
		e.Step()
	}); n != 0 {
		t.Fatalf("overflow insert/refill allocates %.1f per op", n)
	}
}
