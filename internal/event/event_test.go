package event

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(10, func() { got = append(got, 10) })
	e.At(5, func() { got = append(got, 5) })
	e.At(7, func() { got = append(got, 7) })
	e.Run()
	want := []int{5, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-cycle events fired out of scheduling order: %v", got)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.At(1, nil)
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.At(3, func() { fired++ })
	e.At(8, func() { fired++ })
	e.At(20, func() { fired++ })
	e.RunUntil(10)
	if fired != 2 {
		t.Fatalf("fired %d events by cycle 10, want 2", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want clock advanced to limit 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(25)
	if fired != 3 || e.Now() != 25 {
		t.Fatalf("after second RunUntil: fired=%d now=%d", fired, e.Now())
	}
}

func TestScheduleAfterChains(t *testing.T) {
	var e Engine
	var ticks []Cycle
	var step func()
	step = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(4, step)
		}
	}
	e.After(4, step)
	e.Run()
	for i, c := range ticks {
		if want := Cycle(4 * (i + 1)); c != want {
			t.Fatalf("tick %d at cycle %d, want %d", i, c, want)
		}
	}
}

func TestStop(t *testing.T) {
	var e Engine
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(Cycle(i), func() {
			fired++
			if fired == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d, want 3 after Stop", fired)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
}

func TestStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestFiredCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 17; i++ {
		e.At(Cycle(i), func() {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired = %d, want 17", e.Fired())
	}
}

func TestTicker(t *testing.T) {
	var e Engine
	count := 0
	var tk Ticker
	tk = Ticker{Engine: &e, Period: 3, Tick: func() {
		count++
		if count < 4 {
			tk.Arm()
		}
	}}
	tk.Arm()
	if !tk.Armed() {
		t.Fatal("ticker not armed after Arm")
	}
	e.Run()
	if count != 4 {
		t.Fatalf("ticked %d times, want 4", count)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d, want 12", e.Now())
	}
}

func TestTickerDisarm(t *testing.T) {
	var e Engine
	count := 0
	tk := Ticker{Engine: &e, Period: 2, Tick: func() { count++ }}
	tk.Arm()
	tk.Disarm()
	e.Run()
	if count != 0 {
		t.Fatalf("disarmed ticker still ticked %d times", count)
	}
}

func TestTickerDoubleArm(t *testing.T) {
	var e Engine
	count := 0
	tk := Ticker{Engine: &e, Period: 2, Tick: func() { count++ }}
	tk.Arm()
	tk.Arm() // must not schedule twice
	e.Run()
	if count != 1 {
		t.Fatalf("double Arm fired %d ticks, want 1", count)
	}
}

// Property: for any set of scheduled cycles, events fire in nondecreasing
// cycle order and the engine clock equals the max cycle at the end.
func TestQuickMonotonicClock(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		var fireOrder []Cycle
		var max Cycle
		for _, r := range raw {
			c := Cycle(r)
			if c > max {
				max = c
			}
			e.At(c, func() { fireOrder = append(fireOrder, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fireOrder); i++ {
			if fireOrder[i] < fireOrder[i-1] {
				return false
			}
		}
		return len(raw) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEveryFiresPeriodicallyUntilCancelled(t *testing.T) {
	var e Engine
	var fired []Cycle
	cancel := e.Every(10, func() { fired = append(fired, e.Now()) })
	e.At(35, func() { cancel() })
	e.At(100, func() {}) // keeps the clock advancing past the cancel
	e.Run()
	want := []Cycle{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if e.Pending() != 0 && e.Now() != 100 {
		t.Fatalf("engine did not drain: pending=%d now=%d", e.Pending(), e.Now())
	}
}

func TestEveryDoesNotReorderSameCycleEvents(t *testing.T) {
	// Two engines, one with a periodic sampler interleaved: the relative
	// order of the real events must be identical.
	run := func(sample bool) []int {
		var e Engine
		var order []int
		if sample {
			e.Every(5, func() {})
		}
		for i := 0; i < 20; i++ {
			i := i
			e.At(Cycle(5*(i%4)), func() { order = append(order, i) })
		}
		e.RunUntil(16) // the live periodic event means Run would never drain
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order perturbed at %d: %v vs %v", i, a, b)
		}
	}
}
