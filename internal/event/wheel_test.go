package event

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---- reference implementation: the original container/heap scheduler ----
//
// The differential tests below drive the timing wheel and this heap
// side by side with identical randomized schedules and assert the fire
// orders match exactly. The heap is the determinism-contract oracle:
// (at, seq) lexicographic order.

type refItem struct {
	at  Cycle
	seq uint64
	id  int
}

type refQueue []refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(refItem)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type refEngine struct {
	now Cycle
	seq uint64
	q   refQueue
}

func (e *refEngine) schedule(at Cycle, id int) {
	e.seq++
	heap.Push(&e.q, refItem{at: at, seq: e.seq, id: id})
}

func (e *refEngine) step() (int, bool) {
	if len(e.q) == 0 {
		return 0, false
	}
	it := heap.Pop(&e.q).(refItem)
	e.now = it.at
	return it.id, true
}

// TestDifferentialHeapVsWheel schedules a randomized workload into the
// wheel and the reference heap with identical (cycle, id) streams —
// including callbacks that schedule follow-up events, the pattern every
// simulator component uses — and asserts the two produce the identical
// fire order. Fixed seeds keep it reproducible.
func TestDifferentialHeapVsWheel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		ref := &refEngine{}
		var got, want []int
		nextID := 0

		// Delta distribution spanning all wheel levels and the overflow:
		// mostly near-future, a tail out past 2^24.
		delta := func() Cycle {
			switch rng.Intn(10) {
			case 0:
				return 0 // same cycle
			case 1, 2, 3, 4:
				return Cycle(rng.Intn(64)) // level 0
			case 5, 6:
				return Cycle(rng.Intn(1 << 12)) // level 1
			case 7:
				return Cycle(rng.Intn(1 << 20)) // level 2
			case 8:
				return Cycle(rng.Intn(1 << 26)) // overflow
			default:
				return Cycle(rng.Intn(1 << 16))
			}
		}

		var fire func(id int, chain int, d Cycle) Func
		fire = func(id, chain int, d Cycle) Func {
			return func() {
				got = append(got, id)
				if chain > 0 {
					// Schedule a follow-up from inside the callback, the
					// way cores and controllers chain their service loops.
					nid := nextID
					nextID++
					e.After(d, fire(nid, chain-1, d))
				}
			}
		}

		// Seed both schedulers with the same stream. The chained
		// follow-ups only exist on the wheel side, so mirror them into
		// the reference heap by replaying the deltas deterministically:
		// instead, keep it simple — drive both from one master schedule
		// where chains are pre-expanded using the reference clock.
		type ev struct {
			at Cycle
			id int
		}
		var master []ev
		var now Cycle
		for i := 0; i < 500; i++ {
			master = append(master, ev{at: now + delta(), id: nextID})
			nextID++
			if rng.Intn(4) == 0 && len(master) > 1 {
				// Occasionally advance "now" to the earliest unfired
				// event so later schedules interleave across windows.
				min := master[0].at
				for _, m := range master {
					if m.at < min {
						min = m.at
					}
				}
				if min > now {
					now = min
				}
			}
		}
		// Replay the master schedule into both engines in lockstep,
		// advancing each engine by firing events older than the next
		// schedule point.
		mi := 0
		pump := func(until Cycle) {
			for {
				if len(ref.q) == 0 || ref.q[0].at > until {
					break
				}
				id, _ := ref.step()
				want = append(want, id)
				if !e.Step() {
					t.Fatalf("seed %d: wheel empty while heap had events", seed)
				}
			}
		}
		for mi < len(master) {
			m := master[mi]
			mi++
			// Fire everything strictly before this event's schedule
			// "arrival" so both engines share the same now.
			at := m.at
			if at < ref.now {
				at = ref.now
			}
			ref.schedule(at, m.id)
			id := m.id
			e.At(at, func() { got = append(got, id) })
			if rng.Intn(3) == 0 {
				pump(ref.now + delta())
			}
		}
		pump(^Cycle(0) >> 1)
		for {
			id, ok := ref.step()
			if !ok {
				break
			}
			want = append(want, id)
			if !e.Step() {
				t.Fatalf("seed %d: wheel drained before heap", seed)
			}
		}
		if e.Step() {
			t.Fatalf("seed %d: wheel had extra events", seed)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, heap fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: fire order diverges at %d: wheel id %d, heap id %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialChainedSelfSchedule is a second differential that
// exercises the exact production pattern: callbacks rescheduling
// themselves and each other with pseudo-random deltas.
func TestDifferentialChainedSelfSchedule(t *testing.T) {
	for _, seed := range []int64{3, 21, 77} {
		wheelRng := rand.New(rand.NewSource(seed))
		heapRng := rand.New(rand.NewSource(seed))
		var e Engine
		ref := &refEngine{}
		var got, want []Cycle

		const chains = 8
		const hops = 200
		deltas := func(rng *rand.Rand) Cycle {
			// Mix of tiny, slot-boundary-straddling and huge hops.
			switch rng.Intn(6) {
			case 0:
				return 0
			case 1:
				return 1
			case 2:
				return Cycle(rng.Intn(300)) // straddles level-0/1 windows
			case 3:
				return Cycle(rng.Intn(70000)) // straddles level-1/2
			case 4:
				return Cycle(1<<24 + rng.Intn(1000)) // overflow
			default:
				return Cycle(rng.Intn(50))
			}
		}

		for c := 0; c < chains; c++ {
			var hop func(n int) Func
			hop = func(n int) Func {
				return func() {
					got = append(got, e.Now())
					if n > 0 {
						e.After(deltas(wheelRng), hop(n-1))
					}
				}
			}
			e.After(Cycle(c), hop(hops))
		}
		type refChain struct{ n int }
		chainsLeft := map[uint64]*refChain{}
		for c := 0; c < chains; c++ {
			ref.schedule(ref.now+Cycle(c), c)
			chainsLeft[ref.seq] = &refChain{n: hops}
		}
		for {
			if len(ref.q) == 0 {
				break
			}
			it := heap.Pop(&ref.q).(refItem)
			ref.now = it.at
			want = append(want, ref.now)
			rc := chainsLeft[it.seq]
			if rc.n > 0 {
				ref.schedule(ref.now+deltas(heapRng), it.id)
				chainsLeft[ref.seq] = &refChain{n: rc.n - 1}
			}
		}
		e.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d, heap fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: fire cycle diverges at %d: wheel %d, heap %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestSameCycleFIFOAcrossBuckets schedules same-cycle events whose
// routes through the wheel differ — some placed directly into level 0,
// some arriving by cascade from level 1 or 2, some via the overflow —
// and asserts schedule order is preserved at fire time.
func TestSameCycleFIFOAcrossBuckets(t *testing.T) {
	var e Engine
	const target = 100_000 // level-2 territory from cycle 0
	var got []int
	// First two go far out (level 2 now), scheduled early (low seq).
	e.At(target, func() { got = append(got, 0) })
	e.At(target, func() { got = append(got, 1) })
	// Walk the clock close to the target so later same-cycle schedules
	// land in inner levels with higher seq.
	e.At(target-300, func() {
		e.At(target, func() { got = append(got, 2) }) // level 1 at schedule time
	})
	e.At(target-10, func() {
		e.At(target, func() { got = append(got, 3) }) // level 0 at schedule time
	})
	e.At(target, func() { got = append(got, 4) }) // also level 2, seq after 0,1
	e.Run()
	// Schedule order at the target cycle by sequence number: 0 and 1
	// first, then 4 (scheduled before the helpers fired), then 2 and 3
	// (scheduled from inside the helper callbacks, so highest seq).
	if len(got) != 5 || got[0] != 0 || got[1] != 1 || got[2] != 4 || got[3] != 2 || got[4] != 3 {
		t.Fatalf("fire order %v, want [0 1 4 2 3] (schedule order at cycle %d)", got, target)
	}
}

// TestOverflowCascade exercises events beyond the 2^24-cycle wheel
// horizon: they must park in the overflow list, re-enter the wheel when
// the cursor reaches their window, and still fire in (at, seq) order.
func TestOverflowCascade(t *testing.T) {
	var e Engine
	var got []Cycle
	mark := func() { got = append(got, e.Now()) }
	far := Cycle(1) << 30
	e.At(far+5, mark)
	e.At(far, mark)
	e.At(3, mark)
	e.At(far+(1<<25), mark) // different top-level window than far
	e.Run()
	want := []Cycle{3, far, far + 5, far + (1 << 25)}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if e.Now() != far+(1<<25) {
		t.Fatalf("clock = %d, want %d", e.Now(), far+(1<<25))
	}
}

// TestCancelPending cancels events in every holding structure (level 0,
// outer levels, overflow) and checks they never fire and Pending drops.
func TestCancelPending(t *testing.T) {
	var e Engine
	fired := 0
	count := func() { fired++ }
	h0 := e.At(5, count)         // level 0
	h1 := e.At(5_000, count)     // level 1
	h2 := e.At(5_000_000, count) // level 2
	h3 := e.At(1<<30, count)     // overflow
	keep := e.At(10, count)      // stays
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	for _, h := range []Handle{h0, h1, h2, h3} {
		if !h.Cancel() {
			t.Fatal("Cancel of a pending event returned false")
		}
		if h.Active() {
			t.Fatal("canceled handle still Active")
		}
	}
	if h0.Cancel() {
		t.Fatal("double Cancel returned true")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancels, want 1", e.Pending())
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d events, want only the kept one", fired)
	}
	if keep.Active() || keep.Cancel() {
		t.Fatal("fired handle should be inert")
	}
}

// TestCancelFired asserts canceling an already-fired handle is an inert
// no-op, even after the underlying record has been recycled and reused
// by a later event.
func TestCancelFired(t *testing.T) {
	var e Engine
	h := e.At(1, func() {})
	e.Run()
	if h.Active() {
		t.Fatal("fired handle still Active")
	}
	if h.Cancel() {
		t.Fatal("Cancel of fired handle returned true")
	}
	// The recycled record is reused by the next schedule; the stale
	// handle must not be able to cancel the new event.
	fired := false
	h2 := e.At(e.Now()+1, func() { fired = true })
	if h.Cancel() {
		t.Fatal("stale handle canceled a reused record")
	}
	e.Run()
	if !fired {
		t.Fatal("event canceled through a stale handle")
	}
	if h2.Active() {
		t.Fatal("fired handle reports Active")
	}
}

// TestWheelWrapAround schedules at cycles large enough that slot
// arithmetic would overflow if done with additions rather than aligned
// windows.
func TestWheelWrapAround(t *testing.T) {
	var e Engine
	huge := ^Cycle(0) - 500 // near the top of the cycle space
	var got []Cycle
	mark := func() { got = append(got, e.Now()) }
	e.At(1, mark)
	e.At(huge, mark)
	e.At(huge+17, mark)
	e.Step()
	e.At(huge+3, mark)
	e.Run()
	want := []Cycle{1, huge, huge + 3, huge + 17}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestScheduleBehindCursor forces the wheel cursor past now (by
// canceling the only near event so the cascade advances the base), then
// schedules legally (at >= now) behind the cursor and checks the event
// still fires first, in order.
func TestScheduleBehindCursor(t *testing.T) {
	var e Engine
	var got []int
	// One far event and one near event; cancel the near one.
	near := e.At(10, func() { t.Fatal("canceled event fired") })
	e.At(100_000, func() { got = append(got, 9) })
	near.Cancel()
	// Step once: the sweep discards the canceled record and cascades to
	// the far window, moving wheelBase beyond 10 while now stays 0...
	// then schedule at cycles far below the advanced cursor.
	e.At(0, func() { got = append(got, 0) })
	if !e.Step() {
		t.Fatal("no event fired")
	}
	e.At(5, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 2) })
	e.At(50, func() { got = append(got, 3) })
	e.Run()
	want := []int{0, 1, 2, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestRunUntilPutBack checks that RunUntil leaves an over-limit event
// intact and correctly ordered among same-cycle peers scheduled later.
func TestRunUntilPutBack(t *testing.T) {
	var e Engine
	var got []int
	e.At(100, func() { got = append(got, 0) })
	e.RunUntil(50) // pops, sees at > limit, puts back
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// Same-cycle events scheduled after the put-back must still fire
	// after the original (lower seq first).
	e.At(100, func() { got = append(got, 1) })
	e.At(100, func() { got = append(got, 2) })
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestHandleZeroValue asserts the zero Handle is inert.
func TestHandleZeroValue(t *testing.T) {
	var h Handle
	if h.Active() {
		t.Fatal("zero Handle reports Active")
	}
	if h.Cancel() {
		t.Fatal("zero Handle Cancel returned true")
	}
}

// TestSteadyStateZeroAllocs is the tentpole's allocation criterion:
// once the record arena has warmed up, scheduling and firing events —
// chained After calls, the hottest pattern in the simulator — performs
// zero heap allocations per event.
func TestSteadyStateZeroAllocs(t *testing.T) {
	var e Engine
	var step func()
	n := 0
	step = func() {
		n++
		if n < 200_000 {
			e.After(3, step)
		}
	}
	// Warm the arena and the callback chain.
	e.After(1, step)
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			if !e.Step() {
				t.Fatal("engine drained early")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0 per steady-state event batch", allocs)
	}
}

// TestCancelZeroAllocs: canceling and re-scheduling must also stay
// allocation-free in steady state (the DRAM wake path cancels often).
func TestCancelZeroAllocs(t *testing.T) {
	var e Engine
	sink := func() {}
	// Warm up.
	for i := 0; i < 100; i++ {
		h := e.After(5, sink)
		h.Cancel()
		e.After(1, sink)
		e.Step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		h := e.After(5, sink)
		h.Cancel()
		e.After(1, sink)
		if !e.Step() {
			t.Fatal("engine drained early")
		}
	})
	if allocs != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0", allocs)
	}
}
