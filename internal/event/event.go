// Package event provides the deterministic event-driven simulation engine
// that drives every timed component in the simulator (cores, caches, the
// DBI, the memory controller).
//
// The engine maintains a virtual clock measured in CPU cycles and fires
// scheduled callbacks from a hierarchical timing wheel (see wheel layout
// below). Events are scheduled with At (absolute cycle) or After (relative
// delta); both return a Handle that can cancel the event before it fires.
//
// # Determinism contract
//
// Events fire in strictly non-decreasing cycle order, and events scheduled
// for the same cycle fire in the exact order they were scheduled
// (same-cycle FIFO). This total order — (cycle, schedule sequence) — is
// the contract every component relies on for reproducible simulations:
// two runs with the same configuration and seed produce bit-identical
// results. Internally each event carries a monotonically increasing
// sequence number; whatever path an event takes through the wheel
// (direct placement, cascade from an outer level, overflow spill), the
// engine restores the (cycle, sequence) order before firing.
//
// # Wheel layout
//
// The wheel has three levels of 256 slots each, covering the next 2^24
// cycles relative to an internal 256-aligned base cursor. Level 0 slots
// hold exactly one cycle; level-k slots hold 256^k cycles. An event lands
// in the innermost level whose window contains it; events beyond the
// 2^24 horizon go to a sorted far-future overflow list and re-enter the
// wheel when the cursor reaches their window. Slot occupancy is tracked
// in per-level bitmaps so finding the next event is a couple of
// trailing-zero scans. Event records come from an internal free list, so
// steady-state scheduling performs zero heap allocations.
package event

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, in CPU clock cycles.
type Cycle uint64

// Func is a callback fired when its scheduled cycle is reached.
type Func func()

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	wheelWords  = wheelSlots / 64
	arenaChunk  = 256
)

// record is one scheduled event. Records are pooled: after an event fires
// or a canceled record is swept out, the record returns to the engine's
// free list with its generation bumped so stale Handles become inert.
type record struct {
	at       Cycle
	seq      uint64
	gen      uint64
	fn       Func
	next     *record
	canceled bool
}

// Handle identifies a scheduled event. The zero Handle is valid and inert.
type Handle struct {
	e   *Engine
	r   *record
	gen uint64
}

// Cancel prevents the event from firing. It reports whether the event was
// still pending: canceling an event that already fired (or was already
// canceled) is a no-op returning false.
func (h Handle) Cancel() bool {
	if h.r == nil || h.r.gen != h.gen || h.r.canceled {
		return false
	}
	h.r.canceled = true
	h.e.pending--
	return true
}

// Active reports whether the event is still pending (not fired, not
// canceled).
func (h Handle) Active() bool {
	return h.r != nil && h.r.gen == h.gen && !h.r.canceled
}

// bucket is an intrusive FIFO list of records sharing a wheel slot.
// lastSeq/unsorted implement the same-cycle FIFO guarantee cheaply: an
// append below the previous append's sequence flags the bucket, and a
// flagged level-0 bucket (which always holds a single cycle) is re-sorted
// by sequence once, at fire time. Unflagged buckets are provably already
// in order, so the common path never sorts.
type bucket struct {
	head, tail *record
	lastSeq    uint64
	unsorted   bool
}

func (b *bucket) append(r *record) {
	r.next = nil
	if b.tail == nil {
		b.head, b.tail = r, r
	} else {
		if r.seq < b.lastSeq {
			b.unsorted = true
		}
		b.tail.next = r
		b.tail = r
	}
	b.lastSeq = r.seq
}

// Engine is a deterministic discrete-event simulator clock.
// The zero value is ready to use.
type Engine struct {
	now     Cycle
	seq     uint64
	fired   uint64
	pending int
	stopped bool

	// wheelBase is the 256-aligned cursor the wheel windows derive from.
	// Invariant: every record stored in the wheel or overflow has
	// at >= wheelBase; records scheduled behind the cursor (possible
	// after a cascade advanced it past now) go to the sorted front list,
	// which pop drains first.
	wheelBase Cycle
	wheel     [wheelLevels][wheelSlots]bucket
	occ       [wheelLevels][wheelWords]uint64

	front    sortedList // at < wheelBase, sorted by (at, seq)
	overflow sortedList // beyond the wheel horizon, sorted by (at, seq)

	free    *record   // recycled event records
	scratch []*record // reusable buffer for re-sorting flagged buckets
}

// sortedList is a sorted (at, seq) queue in struct-of-arrays form: the
// sort keys live in their own dense columns, so the binary search and
// the refill prefix scan read contiguous integers instead of chasing a
// record pointer per comparison; the record pointers are the cold
// payload column, touched only on insert and pop. Front and overflow
// lists are short in practice (front only exists after cascades outran
// the clock; overflow holds coarse far-out events like telemetry
// epochs), so the insertion copies are cheap and the column capacities
// are reused across the run.
type sortedList struct {
	at   []Cycle
	seq  []uint64
	recs []*record
}

func (q *sortedList) len() int { return len(q.recs) }

// insert places r by binary search over the key columns.
func (q *sortedList) insert(r *record) {
	lo, hi := 0, len(q.recs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.at[mid] < r.at || (q.at[mid] == r.at && q.seq[mid] < r.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.at = append(q.at, 0)
	copy(q.at[lo+1:], q.at[lo:])
	q.at[lo] = r.at
	q.seq = append(q.seq, 0)
	copy(q.seq[lo+1:], q.seq[lo:])
	q.seq[lo] = r.seq
	q.recs = append(q.recs, nil)
	copy(q.recs[lo+1:], q.recs[lo:])
	q.recs[lo] = r
}

// popFront removes and returns the earliest record.
func (q *sortedList) popFront() *record {
	r := q.recs[0]
	q.dropFront(1)
	return r
}

// dropFront removes the first n elements from all three columns.
func (q *sortedList) dropFront(n int) {
	m := copy(q.at, q.at[n:])
	q.at = q.at[:m]
	copy(q.seq, q.seq[n:])
	q.seq = q.seq[:m]
	copy(q.recs, q.recs[n:])
	for i := m; i < len(q.recs); i++ {
		q.recs[i] = nil
	}
	q.recs = q.recs[:m]
}

// drain recycles every queued record through fn and empties the list,
// retaining the column capacities.
func (q *sortedList) drain(fn func(*record)) {
	for i, r := range q.recs {
		fn(r)
		q.recs[i] = nil
	}
	q.at = q.at[:0]
	q.seq = q.seq[:0]
	q.recs = q.recs[:0]
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return e.pending }

// At registers fn to run at absolute cycle at and returns a Handle that
// can cancel it. Scheduling in the past (at < Now) panics: it is always a
// component bug, and silently reordering time would corrupt the
// simulation.
func (e *Engine) At(at Cycle, fn Func) Handle {
	if fn == nil {
		panic("event: At called with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at cycle %d in the past (now %d)", at, e.now))
	}
	e.seq++
	r := e.newRecord()
	r.at, r.seq, r.fn = at, e.seq, fn
	e.pending++
	e.place(r)
	return Handle{e: e, r: r, gen: r.gen}
}

// After registers fn to run delta cycles from now and returns a Handle
// that can cancel it.
func (e *Engine) After(delta Cycle, fn Func) Handle {
	return e.At(e.now+delta, fn)
}

// Reset returns the engine to its power-on state in O(pending) time:
// every queued record (live or canceled) is recycled into the free list
// with its generation bumped, so stale Handles held by clients become
// inert, and the clock, sequence counter, fired count and wheel cursor
// return to zero. The record arena and scratch buffers are retained, so
// a reset engine schedules with zero allocations from the first event.
// Only occupied wheel slots are visited (found via the occupancy
// bitmaps); the 768 empty buckets of a drained wheel cost nothing.
func (e *Engine) Reset() {
	for level := 0; level < wheelLevels; level++ {
		for w := range e.occ[level] {
			word := e.occ[level][w]
			for word != 0 {
				slot := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				b := &e.wheel[level][slot]
				for r := b.head; r != nil; {
					next := r.next
					e.recycle(r)
					r = next
				}
				b.head, b.tail, b.lastSeq, b.unsorted = nil, nil, 0, false
			}
			e.occ[level][w] = 0
		}
	}
	e.front.drain(e.recycle)
	e.overflow.drain(e.recycle)
	e.now, e.seq, e.fired = 0, 0, 0
	e.pending, e.stopped, e.wheelBase = 0, false, 0
}

func (e *Engine) newRecord() *record {
	r := e.free
	if r == nil {
		chunk := make([]record, arenaChunk)
		for i := range chunk[:len(chunk)-1] {
			chunk[i].next = &chunk[i+1]
		}
		r = &chunk[0]
	}
	e.free = r.next
	r.next = nil
	return r
}

func (e *Engine) recycle(r *record) {
	r.fn = nil
	r.canceled = false
	r.gen++
	r.next = e.free
	e.free = r
}

// place routes a record to the front list, a wheel slot, or the overflow.
func (e *Engine) place(r *record) {
	if r.at < e.wheelBase {
		e.front.insert(r)
		return
	}
	e.placeWheel(r)
}

// placeWheel stores a record with at >= wheelBase into the innermost
// wheel level whose aligned window contains it, or the overflow list.
func (e *Engine) placeWheel(r *record) {
	base := e.wheelBase
	switch {
	case r.at>>wheelBits == base>>wheelBits:
		e.push(0, int(r.at&wheelMask), r)
	case r.at>>(2*wheelBits) == base>>(2*wheelBits):
		e.push(1, int(r.at>>wheelBits)&wheelMask, r)
	case r.at>>(3*wheelBits) == base>>(3*wheelBits):
		e.push(2, int(r.at>>(2*wheelBits))&wheelMask, r)
	default:
		e.overflow.insert(r)
	}
}

func (e *Engine) push(level, slot int, r *record) {
	e.wheel[level][slot].append(r)
	e.occ[level][slot>>6] |= 1 << (uint(slot) & 63)
}

// firstOccupied returns the lowest occupied slot index at the given
// level, or -1.
func (e *Engine) firstOccupied(level int) int {
	for w, word := range &e.occ[level] {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// pop removes and returns the earliest live record, sweeping out canceled
// ones, or returns nil when nothing is pending.
func (e *Engine) pop() *record {
	for {
		r := e.popAny()
		if r == nil {
			return nil
		}
		if r.canceled {
			e.recycle(r)
			continue
		}
		return r
	}
}

// popAny removes the earliest record (canceled or not), cascading outer
// wheel levels and the overflow list inward as needed. The strict level
// ordering (every front record < every level-0 record < every level-1
// record < ... < every overflow record) follows from the aligned-window
// placement rule, so consulting the structures in that order yields the
// global (at, seq) minimum.
func (e *Engine) popAny() *record {
	for {
		if e.front.len() > 0 {
			return e.front.popFront()
		}
		if slot := e.firstOccupied(0); slot >= 0 {
			return e.takeHead(slot)
		}
		if slot := e.firstOccupied(1); slot >= 0 {
			e.wheelBase = e.wheelBase&^(1<<(2*wheelBits)-1) | Cycle(slot)<<wheelBits
			e.cascade(1, slot)
			continue
		}
		if slot := e.firstOccupied(2); slot >= 0 {
			e.wheelBase = e.wheelBase&^(1<<(3*wheelBits)-1) | Cycle(slot)<<(2*wheelBits)
			e.cascade(2, slot)
			continue
		}
		if e.overflow.len() > 0 {
			e.refill()
			continue
		}
		return nil
	}
}

// cascade drains a level-1 or level-2 slot and re-places its records
// against the just-advanced wheelBase; they land in inner (more precise)
// levels, which are empty at this point, so list order — already
// per-cycle FIFO — is preserved.
func (e *Engine) cascade(level, slot int) {
	b := &e.wheel[level][slot]
	r := b.head
	b.head, b.tail, b.lastSeq, b.unsorted = nil, nil, 0, false
	e.occ[level][slot>>6] &^= 1 << (uint(slot) & 63)
	for r != nil {
		next := r.next
		e.placeWheel(r)
		r = next
	}
}

// refill advances wheelBase to the first overflow record's window and
// moves every overflow record sharing that top-level window into the
// (entirely empty) wheel. The prefix scan runs over the dense at column
// alone — no record is touched until it is actually re-placed.
func (e *Engine) refill() {
	top := e.overflow.at[0] >> (wheelLevels * wheelBits)
	e.wheelBase = e.overflow.at[0] &^ wheelMask
	n := 0
	for n < e.overflow.len() && e.overflow.at[n]>>(wheelLevels*wheelBits) == top {
		n++
	}
	for _, r := range e.overflow.recs[:n] {
		e.placeWheel(r)
	}
	e.overflow.dropFront(n)
}

// takeHead pops the head of a level-0 slot, re-sorting the bucket by
// sequence first if appends arrived out of order (level-0 buckets hold a
// single cycle, so sequence order is the full FIFO order).
func (e *Engine) takeHead(slot int) *record {
	b := &e.wheel[0][slot]
	if b.unsorted {
		e.sortBucket(b)
	}
	r := b.head
	b.head = r.next
	if b.head == nil {
		b.tail = nil
		b.lastSeq = 0
		e.occ[0][slot>>6] &^= 1 << (uint(slot) & 63)
	}
	r.next = nil
	return r
}

func (e *Engine) sortBucket(b *bucket) {
	s := e.scratch[:0]
	for r := b.head; r != nil; r = r.next {
		s = append(s, r)
	}
	// Insertion sort: flagged buckets are rare and nearly sorted.
	for i := 1; i < len(s); i++ {
		r := s[i]
		j := i - 1
		for j >= 0 && s[j].seq > r.seq {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = r
	}
	for i := 0; i < len(s)-1; i++ {
		s[i].next = s[i+1]
	}
	last := s[len(s)-1]
	last.next = nil
	b.head, b.tail = s[0], last
	b.lastSeq = last.seq
	b.unsorted = false
	e.scratch = s
}

// fire advances the clock to the record's cycle and runs its callback.
// The record is recycled before the callback runs, so a callback that
// immediately reschedules (the typical chained-event pattern) reuses the
// very record that just fired — zero allocations in steady state.
func (e *Engine) fire(r *record) {
	e.now = r.at
	e.fired++
	e.pending--
	fn := r.fn
	e.recycle(r)
	fn()
}

// Step executes the single earliest pending event, advancing the clock to
// its cycle. It reports whether an event was executed.
func (e *Engine) Step() bool {
	r := e.pop()
	if r == nil {
		return false
	}
	e.fire(r)
	return true
}

// RunUntil executes events until none are pending or the next event is
// scheduled after the limit cycle. The clock never advances past limit.
func (e *Engine) RunUntil(limit Cycle) {
	e.stopped = false
	for !e.stopped {
		r := e.pop()
		if r == nil {
			break
		}
		if r.at > limit {
			// Put it back: it fires on a later run. Re-placing may
			// append behind same-cycle records with higher sequence
			// numbers; the bucket sort flag restores FIFO order then.
			e.place(r)
			break
		}
		e.fire(r)
	}
	if e.now < limit && !e.stopped {
		e.now = limit
	}
}

// Run executes events until none are pending or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped {
		r := e.pop()
		if r == nil {
			return
		}
		e.fire(r)
	}
}

// Stop makes the current Run or RunUntil return after the in-flight
// event completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules fn to run every period cycles, first firing period
// cycles from now, until the returned cancel function is called. It is
// the epoch hook the telemetry sampler uses: the callback runs like any
// other event (so same-cycle ordering stays deterministic), and because
// rescheduling happens before fn, fn may inspect but must not mutate
// simulation state if the run's results are to stay unperturbed.
//
// Note that a live periodic event keeps the engine non-empty, so Run
// only returns via Stop while one is active; cancel before relying on
// queue drain.
func (e *Engine) Every(period Cycle, fn Func) (cancel func()) {
	if period == 0 {
		panic("event: Every with zero period")
	}
	active := true
	var tick Func
	tick = func() {
		if !active {
			return
		}
		e.After(period, tick)
		fn()
	}
	e.After(period, tick)
	return func() { active = false }
}

// Ticker invokes a callback every Period cycles while active. It is the
// building block for components with per-cycle work (e.g. cache ports,
// the DRAM command scheduler) that want to avoid scheduling events during
// idle stretches: the component arms the ticker only while it has work.
type Ticker struct {
	Engine *Engine
	Period Cycle
	Tick   Func
	armed  bool
	tickFn Func // bound once so re-arming never allocates
}

// Arm starts the ticker if it is not already running. The first tick
// fires Period cycles from now.
func (t *Ticker) Arm() {
	if t.armed {
		return
	}
	if t.Period == 0 {
		panic("event: Ticker with zero period")
	}
	if t.tickFn == nil {
		t.tickFn = t.tick
	}
	t.armed = true
	t.Engine.After(t.Period, t.tickFn)
}

// Armed reports whether the ticker is currently scheduled.
func (t *Ticker) Armed() bool { return t.armed }

// Disarm stops future ticks. A tick already scheduled for this period
// still fires but is ignored.
func (t *Ticker) Disarm() { t.armed = false }

func (t *Ticker) tick() {
	if !t.armed {
		return
	}
	t.armed = false
	t.Tick()
	// Tick may re-arm; if it did not, the ticker stays idle.
}
