// Package event provides the deterministic event-driven simulation engine
// that drives every timed component in the simulator (cores, caches, the
// DBI, the memory controller).
//
// The engine maintains a virtual clock measured in CPU cycles and a
// priority queue of scheduled callbacks. Events scheduled for the same
// cycle fire in the order they were scheduled, which makes simulations
// fully deterministic and therefore reproducible.
package event

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, in CPU clock cycles.
type Cycle uint64

// Func is a callback fired when its scheduled cycle is reached.
type Func func()

type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(*item)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a deterministic discrete-event simulator clock.
// The zero value is ready to use.
type Engine struct {
	now     Cycle
	seq     uint64
	q       queue
	fired   uint64
	stopped bool
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.q) }

// Schedule registers fn to run at absolute cycle at. Scheduling in the
// past (at < Now) panics: it is always a component bug, and silently
// reordering time would corrupt the simulation.
func (e *Engine) Schedule(at Cycle, fn Func) {
	if fn == nil {
		panic("event: Schedule called with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at cycle %d in the past (now %d)", at, e.now))
	}
	e.seq++
	heap.Push(&e.q, &item{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter registers fn to run delta cycles from now.
func (e *Engine) ScheduleAfter(delta Cycle, fn Func) {
	e.Schedule(e.now+delta, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its cycle. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	it := heap.Pop(&e.q).(*item)
	e.now = it.at
	e.fired++
	it.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// scheduled after the limit cycle. The clock never advances past limit.
func (e *Engine) RunUntil(limit Cycle) {
	e.stopped = false
	for len(e.q) > 0 && !e.stopped {
		if e.q[0].at > limit {
			break
		}
		e.Step()
	}
	if e.now < limit && !e.stopped {
		e.now = limit
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.q) > 0 && !e.stopped {
		e.Step()
	}
}

// Stop makes the current Run or RunUntil return after the in-flight
// event completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules fn to run every period cycles, first firing period
// cycles from now, until the returned cancel function is called. It is
// the epoch hook the telemetry sampler uses: the callback runs like any
// other event (so same-cycle ordering stays deterministic), and because
// rescheduling happens before fn, fn may inspect but must not mutate
// simulation state if the run's results are to stay unperturbed.
//
// Note that a live periodic event keeps the queue non-empty, so Run
// only returns via Stop while one is active; cancel before relying on
// queue drain.
func (e *Engine) Every(period Cycle, fn Func) (cancel func()) {
	if period == 0 {
		panic("event: Every with zero period")
	}
	active := true
	var tick Func
	tick = func() {
		if !active {
			return
		}
		e.ScheduleAfter(period, tick)
		fn()
	}
	e.ScheduleAfter(period, tick)
	return func() { active = false }
}

// Ticker invokes a callback every Period cycles while active. It is the
// building block for components with per-cycle work (e.g. cache ports,
// the DRAM command scheduler) that want to avoid scheduling events during
// idle stretches: the component arms the ticker only while it has work.
type Ticker struct {
	Engine *Engine
	Period Cycle
	Tick   Func
	armed  bool
}

// Arm starts the ticker if it is not already running. The first tick
// fires Period cycles from now.
func (t *Ticker) Arm() {
	if t.armed {
		return
	}
	if t.Period == 0 {
		panic("event: Ticker with zero period")
	}
	t.armed = true
	t.Engine.ScheduleAfter(t.Period, t.tick)
}

// Armed reports whether the ticker is currently scheduled.
func (t *Ticker) Armed() bool { return t.armed }

// Disarm stops future ticks. A tick already scheduled for this period
// still fires but is ignored.
func (t *Ticker) Disarm() { t.armed = false }

func (t *Ticker) tick() {
	if !t.armed {
		return
	}
	t.armed = false
	t.Tick()
	// Tick may re-arm; if it did not, the ticker stays idle.
}
