package event

import "testing"

// BenchmarkScheduleRun measures raw engine throughput: schedule-and-fire
// of chained events, the backbone cost of every simulation.
func BenchmarkScheduleRun(b *testing.B) {
	var e Engine
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	b.ResetTimer()
	e.After(1, step)
	e.Run()
}

// BenchmarkScheduleFanout measures heap behaviour with many pending
// events. Offsets are relative to the advancing clock: the engine
// forbids scheduling in the past.
func BenchmarkScheduleFanout(b *testing.B) {
	var e Engine
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Cycle(i%1024), func() {})
		if e.Pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkOverflowSchedule measures the far-future path: events beyond
// the wheel horizon land in the columnar overflow list (binary-search
// insert over the dense cycle/seq columns) and are refilled into the
// wheel as the clock advances.
func BenchmarkOverflowSchedule(b *testing.B) {
	var e Engine
	horizon := Cycle(1) << (wheelLevels * wheelBits)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+horizon+Cycle(1+i%64), fn)
		if e.Pending() >= 256 {
			e.Run()
		}
	}
	e.Run()
}
