package event

import (
	"reflect"
	"testing"
)

// scheduleScatter loads the engine with events across every structure a
// record can live in: the level-0 window, outer levels, the far-future
// overflow, and (after a cascade) the front list. Each event appends its
// identity to got so firing order is observable.
func scheduleScatter(e *Engine, got *[]int) {
	ats := []Cycle{3, 3, 7, 300, 70000, 1 << 22, 1 << 25, 5, 3}
	for i, at := range ats {
		i := i
		e.At(at, func() { *got = append(*got, i) })
	}
}

func TestSnapshotRestoreReplaysIdenticalOrder(t *testing.T) {
	var e Engine
	var got []int
	scheduleScatter(&e, &got)
	// Run partway, then checkpoint mid-schedule.
	e.RunUntil(10)
	prefix := append([]int(nil), got...)

	var st EngineState
	e.Snapshot(&st)
	wantNow, wantSeq, wantFired := e.Now(), e.seq, e.Fired()
	if st.Pending() != e.Pending() {
		t.Fatalf("snapshot pending = %d, engine pending = %d", st.Pending(), e.Pending())
	}

	// Continue to completion: this is the reference continuation.
	e.Run()
	want := append([]int(nil), got...)
	wantEndNow, wantEndSeq, wantEndFired := e.Now(), e.seq, e.Fired()

	// Rewind and replay.
	got = append(got[:0], prefix...)
	e.Restore(&st)
	if e.Now() != wantNow || e.seq != wantSeq || e.Fired() != wantFired {
		t.Fatalf("restore clocks = (%d,%d,%d), want (%d,%d,%d)",
			e.Now(), e.seq, e.Fired(), wantNow, wantSeq, wantFired)
	}
	e.Run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed order %v, want %v", got, want)
	}
	if e.Now() != wantEndNow || e.seq != wantEndSeq || e.Fired() != wantEndFired {
		t.Fatalf("replay end clocks = (%d,%d,%d), want (%d,%d,%d)",
			e.Now(), e.seq, e.Fired(), wantEndNow, wantEndSeq, wantEndFired)
	}
}

func TestSnapshotSkipsCanceledRecords(t *testing.T) {
	var e Engine
	fired := 0
	e.At(5, func() { fired++ })
	h := e.At(6, func() { t.Error("canceled event fired") })
	e.At(7, func() { fired++ })
	h.Cancel()

	var st EngineState
	e.Snapshot(&st)
	if st.Pending() != 2 {
		t.Fatalf("snapshot pending = %d, want 2 (canceled skipped)", st.Pending())
	}
	e.Restore(&st)
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d, want 0", e.Pending())
	}
}

func TestRestoreAfterDivergence(t *testing.T) {
	// Restore must fully discard whatever the engine did after the
	// snapshot, including newly scheduled events.
	var e Engine
	var got []int
	e.At(10, func() { got = append(got, 10) })
	var st EngineState
	e.Snapshot(&st)

	e.At(1, func() { got = append(got, 1) })
	e.Run()
	if !reflect.DeepEqual(got, []int{1, 10}) {
		t.Fatalf("divergent run = %v", got)
	}

	got = got[:0]
	e.Restore(&st)
	e.Run()
	if !reflect.DeepEqual(got, []int{10}) {
		t.Fatalf("restored run = %v, want [10]", got)
	}
}
