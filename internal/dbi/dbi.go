// Package dbi implements the Dirty-Block Index, the primary contribution
// of the paper. The DBI removes dirty bits from the cache tag store and
// organizes them in a separate set-associative structure whose entries
// each track the dirty status of the blocks of one DRAM-row-aligned
// region: an entry holds a row tag and a bit vector with one bit per
// block (Section 2 of the paper).
//
// Semantics: a cache block is dirty if and only if the DBI holds a valid
// entry for the block's region and the block's bit in that entry is set.
//
// The structure supports the three queries the paper's optimizations
// need:
//
//   - IsDirty — a single fast lookup (much smaller than the tag store),
//     used by cache-lookup bypass (CLB);
//   - DirtyBlocksInRegion — all spatially co-located dirty blocks in one
//     query, used by aggressive DRAM-aware writeback (AWB);
//   - the entry count itself bounds how many blocks can be dirty, which
//     is what lets heterogeneous ECC keep strong ECC for DBI-tracked
//     blocks only.
//
// Inserting into a full DBI set evicts another entry; the evicted entry's
// dirty blocks must be written back to memory (a "DBI eviction",
// Section 2.2.4), because the DBI is the only record of their dirtiness.
//
// # Storage layout
//
// The index is struct-of-arrays. There is no per-entry record and, in
// particular, no per-entry heap-allocated bit vector: every entry's
// dirty bits live in one flat backing array (entry i owns
// words[i*wpe : (i+1)*wpe]), and the region tags, validity stamps and
// replacement metadata each occupy their own dense column. The probe
// loop touches only the stamp and region columns — for a 4-way set that
// is 2×32 contiguous bytes — scanning the region tags first and
// confirming the validity stamp only on a tag match. An entry is valid
// iff its stamp equals the DBI's current generation (stamp 0 = never
// valid), which is also what lets the simulator's Reset path invalidate
// everything by bumping one counter.
package dbi

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// RegionID identifies one DBI-entry-sized, row-aligned group of blocks.
// When the granularity equals blocks-per-row this is exactly the DRAM
// row ID.
type RegionID uint64

// Entry is a value snapshot (view) of one DBI entry: the valid bit, the
// region (row) tag and the population of the dirty bit vector. It is
// how diagnostics and tests observe the columnar store; the store
// itself holds no Entry records.
type Entry struct {
	Valid  bool
	Region RegionID
	Dirty  int // number of dirty blocks the entry tracks
}

// Eviction describes a DBI eviction: every listed block must be written
// back to memory and transitioned dirty→clean in the cache (the blocks
// themselves stay resident).
type Eviction struct {
	Region RegionID
	Blocks []addr.BlockAddr
}

// Stats counts DBI activity.
type Stats struct {
	Lookups        stats.Counter // IsDirty / bulk queries
	Writes         stats.Counter // SetDirty operations
	Cleans         stats.Counter // ClearDirty operations
	EntryInserts   stats.Counter
	Evictions      stats.Counter // DBI evictions (entry displaced)
	EvictionBlocks stats.Counter // dirty blocks written back by evictions
	// DirtyAtEviction histograms the bit-vector population at eviction,
	// showing how much row locality AWB can harvest.
	DirtyAtEviction *stats.Histogram
}

// DBI is the Dirty-Block Index.
type DBI struct {
	geo         addr.Geometry
	prm         config.DBIParams
	sets        int
	ways        int
	granularity int
	regionShift uint

	gen uint64 // current validity generation (starts at 1; 0 = never valid)

	// Hot probe plane: one stamp and one region tag per entry.
	stamps  []uint64
	regions []RegionID
	// Replacement metadata columns.
	lastWrite []uint64 // LRW stamp; larger = more recently written
	rwpv      []uint8  // re-write prediction value (RWIP policy)
	// words is the flat dirty-bit backing store: entry i owns
	// words[i*wpe : (i+1)*wpe]. One allocation for the whole index —
	// no per-entry slice headers, no pointer chase per probe.
	words []uint64
	wpe   int // words per entry: ceil(granularity/64)

	clock uint64
	rng   *rand.Rand
	src   rand.Source // rng's source, retained for state capture

	Stat Stats
}

// New builds a DBI from functional options (options.go). Sizing comes
// from exactly one of WithCacheBlocks (track α × the cache's blocks,
// the simulator's framing) or WithRows (an explicit entry budget, the
// service framing); everything else defaults to the paper's Table-1
// DBI against the default geometry.
func New(opts ...Option) (*DBI, error) {
	o := options{geo: addr.Default(), prm: DefaultParams()}
	for _, fn := range opts {
		fn(&o)
	}
	geo, prm := o.geo, o.prm
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if prm.Granularity > geo.BlocksPerRow() {
		return nil, fmt.Errorf("dbi: granularity %d exceeds %d blocks per DRAM row",
			prm.Granularity, geo.BlocksPerRow())
	}
	var entries int
	switch {
	case o.rows > 0:
		entries = o.rows
		if entries < prm.Associativity {
			entries = prm.Associativity
		}
	case o.cacheBlocks > 0:
		entries = prm.Entries(o.cacheBlocks)
	default:
		return nil, fmt.Errorf("dbi: capacity unset: pass WithCacheBlocks or WithRows")
	}
	sets := entries / prm.Associativity
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	src := rand.NewSource(o.seed)
	n := sets * prm.Associativity
	wpe := (prm.Granularity + 63) / 64
	d := &DBI{
		geo:         geo,
		prm:         prm,
		sets:        sets,
		ways:        prm.Associativity,
		granularity: prm.Granularity,
		gen:         1,
		stamps:      make([]uint64, n),
		regions:     make([]RegionID, n),
		lastWrite:   make([]uint64, n),
		rwpv:        make([]uint8, n),
		words:       make([]uint64, n*wpe),
		wpe:         wpe,
		rng:         rand.New(src),
		src:         src,
	}
	d.regionShift = log2(uint64(prm.Granularity))
	if prm.BIPEpsilonDen <= 0 {
		d.prm.BIPEpsilonDen = 64
	}
	d.Stat.DirtyAtEviction = stats.NewHistogram(prm.Granularity)
	return d, nil
}

// Reset returns the DBI to power-on state for a new run with the given
// seed, reusing every allocation. Validity is a generation stamp, so
// the whole index invalidates with one counter bump; the metadata
// columns and bit words of stale entries are rewritten on their next
// insert before any read path can observe them, which is what makes a
// reset DBI behave bit-identically to the DBI New would build.
func (d *DBI) Reset(seed int64) {
	d.gen++
	d.clock = 0
	d.rng.Seed(seed)
	st := &d.Stat
	st.Lookups, st.Writes, st.Cleans = 0, 0, 0
	st.EntryInserts, st.Evictions, st.EvictionBlocks = 0, 0, 0
	st.DirtyAtEviction.Reset()
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Sets returns the number of DBI sets.
func (d *DBI) Sets() int { return d.sets }

// Ways returns the DBI associativity.
func (d *DBI) Ways() int { return d.ways }

// Entries returns the total entry count.
func (d *DBI) Entries() int { return len(d.regions) }

// TrackedBlocks returns the cumulative number of blocks the DBI can
// track (entries × granularity) — the numerator of α.
func (d *DBI) TrackedBlocks() int { return len(d.regions) * d.granularity }

// Granularity returns blocks per entry.
func (d *DBI) Granularity() int { return d.granularity }

// RegionOf maps a block to its DBI region.
func (d *DBI) RegionOf(b addr.BlockAddr) RegionID {
	return RegionID(uint64(b) >> d.regionShift)
}

// offsetOf returns the block's bit position within its region.
func (d *DBI) offsetOf(b addr.BlockAddr) int {
	return int(uint64(b) & (uint64(d.granularity) - 1))
}

// setOf hashes the region into a set. A multiplicative (Fibonacci) hash
// spreads regions evenly even when physical page placement happens to
// cluster: with few sets, a plain modulo would let an unlucky placement
// overload one set with the hot write working set and thrash it.
func (d *DBI) setOf(r RegionID) int {
	const golden = 0x9E3779B97F4A7C15
	h := uint64(r) * golden
	return int((h >> 32) & uint64(d.sets-1))
}

// validAt reports whether entry e is live in the current generation.
func (d *DBI) validAt(e int) bool { return d.stamps[e] == d.gen }

// invalidate marks entry e never-valid (stamp 0, like a fresh slot).
func (d *DBI) invalidate(e int) { d.stamps[e] = 0 }

// bit vector accessors over the flat backing store.
func (d *DBI) bit(e, i int) bool { return d.words[e*d.wpe+(i>>6)]&(1<<(i&63)) != 0 }
func (d *DBI) setBit(e, i int)   { d.words[e*d.wpe+(i>>6)] |= 1 << (i & 63) }
func (d *DBI) clearBit(e, i int) { d.words[e*d.wpe+(i>>6)] &^= 1 << (i & 63) }
func (d *DBI) clearWords(e int) {
	w := d.words[e*d.wpe : (e+1)*d.wpe]
	for i := range w {
		w[i] = 0
	}
}

// dirtyCountOf returns the bit-vector population of entry e, walking the
// entry's words in the flat array directly.
func (d *DBI) dirtyCountOf(e int) int {
	n := 0
	for _, w := range d.words[e*d.wpe : (e+1)*d.wpe] {
		n += bits.OnesCount64(w)
	}
	return n
}

// find locates the entry index for a region without counting a lookup,
// or returns -1. The way scan walks the dense region column with the
// region tag as the primary compare (it is the selective one — the
// stamp matches every live entry) and confirms validity only on a tag
// match. Unlike the cache's 16-way probe plane, the DBI's hit
// distribution is front-loaded (inserts fill way 0 first and sets are
// sparsely occupied), so an early exit beats a fixed-trip branchless
// scan here; the columnar layout still keeps the whole scan inside two
// cache lines per column.
func (d *DBI) find(r RegionID) int {
	base := d.setOf(r) * d.ways
	stamps := d.stamps[base : base+d.ways]
	regions := d.regions[base : base+d.ways : base+d.ways]
	key, gen := uint64(r), d.gen
	for w := range regions {
		if uint64(regions[w]) == key && stamps[w] == gen {
			return base + w
		}
	}
	return -1
}

// EntryAt exposes a value snapshot of the entry at (set, way) for
// diagnostics and tests — the DBI-level replacement for the per-entry
// accessors the columnar store no longer has. Invalid slots read as the
// zero Entry regardless of their stale contents.
func (d *DBI) EntryAt(set, way int) Entry {
	e := set*d.ways + way
	if !d.validAt(e) {
		return Entry{}
	}
	return Entry{Valid: true, Region: d.regions[e], Dirty: d.dirtyCountOf(e)}
}

// IsDirty implements the DBI's defining query: the block is dirty iff a
// valid entry for its region exists and its bit is set.
func (d *DBI) IsDirty(b addr.BlockAddr) bool {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	return e >= 0 && d.bit(e, d.offsetOf(b))
}

// SetDirty marks a block dirty (a writeback request arrived at the
// cache, Section 2.2.2). If the region has no entry, one is inserted,
// possibly evicting another entry; the eviction (if any) is returned and
// the caller must write back and clean every listed block.
func (d *DBI) SetDirty(b addr.BlockAddr) (ev Eviction, evicted bool) {
	return d.SetDirtyInto(b, nil)
}

// SetDirtyInto is SetDirty with a caller-provided scratch buffer: when
// the insert displaces an entry, the eviction's Blocks list is built by
// appending into scratch (re-sliced to zero length), so a caller that
// recycles buffers pays no allocation per eviction. When no eviction
// occurs scratch is untouched and the caller keeps ownership; on
// eviction the returned Blocks alias (or, if scratch was too small, a
// regrown copy of) scratch.
func (d *DBI) SetDirtyInto(b addr.BlockAddr, scratch []addr.BlockAddr) (ev Eviction, evicted bool) {
	d.Stat.Writes.Inc()
	d.clock++
	r := d.RegionOf(b)
	if e := d.find(r); e >= 0 {
		d.setBit(e, d.offsetOf(b))
		d.lastWrite[e] = d.clock
		d.rwpv[e] = 0
		return Eviction{}, false
	}
	set := d.setOf(r)
	way, victim := d.allocate(set)
	if victim >= 0 {
		ev = d.evict(victim, scratch[:0])
		evicted = true
	}
	e := set*d.ways + way
	d.stamps[e] = d.gen
	d.regions[e] = r
	d.clearWords(e)
	d.setBit(e, d.offsetOf(b))
	d.insertMetadata(e)
	d.Stat.EntryInserts.Inc()
	return ev, evicted
}

// allocate picks a way in the set, returning the victim entry index
// (or -1) when a valid entry must be displaced.
func (d *DBI) allocate(set int) (way, victim int) {
	base := set * d.ways
	for w := 0; w < d.ways; w++ {
		if !d.validAt(base + w) {
			return w, -1
		}
	}
	w := d.victimWay(set)
	return w, base + w
}

// victimWay applies the configured DBI replacement policy (Section 4.3).
func (d *DBI) victimWay(set int) int {
	base := set * d.ways
	switch d.prm.Replacement {
	case config.DBILRW, config.DBILRWBIP:
		best, bestStamp := 0, d.lastWrite[base]
		for w := 1; w < d.ways; w++ {
			if s := d.lastWrite[base+w]; s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return best
	case config.DBIRWIP:
		for {
			for w := 0; w < d.ways; w++ {
				if d.rwpv[base+w] >= 3 {
					return w
				}
			}
			for w := 0; w < d.ways; w++ {
				d.rwpv[base+w]++
			}
		}
	case config.DBIMaxDirty:
		best, bestN := 0, d.dirtyCountOf(base)
		for w := 1; w < d.ways; w++ {
			if n := d.dirtyCountOf(base + w); n > bestN {
				best, bestN = w, n
			}
		}
		return best
	case config.DBIMinDirty:
		best, bestN := 0, d.dirtyCountOf(base)
		for w := 1; w < d.ways; w++ {
			if n := d.dirtyCountOf(base + w); n < bestN {
				best, bestN = w, n
			}
		}
		return best
	}
	return 0
}

// insertMetadata initializes replacement metadata for a fresh entry.
func (d *DBI) insertMetadata(e int) {
	switch d.prm.Replacement {
	case config.DBILRWBIP:
		// Bimodal insertion: mostly insert at the LRW position so a
		// single burst of writes to a cold row cannot displace the hot
		// write working set.
		if d.rng.Intn(d.prm.BIPEpsilonDen) != 0 {
			d.lastWrite[e] = 0
			return
		}
		d.lastWrite[e] = d.clock
	case config.DBIRWIP:
		d.rwpv[e] = 2
		d.lastWrite[e] = d.clock
	default:
		d.lastWrite[e] = d.clock
	}
}

// evict harvests the eviction's writeback list (appending into dst) and
// invalidates the entry.
func (d *DBI) evict(e int, dst []addr.BlockAddr) Eviction {
	ev := Eviction{Region: d.regions[e], Blocks: d.blocksOfInto(e, dst)}
	d.Stat.Evictions.Inc()
	d.Stat.EvictionBlocks.Add(uint64(len(ev.Blocks)))
	d.Stat.DirtyAtEviction.Observe(len(ev.Blocks))
	d.invalidate(e)
	d.clearWords(e)
	return ev
}

// blocksOf lists the dirty block addresses of an entry.
func (d *DBI) blocksOf(e int) []addr.BlockAddr {
	return d.blocksOfInto(e, nil)
}

// blocksOfInto appends the entry's dirty block addresses to dst, walking
// the entry's words in the flat array and decoding set bits with
// trailing-zero scans (word-at-a-time, not bit-at-a-time).
func (d *DBI) blocksOfInto(e int, dst []addr.BlockAddr) []addr.BlockAddr {
	base := uint64(d.regions[e]) << d.regionShift
	for wi, w := range d.words[e*d.wpe : (e+1)*d.wpe] {
		off := uint64(wi) << 6
		for w != 0 {
			i := uint64(bits.TrailingZeros64(w))
			w &= w - 1
			dst = append(dst, addr.BlockAddr(base|(off+i)))
		}
	}
	return dst
}

// ClearDirty resets a block's dirty bit (the block was written back on a
// cache eviction, Section 2.2.3). When the last dirty bit of an entry
// clears, the entry is invalidated so it can track another row. It
// reports whether the block was actually marked dirty.
func (d *DBI) ClearDirty(b addr.BlockAddr) bool {
	d.Stat.Cleans.Inc()
	e := d.find(d.RegionOf(b))
	if e < 0 {
		return false
	}
	off := d.offsetOf(b)
	if !d.bit(e, off) {
		return false
	}
	d.clearBit(e, off)
	if d.dirtyCountOf(e) == 0 {
		d.invalidate(e)
	}
	return true
}

// DirtyBlocksInRegion returns every dirty block co-located with b in its
// DBI entry — the single query that powers aggressive writeback (AWB,
// Section 3.1). The result includes b itself if dirty.
func (d *DBI) DirtyBlocksInRegion(b addr.BlockAddr) []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	if e < 0 {
		return nil
	}
	return d.blocksOf(e)
}

// DirtyBlocksInRegionInto is DirtyBlocksInRegion appending into a
// caller-provided scratch slice, for the per-eviction AWB harvest path
// where a fresh slice per query would dominate the allocation profile.
func (d *DBI) DirtyBlocksInRegionInto(b addr.BlockAddr, dst []addr.BlockAddr) []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	if e < 0 {
		return dst
	}
	return d.blocksOfInto(e, dst)
}

// DirtyCount returns the total number of dirty blocks tracked.
func (d *DBI) DirtyCount() int {
	n := 0
	for e := range d.stamps {
		if d.validAt(e) {
			n += d.dirtyCountOf(e)
		}
	}
	return n
}

// RegisterMetrics adds the DBI's probes to a telemetry registry:
// operation counters, occupancy gauges (entry-eviction pressure shows
// up as valid_entries pinned at capacity while evictions climb), and
// the dirty-blocks-per-evicted-entry histogram.
func (d *DBI) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterStat("dbi.lookups", &d.Stat.Lookups)
	reg.CounterStat("dbi.writes", &d.Stat.Writes)
	reg.CounterStat("dbi.cleans", &d.Stat.Cleans)
	reg.CounterStat("dbi.entry_inserts", &d.Stat.EntryInserts)
	reg.CounterStat("dbi.evictions", &d.Stat.Evictions)
	reg.CounterStat("dbi.eviction_blocks", &d.Stat.EvictionBlocks)
	reg.Gauge("dbi.valid_entries", func() float64 { return float64(d.ValidEntries()) })
	reg.Gauge("dbi.dirty_blocks", func() float64 { return float64(d.DirtyCount()) })
	reg.Histogram("dbi.dirty_at_eviction", d.Stat.DirtyAtEviction)
}

// ValidEntries returns the number of valid entries.
func (d *DBI) ValidEntries() int {
	n := 0
	for e := range d.stamps {
		if d.validAt(e) {
			n++
		}
	}
	return n
}
