// Package dbi implements the Dirty-Block Index, the primary contribution
// of the paper. The DBI removes dirty bits from the cache tag store and
// organizes them in a separate set-associative structure whose entries
// each track the dirty status of the blocks of one DRAM-row-aligned
// region: an entry holds a row tag and a bit vector with one bit per
// block (Section 2 of the paper).
//
// Semantics: a cache block is dirty if and only if the DBI holds a valid
// entry for the block's region and the block's bit in that entry is set.
//
// The structure supports the three queries the paper's optimizations
// need:
//
//   - IsDirty — a single fast lookup (much smaller than the tag store),
//     used by cache-lookup bypass (CLB);
//   - DirtyBlocksInRegion — all spatially co-located dirty blocks in one
//     query, used by aggressive DRAM-aware writeback (AWB);
//   - the entry count itself bounds how many blocks can be dirty, which
//     is what lets heterogeneous ECC keep strong ECC for DBI-tracked
//     blocks only.
//
// Inserting into a full DBI set evicts another entry; the evicted entry's
// dirty blocks must be written back to memory (a "DBI eviction",
// Section 2.2.4), because the DBI is the only record of their dirtiness.
package dbi

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// RegionID identifies one DBI-entry-sized, row-aligned group of blocks.
// When the granularity equals blocks-per-row this is exactly the DRAM
// row ID.
type RegionID uint64

// Entry is one DBI entry: a valid bit, a region (row) tag and the dirty
// bit vector. The replacement metadata lives alongside.
type Entry struct {
	Valid  bool
	Region RegionID
	bits   []uint64 // Granularity bits

	lastWrite uint64 // LRW stamp; larger = more recently written
	rwpv      uint8  // re-write prediction value (RWIP policy)
}

// DirtyCount returns the number of dirty blocks the entry tracks.
func (e *Entry) DirtyCount() int {
	n := 0
	for _, w := range e.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

func (e *Entry) bit(i int) bool { return e.bits[i>>6]&(1<<(i&63)) != 0 }
func (e *Entry) setBit(i int)   { e.bits[i>>6] |= 1 << (i & 63) }
func (e *Entry) clearBit(i int) { e.bits[i>>6] &^= 1 << (i & 63) }
func (e *Entry) clearAll() {
	for i := range e.bits {
		e.bits[i] = 0
	}
}

// Eviction describes a DBI eviction: every listed block must be written
// back to memory and transitioned dirty→clean in the cache (the blocks
// themselves stay resident).
type Eviction struct {
	Region RegionID
	Blocks []addr.BlockAddr
}

// Stats counts DBI activity.
type Stats struct {
	Lookups        stats.Counter // IsDirty / bulk queries
	Writes         stats.Counter // SetDirty operations
	Cleans         stats.Counter // ClearDirty operations
	EntryInserts   stats.Counter
	Evictions      stats.Counter // DBI evictions (entry displaced)
	EvictionBlocks stats.Counter // dirty blocks written back by evictions
	// DirtyAtEviction histograms the bit-vector population at eviction,
	// showing how much row locality AWB can harvest.
	DirtyAtEviction *stats.Histogram
}

// DBI is the Dirty-Block Index.
type DBI struct {
	geo         addr.Geometry
	prm         config.DBIParams
	sets        int
	ways        int
	granularity int
	regionShift uint
	entries     []Entry
	clock       uint64
	rng         *rand.Rand
	src         rand.Source // rng's source, retained for state capture

	Stat Stats
}

// New builds a DBI from functional options (options.go). Sizing comes
// from exactly one of WithCacheBlocks (track α × the cache's blocks,
// the simulator's framing) or WithRows (an explicit entry budget, the
// service framing); everything else defaults to the paper's Table-1
// DBI against the default geometry.
func New(opts ...Option) (*DBI, error) {
	o := options{geo: addr.Default(), prm: DefaultParams()}
	for _, fn := range opts {
		fn(&o)
	}
	geo, prm := o.geo, o.prm
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if prm.Granularity > geo.BlocksPerRow() {
		return nil, fmt.Errorf("dbi: granularity %d exceeds %d blocks per DRAM row",
			prm.Granularity, geo.BlocksPerRow())
	}
	var entries int
	switch {
	case o.rows > 0:
		entries = o.rows
		if entries < prm.Associativity {
			entries = prm.Associativity
		}
	case o.cacheBlocks > 0:
		entries = prm.Entries(o.cacheBlocks)
	default:
		return nil, fmt.Errorf("dbi: capacity unset: pass WithCacheBlocks or WithRows")
	}
	sets := entries / prm.Associativity
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	src := rand.NewSource(o.seed)
	d := &DBI{
		geo:         geo,
		prm:         prm,
		sets:        sets,
		ways:        prm.Associativity,
		granularity: prm.Granularity,
		entries:     make([]Entry, sets*prm.Associativity),
		rng:         rand.New(src),
		src:         src,
	}
	d.regionShift = log2(uint64(prm.Granularity))
	words := (prm.Granularity + 63) / 64
	for i := range d.entries {
		d.entries[i].bits = make([]uint64, words)
	}
	if prm.BIPEpsilonDen <= 0 {
		d.prm.BIPEpsilonDen = 64
	}
	d.Stat.DirtyAtEviction = stats.NewHistogram(prm.Granularity)
	return d, nil
}

// Reset returns the DBI to power-on state for a new run with the given
// seed, reusing every allocation. The entry array is small (a few
// thousand entries at realistic α), so validity is cleared directly;
// the caches' multi-megabyte tag stores are where generation stamps pay
// off. Bit vectors and replacement metadata are zeroed too, so a reset
// DBI is field-for-field the DBI New would build.
func (d *DBI) Reset(seed int64) {
	for i := range d.entries {
		e := &d.entries[i]
		e.Valid = false
		e.Region = 0
		e.lastWrite = 0
		e.rwpv = 0
		e.clearAll()
	}
	d.clock = 0
	d.rng.Seed(seed)
	st := &d.Stat
	st.Lookups, st.Writes, st.Cleans = 0, 0, 0
	st.EntryInserts, st.Evictions, st.EvictionBlocks = 0, 0, 0
	st.DirtyAtEviction.Reset()
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Sets returns the number of DBI sets.
func (d *DBI) Sets() int { return d.sets }

// Ways returns the DBI associativity.
func (d *DBI) Ways() int { return d.ways }

// Entries returns the total entry count.
func (d *DBI) Entries() int { return len(d.entries) }

// TrackedBlocks returns the cumulative number of blocks the DBI can
// track (entries × granularity) — the numerator of α.
func (d *DBI) TrackedBlocks() int { return len(d.entries) * d.granularity }

// Granularity returns blocks per entry.
func (d *DBI) Granularity() int { return d.granularity }

// RegionOf maps a block to its DBI region.
func (d *DBI) RegionOf(b addr.BlockAddr) RegionID {
	return RegionID(uint64(b) >> d.regionShift)
}

// offsetOf returns the block's bit position within its region.
func (d *DBI) offsetOf(b addr.BlockAddr) int {
	return int(uint64(b) & (uint64(d.granularity) - 1))
}

// setOf hashes the region into a set. A multiplicative (Fibonacci) hash
// spreads regions evenly even when physical page placement happens to
// cluster: with few sets, a plain modulo would let an unlucky placement
// overload one set with the hot write working set and thrash it.
func (d *DBI) setOf(r RegionID) int {
	const golden = 0x9E3779B97F4A7C15
	h := uint64(r) * golden
	return int((h >> 32) & uint64(d.sets-1))
}

func (d *DBI) at(set, way int) *Entry { return &d.entries[set*d.ways+way] }

// find locates the entry for a region without counting a lookup.
func (d *DBI) find(r RegionID) *Entry {
	set := d.setOf(r)
	for w := 0; w < d.ways; w++ {
		e := d.at(set, w)
		if e.Valid && e.Region == r {
			return e
		}
	}
	return nil
}

// IsDirty implements the DBI's defining query: the block is dirty iff a
// valid entry for its region exists and its bit is set.
func (d *DBI) IsDirty(b addr.BlockAddr) bool {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	return e != nil && e.bit(d.offsetOf(b))
}

// SetDirty marks a block dirty (a writeback request arrived at the
// cache, Section 2.2.2). If the region has no entry, one is inserted,
// possibly evicting another entry; the eviction (if any) is returned and
// the caller must write back and clean every listed block.
func (d *DBI) SetDirty(b addr.BlockAddr) (ev Eviction, evicted bool) {
	return d.SetDirtyInto(b, nil)
}

// SetDirtyInto is SetDirty with a caller-provided scratch buffer: when
// the insert displaces an entry, the eviction's Blocks list is built by
// appending into scratch (re-sliced to zero length), so a caller that
// recycles buffers pays no allocation per eviction. When no eviction
// occurs scratch is untouched and the caller keeps ownership; on
// eviction the returned Blocks alias (or, if scratch was too small, a
// regrown copy of) scratch.
func (d *DBI) SetDirtyInto(b addr.BlockAddr, scratch []addr.BlockAddr) (ev Eviction, evicted bool) {
	d.Stat.Writes.Inc()
	d.clock++
	r := d.RegionOf(b)
	if e := d.find(r); e != nil {
		e.setBit(d.offsetOf(b))
		e.lastWrite = d.clock
		e.rwpv = 0
		return Eviction{}, false
	}
	set := d.setOf(r)
	way, victim := d.allocate(set)
	if victim != nil {
		ev = d.evict(victim, scratch[:0])
		evicted = true
	}
	e := d.at(set, way)
	e.Valid = true
	e.Region = r
	e.clearAll()
	e.setBit(d.offsetOf(b))
	d.insertMetadata(e)
	d.Stat.EntryInserts.Inc()
	return ev, evicted
}

// allocate picks a way in the set, returning the victim entry when a
// valid entry must be displaced.
func (d *DBI) allocate(set int) (way int, victim *Entry) {
	for w := 0; w < d.ways; w++ {
		if !d.at(set, w).Valid {
			return w, nil
		}
	}
	w := d.victimWay(set)
	return w, d.at(set, w)
}

// victimWay applies the configured DBI replacement policy (Section 4.3).
func (d *DBI) victimWay(set int) int {
	switch d.prm.Replacement {
	case config.DBILRW, config.DBILRWBIP:
		best, bestStamp := 0, d.at(set, 0).lastWrite
		for w := 1; w < d.ways; w++ {
			if s := d.at(set, w).lastWrite; s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return best
	case config.DBIRWIP:
		for {
			for w := 0; w < d.ways; w++ {
				if d.at(set, w).rwpv >= 3 {
					return w
				}
			}
			for w := 0; w < d.ways; w++ {
				d.at(set, w).rwpv++
			}
		}
	case config.DBIMaxDirty:
		best, bestN := 0, d.at(set, 0).DirtyCount()
		for w := 1; w < d.ways; w++ {
			if n := d.at(set, w).DirtyCount(); n > bestN {
				best, bestN = w, n
			}
		}
		return best
	case config.DBIMinDirty:
		best, bestN := 0, d.at(set, 0).DirtyCount()
		for w := 1; w < d.ways; w++ {
			if n := d.at(set, w).DirtyCount(); n < bestN {
				best, bestN = w, n
			}
		}
		return best
	}
	return 0
}

// insertMetadata initializes replacement metadata for a fresh entry.
func (d *DBI) insertMetadata(e *Entry) {
	switch d.prm.Replacement {
	case config.DBILRWBIP:
		// Bimodal insertion: mostly insert at the LRW position so a
		// single burst of writes to a cold row cannot displace the hot
		// write working set.
		if d.rng.Intn(d.prm.BIPEpsilonDen) != 0 {
			e.lastWrite = 0
			return
		}
		e.lastWrite = d.clock
	case config.DBIRWIP:
		e.rwpv = 2
		e.lastWrite = d.clock
	default:
		e.lastWrite = d.clock
	}
}

// evict harvests the eviction's writeback list (appending into dst) and
// invalidates the entry.
func (d *DBI) evict(e *Entry, dst []addr.BlockAddr) Eviction {
	ev := Eviction{Region: e.Region, Blocks: d.blocksOfInto(e, dst)}
	d.Stat.Evictions.Inc()
	d.Stat.EvictionBlocks.Add(uint64(len(ev.Blocks)))
	d.Stat.DirtyAtEviction.Observe(len(ev.Blocks))
	e.Valid = false
	e.clearAll()
	return ev
}

// blocksOf lists the dirty block addresses of an entry.
func (d *DBI) blocksOf(e *Entry) []addr.BlockAddr {
	return d.blocksOfInto(e, nil)
}

// blocksOfInto appends the entry's dirty block addresses to dst.
func (d *DBI) blocksOfInto(e *Entry, dst []addr.BlockAddr) []addr.BlockAddr {
	base := uint64(e.Region) << d.regionShift
	for i := 0; i < d.granularity; i++ {
		if e.bit(i) {
			dst = append(dst, addr.BlockAddr(base|uint64(i)))
		}
	}
	return dst
}

// ClearDirty resets a block's dirty bit (the block was written back on a
// cache eviction, Section 2.2.3). When the last dirty bit of an entry
// clears, the entry is invalidated so it can track another row. It
// reports whether the block was actually marked dirty.
func (d *DBI) ClearDirty(b addr.BlockAddr) bool {
	d.Stat.Cleans.Inc()
	e := d.find(d.RegionOf(b))
	if e == nil {
		return false
	}
	off := d.offsetOf(b)
	if !e.bit(off) {
		return false
	}
	e.clearBit(off)
	if e.DirtyCount() == 0 {
		e.Valid = false
	}
	return true
}

// DirtyBlocksInRegion returns every dirty block co-located with b in its
// DBI entry — the single query that powers aggressive writeback (AWB,
// Section 3.1). The result includes b itself if dirty.
func (d *DBI) DirtyBlocksInRegion(b addr.BlockAddr) []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	if e == nil {
		return nil
	}
	return d.blocksOf(e)
}

// DirtyBlocksInRegionInto is DirtyBlocksInRegion appending into a
// caller-provided scratch slice, for the per-eviction AWB harvest path
// where a fresh slice per query would dominate the allocation profile.
func (d *DBI) DirtyBlocksInRegionInto(b addr.BlockAddr, dst []addr.BlockAddr) []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	if e == nil {
		return dst
	}
	return d.blocksOfInto(e, dst)
}

// DirtyCount returns the total number of dirty blocks tracked.
func (d *DBI) DirtyCount() int {
	n := 0
	for i := range d.entries {
		if d.entries[i].Valid {
			n += d.entries[i].DirtyCount()
		}
	}
	return n
}

// RegisterMetrics adds the DBI's probes to a telemetry registry:
// operation counters, occupancy gauges (entry-eviction pressure shows
// up as valid_entries pinned at capacity while evictions climb), and
// the dirty-blocks-per-evicted-entry histogram.
func (d *DBI) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterStat("dbi.lookups", &d.Stat.Lookups)
	reg.CounterStat("dbi.writes", &d.Stat.Writes)
	reg.CounterStat("dbi.cleans", &d.Stat.Cleans)
	reg.CounterStat("dbi.entry_inserts", &d.Stat.EntryInserts)
	reg.CounterStat("dbi.evictions", &d.Stat.Evictions)
	reg.CounterStat("dbi.eviction_blocks", &d.Stat.EvictionBlocks)
	reg.Gauge("dbi.valid_entries", func() float64 { return float64(d.ValidEntries()) })
	reg.Gauge("dbi.dirty_blocks", func() float64 { return float64(d.DirtyCount()) })
	reg.Histogram("dbi.dirty_at_eviction", d.Stat.DirtyAtEviction)
}

// ValidEntries returns the number of valid entries.
func (d *DBI) ValidEntries() int {
	n := 0
	for i := range d.entries {
		if d.entries[i].Valid {
			n++
		}
	}
	return n
}
