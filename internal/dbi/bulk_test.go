package dbi

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

func TestRowHasDirty(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	// Granularity 64, 128 blocks/row: row 0 spans regions 0 and 1.
	d.SetDirty(70) // second half of row 0
	if !d.RowHasDirty(0) {
		t.Fatal("row 0 should have dirty blocks")
	}
	if d.RowHasDirty(1) {
		t.Fatal("row 1 should be clean")
	}
}

func TestRowHasDirtyFullRowGranularity(t *testing.T) {
	p := params(config.DBILRW)
	p.Granularity = 128
	d, err := New(WithParams(p), WithCacheBlocks(32768), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	d.SetDirty(128*5 + 3)
	if !d.RowHasDirty(5) || d.RowHasDirty(4) {
		t.Fatal("row dirty query wrong at granularity 128")
	}
}

func TestBankHasDirty(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	// Block 0 -> row 0 -> bank 0.
	d.SetDirty(0)
	if !d.BankHasDirty(0) {
		t.Fatal("bank 0 should be dirty")
	}
	if d.BankHasDirty(3) {
		t.Fatal("bank 3 should be clean")
	}
	// Row 3 -> bank 3.
	d.SetDirty(addr.BlockAddr(3 * 128))
	if !d.BankHasDirty(3) {
		t.Fatal("bank 3 should now be dirty")
	}
}

func TestAllDirtyBlocksAndFlush(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	want := map[addr.BlockAddr]bool{}
	for _, b := range []addr.BlockAddr{1, 65, 300, 4096} {
		d.SetDirty(b)
		want[b] = true
	}
	got := d.AllDirtyBlocks()
	if len(got) != len(want) {
		t.Fatalf("AllDirtyBlocks = %v", got)
	}
	for _, b := range got {
		if !want[b] {
			t.Fatalf("unexpected dirty block %d", b)
		}
	}
	evs := d.Flush()
	total := 0
	for _, ev := range evs {
		total += len(ev.Blocks)
	}
	if total != len(want) {
		t.Fatalf("flush wrote back %d blocks, want %d", total, len(want))
	}
	if d.DirtyCount() != 0 || d.ValidEntries() != 0 {
		t.Fatal("DBI not empty after flush")
	}
	if len(d.Flush()) != 0 {
		t.Fatal("second flush returned work")
	}
}

func TestFlushGroupsByRegion(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	for i := 0; i < 10; i++ {
		d.SetDirty(addr.BlockAddr(i)) // all in region 0
	}
	evs := d.Flush()
	if len(evs) != 1 {
		t.Fatalf("flush produced %d evictions, want 1 (row-grouped)", len(evs))
	}
	if len(evs[0].Blocks) != 10 {
		t.Fatalf("eviction blocks = %d", len(evs[0].Blocks))
	}
}

func TestDirtyInRange(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	for _, b := range []addr.BlockAddr{10, 50, 100, 200} {
		d.SetDirty(b)
	}
	got := d.DirtyInRange(40, 150)
	if len(got) != 2 || got[0] != 50 || got[1] != 100 {
		t.Fatalf("DirtyInRange = %v", got)
	}
	if d.DirtyInRange(300, 300) != nil {
		t.Fatal("empty range returned blocks")
	}
	if d.DirtyInRange(150, 100) != nil {
		t.Fatal("inverted range returned blocks")
	}
	// Full coverage.
	if got := d.DirtyInRange(0, 1<<20); len(got) != 4 {
		t.Fatalf("full-range = %v", got)
	}
}
