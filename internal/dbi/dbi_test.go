package dbi

import (
	"testing"
	"testing/quick"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

func params(repl config.DBIReplacement) config.DBIParams {
	return config.DBIParams{
		AlphaNum: 1, AlphaDen: 4, Granularity: 64,
		Associativity: 4, Latency: 4,
		Replacement: repl, BIPEpsilonDen: 64,
	}
}

// newDBI builds a small DBI: 32768-block cache, α=1/4 -> 8192 tracked,
// granularity 64 -> 128 entries, 4-way -> 32 sets.
func newDBI(t *testing.T, repl config.DBIReplacement) *DBI {
	t.Helper()
	d, err := New(WithParams(params(repl)), WithCacheBlocks(32768), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sameSetBlocks returns the base block addresses of n distinct regions
// that all hash into the same DBI set, so tests can fill one set
// deterministically regardless of the set-index hash.
func sameSetBlocks(d *DBI, n int) []addr.BlockAddr {
	want := d.setOf(RegionID(0))
	out := []addr.BlockAddr{0}
	for r := uint64(1); len(out) < n; r++ {
		if d.setOf(RegionID(r)) == want {
			out = append(out, addr.BlockAddr(r*uint64(d.granularity)))
		}
	}
	return out
}

func TestGeometry(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	if d.Entries() != 128 || d.Sets() != 32 || d.Ways() != 4 {
		t.Fatalf("geometry: %d entries, %d sets, %d ways", d.Entries(), d.Sets(), d.Ways())
	}
	if d.TrackedBlocks() != 8192 {
		t.Fatalf("tracked = %d, want 8192 (α=1/4 of 32768)", d.TrackedBlocks())
	}
	if d.Granularity() != 64 {
		t.Fatalf("granularity = %d", d.Granularity())
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	p := params(config.DBILRW)
	p.Granularity = 256 // exceeds 128 blocks per row
	if _, err := New(WithParams(p), WithCacheBlocks(32768), WithSeed(1)); err == nil {
		t.Fatal("granularity above blocks-per-row accepted")
	}
	p = params(config.DBILRW)
	p.AlphaDen = 0
	if _, err := New(WithParams(p), WithCacheBlocks(32768), WithSeed(1)); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestDirtySemantics(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	b := addr.BlockAddr(12345)
	if d.IsDirty(b) {
		t.Fatal("fresh DBI reports dirty")
	}
	if _, ev := d.SetDirty(b); ev {
		t.Fatal("eviction on first insert")
	}
	if !d.IsDirty(b) {
		t.Fatal("block not dirty after SetDirty")
	}
	// A row-mate in the same region must not be dirty.
	if d.IsDirty(b + 1) {
		t.Fatal("neighbour dirty")
	}
	if !d.ClearDirty(b) {
		t.Fatal("ClearDirty missed the block")
	}
	if d.IsDirty(b) {
		t.Fatal("still dirty after clear")
	}
	if d.ClearDirty(b) {
		t.Fatal("double clear reported success")
	}
}

func TestLastClearInvalidatesEntry(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	d.SetDirty(100)
	d.SetDirty(101)
	if d.ValidEntries() != 1 {
		t.Fatalf("valid entries = %d", d.ValidEntries())
	}
	d.ClearDirty(100)
	if d.ValidEntries() != 1 {
		t.Fatal("entry invalidated while blocks remain dirty")
	}
	d.ClearDirty(101)
	if d.ValidEntries() != 0 {
		t.Fatal("entry not invalidated after last block cleared")
	}
}

func TestDirtyBlocksInRegion(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	// Region of block 0: blocks 0..63.
	d.SetDirty(3)
	d.SetDirty(17)
	d.SetDirty(63)
	d.SetDirty(64) // different region
	got := d.DirtyBlocksInRegion(3)
	want := []addr.BlockAddr{3, 17, 63}
	if len(got) != len(want) {
		t.Fatalf("DirtyBlocksInRegion = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DirtyBlocksInRegion = %v, want %v", got, want)
		}
	}
	if d.DirtyBlocksInRegion(9999999) != nil {
		t.Fatal("untracked region returned blocks")
	}
}

func TestEvictionListsAllDirtyBlocks(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	// Fill one set: regions mapping to set 0 are region = k*32 (32 sets).
	rb := sameSetBlocks(d, 8)
	regionBlocks := func(k int) addr.BlockAddr { return rb[k] }
	for k := 0; k < 4; k++ {
		d.SetDirty(regionBlocks(k))
		d.SetDirty(regionBlocks(k) + 5)
	}
	if d.ValidEntries() != 4 {
		t.Fatalf("valid entries = %d", d.ValidEntries())
	}
	// Fifth region in the same set evicts the least recently written
	// (region 0).
	ev, evicted := d.SetDirty(regionBlocks(4))
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if len(ev.Blocks) != 2 || ev.Blocks[0] != regionBlocks(0) || ev.Blocks[1] != regionBlocks(0)+5 {
		t.Fatalf("eviction blocks = %v", ev.Blocks)
	}
	// Evicted blocks are no longer dirty.
	if d.IsDirty(regionBlocks(0)) || d.IsDirty(regionBlocks(0)+5) {
		t.Fatal("evicted blocks still dirty")
	}
	if d.Stat.Evictions.Value() != 1 || d.Stat.EvictionBlocks.Value() != 2 {
		t.Fatalf("eviction stats: %d/%d", d.Stat.Evictions.Value(), d.Stat.EvictionBlocks.Value())
	}
}

func TestLRWEvictsLeastRecentlyWritten(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	rb := sameSetBlocks(d, 150)
	regionBlocks := func(k int) addr.BlockAddr { return rb[k] }
	for k := 0; k < 4; k++ {
		d.SetDirty(regionBlocks(k))
	}
	// Rewrite region 0: region 1 becomes LRW.
	d.SetDirty(regionBlocks(0) + 1)
	ev, evicted := d.SetDirty(regionBlocks(4))
	if !evicted || ev.Blocks[0] != regionBlocks(1) {
		t.Fatalf("LRW evicted %v, want region 1", ev.Blocks)
	}
}

func TestMaxMinDirtyPolicies(t *testing.T) {
	for _, tc := range []struct {
		repl config.DBIReplacement
		want int // region index expected to be evicted
	}{
		{config.DBIMaxDirty, 2},
		{config.DBIMinDirty, 1},
	} {
		d := newDBI(t, tc.repl)
		rb := sameSetBlocks(d, 150)
		regionBlocks := func(k int) addr.BlockAddr { return rb[k] }
		// Region 0: 2 dirty; region 1: 1 dirty; region 2: 3 dirty;
		// region 3: 2 dirty.
		d.SetDirty(regionBlocks(0))
		d.SetDirty(regionBlocks(0) + 1)
		d.SetDirty(regionBlocks(1))
		d.SetDirty(regionBlocks(2))
		d.SetDirty(regionBlocks(2) + 1)
		d.SetDirty(regionBlocks(2) + 2)
		d.SetDirty(regionBlocks(3))
		d.SetDirty(regionBlocks(3) + 1)
		ev, evicted := d.SetDirty(regionBlocks(4))
		if !evicted {
			t.Fatalf("%v: no eviction", tc.repl)
		}
		if ev.Blocks[0] != regionBlocks(tc.want) {
			t.Fatalf("%v evicted %v, want region %d", tc.repl, ev.Blocks, tc.want)
		}
	}
}

func TestRWIPPolicyTerminatesAndEvicts(t *testing.T) {
	d := newDBI(t, config.DBIRWIP)
	rb := sameSetBlocks(d, 150)
	regionBlocks := func(k int) addr.BlockAddr { return rb[k] }
	for k := 0; k < 4; k++ {
		d.SetDirty(regionBlocks(k))
	}
	// Keep region 3 recently written (rwpv=0); others age.
	d.SetDirty(regionBlocks(3) + 1)
	ev, evicted := d.SetDirty(regionBlocks(4))
	if !evicted {
		t.Fatal("no eviction")
	}
	if ev.Blocks[0] == regionBlocks(3) {
		t.Fatal("RWIP evicted the most recently rewritten region")
	}
}

func TestLRWBIPInsertsAtLRWPosition(t *testing.T) {
	// With an (effectively) infinite epsilon denominator, BIP always
	// inserts at the LRW position: a stream of new regions evicts only
	// itself, never the established (rewritten) entries.
	p := params(config.DBILRWBIP)
	p.BIPEpsilonDen = 1 << 30
	d, err := New(WithParams(p), WithCacheBlocks(32768), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rb := sameSetBlocks(d, 150)
	regionBlocks := func(k int) addr.BlockAddr { return rb[k] }
	for k := 0; k < 4; k++ {
		d.SetDirty(regionBlocks(k))
		d.SetDirty(regionBlocks(k) + 1) // rewrite: promote to MRW
	}
	for k := 4; k < 104; k++ {
		d.SetDirty(regionBlocks(k))
	}
	survivors := 0
	for k := 1; k < 4; k++ { // region 0 was the LRW victim of the first insert
		if d.IsDirty(regionBlocks(k)) {
			survivors++
		}
	}
	if survivors != 3 {
		t.Fatalf("established regions surviving BIP stream: %d/3", survivors)
	}
}

func TestLRWBIPEpsilonOneBehavesLikeLRW(t *testing.T) {
	// With epsilon denominator 1 every insert is an MRW insert, i.e.
	// plain LRW: a long enough stream cycles the whole set.
	p := params(config.DBILRWBIP)
	p.BIPEpsilonDen = 1
	d, err := New(WithParams(p), WithCacheBlocks(32768), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rb := sameSetBlocks(d, 150)
	regionBlocks := func(k int) addr.BlockAddr { return rb[k] }
	for k := 0; k < 4; k++ {
		d.SetDirty(regionBlocks(k))
		d.SetDirty(regionBlocks(k) + 1)
	}
	for k := 4; k < 12; k++ {
		d.SetDirty(regionBlocks(k))
	}
	for k := 0; k < 4; k++ {
		if d.IsDirty(regionBlocks(k)) {
			t.Fatalf("region %d survived an MRW-insert stream", k)
		}
	}
}

func TestRegionMappingGranularity(t *testing.T) {
	p := params(config.DBILRW)
	p.Granularity = 16
	d, err := New(WithParams(p), WithCacheBlocks(32768), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.RegionOf(15) != 0 || d.RegionOf(16) != 1 {
		t.Fatal("region mapping wrong for granularity 16")
	}
	d.SetDirty(0)
	d.SetDirty(16)
	// Blocks 0 and 16 are row-mates in DRAM but different DBI regions.
	if got := d.DirtyBlocksInRegion(0); len(got) != 1 {
		t.Fatalf("region blocks = %v", got)
	}
}

func TestStatsCounting(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	d.IsDirty(5)
	d.SetDirty(5)
	d.ClearDirty(5)
	if d.Stat.Lookups.Value() != 1 || d.Stat.Writes.Value() != 1 || d.Stat.Cleans.Value() != 1 {
		t.Fatalf("stats: %d/%d/%d", d.Stat.Lookups.Value(), d.Stat.Writes.Value(), d.Stat.Cleans.Value())
	}
}

func TestDirtyCountTracksAll(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	for i := 0; i < 100; i++ {
		d.SetDirty(addr.BlockAddr(i * 7))
	}
	if d.DirtyCount() == 0 {
		t.Fatal("dirty count zero")
	}
	sum := 0
	for i := 0; i < 100; i++ {
		if d.IsDirty(addr.BlockAddr(i * 7)) {
			sum++
		}
	}
	if sum != d.DirtyCount() {
		t.Fatalf("IsDirty sum %d != DirtyCount %d", sum, d.DirtyCount())
	}
}

// Property: after any sequence of SetDirty/ClearDirty, a block is dirty
// iff the reference model says so (accounting for evictions cleaning
// whole regions).
func TestQuickReferenceModel(t *testing.T) {
	f := func(ops []uint32) bool {
		d, err := New(WithParams(params(config.DBILRW)), WithCacheBlocks(4096), WithSeed(3))
		if err != nil {
			return false
		}
		ref := map[addr.BlockAddr]bool{}
		for _, op := range ops {
			b := addr.BlockAddr(op % 65536)
			if op&1 == 0 {
				ev, evicted := d.SetDirty(b)
				ref[b] = true
				if evicted {
					for _, eb := range ev.Blocks {
						if !ref[eb] {
							return false // evicted a block the model says is clean
						}
						delete(ref, eb)
					}
				}
			} else {
				was := d.ClearDirty(b)
				if was != ref[b] {
					return false
				}
				delete(ref, b)
			}
		}
		for b, dirty := range ref {
			if d.IsDirty(b) != dirty {
				return false
			}
		}
		count := 0
		for range ref {
			count++
		}
		return d.DirtyCount() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DBI never tracks more dirty blocks than α allows.
func TestQuickCapacityBound(t *testing.T) {
	f := func(ops []uint32) bool {
		d, err := New(WithParams(params(config.DBILRW)), WithCacheBlocks(4096), WithSeed(5))
		if err != nil {
			return false
		}
		for _, op := range ops {
			d.SetDirty(addr.BlockAddr(op % 1 << 20))
			if d.DirtyCount() > d.TrackedBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
