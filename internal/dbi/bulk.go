package dbi

import "dbisim/internal/addr"

// Bulk queries (Section 7 of the paper): because the DBI is a compact,
// row-organized record of all dirty state, questions like "does this
// DRAM row/bank hold dirty blocks", "flush everything" and "is any block
// of this DMA range dirty" are answered with a handful of entry scans
// instead of a full tag-store walk. The scans walk the flat columns
// directly: validity stamps first (one dense array), bit words only for
// live entries.

// RowHasDirty reports whether any block of the DRAM row is dirty
// ("Does DRAM row R have any dirty blocks?").
func (d *DBI) RowHasDirty(r addr.RowID) bool {
	d.Stat.Lookups.Inc()
	// A row spans one or more regions depending on granularity.
	perRow := d.geo.BlocksPerRow() / d.granularity
	first := RegionID(uint64(r) * uint64(perRow))
	for i := 0; i < perRow; i++ {
		if e := d.find(first + RegionID(i)); e >= 0 && d.dirtyCountOf(e) > 0 {
			return true
		}
	}
	return false
}

// BankHasDirty reports whether any dirty block maps to the DRAM bank
// ("Does bank X have any dirty blocks?") — useful for rank/bank idle-time
// write scheduling.
func (d *DBI) BankHasDirty(bank int) bool {
	d.Stat.Lookups.Inc()
	for e := range d.stamps {
		if !d.validAt(e) || d.dirtyCountOf(e) == 0 {
			continue
		}
		base := uint64(d.regions[e]) << d.regionShift
		row := d.geo.RowOf(addr.BlockAddr(base))
		if d.geo.BankOf(row) == bank {
			return true
		}
	}
	return false
}

// AllDirtyBlocks lists every dirty block the DBI tracks, grouped by
// entry (and therefore by DRAM row) — the access order a cache flush
// wants.
func (d *DBI) AllDirtyBlocks() []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	var out []addr.BlockAddr
	for e := range d.stamps {
		if d.validAt(e) {
			out = d.blocksOfInto(e, out)
		}
	}
	return out
}

// Flush evicts every valid entry, returning the row-grouped writeback
// work a whole-cache flush must perform (powering down a bank,
// persistent-memory commit). After Flush the DBI is empty: no block is
// dirty.
func (d *DBI) Flush() []Eviction {
	var evs []Eviction
	for e := range d.stamps {
		if d.validAt(e) {
			evs = append(evs, d.evict(e, nil))
		}
	}
	return evs
}

// FlushRegionInto harvests every dirty block of b's region, appending
// to dst, and invalidates the entry so nothing in the region is dirty
// afterwards. This is the AWB primitive a flush coordinator wants: one
// query yields the whole row's writeback batch and retires the entry
// in the same step. Unlike a capacity eviction it is deliberate, so it
// counts as a lookup, not an eviction.
func (d *DBI) FlushRegionInto(b addr.BlockAddr, dst []addr.BlockAddr) []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	e := d.find(d.RegionOf(b))
	if e < 0 {
		return dst
	}
	dst = d.blocksOfInto(e, dst)
	d.invalidate(e)
	d.clearWords(e)
	return dst
}

// DirtyInRange lists dirty blocks within [lo, hi) — the coherence query
// a bulk DMA from memory must answer before reading the range.
func (d *DBI) DirtyInRange(lo, hi addr.BlockAddr) []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	if hi <= lo {
		return nil
	}
	var out []addr.BlockAddr
	for r := d.RegionOf(lo); r <= d.RegionOf(hi-1); r++ {
		e := d.find(r)
		if e < 0 {
			continue
		}
		for _, b := range d.blocksOf(e) {
			if b >= lo && b < hi {
				out = append(out, b)
			}
		}
	}
	return out
}

// OldestDirtyRow returns the dirty blocks of the least recently written
// valid entry, or nil when nothing is dirty. Eager-writeback scheduling
// (Section 7) uses it to pick the row least likely to absorb further
// writes before flushing it during memory idle time.
func (d *DBI) OldestDirtyRow() []addr.BlockAddr {
	d.Stat.Lookups.Inc()
	best := -1
	for e := range d.stamps {
		if !d.validAt(e) || d.dirtyCountOf(e) == 0 {
			continue
		}
		if best < 0 || d.lastWrite[e] < d.lastWrite[best] {
			best = e
		}
	}
	if best < 0 {
		return nil
	}
	return d.blocksOf(best)
}
