package dbi

import (
	"testing"

	"dbisim/internal/addr"
)

func benchDBI(b *testing.B) *DBI {
	b.Helper()
	d, err := New(WithCacheBlocks(262144), WithSeed(1)) // 16MB-cache-sized DBI: 1024 entries
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSetDirty measures the hot write path including evictions.
func BenchmarkSetDirty(b *testing.B) {
	d := benchDBI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SetDirty(addr.BlockAddr(i * 37))
	}
}

// BenchmarkIsDirty measures the CLB guard query.
func BenchmarkIsDirty(b *testing.B) {
	d := benchDBI(b)
	for i := 0; i < 4096; i++ {
		d.SetDirty(addr.BlockAddr(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.IsDirty(addr.BlockAddr(i & 8191))
	}
}

// BenchmarkDirtyBlocksInRegion measures the AWB harvest query.
func BenchmarkDirtyBlocksInRegion(b *testing.B) {
	d := benchDBI(b)
	for i := 0; i < 64; i++ {
		d.SetDirty(addr.BlockAddr(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.DirtyBlocksInRegion(0); len(got) == 0 {
			b.Fatal("empty region")
		}
	}
}

// BenchmarkSetDirtyInto measures the allocation-free steady-state write
// path the LLC uses: eviction block lists land in a recycled scratch
// buffer instead of a fresh slice.
func BenchmarkSetDirtyInto(b *testing.B) {
	d := benchDBI(b)
	var scratch []addr.BlockAddr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev, evicted := d.SetDirtyInto(addr.BlockAddr(i*37), scratch); evicted {
			scratch = ev.Blocks
		}
	}
}

// BenchmarkClearDirty measures the cache-eviction path.
func BenchmarkClearDirty(b *testing.B) {
	d := benchDBI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := addr.BlockAddr(i & 65535)
		d.SetDirty(blk)
		d.ClearDirty(blk)
	}
}
