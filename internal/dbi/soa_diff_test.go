package dbi

// Differential tests pinning the struct-of-arrays DBI against a
// retained array-of-structs reference implementation: the pre-refactor
// layout with one record per entry and a per-entry heap-allocated bit
// vector. Both implementations consume identical randomized operation
// streams; every answer, every eviction (region and block list) and the
// final structural state must agree exactly, for every replacement
// policy. The reference is deliberately naive — early-exit probe loops,
// pointer-chased bit slices — so a layout bug in the columnar store
// cannot be mirrored here by construction.

import (
	"math/rand"
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

// refDBIEntry is the old AoS layout: one record per entry, dirty bits
// in a per-entry slice. (Only tests may use this layout; CI rejects it
// in non-test files.)
type refDBIEntry struct {
	valid     bool
	region    RegionID
	lastWrite uint64
	rwpv      uint8
	bits      []uint64
}

type refDBI struct {
	sets, ways  int
	granularity int
	regionShift uint
	wpe         int
	repl        config.DBIReplacement
	epsDen      int
	clock       uint64
	rng         *rand.Rand
	entries     []refDBIEntry

	inserts, evictions, evictionBlocks uint64
}

// newRefDBI mirrors the live DBI's geometry so both see the same sets,
// ways and hash, and seeds an independent rng with the same seed.
func newRefDBI(d *DBI, seed int64) *refDBI {
	r := &refDBI{
		sets: d.Sets(), ways: d.Ways(),
		granularity: d.Granularity(),
		regionShift: d.regionShift,
		wpe:         (d.Granularity() + 63) / 64,
		repl:        d.prm.Replacement,
		epsDen:      d.prm.BIPEpsilonDen,
		rng:         rand.New(rand.NewSource(seed)),
		entries:     make([]refDBIEntry, d.Sets()*d.Ways()),
	}
	for i := range r.entries {
		r.entries[i].bits = make([]uint64, r.wpe)
	}
	return r
}

func (r *refDBI) regionOf(b addr.BlockAddr) RegionID {
	return RegionID(uint64(b) >> r.regionShift)
}

func (r *refDBI) offsetOf(b addr.BlockAddr) int {
	return int(uint64(b) & (uint64(r.granularity) - 1))
}

func (r *refDBI) setOf(reg RegionID) int {
	const golden = 0x9E3779B97F4A7C15
	return int((uint64(reg) * golden >> 32) & uint64(r.sets-1))
}

// find is the classic early-exit AoS probe.
func (r *refDBI) find(reg RegionID) *refDBIEntry {
	base := r.setOf(reg) * r.ways
	for w := 0; w < r.ways; w++ {
		e := &r.entries[base+w]
		if e.valid && e.region == reg {
			return e
		}
	}
	return nil
}

func (e *refDBIEntry) bit(i int) bool { return e.bits[i>>6]&(1<<(i&63)) != 0 }
func (e *refDBIEntry) setBit(i int)   { e.bits[i>>6] |= 1 << (i & 63) }
func (e *refDBIEntry) clearBit(i int) { e.bits[i>>6] &^= 1 << (i & 63) }
func (e *refDBIEntry) dirtyCount() int {
	n := 0
	for _, w := range e.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (r *refDBI) blocksOf(e *refDBIEntry) []addr.BlockAddr {
	var out []addr.BlockAddr
	base := uint64(e.region) << r.regionShift
	for i := 0; i < r.granularity; i++ {
		if e.bit(i) {
			out = append(out, addr.BlockAddr(base|uint64(i)))
		}
	}
	return out
}

func (r *refDBI) isDirty(b addr.BlockAddr) bool {
	e := r.find(r.regionOf(b))
	return e != nil && e.bit(r.offsetOf(b))
}

func (r *refDBI) victimWay(set int) int {
	base := set * r.ways
	es := r.entries[base : base+r.ways]
	switch r.repl {
	case config.DBILRW, config.DBILRWBIP:
		best := 0
		for w := 1; w < r.ways; w++ {
			if es[w].lastWrite < es[best].lastWrite {
				best = w
			}
		}
		return best
	case config.DBIRWIP:
		for {
			for w := range es {
				if es[w].rwpv >= 3 {
					return w
				}
			}
			for w := range es {
				es[w].rwpv++
			}
		}
	case config.DBIMaxDirty:
		best := 0
		for w := 1; w < r.ways; w++ {
			if es[w].dirtyCount() > es[best].dirtyCount() {
				best = w
			}
		}
		return best
	case config.DBIMinDirty:
		best := 0
		for w := 1; w < r.ways; w++ {
			if es[w].dirtyCount() < es[best].dirtyCount() {
				best = w
			}
		}
		return best
	}
	return 0
}

func (r *refDBI) setDirty(b addr.BlockAddr) (ev Eviction, evicted bool) {
	r.clock++
	reg := r.regionOf(b)
	if e := r.find(reg); e != nil {
		e.setBit(r.offsetOf(b))
		e.lastWrite = r.clock
		e.rwpv = 0
		return Eviction{}, false
	}
	set := r.setOf(reg)
	base := set * r.ways
	way := -1
	for w := 0; w < r.ways; w++ {
		if !r.entries[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = r.victimWay(set)
		victim := &r.entries[base+way]
		ev = Eviction{Region: victim.region, Blocks: r.blocksOf(victim)}
		evicted = true
		r.evictions++
		r.evictionBlocks += uint64(len(ev.Blocks))
	}
	e := &r.entries[base+way]
	e.valid, e.region = true, reg
	for i := range e.bits {
		e.bits[i] = 0
	}
	e.setBit(r.offsetOf(b))
	switch r.repl {
	case config.DBILRWBIP:
		if r.rng.Intn(r.epsDen) != 0 {
			e.lastWrite = 0
		} else {
			e.lastWrite = r.clock
		}
	case config.DBIRWIP:
		e.rwpv = 2
		e.lastWrite = r.clock
	default:
		e.lastWrite = r.clock
	}
	r.inserts++
	return ev, evicted
}

func (r *refDBI) clearDirty(b addr.BlockAddr) bool {
	e := r.find(r.regionOf(b))
	if e == nil || !e.bit(r.offsetOf(b)) {
		return false
	}
	e.clearBit(r.offsetOf(b))
	if e.dirtyCount() == 0 {
		e.valid = false
	}
	return true
}

func (r *refDBI) dirtyCount() int {
	n := 0
	for i := range r.entries {
		if r.entries[i].valid {
			n += r.entries[i].dirtyCount()
		}
	}
	return n
}

func (r *refDBI) validEntries() int {
	n := 0
	for i := range r.entries {
		if r.entries[i].valid {
			n++
		}
	}
	return n
}

func sameBlocks(a, b []addr.BlockAddr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDifferentialSoAvsAoS(t *testing.T) {
	policies := []struct {
		name string
		repl config.DBIReplacement
	}{
		{"lrw", config.DBILRW},
		{"lrw-bip", config.DBILRWBIP},
		{"rwip", config.DBIRWIP},
		{"max-dirty", config.DBIMaxDirty},
		{"min-dirty", config.DBIMinDirty},
	}
	for _, pc := range policies {
		t.Run(pc.name, func(t *testing.T) {
			d := newDBI(t, pc.repl)
			ref := newRefDBI(d, 1)
			// Address space sized to force set conflicts and evictions:
			// ~4x the tracked capacity.
			space := int64(4 * d.TrackedBlocks())
			rng := rand.New(rand.NewSource(42))
			for op := 0; op < 100000; op++ {
				b := addr.BlockAddr(rng.Int63n(space))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					ev1, k1 := d.SetDirty(b)
					ev2, k2 := ref.setDirty(b)
					if k1 != k2 {
						t.Fatalf("op %d: SetDirty(%#x) evicted=%v, ref %v", op, uint64(b), k1, k2)
					}
					if k1 && (ev1.Region != ev2.Region || !sameBlocks(ev1.Blocks, ev2.Blocks)) {
						t.Fatalf("op %d: eviction mismatch: %+v vs ref %+v", op, ev1, ev2)
					}
				case 4, 5:
					if got, want := d.ClearDirty(b), ref.clearDirty(b); got != want {
						t.Fatalf("op %d: ClearDirty(%#x)=%v, ref %v", op, uint64(b), got, want)
					}
				case 6, 7, 8:
					if got, want := d.IsDirty(b), ref.isDirty(b); got != want {
						t.Fatalf("op %d: IsDirty(%#x)=%v, ref %v", op, uint64(b), got, want)
					}
				case 9:
					got := d.DirtyBlocksInRegion(b)
					var want []addr.BlockAddr
					if e := ref.find(ref.regionOf(b)); e != nil {
						want = ref.blocksOf(e)
					}
					if !sameBlocks(got, want) {
						t.Fatalf("op %d: DirtyBlocksInRegion(%#x) = %v, ref %v", op, uint64(b), got, want)
					}
				}
			}
			// Full structural state must agree: every (set, way) entry view.
			for set := 0; set < d.Sets(); set++ {
				for way := 0; way < d.Ways(); way++ {
					got := d.EntryAt(set, way)
					re := &ref.entries[set*ref.ways+way]
					want := Entry{}
					if re.valid {
						want = Entry{Valid: true, Region: re.region, Dirty: re.dirtyCount()}
					}
					if got != want {
						t.Fatalf("entry (%d,%d) = %+v, ref %+v", set, way, got, want)
					}
				}
			}
			if got, want := d.DirtyCount(), ref.dirtyCount(); got != want {
				t.Fatalf("DirtyCount = %d, ref %d", got, want)
			}
			if got, want := d.ValidEntries(), ref.validEntries(); got != want {
				t.Fatalf("ValidEntries = %d, ref %d", got, want)
			}
			if got, want := d.Stat.EntryInserts.Value(), ref.inserts; got != want {
				t.Fatalf("EntryInserts = %d, ref %d", got, want)
			}
			if got, want := d.Stat.Evictions.Value(), ref.evictions; got != want {
				t.Fatalf("Evictions = %d, ref %d", got, want)
			}
			if got, want := d.Stat.EvictionBlocks.Value(), ref.evictionBlocks; got != want {
				t.Fatalf("EvictionBlocks = %d, ref %d", got, want)
			}
		})
	}
}

// TestProbeLoopsDoNotAllocate pins the zero-allocation contract of the
// rewritten hot paths: the branchless probe (IsDirty), the steady-state
// write path with a recycled scratch buffer (SetDirtyInto) and the AWB
// harvest (DirtyBlocksInRegionInto).
func TestProbeLoopsDoNotAllocate(t *testing.T) {
	d := newDBI(t, config.DBILRW)
	blocks := sameSetBlocks(d, d.Ways()+1)
	for _, b := range blocks {
		d.SetDirty(b)
	}

	if n := testing.AllocsPerRun(1000, func() {
		d.IsDirty(blocks[0])
	}); n != 0 {
		t.Fatalf("IsDirty allocates %.1f per op", n)
	}

	var scratch []addr.BlockAddr
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		b := blocks[i%len(blocks)]
		i++
		if ev, evicted := d.SetDirtyInto(b, scratch); evicted {
			scratch = ev.Blocks
		}
	}); n != 0 {
		t.Fatalf("SetDirtyInto steady state allocates %.1f per op", n)
	}

	var dst []addr.BlockAddr
	if n := testing.AllocsPerRun(1000, func() {
		dst = d.DirtyBlocksInRegionInto(blocks[len(blocks)-1], dst[:0])
	}); n != 0 {
		t.Fatalf("DirtyBlocksInRegionInto allocates %.1f per op", n)
	}
}
