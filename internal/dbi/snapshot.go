package dbi

import (
	"dbisim/internal/randstate"
	"dbisim/internal/stats"
)

// State is a checkpoint of a DBI. It mirrors the live struct-of-arrays
// layout one-to-one — the validity-stamp, region, replacement-metadata
// columns and the flat bit-word array — so a capture is five flat
// copies, plus the LRW clock, the rng and the statistics (histogram
// included). The zero value is ready; buffers are reused across
// captures.
type State struct {
	gen       uint64
	stamps    []uint64
	regions   []RegionID
	lastWrite []uint64
	rwpv      []uint8
	words     []uint64
	clock     uint64
	rng       randstate.State

	lookups, writes, cleans               stats.Counter
	entryInserts, evictions, evictionBlks stats.Counter
	dirtyAtEviction                       stats.Histogram
}

// Snapshot captures the DBI into st.
func (d *DBI) Snapshot(st *State) {
	if len(st.stamps) != len(d.stamps) {
		st.stamps = make([]uint64, len(d.stamps))
		st.regions = make([]RegionID, len(d.regions))
		st.lastWrite = make([]uint64, len(d.lastWrite))
		st.rwpv = make([]uint8, len(d.rwpv))
		st.words = make([]uint64, len(d.words))
	}
	st.gen = d.gen
	copy(st.stamps, d.stamps)
	copy(st.regions, d.regions)
	copy(st.lastWrite, d.lastWrite)
	copy(st.rwpv, d.rwpv)
	copy(st.words, d.words)
	st.clock = d.clock
	randstate.MustSave(d.src, &st.rng)
	s := &d.Stat
	st.lookups, st.writes, st.cleans = s.Lookups, s.Writes, s.Cleans
	st.entryInserts, st.evictions, st.evictionBlks = s.EntryInserts, s.Evictions, s.EvictionBlocks
	st.dirtyAtEviction.CopyFrom(s.DirtyAtEviction)
}

// Restore writes st back into the DBI that produced it (identical
// parameters; the system layer enforces the geometry match). Every
// column is restored verbatim — stale (older-generation) slots
// included, which read paths never observe — so the index is bitwise
// the captured one.
func (d *DBI) Restore(st *State) {
	d.gen = st.gen
	copy(d.stamps, st.stamps)
	copy(d.regions, st.regions)
	copy(d.lastWrite, st.lastWrite)
	copy(d.rwpv, st.rwpv)
	copy(d.words, st.words)
	d.clock = st.clock
	randstate.MustRestore(d.src, &st.rng)
	s := &d.Stat
	s.Lookups, s.Writes, s.Cleans = st.lookups, st.writes, st.cleans
	s.EntryInserts, s.Evictions, s.EvictionBlocks = st.entryInserts, st.evictions, st.evictionBlks
	s.DirtyAtEviction.CopyFrom(&st.dirtyAtEviction)
}
