package dbi

import (
	"dbisim/internal/randstate"
	"dbisim/internal/stats"
)

// entryState mirrors one DBI entry without its bit-vector slice; the
// vectors of all entries are flattened into State.bits, so a checkpoint
// is two flat arrays instead of thousands of small slices.
type entryState struct {
	valid     bool
	region    RegionID
	lastWrite uint64
	rwpv      uint8
}

// State is a checkpoint of a DBI: entries, bit vectors, the LRW clock,
// the rng and the statistics (histogram included). The zero value is
// ready; buffers are reused across captures.
type State struct {
	entries []entryState
	bits    []uint64
	clock   uint64
	rng     randstate.State

	lookups, writes, cleans               stats.Counter
	entryInserts, evictions, evictionBlks stats.Counter
	dirtyAtEviction                       stats.Histogram
}

// Snapshot captures the DBI into st.
func (d *DBI) Snapshot(st *State) {
	if len(st.entries) != len(d.entries) {
		st.entries = make([]entryState, len(d.entries))
	}
	words := 0
	if len(d.entries) > 0 {
		words = len(d.entries[0].bits)
	}
	if len(st.bits) != len(d.entries)*words {
		st.bits = make([]uint64, len(d.entries)*words)
	}
	for i := range d.entries {
		e := &d.entries[i]
		st.entries[i] = entryState{e.Valid, e.Region, e.lastWrite, e.rwpv}
		copy(st.bits[i*words:(i+1)*words], e.bits)
	}
	st.clock = d.clock
	randstate.MustSave(d.src, &st.rng)
	s := &d.Stat
	st.lookups, st.writes, st.cleans = s.Lookups, s.Writes, s.Cleans
	st.entryInserts, st.evictions, st.evictionBlks = s.EntryInserts, s.Evictions, s.EvictionBlocks
	st.dirtyAtEviction.CopyFrom(s.DirtyAtEviction)
}

// Restore writes st back into the DBI that produced it (identical
// parameters; the system layer enforces the geometry match).
func (d *DBI) Restore(st *State) {
	words := 0
	if len(d.entries) > 0 {
		words = len(d.entries[0].bits)
	}
	for i := range d.entries {
		e := &d.entries[i]
		s := &st.entries[i]
		e.Valid, e.Region, e.lastWrite, e.rwpv = s.valid, s.region, s.lastWrite, s.rwpv
		copy(e.bits, st.bits[i*words:(i+1)*words])
	}
	d.clock = st.clock
	randstate.MustRestore(d.src, &st.rng)
	s := &d.Stat
	s.Lookups, s.Writes, s.Cleans = st.lookups, st.writes, st.cleans
	s.EntryInserts, s.Evictions, s.EvictionBlocks = st.entryInserts, st.evictions, st.evictionBlks
	s.DirtyAtEviction.CopyFrom(&st.dirtyAtEviction)
}
