package dbi

import (
	"dbisim/internal/addr"
	"dbisim/internal/config"
)

// Option configures New. The constructor follows the system.New
// functional-options style: every knob has a default (the paper's
// Table-1 DBI against the default geometry), capacity is the one thing
// a caller must state — either WithCacheBlocks (simulator usage: the
// DBI tracks α × the cache's blocks) or WithRows (service usage: an
// explicit entry budget, one entry per row-region).
type Option func(*options)

type options struct {
	geo         addr.Geometry
	prm         config.DBIParams
	cacheBlocks int
	rows        int
	seed        int64
}

// DefaultParams returns the paper's Table-1 DBI parameters: α = 1/4,
// 64-block granularity, 16 ways, 4-cycle lookup, LRW replacement.
func DefaultParams() config.DBIParams {
	return config.DBIParams{
		AlphaNum: 1, AlphaDen: 4, Granularity: 64,
		Associativity: 16, Latency: 4,
		Replacement: config.DBILRW, BIPEpsilonDen: 64,
	}
}

// WithGeometry sets the address geometry the DBI maps blocks and rows
// with (default addr.Default(): 64B blocks, 8KB rows, 8 banks).
func WithGeometry(g addr.Geometry) Option {
	return func(o *options) { o.geo = g }
}

// WithParams replaces the whole parameter block at once — the bulk
// form the simulator uses to pass a SystemConfig's DBI section
// through. Finer-grained options applied after it override fields.
func WithParams(p config.DBIParams) Option {
	return func(o *options) { o.prm = p }
}

// WithCacheBlocks sizes the DBI for a cache of n blocks: the entry
// count is α × n / granularity (config.DBIParams.Entries).
func WithCacheBlocks(n int) Option {
	return func(o *options) { o.cacheBlocks = n; o.rows = 0 }
}

// WithRows sets the entry budget directly: the DBI can track up to n
// row-regions at once, whatever α says. This is the service-facing
// sizing — a dirty-tracking server thinks in rows, not cache blocks.
func WithRows(n int) Option {
	return func(o *options) { o.rows = n; o.cacheBlocks = 0 }
}

// WithGranularity sets blocks tracked per entry (power of two, at most
// the geometry's blocks per row).
func WithGranularity(g int) Option {
	return func(o *options) { o.prm.Granularity = g }
}

// WithAssociativity sets the DBI's set associativity.
func WithAssociativity(w int) Option {
	return func(o *options) { o.prm.Associativity = w }
}

// WithReplacement selects the entry replacement policy (Section 4.3).
func WithReplacement(r config.DBIReplacement) Option {
	return func(o *options) { o.prm.Replacement = r }
}

// WithSeed seeds the replacement policies' randomness (LRW-BIP's
// bimodal insertion). Same seed, same stream.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}
