package trace

import (
	"testing"

	"dbisim/internal/addr"
)

// TestStoreHotBiasConcentratesWrites: with a strong bias, stores land in
// the hot region while loads keep streaming — the small-write-working-set
// property the DBI exploits.
func TestStoreHotBiasConcentratesWrites(t *testing.T) {
	p, _ := ByName("bzip2") // StoreHotBias 0.97
	g := New(p, 0, 3).(*synth)
	hotVBlocks := g.hotBlocks
	// Track virtual blocks via reverse page map.
	rev := func(a addr.Addr) uint64 {
		pblock := uint64(a) / 64
		ppage := pblock / pageBlocks
		for vp, pp := range g.pageMap() {
			if pp == ppage {
				return vp*pageBlocks + pblock%pageBlocks
			}
		}
		t.Fatalf("unmapped physical block %d", pblock)
		return 0
	}
	hotStores, stores := 0, 0
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Kind != Store {
			continue
		}
		stores++
		if rev(r.Addr) < hotVBlocks {
			hotStores++
		}
	}
	if stores == 0 {
		t.Fatal("no stores")
	}
	if frac := float64(hotStores) / float64(stores); frac < 0.9 {
		t.Fatalf("hot-store fraction %.2f, want >= 0.9 at bias 0.97", frac)
	}
}

// TestRepeatRunsSurviveBiasedStores: a biased store interleaved into a
// sequential read run must not reset the run's cursor.
func TestRepeatRunsSurviveBiasedStores(t *testing.T) {
	p := Profile{
		Name: "x", FootprintBytes: 1 << 20, MemFraction: 0.5,
		StoreFraction: 0.3, SeqWeight: 1, SeqRepeat: 4,
		HotFraction: 0.01, HotAccessFraction: 0, StoreHotBias: 1,
	}
	g := New(p, 0, 9).(*synth)
	// Collect the virtual blocks of loads only: they must be sequential
	// runs of length SeqRepeat.
	var loads []uint64
	for len(loads) < 64 {
		r := g.Next()
		if r.Kind == Load {
			loads = append(loads, uint64(r.Addr)/64)
		}
	}
	// Translate back to virtual via page map and check monotone groups.
	rev := map[uint64]uint64{}
	for vp, pp := range g.pageMap() {
		rev[pp] = vp
	}
	var virt []uint64
	for _, pb := range loads {
		vp, ok := rev[pb/pageBlocks]
		if !ok {
			t.Fatal("unmapped load block")
		}
		virt = append(virt, vp*pageBlocks+pb%pageBlocks)
	}
	// Every load is within +1 of the previous or equal (runs advance by
	// one block at a time).
	for i := 1; i < len(virt); i++ {
		if virt[i] != virt[i-1] && virt[i] != virt[i-1]+1 {
			t.Fatalf("load stream broken at %d: %d -> %d", i, virt[i-1], virt[i])
		}
	}
}

// TestSeqRepeatControlsBlockReuse: higher SeqRepeat means fewer distinct
// blocks for the same access count.
func TestSeqRepeatControlsBlockReuse(t *testing.T) {
	distinct := func(rep int) int {
		p := Profile{
			Name: "x", FootprintBytes: 8 << 20, MemFraction: 0.5,
			SeqWeight: 1, SeqRepeat: rep, HotFraction: 0.01,
		}
		g := New(p, 0, 4)
		seen := map[addr.Addr]bool{}
		for i := 0; i < 8000; i++ {
			seen[g.Next().Addr] = true
		}
		return len(seen)
	}
	d1, d8 := distinct(1), distinct(8)
	if d8*4 > d1 {
		t.Fatalf("SeqRepeat 8 touched %d blocks vs %d at repeat 1", d8, d1)
	}
}
