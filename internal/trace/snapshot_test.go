package trace

import (
	"testing"

	"dbisim/internal/addr"
)

func TestGeneratorSnapshotRestoreContinuation(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g := New(p, addr.Addr(1<<36), 42).(Snapshotter)
	for i := 0; i < 5000; i++ {
		g.Next()
	}
	var st GenState
	g.Snapshot(&st)
	want := make([]Record, 2000)
	for i := range want {
		want[i] = g.Next()
	}
	g.Restore(&st)
	for i := range want {
		if got := g.Next(); got != want[i] {
			t.Fatalf("record %d after restore = %+v, want %+v", i, got, want[i])
		}
	}
}

func TestGeneratorRestoreAcrossProfiles(t *testing.T) {
	// A checkpoint must survive the generator being reused for a
	// different benchmark in between — the pooled-machine reality.
	pm, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	g := New(pm, addr.Addr(1<<36), 7).(Snapshotter)
	for i := 0; i < 3000; i++ {
		g.Next()
	}
	var st GenState
	g.Snapshot(&st)
	want := make([]Record, 1000)
	for i := range want {
		want[i] = g.Next()
	}

	g.Reset(ps, addr.Addr(2<<36), 99)
	for i := 0; i < 500; i++ {
		g.Next()
	}

	g.Restore(&st)
	if g.Name() != "mcf" {
		t.Fatalf("restored name = %q, want mcf", g.Name())
	}
	for i := range want {
		if got := g.Next(); got != want[i] {
			t.Fatalf("record %d after cross-profile restore = %+v, want %+v", i, got, want[i])
		}
	}
}
