package trace

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"dbisim/internal/addr"
)

func TestBenchmarksOrder(t *testing.T) {
	names := Benchmarks()
	if len(names) != 14 {
		t.Fatalf("got %d benchmarks, want 14", len(names))
	}
	// Figure 6 order: first mcf, last bwaves.
	if names[0] != "mcf" || names[len(names)-1] != "bwaves" {
		t.Fatalf("order wrong: %v", names)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "libquantum" {
		t.Fatalf("got %q", p.Name)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range AllProfiles() {
		if p.FootprintBytes == 0 {
			t.Errorf("%s: zero footprint", p.Name)
		}
		if p.MemFraction <= 0 || p.MemFraction > 1 {
			t.Errorf("%s: MemFraction %v", p.Name, p.MemFraction)
		}
		if p.StoreFraction < 0 || p.StoreFraction > 1 {
			t.Errorf("%s: StoreFraction %v", p.Name, p.StoreFraction)
		}
		if w := p.SeqWeight + p.StrideWeight + p.RandWeight; math.Abs(w-1) > 1e-9 {
			t.Errorf("%s: pattern weights sum to %v", p.Name, w)
		}
	}
}

func TestByIntensityPartition(t *testing.T) {
	seen := map[string]int{}
	for _, r := range []Intensity{Low, Medium, High} {
		for _, w := range []Intensity{Low, Medium, High} {
			for _, n := range ByIntensity(r, w) {
				seen[n]++
			}
		}
	}
	if len(seen) != 14 {
		t.Fatalf("intensity classes cover %d benchmarks, want 14", len(seen))
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("%s appears in %d classes", n, c)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("mcf")
	a := New(p, 0, 42)
	b := New(p, 0, 42)
	for i := 0; i < 1000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	c := New(p, 0, 43)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorRespectsFootprintAndBase(t *testing.T) {
	p, _ := ByName("stream")
	base := addr.Addr(1 << 32)
	g := New(p, base, 7)
	// Physical placement randomizes pages within a 4× footprint span.
	span := addr.Addr(4 * p.FootprintBytes)
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Addr < base || r.Addr >= base+span {
			t.Fatalf("address %#x outside [%#x, %#x)", r.Addr, base, base+span)
		}
	}
}

func TestPageTranslationStableAndPageAligned(t *testing.T) {
	p, _ := ByName("stream")
	g := New(p, 0, 7).(*synth)
	a := g.translate(3)
	if g.translate(3) != a {
		t.Fatal("translation not stable")
	}
	// Same virtual page, same physical page; offset preserved.
	b := g.translate(4)
	if b/pageBlocks != a/pageBlocks {
		t.Fatal("blocks of one virtual page split across physical pages")
	}
	if b%pageBlocks != 4 {
		t.Fatalf("page offset not preserved: %d", b%pageBlocks)
	}
	// Different virtual pages get different physical pages.
	c := g.translate(64 * 7)
	if c/pageBlocks == a/pageBlocks {
		t.Fatal("two virtual pages share a physical page")
	}
}

func TestGeneratorStoreFraction(t *testing.T) {
	p, _ := ByName("lbm") // StoreFraction 0.45
	g := New(p, 0, 1)
	stores := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Kind == Store {
			stores++
		}
	}
	got := float64(stores) / n
	if math.Abs(got-p.StoreFraction) > 0.02 {
		t.Fatalf("store fraction %v, want ~%v", got, p.StoreFraction)
	}
}

func TestGeneratorMemFraction(t *testing.T) {
	p, _ := ByName("mcf") // MemFraction 0.40
	g := New(p, 0, 1)
	var insts, mems uint64
	const n = 50000
	for i := 0; i < n; i++ {
		r := g.Next()
		insts += uint64(r.Gap) + 1
		mems++
	}
	got := float64(mems) / float64(insts)
	if math.Abs(got-p.MemFraction) > 0.03 {
		t.Fatalf("memory fraction %v, want ~%v", got, p.MemFraction)
	}
}

func TestStreamingProfileIsSequential(t *testing.T) {
	p, _ := ByName("stream")
	g := New(p, 0, 3)
	// With SeqWeight 0.95 and block-level repeats, consecutive accesses
	// are overwhelmingly the same block or the next one.
	adjacent, total := 0, 0
	prev := g.Next().Addr >> 6
	for i := 0; i < 10000; i++ {
		cur := g.Next().Addr >> 6
		if cur == prev || cur == prev+1 {
			adjacent++
		}
		total++
		prev = cur
	}
	if frac := float64(adjacent) / float64(total); frac < 0.8 {
		t.Fatalf("stream adjacency %v, want > 0.8", frac)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("Kind strings wrong")
	}
}

func TestIntensityString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatal("Intensity strings wrong")
	}
	if Intensity(9).String() != "unknown" {
		t.Fatal("unknown intensity string")
	}
}

func TestFileRoundTrip(t *testing.T) {
	p, _ := ByName("soplex")
	g := New(p, 4096, 9)
	var recs []Record
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		r := g.Next()
		recs = append(recs, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 500 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, "soplex")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "soplex" {
		t.Fatal("reader name wrong")
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE\n"), "x"); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewBufferString("short"), "x"); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReaderRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	buf.Write([]byte{0, 7, 0}) // gap=0, kind=7 (invalid), addr=0
	r, err := NewReader(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestLooping(t *testing.T) {
	recs := []Record{{Gap: 1, Kind: Load, Addr: 64}, {Gap: 2, Kind: Store, Addr: 128}}
	l := NewLooping("loop", recs)
	if l.Name() != "loop" {
		t.Fatal("name wrong")
	}
	for i := 0; i < 10; i++ {
		if got := l.Next(); got != recs[i%2] {
			t.Fatalf("iteration %d: %+v", i, got)
		}
	}
}

func TestLoopingEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Looping did not panic")
		}
	}()
	NewLooping("x", nil)
}

// Property: every record serialized then deserialized is identical.
func TestQuickFileRoundTrip(t *testing.T) {
	f := func(gaps []uint16, kinds []bool, addrs []uint32) bool {
		n := len(gaps)
		if len(kinds) < n {
			n = len(kinds)
		}
		if len(addrs) < n {
			n = len(addrs)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			k := Load
			if kinds[i] {
				k = Store
			}
			recs[i] = Record{Gap: uint32(gaps[i]), Kind: k, Addr: addr.Addr(addrs[i])}
			if err := w.Write(recs[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf, "q")
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			got, err := r.Read()
			if err != nil || got != recs[i] {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
