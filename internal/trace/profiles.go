package trace

import (
	"fmt"
	"sort"
)

// profiles models the 14 benchmarks shown in Figure 6 of the paper
// (SPEC CPU2006 subset plus STREAM), in the paper's x-axis order
// (increasing baseline IPC). The parameters are tuned so the simulated
// memory behaviour matches the per-benchmark statistics the paper
// reports: footprints larger than the 2MB single-core LLC for the
// memory-bound group, streaming-write-heavy mixes for lbm/GemsFDTD/
// stream/milc, a near-1.0 LLC miss rate for libquantum (the CLB bypass
// case), and small footprints for the IPC>0.9 tail.
var profiles = []Profile{
	{
		Name: "mcf", FootprintBytes: 8 << 20, MemFraction: 0.40,
		StoreFraction: 0.22, SeqWeight: 0.05, StrideWeight: 0.05, RandWeight: 0.90,
		StrideBlocks: 4, SeqRepeat: 4, HotFraction: 0.01, HotAccessFraction: 0.35, StoreHotBias: 0.6,
		ReadIntensity: High, WriteIntensity: Medium,
	},
	{
		Name: "lbm", FootprintBytes: 8 << 20, MemFraction: 0.30,
		StoreFraction: 0.45, SeqWeight: 0.90, StrideWeight: 0.05, RandWeight: 0.05,
		StrideBlocks: 2, SeqRepeat: 8, HotFraction: 0.02, HotAccessFraction: 0.5, StoreHotBias: 0,
		ReadIntensity: High, WriteIntensity: High,
	},
	{
		Name: "GemsFDTD", FootprintBytes: 6 << 20, MemFraction: 0.28,
		StoreFraction: 0.38, SeqWeight: 0.75, StrideWeight: 0.15, RandWeight: 0.1,
		StrideBlocks: 4, SeqRepeat: 8, HotFraction: 0.03, HotAccessFraction: 0.4, StoreHotBias: 0.1,
		ReadIntensity: High, WriteIntensity: High,
	},
	{
		Name: "soplex", FootprintBytes: 4 << 20, MemFraction: 0.30,
		StoreFraction: 0.25, SeqWeight: 0.35, StrideWeight: 0.25, RandWeight: 0.40,
		StrideBlocks: 4, SeqRepeat: 6, HotFraction: 0.02, HotAccessFraction: 0.5, StoreHotBias: 0.6,
		ReadIntensity: High, WriteIntensity: Medium,
	},
	{
		Name: "omnetpp", FootprintBytes: 4 << 20, MemFraction: 0.30,
		StoreFraction: 0.32, SeqWeight: 0.10, StrideWeight: 0.10, RandWeight: 0.80,
		StrideBlocks: 4, SeqRepeat: 4, HotFraction: 0.02, HotAccessFraction: 0.55, StoreHotBias: 0.7,
		ReadIntensity: Medium, WriteIntensity: Medium,
	},
	{
		Name: "cactusADM", FootprintBytes: 4 << 20, MemFraction: 0.24,
		StoreFraction: 0.35, SeqWeight: 0.6, StrideWeight: 0.25, RandWeight: 0.15,
		StrideBlocks: 4, SeqRepeat: 8, HotFraction: 0.02, HotAccessFraction: 0.45, StoreHotBias: 0.2,
		ReadIntensity: Medium, WriteIntensity: Medium,
	},
	{
		Name: "stream", FootprintBytes: 8 << 20, MemFraction: 0.38,
		StoreFraction: 0.33, SeqWeight: 0.95, StrideWeight: 0.03, RandWeight: 0.02,
		StrideBlocks: 2, SeqRepeat: 6, HotFraction: 0.01, HotAccessFraction: 0.1, StoreHotBias: 0,
		ReadIntensity: High, WriteIntensity: High,
	},
	{
		Name: "leslie3d", FootprintBytes: 3 << 20, MemFraction: 0.25,
		StoreFraction: 0.30, SeqWeight: 0.6, StrideWeight: 0.25, RandWeight: 0.15,
		StrideBlocks: 4, SeqRepeat: 8, HotFraction: 0.03, HotAccessFraction: 0.5, StoreHotBias: 0.2,
		ReadIntensity: Medium, WriteIntensity: Medium,
	},
	{
		Name: "milc", FootprintBytes: 4 << 20, MemFraction: 0.22,
		StoreFraction: 0.38, SeqWeight: 0.55, StrideWeight: 0.15, RandWeight: 0.3,
		StrideBlocks: 4, SeqRepeat: 6, HotFraction: 0.02, HotAccessFraction: 0.4, StoreHotBias: 0.2,
		ReadIntensity: Medium, WriteIntensity: High,
	},
	{
		Name: "sphinx3", FootprintBytes: 2 << 20, MemFraction: 0.24,
		StoreFraction: 0.10, SeqWeight: 0.5, StrideWeight: 0.2, RandWeight: 0.3,
		StrideBlocks: 4, SeqRepeat: 8, HotFraction: 0.04, HotAccessFraction: 0.65, StoreHotBias: 0.9,
		ReadIntensity: Medium, WriteIntensity: Low,
	},
	{
		Name: "libquantum", FootprintBytes: 12 << 20, MemFraction: 0.22,
		StoreFraction: 0.15, SeqWeight: 0.97, StrideWeight: 0.02, RandWeight: 0.01,
		StrideBlocks: 2, SeqRepeat: 8, HotFraction: 0.01, HotAccessFraction: 0.05, StoreHotBias: 0,
		ReadIntensity: High, WriteIntensity: Low,
	},
	{
		Name: "bzip2", FootprintBytes: 768 << 10, MemFraction: 0.25,
		StoreFraction: 0.25, SeqWeight: 0.40, StrideWeight: 0.20, RandWeight: 0.40,
		StrideBlocks: 4, SeqRepeat: 8, HotFraction: 0.06, HotAccessFraction: 0.85, StoreHotBias: 0.97,
		ReadIntensity: Low, WriteIntensity: Low,
	},
	{
		Name: "astar", FootprintBytes: 768 << 10, MemFraction: 0.28,
		StoreFraction: 0.20, SeqWeight: 0.15, StrideWeight: 0.15, RandWeight: 0.70,
		StrideBlocks: 4, SeqRepeat: 6, HotFraction: 0.06, HotAccessFraction: 0.85, StoreHotBias: 0.97,
		ReadIntensity: Low, WriteIntensity: Low,
	},
	{
		Name: "bwaves", FootprintBytes: 768 << 10, MemFraction: 0.22,
		StoreFraction: 0.15, SeqWeight: 0.65, StrideWeight: 0.2, RandWeight: 0.15,
		StrideBlocks: 4, SeqRepeat: 8, HotFraction: 0.06, HotAccessFraction: 0.85, StoreHotBias: 0.97,
		ReadIntensity: Low, WriteIntensity: Low,
	},
}

// Benchmarks returns the names of all benchmark models in the paper's
// Figure-6 order.
func Benchmarks() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ByName returns the profile for a benchmark model.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// AllProfiles returns copies of every benchmark profile.
func AllProfiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ByIntensity returns the benchmarks in the given read×write intensity
// class, sorted by name. The paper's workload generator draws from these
// nine classes.
func ByIntensity(read, write Intensity) []string {
	var names []string
	for _, p := range profiles {
		if p.ReadIntensity == read && p.WriteIntensity == write {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return names
}
