package trace

import (
	"testing"

	"dbisim/internal/addr"
)

// TestGeneratorResetMatchesFresh exhausts a generator on one profile,
// resets it onto another (different footprint, so the page table and
// used-page bitset must regrow or re-clear), and requires the record
// stream to be identical to a freshly constructed generator's — the
// generation-stamped page table must hide every stale translation.
func TestGeneratorResetMatchesFresh(t *testing.T) {
	profiles := []string{"stream", "mcf", "sphinx3"}
	for _, from := range profiles {
		for _, to := range profiles {
			pFrom, err := ByName(from)
			if err != nil {
				t.Fatal(err)
			}
			pTo, err := ByName(to)
			if err != nil {
				t.Fatal(err)
			}
			g := New(pFrom, addr.Addr(1<<36), 11)
			for i := 0; i < 50_000; i++ {
				g.Next()
			}
			g.(Resetter).Reset(pTo, addr.Addr(2<<36), 23)
			fresh := New(pTo, addr.Addr(2<<36), 23)
			for i := 0; i < 50_000; i++ {
				if got, want := g.Next(), fresh.Next(); got != want {
					t.Fatalf("%s->%s: record %d diverges: %+v vs %+v", from, to, i, got, want)
				}
			}
		}
	}
}
