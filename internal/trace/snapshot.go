package trace

import (
	"dbisim/internal/addr"
	"dbisim/internal/randstate"
)

// Snapshotter is a Resetter whose mid-stream state can be captured into
// a GenState and restored later, so a warmed generator can be forked:
// the restored generator produces exactly the stream the captured one
// would have produced next. All generators built by New implement it.
type Snapshotter interface {
	Resetter
	Snapshot(st *GenState)
	Restore(st *GenState)
}

// ptSlot is one live page-table entry: its probe position plus the
// mapping, enough to rebuild translation behavior exactly. Stale slots
// (older generations) never influence translate, so they are not saved
// — this is what keeps GenState O(live pages), not O(table capacity).
type ptSlot struct {
	idx uint64
	key uint64
	val uint64
}

// GenState is a checkpoint of a synthetic generator: cursors, the live
// page-table entries, the used-page bitset and the rng state. The zero
// value is ready; buffers are reused across captures.
type GenState struct {
	p         Profile
	base      addr.Addr
	spanPages uint64
	blocks    uint64
	hotBlocks uint64

	seqCursor    uint64
	strideCursor uint64
	repeat       int
	curBlock     uint64
	repLeft      int
	meanGap      float64
	gapCarry     float64

	ptLen uint64 // table capacity; probing depends on it, so it is pinned
	pt    []ptSlot
	used  []uint64

	rng randstate.State
}

// Snapshot captures the generator's full mid-stream state into st.
func (s *synth) Snapshot(st *GenState) {
	st.p = s.p
	st.base = s.base
	st.spanPages = s.spanPages
	st.blocks, st.hotBlocks = s.blocks, s.hotBlocks
	st.seqCursor, st.strideCursor = s.seqCursor, s.strideCursor
	st.repeat = s.repeat
	st.curBlock, st.repLeft = s.curBlock, s.repLeft
	st.meanGap, st.gapCarry = s.meanGap, s.gapCarry

	t := &s.pt
	st.ptLen = uint64(len(t.keys))
	st.pt = st.pt[:0]
	for i, g := range t.gens {
		if g == t.gen {
			st.pt = append(st.pt, ptSlot{uint64(i), t.keys[i], t.vals[i]})
		}
	}
	words := int((s.spanPages + 63) / 64)
	if cap(st.used) < words {
		st.used = make([]uint64, words)
	}
	st.used = st.used[:words]
	copy(st.used, s.used.words[:words])

	randstate.MustSave(s.src, &st.rng)
}

// Restore rewinds the generator to the captured state. The generator
// must be one built by New; its tables are resized when the checkpoint
// was taken under a different profile, and the rng resumes the exact
// captured stream.
func (s *synth) Restore(st *GenState) {
	s.p = st.p
	s.base = st.base
	s.spanPages = st.spanPages
	s.blocks, s.hotBlocks = st.blocks, st.hotBlocks
	s.seqCursor, s.strideCursor = st.seqCursor, st.strideCursor
	s.repeat = st.repeat
	s.curBlock, s.repLeft = st.curBlock, st.repLeft
	s.meanGap, s.gapCarry = st.meanGap, st.gapCarry

	// Table capacity determines probe positions, so the restored table
	// must have exactly the captured capacity. A generation bump (or a
	// fresh allocation on a size change) invalidates every slot, then
	// the live ones are written back.
	t := &s.pt
	if uint64(len(t.keys)) != st.ptLen {
		t.keys = make([]uint64, st.ptLen)
		t.vals = make([]uint64, st.ptLen)
		t.gens = make([]uint32, st.ptLen)
		t.mask = st.ptLen - 1
		t.gen = 1
	} else {
		t.gen++
		if t.gen == 0 {
			for i := range t.gens {
				t.gens[i] = 0
			}
			t.gen = 1
		}
	}
	for _, sl := range st.pt {
		t.gens[sl.idx], t.keys[sl.idx], t.vals[sl.idx] = t.gen, sl.key, sl.val
	}

	if len(s.used.words) < len(st.used) {
		s.used.words = make([]uint64, len(st.used))
	}
	n := copy(s.used.words, st.used)
	for i := n; i < len(s.used.words); i++ {
		s.used.words[i] = 0
	}

	randstate.MustRestore(s.src, &st.rng)
}
