package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dbisim/internal/addr"
)

// File format: a magic header followed by varint-encoded records
// (gap, kind, address). Used by cmd/tracegen to materialize synthetic
// streams for inspection and by tests to round-trip generators.

const fileMagic = "DBITRACE1\n"

// Writer serializes access records to a stream.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   uint64
}

// NewWriter writes the trace header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	k := binary.PutUvarint(w.buf[:], uint64(r.Gap))
	if _, err := w.w.Write(w.buf[:k]); err != nil {
		return err
	}
	if err := w.w.WriteByte(byte(r.Kind)); err != nil {
		return err
	}
	k = binary.PutUvarint(w.buf[:], uint64(r.Addr))
	if _, err := w.w.Write(w.buf[:k]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count reports how many records have been written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a trace stream written by Writer. It implements
// Generator over a finite file; Next panics once the stream is exhausted,
// so callers should bound reads with Len or use Read.
type Reader struct {
	r    *bufio.Reader
	name string
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader, name string) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != fileMagic {
		return nil, errors.New("trace: bad magic; not a trace file")
	}
	return &Reader{r: br, name: name}, nil
}

// Name identifies the trace.
func (r *Reader) Name() string { return r.name }

// Read returns the next record, or io.EOF at end of stream.
func (r *Reader) Read() (Record, error) {
	gap, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading gap: %w", err)
	}
	kind, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: reading kind: %w", err)
	}
	if kind > byte(Store) {
		return Record{}, fmt.Errorf("trace: invalid access kind %d", kind)
	}
	a, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: reading address: %w", err)
	}
	return Record{Gap: uint32(gap), Kind: Kind(kind), Addr: addr.Addr(a)}, nil
}

// Next implements Generator; it panics at end of stream.
func (r *Reader) Next() Record {
	rec, err := r.Read()
	if err != nil {
		panic(fmt.Sprintf("trace: Next past end of %q: %v", r.name, err))
	}
	return rec
}

// Looping wraps a finite record slice as an infinite Generator, replaying
// it from the start when exhausted.
type Looping struct {
	name string
	recs []Record
	pos  int
}

// NewLooping returns a Generator replaying recs forever. It panics if
// recs is empty.
func NewLooping(name string, recs []Record) *Looping {
	if len(recs) == 0 {
		panic("trace: NewLooping with empty records")
	}
	return &Looping{name: name, recs: recs}
}

// Name identifies the trace.
func (l *Looping) Name() string { return l.name }

// Next returns the next record, wrapping at the end.
func (l *Looping) Next() Record {
	r := l.recs[l.pos]
	l.pos++
	if l.pos == len(l.recs) {
		l.pos = 0
	}
	return r
}
