package trace

// pageMap materializes the generator's live vpage→ppage translations so
// tests can reverse-map physical addresses, as they did when the page
// table was a Go map.
func (s *synth) pageMap() map[uint64]uint64 {
	m := make(map[uint64]uint64)
	t := &s.pt
	for i := range t.keys {
		if t.gens[i] == t.gen {
			m[t.keys[i]] = t.vals[i]
		}
	}
	return m
}
