// Package trace produces the instruction/memory-access streams that drive
// the simulated cores.
//
// The paper evaluates SPEC CPU2006 and STREAM traces collected with
// Pinpoints. Those traces are proprietary, so this package substitutes
// parameterized synthetic generators: each benchmark is modelled by a
// Profile whose footprint, memory intensity, store fraction and access
// pattern mix are tuned so that the simulated statistics the paper reports
// per benchmark (baseline IPC ordering, MPKI, WPKI, row hit rates) are
// reproduced in shape. The generators are deterministic given a seed.
package trace

import (
	"math"
	"math/rand"

	"dbisim/internal/addr"
)

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a memory read.
	Load Kind = iota
	// Store is a memory write.
	Store
)

func (k Kind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Record is one memory access in an instruction stream: Gap non-memory
// instructions execute before the access itself (the access is the
// Gap+1'th instruction).
type Record struct {
	Gap  uint32
	Kind Kind
	Addr addr.Addr
}

// Generator produces an infinite access stream.
type Generator interface {
	// Name identifies the benchmark model.
	Name() string
	// Next returns the next access record.
	Next() Record
}

// Resetter is a Generator whose state can be returned to power-on for a
// new profile, base and seed without reallocating its internal tables.
// A reset generator produces the exact stream a freshly constructed one
// would — the contract the sweep worker pool's reuse rests on.
type Resetter interface {
	Generator
	Reset(p Profile, base addr.Addr, seed int64)
}

// Pattern describes one component of a benchmark's access mix.
type Pattern int

const (
	// Sequential walks the footprint block by block.
	Sequential Pattern = iota
	// Strided walks the footprint with a multi-block stride.
	Strided
	// Random touches uniformly random blocks of the footprint.
	Random
	// PointerChase touches a dependent random sequence (modelled as
	// random blocks flagged as serializing for the core's window).
	PointerChase
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// FootprintBytes is the total data footprint touched by the stream.
	FootprintBytes uint64

	// MemFraction is the fraction of instructions that access memory.
	MemFraction float64

	// StoreFraction is the fraction of memory accesses that are stores.
	StoreFraction float64

	// Mix gives relative weights of each access pattern.
	SeqWeight, StrideWeight, RandWeight float64

	// StrideBlocks is the stride, in blocks, of the Strided component.
	StrideBlocks int

	// SeqRepeat is how many consecutive accesses touch the same block
	// before the sequential/strided cursors advance — the word-level
	// spatial locality inside a 64B block that the L1 absorbs. Zero
	// means 1 (advance every access).
	SeqRepeat int

	// HotFraction of the footprint receives HotAccessFraction of the
	// random accesses, giving the stream temporal locality.
	HotFraction       float64
	HotAccessFraction float64

	// StoreHotBias redirects this fraction of stores into the hot
	// region regardless of the pattern mix. Real programs' write working
	// sets are much smaller and hotter than their read sets — the
	// property that lets a small DBI capture the write working set
	// (Section 4.1 of the paper). Streaming kernels (lbm, STREAM) keep
	// this at 0: their stores genuinely stream.
	StoreHotBias float64

	// ReadIntensity/WriteIntensity classify the benchmark for the
	// multiprogrammed mix generator (Section 5 of the paper).
	ReadIntensity  Intensity
	WriteIntensity Intensity
}

// Intensity is the paper's low/medium/high workload classification.
type Intensity int

const (
	// Low intensity.
	Low Intensity = iota
	// Medium intensity.
	Medium
	// High intensity.
	High
)

func (i Intensity) String() string {
	switch i {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return "unknown"
}

// pageBlocks is the number of 64B blocks in a 4KB page.
const pageBlocks = 64

// synth is the deterministic generator built from a Profile.
//
// The generator works in the benchmark's virtual address space and
// translates to physical addresses through a randomized page table, the
// way an OS's physical page allocator does. This translation is what
// gives the paper's baseline its character: virtually-adjacent pages land
// in unrelated DRAM rows, so dirty blocks of one physical row reach the
// cache at unrelated times and are evicted far apart — writing them back
// in eviction order produces mostly row misses (Section 3.1).
type synth struct {
	p    Profile
	rng  *rand.Rand
	src  rand.Source // rng's source, retained for state capture
	base addr.Addr   // base of this core's physical range

	pt        pageTable // virtual page -> physical page index
	used      bitset    // physical pages already handed out
	spanPages uint64    // physical pages available to this process

	blocks    uint64 // footprint size in blocks
	hotBlocks uint64

	seqCursor    uint64
	strideCursor uint64
	repeat       int
	curBlock     uint64 // block being re-accessed
	repLeft      int    // repeats remaining on curBlock
	meanGap      float64
	gapCarry     float64 // error-diffusion remainder keeping E[gap] exact
}

// pageTable is an open-addressed, linear-probed vpage→ppage map. Slot
// validity is a generation stamp (gens[i] == gen), so reset is a single
// counter bump instead of an O(capacity) clear, and the table is sized
// to at most 50% load (every virtual page inserted once, no deletions),
// keeping probe chains short. It replaces the Go map that dominated the
// generator's translate profile.
type pageTable struct {
	mask uint64
	gen  uint32
	gens []uint32
	keys []uint64
	vals []uint64
}

// fibMix is the 64-bit Fibonacci-hashing multiplier (2^64/φ, odd).
const fibMix = 0x9E3779B97F4A7C15

// grow readies the table for vpages insertions: it reuses the backing
// arrays when they are already big enough (bumping the generation) and
// reallocates otherwise. Generation wraparound — one in 2^32 resets —
// falls back to a hard clear so stale stamps can never alias.
func (t *pageTable) grow(vpages uint64) {
	need := uint64(8)
	for need < 2*vpages {
		need <<= 1
	}
	if uint64(len(t.keys)) < need {
		t.keys = make([]uint64, need)
		t.vals = make([]uint64, need)
		t.gens = make([]uint32, need)
		t.mask = need - 1
		t.gen = 1
		return
	}
	t.gen++
	if t.gen == 0 {
		for i := range t.gens {
			t.gens[i] = 0
		}
		t.gen = 1
	}
}

// bitset is a plain bit vector over physical page indices.
type bitset struct{ words []uint64 }

func (b *bitset) grow(n uint64) {
	w := int((n + 63) / 64)
	if w > len(b.words) {
		b.words = make([]uint64, w)
		return
	}
	for i := range b.words {
		b.words[i] = 0
	}
}

func (b *bitset) test(i uint64) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }
func (b *bitset) set(i uint64)       { b.words[i>>6] |= 1 << (i & 63) }

// New returns a deterministic generator for the profile. base offsets the
// stream in physical memory (distinct cores get disjoint footprints) and
// seed fixes the random components.
func New(p Profile, base addr.Addr, seed int64) Generator {
	s := &synth{}
	s.Reset(p, base, seed)
	return s
}

// Reset returns the generator to power-on state for a (possibly
// different) profile, base and seed, reusing the page table and
// used-page bitset allocations when the new footprint fits. The
// resulting stream is bit-identical to New(p, base, seed)'s: the rng is
// reseeded identically and translation behavior depends only on table
// hit/miss, which the generation bump resets exactly like fresh maps.
func (s *synth) Reset(p Profile, base addr.Addr, seed int64) {
	blocks := p.FootprintBytes / 64
	if blocks == 0 {
		blocks = 1
	}
	hot := uint64(float64(blocks) * p.HotFraction)
	if hot == 0 {
		hot = 1
	}
	mf := p.MemFraction
	if mf <= 0 {
		mf = 0.01
	}
	if mf > 1 {
		mf = 1
	}
	rep := p.SeqRepeat
	if rep < 1 {
		rep = 1
	}
	vpages := (blocks + pageBlocks - 1) / pageBlocks
	s.p = p
	s.base = base
	s.spanPages = 4 * vpages // physical slack so placement stays random
	s.blocks = blocks
	s.hotBlocks = hot
	s.repeat = rep
	s.meanGap = 1/mf - 1
	s.seqCursor, s.strideCursor = 0, 0
	s.curBlock, s.repLeft = 0, 0
	s.gapCarry = 0
	s.pt.grow(vpages)
	s.used.grow(s.spanPages)
	if s.rng == nil {
		s.src = rand.NewSource(seed)
		s.rng = rand.New(s.src)
	} else {
		s.rng.Seed(seed)
	}
}

func (s *synth) Name() string { return s.p.Name }

func (s *synth) Next() Record {
	rec := Record{Gap: s.gap()}
	if s.rng.Float64() < s.p.StoreFraction {
		rec.Kind = Store
	}
	rec.Addr = s.base + addr.Addr(s.translate(s.pickBlock(rec.Kind))*64)
	return rec
}

// translate maps a virtual block to a physical block through the
// process's randomized page table, allocating on first touch. The probe
// loop doubles as the insertion scan: when it falls off the end of a
// cluster (stale slot), vpage is absent and that very slot receives it.
func (s *synth) translate(vblock uint64) uint64 {
	vpage := vblock / pageBlocks
	t := &s.pt
	i := (vpage * fibMix) & t.mask
	for t.gens[i] == t.gen {
		if t.keys[i] == vpage {
			return t.vals[i]*pageBlocks + vblock%pageBlocks
		}
		i = (i + 1) & t.mask
	}
	var ppage uint64
	for {
		ppage = uint64(s.rng.Int63n(int64(s.spanPages)))
		if !s.used.test(ppage) {
			break
		}
	}
	s.used.set(ppage)
	t.gens[i], t.keys[i], t.vals[i] = t.gen, vpage, ppage
	return ppage*pageBlocks + vblock%pageBlocks
}

// gap draws a geometric-ish instruction gap with mean meanGap.
func (s *synth) gap() uint32 {
	if s.meanGap <= 0 {
		return 0
	}
	// Exponential with the target mean, truncated; deterministic given
	// rng. The fractional remainder carries to the next draw so the
	// long-run mean equals meanGap despite integer gaps.
	g := s.rng.ExpFloat64()*s.meanGap + s.gapCarry
	if g > 10000 {
		g = 10000
	}
	gi := math.Floor(g)
	s.gapCarry = g - gi
	return uint32(gi)
}

// pickBlock returns the block for the next access. Every chosen block is
// re-accessed SeqRepeat times in a row before the next choice — the
// word/field-granularity reuse within a 64B line that the L1 absorbs
// (sequential array walks and pointer-chased structs alike).
func (s *synth) pickBlock(k Kind) uint64 {
	if k == Store && s.p.StoreHotBias > 0 && s.rng.Float64() < s.p.StoreHotBias {
		// Biased stores interleave with the current read run without
		// disturbing it (read an array element, update a hot
		// accumulator), so the streamed blocks themselves stay clean.
		return uint64(s.rng.Int63n(int64(s.hotBlocks)))
	}
	if s.repLeft > 0 {
		s.repLeft--
		return s.curBlock
	}
	total := s.p.SeqWeight + s.p.StrideWeight + s.p.RandWeight
	if total <= 0 {
		total = 1
	}
	r := s.rng.Float64() * total
	var b uint64
	switch {
	case r < s.p.SeqWeight:
		// Sequential region walk; loads and stores share the cursor so
		// that streaming writes land in the rows streaming reads opened
		// (the a[i] = b[i] + c[i] shape of STREAM).
		b = s.seqCursor
		s.seqCursor = (s.seqCursor + 1) % s.blocks
	case r < s.p.SeqWeight+s.p.StrideWeight:
		stride := uint64(s.p.StrideBlocks)
		if stride == 0 {
			stride = 2
		}
		b = s.strideCursor
		s.strideCursor = (s.strideCursor + stride) % s.blocks
	default:
		if s.rng.Float64() < s.p.HotAccessFraction {
			b = uint64(s.rng.Int63n(int64(s.hotBlocks)))
		} else {
			b = uint64(s.rng.Int63n(int64(s.blocks)))
		}
	}
	s.curBlock = b
	s.repLeft = s.repeat - 1
	return b
}
