package cache

import "dbisim/internal/replacement"

// RankOf returns the eviction rank of (set, way): 0 = next victim.
// It returns -1 when the policy cannot rank ways.
func (c *Cache) RankOf(set, way int) int {
	r, ok := c.policy.(replacement.Ranker)
	if !ok {
		return -1
	}
	return r.Rank(set, way)
}

// DirtyInLowRanks reports whether the set holds a valid dirty block among
// its k lowest-rank (closest-to-eviction) ways. This is the Set State
// Vector query of the Virtual Write Queue: a cheap per-set summary that
// filters tag lookups for proactive writebacks.
func (c *Cache) DirtyInLowRanks(set, k int) bool {
	r, ok := c.policy.(replacement.Ranker)
	if !ok {
		return false
	}
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.validAt(i) && c.dirty[i] != 0 && r.Rank(set, w) < k {
			return true
		}
	}
	return false
}
