package cache

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(config.CacheParams{
		SizeBytes: 2 << 20, Ways: 16, BlockSize: 64,
		TagLatency: 10, DataLatency: 24, SerialTagData: true,
		Replacement: config.ReplTADIP,
	}, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAccessHit measures the demand-hit path.
func BenchmarkAccessHit(b *testing.B) {
	c := benchCache(b)
	for i := 0; i < 1024; i++ {
		c.Insert(addr.BlockAddr(i), 0, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addr.BlockAddr(i&1023), 0)
	}
}

// BenchmarkInsertEvict measures the fill+eviction path under pressure.
func BenchmarkInsertEvict(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(addr.BlockAddr(i*13), 0, i&1 == 0)
	}
}

// BenchmarkLookup measures the pure branchless tag probe: a full-set
// scan over the dense addr/gen columns with no replacement update.
func BenchmarkLookup(b *testing.B) {
	c := benchCache(b)
	blocks := c.Params().Blocks()
	for i := 0; i < blocks; i++ {
		c.Insert(addr.BlockAddr(i), 0, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addr.BlockAddr((i * 37) & (blocks - 1)))
	}
}

// BenchmarkMSHRRegisterComplete measures the miss-file probe over the
// dense key column: register a miss, merge a second waiter, complete.
func BenchmarkMSHRRegisterComplete(b *testing.B) {
	m := NewMSHR(32)
	wake := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i&1023) | 1
		m.Register(k, wake)
		m.Register(k, wake)
		m.Complete(k)
	}
}
