package cache

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(config.CacheParams{
		SizeBytes: 2 << 20, Ways: 16, BlockSize: 64,
		TagLatency: 10, DataLatency: 24, SerialTagData: true,
		Replacement: config.ReplTADIP,
	}, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAccessHit measures the demand-hit path.
func BenchmarkAccessHit(b *testing.B) {
	c := benchCache(b)
	for i := 0; i < 1024; i++ {
		c.Insert(addr.BlockAddr(i), 0, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addr.BlockAddr(i&1023), 0)
	}
}

// BenchmarkInsertEvict measures the fill+eviction path under pressure.
func BenchmarkInsertEvict(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(addr.BlockAddr(i*13), 0, i&1 == 0)
	}
}
