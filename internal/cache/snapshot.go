package cache

import (
	"dbisim/internal/replacement"
	"dbisim/internal/stats"
)

// CacheState is a checkpoint of a Cache: the tag-store columns (with
// their validity generation, so stale-slot semantics survive verbatim),
// the statistics and the replacement policy state. The columns mirror
// the live struct-of-arrays layout one-to-one, so capture and restore
// are four flat copies. The zero value is ready; buffers are reused
// across captures. A CacheState only makes sense for a cache of
// identical geometry — the system layer enforces that.
type CacheState struct {
	gen     uint64
	gens    []uint64
	addrs   []uint64
	dirty   []uint8
	threads []int32
	stats   Stats
	pol     replacement.PolicyState
}

// Snapshot captures the cache into st.
func (c *Cache) Snapshot(st *CacheState) {
	st.gen = c.gen
	if len(st.gens) != len(c.gens) {
		st.gens = make([]uint64, len(c.gens))
		st.addrs = make([]uint64, len(c.addrs))
		st.dirty = make([]uint8, len(c.dirty))
		st.threads = make([]int32, len(c.threads))
	}
	copy(st.gens, c.gens)
	copy(st.addrs, c.addrs)
	copy(st.dirty, c.dirty)
	copy(st.threads, c.threads)
	st.stats = c.Stats
	c.policy.Snapshot(&st.pol)
}

// Restore writes st back. Every slot is restored — including stale
// (older-generation) contents, which read paths never observe — so the
// tag store is bitwise the captured one.
func (c *Cache) Restore(st *CacheState) {
	c.gen = st.gen
	copy(c.gens, st.gens)
	copy(c.addrs, st.addrs)
	copy(c.dirty, st.dirty)
	copy(c.threads, st.threads)
	c.Stats = st.stats
	c.policy.Restore(&st.pol)
}

// PortState is a checkpoint of a Port: the in-flight operation's
// completion callback, both queues (the callbacks are captured function
// values, valid only back on the machine that queued them) and the
// contention counters.
type PortState struct {
	busy       bool
	demand     []portOp
	background []portOp
	curDone    func()

	busyCycles    stats.Counter
	demandOps     stats.Counter
	backgroundOps stats.Counter
	queueDelay    stats.Counter
}

// Snapshot captures the port into st.
func (p *Port) Snapshot(st *PortState) {
	st.busy = p.busy
	st.demand = append(st.demand[:0], p.demand...)
	st.background = append(st.background[:0], p.background...)
	st.curDone = p.curDone
	st.busyCycles = p.BusyCycles
	st.demandOps = p.DemandOps
	st.backgroundOps = p.BackgroundOps
	st.queueDelay = p.QueueDelay
}

// Restore writes st back. The engine must be restored to the matching
// checkpoint separately: an in-flight operation's completion event
// lives there, not here.
func (p *Port) Restore(st *PortState) {
	p.busy = st.busy
	p.demand = append(p.demand[:0], st.demand...)
	p.background = append(p.background[:0], st.background...)
	p.curDone = st.curDone
	p.BusyCycles = st.busyCycles
	p.DemandOps = st.demandOps
	p.BackgroundOps = st.backgroundOps
	p.QueueDelay = st.queueDelay
}

// mshrSlot mirrors one MSHR entry in a checkpoint, waiter callbacks
// included (copied into checkpoint-owned storage, reused across
// captures).
type mshrSlot struct {
	next    int32
	hasW    bool
	waiters []func()
}

// MSHRState is a checkpoint of an MSHR file: the entry slab, the probe
// table with its parallel key column and the free-list head. Free-slot
// contents are saved too — free-list link order is part of allocation
// behavior, and keeping it exact is cheaper than arguing it doesn't
// matter.
type MSHRState struct {
	n        int
	freeHead int32
	slots    []mshrSlot
	table    []int32
	keys     []uint64
}

// Snapshot captures the MSHR into st.
func (m *MSHR) Snapshot(st *MSHRState) {
	st.n, st.freeHead = m.n, m.freeHead
	if len(st.slots) != len(m.entries) {
		st.slots = make([]mshrSlot, len(m.entries))
	}
	for i := range m.entries {
		e := &m.entries[i]
		s := &st.slots[i]
		s.next = e.next
		s.hasW = e.waiters != nil
		s.waiters = append(s.waiters[:0], e.waiters...)
	}
	if len(st.table) != len(m.table) {
		st.table = make([]int32, len(m.table))
		st.keys = make([]uint64, len(m.keys))
	}
	copy(st.table, m.table)
	copy(st.keys, m.keys)
}

// Restore writes st back, recycling or reattaching waiter slices so the
// restored file allocates exactly like the captured one would have.
func (m *MSHR) Restore(st *MSHRState) {
	m.n, m.freeHead = st.n, st.freeHead
	for i := range m.entries {
		e := &m.entries[i]
		s := &st.slots[i]
		e.next = s.next
		switch {
		case s.hasW:
			if e.waiters == nil {
				if n := len(m.wsFree); n > 0 {
					e.waiters = m.wsFree[n-1]
					m.wsFree[n-1] = nil
					m.wsFree = m.wsFree[:n-1]
				}
			}
			e.waiters = append(e.waiters[:0], s.waiters...)
		case e.waiters != nil:
			for j := range e.waiters {
				e.waiters[j] = nil
			}
			m.wsFree = append(m.wsFree, e.waiters[:0])
			e.waiters = nil
		}
	}
	copy(m.table, st.table)
	copy(m.keys, st.keys)
}
