package cache

import (
	"dbisim/internal/event"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// Port models a contended, non-pipelined lookup port (the shared L3 tag
// store port in the paper). Operations occupy the port for their full
// duration; queued demand operations always dispatch before queued
// background (filler) operations, but an operation in flight is never
// preempted — exactly the arbitration footnote 4 of the paper describes
// for aggressive-writeback lookups.
type Port struct {
	Eng *event.Engine
	// Attr, when set, receives the llc_port domain total: every
	// submitted operation's duration, charged at Submit. The port is
	// the single funnel for tag-store occupancy, so callers charging
	// per-purpose categories at their Submit sites reconcile exactly
	// against this total.
	Attr *telemetry.Attribution

	busy       bool
	demand     []portOp
	background []portOp
	curDone    func()     // completion callback of the op in flight
	completeFn event.Func // bound once so dispatch never allocates

	// Stats for contention analysis.
	BusyCycles    stats.Counter
	DemandOps     stats.Counter
	BackgroundOps stats.Counter
	QueueDelay    stats.Counter // summed cycles ops waited before dispatch
}

type portOp struct {
	dur      event.Cycle
	enqueued event.Cycle
	done     func()
}

// Submit queues an operation of the given duration. done runs when the
// operation completes. Background ops yield to demand ops at dispatch.
func (p *Port) Submit(background bool, dur event.Cycle, done func()) {
	p.Attr.ChargeDomain(telemetry.DomLLCPort, uint64(dur))
	op := portOp{dur: dur, enqueued: p.Eng.Now(), done: done}
	if background {
		p.background = append(p.background, op)
	} else {
		p.demand = append(p.demand, op)
	}
	p.dispatch()
}

// QueueLen reports queued (not in-flight) operations.
func (p *Port) QueueLen() int { return len(p.demand) + len(p.background) }

// Busy reports whether an operation is in flight.
func (p *Port) Busy() bool { return p.busy }

func (p *Port) dispatch() {
	if p.busy {
		return
	}
	var op portOp
	switch {
	case len(p.demand) > 0:
		op = p.demand[0]
		copy(p.demand, p.demand[1:])
		p.demand = p.demand[:len(p.demand)-1]
		p.DemandOps.Inc()
	case len(p.background) > 0:
		op = p.background[0]
		copy(p.background, p.background[1:])
		p.background = p.background[:len(p.background)-1]
		p.BackgroundOps.Inc()
	default:
		return
	}
	p.busy = true
	p.QueueDelay.Add(uint64(p.Eng.Now() - op.enqueued))
	p.BusyCycles.Add(uint64(op.dur))
	p.curDone = op.done
	if p.completeFn == nil {
		p.completeFn = p.complete
	}
	p.Eng.After(op.dur, p.completeFn)
}

// complete finishes the in-flight operation and dispatches the next.
// The in-flight callback is held on the port (one op is in flight at a
// time) rather than captured in a closure, keeping dispatch
// allocation-free.
func (p *Port) complete() {
	done := p.curDone
	p.curDone = nil
	p.busy = false
	if done != nil {
		done()
	}
	p.dispatch()
}

// Reset returns the port to idle power-on state: no operation in
// flight, queues emptied (capacity retained), counters zeroed. The
// caller is responsible for resetting the engine first so no completion
// event for a dropped in-flight op can still fire.
func (p *Port) Reset() {
	p.busy = false
	p.demand = p.demand[:0]
	p.background = p.background[:0]
	p.curDone = nil
	p.BusyCycles, p.DemandOps = 0, 0
	p.BackgroundOps, p.QueueDelay = 0, 0
}

// RegisterMetrics adds the port's contention probes under the given
// name prefix (e.g. "llc.port").
func (p *Port) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.CounterStat(prefix+".busy_cycles", &p.BusyCycles)
	reg.CounterStat(prefix+".demand_ops", &p.DemandOps)
	reg.CounterStat(prefix+".background_ops", &p.BackgroundOps)
	reg.CounterStat(prefix+".queue_delay", &p.QueueDelay)
	reg.Gauge(prefix+".queue_len", func() float64 { return float64(p.QueueLen()) })
}

// MSHR tracks outstanding misses so that requests to the same block merge
// instead of issuing duplicate fills.
//
// The file is hardware-shaped rather than map-backed: a fixed slab of
// capacity entries threaded on an intrusive free list, indexed by an
// open-addressed, linear-probed table sized to at most 25% load. The
// probe plane is two parallel dense columns — the occupancy/index word
// and the block key — so a probe compares contiguous uint64 keys
// without dereferencing into the entry slab; the slab holds only cold
// payload (free-list links, waiter slices). Waiter slices are recycled
// through a small pool, so the steady state neither allocates nor
// hashes through the Go runtime.
type MSHR struct {
	capacity int
	n        int         // live entries
	entries  []mshrEntry // fixed slab, len == capacity
	freeHead int32       // head of the free list through entries, -1 = none
	table    []int32     // probe array: 0 = empty, else entry index + 1
	keys     []uint64    // block key per occupied slot, parallel to table
	mask     uint64
	wsFree   [][]func() // recycled waiter slices (capacity retained)
}

type mshrEntry struct {
	next    int32 // free-list link
	waiters []func()
}

// mshrHashMul is the 64-bit Fibonacci-hashing multiplier (2^64/φ, odd).
const mshrHashMul = 0x9E3779B97F4A7C15

// NewMSHR returns an MSHR file with the given capacity.
func NewMSHR(capacity int) *MSHR {
	size := uint64(8)
	for size < 4*uint64(max(capacity, 1)) {
		size <<= 1
	}
	m := &MSHR{
		capacity: capacity,
		entries:  make([]mshrEntry, capacity),
		freeHead: -1,
		table:    make([]int32, size),
		keys:     make([]uint64, size),
		mask:     size - 1,
	}
	for i := range m.entries {
		m.entries[i].next = int32(i) + 1
	}
	if capacity > 0 {
		m.entries[capacity-1].next = -1
		m.freeHead = 0
	}
	return m
}

// Reset empties the MSHR, rebuilding the free list and recycling waiter
// slices. The probe table is cleared directly — it is a few cache lines
// for realistic capacities.
func (m *MSHR) Reset() {
	for i := range m.table {
		m.table[i] = 0
		m.keys[i] = 0
	}
	for i := range m.entries {
		e := &m.entries[i]
		if e.waiters != nil {
			m.wsFree = append(m.wsFree, e.waiters[:0])
			e.waiters = nil
		}
		e.next = int32(i) + 1
	}
	if m.capacity > 0 {
		m.entries[m.capacity-1].next = -1
		m.freeHead = 0
	}
	m.n = 0
}

// findSlot probes for block. It returns the matching table slot and
// entry index, or (first empty slot, -1) when the block is absent. The
// probe loop reads only the two dense columns: occupancy from table,
// the key compare from keys — the entry slab is untouched.
func (m *MSHR) findSlot(block uint64) (slot uint64, idx int32) {
	i := (block * mshrHashMul) & m.mask
	for m.table[i] != 0 {
		if m.keys[i] == block {
			return i, m.table[i] - 1
		}
		i = (i + 1) & m.mask
	}
	return i, -1
}

// Len reports outstanding entries.
func (m *MSHR) Len() int { return m.n }

// Full reports whether a new (non-merging) allocation would exceed
// capacity.
func (m *MSHR) Full() bool { return m.n >= m.capacity }

// Register adds a waiter for a block. It reports whether this is the
// first (allocating) request, i.e. the caller must issue the fill.
// Registering a new block on a full MSHR panics; callers must check Full
// and stall instead.
func (m *MSHR) Register(block uint64, wake func()) (first bool) {
	slot, idx := m.findSlot(block)
	if idx >= 0 {
		e := &m.entries[idx]
		e.waiters = append(e.waiters, wake)
		return false
	}
	if m.Full() {
		panic("cache: MSHR overflow; caller must stall on Full()")
	}
	idx = m.freeHead
	e := &m.entries[idx]
	m.freeHead = e.next
	if n := len(m.wsFree); e.waiters == nil && n > 0 {
		e.waiters = m.wsFree[n-1]
		m.wsFree[n-1] = nil
		m.wsFree = m.wsFree[:n-1]
	}
	e.waiters = append(e.waiters, wake)
	m.table[slot] = idx + 1
	m.keys[slot] = block
	m.n++
	return true
}

// Outstanding reports whether the block has an MSHR entry.
func (m *MSHR) Outstanding(block uint64) bool {
	_, idx := m.findSlot(block)
	return idx >= 0
}

// Complete releases the entry for a block and runs all waiters in
// registration order. The entry is freed before the waiters run, so a
// waiter may re-register the same block (taking a fresh entry) without
// observing a phantom outstanding miss.
func (m *MSHR) Complete(block uint64) {
	slot, idx := m.findSlot(block)
	if idx < 0 {
		return
	}
	e := &m.entries[idx]
	ws := e.waiters
	e.waiters = nil
	e.next = m.freeHead
	m.freeHead = idx
	m.n--
	m.deleteSlot(slot)
	for _, w := range ws {
		if w != nil {
			w()
		}
	}
	m.wsFree = append(m.wsFree, ws[:0])
}

// deleteSlot removes table slot i with the backward-shift technique for
// linear probing: subsequent cluster members whose home slot lies at or
// before the vacated position are shifted back, so no tombstones are
// needed and probe chains never grow stale.
func (m *MSHR) deleteSlot(i uint64) {
	for {
		m.table[i] = 0
		m.keys[i] = 0
		j := i
		for {
			j = (j + 1) & m.mask
			if m.table[j] == 0 {
				return
			}
			home := (m.keys[j] * mshrHashMul) & m.mask
			if (j-home)&m.mask >= (j-i)&m.mask {
				m.table[i] = m.table[j]
				m.keys[i] = m.keys[j]
				i = j
				break
			}
		}
	}
}
