package cache

import (
	"dbisim/internal/event"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// Port models a contended, non-pipelined lookup port (the shared L3 tag
// store port in the paper). Operations occupy the port for their full
// duration; queued demand operations always dispatch before queued
// background (filler) operations, but an operation in flight is never
// preempted — exactly the arbitration footnote 4 of the paper describes
// for aggressive-writeback lookups.
type Port struct {
	Eng *event.Engine

	busy       bool
	demand     []portOp
	background []portOp
	curDone    func()     // completion callback of the op in flight
	completeFn event.Func // bound once so dispatch never allocates

	// Stats for contention analysis.
	BusyCycles    stats.Counter
	DemandOps     stats.Counter
	BackgroundOps stats.Counter
	QueueDelay    stats.Counter // summed cycles ops waited before dispatch
}

type portOp struct {
	dur      event.Cycle
	enqueued event.Cycle
	done     func()
}

// Submit queues an operation of the given duration. done runs when the
// operation completes. Background ops yield to demand ops at dispatch.
func (p *Port) Submit(background bool, dur event.Cycle, done func()) {
	op := portOp{dur: dur, enqueued: p.Eng.Now(), done: done}
	if background {
		p.background = append(p.background, op)
	} else {
		p.demand = append(p.demand, op)
	}
	p.dispatch()
}

// QueueLen reports queued (not in-flight) operations.
func (p *Port) QueueLen() int { return len(p.demand) + len(p.background) }

// Busy reports whether an operation is in flight.
func (p *Port) Busy() bool { return p.busy }

func (p *Port) dispatch() {
	if p.busy {
		return
	}
	var op portOp
	switch {
	case len(p.demand) > 0:
		op = p.demand[0]
		copy(p.demand, p.demand[1:])
		p.demand = p.demand[:len(p.demand)-1]
		p.DemandOps.Inc()
	case len(p.background) > 0:
		op = p.background[0]
		copy(p.background, p.background[1:])
		p.background = p.background[:len(p.background)-1]
		p.BackgroundOps.Inc()
	default:
		return
	}
	p.busy = true
	p.QueueDelay.Add(uint64(p.Eng.Now() - op.enqueued))
	p.BusyCycles.Add(uint64(op.dur))
	p.curDone = op.done
	if p.completeFn == nil {
		p.completeFn = p.complete
	}
	p.Eng.After(op.dur, p.completeFn)
}

// complete finishes the in-flight operation and dispatches the next.
// The in-flight callback is held on the port (one op is in flight at a
// time) rather than captured in a closure, keeping dispatch
// allocation-free.
func (p *Port) complete() {
	done := p.curDone
	p.curDone = nil
	p.busy = false
	if done != nil {
		done()
	}
	p.dispatch()
}

// RegisterMetrics adds the port's contention probes under the given
// name prefix (e.g. "llc.port").
func (p *Port) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.CounterStat(prefix+".busy_cycles", &p.BusyCycles)
	reg.CounterStat(prefix+".demand_ops", &p.DemandOps)
	reg.CounterStat(prefix+".background_ops", &p.BackgroundOps)
	reg.CounterStat(prefix+".queue_delay", &p.QueueDelay)
	reg.Gauge(prefix+".queue_len", func() float64 { return float64(p.QueueLen()) })
}

// MSHR tracks outstanding misses so that requests to the same block merge
// instead of issuing duplicate fills.
type MSHR struct {
	capacity int
	pending  map[uint64][]func()
}

// NewMSHR returns an MSHR file with the given capacity.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity, pending: make(map[uint64][]func())}
}

// Len reports outstanding entries.
func (m *MSHR) Len() int { return len(m.pending) }

// Full reports whether a new (non-merging) allocation would exceed
// capacity.
func (m *MSHR) Full() bool { return len(m.pending) >= m.capacity }

// Register adds a waiter for a block. It reports whether this is the
// first (allocating) request, i.e. the caller must issue the fill.
// Registering a new block on a full MSHR panics; callers must check Full
// and stall instead.
func (m *MSHR) Register(block uint64, wake func()) (first bool) {
	ws, ok := m.pending[block]
	if !ok {
		if m.Full() {
			panic("cache: MSHR overflow; caller must stall on Full()")
		}
		m.pending[block] = []func(){wake}
		return true
	}
	m.pending[block] = append(ws, wake)
	return false
}

// Outstanding reports whether the block has an MSHR entry.
func (m *MSHR) Outstanding(block uint64) bool {
	_, ok := m.pending[block]
	return ok
}

// Complete releases the entry for a block and runs all waiters in
// registration order.
func (m *MSHR) Complete(block uint64) {
	ws := m.pending[block]
	delete(m.pending, block)
	for _, w := range ws {
		if w != nil {
			w()
		}
	}
}
