package cache

// Differential tests pinning the struct-of-arrays tag store against a
// retained array-of-structs reference: one record per slot, early-exit
// probe loops — the layout the columnar store replaced. Both consume
// identical randomized operation streams through the same replacement
// policy implementations (same seed, same call sequence), so every
// answer, every victim and the final structural state must agree
// exactly.

import (
	"math/rand"
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/replacement"
)

type refCacheEntry struct {
	valid  bool
	addr   addr.BlockAddr
	dirty  bool
	thread int
}

type refCache struct {
	sets, ways int
	entries    []refCacheEntry
	policy     replacement.Policy

	hits, misses, inserts, evictions, dirtyEvict uint64
}

func newRefCache(t *testing.T, kind replacement.Kind, sets, ways, threads int, seed int64) *refCache {
	t.Helper()
	pol, err := replacement.New(kind, replacement.Config{
		Sets: sets, Ways: ways, Threads: threads, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &refCache{
		sets: sets, ways: ways,
		entries: make([]refCacheEntry, sets*ways),
		policy:  pol,
	}
}

func (c *refCache) setOf(b addr.BlockAddr) int {
	return int(uint64(b) & uint64(c.sets-1))
}

// find is the classic early-exit AoS probe.
func (c *refCache) find(b addr.BlockAddr) (way int, ok bool) {
	base := c.setOf(b) * c.ways
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+w]
		if e.valid && e.addr == b {
			return w, true
		}
	}
	return 0, false
}

func (c *refCache) access(b addr.BlockAddr, thread int) bool {
	set := c.setOf(b)
	if way, ok := c.find(b); ok {
		c.policy.Touch(set, way)
		c.hits++
		return true
	}
	c.policy.OnMiss(set, thread)
	c.misses++
	return false
}

func (c *refCache) blockAt(set, way int) Block {
	e := &c.entries[set*c.ways+way]
	if !e.valid {
		return Block{}
	}
	return Block{Valid: true, Addr: e.addr, Dirty: e.dirty, Thread: e.thread}
}

func (c *refCache) insert(b addr.BlockAddr, thread int, dirty bool) (victim Block) {
	set := c.setOf(b)
	if way, ok := c.find(b); ok {
		if dirty {
			c.entries[set*c.ways+way].dirty = true
		}
		return Block{}
	}
	base := set * c.ways
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.entries[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set)
		victim = c.blockAt(set, way)
		c.evictions++
		if victim.Dirty {
			c.dirtyEvict++
		}
	}
	c.entries[base+way] = refCacheEntry{valid: true, addr: b, dirty: dirty, thread: thread}
	c.policy.Insert(set, way, thread)
	c.inserts++
	return victim
}

func (c *refCache) invalidate(b addr.BlockAddr) (Block, bool) {
	way, ok := c.find(b)
	if !ok {
		return Block{}, false
	}
	set := c.setOf(b)
	old := c.blockAt(set, way)
	c.entries[set*c.ways+way].valid = false
	return old, true
}

func (c *refCache) setDirty(b addr.BlockAddr, dirty bool) bool {
	way, ok := c.find(b)
	if !ok {
		return false
	}
	c.entries[c.setOf(b)*c.ways+way].dirty = dirty
	return true
}

func (c *refCache) isDirty(b addr.BlockAddr) bool {
	way, ok := c.find(b)
	return ok && c.entries[c.setOf(b)*c.ways+way].dirty
}

func (c *refCache) touch(b addr.BlockAddr) {
	if way, ok := c.find(b); ok {
		c.policy.Touch(c.setOf(b), way)
	}
}

func TestCacheDifferentialSoAvsAoS(t *testing.T) {
	kinds := []struct {
		name string
		repl config.ReplacementKind
		kind replacement.Kind
	}{
		{"lru", config.ReplLRU, replacement.KindLRU},
		{"tadip", config.ReplTADIP, replacement.KindTADIP},
		{"drrip", config.ReplDRRIP, replacement.KindDRRIP},
	}
	const threads = 2
	for _, kc := range kinds {
		t.Run(kc.name, func(t *testing.T) {
			p := smallParams()
			p.Replacement = kc.repl
			c, err := New(p, threads, 7)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefCache(t, kc.kind, c.Sets(), c.Ways(), threads, 7)
			// ~8x capacity so conflict evictions are common.
			space := int64(8 * c.Sets() * c.Ways())
			rng := rand.New(rand.NewSource(99))
			for op := 0; op < 100000; op++ {
				b := addr.BlockAddr(rng.Int63n(space))
				thread := rng.Intn(threads)
				switch rng.Intn(10) {
				case 0, 1, 2:
					if got, want := c.Access(b, thread), ref.access(b, thread); got != want {
						t.Fatalf("op %d: Access(%#x)=%v, ref %v", op, uint64(b), got, want)
					}
				case 3, 4, 5:
					dirty := rng.Intn(2) == 0
					got := c.Insert(b, thread, dirty)
					want := ref.insert(b, thread, dirty)
					if got != want {
						t.Fatalf("op %d: Insert(%#x) victim %+v, ref %+v", op, uint64(b), got, want)
					}
				case 6:
					g1, g2 := c.Invalidate(b)
					w1, w2 := ref.invalidate(b)
					if g1 != w1 || g2 != w2 {
						t.Fatalf("op %d: Invalidate(%#x) = (%+v,%v), ref (%+v,%v)", op, uint64(b), g1, g2, w1, w2)
					}
				case 7:
					dirty := rng.Intn(2) == 0
					if got, want := c.SetDirty(b, dirty), ref.setDirty(b, dirty); got != want {
						t.Fatalf("op %d: SetDirty(%#x)=%v, ref %v", op, uint64(b), got, want)
					}
				case 8:
					if got, want := c.IsDirty(b), ref.isDirty(b); got != want {
						t.Fatalf("op %d: IsDirty(%#x)=%v, ref %v", op, uint64(b), got, want)
					}
				case 9:
					c.Touch(b)
					ref.touch(b)
				}
			}
			// Full structural state must agree: every (set, way) slot view.
			for set := 0; set < c.Sets(); set++ {
				for way := 0; way < c.Ways(); way++ {
					if got, want := c.BlockAt(set, way), ref.blockAt(set, way); got != want {
						t.Fatalf("slot (%d,%d) = %+v, ref %+v", set, way, got, want)
					}
				}
			}
			if got, want := c.Stats.Hits.Value(), ref.hits; got != want {
				t.Fatalf("Hits = %d, ref %d", got, want)
			}
			if got, want := c.Stats.Misses.Value(), ref.misses; got != want {
				t.Fatalf("Misses = %d, ref %d", got, want)
			}
			if got, want := c.Stats.Inserts.Value(), ref.inserts; got != want {
				t.Fatalf("Inserts = %d, ref %d", got, want)
			}
			if got, want := c.Stats.Evictions.Value(), ref.evictions; got != want {
				t.Fatalf("Evictions = %d, ref %d", got, want)
			}
			if got, want := c.Stats.DirtyEvict.Value(), ref.dirtyEvict; got != want {
				t.Fatalf("DirtyEvict = %d, ref %d", got, want)
			}
		})
	}
}

// TestTagProbeDoesNotAllocate pins the zero-allocation contract of the
// rewritten tag-store hot paths and the MSHR probe.
func TestTagProbeDoesNotAllocate(t *testing.T) {
	c := mustNew(t, smallParams())
	b := addr.BlockAddr(0x40)
	c.Insert(b, 0, true)

	if n := testing.AllocsPerRun(1000, func() {
		c.Access(b, 0)
	}); n != 0 {
		t.Fatalf("Access hit allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Lookup(b)
	}); n != 0 {
		t.Fatalf("Lookup allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.IsDirty(b)
	}); n != 0 {
		t.Fatalf("IsDirty allocates %.1f per op", n)
	}

	// Conflict-insert steady state: same set, rotating tags.
	i := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Insert(addr.BlockAddr((i%8)*uint64(c.Sets())), 0, false)
		i++
	}); n != 0 {
		t.Fatalf("Insert/evict steady state allocates %.1f per op", n)
	}

	m := NewMSHR(4)
	wake := func() {}
	if n := testing.AllocsPerRun(1000, func() {
		m.Register(42, wake)
		m.Register(42, wake)
		m.Complete(42)
	}); n != 0 {
		t.Fatalf("MSHR register/complete steady state allocates %.1f per op", n)
	}
}
