package cache

import (
	"testing"

	"dbisim/internal/event"
)

func TestPortSerializes(t *testing.T) {
	var eng event.Engine
	p := &Port{Eng: &eng}
	var done []event.Cycle
	for i := 0; i < 3; i++ {
		p.Submit(false, 10, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	want := []event.Cycle{10, 20, 30}
	if len(done) != 3 {
		t.Fatalf("completions: %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if p.BusyCycles.Value() != 30 {
		t.Fatalf("busy cycles = %d", p.BusyCycles.Value())
	}
}

func TestPortDemandPriority(t *testing.T) {
	var eng event.Engine
	p := &Port{Eng: &eng}
	var order []string
	// First op occupies the port; then one background and one demand op
	// queue. Demand must dispatch first even though background queued
	// earlier.
	p.Submit(false, 5, func() { order = append(order, "first") })
	p.Submit(true, 5, func() { order = append(order, "background") })
	p.Submit(false, 5, func() { order = append(order, "demand") })
	eng.Run()
	if len(order) != 3 || order[1] != "demand" || order[2] != "background" {
		t.Fatalf("order = %v", order)
	}
}

func TestPortNoPreemption(t *testing.T) {
	var eng event.Engine
	p := &Port{Eng: &eng}
	var bgDone, demandDone event.Cycle
	p.Submit(true, 100, func() { bgDone = eng.Now() })
	// Demand arrives at cycle 1, must wait for the background op.
	eng.At(1, func() {
		p.Submit(false, 10, func() { demandDone = eng.Now() })
	})
	eng.Run()
	if bgDone != 100 {
		t.Fatalf("background done at %d", bgDone)
	}
	if demandDone != 110 {
		t.Fatalf("demand done at %d, want 110 (no preemption)", demandDone)
	}
	if p.QueueDelay.Value() != 99 {
		t.Fatalf("queue delay = %d, want 99", p.QueueDelay.Value())
	}
}

func TestPortCounters(t *testing.T) {
	var eng event.Engine
	p := &Port{Eng: &eng}
	p.Submit(false, 1, nil)
	p.Submit(true, 1, nil)
	p.Submit(true, 1, nil)
	eng.Run()
	if p.DemandOps.Value() != 1 || p.BackgroundOps.Value() != 2 {
		t.Fatalf("ops = %d demand, %d background", p.DemandOps.Value(), p.BackgroundOps.Value())
	}
	if p.Busy() || p.QueueLen() != 0 {
		t.Fatal("port not idle after run")
	}
}

func TestMSHRMerge(t *testing.T) {
	m := NewMSHR(4)
	var woke []int
	first := m.Register(100, func() { woke = append(woke, 1) })
	if !first {
		t.Fatal("first register not first")
	}
	if m.Register(100, func() { woke = append(woke, 2) }) {
		t.Fatal("second register claimed to be first")
	}
	if !m.Outstanding(100) {
		t.Fatal("block not outstanding")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (merged)", m.Len())
	}
	m.Complete(100)
	if len(woke) != 2 || woke[0] != 1 || woke[1] != 2 {
		t.Fatalf("waiters woke %v", woke)
	}
	if m.Outstanding(100) {
		t.Fatal("block still outstanding after Complete")
	}
}

func TestMSHRFullPanics(t *testing.T) {
	m := NewMSHR(2)
	m.Register(1, nil)
	m.Register(2, nil)
	if !m.Full() {
		t.Fatal("MSHR not full")
	}
	// Merging into an existing entry is allowed even when full.
	if m.Register(1, nil) {
		t.Fatal("merge reported as first")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	m.Register(3, nil)
}

func TestMSHRCompleteUnknownBlock(t *testing.T) {
	m := NewMSHR(2)
	m.Complete(42) // must be a no-op
	if m.Len() != 0 {
		t.Fatal("phantom entry")
	}
}

// TestMSHRCollisionChains exercises the probe table's linear-probing
// cluster maintenance over the dense key column: a pile of keys sharing
// one home slot, completed in an order that forces backward-shift
// deletion to move cluster members, must leave every survivor findable.
func TestMSHRCollisionChains(t *testing.T) {
	m := NewMSHR(8)
	home := func(k uint64) uint64 { return (k * mshrHashMul) & m.mask }

	// Collect 5 distinct keys whose home slot collides with key 1's.
	keys := []uint64{1}
	for k := uint64(2); len(keys) < 5; k++ {
		if home(k) == home(1) {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if !m.Register(k, nil) {
			t.Fatalf("Register(%d) merged instead of allocating", k)
		}
	}
	// Delete from the middle, then the head, so backward-shift must
	// relocate later cluster members both times.
	m.Complete(keys[2])
	m.Complete(keys[0])
	for i, k := range keys {
		want := i != 0 && i != 2
		if got := m.Outstanding(k); got != want {
			t.Fatalf("Outstanding(%d) = %v, want %v", k, got, want)
		}
	}
	// Survivors still merge (not re-allocate) and complete cleanly.
	if m.Register(keys[1], nil) {
		t.Fatal("survivor re-allocated: probe chain broken")
	}
	for _, i := range []int{1, 3, 4} {
		m.Complete(keys[i])
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", m.Len())
	}
}
