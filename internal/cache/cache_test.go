package cache

import (
	"testing"
	"testing/quick"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

func smallParams() config.CacheParams {
	return config.CacheParams{
		SizeBytes: 64 * 4 * 16, Ways: 4, BlockSize: 64,
		TagLatency: 2, DataLatency: 2, MSHRs: 8,
		Replacement: config.ReplLRU,
	}
}

func mustNew(t *testing.T, p config.CacheParams) *Cache {
	t.Helper()
	c, err := New(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadParams(t *testing.T) {
	p := smallParams()
	p.BlockSize = 0
	if _, err := New(p, 1, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := mustNew(t, smallParams())
	b := addr.BlockAddr(0x100)
	if c.Access(b, 0) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(b, 0, false)
	if !c.Access(b, 0) {
		t.Fatal("miss after insert")
	}
	if c.Stats.Hits.Value() != 1 || c.Stats.Misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Stats.Hits.Value(), c.Stats.Misses.Value())
	}
	if c.Stats.TagLookups.Value() != 2 {
		t.Fatalf("tag lookups = %d, want 2", c.Stats.TagLookups.Value())
	}
}

func TestSetMapping(t *testing.T) {
	c := mustNew(t, smallParams()) // 16 sets
	if c.Sets() != 16 || c.Ways() != 4 {
		t.Fatalf("geometry %dx%d", c.Sets(), c.Ways())
	}
	if c.SetOf(addr.BlockAddr(16+3)) != 3 {
		t.Fatalf("SetOf = %d", c.SetOf(addr.BlockAddr(16+3)))
	}
}

func TestInsertEvictsLRU(t *testing.T) {
	c := mustNew(t, smallParams())
	// Fill set 0 with blocks 0,16,32,48 (all map to set 0).
	for i := 0; i < 4; i++ {
		if v := c.Insert(addr.BlockAddr(i*16), 0, false); v.Valid {
			t.Fatalf("eviction while filling invalid ways: %+v", v)
		}
	}
	// Touch block 0 so block 16 is LRU.
	c.Touch(0)
	v := c.Insert(addr.BlockAddr(4*16), 0, false)
	if !v.Valid || v.Addr != 16 {
		t.Fatalf("victim = %+v, want block 16", v)
	}
	if c.Contains(16) {
		t.Fatal("evicted block still present")
	}
}

func TestInsertDirtyVictim(t *testing.T) {
	c := mustNew(t, smallParams())
	for i := 0; i < 4; i++ {
		c.Insert(addr.BlockAddr(i*16), 0, i == 0) // block 0 dirty
	}
	v := c.Insert(addr.BlockAddr(4*16), 0, false)
	if !v.Valid || v.Addr != 0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty block 0", v)
	}
	if c.Stats.DirtyEvict.Value() != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats.DirtyEvict.Value())
	}
}

func TestInsertExistingMergesDirty(t *testing.T) {
	c := mustNew(t, smallParams())
	c.Insert(7, 0, false)
	v := c.Insert(7, 0, true)
	if v.Valid {
		t.Fatalf("re-insert evicted %+v", v)
	}
	if !c.IsDirty(7) {
		t.Fatal("re-insert with dirty=true did not mark dirty")
	}
	c.Insert(7, 0, false)
	if !c.IsDirty(7) {
		t.Fatal("re-insert with dirty=false cleared dirty bit")
	}
}

func TestDirtyBitOps(t *testing.T) {
	c := mustNew(t, smallParams())
	c.Insert(5, 0, false)
	if c.IsDirty(5) {
		t.Fatal("fresh block dirty")
	}
	if !c.SetDirty(5, true) {
		t.Fatal("SetDirty failed on resident block")
	}
	if !c.IsDirty(5) {
		t.Fatal("dirty bit not set")
	}
	if c.SetDirty(999, true) {
		t.Fatal("SetDirty succeeded on absent block")
	}
	got := c.DirtyBlocks()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("DirtyBlocks = %v", got)
	}
	c.SetDirty(5, false)
	if len(c.DirtyBlocks()) != 0 {
		t.Fatal("dirty list not empty after clearing")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, smallParams())
	c.Insert(9, 0, true)
	old, ok := c.Invalidate(9)
	if !ok || !old.Dirty || old.Addr != 9 {
		t.Fatalf("Invalidate = %+v, %v", old, ok)
	}
	if c.Contains(9) {
		t.Fatal("block still present")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double invalidate reported ok")
	}
}

func TestLookupCountsButDoesNotPromote(t *testing.T) {
	c := mustNew(t, smallParams())
	for i := 0; i < 4; i++ {
		c.Insert(addr.BlockAddr(i*16), 0, false)
	}
	// Lookup block 0 (LRU): should not promote it.
	if _, hit := c.Lookup(0); !hit {
		t.Fatal("lookup missed resident block")
	}
	v := c.Insert(addr.BlockAddr(4*16), 0, false)
	if v.Addr != 0 {
		t.Fatalf("victim = %+v; Lookup must not refresh recency", v)
	}
}

func TestCountValid(t *testing.T) {
	c := mustNew(t, smallParams())
	for i := 0; i < 10; i++ {
		c.Insert(addr.BlockAddr(i), 0, false)
	}
	if c.CountValid() != 10 {
		t.Fatalf("CountValid = %d", c.CountValid())
	}
}

// Property: the cache never holds two copies of a block and never exceeds
// its capacity, under arbitrary insert/invalidate sequences.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := New(smallParams(), 1, 7)
		if err != nil {
			return false
		}
		live := map[addr.BlockAddr]bool{}
		for _, op := range ops {
			b := addr.BlockAddr(op % 256)
			switch op % 3 {
			case 0:
				v := c.Insert(b, 0, op%5 == 0)
				live[b] = true
				if v.Valid {
					delete(live, v.Addr)
				}
			case 1:
				if old, ok := c.Invalidate(b); ok {
					if old.Addr != b {
						return false
					}
					delete(live, b)
				}
			case 2:
				c.Access(b, 0)
			}
		}
		if c.CountValid() > c.Sets()*c.Ways() {
			return false
		}
		for b := range live {
			if !c.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAt(t *testing.T) {
	c := mustNew(t, smallParams())
	c.Insert(3, 2, true)
	set := c.SetOf(3)
	found := false
	for w := 0; w < c.Ways(); w++ {
		blk := c.BlockAt(set, w)
		if blk.Valid && blk.Addr == 3 {
			found = true
			if blk.Thread != 2 || !blk.Dirty {
				t.Fatalf("BlockAt = %+v", blk)
			}
		}
	}
	if !found {
		t.Fatal("inserted block not found via BlockAt")
	}
}
