package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

// driveCache replays a deterministic access/insert/dirty workload and
// returns an observable transcript: hit pattern, victims, and the final
// dirty set.
func driveCache(c *Cache, seed int64) ([]bool, []Block, []addr.BlockAddr) {
	rng := rand.New(rand.NewSource(seed))
	var hits []bool
	var victims []Block
	for i := 0; i < 2000; i++ {
		b := addr.BlockAddr(rng.Intn(256))
		switch rng.Intn(3) {
		case 0:
			hits = append(hits, c.Access(b, 0))
		case 1:
			if v := c.Insert(b, 0, rng.Intn(2) == 0); v.Valid {
				victims = append(victims, v)
			}
		case 2:
			if c.Contains(b) {
				c.SetDirty(b, rng.Intn(2) == 0)
			}
		}
	}
	return hits, victims, c.DirtyBlocks()
}

// TestCacheResetMatchesFresh dirties a cache with one workload, resets
// it, replays a second workload, and requires the transcript to match a
// factory-fresh cache running the same second workload with the same
// seed — the generation-stamp validity scheme must hide every stale
// entry, including replacement-policy state.
func TestCacheResetMatchesFresh(t *testing.T) {
	for _, repl := range []config.ReplacementKind{config.ReplLRU, config.ReplTADIP} {
		p := smallParams()
		p.Replacement = repl
		dirtied, err := New(p, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		driveCache(dirtied, 1)
		dirtied.Reset(99)

		fresh, err := New(p, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		h1, v1, d1 := driveCache(dirtied, 2)
		h2, v2, d2 := driveCache(fresh, 2)
		if !reflect.DeepEqual(h1, h2) || !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(d1, d2) {
			t.Errorf("%v: reset cache diverges from fresh cache", repl)
		}
		if dirtied.Stats != fresh.Stats {
			t.Errorf("%v: stats diverge after reset: %+v vs %+v", repl, dirtied.Stats, fresh.Stats)
		}
	}
}

// TestDirtyBlocksInto checks the scratch-reuse variant appends into the
// provided buffer and agrees with DirtyBlocks.
func TestDirtyBlocksInto(t *testing.T) {
	c := mustNew(t, smallParams())
	for i := 0; i < 32; i++ {
		c.Insert(addr.BlockAddr(i), 0, i%2 == 0)
	}
	want := c.DirtyBlocks()
	scratch := make([]addr.BlockAddr, 0, 64)
	got := c.DirtyBlocksInto(scratch)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DirtyBlocksInto = %v, want %v", got, want)
	}
	if cap(got) != cap(scratch) {
		t.Errorf("DirtyBlocksInto reallocated: cap %d, scratch cap %d", cap(got), cap(scratch))
	}
	// Reuse with stale contents must not leak them.
	got2 := c.DirtyBlocksInto(got[:0])
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("reused DirtyBlocksInto = %v, want %v", got2, want)
	}
}

// TestMSHRReset empties a half-full MSHR and verifies it behaves like a
// new file: capacity restored, no phantom outstanding entries, waiters
// from before the reset never fire.
func TestMSHRReset(t *testing.T) {
	m := NewMSHR(4)
	stale := 0
	for i := 0; i < 4; i++ {
		m.Register(uint64(i), func() { stale++ })
	}
	if !m.Full() {
		t.Fatal("MSHR not full after capacity registrations")
	}
	m.Reset()
	if m.Len() != 0 || m.Full() {
		t.Fatalf("after Reset: len=%d full=%v", m.Len(), m.Full())
	}
	for i := 0; i < 4; i++ {
		if m.Outstanding(uint64(i)) {
			t.Fatalf("block %d still outstanding after Reset", i)
		}
	}
	// Full capacity is available again and completion runs only the new
	// waiters.
	woke := 0
	for i := 10; i < 14; i++ {
		if first := m.Register(uint64(i), func() { woke++ }); !first {
			t.Fatalf("block %d merged into a stale entry", i)
		}
	}
	for i := 10; i < 14; i++ {
		m.Complete(uint64(i))
	}
	if woke != 4 || stale != 0 {
		t.Fatalf("woke=%d stale=%d, want 4 and 0", woke, stale)
	}
}

// TestMSHRChurn soaks the open-addressed table: a long random
// register/complete mix cross-checked against a map model, exercising
// collision chains and backward-shift deletion.
func TestMSHRChurn(t *testing.T) {
	m := NewMSHR(16)
	model := map[uint64]int{}
	rng := rand.New(rand.NewSource(3))
	fired := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		b := uint64(rng.Intn(64)) * 0x10000 // clustered keys: force collisions
		if out := m.Outstanding(b); out != (model[b] > 0) {
			t.Fatalf("step %d: Outstanding(%#x)=%v, model %v", i, b, out, model[b] > 0)
		}
		if model[b] > 0 || (!m.Full() && rng.Intn(2) == 0) {
			if model[b] == 0 && m.Full() {
				continue
			}
			b := b
			m.Register(b, func() { fired[b]++ })
			model[b]++
		} else if model[b] > 0 {
			m.Complete(b)
			if fired[b] != model[b] {
				t.Fatalf("step %d: %d waiters fired for %#x, want %d", i, fired[b], b, model[b])
			}
			fired[b] = 0
			model[b] = 0
		}
		if rng.Intn(4) == 0 {
			// Complete a random outstanding block.
			for k, n := range model {
				if n > 0 {
					m.Complete(k)
					if fired[k] != n {
						t.Fatalf("step %d: %d waiters fired for %#x, want %d", i, fired[k], k, n)
					}
					fired[k] = 0
					model[k] = 0
					break
				}
			}
		}
		live := 0
		for _, n := range model {
			if n > 0 {
				live++
			}
		}
		if m.Len() != live {
			t.Fatalf("step %d: Len=%d, model %d", i, m.Len(), live)
		}
	}
}
