// Package cache implements the structural model of a set-associative
// cache: the tag store, replacement bookkeeping, MSHRs and a contended
// tag port. Timing and inter-level protocol live in the llc and system
// packages; this package answers "what is in the cache and what gets
// evicted", cycle-free.
//
// The DBI paper's mechanisms differ in where the dirty bit lives: the
// conventional organizations keep it in the tag entry (Dirty on Block),
// while DBI-augmented caches leave Block.Dirty unused and consult the
// Dirty-Block Index instead.
package cache

import (
	"fmt"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/replacement"
	"dbisim/internal/stats"
)

// Block is one tag-store entry as seen by callers (a value snapshot).
type Block struct {
	Valid  bool
	Addr   addr.BlockAddr // full block address (tag + index)
	Dirty  bool           // unused when a DBI owns dirty state
	Thread int            // inserting thread (for TA-DIP and stats)
}

// entry is the internal tag-store slot. Validity is a generation stamp —
// the slot is live iff gen equals the cache's current generation — so
// Reset invalidates the whole tag store by bumping one counter instead
// of an O(capacity) sweep. Every read path checks the stamp before
// trusting the other fields, so stale contents are never observed.
type entry struct {
	gen    uint64
	addr   addr.BlockAddr
	dirty  bool
	thread int
}

// Stats counts tag-store activity. TagLookups is the quantity Figure 6c
// reports per kilo-instruction.
type Stats struct {
	TagLookups stats.Counter // every tag-store access, demand or filler
	Hits       stats.Counter
	Misses     stats.Counter
	Inserts    stats.Counter
	Evictions  stats.Counter
	DirtyEvict stats.Counter
	Writebacks stats.Counter // dirty blocks handed to the next level
}

// Cache is the structural model.
type Cache struct {
	params config.CacheParams
	sets   int
	ways   int
	gen    uint64 // current validity generation (starts at 1; 0 = never valid)
	blocks []entry
	policy replacement.Policy

	// Stats is exported for the owning level to read.
	Stats Stats
}

// New builds a cache from validated parameters. threads sizes the
// thread-aware policies; seed fixes their random components.
func New(p config.CacheParams, threads int, seed int64) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kind := replacement.KindLRU
	switch p.Replacement {
	case config.ReplLRU:
		kind = replacement.KindLRU
	case config.ReplTADIP:
		kind = replacement.KindTADIP
	case config.ReplDRRIP:
		kind = replacement.KindDRRIP
	default:
		return nil, fmt.Errorf("cache: unknown replacement kind %v", p.Replacement)
	}
	pol, err := replacement.New(kind, replacement.Config{
		Sets: p.Sets(), Ways: p.Ways, Threads: threads, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{
		params: p,
		sets:   p.Sets(),
		ways:   p.Ways,
		gen:    1,
		blocks: make([]entry, p.Sets()*p.Ways),
		policy: pol,
	}, nil
}

// Reset returns the cache to power-on state: every block invalid (one
// generation bump), replacement state re-derived from seed exactly as
// New would, statistics zeroed. The tag store and policy arrays are
// retained, so a reset cache behaves bit-identically to a fresh one
// without reallocating.
func (c *Cache) Reset(seed int64) {
	c.gen++
	c.policy.Reset(seed)
	c.Stats = Stats{}
}

// Params returns the configured parameters.
func (c *Cache) Params() config.CacheParams { return c.params }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf maps a block address to its set index.
func (c *Cache) SetOf(b addr.BlockAddr) int {
	return int(uint64(b) & uint64(c.sets-1))
}

// at returns the slot in (set, way).
func (c *Cache) at(set, way int) *entry { return &c.blocks[set*c.ways+way] }

// valid reports whether the slot's contents belong to the current
// generation.
func (c *Cache) valid(e *entry) bool { return e.gen == c.gen }

// BlockAt exposes the tag entry at (set, way) for diagnostics and for
// mechanisms (VWQ, DAWB) that scan sets. Invalid slots read as the zero
// Block regardless of their stale contents.
func (c *Cache) BlockAt(set, way int) Block {
	e := c.at(set, way)
	if !c.valid(e) {
		return Block{}
	}
	return Block{Valid: true, Addr: e.addr, Dirty: e.dirty, Thread: e.thread}
}

// find locates a block without touching statistics or recency.
func (c *Cache) find(b addr.BlockAddr) (way int, ok bool) {
	set := c.SetOf(b)
	for w := 0; w < c.ways; w++ {
		e := c.at(set, w)
		if c.valid(e) && e.addr == b {
			return w, true
		}
	}
	return 0, false
}

// Contains reports block presence without counting a tag lookup; it is
// the oracle used by tests and by the DBI's consistency checks.
func (c *Cache) Contains(b addr.BlockAddr) bool {
	_, ok := c.find(b)
	return ok
}

// Lookup performs a tag-store lookup (counted) without updating recency.
// Mechanisms that scan for dirty row-mates (DAWB) use this.
func (c *Cache) Lookup(b addr.BlockAddr) (way int, hit bool) {
	c.Stats.TagLookups.Inc()
	return c.find(b)
}

// Access performs a demand access: a counted tag lookup that updates
// recency on a hit and dueling state on a miss.
func (c *Cache) Access(b addr.BlockAddr, thread int) (hit bool) {
	c.Stats.TagLookups.Inc()
	set := c.SetOf(b)
	if way, ok := c.find(b); ok {
		c.policy.Touch(set, way)
		c.Stats.Hits.Inc()
		return true
	}
	c.policy.OnMiss(set, thread)
	c.Stats.Misses.Inc()
	return false
}

// Touch promotes a resident block without a counted lookup (used when the
// lookup cost was already paid by the caller in the same operation).
func (c *Cache) Touch(b addr.BlockAddr) {
	if way, ok := c.find(b); ok {
		c.policy.Touch(c.SetOf(b), way)
	}
}

// Insert fills a block, returning the evicted victim (Valid=false when an
// invalid way was used). The caller decides what to do with a dirty
// victim (writeback) and with the victim's DBI state.
func (c *Cache) Insert(b addr.BlockAddr, thread int, dirty bool) (victim Block) {
	set := c.SetOf(b)
	if way, ok := c.find(b); ok {
		// Already present: refresh dirty/thread state only.
		e := c.at(set, way)
		e.dirty = e.dirty || dirty
		return Block{}
	}
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid(c.at(set, w)) {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set)
		victim = c.BlockAt(set, way)
		c.Stats.Evictions.Inc()
		if victim.Dirty {
			c.Stats.DirtyEvict.Inc()
		}
	}
	*c.at(set, way) = entry{gen: c.gen, addr: b, dirty: dirty, thread: thread}
	c.policy.Insert(set, way, thread)
	c.Stats.Inserts.Inc()
	return victim
}

// Invalidate removes a block if present and returns its prior state.
func (c *Cache) Invalidate(b addr.BlockAddr) (old Block, ok bool) {
	way, ok := c.find(b)
	if !ok {
		return Block{}, false
	}
	set := c.SetOf(b)
	old = c.BlockAt(set, way)
	c.at(set, way).gen = 0
	return old, true
}

// SetDirty marks a resident block dirty (conventional organization).
// It reports whether the block was found.
func (c *Cache) SetDirty(b addr.BlockAddr, dirty bool) bool {
	way, ok := c.find(b)
	if !ok {
		return false
	}
	c.at(c.SetOf(b), way).dirty = dirty
	return true
}

// IsDirty reports the tag-entry dirty bit (conventional organization),
// without counting a lookup.
func (c *Cache) IsDirty(b addr.BlockAddr) bool {
	way, ok := c.find(b)
	return ok && c.at(c.SetOf(b), way).dirty
}

// DirtyBlocksInto appends the addresses of all dirty blocks to dst and
// returns the extended slice, letting scan-heavy callers (flush loops,
// AWB harvests) reuse one scratch buffer instead of allocating per call.
func (c *Cache) DirtyBlocksInto(dst []addr.BlockAddr) []addr.BlockAddr {
	for i := range c.blocks {
		e := &c.blocks[i]
		if c.valid(e) && e.dirty {
			dst = append(dst, e.addr)
		}
	}
	return dst
}

// DirtyBlocks returns the addresses of all dirty blocks (test oracle and
// cache-flush support). Allocation-sensitive callers should prefer
// DirtyBlocksInto.
func (c *Cache) DirtyBlocks() []addr.BlockAddr {
	return c.DirtyBlocksInto(nil)
}

// CountValid returns the number of valid blocks (diagnostics).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.blocks {
		if c.valid(&c.blocks[i]) {
			n++
		}
	}
	return n
}
