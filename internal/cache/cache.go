// Package cache implements the structural model of a set-associative
// cache: the tag store, replacement bookkeeping, MSHRs and a contended
// tag port. Timing and inter-level protocol live in the llc and system
// packages; this package answers "what is in the cache and what gets
// evicted", cycle-free.
//
// The DBI paper's mechanisms differ in where the dirty bit lives: the
// conventional organizations keep it in the tag entry (Dirty on Block),
// while DBI-augmented caches leave Block.Dirty unused and consult the
// Dirty-Block Index instead.
package cache

import (
	"fmt"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/replacement"
	"dbisim/internal/stats"
)

// Block is one tag-store entry.
type Block struct {
	Valid  bool
	Addr   addr.BlockAddr // full block address (tag + index)
	Dirty  bool           // unused when a DBI owns dirty state
	Thread int            // inserting thread (for TA-DIP and stats)
}

// Stats counts tag-store activity. TagLookups is the quantity Figure 6c
// reports per kilo-instruction.
type Stats struct {
	TagLookups stats.Counter // every tag-store access, demand or filler
	Hits       stats.Counter
	Misses     stats.Counter
	Inserts    stats.Counter
	Evictions  stats.Counter
	DirtyEvict stats.Counter
	Writebacks stats.Counter // dirty blocks handed to the next level
}

// Cache is the structural model.
type Cache struct {
	params config.CacheParams
	sets   int
	ways   int
	blocks []Block
	policy replacement.Policy

	// Stats is exported for the owning level to read.
	Stats Stats
}

// New builds a cache from validated parameters. threads sizes the
// thread-aware policies; seed fixes their random components.
func New(p config.CacheParams, threads int, seed int64) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kind := replacement.KindLRU
	switch p.Replacement {
	case config.ReplLRU:
		kind = replacement.KindLRU
	case config.ReplTADIP:
		kind = replacement.KindTADIP
	case config.ReplDRRIP:
		kind = replacement.KindDRRIP
	default:
		return nil, fmt.Errorf("cache: unknown replacement kind %v", p.Replacement)
	}
	pol, err := replacement.New(kind, replacement.Config{
		Sets: p.Sets(), Ways: p.Ways, Threads: threads, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{
		params: p,
		sets:   p.Sets(),
		ways:   p.Ways,
		blocks: make([]Block, p.Sets()*p.Ways),
		policy: pol,
	}, nil
}

// Params returns the configured parameters.
func (c *Cache) Params() config.CacheParams { return c.params }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf maps a block address to its set index.
func (c *Cache) SetOf(b addr.BlockAddr) int {
	return int(uint64(b) & uint64(c.sets-1))
}

// at returns the block in (set, way).
func (c *Cache) at(set, way int) *Block { return &c.blocks[set*c.ways+way] }

// BlockAt exposes the tag entry at (set, way) for diagnostics and for
// mechanisms (VWQ, DAWB) that scan sets.
func (c *Cache) BlockAt(set, way int) Block { return *c.at(set, way) }

// find locates a block without touching statistics or recency.
func (c *Cache) find(b addr.BlockAddr) (way int, ok bool) {
	set := c.SetOf(b)
	for w := 0; w < c.ways; w++ {
		blk := c.at(set, w)
		if blk.Valid && blk.Addr == b {
			return w, true
		}
	}
	return 0, false
}

// Contains reports block presence without counting a tag lookup; it is
// the oracle used by tests and by the DBI's consistency checks.
func (c *Cache) Contains(b addr.BlockAddr) bool {
	_, ok := c.find(b)
	return ok
}

// Lookup performs a tag-store lookup (counted) without updating recency.
// Mechanisms that scan for dirty row-mates (DAWB) use this.
func (c *Cache) Lookup(b addr.BlockAddr) (way int, hit bool) {
	c.Stats.TagLookups.Inc()
	return c.find(b)
}

// Access performs a demand access: a counted tag lookup that updates
// recency on a hit and dueling state on a miss.
func (c *Cache) Access(b addr.BlockAddr, thread int) (hit bool) {
	c.Stats.TagLookups.Inc()
	set := c.SetOf(b)
	if way, ok := c.find(b); ok {
		c.policy.Touch(set, way)
		c.Stats.Hits.Inc()
		return true
	}
	c.policy.OnMiss(set, thread)
	c.Stats.Misses.Inc()
	return false
}

// Touch promotes a resident block without a counted lookup (used when the
// lookup cost was already paid by the caller in the same operation).
func (c *Cache) Touch(b addr.BlockAddr) {
	if way, ok := c.find(b); ok {
		c.policy.Touch(c.SetOf(b), way)
	}
}

// Insert fills a block, returning the evicted victim (Valid=false when an
// invalid way was used). The caller decides what to do with a dirty
// victim (writeback) and with the victim's DBI state.
func (c *Cache) Insert(b addr.BlockAddr, thread int, dirty bool) (victim Block) {
	set := c.SetOf(b)
	if way, ok := c.find(b); ok {
		// Already present: refresh dirty/thread state only.
		blk := c.at(set, way)
		blk.Dirty = blk.Dirty || dirty
		return Block{}
	}
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.at(set, w).Valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set)
		victim = *c.at(set, way)
		c.Stats.Evictions.Inc()
		if victim.Dirty {
			c.Stats.DirtyEvict.Inc()
		}
	}
	*c.at(set, way) = Block{Valid: true, Addr: b, Dirty: dirty, Thread: thread}
	c.policy.Insert(set, way, thread)
	c.Stats.Inserts.Inc()
	return victim
}

// Invalidate removes a block if present and returns its prior state.
func (c *Cache) Invalidate(b addr.BlockAddr) (old Block, ok bool) {
	way, ok := c.find(b)
	if !ok {
		return Block{}, false
	}
	set := c.SetOf(b)
	old = *c.at(set, way)
	*c.at(set, way) = Block{}
	return old, true
}

// SetDirty marks a resident block dirty (conventional organization).
// It reports whether the block was found.
func (c *Cache) SetDirty(b addr.BlockAddr, dirty bool) bool {
	way, ok := c.find(b)
	if !ok {
		return false
	}
	c.at(c.SetOf(b), way).Dirty = dirty
	return true
}

// IsDirty reports the tag-entry dirty bit (conventional organization),
// without counting a lookup.
func (c *Cache) IsDirty(b addr.BlockAddr) bool {
	way, ok := c.find(b)
	return ok && c.at(c.SetOf(b), way).Dirty
}

// DirtyBlocks returns the addresses of all dirty blocks (test oracle and
// cache-flush support).
func (c *Cache) DirtyBlocks() []addr.BlockAddr {
	var out []addr.BlockAddr
	for i := range c.blocks {
		if c.blocks[i].Valid && c.blocks[i].Dirty {
			out = append(out, c.blocks[i].Addr)
		}
	}
	return out
}

// CountValid returns the number of valid blocks (diagnostics).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.blocks {
		if c.blocks[i].Valid {
			n++
		}
	}
	return n
}
