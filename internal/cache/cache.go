// Package cache implements the structural model of a set-associative
// cache: the tag store, replacement bookkeeping, MSHRs and a contended
// tag port. Timing and inter-level protocol live in the llc and system
// packages; this package answers "what is in the cache and what gets
// evicted", cycle-free.
//
// The DBI paper's mechanisms differ in where the dirty bit lives: the
// conventional organizations keep it in the tag entry (Dirty on Block),
// while DBI-augmented caches leave Block.Dirty unused and consult the
// Dirty-Block Index instead.
package cache

import (
	"fmt"
	"math/bits"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/replacement"
	"dbisim/internal/stats"
)

// Block is one tag-store entry as seen by callers (a value snapshot).
type Block struct {
	Valid  bool
	Addr   addr.BlockAddr // full block address (tag + index)
	Dirty  bool           // unused when a DBI owns dirty state
	Thread int            // inserting thread (for TA-DIP and stats)
}

// Stats counts tag-store activity. TagLookups is the quantity Figure 6c
// reports per kilo-instruction.
type Stats struct {
	TagLookups stats.Counter // every tag-store access, demand or filler
	Hits       stats.Counter
	Misses     stats.Counter
	Inserts    stats.Counter
	Evictions  stats.Counter
	DirtyEvict stats.Counter
	Writebacks stats.Counter // dirty blocks handed to the next level
}

// Cache is the structural model.
//
// The tag store is struct-of-arrays: instead of a slab of
// entry{gen, addr, dirty, thread} records, each field lives in its own
// dense column indexed by set*ways+way. The probe loop touches only the
// two hot columns — the validity stamps and the block addresses — so a
// 16-way set's probe plane is 2×128 contiguous bytes (two cache lines
// per column) instead of 16 records dragging the cold dirty/thread
// bytes through the scan. Validity is a generation stamp: a slot is
// live iff gens[i] equals the cache's current generation, so Reset
// invalidates the whole store by bumping one counter, and every read
// path folds the stamp check into the tag compare.
type Cache struct {
	params config.CacheParams
	sets   int
	ways   int
	gen    uint64 // current validity generation (starts at 1; 0 = never valid)

	// Hot probe plane: one stamp and one address per slot.
	gens  []uint64
	addrs []uint64
	// Cold payload columns, touched only on hits and state changes.
	dirty   []uint8
	threads []int32

	policy replacement.Policy

	// Stats is exported for the owning level to read.
	Stats Stats
}

// New builds a cache from validated parameters. threads sizes the
// thread-aware policies; seed fixes their random components.
func New(p config.CacheParams, threads int, seed int64) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kind := replacement.KindLRU
	switch p.Replacement {
	case config.ReplLRU:
		kind = replacement.KindLRU
	case config.ReplTADIP:
		kind = replacement.KindTADIP
	case config.ReplDRRIP:
		kind = replacement.KindDRRIP
	default:
		return nil, fmt.Errorf("cache: unknown replacement kind %v", p.Replacement)
	}
	pol, err := replacement.New(kind, replacement.Config{
		Sets: p.Sets(), Ways: p.Ways, Threads: threads, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	n := p.Sets() * p.Ways
	return &Cache{
		params:  p,
		sets:    p.Sets(),
		ways:    p.Ways,
		gen:     1,
		gens:    make([]uint64, n),
		addrs:   make([]uint64, n),
		dirty:   make([]uint8, n),
		threads: make([]int32, n),
		policy:  pol,
	}, nil
}

// Reset returns the cache to power-on state: every block invalid (one
// generation bump), replacement state re-derived from seed exactly as
// New would, statistics zeroed. The tag columns and policy arrays are
// retained, so a reset cache behaves bit-identically to a fresh one
// without reallocating.
func (c *Cache) Reset(seed int64) {
	c.gen++
	c.policy.Reset(seed)
	c.Stats = Stats{}
}

// Params returns the configured parameters.
func (c *Cache) Params() config.CacheParams { return c.params }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf maps a block address to its set index.
func (c *Cache) SetOf(b addr.BlockAddr) int {
	return int(uint64(b) & uint64(c.sets-1))
}

// slot returns the column index of (set, way).
func (c *Cache) slot(set, way int) int { return set*c.ways + way }

// validAt reports whether the slot's contents belong to the current
// generation.
func (c *Cache) validAt(i int) bool { return c.gens[i] == c.gen }

// BlockAt exposes the tag entry at (set, way) for diagnostics and for
// mechanisms (VWQ, DAWB) that scan sets. Invalid slots read as the zero
// Block regardless of their stale contents.
func (c *Cache) BlockAt(set, way int) Block {
	i := c.slot(set, way)
	if !c.validAt(i) {
		return Block{}
	}
	return Block{
		Valid:  true,
		Addr:   addr.BlockAddr(c.addrs[i]),
		Dirty:  c.dirty[i] != 0,
		Thread: int(c.threads[i]),
	}
}

// b2u is the branch-free bool→uint64 the probe loops accumulate with;
// the compiler lowers it to a flag-materializing move (SETcc/CSET), not
// a jump.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// find locates a block without touching statistics or recency.
//
// The way scan is branchless: every way's tag and stamp are compared
// (XOR-fold, so validity costs no extra compare) and the per-way match
// bits accumulate into one mask — no early exit, so the loop's trip
// count is data-independent and the branch predictor has nothing to
// mispredict. At most one way can match (the insert path never admits
// duplicates), making TrailingZeros the unique hit way.
func (c *Cache) find(b addr.BlockAddr) (way int, ok bool) {
	base := c.SetOf(b) * c.ways
	gens := c.gens[base : base+c.ways]
	addrs := c.addrs[base : base+c.ways : base+c.ways]
	key, gen := uint64(b), c.gen
	var mask uint64
	for w := range addrs {
		miss := (addrs[w] ^ key) | (gens[w] ^ gen)
		mask |= b2u(miss == 0) << uint(w)
	}
	if mask == 0 {
		return 0, false
	}
	return bits.TrailingZeros64(mask), true
}

// Contains reports block presence without counting a tag lookup; it is
// the oracle used by tests and by the DBI's consistency checks.
func (c *Cache) Contains(b addr.BlockAddr) bool {
	_, ok := c.find(b)
	return ok
}

// Lookup performs a tag-store lookup (counted) without updating recency.
// Mechanisms that scan for dirty row-mates (DAWB) use this.
func (c *Cache) Lookup(b addr.BlockAddr) (way int, hit bool) {
	c.Stats.TagLookups.Inc()
	return c.find(b)
}

// Access performs a demand access: a counted tag lookup that updates
// recency on a hit and dueling state on a miss.
func (c *Cache) Access(b addr.BlockAddr, thread int) (hit bool) {
	c.Stats.TagLookups.Inc()
	set := c.SetOf(b)
	if way, ok := c.find(b); ok {
		c.policy.Touch(set, way)
		c.Stats.Hits.Inc()
		return true
	}
	c.policy.OnMiss(set, thread)
	c.Stats.Misses.Inc()
	return false
}

// Touch promotes a resident block without a counted lookup (used when the
// lookup cost was already paid by the caller in the same operation).
func (c *Cache) Touch(b addr.BlockAddr) {
	if way, ok := c.find(b); ok {
		c.policy.Touch(c.SetOf(b), way)
	}
}

// Insert fills a block, returning the evicted victim (Valid=false when an
// invalid way was used). The caller decides what to do with a dirty
// victim (writeback) and with the victim's DBI state.
func (c *Cache) Insert(b addr.BlockAddr, thread int, dirty bool) (victim Block) {
	set := c.SetOf(b)
	if way, ok := c.find(b); ok {
		// Already present: refresh dirty state only.
		if dirty {
			c.dirty[c.slot(set, way)] = 1
		}
		return Block{}
	}
	way := -1
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.gens[base+w] != c.gen {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set)
		victim = c.BlockAt(set, way)
		c.Stats.Evictions.Inc()
		if victim.Dirty {
			c.Stats.DirtyEvict.Inc()
		}
	}
	i := base + way
	c.gens[i] = c.gen
	c.addrs[i] = uint64(b)
	c.dirty[i] = b2u8(dirty)
	c.threads[i] = int32(thread)
	c.policy.Insert(set, way, thread)
	c.Stats.Inserts.Inc()
	return victim
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Invalidate removes a block if present and returns its prior state.
func (c *Cache) Invalidate(b addr.BlockAddr) (old Block, ok bool) {
	way, ok := c.find(b)
	if !ok {
		return Block{}, false
	}
	set := c.SetOf(b)
	old = c.BlockAt(set, way)
	c.gens[c.slot(set, way)] = 0
	return old, true
}

// SetDirty marks a resident block dirty (conventional organization).
// It reports whether the block was found.
func (c *Cache) SetDirty(b addr.BlockAddr, dirty bool) bool {
	way, ok := c.find(b)
	if !ok {
		return false
	}
	c.dirty[c.slot(c.SetOf(b), way)] = b2u8(dirty)
	return true
}

// IsDirty reports the tag-entry dirty bit (conventional organization),
// without counting a lookup.
func (c *Cache) IsDirty(b addr.BlockAddr) bool {
	way, ok := c.find(b)
	return ok && c.dirty[c.slot(c.SetOf(b), way)] != 0
}

// DirtyBlocksInto appends the addresses of all dirty blocks to dst and
// returns the extended slice, letting scan-heavy callers (flush loops,
// AWB harvests) reuse one scratch buffer instead of allocating per call.
func (c *Cache) DirtyBlocksInto(dst []addr.BlockAddr) []addr.BlockAddr {
	for i := range c.gens {
		if c.validAt(i) && c.dirty[i] != 0 {
			dst = append(dst, addr.BlockAddr(c.addrs[i]))
		}
	}
	return dst
}

// DirtyBlocks returns the addresses of all dirty blocks (test oracle and
// cache-flush support). Allocation-sensitive callers should prefer
// DirtyBlocksInto.
func (c *Cache) DirtyBlocks() []addr.BlockAddr {
	return c.DirtyBlocksInto(nil)
}

// CountValid returns the number of valid blocks (diagnostics).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.gens {
		if c.validAt(i) {
			n++
		}
	}
	return n
}
