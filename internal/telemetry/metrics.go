// Package telemetry is the simulator's observability layer: a metrics
// registry with an epoch sampler that turns component counters into
// cycle-domain time series, and a request-lifecycle tracer that emits
// Chrome trace-event JSON (see tracer.go).
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Components keep a possibly-nil *Tracer
//     and emit through nil-receiver methods whose first instruction is a
//     nil check; counters are the ordinary stats.Counter fields the
//     components already increment, observed from the outside by probe
//     closures that only run at epoch boundaries. A simulation with
//     telemetry off executes exactly the instructions it executed before
//     this package existed.
//
//   - No determinism perturbation. Telemetry never mutates simulation
//     state: probes are read-only, the sampler's epoch events only read
//     counters, and trace emission appends to a preallocated ring.
//     Enabling any of it yields bit-identical system.Results (enforced
//     by TestTelemetryDoesNotPerturbResults in internal/system).
//
//   - Bounded memory. The tracer ring overwrites its oldest events; the
//     sampler's growth is one record per epoch, chosen by the user.
package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"dbisim/internal/stats"
)

// probeKind distinguishes how a probe's readings become samples.
type probeKind uint8

const (
	// kindCounter probes are cumulative; the sampler records the delta
	// since the previous epoch, so bursts show up as spikes rather than
	// as a slope change on an ever-growing line.
	kindCounter probeKind = iota
	// kindGauge probes are instantaneous (queue depths, valid entries);
	// the sampler records the value as read.
	kindGauge
)

type probe struct {
	name string
	kind probeKind
	fn   func() float64
	last float64
}

type histProbe struct {
	name string
	h    *stats.Histogram
}

// Registry collects the named probes of every component in a system.
// Components expose a RegisterMetrics method that adds their probes;
// registration order fixes the column order of the exported series, so
// wiring order (which is deterministic) fully determines the output
// layout. A nil *Registry accepts and discards registrations, so call
// sites never need to guard.
type Registry struct {
	probes []probe
	hists  []histProbe
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a cumulative counter probe; the sampler records
// per-epoch deltas.
func (r *Registry) Counter(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.probes = append(r.probes, probe{name: name, kind: kindCounter, fn: func() float64 { return float64(fn()) }})
}

// CounterStat registers a stats.Counter directly.
func (r *Registry) CounterStat(name string, c *stats.Counter) {
	r.Counter(name, func() uint64 { return c.Value() })
}

// Gauge registers an instantaneous probe; the sampler records the value
// read at each epoch boundary.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.probes = append(r.probes, probe{name: name, kind: kindGauge, fn: fn})
}

// Histogram registers a histogram whose buckets are snapshotted
// (cumulatively) at each epoch boundary.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	if r == nil || h == nil {
		return
	}
	r.hists = append(r.hists, histProbe{name: name, h: h})
}

// Kind labels for EachScalar (the probeKind names exported to readers
// that render the registry, e.g. the Prometheus exposition writer).
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
)

// EachScalar calls fn once per registered scalar probe, in registration
// order, with the probe's kind label and its current cumulative (for
// counters) or instantaneous (for gauges) value. It never touches the
// sampler's delta state, so scraping and epoch sampling compose.
//
// Concurrency: EachScalar reads through the probe closures with no
// locking, so a registry served live (the ops-plane /metrics endpoint)
// must only hold probes whose reads are safe under concurrency —
// atomics, or counters whose torn reads are acceptable as monitoring
// approximations. Registration must be complete before serving starts.
func (r *Registry) EachScalar(fn func(name, kind string, v float64)) {
	if r == nil {
		return
	}
	for i := range r.probes {
		p := &r.probes[i]
		kind := KindCounter
		if p.kind == kindGauge {
			kind = KindGauge
		}
		fn(p.name, kind, p.fn())
	}
}

// EachHistogram calls fn once per registered histogram, in registration
// order. The same concurrency caveat as EachScalar applies.
func (r *Registry) EachHistogram(fn func(name string, h *stats.Histogram)) {
	if r == nil {
		return
	}
	for _, hp := range r.hists {
		fn(hp.name, hp.h)
	}
}

// Names returns the registered scalar metric names in column order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.name
	}
	return out
}

// Sample is one epoch's scalar readings; Values is parallel to the
// series' Metrics names.
type Sample struct {
	Cycle  uint64    `json:"cycle"`
	Values []float64 `json:"values"`
}

// HistSample is one epoch's snapshot of a registered histogram. The
// buckets are cumulative (diff two snapshots for an epoch-local view);
// the p50/p95/p99 quantiles are precomputed from the cumulative
// distribution so snapshots are plottable without client-side bucket
// math.
type HistSample struct {
	Cycle   uint64   `json:"cycle"`
	Count   uint64   `json:"count"`
	Mean    float64  `json:"mean"`
	P50     int      `json:"p50"`
	P95     int      `json:"p95"`
	P99     int      `json:"p99"`
	Buckets []uint64 `json:"buckets"`
}

// TimeSeries is the exported document: metric names, one Sample per
// epoch, and per-histogram snapshot tracks.
type TimeSeries struct {
	EpochCycles uint64                  `json:"epoch_cycles"`
	Metrics     []string                `json:"metrics"`
	Samples     []Sample                `json:"samples"`
	Histograms  map[string][]HistSample `json:"histograms,omitempty"`
}

// Sampler snapshots a registry every epoch. Drive it from the event
// engine (system.Run arms it via event.Engine.Every); each Tick reads
// every probe and appends one Sample.
type Sampler struct {
	reg    *Registry
	epoch  uint64
	series TimeSeries
	lastAt uint64
	any    bool
}

// NewSampler builds a sampler over reg with the given epoch length in
// cycles (minimum 1).
func NewSampler(reg *Registry, epochCycles uint64) *Sampler {
	if epochCycles < 1 {
		epochCycles = 1
	}
	return &Sampler{
		reg:   reg,
		epoch: epochCycles,
		series: TimeSeries{
			EpochCycles: epochCycles,
			Metrics:     reg.Names(),
		},
	}
}

// Epoch returns the configured epoch length in cycles.
func (s *Sampler) Epoch() uint64 { return s.epoch }

// Tick records one sample at the given cycle. Counter probes record the
// delta since the previous tick; gauges record the instantaneous value.
func (s *Sampler) Tick(cycle uint64) {
	vals := make([]float64, len(s.reg.probes))
	for i := range s.reg.probes {
		p := &s.reg.probes[i]
		v := p.fn()
		if p.kind == kindCounter {
			vals[i] = v - p.last
			p.last = v
		} else {
			vals[i] = v
		}
	}
	s.series.Samples = append(s.series.Samples, Sample{Cycle: cycle, Values: vals})
	for _, hp := range s.reg.hists {
		if s.series.Histograms == nil {
			s.series.Histograms = make(map[string][]HistSample)
		}
		s.series.Histograms[hp.name] = append(s.series.Histograms[hp.name], HistSample{
			Cycle:   cycle,
			Count:   hp.h.Count(),
			Mean:    hp.h.Mean(),
			P50:     hp.h.Quantile(0.50),
			P95:     hp.h.Quantile(0.95),
			P99:     hp.h.Quantile(0.99),
			Buckets: hp.h.Buckets(),
		})
	}
	s.lastAt, s.any = cycle, true
}

// Finish records a final partial-epoch sample at the given cycle unless
// one was already taken there, so the tail of the run is never lost.
func (s *Sampler) Finish(cycle uint64) {
	if s.any && cycle <= s.lastAt {
		return
	}
	s.Tick(cycle)
}

// Series returns the accumulated time series.
func (s *Sampler) Series() *TimeSeries { return &s.series }

// WriteJSON serializes the series as indented JSON.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// WriteCSV writes the scalar samples as CSV: a cycle column followed by
// one column per metric. Histogram tracks are JSON-only.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"cycle"}, ts.Metrics...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+len(ts.Metrics))
	for _, s := range ts.Samples {
		row[0] = strconv.FormatUint(s.Cycle, 10)
		for i, v := range s.Values {
			row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes the series to path — CSV when the path ends in
// ".csv", indented JSON otherwise.
func (ts *TimeSeries) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		werr = ts.WriteCSV(f)
	} else {
		werr = ts.WriteJSON(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("telemetry: writing %s: %w", path, werr)
	}
	return nil
}
