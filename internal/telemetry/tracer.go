// Request-lifecycle tracing in the Chrome trace-event format, loadable
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Components emit through a possibly-nil *Tracer; every emit method
// nil-checks first, so a disabled tracer costs one compare per call
// site and allocates nothing. An enabled tracer appends fixed-size
// Event values into a preallocated ring buffer, so the hot path stays
// allocation-free there too (enforced by TestTracerEmitDoesNotAllocate)
// and memory stays bounded on long runs: once the ring fills, the
// oldest events are overwritten and counted as dropped.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Phase values follow the trace-event spec.
const (
	PhaseComplete = 'X' // duration event: TS..TS+Dur
	PhaseInstant  = 'i' // point event at TS
)

// Thread ids (the "tid" lanes in the viewer). Cores use their core
// index directly; shared structures and DRAM banks get fixed lanes.
const (
	TIDLLC  = 64  // shared LLC (tag port, bypass decisions)
	TIDDBI  = 65  // Dirty-Block Index events
	TIDDRAM = 96  // memory-controller queue/drain events
	tidBank = 128 // first DRAM bank lane
)

// TIDBank returns the trace lane of DRAM bank b.
func TIDBank(b int) int { return tidBank + b }

// Event is one trace record. Simulated cycles are written as the
// trace-event "ts"/"dur" microsecond fields: 1 cycle renders as 1 µs,
// which keeps the viewer's timeline numerically equal to cycle counts.
type Event struct {
	Name string // static string at call sites (no formatting on hot path)
	Cat  string
	Ph   byte
	TS   uint64 // start cycle
	Dur  uint64 // duration in cycles (PhaseComplete only)
	TID  int32
	Arg  uint64 // one numeric payload (block address, count, ...)
}

// Tracer is a bounded ring of Events. The zero Tracer is unusable; use
// NewTracer. A nil *Tracer is the disabled state: every method on it is
// a cheap no-op.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	emitted uint64
	names   map[int32]string
}

// DefaultCapacity bounds the ring when the caller does not choose one
// (~256k events, tens of MB of JSON — comfortably within what the
// Perfetto UI loads).
const DefaultCapacity = 1 << 18

// NewTracer builds a tracer whose ring holds capacity events
// (DefaultCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]Event, capacity), names: make(map[int32]string)}
}

// Enabled reports whether the tracer is collecting (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// NameThread labels a tid lane in the viewer (setup-time only).
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.names[int32(tid)] = name
}

// Complete records a duration event spanning cycles start..end.
func (t *Tracer) Complete(cat, name string, tid int, start, end, arg uint64) {
	if t == nil {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	t.push(Event{Name: name, Cat: cat, Ph: PhaseComplete, TS: start, Dur: dur, TID: int32(tid), Arg: arg})
}

// Instant records a point event at cycle ts.
func (t *Tracer) Instant(cat, name string, tid int, ts, arg uint64) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ph: PhaseInstant, TS: ts, TID: int32(tid), Arg: arg})
}

func (t *Tracer) push(e Event) {
	t.ring[t.next] = e
	t.next++
	t.emitted++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
}

// Len reports how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Emitted reports how many events were ever emitted (retained or not).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Dropped reports how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted - uint64(t.Len())
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// jsonEvent is the trace-event wire form.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// document is the top-level JSON object Chrome/Perfetto load.
type document struct {
	TraceEvents []jsonEvent    `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteJSON serializes the retained events (plus thread-name metadata)
// as a Chrome trace-event JSON object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	evs := t.Events()
	doc := document{TraceEvents: make([]jsonEvent, 0, len(evs)+len(t.names))}
	tids := make([]int32, 0, len(t.names))
	for tid := range t.names {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		doc.TraceEvents = append(doc.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": t.names[tid]},
		})
	}
	for _, e := range evs {
		je := jsonEvent{
			Name: e.Name, Cat: e.Cat, Ph: string(rune(e.Ph)),
			TS: e.TS, PID: 0, TID: e.TID,
			Args: map[string]any{"v": e.Arg},
		}
		if e.Ph == PhaseComplete {
			d := e.Dur
			je.Dur = &d
		}
		if e.Ph == PhaseInstant {
			je.S = "t" // thread-scoped instant
		}
		doc.TraceEvents = append(doc.TraceEvents, je)
	}
	doc.OtherData = map[string]any{
		"emitted": t.Emitted(),
		"dropped": t.Dropped(),
		"units":   "1 trace microsecond = 1 simulated CPU cycle",
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("telemetry: writing %s: %w", path, werr)
	}
	return nil
}
