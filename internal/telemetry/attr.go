package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Attribution answers "where do simulated cycles and DRAM data-bus
// bytes go?" — the question the DBI paper's evaluation is built on
// (writeback bandwidth saved by aggressive writeback, lookup cycles
// avoided by cache-coarse DBI queries). Components charge simulated
// quantities to a fixed category enum; the ledger is a pair of plain
// arrays, so the hot path is an indexed add — no maps, no allocation,
// and a nil *Attribution makes every charge a predicted-not-taken
// branch (the same zero-cost-disabled contract as the Tracer).
//
// Categories are grouped into domains. A domain has a unit (cycles or
// bytes) and a closure rule:
//
//   - closed: the component owning the domain also charges a domain
//     total at the same call sites, and the category sum must equal
//     that total exactly. Reconcile enforces this; a new call site
//     that charges the total but not a category (or vice versa)
//     breaks the equation and fails the reconciliation tests.
//   - open: categories are independent terms with no meaningful total
//     (e.g. CPU issue cycles and window-stall cycles overlap other
//     activity); they are reported as-is.
//
// Because both charges happen at the same simulated instant, closed
// domains reconcile exactly within any observation window — including
// the warmup/measure split across the checkpoint-fork boundary.
type Attribution struct {
	v AttrValues
}

// Category indexes one attribution bucket. The enum is fixed at
// compile time so the ledger can be an array.
type Category uint8

// Cycle categories, then byte categories. NumCategories sizes the
// ledger arrays; keep it last.
const (
	// ACPUIssue: cycles the cores spend issuing instructions
	// (per-instruction cost, including gaps). Domain cpu (open).
	ACPUIssue Category = iota
	// ACPUWindowStall: cycles a core sits stalled on a full
	// instruction window waiting for loads. Domain cpu (open).
	ACPUWindowStall
	// ALLCTagProbe: LLC tag-port cycles serving demand read lookups.
	ALLCTagProbe
	// ALLCTagWriteback: LLC tag-port cycles serving writeback lookups.
	ALLCTagWriteback
	// ALLCTagFiller: LLC tag-port cycles consumed by background scans
	// (DBI eviction drains, proactive-writeback harvests, flush walks).
	ALLCTagFiller
	// ADBIProbe: cycles spent querying the DBI (CLB dirty checks and
	// DBI-walk flushes). Domain dbi (open: probes overlap tag work).
	ADBIProbe
	// ADRAMBankService: bank-busy cycles doing useful work (activates
	// on closed rows, column bursts).
	ADRAMBankService
	// ADRAMBankConflict: bank cycles lost to row-buffer conflicts
	// (precharge + re-activate on a conflicting open row).
	ADRAMBankConflict
	// ADRAMRefresh: bank cycles reserved for refresh operations.
	ADRAMRefresh

	// ABytesReadFill: data-bus bytes for reads that fill the LLC.
	ABytesReadFill
	// ABytesReadBypass: data-bus bytes for reads bypassing the LLC.
	ABytesReadBypass
	// ABytesWBDemand: bytes written back on demand (dirty victims).
	ABytesWBDemand
	// ABytesWBWriteThrough: bytes from bypassed (skip-cache) writes.
	ABytesWBWriteThrough
	// ABytesWBProactive: bytes from DAWB/VWQ proactive writebacks.
	ABytesWBProactive
	// ABytesWBAWBHarvest: bytes from DBI-guided aggressive-writeback
	// harvests of row-hit dirty blocks.
	ABytesWBAWBHarvest
	// ABytesDBIDrain: bytes drained by DBI entry evictions.
	ABytesDBIDrain
	// ABytesWBEager: bytes from the eager-writeback ablation scans.
	ABytesWBEager
	// ABytesWBFlush: bytes written back by whole-cache flushes.
	ABytesWBFlush
	// ABytesWBDMA: bytes written back by DMA coherence requests.
	ABytesWBDMA

	// NumCategories sizes the ledger; not a real category.
	NumCategories
)

// Domain groups categories that share a unit and a closure rule.
type Domain uint8

const (
	// DomCPU: core cycles (open — issue and stall phases overlap
	// memory-system activity and each other across cores).
	DomCPU Domain = iota
	// DomLLCPort: LLC tag-port busy cycles (closed — the port is the
	// single funnel; every Submit charges the total).
	DomLLCPort
	// DomDBI: DBI probe cycles (open — probes run off-port).
	DomDBI
	// DomDRAMBank: DRAM bank busy/reserved cycles (closed — the
	// controller charges the total when it occupies a bank).
	DomDRAMBank
	// DomDRAMBus: DRAM data-bus bytes (closed — the controller
	// charges one block per accepted read/write request).
	DomDRAMBus

	// NumDomains sizes the domain arrays; not a real domain.
	NumDomains
)

// catInfo names each category and assigns its domain. Indexed by
// Category; order must match the const block above.
var catInfo = [NumCategories]struct {
	name string
	dom  Domain
}{
	ACPUIssue:            {"cpu.issue", DomCPU},
	ACPUWindowStall:      {"cpu.window_stall", DomCPU},
	ALLCTagProbe:         {"llc.tag_probe", DomLLCPort},
	ALLCTagWriteback:     {"llc.tag_writeback", DomLLCPort},
	ALLCTagFiller:        {"llc.tag_filler", DomLLCPort},
	ADBIProbe:            {"dbi.probe", DomDBI},
	ADRAMBankService:     {"dram.bank_service", DomDRAMBank},
	ADRAMBankConflict:    {"dram.bank_conflict", DomDRAMBank},
	ADRAMRefresh:         {"dram.refresh", DomDRAMBank},
	ABytesReadFill:       {"mem.read_fill", DomDRAMBus},
	ABytesReadBypass:     {"mem.read_bypass", DomDRAMBus},
	ABytesWBDemand:       {"wb.demand", DomDRAMBus},
	ABytesWBWriteThrough: {"wb.write_through", DomDRAMBus},
	ABytesWBProactive:    {"wb.proactive", DomDRAMBus},
	ABytesWBAWBHarvest:   {"wb.awb_harvest", DomDRAMBus},
	ABytesDBIDrain:       {"dbi.drain", DomDRAMBus},
	ABytesWBEager:        {"wb.eager", DomDRAMBus},
	ABytesWBFlush:        {"wb.flush", DomDRAMBus},
	ABytesWBDMA:          {"wb.dma", DomDRAMBus},
}

// domInfo names each domain, gives its unit, and marks the closed
// ones (category sum must equal the domain total).
var domInfo = [NumDomains]struct {
	name   string
	unit   string
	closed bool
}{
	DomCPU:      {"cpu", "cycles", false},
	DomLLCPort:  {"llc_port", "cycles", true},
	DomDBI:      {"dbi", "cycles", false},
	DomDRAMBank: {"dram_bank", "cycles", true},
	DomDRAMBus:  {"dram_bus", "bytes", true},
}

// catByName is the reverse of catInfo, for reconciling deserialized
// windows (dbiscope reads names back from JSON).
var catByName = func() map[string]Category {
	m := make(map[string]Category, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		m[catInfo[c].name] = c
	}
	return m
}()

// domByName is the reverse of domInfo.
var domByName = func() map[string]Domain {
	m := make(map[string]Domain, NumDomains)
	for d := Domain(0); d < NumDomains; d++ {
		m[domInfo[d].name] = d
	}
	return m
}()

// String returns the category's dotted name.
func (c Category) String() string {
	if c < NumCategories {
		return catInfo[c].name
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Domain returns the domain the category belongs to.
func (c Category) Domain() Domain { return catInfo[c].dom }

// String returns the domain's name.
func (d Domain) String() string {
	if d < NumDomains {
		return domInfo[d].name
	}
	return fmt.Sprintf("Domain(%d)", uint8(d))
}

// Unit returns "cycles" or "bytes".
func (d Domain) Unit() string { return domInfo[d].unit }

// Closed reports whether the domain's category sum must equal its
// charged total.
func (d Domain) Closed() bool { return domInfo[d].closed }

// AttrValues is the raw ledger state: one counter per category plus
// one total per domain. It is a plain value type — arrays copy by
// assignment — so checkpoints carry it with a single struct copy.
type AttrValues struct {
	Cats [NumCategories]uint64
	Doms [NumDomains]uint64
}

// Sub returns the element-wise delta v - prev. Counters only grow
// between snapshots of the same run, so the subtraction cannot wrap.
func (v AttrValues) Sub(prev AttrValues) AttrValues {
	for i := range v.Cats {
		v.Cats[i] -= prev.Cats[i]
	}
	for i := range v.Doms {
		v.Doms[i] -= prev.Doms[i]
	}
	return v
}

// Charge adds n units to a category. Nil receivers are no-ops, so
// instrumented components charge unconditionally through a possibly
// nil pointer — the disabled path is one branch, zero allocation.
func (a *Attribution) Charge(c Category, n uint64) {
	if a == nil {
		return
	}
	a.v.Cats[c] += n
}

// ChargeDomain adds n units to a domain total. For closed domains the
// owning component calls this at the same call sites where callers
// charge categories, so the two sides reconcile exactly.
func (a *Attribution) ChargeDomain(d Domain, n uint64) {
	if a == nil {
		return
	}
	a.v.Doms[d] += n
}

// Reset zeroes the ledger (power-on state, used by System.Reset).
func (a *Attribution) Reset() {
	if a == nil {
		return
	}
	a.v = AttrValues{}
}

// Values returns a copy of the ledger state, for snapshots.
func (a *Attribution) Values() AttrValues {
	if a == nil {
		return AttrValues{}
	}
	return a.v
}

// SetValues overwrites the ledger state, for checkpoint restore.
func (a *Attribution) SetValues(v AttrValues) {
	if a == nil {
		return
	}
	a.v = v
}

// AttrWindow is one observation window of the ledger, serialized with
// category/domain names so result JSON is self-describing. Zero
// entries are omitted; Go marshals map keys sorted, so output is
// deterministic.
type AttrWindow struct {
	// Cycles is the simulated length of the window, the denominator
	// for cycle-domain percentages.
	Cycles     uint64            `json:"cycles"`
	Categories map[string]uint64 `json:"categories,omitempty"`
	Domains    map[string]uint64 `json:"domains,omitempty"`
}

// NewAttrWindow converts raw ledger values (typically a Sub delta)
// into a named window covering cycles simulated cycles.
func NewAttrWindow(v AttrValues, cycles uint64) AttrWindow {
	w := AttrWindow{Cycles: cycles}
	for c := Category(0); c < NumCategories; c++ {
		if n := v.Cats[c]; n != 0 {
			if w.Categories == nil {
				w.Categories = make(map[string]uint64)
			}
			w.Categories[catInfo[c].name] = n
		}
	}
	for d := Domain(0); d < NumDomains; d++ {
		if n := v.Doms[d]; n != 0 {
			if w.Domains == nil {
				w.Domains = make(map[string]uint64)
			}
			w.Domains[domInfo[d].name] = n
		}
	}
	return w
}

// Reconcile checks the window's closure rules: for every closed
// domain, the sum of its categories must equal the charged domain
// total. It also rejects unknown names, so a hand-edited or
// version-skewed file fails loudly rather than silently misreporting.
func (w AttrWindow) Reconcile() error {
	var sums [NumDomains]uint64
	for name, n := range w.Categories {
		c, ok := catByName[name]
		if !ok {
			return fmt.Errorf("attr: unknown category %q", name)
		}
		sums[catInfo[c].dom] += n
	}
	for name := range w.Domains {
		if _, ok := domByName[name]; !ok {
			return fmt.Errorf("attr: unknown domain %q", name)
		}
	}
	for d := Domain(0); d < NumDomains; d++ {
		if !domInfo[d].closed {
			continue
		}
		total := w.Domains[domInfo[d].name]
		if sums[d] != total {
			return fmt.Errorf("attr: domain %s does not reconcile: categories sum to %d %s, total charged %d",
				domInfo[d].name, sums[d], domInfo[d].unit, total)
		}
	}
	return nil
}

// AttrReport splits a run's attribution at the warmup/measure
// boundary. The split lands exactly where the checkpoint-fork
// scheduler forks, so a forked cell's measure window is bit-identical
// to a monolithic run's.
type AttrReport struct {
	Warmup  AttrWindow `json:"warmup"`
	Measure AttrWindow `json:"measure"`
}

// AttrAggregate accumulates measure-window attribution process-wide
// (across every cell of every sweep) for the live ops plane. Adds are
// per-cell, never on a simulated hot path.
type AttrAggregate struct {
	cats [NumCategories]atomic.Uint64
	doms [NumDomains]atomic.Uint64
}

// AttrTotals is the process-wide instance the system harvest folds
// measure windows into; the ops plane serves it at /metrics.
var AttrTotals AttrAggregate

// Add folds one window's raw values into the aggregate.
func (a *AttrAggregate) Add(v AttrValues) {
	for c := Category(0); c < NumCategories; c++ {
		if n := v.Cats[c]; n != 0 {
			a.cats[c].Add(n)
		}
	}
	for d := Domain(0); d < NumDomains; d++ {
		if n := v.Doms[d]; n != 0 {
			a.doms[d].Add(n)
		}
	}
}

// RegisterMetrics exposes the aggregate on a telemetry registry under
// attr.<category> / attr.domain.<domain> counter names.
func (a *AttrAggregate) RegisterMetrics(reg *Registry) {
	for c := Category(0); c < NumCategories; c++ {
		reg.Counter("attr."+catInfo[c].name, a.cats[c].Load)
	}
	for d := Domain(0); d < NumDomains; d++ {
		reg.Counter("attr.domain."+domInfo[d].name, a.doms[d].Load)
	}
}

// AttrCategoryInfo describes one category for offline consumers
// (dbiscope's report tables).
type AttrCategoryInfo struct {
	Name   string
	Domain string
}

// AttrDomainInfo describes one domain for offline consumers.
type AttrDomainInfo struct {
	Name   string
	Unit   string
	Closed bool
}

// AttrCategories returns category metadata in enum order.
func AttrCategories() []AttrCategoryInfo {
	out := make([]AttrCategoryInfo, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		out[c] = AttrCategoryInfo{Name: catInfo[c].name, Domain: domInfo[catInfo[c].dom].name}
	}
	return out
}

// AttrDomains returns domain metadata in enum order.
func AttrDomains() []AttrDomainInfo {
	out := make([]AttrDomainInfo, NumDomains)
	for d := Domain(0); d < NumDomains; d++ {
		out[d] = AttrDomainInfo{Name: domInfo[d].name, Unit: domInfo[d].unit, Closed: domInfo[d].closed}
	}
	return out
}
