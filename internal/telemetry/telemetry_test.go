package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dbisim/internal/stats"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var trc *Tracer
	if trc.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	trc.Complete("cat", "name", 1, 10, 20, 0)
	trc.Instant("cat", "name", 1, 10, 0)
	trc.NameThread(1, "x")
	if trc.Len() != 0 || trc.Emitted() != 0 || trc.Dropped() != 0 {
		t.Fatalf("nil tracer accumulated state: len=%d emitted=%d", trc.Len(), trc.Emitted())
	}
	if evs := trc.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		trc.Complete("dram", "read", 3, 100, 200, 42)
		trc.Instant("dbi", "entry_evict", TIDDBI, 100, 7)
	})
	if allocs != 0 {
		t.Errorf("nil tracer emit allocates %.1f per run, want 0", allocs)
	}
}

func TestTracerEmitDoesNotAllocate(t *testing.T) {
	trc := NewTracer(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		trc.Complete("dram", "read", 3, 100, 200, 42)
		trc.Instant("dbi", "entry_evict", TIDDBI, 100, 7)
	})
	if allocs != 0 {
		t.Errorf("enabled tracer emit allocates %.1f per run, want 0", allocs)
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	trc := NewTracer(4)
	for i := 0; i < 10; i++ {
		trc.Instant("c", "e", 0, uint64(i), uint64(i))
	}
	if trc.Len() != 4 {
		t.Fatalf("Len = %d, want 4", trc.Len())
	}
	if trc.Emitted() != 10 || trc.Dropped() != 6 {
		t.Fatalf("emitted=%d dropped=%d, want 10/6", trc.Emitted(), trc.Dropped())
	}
	evs := trc.Events()
	for i, e := range evs {
		if want := uint64(6 + i); e.TS != want {
			t.Errorf("event %d TS = %d, want %d (oldest-first order)", i, e.TS, want)
		}
	}
}

func TestTracerJSONIsChromeTraceFormat(t *testing.T) {
	trc := NewTracer(16)
	trc.NameThread(TIDLLC, "llc")
	trc.Complete("dram", "write", TIDBank(2), 50, 80, 99)
	trc.Instant("dbi", "entry_evict", TIDDBI, 60, 3)
	var buf bytes.Buffer
	if err := trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // metadata + 2 events
		t.Fatalf("traceEvents len = %d, want 3", len(doc.TraceEvents))
	}
	var sawX, sawI, sawM bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			sawX = true
			if e["dur"].(float64) != 30 {
				t.Errorf("complete event dur = %v, want 30", e["dur"])
			}
		case "i":
			sawI = true
		case "M":
			sawM = true
		}
	}
	if !sawX || !sawI || !sawM {
		t.Fatalf("missing phases: X=%v i=%v M=%v", sawX, sawI, sawM)
	}
}

func TestRegistryAndSamplerDeltasAndGauges(t *testing.T) {
	var c stats.Counter
	depth := 0
	reg := NewRegistry()
	reg.CounterStat("reads", &c)
	reg.Gauge("queue", func() float64 { return float64(depth) })

	smp := NewSampler(reg, 100)
	c.Add(5)
	depth = 3
	smp.Tick(100)
	c.Add(7)
	depth = 1
	smp.Tick(200)
	smp.Finish(200) // no-op: already sampled at 200
	smp.Finish(250) // tail partial epoch

	ts := smp.Series()
	if len(ts.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(ts.Samples))
	}
	if got := ts.Samples[0].Values; got[0] != 5 || got[1] != 3 {
		t.Errorf("epoch 1 = %v, want [5 3]", got)
	}
	if got := ts.Samples[1].Values; got[0] != 7 || got[1] != 1 {
		t.Errorf("epoch 2 = %v, want [7 1] (counter must be a delta)", got)
	}
	if got := ts.Samples[2].Values; got[0] != 0 {
		t.Errorf("tail epoch counter delta = %v, want 0", got[0])
	}
	if ts.Samples[2].Cycle != 250 {
		t.Errorf("tail cycle = %d, want 250", ts.Samples[2].Cycle)
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var reg *Registry
	var c stats.Counter
	reg.CounterStat("x", &c)
	reg.Gauge("y", func() float64 { return 0 })
	reg.Histogram("z", stats.NewHistogram(4))
	if n := reg.Names(); n != nil {
		t.Fatalf("nil registry has names %v", n)
	}
}

func TestSamplerHistogramSnapshots(t *testing.T) {
	h := stats.NewHistogram(4)
	reg := NewRegistry()
	reg.Histogram("dbi.dirty_at_eviction", h)
	smp := NewSampler(reg, 10)
	h.Observe(2)
	h.Observe(2)
	smp.Tick(10)
	h.Observe(4)
	smp.Tick(20)
	tracks := smp.Series().Histograms["dbi.dirty_at_eviction"]
	if len(tracks) != 2 {
		t.Fatalf("histogram snapshots = %d, want 2", len(tracks))
	}
	if tracks[0].Count != 2 || tracks[0].Buckets[2] != 2 {
		t.Errorf("snapshot 1 = %+v", tracks[0])
	}
	if tracks[1].Count != 3 || tracks[1].Buckets[4] != 1 {
		t.Errorf("snapshot 2 = %+v", tracks[1])
	}
	// Quantiles ride along precomputed: {2,2} → all quantiles at 2;
	// {2,2,4} → p50 stays 2, the tail quantiles move to 4.
	if tracks[0].P50 != 2 || tracks[0].P95 != 2 || tracks[0].P99 != 2 {
		t.Errorf("snapshot 1 quantiles = %+v, want p50=p95=p99=2", tracks[0])
	}
	if tracks[1].P50 != 2 || tracks[1].P95 != 4 || tracks[1].P99 != 4 {
		t.Errorf("snapshot 2 quantiles = %+v, want p50=2 p95=p99=4", tracks[1])
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	var c stats.Counter
	reg := NewRegistry()
	reg.CounterStat("a.b", &c)
	smp := NewSampler(reg, 10)
	c.Add(2)
	smp.Tick(10)
	c.Add(3)
	smp.Tick(20)
	var buf bytes.Buffer
	if err := smp.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "cycle,a.b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "20,3" {
		t.Errorf("row 2 = %q, want \"20,3\"", lines[2])
	}
}

func TestTimeSeriesJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var c stats.Counter
	reg.CounterStat("m", &c)
	smp := NewSampler(reg, 1000)
	c.Inc()
	smp.Tick(1000)
	var buf bytes.Buffer
	if err := smp.Series().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got TimeSeries
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.EpochCycles != 1000 || len(got.Metrics) != 1 || len(got.Samples) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}
