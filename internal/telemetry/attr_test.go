package telemetry

import (
	"encoding/json"
	"testing"
)

func TestAttrNilReceiverIsNoOp(t *testing.T) {
	var a *Attribution
	a.Charge(ACPUIssue, 10)
	a.ChargeDomain(DomDRAMBus, 64)
	a.Reset()
	a.SetValues(AttrValues{})
	if v := a.Values(); v != (AttrValues{}) {
		t.Fatalf("nil Attribution returned nonzero values: %+v", v)
	}
}

func TestAttrNilChargeAllocs(t *testing.T) {
	var a *Attribution
	if n := testing.AllocsPerRun(100, func() {
		a.Charge(ALLCTagProbe, 3)
		a.ChargeDomain(DomLLCPort, 3)
	}); n != 0 {
		t.Fatalf("nil charge allocates %v per run", n)
	}
	b := &Attribution{}
	if n := testing.AllocsPerRun(100, func() {
		b.Charge(ALLCTagProbe, 3)
		b.ChargeDomain(DomLLCPort, 3)
	}); n != 0 {
		t.Fatalf("enabled charge allocates %v per run", n)
	}
}

func TestAttrChargeAndValues(t *testing.T) {
	a := &Attribution{}
	a.Charge(ADRAMBankService, 5)
	a.Charge(ADRAMBankService, 7)
	a.ChargeDomain(DomDRAMBank, 12)
	v := a.Values()
	if v.Cats[ADRAMBankService] != 12 || v.Doms[DomDRAMBank] != 12 {
		t.Fatalf("values = %+v", v)
	}
	a.Reset()
	if a.Values() != (AttrValues{}) {
		t.Fatal("Reset did not zero the ledger")
	}
	a.SetValues(v)
	if a.Values() != v {
		t.Fatal("SetValues round trip failed")
	}
}

func TestAttrValuesSub(t *testing.T) {
	var base, cur AttrValues
	base.Cats[ABytesWBDemand] = 64
	base.Doms[DomDRAMBus] = 64
	cur.Cats[ABytesWBDemand] = 192
	cur.Doms[DomDRAMBus] = 192
	d := cur.Sub(base)
	if d.Cats[ABytesWBDemand] != 128 || d.Doms[DomDRAMBus] != 128 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestAttrCategoryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		name := c.String()
		if name == "" || seen[name] {
			t.Fatalf("category %d has empty or duplicate name %q", c, name)
		}
		seen[name] = true
		if c.Domain() >= NumDomains {
			t.Fatalf("category %s has invalid domain", name)
		}
	}
	if got := ABytesWBAWBHarvest.String(); got != "wb.awb_harvest" {
		t.Fatalf("name = %q", got)
	}
	if ALLCTagProbe.Domain() != DomLLCPort || !DomLLCPort.Closed() {
		t.Fatal("llc.tag_probe must live in the closed llc_port domain")
	}
	if DomDRAMBus.Unit() != "bytes" || DomCPU.Unit() != "cycles" {
		t.Fatal("domain units wrong")
	}
	if DomCPU.Closed() || DomDBI.Closed() {
		t.Fatal("cpu and dbi domains must be open")
	}
}

func TestAttrWindowRoundTripAndReconcile(t *testing.T) {
	a := &Attribution{}
	a.Charge(ALLCTagProbe, 40)
	a.Charge(ALLCTagFiller, 8)
	a.ChargeDomain(DomLLCPort, 48)
	a.Charge(ABytesReadFill, 128)
	a.ChargeDomain(DomDRAMBus, 128)
	a.Charge(ACPUIssue, 1000) // open domain: no total needed

	w := NewAttrWindow(a.Values(), 5000)
	if err := w.Reconcile(); err != nil {
		t.Fatalf("consistent window failed reconcile: %v", err)
	}
	if w.Categories["llc.tag_probe"] != 40 || w.Domains["llc_port"] != 48 {
		t.Fatalf("window = %+v", w)
	}
	if _, ok := w.Categories["llc.tag_writeback"]; ok {
		t.Fatal("zero category not omitted")
	}

	// JSON round trip preserves reconcilability.
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back AttrWindow
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Reconcile(); err != nil {
		t.Fatalf("round-tripped window failed reconcile: %v", err)
	}

	// An uncharged call site (category without total) must fail.
	a.Charge(ALLCTagWriteback, 1)
	if err := NewAttrWindow(a.Values(), 5000).Reconcile(); err == nil {
		t.Fatal("unbalanced closed domain passed reconcile")
	}
}

func TestAttrWindowReconcileRejectsUnknownNames(t *testing.T) {
	w := AttrWindow{Categories: map[string]uint64{"bogus.cat": 1}}
	if err := w.Reconcile(); err == nil {
		t.Fatal("unknown category accepted")
	}
	w = AttrWindow{Domains: map[string]uint64{"bogus_dom": 1}}
	if err := w.Reconcile(); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestAttrAggregate(t *testing.T) {
	var agg AttrAggregate
	var v AttrValues
	v.Cats[ADBIProbe] = 9
	v.Doms[DomDBI] = 9
	agg.Add(v)
	agg.Add(v)

	reg := NewRegistry()
	agg.RegisterMetrics(reg)
	got := map[string]uint64{}
	reg.EachScalar(func(name, kind string, val float64) {
		if kind != KindCounter {
			t.Fatalf("%s registered as %v, want counter", name, kind)
		}
		got[name] = uint64(val)
	})
	if got["attr.dbi.probe"] != 18 || got["attr.domain.dbi"] != 18 {
		t.Fatalf("aggregate counters = %v", got)
	}
	// Every category and domain family must be present even at zero.
	if len(got) < int(NumCategories)+int(NumDomains) {
		t.Fatalf("registered %d families, want %d", len(got), int(NumCategories)+int(NumDomains))
	}
}

func TestAttrMetadataExports(t *testing.T) {
	cats := AttrCategories()
	if len(cats) != int(NumCategories) {
		t.Fatalf("categories = %d", len(cats))
	}
	doms := AttrDomains()
	if len(doms) != int(NumDomains) {
		t.Fatalf("domains = %d", len(doms))
	}
	domSet := map[string]bool{}
	for _, d := range doms {
		domSet[d.Name] = true
	}
	for _, c := range cats {
		if !domSet[c.Domain] {
			t.Fatalf("category %s names unknown domain %s", c.Name, c.Domain)
		}
	}
}
