// Package cpu models the out-of-order cores of Table 1: single-issue,
// 128-entry instruction window, with private L1 and L2 caches in front of
// the shared LLC.
//
// The core is trace-driven. It issues one instruction per cycle; loads
// proceed through the hierarchy asynchronously and many may be in flight
// at once (memory-level parallelism), but issue stalls when the
// instruction window fills behind an incomplete oldest load — the way
// out-of-order cores actually lose performance to memory latency. Stores
// retire through a store buffer and never stall the window; they generate
// the writeback traffic that ultimately reaches the LLC and the DBI.
package cpu

import (
	"fmt"

	"dbisim/internal/addr"
	"dbisim/internal/cache"
	"dbisim/internal/config"
	"dbisim/internal/event"
	"dbisim/internal/llc"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
	"dbisim/internal/trace"
)

// Stats counts per-core activity.
type Stats struct {
	Instructions stats.Counter // issued (≈ retired) instructions
	Loads        stats.Counter
	Stores       stats.Counter
	L1Hits       stats.Counter
	L2Hits       stats.Counter
	LLCAccesses  stats.Counter // demand reads that reached the LLC
	WindowStalls stats.Counter // stall episodes on a full window
}

// Core is one simulated core plus its private cache levels.
type Core struct {
	Eng *event.Engine
	ID  int

	// Trc, when non-nil, receives the core's request-lifecycle spans
	// (issue → LLC → fill) on the core's own trace lane.
	Trc *telemetry.Tracer

	// Attr, when non-nil, receives the core's cycle attribution:
	// cpu.issue for per-instruction cost and cpu.window_stall for
	// full-window stall episodes (charged on resume, so a stall
	// spanning the warmup→measure boundary lands in the window where
	// it ends).
	Attr *telemetry.Attribution

	gen trace.Generator
	l1  *cache.Cache
	l2  *cache.Cache
	llc *llc.LLC

	geo           addr.Geometry
	window        int
	l1Latency     event.Cycle
	l2Latency     event.Cycle
	issued        uint64 // instruction issue counter (sequence numbers)
	issuedAtStart uint64
	inflight      []*loadSlot
	stalled       bool
	stallAt       event.Cycle  // cycle the current stall episode began
	deferred      trace.Record // record waiting on a full window
	stopped       bool

	// outstanding merges concurrent shared-level fetches to the same
	// block (the private-level MSHRs). Requests are pooled records with
	// prebound completion callbacks and recycled waiter slices, so a
	// miss costs no allocation in steady state.
	outstanding map[addr.BlockAddr]*sharedReq
	sharedFree  *sharedReq
	swFree      [][]sharedWaiter

	// Budget: the core calls onDone once after issuing budget
	// instructions; it keeps running afterwards to preserve contention.
	budget uint64
	onDone func()
	done   bool

	// Measurement window markers, set by Start.
	startCycle event.Cycle
	doneCycle  event.Cycle

	// Prebound callbacks and the load-slot free list keep the per-
	// instruction issue loop allocation-free: the advance event after
	// every instruction and the completion callback of every load reuse
	// the same function values instead of capturing loop state.
	// slotAll/sharedAll register every pooled record ever allocated so a
	// checkpoint can enumerate the pools by index.
	stepFn    event.Func
	advanceFn event.Func
	slotFree  *loadSlot
	slotAll   []*loadSlot
	sharedAll []*sharedReq

	Stat Stats
}

type loadSlot struct {
	id   int32 // position in slotAll
	seq  uint64
	done bool
	live bool // scratch flag used by Restore's free-list rebuild
	next *loadSlot
	fn   event.Func // bound once: marks the slot done and resumes issue
}

// sharedWaiter is one request parked on an outstanding shared-level
// fetch: on fill it installs the block in L2 then L1 (dirty for
// stores), then signals the waiting load slot (done is nil for stores).
type sharedWaiter struct {
	dirty bool
	done  func()
}

// sharedReq is a pooled outstanding shared-level fetch; fn is bound
// once at allocation so a miss schedules no new closure.
type sharedReq struct {
	id      int32 // position in sharedAll
	live    bool  // scratch flag used by Restore's free-list rebuild
	b       addr.BlockAddr
	start   event.Cycle
	waiters []sharedWaiter
	fn      event.Func
	next    *sharedReq
}

// New builds a core with fresh private caches.
func New(eng *event.Engine, id int, cfg config.SystemConfig, gen trace.Generator, shared *llc.LLC, seed int64) (*Core, error) {
	l1, err := cache.New(cfg.L1, 1, seed)
	if err != nil {
		return nil, fmt.Errorf("cpu: L1: %w", err)
	}
	l2, err := cache.New(cfg.L2, 1, seed+1)
	if err != nil {
		return nil, fmt.Errorf("cpu: L2: %w", err)
	}
	c := &Core{
		Eng:         eng,
		ID:          id,
		gen:         gen,
		l1:          l1,
		l2:          l2,
		llc:         shared,
		geo:         addr.Default(),
		window:      cfg.Core.WindowSize,
		l1Latency:   event.Cycle(cfg.L1.AccessLatency()),
		l2Latency:   event.Cycle(cfg.L1.AccessLatency() + cfg.L2.AccessLatency()),
		outstanding: make(map[addr.BlockAddr]*sharedReq),
	}
	c.stepFn = c.step
	c.advanceFn = func() {
		if !c.stalled {
			c.step()
		}
	}
	return c, nil
}

// getSlot takes a load slot from the free list, allocating (and binding
// its completion callback) only on first use.
func (c *Core) getSlot() *loadSlot {
	s := c.slotFree
	if s == nil {
		s = &loadSlot{id: int32(len(c.slotAll))}
		s.fn = func() {
			s.done = true
			c.resume()
		}
		c.slotAll = append(c.slotAll, s)
	} else {
		c.slotFree = s.next
	}
	s.next = nil
	s.done = false
	return s
}

func (c *Core) putSlot(s *loadSlot) {
	s.next = c.slotFree
	c.slotFree = s
}

// getShared takes a shared-fetch record from the free list, binding its
// completion callback only on first allocation and reusing a recycled
// waiter slice when one is available.
func (c *Core) getShared(b addr.BlockAddr) *sharedReq {
	r := c.sharedFree
	if r == nil {
		r = &sharedReq{id: int32(len(c.sharedAll))}
		r.fn = func() { c.completeShared(r) }
		c.sharedAll = append(c.sharedAll, r)
	} else {
		c.sharedFree = r.next
	}
	r.next = nil
	r.b = b
	if n := len(c.swFree); n > 0 {
		r.waiters = c.swFree[n-1]
		c.swFree = c.swFree[:n-1]
	}
	return r
}

// putShared detaches and recycles a record's waiter slice (dropping the
// closure references it holds) and returns the record to the free list.
func (c *Core) putShared(r *sharedReq) {
	if r.waiters != nil {
		for i := range r.waiters {
			r.waiters[i] = sharedWaiter{}
		}
		c.swFree = append(c.swFree, r.waiters[:0])
		r.waiters = nil
	}
	r.next = c.sharedFree
	c.sharedFree = r
}

// Start begins execution: the core will call onDone once after issuing
// budget instructions, then keep running (to preserve contention for
// other cores) until Stop.
func (c *Core) Start(budget uint64, onDone func()) {
	c.Rebudget(budget, onDone)
	c.Eng.After(1, c.stepFn)
}

// Rebudget opens a new measurement window without restarting the issue
// pipeline — the warmup→measure transition. The next budget instructions
// are timed from now.
func (c *Core) Rebudget(budget uint64, onDone func()) {
	c.budget = budget
	c.onDone = onDone
	c.done = false
	c.startCycle = c.Eng.Now()
	c.issuedAtStart = c.issued
}

// ResumeMeasure re-arms the budget of a core restored from a checkpoint
// taken at the warmup→measure boundary. Unlike Rebudget it leaves the
// measurement-window markers (startCycle, issuedAtStart) alone: those
// were pinned at each core's own warmup completion and travel with the
// checkpoint, so a forked measurement is timed from the same instant a
// scratch run would be.
func (c *Core) ResumeMeasure(budget uint64, onDone func()) {
	c.budget = budget
	c.onDone = onDone
	c.done = false
}

// MeasuredSince returns the instructions issued since the current
// measurement window opened.
func (c *Core) MeasuredSince() uint64 { return c.issued - c.issuedAtStart }

// Stop halts the core after its current event.
func (c *Core) Stop() { c.stopped = true }

// Reset returns the core and its private caches to power-on state with
// fresh replacement seeds (the same derivation New uses: L1 gets seed,
// L2 seed+1). The caller must reset the engine first so no stale advance
// or load-completion event can fire into the new run, and must reset the
// core's trace generator separately (the core does not own it).
func (c *Core) Reset(seed int64) {
	c.l1.Reset(seed)
	c.l2.Reset(seed + 1)
	c.issued, c.issuedAtStart = 0, 0
	for _, s := range c.inflight {
		c.putSlot(s)
	}
	c.inflight = c.inflight[:0]
	c.stalled = false
	c.stallAt = 0
	c.deferred = trace.Record{}
	c.stopped = false
	for _, r := range c.outstanding {
		c.putShared(r)
	}
	clear(c.outstanding)
	c.budget, c.onDone, c.done = 0, nil, false
	c.startCycle, c.doneCycle = 0, 0
	c.Stat = Stats{}
}

// Done reports whether the budget has been reached.
func (c *Core) Done() bool { return c.done }

// Issued returns the total instructions issued since construction.
func (c *Core) Issued() uint64 { return c.issued }

// Cycles returns the cycles the core took to issue its budget
// (valid after Done).
func (c *Core) Cycles() uint64 { return uint64(c.doneCycle - c.startCycle) }

// IPC returns budget/cycles for the measured window (valid after Done).
func (c *Core) IPC() float64 {
	if c.doneCycle <= c.startCycle {
		return 0
	}
	return float64(c.budget) / float64(c.doneCycle-c.startCycle)
}

// RegisterMetrics adds the core's probes to a telemetry registry under
// a "cpuN." prefix.
func (c *Core) RegisterMetrics(reg *telemetry.Registry) {
	p := fmt.Sprintf("cpu%d.", c.ID)
	reg.CounterStat(p+"instructions", &c.Stat.Instructions)
	reg.CounterStat(p+"loads", &c.Stat.Loads)
	reg.CounterStat(p+"stores", &c.Stat.Stores)
	reg.CounterStat(p+"l1_hits", &c.Stat.L1Hits)
	reg.CounterStat(p+"l2_hits", &c.Stat.L2Hits)
	reg.CounterStat(p+"llc_accesses", &c.Stat.LLCAccesses)
	reg.CounterStat(p+"window_stalls", &c.Stat.WindowStalls)
	reg.Gauge(p+"inflight_loads", func() float64 { return float64(len(c.inflight)) })
}

// L1 exposes the private L1 (tests, diagnostics).
func (c *Core) L1() *cache.Cache { return c.l1 }

// L2 exposes the private L2.
func (c *Core) L2() *cache.Cache { return c.l2 }

// step issues the next trace record.
func (c *Core) step() {
	if c.stopped {
		return
	}
	// The budget completes here, after the issued instructions' cycles
	// have elapsed, so IPC never exceeds the issue width.
	if !c.done && c.budget > 0 && c.issued-c.issuedAtStart >= c.budget {
		c.done = true
		c.doneCycle = c.Eng.Now()
		if c.onDone != nil {
			c.onDone()
		}
		if c.stopped {
			return
		}
	}
	rec := c.gen.Next()
	cost := uint64(rec.Gap) + 1

	// Window check: we may not issue past the oldest incomplete load by
	// more than the window size.
	c.reapLoads()
	if c.windowFull(cost) {
		// Stall until enough older loads complete; every load completion
		// re-checks via resume. WindowStalls counts stall episodes.
		c.stalled = true
		c.stallAt = c.Eng.Now()
		c.Stat.WindowStalls.Inc()
		c.deferred = rec
		return
	}
	c.issue(rec, cost)
}

// windowFull reports whether issuing cost more instructions would move
// issue further than the window allows past the oldest incomplete load.
func (c *Core) windowFull(cost uint64) bool {
	return len(c.inflight) > 0 && c.issued+cost-c.inflight[0].seq > uint64(c.window)
}

// resume re-checks the window after a load completion and restarts issue
// if the stalled record now fits.
func (c *Core) resume() {
	if !c.stalled || c.stopped {
		return
	}
	c.reapLoads()
	cost := uint64(c.deferred.Gap) + 1
	if c.windowFull(cost) {
		return
	}
	c.stalled = false
	c.Attr.Charge(telemetry.ACPUWindowStall, uint64(c.Eng.Now()-c.stallAt))
	c.issue(c.deferred, cost)
}

func (c *Core) issue(rec trace.Record, cost uint64) {
	c.issued += cost
	c.Stat.Instructions.Add(cost)
	c.Attr.Charge(telemetry.ACPUIssue, cost)
	b := c.geo.BlockOf(rec.Addr)
	if rec.Kind == trace.Load {
		c.Stat.Loads.Inc()
		slot := c.getSlot()
		slot.seq = c.issued
		c.inflight = append(c.inflight, slot)
		c.load(b, slot.fn)
	} else {
		c.Stat.Stores.Inc()
		c.store(b)
	}
	c.Eng.After(event.Cycle(cost), c.advanceFn)
}

// reapLoads drops completed loads from the head of the window, returning
// their slots to the free list (safe: a done slot's callback has fired).
func (c *Core) reapLoads() {
	i := 0
	for i < len(c.inflight) && c.inflight[i].done {
		c.putSlot(c.inflight[i])
		i++
	}
	if i > 0 {
		c.inflight = append(c.inflight[:0], c.inflight[i:]...)
	}
}

// load walks the hierarchy; done fires when data is available.
func (c *Core) load(b addr.BlockAddr, done func()) {
	if c.l1.Access(b, 0) {
		c.Stat.L1Hits.Inc()
		c.Eng.After(c.l1Latency, done)
		return
	}
	if c.l2.Access(b, 0) {
		c.Stat.L2Hits.Inc()
		c.fillL1(b, false)
		c.Eng.After(c.l2Latency, done)
		return
	}
	c.fetchShared(b, false, done)
}

// store performs a write-allocate store; it never blocks the window.
func (c *Core) store(b addr.BlockAddr) {
	if c.l1.Access(b, 0) {
		c.Stat.L1Hits.Inc()
		c.l1.SetDirty(b, true)
		return
	}
	if c.l2.Access(b, 0) {
		c.Stat.L2Hits.Inc()
		c.fillL1(b, true)
		return
	}
	// Read-for-ownership fetch, then install dirty in L1.
	c.fetchShared(b, true, nil)
}

// fetchShared reads a block from the LLC, merging concurrent requests to
// the same block (the private-level MSHRs). Every waiter — including the
// originator — fills L2 then L1 on completion, in registration order.
func (c *Core) fetchShared(b addr.BlockAddr, dirty bool, done func()) {
	if r, ok := c.outstanding[b]; ok {
		r.waiters = append(r.waiters, sharedWaiter{dirty, done})
		return
	}
	r := c.getShared(b)
	r.waiters = append(r.waiters, sharedWaiter{dirty, done})
	c.outstanding[b] = r
	c.Stat.LLCAccesses.Inc()
	r.start = c.Eng.Now()
	c.llc.Read(b, c.ID, r.fn)
}

// completeShared finishes an outstanding fetch: it recycles the record
// before running the waiters (a waiter may issue a new miss and reuse
// it), holding the detached waiter slice until the loop is done.
func (c *Core) completeShared(r *sharedReq) {
	b, start, ws := r.b, r.start, r.waiters
	r.waiters = nil
	r.next = c.sharedFree
	c.sharedFree = r
	// The whole shared-level journey: LLC lookup (or bypass), DRAM
	// queueing, bank service, fill — one span per missed block.
	c.Trc.Complete("cpu", "llc_read", c.ID, uint64(start), uint64(c.Eng.Now()), uint64(b))
	delete(c.outstanding, b)
	for i := range ws {
		c.fillL2(b)
		c.fillL1(b, ws[i].dirty)
		if ws[i].done != nil {
			ws[i].done()
		}
	}
	for i := range ws {
		ws[i] = sharedWaiter{}
	}
	c.swFree = append(c.swFree, ws[:0])
}

// fillL1 installs a block in L1, cascading a dirty victim into L2.
func (c *Core) fillL1(b addr.BlockAddr, dirty bool) {
	if dirty {
		// Ensure the dirty bit lands even if the block is resident.
		if c.l1.Contains(b) {
			c.l1.SetDirty(b, true)
			return
		}
	}
	victim := c.l1.Insert(b, 0, dirty)
	if victim.Valid && victim.Dirty {
		c.writebackToL2(victim.Addr)
	}
}

// fillL2 installs a block in L2, cascading a dirty victim to the LLC.
func (c *Core) fillL2(b addr.BlockAddr) {
	victim := c.l2.Insert(b, 0, false)
	if victim.Valid && victim.Dirty {
		c.llc.Writeback(victim.Addr, c.ID)
	}
}

// writebackToL2 delivers an L1 dirty eviction to L2.
func (c *Core) writebackToL2(b addr.BlockAddr) {
	if c.l2.Contains(b) {
		c.l2.SetDirty(b, true)
		return
	}
	victim := c.l2.Insert(b, 0, true)
	if victim.Valid && victim.Dirty {
		c.llc.Writeback(victim.Addr, c.ID)
	}
}
