package cpu

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
	"dbisim/internal/llc"
	"dbisim/internal/trace"
)

// countMem implements llc-visible memory with fixed latency.
type countMem struct {
	eng    *event.Engine
	reads  int
	writes int
}

func (m *countMem) Read(b addr.BlockAddr, done func()) {
	m.reads++
	m.eng.After(100, done)
}
func (m *countMem) Write(b addr.BlockAddr) { m.writes++ }

func buildCore(t *testing.T, gen trace.Generator) (*event.Engine, *Core, *countMem) {
	t.Helper()
	var eng event.Engine
	cfg := config.Scaled(1, config.TADIP)
	mem := &countMem{eng: &eng}
	shared, err := llc.New(&eng, addr.Default(), llc.Config{
		Cores: 1, Sys: cfg, Mem: mem, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	core, err := New(&eng, 0, cfg, gen, shared, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &eng, core, mem
}

// loopTrace builds a looping record list.
func loopTrace(recs []trace.Record) trace.Generator {
	return trace.NewLooping("test", recs)
}

func TestCoreRetiresBudget(t *testing.T) {
	// Pure non-memory-ish stream: large gaps, one load per record to the
	// same block (L1 hits after the first).
	gen := loopTrace([]trace.Record{{Gap: 9, Kind: trace.Load, Addr: 0}})
	eng, core, _ := buildCore(t, gen)
	done := false
	core.Start(1000, func() { done = true; eng.Stop() })
	eng.Run()
	if !done {
		t.Fatal("budget never reached")
	}
	if core.Stat.Instructions.Value() < 1000 {
		t.Fatalf("instructions = %d", core.Stat.Instructions.Value())
	}
	if !core.Done() {
		t.Fatal("Done() false")
	}
	if core.IPC() <= 0 || core.IPC() > 1 {
		t.Fatalf("IPC = %v", core.IPC())
	}
}

func TestL1HitFastPath(t *testing.T) {
	gen := loopTrace([]trace.Record{{Gap: 0, Kind: trace.Load, Addr: 64}})
	eng, core, mem := buildCore(t, gen)
	core.Start(200, func() { eng.Stop() })
	eng.Run()
	if mem.reads != 1 {
		t.Fatalf("memory reads = %d, want 1 (first touch only)", mem.reads)
	}
	if core.Stat.L1Hits.Value() == 0 {
		t.Fatal("no L1 hits on repeated block")
	}
}

func TestStoresProduceWritebacks(t *testing.T) {
	// Stream stores over many distinct blocks; dirty lines must cascade
	// L1 -> L2 -> LLC -> memory writes eventually.
	var recs []trace.Record
	for i := 0; i < 4096; i++ {
		recs = append(recs, trace.Record{Gap: 0, Kind: trace.Store, Addr: addr.Addr(i * 64)})
	}
	gen := loopTrace(recs)
	eng, core, _ := buildCore(t, gen)
	core.Start(uint64(len(recs)), func() { eng.Stop() })
	eng.Run()
	if core.Stat.Stores.Value() == 0 {
		t.Fatal("no stores issued")
	}
	// L1 is 16KB = 256 blocks: storing 4096 distinct blocks must evict
	// dirty L1 lines into L2.
	if core.L2().CountValid() == 0 {
		t.Fatal("no blocks reached L2")
	}
}

func TestWindowLimitsOutstandingLoads(t *testing.T) {
	// Back-to-back loads to distinct cold blocks: every load misses to
	// memory (100+ cycles). The 128-entry window must stall issue rather
	// than race ahead.
	var recs []trace.Record
	for i := 0; i < 10000; i++ {
		recs = append(recs, trace.Record{Gap: 0, Kind: trace.Load, Addr: addr.Addr(1<<30*uint64(i%2)*64 + uint64(i)*64)})
	}
	gen := loopTrace(recs)
	eng, core, _ := buildCore(t, gen)
	core.Start(2000, func() { eng.Stop() })
	eng.Run()
	if core.Stat.WindowStalls.Value() == 0 {
		t.Fatal("no window stalls under a miss storm")
	}
	if core.IPC() >= 1 {
		t.Fatalf("IPC = %v under a miss storm", core.IPC())
	}
}

func TestMSHRMergesDuplicateLoads(t *testing.T) {
	// Two loads to the same cold block in flight together: one memory
	// read.
	recs := []trace.Record{
		{Gap: 0, Kind: trace.Load, Addr: 4096},
		{Gap: 0, Kind: trace.Load, Addr: 4096},
		{Gap: 50, Kind: trace.Load, Addr: 8192},
	}
	gen := loopTrace(recs)
	eng, core, mem := buildCore(t, gen)
	core.Start(3, func() { eng.Stop() })
	eng.Run()
	if mem.reads > 2 {
		t.Fatalf("memory reads = %d, want <= 2 (merged)", mem.reads)
	}
	_ = core
}

func TestRebudgetMeasuresWindow(t *testing.T) {
	gen := loopTrace([]trace.Record{{Gap: 4, Kind: trace.Load, Addr: 64}})
	eng, core, _ := buildCore(t, gen)
	phase := 0
	core.Start(500, func() {
		phase = 1
		core.Rebudget(500, func() {
			phase = 2
			eng.Stop()
		})
	})
	eng.Run()
	if phase != 2 {
		t.Fatalf("phase = %d", phase)
	}
	if core.Cycles() == 0 {
		t.Fatal("no cycles measured in second window")
	}
	// The second window measures only its own instructions.
	if core.IPC() <= 0 || core.IPC() > 1 {
		t.Fatalf("IPC = %v", core.IPC())
	}
}

func TestStopHaltsCore(t *testing.T) {
	gen := loopTrace([]trace.Record{{Gap: 0, Kind: trace.Load, Addr: 64}})
	eng, core, _ := buildCore(t, gen)
	core.Start(100, func() { core.Stop() })
	eng.Run()
	issued := core.Issued()
	if issued < 100 {
		t.Fatalf("issued = %d", issued)
	}
	// After Stop the engine must drain: no infinite event chain.
	if eng.Pending() != 0 {
		t.Fatalf("pending events after stop: %d", eng.Pending())
	}
}
