package cpu

import (
	"dbisim/internal/addr"
	"dbisim/internal/cache"
	"dbisim/internal/event"
	"dbisim/internal/trace"
)

// slotState records one in-flight load by its position in the core's
// slot registry: the pooled record itself stays put (a pending L1/L2
// completion event may hold its prebound callback), only its contents
// are saved and written back.
type slotState struct {
	id   int32
	seq  uint64
	done bool
}

// sharedState records one outstanding shared-level fetch, waiter list
// included. Waiter callbacks are either a registered slot's prebound fn
// or nil (stores), so copying the func values is safe: they reference
// pooled records that survive in place across Restore.
type sharedState struct {
	id      int32
	b       addr.BlockAddr
	start   event.Cycle
	waiters []sharedWaiter
}

// State is a checkpoint of a Core: both private cache levels, the issue
// pipeline (window, stall, deferred record), the in-flight load window
// in order, the outstanding shared-fetch table, budget state and
// statistics. The zero value is ready; buffers are reused across
// captures.
type State struct {
	l1, l2 cache.CacheState

	issued        uint64
	issuedAtStart uint64
	stalled       bool
	stallAt       event.Cycle
	deferred      trace.Record
	stopped       bool

	inflight []slotState
	shared   []sharedState

	budget     uint64
	done       bool
	startCycle event.Cycle
	doneCycle  event.Cycle

	stat Stats
}

// Snapshot captures the core into st. The budget callback (onDone) is
// deliberately not saved: a checkpoint is taken at a quiescent point
// (the warmup→measure boundary) and the forked run installs its own via
// ResumeMeasure.
func (c *Core) Snapshot(st *State) {
	c.l1.Snapshot(&st.l1)
	c.l2.Snapshot(&st.l2)
	st.issued = c.issued
	st.issuedAtStart = c.issuedAtStart
	st.stalled = c.stalled
	st.stallAt = c.stallAt
	st.deferred = c.deferred
	st.stopped = c.stopped

	st.inflight = st.inflight[:0]
	for _, s := range c.inflight {
		st.inflight = append(st.inflight, slotState{s.id, s.seq, s.done})
	}
	st.shared = st.shared[:0]
	for _, r := range c.outstanding {
		i := len(st.shared)
		st.shared = append(st.shared, sharedState{id: r.id, b: r.b, start: r.start})
		st.shared[i].waiters = append(st.shared[i].waiters, r.waiters...)
	}

	st.budget = c.budget
	st.done = c.done
	st.startCycle = c.startCycle
	st.doneCycle = c.doneCycle
	st.stat = c.Stat
}

// Restore writes st back into the core that produced it (the pooled
// records referenced by id live in this core's registries). The free
// lists are rebuilt from the registries in registry order, which may
// differ from the captured lists' order — harmless, because records are
// fully re-initialized on allocation.
func (c *Core) Restore(st *State) {
	c.l1.Restore(&st.l1)
	c.l2.Restore(&st.l2)
	c.issued = st.issued
	c.issuedAtStart = st.issuedAtStart
	c.stalled = st.stalled
	c.stallAt = st.stallAt
	c.deferred = st.deferred
	c.stopped = st.stopped

	for _, s := range c.slotAll {
		s.live = false
	}
	c.inflight = c.inflight[:0]
	for _, ss := range st.inflight {
		s := c.slotAll[ss.id]
		s.live = true
		s.seq, s.done = ss.seq, ss.done
		c.inflight = append(c.inflight, s)
	}
	c.slotFree = nil
	for i := len(c.slotAll) - 1; i >= 0; i-- {
		if s := c.slotAll[i]; !s.live {
			s.next = c.slotFree
			c.slotFree = s
		} else {
			s.next = nil
		}
	}

	// Recycle every waiter slice first, then hand them back to the live
	// records, so restore allocates only when the snapshot holds more
	// concurrently-outstanding fetches than this core ever had.
	for _, r := range c.sharedAll {
		r.live = false
		if r.waiters != nil {
			for i := range r.waiters {
				r.waiters[i] = sharedWaiter{}
			}
			c.swFree = append(c.swFree, r.waiters[:0])
			r.waiters = nil
		}
	}
	clear(c.outstanding)
	for _, rs := range st.shared {
		r := c.sharedAll[rs.id]
		r.live = true
		r.b, r.start = rs.b, rs.start
		if n := len(c.swFree); n > 0 {
			r.waiters = c.swFree[n-1]
			c.swFree = c.swFree[:n-1]
		}
		r.waiters = append(r.waiters, rs.waiters...)
		c.outstanding[r.b] = r
	}
	c.sharedFree = nil
	for i := len(c.sharedAll) - 1; i >= 0; i-- {
		if r := c.sharedAll[i]; !r.live {
			r.next = c.sharedFree
			c.sharedFree = r
		} else {
			r.next = nil
		}
	}

	c.budget = st.budget
	c.onDone = nil
	c.done = st.done
	c.startCycle = st.startCycle
	c.doneCycle = st.doneCycle
	c.Stat = st.stat
}
