package sweep

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"time"

	"dbisim/internal/telemetry"
)

// Record is the machine-readable result of one cell — what the -json
// output carries so CI can diff sweeps across commits.
type Record struct {
	Key        string             `json:"key"`
	Experiment string             `json:"experiment"`
	Benchmark  string             `json:"benchmark,omitempty"`
	Mechanism  string             `json:"mechanism,omitempty"`
	Cores      int                `json:"cores,omitempty"`
	Param      string             `json:"param,omitempty"`
	Run        int                `json:"run,omitempty"`
	Seed       int64              `json:"seed"`
	Metrics    map[string]float64 `json:"metrics"`
	// Attr carries the cell's attribution report when the run had a
	// ledger attached (dbibench -attr); nil otherwise, so plain sweep
	// JSON is unchanged byte for byte.
	Attr      *telemetry.AttrReport `json:"attr,omitempty"`
	ElapsedMS float64               `json:"elapsed_ms"`
}

// Recorder accumulates cell records from concurrently executing
// sweeps. A nil *Recorder discards everything, so call sites never
// need to guard.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
}

// Add appends one cell record.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, rec)
}

// Records returns a copy of the accumulated records sorted by key, so
// the serialized report is byte-stable across worker counts and
// completion orders.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.recs))
	copy(out, r.recs)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ReportSchema identifies the sweep report document layout. Tools
// that compare two reports (dbiscope diff) refuse to diff documents
// with different non-empty schemas; reports from before the field
// existed unmarshal with an empty Schema and are assumed compatible.
const ReportSchema = "dbisweep/v1"

// Report is the top-level -json document: per-cell metrics plus the
// wall-clock accounting that lets CI track the sweep's speedup.
type Report struct {
	Schema      string   `json:"schema,omitempty"`
	Seed        int64    `json:"seed"`
	Workers     int      `json:"workers"`
	Quick       bool     `json:"quick"`
	Experiments []string `json:"experiments"`
	CellCount   int      `json:"cell_count"`
	// BusySeconds is the sum of per-cell simulation time; WallSeconds
	// is the elapsed time of the whole run. Speedup is busy/wall — the
	// effective parallelism the worker pool achieved.
	BusySeconds float64  `json:"busy_seconds"`
	WallSeconds float64  `json:"wall_seconds"`
	Speedup     float64  `json:"speedup"`
	Cells       []Record `json:"cells"`
}

// Report assembles the final document from the accumulated records.
func (r *Recorder) Report(seed int64, workers int, quick bool, experiments []string, wall time.Duration) Report {
	cells := r.Records()
	var busy float64
	for _, c := range cells {
		busy += c.ElapsedMS / 1000
	}
	rep := Report{
		Schema:      ReportSchema,
		Seed:        seed,
		Workers:     workers,
		Quick:       quick,
		Experiments: experiments,
		CellCount:   len(cells),
		BusySeconds: busy,
		WallSeconds: wall.Seconds(),
		Cells:       cells,
	}
	if rep.WallSeconds > 0 {
		rep.Speedup = rep.BusySeconds / rep.WallSeconds
	}
	return rep
}

// WriteFile serializes the report as indented JSON.
func (rep Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
