package sweep

import "hash/fnv"

// CellSeed derives the simulation seed for one cell from the harness
// base seed, the cell's workload identity and its run index. Two
// properties carry the harness's determinism and comparability
// guarantees:
//
//   - Run 0 returns the base seed unchanged for every benchmark and
//     mechanism. All paper cells are run-0 cells, so the parallel
//     harness reproduces the historical sequential results bit for
//     bit, and every mechanism in a sweep sees the same workload
//     sample — mechanism comparisons stay paired (same trace stream,
//     different cache), which is what makes the paper's A-vs-B deltas
//     meaningful rather than trace noise.
//
//   - Replicas (run index >= 1) fold the full cell identity through an
//     FNV-1a mix, giving each replica a decorrelated but fully
//     reproducible stream. The derivation depends only on the cell's
//     identity, never on scheduling, so parallel and sequential
//     execution agree for any worker count.
func CellSeed(base int64, benchmark, mechanism string, run int) int64 {
	if run == 0 {
		return base
	}
	h := fnv.New64a()
	var buf [8]byte
	put64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put64(uint64(base))
	h.Write([]byte(benchmark))
	h.Write([]byte{0})
	h.Write([]byte(mechanism))
	h.Write([]byte{0})
	put64(uint64(run))
	seed := int64(h.Sum64())
	if seed == 0 {
		seed = base + int64(run)
	}
	return seed
}
