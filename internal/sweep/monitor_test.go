package sweep

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingSink collects every monitor event under a lock; callbacks
// arrive from worker goroutines concurrently.
type recordingSink struct {
	mu     sync.Mutex
	starts []string
	ends   []string
	sweeps []string
	panics []string
}

func (r *recordingSink) SweepStart(label string, workers, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweeps = append(r.sweeps, "start:"+label)
}

func (r *recordingSink) SweepEnd(label string, done int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweeps = append(r.sweeps, "end:"+label)
}

func (r *recordingSink) CellStart(worker int, key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, key)
}

func (r *recordingSink) CellEnd(worker int, key string, elapsed time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends = append(r.ends, key)
}

func (r *recordingSink) WorkerPanic(worker int, key string, recovered any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.panics = append(r.panics, key)
}

// TestMonitorPublishesSweep pins the live-status plumbing: an enabled
// monitor sees every cell start and end, the final snapshot reports the
// sweep complete and every lane idle, and results are untouched.
func TestMonitorPublishesSweep(t *testing.T) {
	const n = 12
	sink := &recordingSink{}
	Live.Enable(sink)
	defer Live.Disable()

	cells := make([]Cell[int], n)
	for i := range cells {
		cells[i] = busyCell(i)
	}
	outs, err := Run(cells, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Value != i*i {
			t.Fatalf("cell %d: got %d, want %d", i, o.Value, i*i)
		}
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.starts) != n || len(sink.ends) != n {
		t.Errorf("sink saw %d starts / %d ends, want %d each", len(sink.starts), len(sink.ends), n)
	}
	for _, k := range sink.ends {
		if !strings.HasPrefix(k, "t/b") {
			t.Errorf("cell-end key %q does not carry the cell identity", k)
		}
	}
	if len(sink.sweeps) != 2 || sink.sweeps[0] != "start:t" || sink.sweeps[1] != "end:t" {
		t.Errorf("sweep events = %v, want [start:t end:t]", sink.sweeps)
	}
	if len(sink.panics) != 0 {
		t.Errorf("unexpected panic events: %v", sink.panics)
	}

	st, ok := Live.Snapshot()
	if !ok {
		t.Fatal("no status published")
	}
	if st.Label != "t" || st.Total != n || st.Done != n || st.Active {
		t.Errorf("final status = %+v, want label t, %d/%d done, inactive", st, n, n)
	}
	var laneDone int64
	for _, w := range st.Workers {
		if w.Cell != "" {
			t.Errorf("worker %d still shows cell %q after the sweep", w.Worker, w.Cell)
		}
		laneDone += w.Done
	}
	if laneDone != n {
		t.Errorf("lane counters sum to %d, want %d", laneDone, n)
	}
}

// TestMonitorDisabledIsInert checks the default path: with the monitor
// off, sweeps publish nothing and no status is ever visible beyond what
// an earlier enabled sweep left behind.
func TestMonitorDisabledIsInert(t *testing.T) {
	var m Monitor // fresh, never enabled
	if m.begin("x", 1, 1) {
		t.Fatal("disabled monitor accepted a sweep")
	}
	if _, ok := m.Snapshot(); ok {
		t.Fatal("disabled monitor published a status")
	}
}

// TestMonitorSeesWorkerPanic pins the crash path at the monitor level:
// a worker that dies mid-cell reports the in-flight cell's identity to
// the sink (the flight recorder's flush hook). The end-to-end re-panic
// in RunState cannot run under `go test` — an unrecovered worker panic
// is rightly fatal to the process — so the test drives the same calls
// the worker's deferred recover makes.
func TestMonitorSeesWorkerPanic(t *testing.T) {
	sink := &recordingSink{}
	var m Monitor
	m.Enable(sink)
	if !m.begin("boom", 1, 1) {
		t.Fatal("enabled monitor refused a sweep")
	}
	m.cellStart(0, Key{Experiment: "boom", Benchmark: "b"})
	m.workerPanic(0, "cell exploded")

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.panics) != 1 || sink.panics[0] != "boom/b" {
		t.Errorf("panic events = %v, want [boom/b]", sink.panics)
	}
}
