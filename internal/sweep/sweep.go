// Package sweep is the parallel experiment harness: it shards
// independent simulation cells across a pool of worker goroutines and
// merges their results in a stable order, so every sweep behind the
// paper's figures and tables (Figures 6-8, Tables 3-7, the sensitivity
// and ablation studies) saturates the machine without perturbing the
// numbers it produces.
//
// Determinism contract: a cell's result may depend only on the cell's
// own inputs — configuration, benchmarks and seed — never on scheduling
// or on other cells. Run returns outcomes indexed exactly like the
// input slice, so for any worker count (including 1, the old sequential
// path) the merged result set is bit-identical. Seeds for replicated
// cells come from CellSeed, which is a pure function of the cell's
// identity, not of execution order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dbisim/internal/perfstat"
)

// Key identifies one cell of an experiment's run matrix. Unused
// dimensions stay zero; String renders only the populated ones.
type Key struct {
	// Experiment is the harness id (fig6, tab3, ...).
	Experiment string
	// Benchmark is the benchmark or workload-mix name on the cores.
	Benchmark string
	// Mechanism is the cache organization under study.
	Mechanism string
	// Cores is the core count for multi-core cells (0 means 1).
	Cores int
	// Param carries any extra sweep dimension ("gran=16,alpha=1/4").
	Param string
	// Run is the replica index; run 0 is the canonical paper cell.
	Run int
}

func (k Key) String() string {
	s := k.Experiment
	if k.Benchmark != "" {
		s += "/" + k.Benchmark
	}
	if k.Mechanism != "" {
		s += "/" + k.Mechanism
	}
	if k.Cores > 1 {
		s += fmt.Sprintf("/%dcore", k.Cores)
	}
	if k.Param != "" {
		s += "/" + k.Param
	}
	if k.Run > 0 {
		s += fmt.Sprintf("/run%d", k.Run)
	}
	return s
}

// Cell is one independent unit of simulation work.
type Cell[T any] struct {
	Key Key
	Run func() (T, error)
}

// StateCell is a Cell whose Run receives the worker's reusable state: a
// zero-valued W each worker goroutine owns for its lifetime and passes
// to every cell it executes. It is the hook for pooling expensive
// per-worker resources (a reusable simulated machine, scratch arenas)
// across cells. The determinism contract extends to W: a cell's result
// must be independent of which worker — and therefore which W, in
// whatever state previous cells left it — runs it.
type StateCell[T, W any] struct {
	Key Key
	Run func(w *W) (T, error)

	// Group, when non-empty, labels cells that profit from running on
	// the same worker consecutively — cells sharing a warmup identity,
	// say, so a fork-aware worker state warms a machine once and forks
	// every sibling from the checkpoint. All cells with equal Group
	// labels are dispatched to one worker as an unbroken chain, in input
	// order. Grouping is a scheduling hint only: results must remain
	// bit-identical for any grouping, including none.
	Group string
}

// Outcome pairs a cell's result with its identity and wall-clock cost.
type Outcome[T any] struct {
	Key     Key
	Value   T
	Elapsed time.Duration
}

// Run executes the cells on `workers` goroutines (0 or less means
// GOMAXPROCS) and returns their outcomes in input order. After the
// first failure no new cells are started; cells already in flight
// finish, and the error of the earliest-indexed failed cell is
// returned, wrapped with its key.
func Run[T any](cells []Cell[T], workers int) ([]Outcome[T], error) {
	return RunWithProgress(cells, workers, nil)
}

// RunWithProgress is Run with a completion callback: progress(done,
// total) fires after each cell finishes, from the finishing worker's
// goroutine, so it must be safe for concurrent use (an atomic counter
// plus stderr writes in practice). A nil progress reproduces Run.
func RunWithProgress[T any](cells []Cell[T], workers int, progress func(done, total int)) ([]Outcome[T], error) {
	sc := make([]StateCell[T, struct{}], len(cells))
	for i, c := range cells {
		run := c.Run
		sc[i] = StateCell[T, struct{}]{
			Key: c.Key,
			Run: func(*struct{}) (T, error) { return run() },
		}
	}
	return RunState(sc, workers, progress)
}

// RunState is the stateful-worker generalization behind Run and
// RunWithProgress: each of the `workers` goroutines owns one zero-valued
// W and hands a pointer to it to every cell it executes. Scheduling,
// ordering, failure and progress semantics are identical to
// RunWithProgress.
func RunState[T, W any](cells []StateCell[T, W], workers int, progress func(done, total int)) ([]Outcome[T], error) {
	chains := buildChains(cells)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chains) {
		workers = len(chains)
	}
	outs := make([]Outcome[T], len(cells))
	errs := make([]error, len(cells))

	// One atomic load decides whether this sweep publishes to the live
	// monitor; disabled, the per-cell path below is untouched.
	label := ""
	if len(cells) > 0 {
		label = cells[0].Key.Experiment
	}
	live := Live.begin(label, workers, len(cells))

	var failed atomic.Bool
	var done atomic.Int64
	work := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var state W
			// Worker states that can attribute their decisions to a
			// lane (pool/fork event streams) learn their index here.
			if sw, ok := any(&state).(interface{ SetWorker(int) }); ok {
				sw.SetWorker(w)
			}
			// Worker states that hold onto expensive resources (warmed
			// machines) may implement Release to hand them to the next
			// sweep when this worker retires.
			if r, ok := any(&state).(interface{ Release() }); ok {
				defer r.Release()
			}
			if live {
				// Give the ops plane a last look (flight-recorder
				// flush) before a cell panic takes the process down.
				defer func() {
					if r := recover(); r != nil {
						Live.workerPanic(w, r)
						panic(r)
					}
				}()
			}
			for chain := range work {
				for _, i := range chain {
					if failed.Load() {
						continue
					}
					if live {
						Live.cellStart(w, cells[i].Key)
					}
					start := time.Now()
					v, err := cells[i].Run(&state)
					elapsed := time.Since(start)
					if live {
						Live.cellEnd(w, elapsed, err)
					}
					if err != nil {
						errs[i] = err
						failed.Store(true)
						continue
					}
					outs[i] = Outcome[T]{Key: cells[i].Key, Value: v, Elapsed: elapsed}
					perfstat.CellDone(1)
					if progress != nil {
						progress(int(done.Add(1)), len(cells))
					}
				}
			}
		}()
	}
	for _, c := range chains {
		work <- c
	}
	close(work)
	wg.Wait()
	if live {
		Live.end()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", cells[i].Key, err)
		}
	}
	return outs, nil
}

// buildChains partitions cell indices into dispatch units: every set of
// cells sharing a non-empty Group becomes one chain (in input order,
// keyed by first occurrence), each ungrouped cell its own. One chain
// goes to one worker, so a group's cells always run consecutively on
// the same worker state.
func buildChains[T, W any](cells []StateCell[T, W]) [][]int {
	var chains [][]int
	byGroup := map[string]int{}
	for i := range cells {
		g := cells[i].Group
		if g == "" {
			chains = append(chains, []int{i})
			continue
		}
		if ci, ok := byGroup[g]; ok {
			chains[ci] = append(chains[ci], i)
			continue
		}
		byGroup[g] = len(chains)
		chains = append(chains, []int{i})
	}
	return chains
}
