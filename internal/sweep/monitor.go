package sweep

import (
	"sync/atomic"
	"time"
)

// Sink receives sweep lifecycle events from the running workers. The
// ops plane installs one to feed its flight recorder; callbacks fire
// from worker goroutines concurrently and must not block (they sit on
// the cell dispatch path, though never inside a simulation).
type Sink interface {
	SweepStart(label string, workers, total int)
	SweepEnd(label string, done int)
	CellStart(worker int, key string)
	CellEnd(worker int, key string, elapsed time.Duration, err error)
	// WorkerPanic fires after a worker's cell panicked, before the panic
	// is re-raised — the last chance to flush a flight recorder.
	WorkerPanic(worker int, key string, recovered any)
}

// workerSlot is one worker lane's live status, written only by that
// worker and read by status snapshots.
type workerSlot struct {
	cell    atomic.Pointer[string] // nil when idle
	startNS atomic.Int64           // unix nanos the current cell started
	done    atomic.Int64           // cells completed by this worker
}

// WorkerStatus is the exported snapshot of one worker lane.
type WorkerStatus struct {
	Worker  int    `json:"worker"`
	Cell    string `json:"cell,omitempty"` // empty when idle
	StartNS int64  `json:"cell_start_ns,omitempty"`
	Done    int64  `json:"cells_done"`
}

// Status is a point-in-time snapshot of the most recently started
// sweep, for the ops server's /sweep endpoint.
type Status struct {
	Seq     uint64         `json:"seq"` // increments per sweep
	Label   string         `json:"label"`
	Total   int            `json:"cells_total"`
	Done    int            `json:"cells_done"`
	StartNS int64          `json:"start_ns"`
	Active  bool           `json:"active"`
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// Monitor publishes a running sweep's progress through lock-free
// per-worker slots, so an ops server can snapshot live status without
// ever contending with the workers. All fields are atomics: workers
// only ever do atomic stores at cell granularity, and Enable-time is
// the only allocation.
//
// Disabled (the default), RunState's whole interaction with the
// monitor is one atomic bool load per sweep — the per-cell publishing
// is skipped entirely, preserving the allocation-free dispatch path.
// Enabling mid-sweep therefore takes effect at the next sweep.
//
// Concurrent RunState calls share the one process-wide monitor; the
// status reflects the most recently started sweep. That is the right
// semantics for the ops plane (the CLIs run sweeps sequentially) and
// harmless best-effort under test parallelism.
type Monitor struct {
	enabled atomic.Bool
	sink    atomic.Pointer[Sink]

	seq     atomic.Uint64
	label   atomic.Pointer[string]
	total   atomic.Int64
	done    atomic.Int64
	startNS atomic.Int64
	active  atomic.Bool
	slots   atomic.Pointer[[]workerSlot]
}

// Live is the process-wide monitor RunState publishes to when enabled.
var Live = &Monitor{}

// Enable turns on live publishing, with an optional event sink (nil
// keeps status snapshots only). It takes effect at the next sweep.
func (m *Monitor) Enable(sink Sink) {
	if sink != nil {
		m.sink.Store(&sink)
	} else {
		m.sink.Store(nil)
	}
	m.enabled.Store(true)
}

// Disable stops publishing at the next sweep and drops the sink.
func (m *Monitor) Disable() {
	m.enabled.Store(false)
	m.sink.Store(nil)
}

// Enabled reports whether sweeps publish live status.
func (m *Monitor) Enabled() bool { return m.enabled.Load() }

// Snapshot returns the current sweep status. The bool is false when no
// sweep has ever been published.
func (m *Monitor) Snapshot() (Status, bool) {
	lp := m.label.Load()
	if lp == nil {
		return Status{}, false
	}
	st := Status{
		Seq:     m.seq.Load(),
		Label:   *lp,
		Total:   int(m.total.Load()),
		Done:    int(m.done.Load()),
		StartNS: m.startNS.Load(),
		Active:  m.active.Load(),
	}
	if sp := m.slots.Load(); sp != nil {
		st.Workers = make([]WorkerStatus, len(*sp))
		for i := range *sp {
			s := &(*sp)[i]
			ws := WorkerStatus{Worker: i, Done: s.done.Load()}
			if cp := s.cell.Load(); cp != nil {
				ws.Cell = *cp
				ws.StartNS = s.startNS.Load()
			}
			st.Workers[i] = ws
		}
	}
	return st, true
}

// begin opens a sweep. It returns false when the monitor is disabled,
// in which case RunState skips every other call.
func (m *Monitor) begin(label string, workers, total int) bool {
	if !m.enabled.Load() {
		return false
	}
	slots := make([]workerSlot, workers)
	m.slots.Store(&slots)
	m.label.Store(&label)
	m.total.Store(int64(total))
	m.done.Store(0)
	m.startNS.Store(time.Now().UnixNano())
	m.active.Store(true)
	m.seq.Add(1)
	if s := m.sink.Load(); s != nil {
		(*s).SweepStart(label, workers, total)
	}
	return true
}

func (m *Monitor) end() {
	m.active.Store(false)
	if s := m.sink.Load(); s != nil {
		lp := m.label.Load()
		label := ""
		if lp != nil {
			label = *lp
		}
		(*s).SweepEnd(label, int(m.done.Load()))
	}
}

// slot returns worker w's lane in the current sweep, nil if the slot
// table has been replaced by a newer sweep.
func (m *Monitor) slot(w int) *workerSlot {
	sp := m.slots.Load()
	if sp == nil || w < 0 || w >= len(*sp) {
		return nil
	}
	return &(*sp)[w]
}

func (m *Monitor) cellStart(w int, key Key) {
	ks := key.String()
	if s := m.slot(w); s != nil {
		s.startNS.Store(time.Now().UnixNano())
		s.cell.Store(&ks)
	}
	if s := m.sink.Load(); s != nil {
		(*s).CellStart(w, ks)
	}
}

func (m *Monitor) cellEnd(w int, elapsed time.Duration, err error) {
	m.done.Add(1)
	ks := ""
	if s := m.slot(w); s != nil {
		if cp := s.cell.Swap(nil); cp != nil {
			ks = *cp
		}
		s.done.Add(1)
	}
	if s := m.sink.Load(); s != nil {
		(*s).CellEnd(w, ks, elapsed, err)
	}
}

func (m *Monitor) workerPanic(w int, recovered any) {
	ks := ""
	if s := m.slot(w); s != nil {
		if cp := s.cell.Load(); cp != nil {
			ks = *cp
		}
	}
	if s := m.sink.Load(); s != nil {
		(*s).WorkerPanic(w, ks, recovered)
	}
}
