package sweep

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// busyCell returns a cell whose result depends only on its index, with
// a tiny index-dependent delay so parallel completion order scrambles.
func busyCell(i int) Cell[int] {
	return Cell[int]{
		Key: Key{Experiment: "t", Benchmark: fmt.Sprintf("b%02d", i)},
		Run: func() (int, error) {
			time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
			return i * i, nil
		},
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 20
	cells := make([]Cell[int], n)
	for i := range cells {
		cells[i] = busyCell(i)
	}
	var want []int
	for _, workers := range []int{1, 2, 4, 8, 0} {
		outs, err := Run(cells, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]int, n)
		for i, o := range outs {
			got[i] = o.Value
			if o.Key != cells[i].Key {
				t.Fatalf("workers=%d: outcome %d has key %v, want %v", workers, i, o.Key, cells[i].Key)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d]=%d differs from sequential %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 3, 8} {
		cells := make([]Cell[int], 10)
		var ran atomic.Int32
		for i := range cells {
			i := i
			cells[i] = Cell[int]{
				Key: Key{Experiment: "t", Benchmark: fmt.Sprintf("b%d", i)},
				Run: func() (int, error) {
					ran.Add(1)
					if i == 4 {
						return 0, boom
					}
					return i, nil
				},
			}
		}
		_, err := Run(cells, workers)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "t/b4") {
			t.Fatalf("workers=%d: error %q does not name the failing cell", workers, err)
		}
		if workers == 1 && ran.Load() != 5 {
			t.Fatalf("sequential run executed %d cells after a failure at index 4", ran.Load())
		}
	}
}

func TestRunEmptyAndFewerCellsThanWorkers(t *testing.T) {
	if outs, err := Run[int](nil, 8); err != nil || len(outs) != 0 {
		t.Fatalf("empty run: %v %v", outs, err)
	}
	outs, err := Run([]Cell[string]{{Key: Key{Experiment: "t"}, Run: func() (string, error) { return "x", nil }}}, 64)
	if err != nil || len(outs) != 1 || outs[0].Value != "x" {
		t.Fatalf("single cell: %v %v", outs, err)
	}
}

func TestCellSeedRunZeroKeepsBase(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -9} {
		for _, b := range []string{"", "lbm", "mcf"} {
			for _, m := range []string{"", "DBI+AWB"} {
				if got := CellSeed(base, b, m, 0); got != base {
					t.Fatalf("CellSeed(%d,%q,%q,0) = %d, want base", base, b, m, got)
				}
			}
		}
	}
}

func TestCellSeedReplicasDecorrelate(t *testing.T) {
	seen := map[int64]string{}
	for _, b := range []string{"lbm", "mcf"} {
		for _, m := range []string{"DBI", "DAWB"} {
			for run := 1; run <= 3; run++ {
				id := fmt.Sprintf("%s/%s/%d", b, m, run)
				s := CellSeed(42, b, m, run)
				if s == 42 {
					t.Fatalf("%s: replica seed equals base", id)
				}
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision between %s and %s", prev, id)
				}
				seen[s] = id
				if again := CellSeed(42, b, m, run); again != s {
					t.Fatalf("%s: CellSeed not deterministic", id)
				}
			}
		}
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Experiment: "tab6", Benchmark: "lbm", Mechanism: "DBI+AWB", Param: "gran=16", Run: 2}
	want := "tab6/lbm/DBI+AWB/gran=16/run2"
	if k.String() != want {
		t.Fatalf("Key.String() = %q, want %q", k, want)
	}
	if got := (Key{Experiment: "fig7", Benchmark: "mix0", Mechanism: "DBI", Cores: 4}).String(); got != "fig7/mix0/DBI/4core" {
		t.Fatalf("Key.String() = %q", got)
	}
}

func TestRecorderReportStableAndSpeedup(t *testing.T) {
	rec := &Recorder{}
	for i := 9; i >= 0; i-- {
		rec.Add(Record{
			Key:        fmt.Sprintf("t/b%d", i),
			Experiment: "t",
			ElapsedMS:  100,
		})
	}
	rep := rec.Report(42, 4, true, []string{"t"}, 250*time.Millisecond)
	if rep.CellCount != 10 {
		t.Fatalf("cell count %d", rep.CellCount)
	}
	for i := 1; i < len(rep.Cells); i++ {
		if rep.Cells[i-1].Key > rep.Cells[i].Key {
			t.Fatalf("cells not sorted: %q > %q", rep.Cells[i-1].Key, rep.Cells[i].Key)
		}
	}
	if rep.BusySeconds < 0.99 || rep.BusySeconds > 1.01 {
		t.Fatalf("busy seconds %v", rep.BusySeconds)
	}
	if rep.Speedup < 3.9 || rep.Speedup > 4.1 {
		t.Fatalf("speedup %v, want ~4", rep.Speedup)
	}
	var nilRec *Recorder
	nilRec.Add(Record{}) // must not panic
	if nilRec.Records() != nil {
		t.Fatal("nil recorder returned records")
	}
}

func TestRunWithProgressReportsEveryCell(t *testing.T) {
	cells := make([]Cell[int], 7)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Key: Key{Experiment: "p"}, Run: func() (int, error) { return i, nil }}
	}
	var mu sync.Mutex
	var dones []int
	outs, err := RunWithProgress(cells, 3, func(done, total int) {
		if total != len(cells) {
			t.Errorf("total = %d, want %d", total, len(cells))
		}
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(cells) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(cells))
	}
	if len(dones) != len(cells) {
		t.Fatalf("progress calls = %d, want %d", len(dones), len(cells))
	}
	sort.Ints(dones)
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done values %v, want 1..%d each exactly once", dones, len(cells))
		}
	}
}
