// Package dbiserve is the dbiserved request plane: it mounts a
// pkg/dbi tracker behind the two pkg/dbiproto protocols — HTTP+JSON
// v1 for control planes and curl, the length-prefixed binary batch
// protocol for the write-intensive data path — plus the repo-standard
// ops plane (/metrics Prometheus text, /healthz, /debug/vars,
// /debug/pprof).
package dbiserve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"

	"dbisim/internal/obs"
	"dbisim/internal/telemetry"
	"dbisim/pkg/dbi"
	"dbisim/pkg/dbiproto"
)

// Server serves one tracker over both protocols. Request-plane
// counters are atomics (many connection goroutines), exported through
// the telemetry registry under the serve. prefix.
type Server struct {
	tr  dbi.Batcher
	reg *telemetry.Registry

	jsonReqs    atomic.Uint64
	binReqs     atomic.Uint64
	errors      atomic.Uint64
	setKeys     atomic.Uint64
	evictedKeys atomic.Uint64
	conns       atomic.Uint64
}

// New wires a tracker to a server and registers its request-plane
// counters (and the tracker's own gauges) on reg.
func New(tr dbi.Batcher, reg *telemetry.Registry) *Server {
	s := &Server{tr: tr, reg: reg}
	reg.Counter("serve.json_requests", s.jsonReqs.Load)
	reg.Counter("serve.bin_requests", s.binReqs.Load)
	reg.Counter("serve.errors", s.errors.Load)
	reg.Counter("serve.set_keys", s.setKeys.Load)
	reg.Counter("serve.evicted_keys", s.evictedKeys.Load)
	reg.Counter("serve.bin_conns", s.conns.Load)
	reg.Gauge("serve.dirty_keys", func() float64 { return float64(tr.Stats().DirtyKeys) })
	reg.Gauge("serve.valid_rows", func() float64 { return float64(tr.Stats().ValidRows) })
	return s
}

// Tracker returns the served tracker.
func (s *Server) Tracker() dbi.Batcher { return s.tr }

// --- HTTP + JSON v1 ------------------------------------------------

// Handler returns the full HTTP surface: /v1/* plus the ops plane.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/set", s.keysEndpoint(func(keys []dbi.Key) any {
		ev := s.tr.SetDirtyBatch(keys, nil)
		s.setKeys.Add(uint64(len(keys)))
		s.evictedKeys.Add(uint64(len(ev)))
		return dbiproto.SetResponse{Evicted: toU64(ev)}
	}))
	mux.HandleFunc("/v1/dirty", s.keysEndpoint(func(keys []dbi.Key) any {
		vs := s.tr.IsDirtyBatch(keys, nil)
		if vs == nil {
			vs = []bool{}
		}
		return dbiproto.DirtyResponse{Dirty: vs}
	}))
	mux.HandleFunc("/v1/region", s.keysEndpoint(func(keys []dbi.Key) any {
		var out []dbi.Key
		for _, k := range keys {
			out = append(out, s.tr.DirtyBlocksInRegion(k)...)
		}
		return dbiproto.KeysResponse{Keys: toU64(out)}
	}))
	mux.HandleFunc("/v1/flush", s.keysEndpoint(func(keys []dbi.Key) any {
		return dbiproto.KeysResponse{Keys: toU64(s.tr.FlushRowsInto(keys, nil))}
	}))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.jsonReqs.Add(1)
		if r.Method != http.MethodGet {
			s.writeErr(w, http.StatusBadRequest, dbiproto.CodeBadRequest, "use GET")
			return
		}
		writeJSON(w, s.tr.Stats())
	})
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		s.writeErr(w, http.StatusNotFound, dbiproto.CodeBadRequest,
			fmt.Sprintf("unknown v1 endpoint %s", r.URL.Path))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v") {
			s.writeErr(w, http.StatusNotFound, dbiproto.CodeBadVersion,
				"only /v1/ is served")
			return
		}
		s.writeErr(w, http.StatusNotFound, dbiproto.CodeBadRequest,
			fmt.Sprintf("no such path %s", r.URL.Path))
	})

	// Ops plane (unversioned, same as every dbisim binary).
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}

// keysEndpoint adapts a batch operation to a POST handler taking a
// KeysRequest.
func (s *Server) keysEndpoint(op func([]dbi.Key) any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.jsonReqs.Add(1)
		if r.Method != http.MethodPost {
			s.writeErr(w, http.StatusBadRequest, dbiproto.CodeBadRequest, "use POST")
			return
		}
		var req dbiproto.KeysRequest
		body := http.MaxBytesReader(w, r.Body, dbiproto.MaxFrame)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			code, status := dbiproto.CodeBadRequest, http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code, status = dbiproto.CodeTooLarge, http.StatusRequestEntityTooLarge
			}
			s.writeErr(w, status, code, err.Error())
			return
		}
		if len(req.Keys) > dbiproto.MaxBatch {
			s.writeErr(w, http.StatusRequestEntityTooLarge, dbiproto.CodeTooLarge,
				fmt.Sprintf("batch of %d keys exceeds %d", len(req.Keys), dbiproto.MaxBatch))
			return
		}
		keys := make([]dbi.Key, len(req.Keys))
		for i, k := range req.Keys {
			keys[i] = dbi.Key(k)
		}
		writeJSON(w, op(keys))
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, code, msg string) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(dbiproto.ErrorResponse{
		Error: dbiproto.ErrorBody{Code: code, Message: msg},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// toU64 converts a key slice for the JSON types; never nil, so JSON
// renders [] rather than null.
func toU64(ks []dbi.Key) []uint64 {
	out := make([]uint64, len(ks))
	for i, k := range ks {
		out[i] = uint64(k)
	}
	return out
}

// --- binary batch protocol -----------------------------------------

// ServeBinary accepts binary-protocol connections until the listener
// closes. Each connection gets one goroutine; requests are answered
// in order, so clients may pipeline.
func (s *Server) ServeBinary(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.conns.Add(1)
		go s.serveConn(conn)
	}
}

// connState holds one connection's reusable buffers: the hot loop
// allocates only when an answer outgrows its scratch.
type connState struct {
	rbuf  []byte
	resp  []byte
	keys  []dbi.Key
	out   []dbi.Key
	bools []bool
	wire  []byte
	u64   []uint64
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	st := &connState{}
	for {
		f, buf, err := dbiproto.ReadFrame(br, st.rbuf)
		st.rbuf = buf
		if err != nil {
			// EOF and framing violations both end the connection;
			// best-effort error frame first if the stream was framed
			// enough to carry one.
			var se *dbiproto.StatusError
			if errors.As(err, &se) {
				s.errors.Add(1)
				_, _ = nc.Write(errFrame(nil, f, se))
			}
			return
		}
		s.binReqs.Add(1)
		st.wire = s.handleFrame(st.wire[:0], f, st)
		if _, err := nc.Write(st.wire); err != nil {
			return
		}
	}
}

// handleFrame appends the response frame for one request to w.
func (s *Server) handleFrame(w []byte, f dbiproto.Frame, st *connState) []byte {
	if f.Version != dbiproto.Version {
		s.errors.Add(1)
		return errFrame(w, f, &dbiproto.StatusError{
			Code:    dbiproto.CodeBadVersion,
			Message: fmt.Sprintf("version %d not supported", f.Version),
		})
	}
	var payload []byte
	switch f.Op {
	case dbiproto.OpPing:
		payload = []byte{dbiproto.StatusOK}
	case dbiproto.OpStats:
		body, err := json.Marshal(s.tr.Stats())
		if err != nil {
			return errFrame(w, f, &dbiproto.StatusError{Code: dbiproto.CodeInternal, Message: err.Error()})
		}
		payload = append([]byte{dbiproto.StatusOK}, body...)
	case dbiproto.OpSet, dbiproto.OpIsDirty, dbiproto.OpRegion, dbiproto.OpFlush:
		var err error
		payload, err = s.keysOp(f, st)
		if err != nil {
			s.errors.Add(1)
			var se *dbiproto.StatusError
			if !errors.As(err, &se) {
				se = &dbiproto.StatusError{Code: dbiproto.CodeInternal, Message: err.Error()}
			}
			return errFrame(w, f, se)
		}
	default:
		s.errors.Add(1)
		return errFrame(w, f, &dbiproto.StatusError{
			Code:    dbiproto.CodeBadRequest,
			Message: fmt.Sprintf("unknown opcode %#x", f.Op),
		})
	}
	return dbiproto.AppendFrame(w, dbiproto.Frame{
		Version: dbiproto.Version, Op: f.Op | dbiproto.RespBit, Seq: f.Seq, Payload: payload,
	})
}

// keysOp decodes the key batch, applies the operation and returns the
// OK payload, reusing st's scratch.
func (s *Server) keysOp(f dbiproto.Frame, st *connState) ([]byte, error) {
	var err error
	st.u64, _, err = dbiproto.DecodeKeys(f.Payload, st.u64[:0])
	if err != nil {
		return nil, err
	}
	st.keys = st.keys[:0]
	for _, k := range st.u64 {
		st.keys = append(st.keys, dbi.Key(k))
	}
	p := append(st.resp[:0], dbiproto.StatusOK)
	defer func() { st.resp = p[:0] }()
	switch f.Op {
	case dbiproto.OpSet:
		st.out = s.tr.SetDirtyBatch(st.keys, st.out[:0])
		s.setKeys.Add(uint64(len(st.keys)))
		s.evictedKeys.Add(uint64(len(st.out)))
		p = appendKeyBatch(p, st.out)
	case dbiproto.OpIsDirty:
		st.bools = s.tr.IsDirtyBatch(st.keys, st.bools[:0])
		p = dbiproto.AppendBools(p, st.bools)
	case dbiproto.OpRegion:
		st.out = st.out[:0]
		for _, k := range st.keys {
			st.out = append(st.out, s.tr.DirtyBlocksInRegion(k)...)
		}
		p = appendKeyBatch(p, st.out)
	case dbiproto.OpFlush:
		st.out = s.tr.FlushRowsInto(st.keys, st.out[:0])
		p = appendKeyBatch(p, st.out)
	}
	return p, nil
}

func appendKeyBatch(p []byte, ks []dbi.Key) []byte {
	p = binary.AppendUvarint(p, uint64(len(ks)))
	for _, k := range ks {
		p = binary.LittleEndian.AppendUint64(p, uint64(k))
	}
	return p
}

func errFrame(w []byte, f dbiproto.Frame, se *dbiproto.StatusError) []byte {
	payload := append([]byte{dbiproto.StatusOf(se.Code)}, se.Message...)
	return dbiproto.AppendFrame(w, dbiproto.Frame{
		Version: dbiproto.Version, Op: f.Op | dbiproto.RespBit, Seq: f.Seq, Payload: payload,
	})
}
