package dbiserve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunLoadSmoke drives a short closed-loop burst over each
// protocol and sanity-checks the report.
func TestRunLoadSmoke(t *testing.T) {
	_, hs, baddr := testServer(t)
	for _, tc := range []struct{ proto, addr string }{
		{"binary", baddr},
		{"json", hs.URL},
	} {
		rep, err := RunLoad(context.Background(), LoadConfig{
			Addr: tc.addr, Protocol: tc.proto, Clients: 4, Batch: 32,
			Duration: 300 * time.Millisecond, Profile: "stream", Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.proto, err)
		}
		if rep.Errors != 0 {
			t.Errorf("%s: %d errors", tc.proto, rep.Errors)
		}
		if rep.Requests == 0 || rep.SetKeys == 0 || rep.SetOpsSec <= 0 {
			t.Errorf("%s: empty report %+v", tc.proto, rep)
		}
		if rep.P99us < rep.P50us {
			t.Errorf("%s: p99 %d below p50 %d", tc.proto, rep.P99us, rep.P50us)
		}
	}
}

// TestRunLoadOpenLoop checks rate pacing holds request count near the
// schedule instead of running closed-loop flat out.
func TestRunLoadOpenLoop(t *testing.T) {
	_, _, baddr := testServer(t)
	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr: baddr, Protocol: "binary", Clients: 2, Batch: 8,
		Duration: 500 * time.Millisecond, Profile: "stream", Seed: 7,
		Rate: 200, // 100 requests in the window
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pacing counts all request types; allow generous slop for CI.
	if rep.Requests < 50 || rep.Requests > 220 {
		t.Errorf("paced run sent %d requests, want ~100", rep.Requests)
	}
}
