package dbiserve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dbisim/internal/addr"
	"dbisim/internal/stats"
	"dbisim/internal/trace"
	"dbisim/pkg/dbiclient"
)

// LoadConfig drives RunLoad: Clients independent connections replay
// an internal/trace profile against a dbiserved instance as open-loop
// traffic (Rate > 0 paces sends on a fixed schedule and charges queue
// wait to latency; Rate == 0 is closed-loop, each client sending as
// fast as the server answers).
type LoadConfig struct {
	Addr     string        // server address (binary TCP or HTTP host:port)
	Protocol string        // "binary" or "json"
	Clients  int           // concurrent connections
	Batch    int           // keys per request
	Duration time.Duration // measurement length
	Profile  string        // internal/trace profile name
	Seed     int64
	Rate     float64 // total target requests/sec across clients; 0 = closed loop
	Timeout  time.Duration
}

// LoadReport is what the driver measures. Latencies are microseconds
// per request (one batch round trip).
type LoadReport struct {
	Protocol  string  `json:"protocol"`
	Clients   int     `json:"clients"`
	Batch     int     `json:"batch"`
	Seconds   float64 `json:"seconds"`
	Requests  uint64  `json:"requests"`
	SetKeys   uint64  `json:"set_keys"` // SetDirty ops applied
	TotalKeys uint64  `json:"total_keys"`
	Evicted   uint64  `json:"evicted"`
	Flushed   uint64  `json:"flushed"`
	Errors    uint64  `json:"errors"`
	SetOpsSec float64 `json:"set_ops_per_sec"`
	ReqSec    float64 `json:"requests_per_sec"`
	P50us     int     `json:"p50_us"`
	P95us     int     `json:"p95_us"`
	P99us     int     `json:"p99_us"`
	MeanUs    float64 `json:"mean_us"`
}

// loadClient is the operation surface both protocol clients share.
type loadClient interface {
	SetDirty(ctx context.Context, keys []uint64) ([]uint64, error)
	IsDirty(ctx context.Context, keys []uint64) ([]bool, error)
	FlushRows(ctx context.Context, keys []uint64) ([]uint64, error)
}

// maxLatencyUs bounds the latency histogram: 1 second, far above any
// passing p99.
const maxLatencyUs = 1_000_000

// RunLoad replays cfg against a running server and reports.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients < 1 || cfg.Batch < 1 {
		return nil, fmt.Errorf("loadgen: need at least 1 client and 1-key batches")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "binary"
	}
	prof, err := trace.ByName(cfg.Profile)
	if err != nil {
		return nil, err
	}

	var (
		mu   sync.Mutex
		hist = stats.NewHistogram(maxLatencyUs)

		requests, setKeys, totalKeys atomic.Uint64
		evicted, flushed, errs       atomic.Uint64
	)
	observe := func(d time.Duration) {
		us := int(d.Microseconds())
		mu.Lock()
		hist.Observe(us)
		mu.Unlock()
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Clients) * float64(time.Second) / cfg.Rate)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var cl loadClient
			switch cfg.Protocol {
			case "json":
				cl = dbiclient.NewJSON(cfg.Addr)
			default:
				bc, err := dbiclient.Dial(ctx, cfg.Addr)
				if err != nil {
					errCh <- err
					cancel()
					return
				}
				defer bc.Close()
				cl = bc
			}
			// Disjoint 1 GiB address footprints keep clients from
			// colliding on rows, as distinct cores would.
			gen := trace.New(prof, addr.Addr(uint64(id+1)<<30), cfg.Seed+int64(id))
			setBatch := make([]uint64, 0, cfg.Batch)
			loadBatch := make([]uint64, 0, cfg.Batch)
			recentRows := make([]uint64, 0, 8)
			reqN := 0
			for runCtx.Err() == nil {
				// Fill the set batch from the trace's stores; loads
				// accumulate into a dirty-query batch sent when full.
				setBatch = setBatch[:0]
				for len(setBatch) < cfg.Batch {
					rec := gen.Next()
					key := uint64(rec.Addr) >> 6
					if rec.Kind == trace.Store {
						setBatch = append(setBatch, key)
					} else if len(loadBatch) < cfg.Batch {
						loadBatch = append(loadBatch, key)
					}
				}
				if interval > 0 {
					next := start.Add(time.Duration(reqN) * interval)
					if d := time.Until(next); d > 0 {
						select {
						case <-runCtx.Done():
						case <-time.After(d):
						}
						if runCtx.Err() != nil {
							break
						}
					}
				}
				opCtx, opDone := context.WithTimeout(ctx, cfg.Timeout)
				t0 := time.Now()
				ev, err := cl.SetDirty(opCtx, setBatch)
				observe(time.Since(t0))
				opDone()
				reqN++
				if err != nil {
					if runCtx.Err() != nil {
						break
					}
					errs.Add(1)
					continue
				}
				requests.Add(1)
				setKeys.Add(uint64(len(setBatch)))
				totalKeys.Add(uint64(len(setBatch)))
				evicted.Add(uint64(len(ev)))
				if len(recentRows) < cap(recentRows) {
					recentRows = append(recentRows, setBatch[0])
				}

				if len(loadBatch) == cfg.Batch {
					opCtx, opDone := context.WithTimeout(ctx, cfg.Timeout)
					t0 := time.Now()
					_, err := cl.IsDirty(opCtx, loadBatch)
					observe(time.Since(t0))
					opDone()
					reqN++
					loadBatch = loadBatch[:0]
					if err == nil {
						requests.Add(1)
						totalKeys.Add(uint64(cfg.Batch))
					} else if runCtx.Err() == nil {
						errs.Add(1)
					}
				}
				// Periodic AWB harvest of recently written rows.
				if reqN%64 == 0 && len(recentRows) > 0 {
					opCtx, opDone := context.WithTimeout(ctx, cfg.Timeout)
					t0 := time.Now()
					fl, err := cl.FlushRows(opCtx, recentRows)
					observe(time.Since(t0))
					opDone()
					reqN++
					recentRows = recentRows[:0]
					if err == nil {
						requests.Add(1)
						flushed.Add(uint64(len(fl)))
					} else if runCtx.Err() == nil {
						errs.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	elapsed := time.Since(start).Seconds()

	rep := &LoadReport{
		Protocol:  cfg.Protocol,
		Clients:   cfg.Clients,
		Batch:     cfg.Batch,
		Seconds:   elapsed,
		Requests:  requests.Load(),
		SetKeys:   setKeys.Load(),
		TotalKeys: totalKeys.Load(),
		Evicted:   evicted.Load(),
		Flushed:   flushed.Load(),
		Errors:    errs.Load(),
		P50us:     hist.Quantile(0.50),
		P95us:     hist.Quantile(0.95),
		P99us:     hist.Quantile(0.99),
		MeanUs:    hist.Mean(),
	}
	if elapsed > 0 {
		rep.SetOpsSec = float64(rep.SetKeys) / elapsed
		rep.ReqSec = float64(rep.Requests) / elapsed
	}
	return rep, nil
}
