package dbiserve

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"dbisim/internal/telemetry"
	"dbisim/pkg/dbi"
	"dbisim/pkg/dbiclient"
	"dbisim/pkg/dbiproto"
)

// testServer boots one tracker behind both protocols on loopback.
func testServer(t *testing.T, opts ...dbi.Option) (*Server, *httptest.Server, string) {
	t.Helper()
	base := []dbi.Option{dbi.WithRows(1 << 12), dbi.WithRowSize(64)}
	tr, err := dbi.NewSharded(4, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(tr, telemetry.NewRegistry())
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeBinary(ln)
	return srv, hs, ln.Addr().String()
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestRoundTripJSON exercises every v1 endpoint through the JSON
// client against known answers.
func TestRoundTripJSON(t *testing.T) {
	_, hs, _ := testServer(t)
	cl := dbiclient.NewJSON(hs.URL)
	ctx := ctxT(t)

	ev, err := cl.SetDirty(ctx, []uint64{1, 2, 65, 130})
	if err != nil || len(ev) != 0 {
		t.Fatalf("SetDirty: ev=%v err=%v", ev, err)
	}
	vs, err := cl.IsDirty(ctx, []uint64{1, 3, 65})
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0] || vs[1] || !vs[2] {
		t.Fatalf("IsDirty = %v, want [true false true]", vs)
	}
	region, err := cl.Region(ctx, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !sameU64(region, []uint64{1, 2}) {
		t.Fatalf("Region(0) = %v, want [1 2]", region)
	}
	fl, err := cl.FlushRows(ctx, []uint64{64})
	if err != nil {
		t.Fatal(err)
	}
	if !sameU64(fl, []uint64{65}) {
		t.Fatalf("FlushRows(64) = %v, want [65]", fl)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.RowSize != 64 || st.DirtyKeys != 3 || st.Flushes != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestRoundTripBinary is the same exchange over the binary protocol,
// plus ping and pipelining.
func TestRoundTripBinary(t *testing.T) {
	_, _, baddr := testServer(t)
	ctx := ctxT(t)
	cl, err := dbiclient.Dial(ctx, baddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	ev, err := cl.SetDirty(ctx, []uint64{1, 2, 65, 130})
	if err != nil || len(ev) != 0 {
		t.Fatalf("SetDirty: ev=%v err=%v", ev, err)
	}
	vs, err := cl.IsDirty(ctx, []uint64{1, 3, 65})
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0] || vs[1] || !vs[2] {
		t.Fatalf("IsDirty = %v", vs)
	}
	region, err := cl.Region(ctx, []uint64{0})
	if err != nil || !sameU64(region, []uint64{1, 2}) {
		t.Fatalf("Region(0) = %v err=%v", region, err)
	}
	fl, err := cl.FlushRows(ctx, []uint64{64})
	if err != nil || !sameU64(fl, []uint64{65}) {
		t.Fatalf("FlushRows(64) = %v err=%v", fl, err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyKeys != 3 || st.Flushes != 1 {
		t.Fatalf("Stats = %+v", st)
	}

	// Pipelined burst: one write, answers in order.
	p := cl.Pipeline()
	p.SetDirty([]uint64{200, 201})
	p.IsDirty([]uint64{200, 999})
	p.FlushRows([]uint64{200})
	rs, err := p.Do(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("pipeline returned %d results", len(rs))
	}
	if len(rs[0].Keys) != 0 {
		t.Fatalf("pipelined set evicted %v", rs[0].Keys)
	}
	if !rs[1].Dirty[0] || rs[1].Dirty[1] {
		t.Fatalf("pipelined dirty = %v", rs[1].Dirty)
	}
	if !sameU64(rs[2].Keys, []uint64{200, 201}) {
		t.Fatalf("pipelined flush = %v", rs[2].Keys)
	}
}

// TestJSONErrors checks the error envelope and codes.
func TestJSONErrors(t *testing.T) {
	_, hs, _ := testServer(t)
	for _, tc := range []struct {
		path, body string
		wantStatus int
		wantCode   string
	}{
		{"/v1/set", "{not json", http.StatusBadRequest, dbiproto.CodeBadRequest},
		{"/v1/nope", "{}", http.StatusNotFound, dbiproto.CodeBadRequest},
		{"/v2/set", "{}", http.StatusNotFound, dbiproto.CodeBadVersion},
	} {
		resp, err := http.Post(hs.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.wantStatus)
		}
		var e dbiproto.ErrorResponse
		if err := jsonDecode(resp, &e); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if e.Error.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.path, e.Error.Code, tc.wantCode)
		}
	}
	// GET on a POST endpoint.
	resp, err := http.Get(hs.URL + "/v1/set")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /v1/set: status %d", resp.StatusCode)
	}
}

// TestBinaryBadVersion checks a wrong version byte gets bad_version
// and the connection survives.
func TestBinaryBadVersion(t *testing.T) {
	_, _, baddr := testServer(t)
	conn, err := net.Dial("tcp", baddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	wire := dbiproto.AppendFrame(nil, dbiproto.Frame{Version: 9, Op: dbiproto.OpPing, Seq: 42})
	// Follow with a valid ping to prove the stream stayed usable.
	wire = dbiproto.AppendFrame(wire, dbiproto.Frame{Version: 1, Op: dbiproto.OpPing, Seq: 43})
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	f, buf, err := dbiproto.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 42 {
		t.Fatalf("first response seq %d", f.Seq)
	}
	if _, err := dbiproto.DecodeStatus(f.Payload); err == nil {
		t.Fatal("version 9 accepted")
	} else if se, ok := err.(*dbiproto.StatusError); !ok || se.Code != dbiproto.CodeBadVersion {
		t.Fatalf("error %v, want bad_version", err)
	}
	f, _, err = dbiproto.ReadFrame(conn, buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 43 || f.Op != dbiproto.OpPing|dbiproto.RespBit {
		t.Fatalf("second response %+v", f)
	}
	if _, err := dbiproto.DecodeStatus(f.Payload); err != nil {
		t.Fatalf("valid ping after bad version: %v", err)
	}
}

// TestDifferentialJSONvsBinary drives two identically-configured
// servers with the same randomized operation stream, one over each
// protocol, and requires identical answers throughout — the
// acceptance criterion that the two protocols are one API.
func TestDifferentialJSONvsBinary(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("differential seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	_, hs, _ := testServer(t, dbi.WithRows(512), dbi.WithAssociativity(8))
	_, _, baddr := testServer(t, dbi.WithRows(512), dbi.WithAssociativity(8))
	ctx := ctxT(t)
	jc := dbiclient.NewJSON(hs.URL)
	bc, err := dbiclient.Dial(ctx, baddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	for i := 0; i < 400; i++ {
		n := 1 + rng.Intn(32)
		keys := make([]uint64, n)
		for j := range keys {
			keys[j] = uint64(rng.Intn(1 << 16))
		}
		switch rng.Intn(4) {
		case 0:
			a, err1 := jc.SetDirty(ctx, keys)
			b, err2 := bc.SetDirty(ctx, keys)
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d set: %v / %v", i, err1, err2)
			}
			if !sameU64(a, b) {
				t.Fatalf("op %d: set evictions diverge: json=%v binary=%v", i, a, b)
			}
		case 1:
			a, err1 := jc.IsDirty(ctx, keys)
			b, err2 := bc.IsDirty(ctx, keys)
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d dirty: %v / %v", i, err1, err2)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("op %d: IsDirty[%d] diverges for key %d", i, j, keys[j])
				}
			}
		case 2:
			a, err1 := jc.Region(ctx, keys[:1])
			b, err2 := bc.Region(ctx, keys[:1])
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d region: %v / %v", i, err1, err2)
			}
			if !sameU64(a, b) {
				t.Fatalf("op %d: region diverges: json=%v binary=%v", i, a, b)
			}
		case 3:
			a, err1 := jc.FlushRows(ctx, keys[:1])
			b, err2 := bc.FlushRows(ctx, keys[:1])
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d flush: %v / %v", i, err1, err2)
			}
			if !sameU64(a, b) {
				t.Fatalf("op %d: flush diverges: json=%v binary=%v", i, a, b)
			}
		}
	}
	a, err1 := jc.Stats(ctx)
	b, err2 := bc.Stats(ctx)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.DirtyKeys != b.DirtyKeys || a.Writes != b.Writes || a.Evictions != b.Evictions ||
		a.Flushes != b.Flushes || a.FlushedKeys != b.FlushedKeys {
		t.Fatalf("final stats diverge:\njson   %+v\nbinary %+v", a, b)
	}
}

// TestOpsplane checks /metrics renders the serve counters and
// /healthz answers.
func TestOpsPlane(t *testing.T) {
	_, hs, _ := testServer(t)
	cl := dbiclient.NewJSON(hs.URL)
	if _, err := cl.SetDirty(ctxT(t), []uint64{1}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"dbi_serve_json_requests_total 1",
		"dbi_serve_set_keys_total 1",
		"dbi_serve_dirty_keys 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, resp); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
}

func sameU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
