package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultFlightEvents is the per-lane ring capacity: enough to hold the
// recent history of a busy worker (cells plus pool decisions) without
// unbounded growth on week-long sweeps.
const DefaultFlightEvents = 4096

// FlightEvent is one recorded instant or span edge, in wall-clock
// microseconds. Ph follows the Chrome trace-event phases the recorder
// emits: 'B'/'E' bracket a cell on its worker lane (a panicked cell
// shows as an open span — exactly what a post-mortem wants), 'i' marks
// instants (pool decisions, sweep milestones).
type FlightEvent struct {
	WallUS int64
	Ph     byte
	Name   string
	Detail string
}

// lane is one ring of recent events, written by one worker (or the
// control plane) and drained by dumps. The mutex spans one append —
// cell-granularity writes, never inside a simulation.
type lane struct {
	mu      sync.Mutex
	ring    []FlightEvent
	next    int
	wrapped bool
}

func (l *lane) record(e FlightEvent) {
	l.mu.Lock()
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next, l.wrapped = 0, true
	}
	l.mu.Unlock()
}

// snapshot returns the lane's events oldest-first.
func (l *lane) snapshot() []FlightEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]FlightEvent(nil), l.ring[:l.next]...)
	}
	out := make([]FlightEvent, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// FlightRecorder keeps a bounded ring of recent engine-harness events
// per worker lane — cells starting and finishing, pool/fork scheduler
// decisions, sweep milestones — and renders them as Chrome trace-event
// JSON (load in Perfetto or chrome://tracing; lane = thread row). It is
// the ops plane's black box: always cheap enough to leave on, dumped on
// panic, on SIGQUIT, or on demand via /debug/flightrecord.
//
// Lane 0 is the control plane (sweep start/end); worker w records on
// lane w+1. All methods are safe for concurrent use.
type FlightRecorder struct {
	// DumpPath, when non-empty, is where WorkerPanic writes the ring
	// before the panic propagates.
	DumpPath string

	perLane int
	mu      sync.RWMutex
	lanes   map[int]*lane
}

// NewFlightRecorder builds a recorder holding up to perLane events per
// lane (0 means DefaultFlightEvents).
func NewFlightRecorder(perLane int) *FlightRecorder {
	if perLane <= 0 {
		perLane = DefaultFlightEvents
	}
	return &FlightRecorder{perLane: perLane, lanes: map[int]*lane{}}
}

func (f *FlightRecorder) lane(id int) *lane {
	f.mu.RLock()
	l := f.lanes[id]
	f.mu.RUnlock()
	if l != nil {
		return l
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if l = f.lanes[id]; l == nil {
		l = &lane{ring: make([]FlightEvent, f.perLane)}
		f.lanes[id] = l
	}
	return l
}

// workerLane maps a sweep worker index to its lane id; unattributed
// events (worker -1) land on the control lane.
func workerLane(worker int) int {
	if worker < 0 {
		return 0
	}
	return worker + 1
}

func (f *FlightRecorder) record(laneID int, ph byte, name, detail string) {
	f.lane(laneID).record(FlightEvent{
		WallUS: time.Now().UnixMicro(), Ph: ph, Name: name, Detail: detail,
	})
}

// Note records a control-lane instant — CLI milestones like "experiment
// fig6 start".
func (f *FlightRecorder) Note(name, detail string) { f.record(0, 'i', name, detail) }

// SweepStart..WorkerPanic implement sweep.Sink.

func (f *FlightRecorder) SweepStart(label string, workers, total int) {
	f.record(0, 'i', "sweep:"+label, fmt.Sprintf("%d cells on %d workers", total, workers))
}

func (f *FlightRecorder) SweepEnd(label string, done int) {
	f.record(0, 'i', "sweep-end:"+label, fmt.Sprintf("%d cells done", done))
}

func (f *FlightRecorder) CellStart(worker int, key string) {
	f.record(workerLane(worker), 'B', key, "")
}

func (f *FlightRecorder) CellEnd(worker int, key string, elapsed time.Duration, err error) {
	detail := ""
	if err != nil {
		detail = "error: " + err.Error()
	}
	f.record(workerLane(worker), 'E', key, detail)
}

// WorkerPanic records the crash instant and flushes the whole ring to
// DumpPath (best effort — the process is about to die).
func (f *FlightRecorder) WorkerPanic(worker int, key string, recovered any) {
	f.record(workerLane(worker), 'i', "panic:"+key, fmt.Sprint(recovered))
	if f.DumpPath != "" {
		if err := f.DumpFile(f.DumpPath); err == nil {
			fmt.Fprintf(os.Stderr, "obs: flight record -> %s\n", f.DumpPath)
		}
	}
}

// PoolEvent records one pool/fork scheduler decision on the worker's
// lane; it is the system.SetPoolEventHook target.
func (f *FlightRecorder) PoolEvent(worker int, kind, detail string) {
	f.record(workerLane(worker), 'i', "pool:"+kind, detail)
}

// traceEvent is the Chrome trace-event wire form.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the rings as a Chrome trace-event document: one
// thread row per lane (named via metadata events), wall-clock µs
// timestamps.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	f.mu.RLock()
	ids := make([]int, 0, len(f.lanes))
	for id := range f.lanes {
		ids = append(ids, id)
	}
	f.mu.RUnlock()
	sort.Ints(ids)

	events := make([]traceEvent, 0, 64)
	for _, id := range ids {
		name := "control"
		if id > 0 {
			name = fmt.Sprintf("worker %d", id-1)
		}
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": name},
		})
		for _, e := range f.lane(id).snapshot() {
			te := traceEvent{Name: e.Name, Cat: "sweep", Ph: string(e.Ph), TS: e.WallUS, PID: 1, TID: id}
			if e.Ph == 'i' {
				te.S = "t" // thread-scoped instant
			}
			if e.Detail != "" {
				te.Args = map[string]any{"detail": e.Detail}
			}
			events = append(events, te)
		}
	}
	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		TimeUnit    string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// DumpFile writes the trace JSON to path.
func (f *FlightRecorder) DumpFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := f.WriteJSON(file)
	if cerr := file.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
