package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dbisim/internal/stats"
	"dbisim/internal/sweep"
	"dbisim/internal/system"
	"dbisim/internal/telemetry"
)

// TestPrometheusExposition pins the text format: counters carry _total,
// gauges do not, histograms export cumulative le buckets ending at +Inf
// with _sum and _count, and names are mangled into the dbi_ namespace.
func TestPrometheusExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pool.resets", func() uint64 { return 7 })
	reg.Gauge("fork.adopt_stack_depth", func() float64 { return 3 })
	h := stats.NewHistogram(2) // values 0,1 plus overflow
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(9) // clamps into overflow
	reg.Histogram("dbi.dirty_at_eviction", h)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dbi_pool_resets_total counter\n",
		"dbi_pool_resets_total 7\n",
		"# TYPE dbi_fork_adopt_stack_depth gauge\n",
		"dbi_fork_adopt_stack_depth 3\n",
		"# TYPE dbi_dbi_dirty_at_eviction histogram\n",
		"dbi_dbi_dirty_at_eviction_bucket{le=\"0\"} 1\n",
		"dbi_dbi_dirty_at_eviction_bucket{le=\"1\"} 3\n",
		"dbi_dbi_dirty_at_eviction_bucket{le=\"+Inf\"} 4\n",
		"dbi_dbi_dirty_at_eviction_sum 11\n",
		"dbi_dbi_dirty_at_eviction_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestFlightRecorderRing pins ring semantics: a lane overwrites its
// oldest events, snapshots come back oldest-first, and the trace JSON
// is valid Chrome trace-event format with named lanes.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.PoolEvent(0, fmt.Sprintf("k%d", i), "")
	}
	f.SweepStart("fig6", 2, 10)

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("flight record is not valid JSON: %v", err)
	}
	var names []string
	laneNames := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			laneNames[e.TID] = e.Args["name"].(string)
			continue
		}
		if e.TID == 1 {
			names = append(names, e.Name)
		}
	}
	// Capacity 4: k0/k1 were overwritten, k2..k5 remain, oldest first.
	want := []string{"pool:k2", "pool:k3", "pool:k4", "pool:k5"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("worker lane events = %v, want %v", names, want)
	}
	if laneNames[0] != "control" || laneNames[1] != "worker 0" {
		t.Errorf("lane names = %v, want control / worker 0", laneNames)
	}
}

// TestTermLogInterleaving pins the satellite-3 fix: a log write through
// the TermLog erases the dangling progress line first and redraws it
// after, so the log line is never spliced into the progress text.
func TestTermLogInterleaving(t *testing.T) {
	var buf bytes.Buffer
	tl := NewTermLog(&buf)
	tl.SetProgress("[fig6] 3/10 cells")
	fmt.Fprintf(tl, "dbibench: note\n")
	out := buf.String()
	want := clearSeq + "[fig6] 3/10 cells" + clearSeq + "dbibench: note\n" + clearSeq + "[fig6] 3/10 cells"
	if out != want {
		t.Errorf("interleaving:\n got %q\nwant %q", out, want)
	}
	if !tl.Dirty() {
		t.Error("progress line not redrawn after the log write")
	}

	buf.Reset()
	tl.EndProgress("[fig6] 10/10 cells")
	if got := buf.String(); got != clearSeq+"[fig6] 10/10 cells\n" {
		t.Errorf("EndProgress wrote %q", got)
	}
	if tl.Dirty() {
		t.Error("EndProgress left the terminal dirty")
	}

	// With no progress line pending, Write is a plain passthrough.
	buf.Reset()
	fmt.Fprintf(tl, "plain\n")
	if got := buf.String(); got != "plain\n" {
		t.Errorf("passthrough wrote %q", got)
	}
	tl.ClearProgress() // idempotent on a clean terminal
	if buf.String() != "plain\n" {
		t.Error("ClearProgress wrote despite a clean terminal")
	}
}

// TestServerEndpoints boots a real server on an ephemeral port and
// walks the surface: /metrics serves the pool counters in exposition
// format, /sweep serves JSON (and reflects a live monitor snapshot),
// /debug/flightrecord serves a valid trace, and expvar answers.
func TestServerEndpoints(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		sweep.Live.Disable()
		system.SetPoolEventHook(nil)
	}()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, name := range []string{
		"dbi_pool_resets_total", "dbi_pool_rebuilds_total",
		"dbi_fork_ckpt_hits_total", "dbi_fork_ckpt_misses_total",
		"dbi_fork_machine_evictions_total", "dbi_fork_adopt_stack_depth",
		"dbi_fork_refused_overhang_total",
		"dbi_proc_cells_done_total", "dbi_proc_goroutines",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// Run a tiny monitored sweep so /sweep has something to show.
	cells := []sweep.Cell[int]{{
		Key: Key{},
		Run: func() (int, error) { return 1, nil },
	}}
	cells[0].Key.Experiment = "obs-test"
	if _, err := sweep.Run(cells, 1); err != nil {
		t.Fatal(err)
	}
	body, ctype := get("/sweep")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/sweep content type = %q", ctype)
	}
	var doc sweepDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/sweep is not valid JSON: %v\n%s", err, body)
	}
	if doc.Label != "obs-test" || doc.Done != 1 || doc.Total != 1 || doc.Active {
		t.Errorf("/sweep status = %+v, want obs-test 1/1 inactive", doc.Status)
	}

	flightBody, _ := get("/debug/flightrecord")
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(flightBody), &trace); err != nil {
		t.Fatalf("/debug/flightrecord is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/debug/flightrecord has no events after a monitored sweep")
	}
	if !strings.Contains(flightBody, "sweep:obs-test") {
		t.Error("flight record missing the sweep-start instant")
	}

	if vars, _ := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if idx, _ := get("/"); !strings.Contains(idx, "/metrics") {
		t.Error("index page does not link /metrics")
	}
}

// Key aliases sweep.Key for test brevity.
type Key = sweep.Key

// TestSweepStreamSSE checks one server-sent event frame arrives and is
// valid JSON.
func TestSweepStreamSSE(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		sweep.Live.Disable()
		system.SetPoolEventHook(nil)
	}()

	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/sweep?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	line := make([]byte, 64<<10)
	n, err := resp.Body.Read(line)
	if err != nil && n == 0 {
		t.Fatal(err)
	}
	frame := string(line[:n])
	if !strings.HasPrefix(frame, "data: ") {
		t.Fatalf("first SSE frame = %q", frame)
	}
	payload := strings.TrimPrefix(strings.Split(frame, "\n")[0], "data: ")
	var doc sweepDoc
	if err := json.Unmarshal([]byte(payload), &doc); err != nil {
		t.Fatalf("SSE payload is not valid JSON: %v\n%s", err, payload)
	}
}

// TestPrometheusHelpLines pins the metadata contract satellite: every
// exported family carries a # HELP line naming the owning subsystem,
// immediately preceding its # TYPE line, and family prefixes resolve
// to curated text rather than the generic fallback.
func TestPrometheusHelpLines(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pool.resets", func() uint64 { return 1 })
	reg.Counter("llc.reads", func() uint64 { return 2 })
	reg.Gauge("proc.goroutines", func() float64 { return 3 })
	telemetry.AttrTotals.RegisterMetrics(reg)
	h := stats.NewHistogram(2)
	h.Observe(1)
	reg.Histogram("dram.drain_burst", h)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	types := 0
	for i, l := range lines {
		if !strings.HasPrefix(l, "# TYPE ") {
			continue
		}
		types++
		name := strings.Fields(l)[2]
		if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP "+name+" ") {
			t.Errorf("family %s: # TYPE not preceded by its # HELP line", name)
		}
	}
	if types == 0 {
		t.Fatal("no # TYPE lines in exposition")
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dbi_pool_resets_total Simulator machine pool activity",
		"# HELP dbi_llc_reads_total Shared last-level cache activity",
		"# HELP dbi_proc_goroutines Host process runtime state",
		"# HELP dbi_dram_drain_burst DRAM controller command and queue activity",
		"# HELP dbi_attr_cpu_issue_total Attribution category charge",
		"# HELP dbi_attr_domain_dram_bus_total Attribution domain total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing curated help %q", want)
		}
	}
	if got := helpFor("unheard.of"); got != "Simulator metric unheard.of" {
		t.Errorf("generic fallback = %q", got)
	}
}

// TestSweepPoolDelta pins the per-sweep pool summary satellite: /sweep
// reports the pool counters' movement since the current sweep began
// (pool_sweep), not just the cumulative process totals, and the delta
// rebaselines at each new sweep.
func TestSweepPoolDelta(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		sweep.Live.Disable()
		system.SetPoolEventHook(nil)
	}()
	getDoc := func() sweepDoc {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + "/sweep")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc sweepDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	// Before any sweep: cumulative pool numbers only, no per-sweep block.
	if doc := getDoc(); doc.PoolSweep != nil {
		t.Errorf("pool_sweep present before any sweep: %+v", doc.PoolSweep)
	}

	// Each monitored sweep moves the process-wide pool counters as the
	// pools would; the per-sweep delta must cover exactly one sweep's
	// worth no matter how much history preceded it.
	runSweep := func(label string, hits, misses, resets uint64) {
		t.Helper()
		cells := []sweep.Cell[int]{{
			Key: Key{Experiment: label},
			Run: func() (int, error) {
				system.PoolStat.CkptHits.Add(hits)
				system.PoolStat.CkptMisses.Add(misses)
				system.PoolStat.Resets.Add(resets)
				return 1, nil
			},
		}}
		if _, err := sweep.Run(cells, 1); err != nil {
			t.Fatal(err)
		}
	}
	runSweep("first", 9, 1, 4)
	doc := getDoc()
	if doc.PoolSweep == nil {
		t.Fatal("pool_sweep absent after a monitored sweep")
	}
	if doc.PoolSweep.CkptHits != 9 || doc.PoolSweep.CkptMisses != 1 || doc.PoolSweep.Resets != 4 {
		t.Errorf("first sweep delta = %+v, want hits=9 misses=1 resets=4", doc.PoolSweep.PoolSnapshot)
	}
	if doc.PoolSweep.CkptHitRate != 0.9 {
		t.Errorf("ckpt_hit_rate = %v, want 0.9", doc.PoolSweep.CkptHitRate)
	}

	runSweep("second", 1, 3, 0)
	doc = getDoc()
	if doc.PoolSweep.CkptHits != 1 || doc.PoolSweep.CkptMisses != 3 || doc.PoolSweep.Resets != 0 {
		t.Errorf("second sweep delta = %+v, want rebaselined hits=1 misses=3 resets=0", doc.PoolSweep.PoolSnapshot)
	}
	if doc.PoolSweep.CkptHitRate != 0.25 {
		t.Errorf("ckpt_hit_rate = %v, want 0.25", doc.PoolSweep.CkptHitRate)
	}
	// Cumulative totals keep growing across sweeps.
	if doc.Pool.CkptHits < 10 {
		t.Errorf("cumulative ckpt_hits = %d, want >= 10", doc.Pool.CkptHits)
	}
}
