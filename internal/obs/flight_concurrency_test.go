package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"dbisim/internal/sweep"
	"dbisim/internal/system"
)

// TestFlightRecorderConcurrentDumps hammers WriteJSON from several
// goroutines while writers are actively recording on many lanes — the
// /debug/flightrecord-during-active-sweep shape, compressed. Run with
// -race (CI does): the assertions here are secondary to the detector.
func TestFlightRecorderConcurrentDumps(t *testing.T) {
	f := NewFlightRecorder(16)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.CellStart(w, fmt.Sprintf("cell%d", i))
				f.PoolEvent(w, "reset", "")
				f.CellEnd(w, fmt.Sprintf("cell%d", i), 0, nil)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := f.WriteJSON(&buf); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
				var doc struct {
					TraceEvents []json.RawMessage `json:"traceEvents"`
				}
				if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
					t.Errorf("dump %d is not valid JSON: %v", i, err)
					return
				}
			}
		}()
	}
	// Writers keep recording until every reader finished its dumps, so
	// the two sides genuinely overlap for the whole test.
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestFlightRecordEndpointDuringSweep exercises the real surface:
// concurrent GET /debug/flightrecord while a monitored sweep is
// actively running cells. Every response must be complete, valid
// Chrome-trace JSON.
func TestFlightRecordEndpointDuringSweep(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0", FlightCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		sweep.Live.Disable()
		system.SetPoolEventHook(nil)
	}()
	url := "http://" + srv.Addr() + "/debug/flightrecord"

	started := make(chan struct{})
	var once sync.Once
	cells := make([]sweep.Cell[int], 64)
	for i := range cells {
		cells[i] = sweep.Cell[int]{
			Key: Key{Experiment: "flight-race", Run: i},
			Run: func() (int, error) {
				once.Do(func() { close(started) })
				system.PoolStat.Resets.Add(1)
				return 1, nil
			},
		}
	}
	sweepDone := make(chan error, 1)
	go func() {
		_, err := sweep.Run(cells, 4)
		sweepDone <- err
	}()
	<-started

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("GET: status %d err %v", resp.StatusCode, err)
					return
				}
				var doc struct {
					TraceEvents []json.RawMessage `json:"traceEvents"`
				}
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Errorf("mid-sweep dump is not valid JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-sweepDone; err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecorderWraparoundDump pins dump correctness after the
// ring wraps: only the newest perLane events survive, rendered
// oldest-first, and every pre-wrap event is gone.
func TestFlightRecorderWraparoundDump(t *testing.T) {
	const cap = 8
	f := NewFlightRecorder(cap)
	for i := 0; i < 20; i++ {
		f.Note(fmt.Sprintf("e%02d", i), "")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range doc.TraceEvents {
		if len(e.Name) == 3 && e.Name[0] == 'e' {
			names = append(names, e.Name)
		}
	}
	if len(names) != cap {
		t.Fatalf("dump holds %d events %v, want the newest %d", len(names), names, cap)
	}
	for i, name := range names {
		if want := fmt.Sprintf("e%02d", 20-cap+i); name != want {
			t.Fatalf("position %d = %s, want %s (oldest-first, newest %d only): %v",
				i, name, want, cap, names)
		}
	}
}
