package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// promName mangles a registry metric name ("fork.ckpt_hits") into the
// Prometheus namespace ("dbi_fork_ckpt_hits"): the dbi_ prefix, dots to
// underscores, and any other illegal rune to an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("dbi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal, with NaN/Inf spelled out.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// helpPrefixes maps registry-name prefixes (pre-mangling, longest match
// wins) to the HELP text for that metric family. Families, not
// individual metrics: the registry's names are already self-describing,
// HELP says which subsystem owns them and in what units.
var helpPrefixes = []struct{ prefix, help string }{
	{"attr.domain.", "Attribution domain total (cycles or bytes) summed over measure windows"},
	{"attr.", "Attribution category charge summed over measure windows"},
	{"llc.port.", "Shared LLC tag-store port contention"},
	{"llc.", "Shared last-level cache activity"},
	{"dbi.", "Dirty-Block Index structure activity"},
	{"dram.", "DRAM controller command and queue activity"},
	{"cpu", "Per-core pipeline activity (simulated)"},
	{"fork.", "Checkpoint-fork scheduler activity"},
	{"pool.", "Simulator machine pool activity"},
	{"proc.", "Host process runtime state"},
	{"self.", "Simulator self-throughput on the host"},
	{"sweep.", "Sweep scheduler progress"},
}

// helpFor returns the HELP line text for a registry metric name.
func helpFor(name string) string {
	for _, e := range helpPrefixes {
		if strings.HasPrefix(name, e.prefix) {
			return e.help
		}
	}
	return "Simulator metric " + name
}

// WritePrometheus renders every probe in reg in the Prometheus text
// exposition format (version 0.0.4): every family gets # HELP and
// # TYPE lines, counters gain the _total suffix, histograms export
// cumulative le-labeled buckets (bucket index i holds samples with
// value exactly i, the final bucket is the clamp-overflow, rendered
// only as +Inf) plus _sum and _count.
//
// The registry's probes are read live with no locking — see the
// concurrency caveat on Registry.EachScalar. Returns the first write
// error, if any.
func WritePrometheus(w io.Writer, reg *telemetry.Registry) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	reg.EachScalar(func(name, kind string, v float64) {
		pn := promName(name)
		if kind == telemetry.KindCounter {
			pn += "_total"
		}
		pf("# HELP %s %s\n# TYPE %s %s\n%s %s\n", pn, helpFor(name), pn, kind, pn, promFloat(v))
	})
	reg.EachHistogram(func(name string, h *stats.Histogram) {
		pn := promName(name)
		pf("# HELP %s %s\n# TYPE %s histogram\n", pn, helpFor(name), pn)
		buckets := h.Buckets()
		var cum uint64
		for i, c := range buckets {
			cum += c
			if i == len(buckets)-1 {
				// The clamp bucket holds everything >= its index; its
				// exact value is unknowable, so it only closes +Inf.
				pf("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
				break
			}
			pf("%s_bucket{le=\"%d\"} %d\n", pn, i, cum)
		}
		pf("%s_sum %d\n%s_count %d\n", pn, h.Sum(), pn, h.Count())
	})
	return err
}
