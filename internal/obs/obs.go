// Package obs is the opt-in live ops plane: an HTTP debug server
// exposing the process's telemetry registry in Prometheus text format,
// live sweep progress (JSON and SSE), the standard expvar and pprof
// surfaces, and a flight recorder — a bounded ring of recent harness
// events dumped as Chrome trace JSON on panic, on SIGQUIT, or on
// demand.
//
// Everything here is off by default and opt-in per process (the CLIs'
// -listen flag). The design constraint mirrors the telemetry package's:
// zero cost when disabled. Starting a server enables three cheap,
// always-race-safe feeds — the process-wide pool/fork counters (atomic
// adds that are unconditionally on), the sweep monitor's lock-free
// status slots, and the flight recorder's per-lane rings — none of
// which touch a simulation's hot path or perturb its Results.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"dbisim/internal/perfstat"
	"dbisim/internal/sweep"
	"dbisim/internal/system"
	"dbisim/internal/telemetry"
)

// Config parameterizes Start.
type Config struct {
	// Addr is the listen address ("127.0.0.1:9187", ":0" for an
	// ephemeral port).
	Addr string
	// FlightPath is where the flight recorder dumps on panic or
	// SIGQUIT ("" disables the on-disk dump; /debug/flightrecord still
	// serves the ring).
	FlightPath string
	// FlightCap bounds events per flight-recorder lane (0 means
	// DefaultFlightEvents).
	FlightCap int
	// Register, when non-nil, adds caller-specific probes to the served
	// registry before the server starts (e.g. dbisim registering its
	// System's component counters). Probes must tolerate concurrent
	// reads — see telemetry.Registry.EachScalar.
	Register func(*telemetry.Registry)
}

// Server is a running ops server. Close shuts it down; the feeds it
// enabled (sweep monitor, pool event hook) stay enabled — they are
// harmless without a consumer and the CLIs run one server per process.
type Server struct {
	Registry *telemetry.Registry
	Flight   *FlightRecorder

	sweepSink *poolBaseliner
	ln        net.Listener
	srv       *http.Server
	stop      chan os.Signal
}

// Start builds the ops plane and serves it on cfg.Addr: the shared
// registry (pool/fork counters, process gauges, plus cfg.Register's
// probes) at /metrics, sweep status at /sweep, the flight recorder at
// /debug/flightrecord, and the stdlib expvar/pprof surfaces at their
// standard paths. It wires the flight recorder into the sweep monitor
// and the pool event hook, and installs a SIGQUIT handler that dumps
// the flight record before the runtime's usual goroutine dump.
func Start(cfg Config) (*Server, error) {
	reg := telemetry.NewRegistry()
	system.RegisterPoolMetrics(reg)
	telemetry.AttrTotals.RegisterMetrics(reg)
	registerProcessMetrics(reg)
	if cfg.Register != nil {
		cfg.Register(reg)
	}

	flight := NewFlightRecorder(cfg.FlightCap)
	flight.DumpPath = cfg.FlightPath
	sink := &poolBaseliner{Sink: flight}
	sweep.Live.Enable(sink)
	system.SetPoolEventHook(flight.PoolEvent)

	s := &Server{Registry: reg, Flight: flight, sweepSink: sink}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/debug/flightrecord", s.handleFlight)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)

	if cfg.FlightPath != "" {
		s.stop = make(chan os.Signal, 1)
		signal.Notify(s.stop, syscall.SIGQUIT)
		go func() {
			for range s.stop {
				if err := flight.DumpFile(cfg.FlightPath); err == nil {
					fmt.Fprintf(os.Stderr, "obs: flight record -> %s\n", cfg.FlightPath)
				}
				// Hand SIGQUIT back to the runtime for the usual
				// goroutine dump and exit.
				signal.Reset(syscall.SIGQUIT)
				syscall.Kill(os.Getpid(), syscall.SIGQUIT)
			}
		}()
	}
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving.
func (s *Server) Close() error {
	if s.stop != nil {
		signal.Stop(s.stop)
		close(s.stop)
	}
	return s.srv.Close()
}

// registerProcessMetrics adds host-process gauges: completed cells,
// goroutines, and heap occupancy. ReadMemStats is a brief
// stop-the-world, acceptable at scrape frequency.
func registerProcessMetrics(reg *telemetry.Registry) {
	reg.Counter("proc.cells_done", perfstat.CellCount)
	reg.Gauge("proc.goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.Gauge("proc.heap_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.Counter("proc.total_alloc_bytes", func() uint64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.TotalAlloc
	})
	reg.Counter("proc.gc_cycles", func() uint64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return uint64(m.NumGC)
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><body><h1>dbisim ops plane</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/sweep">/sweep</a> — live sweep status (JSON; ?stream=1 for SSE)</li>
<li><a href="/debug/flightrecord">/debug/flightrecord</a> — Chrome trace of recent harness events</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — pprof</li>
</ul></body></html>
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.Registry)
}

// sweepDoc is the /sweep response: the monitor's snapshot plus derived
// timing and the cumulative pool/fork counters.
type sweepDoc struct {
	sweep.Status
	ElapsedSec float64             `json:"elapsed_sec"`
	ETASec     float64             `json:"eta_sec,omitempty"`
	Pool       system.PoolSnapshot `json:"pool"`
	// PoolSweep is the pool's activity since the current sweep began
	// (absent before the first sweep): how its cells were satisfied —
	// forked from checkpoints (ckpt_hits), reset, or rebuilt — and the
	// resulting checkpoint hit rate.
	PoolSweep *poolSweepDoc `json:"pool_sweep,omitempty"`
}

type poolSweepDoc struct {
	system.PoolSnapshot
	CkptHitRate float64 `json:"ckpt_hit_rate"`
}

// poolBaseliner wraps the sweep sink (the flight recorder) to also
// capture the pool counters at each SweepStart, giving /sweep its
// per-sweep delta. Callbacks fire from worker goroutines; the baseline
// is a single atomic pointer swap.
type poolBaseliner struct {
	sweep.Sink
	base atomic.Pointer[system.PoolSnapshot]
}

func (p *poolBaseliner) SweepStart(label string, workers, total int) {
	snap := system.PoolStat.Snapshot()
	p.base.Store(&snap)
	p.Sink.SweepStart(label, workers, total)
}

func (s *Server) currentSweepDoc() (sweepDoc, bool) {
	st, ok := sweep.Live.Snapshot()
	if !ok {
		return sweepDoc{Pool: system.PoolStat.Snapshot()}, false
	}
	doc := sweepDoc{Status: st, Pool: system.PoolStat.Snapshot()}
	if base := s.sweepSink.base.Load(); base != nil {
		delta := doc.Pool.Sub(*base)
		doc.PoolSweep = &poolSweepDoc{PoolSnapshot: delta, CkptHitRate: delta.CkptHitRate()}
	}
	elapsed := time.Since(time.Unix(0, st.StartNS))
	doc.ElapsedSec = elapsed.Seconds()
	if st.Active && st.Done > 0 && st.Done < st.Total {
		doc.ETASec = (elapsed.Seconds() / float64(st.Done)) * float64(st.Total-st.Done)
	}
	return doc, true
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") != "" {
		s.streamSweep(w, r)
		return
	}
	doc, _ := s.currentSweepDoc()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// streamSweep pushes the sweep status as server-sent events once a
// second until the client goes away.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		doc, _ := s.currentSweepDoc()
		b, err := json.Marshal(doc)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.Flight.WriteJSON(w)
}
