package obs

import (
	"fmt"
	"io"
	"sync"
)

// clearSeq erases the current terminal line: carriage return plus the
// ANSI erase-line sequence.
const clearSeq = "\r\x1b[2K"

// TermLog serializes a terminal's two output streams — transient
// progress lines (redrawn in place) and durable log lines — through one
// writer, so a dangling progress line is always erased before a log
// line lands and redrawn after it. Routing every stderr write through
// the TermLog is what keeps TTY clearing sequences from interleaving
// into other writers mid-line (the -progress vs -json corruption when
// both streams share a terminal).
//
// All methods are safe for concurrent use; the zero value is unusable,
// build one with NewTermLog.
type TermLog struct {
	mu       sync.Mutex
	w        io.Writer
	progress string // current transient line ("" when none)
	dirty    bool   // transient line currently displayed
}

// NewTermLog wraps w (normally os.Stderr).
func NewTermLog(w io.Writer) *TermLog { return &TermLog{w: w} }

// SetProgress draws (or redraws) the transient progress line.
func (t *TermLog) SetProgress(line string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.progress = line
	fmt.Fprintf(t.w, "%s%s", clearSeq, line)
	t.dirty = true
}

// EndProgress replaces the transient line with a final durable one —
// the sweep's "10/10 cells" — leaving the terminal clean for whatever
// follows.
func (t *TermLog) EndProgress(line string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.progress = ""
	fmt.Fprintf(t.w, "%s%s\n", clearSeq, line)
	t.dirty = false
}

// ClearProgress erases a dangling transient line, if any, and forgets
// it.
func (t *TermLog) ClearProgress() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.progress = ""
	if t.dirty {
		io.WriteString(t.w, clearSeq)
		t.dirty = false
	}
}

// Dirty reports whether a transient line is currently displayed.
func (t *TermLog) Dirty() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dirty
}

// Write emits a durable log payload: the transient line is erased
// first and redrawn after, so log lines never splice into a progress
// line (io.Writer, for fmt.Fprintf and log.SetOutput).
func (t *TermLog) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirty {
		io.WriteString(t.w, clearSeq)
		t.dirty = false
	}
	n, err := t.w.Write(p)
	if err == nil && t.progress != "" {
		fmt.Fprintf(t.w, "%s%s", clearSeq, t.progress)
		t.dirty = true
	}
	return n, err
}
