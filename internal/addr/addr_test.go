package addr

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := Default()
	if g.BlockSize != 64 || g.RowSize != 8192 || g.NumBanks != 8 {
		t.Fatalf("unexpected default geometry: %v", g)
	}
	if got := g.BlocksPerRow(); got != 128 {
		t.Fatalf("BlocksPerRow = %d, want 128", got)
	}
}

func TestNewGeometryErrors(t *testing.T) {
	cases := []struct {
		name              string
		block, row, banks uint64
	}{
		{"zero block", 0, 8192, 8},
		{"non-pow2 block", 48, 8192, 8},
		{"zero row", 64, 0, 8},
		{"non-pow2 row", 64, 3000, 8},
		{"zero banks", 64, 8192, 0},
		{"non-pow2 banks", 64, 8192, 6},
		{"row smaller than block", 128, 64, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewGeometry(c.block, c.row, c.banks); err == nil {
				t.Fatalf("NewGeometry(%d,%d,%d) succeeded, want error", c.block, c.row, c.banks)
			}
		})
	}
}

func TestBlockRowMapping(t *testing.T) {
	g := Default()
	a := Addr(0x12345678)
	b := g.BlockOf(a)
	if got := g.AddrOf(b); got != a&^63 {
		t.Fatalf("AddrOf(BlockOf(a)) = %#x, want %#x", got, a&^63)
	}
	if g.RowOf(b) != g.RowOfAddr(a) {
		t.Fatalf("RowOf(block) %d != RowOfAddr(addr) %d", g.RowOf(b), g.RowOfAddr(a))
	}
}

func TestColumnAndReconstruction(t *testing.T) {
	g := Default()
	r := RowID(1234)
	for col := 0; col < g.BlocksPerRow(); col += 13 {
		b := g.BlockInRow(r, col)
		if g.RowOf(b) != r {
			t.Fatalf("RowOf(BlockInRow(%d,%d)) = %d, want %d", r, col, g.RowOf(b), r)
		}
		if g.ColumnOf(b) != col {
			t.Fatalf("ColumnOf = %d, want %d", g.ColumnOf(b), col)
		}
	}
}

func TestBankInterleaving(t *testing.T) {
	g := Default()
	// Consecutive rows must land in consecutive banks, wrapping at 8.
	for r := RowID(0); r < 32; r++ {
		want := int(r) % 8
		if got := g.BankOf(r); got != want {
			t.Fatalf("BankOf(%d) = %d, want %d", r, got, want)
		}
	}
	if g.RowInBank(17) != 2 {
		t.Fatalf("RowInBank(17) = %d, want 2", g.RowInBank(17))
	}
}

// Property: block -> (row, column) -> block round-trips for any address.
func TestQuickRoundTrip(t *testing.T) {
	g := Default()
	f := func(raw uint64) bool {
		b := BlockAddr(raw % (1 << 40))
		return g.BlockInRow(g.RowOf(b), g.ColumnOf(b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: two blocks share a DRAM row iff their block addresses agree
// above the column bits.
func TestQuickSameRow(t *testing.T) {
	g := Default()
	f := func(x, y uint64) bool {
		bx, by := BlockAddr(x%(1<<40)), BlockAddr(y%(1<<40))
		same := g.RowOf(bx) == g.RowOf(by)
		want := bx>>7 == by>>7
		return same == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonDefaultGeometry(t *testing.T) {
	g, err := NewGeometry(64, 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlocksPerRow() != 64 {
		t.Fatalf("BlocksPerRow = %d, want 64", g.BlocksPerRow())
	}
	b := BlockAddr(64*5 + 3)
	if g.RowOf(b) != 5 {
		t.Fatalf("RowOf = %d, want 5", g.RowOf(b))
	}
	if g.ColumnOf(b) != 3 {
		t.Fatalf("ColumnOf = %d, want 3", g.ColumnOf(b))
	}
	if g.BankOf(21) != 5 {
		t.Fatalf("BankOf(21) = %d, want 5", g.BankOf(21))
	}
}
