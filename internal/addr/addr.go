// Package addr defines the physical address geometry shared by every
// component of the simulator: cache blocks, DRAM rows, banks and the
// mappings between them.
//
// The simulated machine uses the layout from Table 1 of the DBI paper:
// 64-byte cache blocks and 8KB DRAM rows (128 blocks per row) spread over
// 8 banks with row interleaving, i.e. consecutive DRAM rows map to
// consecutive banks.
package addr

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// BlockAddr identifies one cache-block-sized region of physical memory
// (a physical address with the block offset stripped).
type BlockAddr uint64

// RowID identifies one DRAM row across all banks. Row r lives in bank
// r % NumBanks (row interleaving).
type RowID uint64

// Geometry describes the address layout of the machine.
//
// The zero value is not useful; use NewGeometry or Default.
type Geometry struct {
	BlockSize     uint64 // bytes per cache block (power of two)
	RowSize       uint64 // bytes per DRAM row (power of two)
	NumBanks      uint64 // DRAM banks (power of two)
	blockShift    uint   // log2(BlockSize)
	rowShift      uint   // log2(RowSize)
	blocksPerRow  uint64
	blockRowShift uint // log2(blocksPerRow)
}

// Default returns the paper's geometry: 64B blocks, 8KB rows, 8 banks.
func Default() Geometry {
	g, err := NewGeometry(64, 8192, 8)
	if err != nil {
		panic(err) // statically correct parameters
	}
	return g
}

// NewGeometry validates the parameters and returns a Geometry.
// All three parameters must be powers of two and RowSize must be a
// multiple of BlockSize.
func NewGeometry(blockSize, rowSize, numBanks uint64) (Geometry, error) {
	switch {
	case blockSize == 0 || blockSize&(blockSize-1) != 0:
		return Geometry{}, fmt.Errorf("addr: block size %d is not a power of two", blockSize)
	case rowSize == 0 || rowSize&(rowSize-1) != 0:
		return Geometry{}, fmt.Errorf("addr: row size %d is not a power of two", rowSize)
	case numBanks == 0 || numBanks&(numBanks-1) != 0:
		return Geometry{}, fmt.Errorf("addr: bank count %d is not a power of two", numBanks)
	case rowSize < blockSize:
		return Geometry{}, fmt.Errorf("addr: row size %d smaller than block size %d", rowSize, blockSize)
	}
	g := Geometry{
		BlockSize:    blockSize,
		RowSize:      rowSize,
		NumBanks:     numBanks,
		blocksPerRow: rowSize / blockSize,
	}
	g.blockShift = log2(blockSize)
	g.rowShift = log2(rowSize)
	g.blockRowShift = log2(g.blocksPerRow)
	return g, nil
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// BlocksPerRow reports how many cache blocks one DRAM row holds.
func (g Geometry) BlocksPerRow() int { return int(g.blocksPerRow) }

// BlockOf strips the block offset from a physical address.
func (g Geometry) BlockOf(a Addr) BlockAddr { return BlockAddr(uint64(a) >> g.blockShift) }

// AddrOf returns the base physical address of a block.
func (g Geometry) AddrOf(b BlockAddr) Addr { return Addr(uint64(b) << g.blockShift) }

// RowOf returns the DRAM row containing a block.
func (g Geometry) RowOf(b BlockAddr) RowID { return RowID(uint64(b) >> g.blockRowShift) }

// RowOfAddr returns the DRAM row containing a physical address.
func (g Geometry) RowOfAddr(a Addr) RowID { return RowID(uint64(a) >> g.rowShift) }

// ColumnOf returns the block's index within its DRAM row, in
// [0, BlocksPerRow).
func (g Geometry) ColumnOf(b BlockAddr) int {
	return int(uint64(b) & (g.blocksPerRow - 1))
}

// BankOf returns the DRAM bank a row maps to under row interleaving.
func (g Geometry) BankOf(r RowID) int { return int(uint64(r) & (g.NumBanks - 1)) }

// RowInBank returns the row index within its bank.
func (g Geometry) RowInBank(r RowID) uint64 { return uint64(r) / g.NumBanks }

// BlockInRow reconstructs the block address of column col in row r.
func (g Geometry) BlockInRow(r RowID, col int) BlockAddr {
	return BlockAddr(uint64(r)<<g.blockRowShift | uint64(col))
}

// String implements fmt.Stringer for diagnostics.
func (g Geometry) String() string {
	return fmt.Sprintf("geometry{block=%dB row=%dB banks=%d blocks/row=%d}",
		g.BlockSize, g.RowSize, g.NumBanks, g.blocksPerRow)
}
