package coherence

import (
	"testing"
	"testing/quick"
)

func allStates() []State {
	return []State{Invalid, Shared, Exclusive, Owned, Modified}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	for _, s := range allStates() {
		p, dirty := Split(s)
		if got := Join(p, dirty); got != s {
			t.Fatalf("Join(Split(%v)) = %v", s, got)
		}
	}
}

func TestSplitDirtyConsistency(t *testing.T) {
	// The DBI bit must equal the full state's dirtiness — the defining
	// property of the Section-2.3 encoding.
	for _, s := range allStates() {
		_, dirty := Split(s)
		if dirty != s.Dirty() {
			t.Fatalf("%v: split dirty %v != state dirty %v", s, dirty, s.Dirty())
		}
	}
}

func TestPairStrings(t *testing.T) {
	if PairShared.String() != "(O,S)" || PairExclusive.String() != "(M,E)" || PairInvalid.String() != "(I)" {
		t.Fatal("pair strings wrong")
	}
	if Modified.String() != "M" || Owned.String() != "O" {
		t.Fatal("state strings wrong")
	}
	if LocalWrite.String() != "LocalWrite" {
		t.Fatal("event string wrong")
	}
}

func TestTransitions(t *testing.T) {
	cases := []struct {
		s    State
		e    Event
		next State
		wb   bool
		sup  bool
		excl bool
	}{
		{Exclusive, LocalWrite, Modified, false, false, false},
		{Shared, LocalWrite, Modified, false, false, true},
		{Owned, LocalWrite, Modified, false, false, true},
		{Modified, LocalWrite, Modified, false, false, false},
		{Modified, RemoteRead, Owned, false, true, false},
		{Owned, RemoteRead, Owned, false, true, false},
		{Exclusive, RemoteRead, Shared, false, true, false},
		{Shared, RemoteRead, Shared, false, false, false},
		{Modified, RemoteWrite, Invalid, false, true, false},
		{Owned, RemoteWrite, Invalid, false, true, false},
		{Shared, RemoteWrite, Invalid, false, false, false},
		{Exclusive, RemoteWrite, Invalid, false, false, false},
		{Modified, Evict, Invalid, true, false, false},
		{Owned, Evict, Invalid, true, false, false},
		{Exclusive, Evict, Invalid, false, false, false},
		{Shared, Evict, Invalid, false, false, false},
		{Shared, LocalRead, Shared, false, false, false},
		{Modified, LocalRead, Modified, false, false, false},
	}
	for _, c := range cases {
		got := Transition(c.s, c.e)
		if got.Next != c.next || got.WritebackToMemory != c.wb ||
			got.SupplyData != c.sup || got.FetchExclusive != c.excl {
			t.Fatalf("Transition(%v, %v) = %+v, want next=%v wb=%v sup=%v excl=%v",
				c.s, c.e, got, c.next, c.wb, c.sup, c.excl)
		}
	}
}

func TestLocalAccessOfInvalidPanics(t *testing.T) {
	for _, e := range []Event{LocalRead, LocalWrite} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v on Invalid did not panic", e)
				}
			}()
			Transition(Invalid, e)
		}()
	}
}

// Property: only dirty states ever require a memory writeback, and
// writebacks happen exactly when a dirty block is destroyed by eviction.
func TestQuickWritebackOnlyFromDirty(t *testing.T) {
	f := func(sRaw, eRaw uint8) bool {
		s := State(sRaw % 5)
		e := Event(eRaw % 5)
		if s == Invalid && (e == LocalRead || e == LocalWrite) {
			return true // excluded by contract
		}
		out := Transition(s, e)
		if out.WritebackToMemory && !s.Dirty() {
			return false
		}
		if e == Evict && s.Dirty() && !out.WritebackToMemory {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// mapTracker is a trivial DirtyTracker.
type mapTracker map[uint64]bool

func (m mapTracker) IsDirty(b uint64) bool { return m[b] }
func (m mapTracker) SetDirty(b uint64)     { m[b] = true }
func (m mapTracker) ClearDirty(b uint64)   { delete(m, b) }

func TestSplitDirectoryMatchesDirectStateMachine(t *testing.T) {
	// Run the same event sequence through (a) a plain full-state machine
	// and (b) the split directory with the dirty bit externalized; the
	// observable states and outcomes must be identical — the paper's
	// "seamlessly adapted" claim.
	seq := []Event{
		LocalWrite, RemoteRead, LocalRead, LocalWrite, RemoteWrite,
	}
	dir := NewSplitDirectory(mapTracker{})
	const block = 42
	dir.SetState(block, Exclusive) // fill
	plain := Exclusive
	for i, e := range seq {
		if plain == Invalid {
			dir.SetState(block, Exclusive)
			plain = Exclusive
		}
		want := Transition(plain, e)
		got := dir.Apply(block, e)
		if got != want {
			t.Fatalf("step %d (%v): split %+v != plain %+v", i, e, got, want)
		}
		plain = want.Next
		if dir.StateOf(block) != plain {
			t.Fatalf("step %d: directory state %v != %v", i, dir.StateOf(block), plain)
		}
	}
}

// Property: for any event sequence, the split directory's state always
// equals the plain state machine's state.
func TestQuickSplitDirectoryEquivalence(t *testing.T) {
	f := func(events []uint8) bool {
		tracker := mapTracker{}
		dir := NewSplitDirectory(tracker)
		const block = 7
		dir.SetState(block, Exclusive)
		plain := Exclusive
		for _, raw := range events {
			e := Event(raw % 5)
			if plain == Invalid {
				dir.SetState(block, Shared)
				plain = Shared
			}
			want := Transition(plain, e)
			got := dir.Apply(block, e)
			if got != want {
				return false
			}
			plain = want.Next
			if dir.StateOf(block) != plain {
				return false
			}
			// Invariant: tracker dirty iff state dirty.
			if tracker.IsDirty(block) != plain.Dirty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetStateInvalidRemovesEntry(t *testing.T) {
	tracker := mapTracker{}
	dir := NewSplitDirectory(tracker)
	dir.SetState(1, Modified)
	if dir.StateOf(1) != Modified {
		t.Fatal("state not stored")
	}
	if !tracker.IsDirty(1) {
		t.Fatal("dirty bit not set in tracker")
	}
	dir.SetState(1, Invalid)
	if dir.StateOf(1) != Invalid {
		t.Fatal("state not removed")
	}
	if tracker.IsDirty(1) {
		t.Fatal("dirty bit not cleared")
	}
}
