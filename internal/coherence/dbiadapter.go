package coherence

import (
	"dbisim/internal/addr"
	"dbisim/internal/dbi"
)

// DBIAdapter plugs a real Dirty-Block Index in as the DirtyTracker of a
// SplitDirectory, completing the Section-2.3 integration: coherence
// states live in the tag store as pairs, dirtiness lives in the DBI, and
// DBI evictions surface through OnEviction so the owner can write the
// displaced blocks back (their states simultaneously lower from the
// dirty half of each pair to the clean half, e.g. M→E, O→S).
type DBIAdapter struct {
	D *dbi.DBI
	// OnEviction receives DBI evictions caused by SetDirty; the listed
	// blocks must be written back to memory.
	OnEviction func(dbi.Eviction)
}

// IsDirty implements DirtyTracker.
func (a *DBIAdapter) IsDirty(b uint64) bool {
	return a.D.IsDirty(addr.BlockAddr(b))
}

// SetDirty implements DirtyTracker, surfacing any DBI eviction.
func (a *DBIAdapter) SetDirty(b uint64) {
	ev, evicted := a.D.SetDirty(addr.BlockAddr(b))
	if evicted && a.OnEviction != nil {
		a.OnEviction(ev)
	}
}

// ClearDirty implements DirtyTracker.
func (a *DBIAdapter) ClearDirty(b uint64) {
	a.D.ClearDirty(addr.BlockAddr(b))
}
