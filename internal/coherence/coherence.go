// Package coherence implements the cache-coherence adaptation of
// Section 2.3 of the DBI paper. Protocols like MESI and MOESI encode the
// dirty status of a block implicitly in the coherence state (M and O are
// the dirty states). To move dirty tracking into the DBI, the paper
// splits the state space into pairs — each pair a dirty state and its
// non-dirty twin — and stores one bit per block (in the DBI) to select
// within the pair:
//
//	MOESI: (M, E)  (O, S)  (I)
//	MESI:  (M, E)  (S)     (I)
//
// The tag store keeps only the pair identifier (the non-dirty half); the
// DBI bit lifts it to the dirty half. This package provides the state
// encoding, the lift/lower maps, and a transition table whose dirty-bit
// side effects are expressed as DBI operations, so an LLC directory can
// adopt the split without changing protocol behaviour.
package coherence

import "fmt"

// State is a full MOESI coherence state.
type State uint8

const (
	// Invalid: the block is not present.
	Invalid State = iota
	// Shared: clean, possibly in other caches.
	Shared
	// Exclusive: clean, only copy.
	Exclusive
	// Owned: dirty, shared with other caches (responsible for writeback).
	Owned
	// Modified: dirty, only copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether the full state implies a dirty block.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Pair is the state stored in the tag entry under the DBI split: the
// non-dirty representative of each (dirty, non-dirty) pair.
type Pair uint8

const (
	// PairInvalid is the (I) singleton.
	PairInvalid Pair = iota
	// PairShared is the (O, S) pair: S in the tag, O when the DBI bit is
	// set.
	PairShared
	// PairExclusive is the (M, E) pair: E in the tag, M when the DBI bit
	// is set.
	PairExclusive
)

func (p Pair) String() string {
	switch p {
	case PairInvalid:
		return "(I)"
	case PairShared:
		return "(O,S)"
	case PairExclusive:
		return "(M,E)"
	}
	return fmt.Sprintf("Pair(%d)", uint8(p))
}

// Split decomposes a full state into its tag-store pair and DBI dirty
// bit (Section 2.3's encoding).
func Split(s State) (Pair, bool) {
	switch s {
	case Invalid:
		return PairInvalid, false
	case Shared:
		return PairShared, false
	case Owned:
		return PairShared, true
	case Exclusive:
		return PairExclusive, false
	case Modified:
		return PairExclusive, true
	}
	return PairInvalid, false
}

// Join recomposes the full state from the tag-store pair and the DBI
// dirty bit.
func Join(p Pair, dirty bool) State {
	switch p {
	case PairInvalid:
		return Invalid
	case PairShared:
		if dirty {
			return Owned
		}
		return Shared
	case PairExclusive:
		if dirty {
			return Modified
		}
		return Exclusive
	}
	return Invalid
}

// Event is a coherence input at one cache.
type Event uint8

const (
	// LocalRead: this cache's core reads the block.
	LocalRead Event = iota
	// LocalWrite: this cache's core writes the block.
	LocalWrite
	// RemoteRead: another cache reads (snooped BusRd).
	RemoteRead
	// RemoteWrite: another cache writes (snooped BusRdX/Invalidate).
	RemoteWrite
	// Evict: the block leaves this cache.
	Evict
)

func (e Event) String() string {
	switch e {
	case LocalRead:
		return "LocalRead"
	case LocalWrite:
		return "LocalWrite"
	case RemoteRead:
		return "RemoteRead"
	case RemoteWrite:
		return "RemoteWrite"
	case Evict:
		return "Evict"
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Outcome describes a transition's result: the next state plus the
// actions the cache must take.
type Outcome struct {
	Next State
	// WritebackToMemory: the block's data must reach main memory (the
	// dirty copy is being destroyed).
	WritebackToMemory bool
	// SupplyData: this cache must forward the block to the requester.
	SupplyData bool
	// FetchExclusive: acquire ownership before completing (BusRdX).
	FetchExclusive bool
}

// Transition is the MOESI transition function. It panics on an
// impossible input (reading or writing an Invalid block locally is a
// fill, not a transition — model fills as Join(PairExclusive/Shared,...)
// at insertion).
func Transition(s State, e Event) Outcome {
	switch e {
	case LocalRead:
		if s == Invalid {
			panic("coherence: local read of invalid block; fills are not transitions")
		}
		return Outcome{Next: s}
	case LocalWrite:
		switch s {
		case Invalid:
			panic("coherence: local write of invalid block; fills are not transitions")
		case Modified:
			return Outcome{Next: Modified}
		case Exclusive:
			return Outcome{Next: Modified}
		case Owned, Shared:
			// Must invalidate other copies first.
			return Outcome{Next: Modified, FetchExclusive: true}
		}
	case RemoteRead:
		switch s {
		case Modified:
			// Supply data, keep the dirty copy as Owned.
			return Outcome{Next: Owned, SupplyData: true}
		case Owned:
			return Outcome{Next: Owned, SupplyData: true}
		case Exclusive:
			return Outcome{Next: Shared, SupplyData: true}
		case Shared, Invalid:
			return Outcome{Next: s}
		}
	case RemoteWrite:
		switch s {
		case Modified, Owned:
			// The dirty copy is destroyed: supply data to the writer;
			// memory stays stale only if the writer takes ownership, so
			// the protocol forwards rather than writes back.
			return Outcome{Next: Invalid, SupplyData: true}
		case Exclusive, Shared:
			return Outcome{Next: Invalid}
		case Invalid:
			return Outcome{Next: Invalid}
		}
	case Evict:
		switch s {
		case Modified, Owned:
			return Outcome{Next: Invalid, WritebackToMemory: true}
		default:
			return Outcome{Next: Invalid}
		}
	}
	panic(fmt.Sprintf("coherence: unhandled transition %v on %v", e, s))
}

// DirtyTracker is the DBI-shaped dependency of the split directory: the
// subset of the Dirty-Block Index the coherence layer needs.
type DirtyTracker interface {
	IsDirty(block uint64) bool
	SetDirty(block uint64)
	ClearDirty(block uint64)
}

// SplitDirectory stores the pair states in a map (standing in for tag
// entries) and keeps the dirty bit in a DirtyTracker. It proves the
// Section-2.3 claim: protocol behaviour is unchanged when the dirty half
// of each state pair lives in the DBI.
type SplitDirectory struct {
	pairs   map[uint64]Pair
	tracker DirtyTracker
}

// NewSplitDirectory builds a directory over the tracker.
func NewSplitDirectory(t DirtyTracker) *SplitDirectory {
	return &SplitDirectory{pairs: make(map[uint64]Pair), tracker: t}
}

// StateOf reconstructs the full state of a block.
func (d *SplitDirectory) StateOf(block uint64) State {
	p, ok := d.pairs[block]
	if !ok {
		return Invalid
	}
	return Join(p, d.tracker.IsDirty(block))
}

// SetState records a full state, splitting it into the pair and the
// DBI bit.
func (d *SplitDirectory) SetState(block uint64, s State) {
	p, dirty := Split(s)
	if p == PairInvalid {
		delete(d.pairs, block)
	} else {
		d.pairs[block] = p
	}
	if dirty {
		d.tracker.SetDirty(block)
	} else {
		d.tracker.ClearDirty(block)
	}
}

// Apply runs a transition on a block and stores the result, returning
// the outcome for the caller to act on.
func (d *SplitDirectory) Apply(block uint64, e Event) Outcome {
	out := Transition(d.StateOf(block), e)
	d.SetState(block, out.Next)
	return out
}
