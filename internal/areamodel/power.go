package areamodel

import (
	"math"

	"dbisim/internal/config"
	"dbisim/internal/dram"
)

// SRAMModel is the analytical stand-in for CACTI: area scales with bit
// count plus a periphery term, static power scales with bits, and
// per-access dynamic energy grows with the square root of the array size
// (bitline/wordline scaling).
type SRAMModel struct {
	// CellAreaUM2 is the SRAM cell area in µm² (22nm-class 6T cell).
	CellAreaUM2 float64
	// PeripheryFactor inflates area for decoders/sense amps.
	PeripheryFactor float64
	// LeakagePWPerBit is static power per bit in pW.
	LeakagePWPerBit float64
	// DynamicPJBase is the per-access energy in pJ of a 1Kb array.
	DynamicPJBase float64
}

// DefaultSRAM returns a 22nm-class model.
func DefaultSRAM() SRAMModel {
	return SRAMModel{
		CellAreaUM2:     0.1,
		PeripheryFactor: 1.25,
		LeakagePWPerBit: 15,
		DynamicPJBase:   0.8,
	}
}

// AreaMM2 returns the array area in mm².
func (m SRAMModel) AreaMM2(bits uint64) float64 {
	return float64(bits) * m.CellAreaUM2 * m.PeripheryFactor / 1e6
}

// StaticPowerMW returns leakage power in mW.
func (m SRAMModel) StaticPowerMW(bits uint64) float64 {
	return float64(bits) * m.LeakagePWPerBit / 1e9
}

// DynamicEnergyPJ returns per-access energy in pJ for an array of the
// given size.
func (m SRAMModel) DynamicEnergyPJ(bits uint64) float64 {
	if bits == 0 {
		return 0
	}
	return m.DynamicPJBase * math.Sqrt(float64(bits)/1024)
}

// CacheAreaReduction computes the overall cache area reduction of the
// DBI organization (with ECC) for a cache geometry — the Section 6.3
// "8% for α=1/4 at 16MB" result.
func CacheAreaReduction(p BitParams, m SRAMModel, c config.CacheParams, d config.DBIParams) float64 {
	conv := p.Conventional(c, true)
	dbi := p.WithDBI(c, d, true)
	convArea := m.AreaMM2(conv.TotalBits())
	dbiArea := m.AreaMM2(dbi.TotalBits())
	if convArea == 0 {
		return 0
	}
	return 1 - dbiArea/convArea
}

// Table5Row reports the DBI's static and dynamic power as a fraction of
// total cache power for one cache size.
type Table5Row struct {
	CacheBytes      uint64
	StaticFraction  float64
	DynamicFraction float64
}

// Table5 reproduces the paper's Table 5: DBI power consumption as a
// fraction of cache power for 2–16MB caches. accessesPerDBIAccess is the
// ratio of cache accesses to DBI accesses observed in simulation (the
// DBI is consulted on writebacks and evictions, a fraction of all cache
// accesses).
func Table5(p BitParams, m SRAMModel, d config.DBIParams, cacheAccessPerDBIAccess float64) []Table5Row {
	if cacheAccessPerDBIAccess <= 0 {
		cacheAccessPerDBIAccess = 3
	}
	// Small arrays are less dense and leak more per bit than a megabyte
	// array (CACTI's periphery overhead); the DBI pays this factor.
	const smallArrayFactor = 2.5
	var out []Table5Row
	for _, size := range []uint64{2 << 20, 4 << 20, 8 << 20, 16 << 20} {
		c := config.CacheParams{
			SizeBytes: size, Ways: 16, BlockSize: 64,
			TagLatency: 10, DataLatency: 24, SerialTagData: true,
		}
		conv := p.Conventional(c, true)
		entries := uint64(d.Entries(c.Blocks()))
		dbiBits := entries * uint64(p.DBIEntryBits(d, int(entries)))

		cacheStatic := m.StaticPowerMW(conv.TotalBits())
		dbiStatic := m.StaticPowerMW(dbiBits) * smallArrayFactor

		cacheDyn := m.DynamicEnergyPJ(conv.TotalBits())
		dbiDyn := m.DynamicEnergyPJ(dbiBits) * smallArrayFactor / cacheAccessPerDBIAccess

		out = append(out, Table5Row{
			CacheBytes:      size,
			StaticFraction:  dbiStatic / (cacheStatic + dbiStatic),
			DynamicFraction: dbiDyn / (cacheDyn + dbiDyn),
		})
	}
	return out
}

// DRAMEnergyModel holds per-command energies for a DDR3-1066 device
// (Micron-power-calculator-class constants).
type DRAMEnergyModel struct {
	ActivatePJ   float64 // one ACT+PRE pair
	ReadBurstPJ  float64 // one 64B read burst
	WriteBurstPJ float64 // one 64B write burst
	BackgroundPW float64 // background power per DRAM cycle (unused here)
}

// DefaultDRAMEnergy returns DDR3-1066-class energies.
func DefaultDRAMEnergy() DRAMEnergyModel {
	return DRAMEnergyModel{
		ActivatePJ:   15000,
		ReadBurstPJ:  5200,
		WriteBurstPJ: 5200,
	}
}

// EnergyPJ totals the DRAM energy of a simulation from its command
// counts. Row hits skip the activate energy — the source of the paper's
// 14% single-core memory-energy reduction.
func (m DRAMEnergyModel) EnergyPJ(s *dram.Stats) float64 {
	return m.EnergyFromCounts(s.Activates.Value(), s.Reads.Value(), s.Writes.Value())
}

// EnergyFromCounts totals DRAM energy from explicit command counts
// (e.g. the measured-window deltas a system run reports).
func (m DRAMEnergyModel) EnergyFromCounts(activates, reads, writes uint64) float64 {
	return float64(activates)*m.ActivatePJ +
		float64(reads)*m.ReadBurstPJ +
		float64(writes)*m.WriteBurstPJ
}
