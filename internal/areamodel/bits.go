// Package areamodel provides the storage, area, power and energy models
// behind Section 6.3 of the DBI paper: exact bit counts for the tag
// store, data store, ECC and the DBI (Table 4), an analytical SRAM
// area/power model standing in for CACTI (Table 5 and the 8% area
// claim), and a DRAM energy model standing in for the Micron power
// calculator (the 14% memory-energy reduction).
package areamodel

import (
	"fmt"

	"dbisim/internal/config"
)

// BitParams fixes the word sizes behind every bit count.
type BitParams struct {
	PhysAddrBits int // physical address width (40 in our model)
	BlockBytes   int
	// SECDEDBitsPerWord is the ECC overhead per 64-bit word (8 for the
	// standard (72,64) SECDED code -> 12.5%).
	SECDEDBitsPerWord int
	// ParityBitsPerWord is the EDC overhead per 64-bit word (1 -> ~1.5%).
	ParityBitsPerWord int
	// DRAMRowBytes sizes the DBI row tag (log2 of the number of rows).
	DRAMRowBytes int
}

// DefaultBits returns the parameters used throughout the paper's
// evaluation.
func DefaultBits() BitParams {
	return BitParams{
		PhysAddrBits:      40,
		BlockBytes:        64,
		SECDEDBitsPerWord: 8,
		ParityBitsPerWord: 1,
		DRAMRowBytes:      8 << 10,
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TagEntryBits returns the bits of one conventional tag entry:
// tag + valid (+ dirty when withDirty) + replacement state.
func (p BitParams) TagEntryBits(c config.CacheParams, withDirty bool) int {
	offsetBits := log2(uint64(p.BlockBytes))
	setBits := log2(uint64(c.Sets()))
	tag := p.PhysAddrBits - offsetBits - setBits
	repl := log2(uint64(c.Ways)) // LRU rank
	bits := tag + 1 + repl
	if withDirty {
		bits++
	}
	return bits
}

// DataBits returns the data-array bits per block.
func (p BitParams) DataBits() int { return p.BlockBytes * 8 }

// SECDEDBitsPerBlock returns full ECC bits per block.
func (p BitParams) SECDEDBitsPerBlock() int {
	return p.BlockBytes / 8 * p.SECDEDBitsPerWord
}

// ParityBitsPerBlock returns EDC bits per block.
func (p BitParams) ParityBitsPerBlock() int {
	return p.BlockBytes / 8 * p.ParityBitsPerWord
}

// DBIEntryBits returns the bits of one DBI entry: valid + row tag +
// dirty bit vector.
func (p BitParams) DBIEntryBits(d config.DBIParams, entries int) int {
	rows := uint64(1) << uint(p.PhysAddrBits-log2(uint64(p.DRAMRowBytes)))
	regions := rows * uint64(p.DRAMRowBytes/p.BlockBytes/d.Granularity)
	sets := entries / d.Associativity
	if sets < 1 {
		sets = 1
	}
	tag := log2(regions) - log2(uint64(sets))
	return 1 + tag + d.Granularity
}

// Organization totals the storage of one cache organization.
type Organization struct {
	TagStoreBits uint64 // tag entries plus any ECC/EDC metadata
	DataBits     uint64
	DBIBits      uint64
}

// TotalBits sums all storage.
func (o Organization) TotalBits() uint64 { return o.TagStoreBits + o.DataBits + o.DBIBits }

// Conventional returns the storage of the baseline cache; withECC adds
// SECDED for every block (stored with the tags, as the paper assumes).
func (p BitParams) Conventional(c config.CacheParams, withECC bool) Organization {
	blocks := uint64(c.Blocks())
	entry := uint64(p.TagEntryBits(c, true))
	if withECC {
		entry += uint64(p.SECDEDBitsPerBlock())
	}
	return Organization{
		TagStoreBits: blocks * entry,
		DataBits:     blocks * uint64(p.DataBits()),
	}
}

// WithDBI returns the storage of a DBI-augmented cache: dirty bits leave
// the tag entries, the DBI is added, and with ECC enabled every block
// keeps only parity EDC while full SECDED covers only the blocks the DBI
// tracks (Figure 5).
func (p BitParams) WithDBI(c config.CacheParams, d config.DBIParams, withECC bool) Organization {
	blocks := uint64(c.Blocks())
	entry := uint64(p.TagEntryBits(c, false))
	entries := uint64(d.Entries(c.Blocks()))
	dbiBits := entries * uint64(p.DBIEntryBits(d, int(entries)))
	if withECC {
		entry += uint64(p.ParityBitsPerBlock())
		tracked := entries * uint64(d.Granularity)
		dbiBits += tracked * uint64(p.SECDEDBitsPerBlock())
	}
	return Organization{
		TagStoreBits: blocks * entry,
		DataBits:     blocks * uint64(p.DataBits()),
		DBIBits:      dbiBits,
	}
}

// Reduction returns the fractional saving of new relative to old
// (positive = new is smaller).
func Reduction(old, new uint64) float64 {
	if old == 0 {
		return 0
	}
	return 1 - float64(new)/float64(old)
}

// Table4Row is one row of the paper's Table 4.
type Table4Row struct {
	AlphaNum, AlphaDen int
	// Without ECC.
	TagReduction   float64
	CacheReduction float64
	// With ECC (ECC counted in the tag store, as the paper footnotes).
	TagReductionECC   float64
	CacheReductionECC float64
}

// Table4 reproduces the paper's Table 4 for the given cache geometry.
func Table4(p BitParams, c config.CacheParams, d config.DBIParams) []Table4Row {
	var out []Table4Row
	for _, alpha := range [][2]int{{1, 4}, {1, 2}} {
		dd := d
		dd.AlphaNum, dd.AlphaDen = alpha[0], alpha[1]
		row := Table4Row{AlphaNum: alpha[0], AlphaDen: alpha[1]}

		conv := p.Conventional(c, false)
		dbi := p.WithDBI(c, dd, false)
		row.TagReduction = Reduction(conv.TagStoreBits, dbi.TagStoreBits+dbi.DBIBits)
		row.CacheReduction = Reduction(conv.TotalBits(), dbi.TotalBits())

		convE := p.Conventional(c, true)
		dbiE := p.WithDBI(c, dd, true)
		row.TagReductionECC = Reduction(convE.TagStoreBits, dbiE.TagStoreBits+dbiE.DBIBits)
		row.CacheReductionECC = Reduction(convE.TotalBits(), dbiE.TotalBits())

		out = append(out, row)
	}
	return out
}

// String renders the row like the paper's table.
func (r Table4Row) String() string {
	return fmt.Sprintf("α=%d/%d  tag %.0f%%  cache %.1f%%  |  ECC: tag %.0f%%  cache %.0f%%",
		r.AlphaNum, r.AlphaDen,
		100*r.TagReduction, 100*r.CacheReduction,
		100*r.TagReductionECC, 100*r.CacheReductionECC)
}
