package areamodel

import (
	"testing"

	"dbisim/internal/config"
	"dbisim/internal/dram"
)

func cache16MB() config.CacheParams {
	return config.CacheParams{
		SizeBytes: 16 << 20, Ways: 32, BlockSize: 64,
		TagLatency: 14, DataLatency: 33, SerialTagData: true,
	}
}

func dbiParams() config.DBIParams {
	return config.DBIParams{
		AlphaNum: 1, AlphaDen: 4, Granularity: 64,
		Associativity: 16, Latency: 4,
	}
}

func TestTagEntryBits(t *testing.T) {
	p := DefaultBits()
	c := cache16MB() // 8192 sets -> 13 set bits; 40-6-13 = 21 tag bits
	withDirty := p.TagEntryBits(c, true)
	withoutDirty := p.TagEntryBits(c, false)
	if withDirty-withoutDirty != 1 {
		t.Fatalf("dirty bit must cost exactly 1 bit: %d vs %d", withDirty, withoutDirty)
	}
	// tag 21 + valid 1 + dirty 1 + repl 5 = 28.
	if withDirty != 28 {
		t.Fatalf("tag entry bits = %d, want 28", withDirty)
	}
}

func TestECCOverheadFractions(t *testing.T) {
	p := DefaultBits()
	if p.SECDEDBitsPerBlock() != 64 {
		t.Fatalf("SECDED bits = %d, want 64 (12.5%% of 512)", p.SECDEDBitsPerBlock())
	}
	if p.ParityBitsPerBlock() != 8 {
		t.Fatalf("parity bits = %d, want 8 (~1.5%% of 512)", p.ParityBitsPerBlock())
	}
}

func TestTable4MatchesPaperShape(t *testing.T) {
	rows := Table4(DefaultBits(), cache16MB(), dbiParams())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	quarter, half := rows[0], rows[1]
	// Paper: without ECC the savings are tiny (2%/1% tag, ~0.1%/0 cache).
	if quarter.TagReduction < 0 || quarter.TagReduction > 0.10 {
		t.Fatalf("α=1/4 tag reduction (no ECC) = %v, want small positive", quarter.TagReduction)
	}
	if quarter.CacheReduction < 0 || quarter.CacheReduction > 0.01 {
		t.Fatalf("α=1/4 cache reduction (no ECC) = %v", quarter.CacheReduction)
	}
	// Paper with ECC: tag store -44%, cache -7% at α=1/4; -26%/-4% at 1/2.
	if quarter.TagReductionECC < 0.35 || quarter.TagReductionECC > 0.52 {
		t.Fatalf("α=1/4 tag reduction (ECC) = %v, want ≈0.44", quarter.TagReductionECC)
	}
	if quarter.CacheReductionECC < 0.05 || quarter.CacheReductionECC > 0.10 {
		t.Fatalf("α=1/4 cache reduction (ECC) = %v, want ≈0.07", quarter.CacheReductionECC)
	}
	if half.TagReductionECC < 0.18 || half.TagReductionECC > 0.34 {
		t.Fatalf("α=1/2 tag reduction (ECC) = %v, want ≈0.26", half.TagReductionECC)
	}
	if half.CacheReductionECC < 0.02 || half.CacheReductionECC > 0.06 {
		t.Fatalf("α=1/2 cache reduction (ECC) = %v, want ≈0.04", half.CacheReductionECC)
	}
	// More DBI (α=1/2) saves less area than α=1/4.
	if half.CacheReductionECC >= quarter.CacheReductionECC {
		t.Fatal("α=1/2 must save less than α=1/4")
	}
	if quarter.String() == "" || half.String() == "" {
		t.Fatal("empty row strings")
	}
}

func TestCacheAreaReduction(t *testing.T) {
	// Paper Section 6.3: ~8% area reduction for a 16MB cache at α=1/4.
	got := CacheAreaReduction(DefaultBits(), DefaultSRAM(), cache16MB(), dbiParams())
	if got < 0.05 || got > 0.11 {
		t.Fatalf("area reduction = %v, want ≈0.08", got)
	}
	// α=1/2 saves less (paper: 5%).
	d := dbiParams()
	d.AlphaDen = 2
	half := CacheAreaReduction(DefaultBits(), DefaultSRAM(), cache16MB(), d)
	if half >= got {
		t.Fatal("α=1/2 must save less area than α=1/4")
	}
	if half < 0.02 || half > 0.08 {
		t.Fatalf("α=1/2 area reduction = %v, want ≈0.05", half)
	}
}

func TestTable5PowerFractions(t *testing.T) {
	rows := Table5(DefaultBits(), DefaultSRAM(), dbiParams(), 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper Table 5: static 0.12–0.22%, dynamic 1–4%.
		if r.StaticFraction <= 0 || r.StaticFraction > 0.01 {
			t.Fatalf("%dMB static fraction = %v, want ≲0.3%%", r.CacheBytes>>20, r.StaticFraction)
		}
		if r.DynamicFraction <= 0 || r.DynamicFraction > 0.08 {
			t.Fatalf("%dMB dynamic fraction = %v, want a few %%", r.CacheBytes>>20, r.DynamicFraction)
		}
	}
	// With α fixed the DBI scales with the cache, so the fractions stay
	// in the same band across sizes (the paper's Table 5 wobbles within
	// 0.12-0.22% static, 1-4% dynamic).
	if rows[3].StaticFraction > 2*rows[0].StaticFraction {
		t.Fatal("static fraction should stay in one band across sizes")
	}
	// Degenerate access ratio falls back safely.
	if got := Table5(DefaultBits(), DefaultSRAM(), dbiParams(), 0); len(got) != 4 {
		t.Fatal("fallback ratio failed")
	}
}

func TestSRAMModelMonotonic(t *testing.T) {
	m := DefaultSRAM()
	if m.AreaMM2(2048) <= m.AreaMM2(1024) {
		t.Fatal("area not monotonic")
	}
	if m.StaticPowerMW(2048) <= m.StaticPowerMW(1024) {
		t.Fatal("static power not monotonic")
	}
	if m.DynamicEnergyPJ(4096) <= m.DynamicEnergyPJ(1024) {
		t.Fatal("dynamic energy not monotonic")
	}
	if m.DynamicEnergyPJ(0) != 0 {
		t.Fatal("zero bits must cost zero energy")
	}
}

func TestDRAMEnergyRowHitsSave(t *testing.T) {
	m := DefaultDRAMEnergy()
	var allMiss, allHit dram.Stats
	allMiss.Reads.Add(1000)
	allMiss.Activates.Add(1000)
	allHit.Reads.Add(1000)
	allHit.Activates.Add(100)
	if m.EnergyPJ(&allHit) >= m.EnergyPJ(&allMiss) {
		t.Fatal("row hits must save DRAM energy")
	}
	saving := 1 - m.EnergyPJ(&allHit)/m.EnergyPJ(&allMiss)
	if saving < 0.3 {
		t.Fatalf("saving = %v, activates must dominate", saving)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 90); got < 0.0999 || got > 0.1001 {
		t.Fatalf("Reduction = %v, want 0.1", got)
	}
	if Reduction(0, 10) != 0 {
		t.Fatal("zero base must give 0")
	}
}

func TestDBIEntryBits(t *testing.T) {
	p := DefaultBits()
	d := dbiParams()
	bits := p.DBIEntryBits(d, 1024)
	// valid(1) + tag + 64-bit vector; tag for 2^28 regions, 64 sets.
	if bits < 64+1+10 || bits > 64+1+40 {
		t.Fatalf("DBI entry bits = %d", bits)
	}
	// Finer granularity -> more entries but smaller vectors.
	d.Granularity = 16
	if got := p.DBIEntryBits(d, 1024); got >= bits {
		t.Fatalf("granularity 16 entry (%d bits) not smaller than 64 (%d)", got, bits)
	}
}
