package llc

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

func TestScanQueueDropsWhenFull(t *testing.T) {
	eng, l, _ := build(t, config.DAWB)
	// Enqueue far more optional jobs than the cap; extras are dropped.
	for i := 0; i < scanQueueCap*3; i++ {
		l.enqueueScan([]addr.BlockAddr{addr.BlockAddr(i)}, false, func(addr.BlockAddr) {})
	}
	if l.Stat.ScanDrops.Value() == 0 {
		t.Fatal("no drops on overfull scan queue")
	}
	eng.Run()
}

func TestScanMustJobsNeverDropAndJumpQueue(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	var order []string
	// Fill the queue with paced jobs.
	for i := 0; i < scanQueueCap; i++ {
		l.enqueueScan([]addr.BlockAddr{addr.BlockAddr(i)}, false, func(addr.BlockAddr) {
			order = append(order, "paced")
		})
	}
	// A must job enqueues even though the queue is full, ahead of the
	// remaining paced jobs.
	l.enqueueScan([]addr.BlockAddr{999}, true, func(addr.BlockAddr) {
		order = append(order, "must")
	})
	eng.Run()
	if len(order) != scanQueueCap+1 {
		t.Fatalf("executed %d jobs, want %d", len(order), scanQueueCap+1)
	}
	// The must job ran before the tail of the paced backlog.
	mustAt := -1
	for i, s := range order {
		if s == "must" {
			mustAt = i
		}
	}
	if mustAt < 0 || mustAt >= scanQueueCap {
		t.Fatalf("must job ran at position %d of %d", mustAt, len(order))
	}
}

func TestScanPacingThrottlesOptionalJobs(t *testing.T) {
	eng, l, _ := build(t, config.DAWB)
	var times []event.Cycle
	blocks := make([]addr.BlockAddr, 5)
	for i := range blocks {
		blocks[i] = addr.BlockAddr(i)
	}
	l.enqueueScan(blocks, false, func(addr.BlockAddr) {
		times = append(times, eng.Now())
	})
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("visited %d blocks", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < scanInterval {
			t.Fatalf("paced lookups %d cycles apart, want >= %d",
				times[i]-times[i-1], event.Cycle(scanInterval))
		}
	}
}

func TestScanMustJobsNotThrottled(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	var times []event.Cycle
	blocks := make([]addr.BlockAddr, 5)
	for i := range blocks {
		blocks[i] = addr.BlockAddr(i)
	}
	l.enqueueScan(blocks, true, func(addr.BlockAddr) {
		times = append(times, eng.Now())
	})
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("visited %d blocks", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] >= scanInterval {
			t.Fatalf("must lookups %d cycles apart — throttled", times[i]-times[i-1])
		}
	}
}

func TestScanEmptyJobIgnored(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	l.enqueueScan(nil, false, func(addr.BlockAddr) { t.Fatal("visited a block of an empty job") })
	eng.Run()
}
