package llc

import (
	"dbisim/internal/addr"
	"dbisim/internal/event"
	"dbisim/internal/telemetry"
)

// FlushTimed writes back every dirty block, modelling the latency of the
// walk that finds them — the Section-7 "Cache Flushing" application.
//
// A conventional cache must look up every set of the tag store to locate
// its dirty blocks (powering down a bank, a persistent-memory commit), so
// the walk costs one tag access per set before any data moves. A
// DBI-augmented cache reads its (much smaller) DBI instead: the entries
// directly list the dirty blocks, row-grouped, and only those blocks need
// tag accesses to read their data.
//
// done receives the number of blocks written back and the cycles the
// flush took. The flush uses the tag port like any other traffic, so
// demand accesses still win arbitration.
func (l *LLC) FlushTimed(done func(blocks int, cycles event.Cycle)) {
	start := l.Eng.Now()
	if l.DBI != nil {
		l.flushViaDBI(start, done)
		return
	}
	l.flushViaTagWalk(start, done)
}

// flushViaTagWalk scans every set with a tag-port access, writing back
// dirty blocks as they are found.
func (l *LLC) flushViaTagWalk(start event.Cycle, done func(int, event.Cycle)) {
	written := 0
	set := 0
	var step func()
	step = func() {
		if set >= l.Cache.Sets() {
			done(written, l.Eng.Now()-start)
			return
		}
		s := set
		set++
		l.Attr.Charge(telemetry.ALLCTagFiller, uint64(l.tagLatency()))
		l.Port.Submit(true, l.tagLatency(), func() {
			l.Cache.Stats.TagLookups.Inc()
			for way := 0; way < l.Cache.Ways(); way++ {
				blk := l.Cache.BlockAt(s, way)
				if blk.Valid && blk.Dirty {
					l.Cache.SetDirty(blk.Addr, false)
					l.Attr.Charge(telemetry.ABytesWBFlush, l.Geo.BlockSize)
					l.mem.Write(blk.Addr)
					written++
				}
			}
			step()
		})
	}
	step()
}

// flushViaDBI drains the DBI: each valid entry is read (off the tag
// port, at the DBI's own latency) and its dirty blocks are written back
// after one tag access each to read the data.
func (l *LLC) flushViaDBI(start event.Cycle, done func(int, event.Cycle)) {
	evs := l.DBI.Flush()
	var blocks []addr.BlockAddr
	for _, ev := range evs {
		blocks = append(blocks, ev.Blocks...)
	}
	written := 0
	i := 0
	var step func()
	step = func() {
		if i >= len(blocks) {
			done(written, l.Eng.Now()-start)
			return
		}
		b := blocks[i]
		i++
		// DBI entry read + tag access for the block's data.
		l.Attr.Charge(telemetry.ADBIProbe, uint64(l.dbiLatency()))
		l.Eng.After(l.dbiLatency(), func() {
			l.Attr.Charge(telemetry.ALLCTagFiller, uint64(l.tagLatency()))
			l.Port.Submit(true, l.tagLatency(), func() {
				l.Cache.Stats.TagLookups.Inc()
				if l.Cache.Contains(b) {
					l.Attr.Charge(telemetry.ABytesWBFlush, l.Geo.BlockSize)
					l.mem.Write(b)
					written++
				}
				step()
			})
		})
	}
	step()
}
