package llc

import (
	"dbisim/internal/addr"
	"dbisim/internal/event"
	"dbisim/internal/telemetry"
)

// Eager writeback (Section 7, "Fast Lookup for Dirty Status"): because
// the DBI can cheaply answer "which rows have dirty blocks", the cache
// can feed the memory controller's write buffer during idle periods
// instead of waiting for evictions or buffer-full drains — the
// opportunistic scheduling of Lee+ (eager writeback) and Wang & Jiménez
// (rank-idle-time scheduling) without their dedicated structures.
//
// The implementation polls every EagerInterval cycles: when the write
// buffer is below the low-water mark, it picks the least recently
// written DBI entry, writes back its dirty blocks (row-grouped, through
// the background scan engine) and cleans them.

// EagerConfig controls the eager-writeback pump.
type EagerConfig struct {
	// Interval is the polling period in cycles.
	Interval event.Cycle
	// LowWater: pump only while the memory write queue is below this.
	LowWater int
}

// memQueue is implemented by memories whose write-buffer occupancy the
// eager pump can observe (the real dram.Controller does).
type memQueue interface {
	WriteQueueLen() int
}

// EnableEagerWriteback arms the pump. It requires a DBI mechanism (the
// whole point is the cheap dirty-row query) and a Memory that exposes
// its write-queue depth; it returns false if either is missing.
func (l *LLC) EnableEagerWriteback(cfg EagerConfig) bool {
	if l.DBI == nil {
		return false
	}
	mq, ok := l.mem.(memQueue)
	if !ok {
		return false
	}
	if cfg.Interval == 0 {
		cfg.Interval = 500
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = 8
	}
	var tick func()
	tick = func() {
		l.Eng.After(cfg.Interval, tick)
		if mq.WriteQueueLen() >= cfg.LowWater {
			return
		}
		l.pumpEager()
	}
	l.Eng.After(cfg.Interval, tick)
	return true
}

// pumpEager flushes one DBI entry's dirty blocks (the least recently
// written entry: the row least likely to absorb further writes soon).
func (l *LLC) pumpEager() {
	victim := l.DBI.OldestDirtyRow()
	if victim == nil {
		return
	}
	blocks := append([]addr.BlockAddr(nil), victim...)
	for _, b := range blocks {
		l.DBI.ClearDirty(b)
	}
	l.Stat.EagerWBs.Add(uint64(len(blocks)))
	l.enqueueScan(blocks, true, func(b addr.BlockAddr) {
		l.Stat.FillerLookups.Inc()
		if _, hit := l.Cache.Lookup(b); hit {
			l.Attr.Charge(telemetry.ABytesWBEager, l.Geo.BlockSize)
			l.mem.Write(b)
		}
	})
}
