package llc

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

// fakeMem records traffic and answers reads after a fixed latency.
type fakeMem struct {
	eng    *event.Engine
	lat    event.Cycle
	reads  []addr.BlockAddr
	writes []addr.BlockAddr
}

func (m *fakeMem) Read(b addr.BlockAddr, done func()) {
	m.reads = append(m.reads, b)
	m.eng.After(m.lat, done)
}

func (m *fakeMem) Write(b addr.BlockAddr) { m.writes = append(m.writes, b) }

func build(t *testing.T, mech config.Mechanism) (*event.Engine, *LLC, *fakeMem) {
	t.Helper()
	var eng event.Engine
	mem := &fakeMem{eng: &eng, lat: 100}
	sys := config.Paper(1, mech)
	// Shrink the LLC so tests exercise evictions quickly:
	// 64KB, 4-way, 256 sets.
	sys.L3.SizeBytes = 64 << 10
	sys.L3.Ways = 4
	l, err := New(&eng, addr.Default(), Config{Cores: 1, Sys: sys, Mem: mem, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &eng, l, mem
}

func TestReadMissFetchesAndFills(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	served := false
	l.Read(5, 0, func() { served = true })
	eng.Run()
	if !served {
		t.Fatal("read not served")
	}
	if len(mem.reads) != 1 || mem.reads[0] != 5 {
		t.Fatalf("memory reads = %v", mem.reads)
	}
	if !l.Cache.Contains(5) {
		t.Fatal("block not filled")
	}
	if l.Stat.ReadMisses.Value() != 1 {
		t.Fatal("miss not counted")
	}
}

func TestReadHitStaysOnChip(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	l.Read(5, 0, nil)
	eng.Run()
	var hitAt event.Cycle
	l.Read(5, 0, func() { hitAt = eng.Now() })
	start := eng.Now()
	eng.Run()
	if len(mem.reads) != 1 {
		t.Fatalf("hit went to memory: %v", mem.reads)
	}
	// Serial tag (10) + data (24) = 34 cycles for the paper's 1-core LLC.
	if hitAt-start != 34 {
		t.Fatalf("hit latency = %d, want 34", hitAt-start)
	}
	if l.Stat.ReadHits.Value() != 1 {
		t.Fatal("hit not counted")
	}
}

func TestMSHRMergesConcurrentReads(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	served := 0
	l.Read(9, 0, func() { served++ })
	l.Read(9, 0, func() { served++ })
	eng.Run()
	if served != 2 {
		t.Fatalf("served = %d", served)
	}
	if len(mem.reads) != 1 {
		t.Fatalf("memory reads = %v, want 1 (merged)", mem.reads)
	}
}

func TestConventionalWritebackMarksDirty(t *testing.T) {
	eng, l, _ := build(t, config.TADIP)
	l.Writeback(7, 0)
	eng.Run()
	if !l.Cache.IsDirty(7) {
		t.Fatal("writeback did not mark the tag entry dirty")
	}
}

func TestDirtyVictimWritesBack(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	// Fill set 0 (blocks map to set b%256) with dirty blocks, then evict.
	for i := 0; i < 4; i++ {
		l.Writeback(addr.BlockAddr(i*256), 0)
	}
	eng.Run()
	l.Read(addr.BlockAddr(4*256), 0, nil)
	eng.Run()
	if len(mem.writes) != 1 {
		t.Fatalf("memory writes = %v, want 1 victim writeback", mem.writes)
	}
	if l.Stat.VictimWBs.Value() != 1 {
		t.Fatal("victim writeback not counted")
	}
}

func TestDBIWritebackTracksDirtyInDBI(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	l.Writeback(7, 0)
	eng.Run()
	if l.Cache.IsDirty(7) {
		t.Fatal("DBI mechanism must not set the tag dirty bit")
	}
	if !l.DBI.IsDirty(7) {
		t.Fatal("block not dirty in DBI")
	}
	if !l.Cache.Contains(7) {
		t.Fatal("block not inserted")
	}
}

func TestDBIEvictionWritesBackTrackedBlocks(t *testing.T) {
	eng, l, mem := build(t, config.DBI)
	// The test LLC has 1024 blocks; α=1/4 -> 256 tracked; granularity 64
	// -> 4 entries; associativity 16 -> floor at 16 entries... so fill
	// enough distinct regions to force a DBI eviction.
	// Stride 65 blocks: every write lands in a distinct DBI region while
	// spreading across cache sets (so cache evictions don't clean the
	// DBI first).
	entries := l.DBI.Entries()
	for k := 0; k <= entries*l.DBI.Ways(); k++ {
		l.Writeback(addr.BlockAddr(k*65), 0)
		eng.Run()
	}
	if l.DBI.Stat.Evictions.Value() == 0 {
		t.Fatal("no DBI eviction occurred")
	}
	if l.Stat.DBIEvictionWBs.Value() == 0 {
		t.Fatal("DBI eviction produced no writebacks")
	}
	if len(mem.writes) == 0 {
		t.Fatal("no memory writes")
	}
}

func TestDBIEvictionKeepsBlocksResident(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	first := addr.BlockAddr(0)
	l.Writeback(first, 0)
	eng.Run()
	// Force DBI evictions with many distinct regions that spread over
	// cache sets (stride 65) so cache pressure stays low.
	for k := 1; k <= l.DBI.Entries()*l.DBI.Ways(); k++ {
		l.Writeback(addr.BlockAddr(k*65), 0)
		eng.Run()
	}
	if l.DBI.IsDirty(first) {
		t.Fatal("LRW entry survived full-DBI pressure")
	}
	if !l.Cache.Contains(first) {
		t.Fatal("DBI eviction removed the block from the cache")
	}
}

func TestAWBHarvestsRowMates(t *testing.T) {
	eng, l, mem := build(t, config.DBIAWB)
	// Two dirty blocks in the same DBI region but different cache sets.
	// Region = block/64; blocks 0 and 1 share region 0, sets 0 and 1.
	l.Writeback(0, 0)
	l.Writeback(1, 0)
	eng.Run()
	// Evict block 0 by filling set 0 with reads (4-way set 0: blocks
	// k*256).
	for k := 1; k <= 4; k++ {
		l.Read(addr.BlockAddr(k*256), 0, nil)
		eng.Run()
	}
	if l.DBI.IsDirty(0) {
		t.Fatal("victim still dirty")
	}
	// AWB must have written back block 1 proactively as well.
	found := false
	for _, w := range mem.writes {
		if w == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("row-mate not proactively written back: %v", mem.writes)
	}
	if l.DBI.IsDirty(1) {
		t.Fatal("row-mate still dirty after AWB")
	}
	if !l.Cache.Contains(1) {
		t.Fatal("AWB evicted the row-mate from the cache")
	}
	if l.Stat.ProactiveWBs.Value() == 0 {
		t.Fatal("proactive writeback not counted")
	}
}

func TestDAWBLooksUpWholeRow(t *testing.T) {
	eng, l, mem := build(t, config.DAWB)
	l.Writeback(0, 0)
	l.Writeback(1, 0)
	eng.Run()
	before := l.TagLookups()
	for k := 1; k <= 4; k++ {
		l.Read(addr.BlockAddr(k*256), 0, nil)
		eng.Run()
	}
	// DAWB scans all 127 row-mates of the evicted dirty block.
	fillers := l.Stat.FillerLookups.Value()
	if fillers != 127 {
		t.Fatalf("filler lookups = %d, want 127", fillers)
	}
	if l.TagLookups() <= before {
		t.Fatal("tag lookups did not grow")
	}
	// Block 1 was dirty and must be among the writes.
	found := false
	for _, w := range mem.writes {
		if w == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("DAWB missed dirty row-mate: %v", mem.writes)
	}
	if l.Cache.IsDirty(1) {
		t.Fatal("row-mate still dirty")
	}
}

func TestVWQFiltersLookups(t *testing.T) {
	eng, l, _ := build(t, config.VWQ)
	l.Writeback(0, 0)
	l.Writeback(1, 0)
	eng.Run()
	for k := 1; k <= 4; k++ {
		l.Read(addr.BlockAddr(k*256), 0, nil)
		eng.Run()
	}
	// The SSV filters sets without dirty-in-LRU blocks, so VWQ performs
	// fewer filler lookups than DAWB's 127.
	if got := l.Stat.FillerLookups.Value(); got >= 127 {
		t.Fatalf("VWQ filler lookups = %d, want < 127", got)
	}
}

func TestSkipCacheWritesThrough(t *testing.T) {
	eng, l, mem := build(t, config.SkipCache)
	l.Writeback(3, 0)
	eng.Run()
	if len(mem.writes) != 1 {
		t.Fatalf("write-through traffic = %v", mem.writes)
	}
	if l.Cache.IsDirty(3) {
		t.Fatal("write-through cache holds dirty data")
	}
	if l.Stat.WriteThroughs.Value() != 1 {
		t.Fatal("write-through not counted")
	}
}

func TestFlushConventional(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	for i := 0; i < 5; i++ {
		l.Writeback(addr.BlockAddr(i), 0)
	}
	eng.Run()
	n := l.Flush()
	if n != 5 || len(mem.writes) != 5 {
		t.Fatalf("flushed %d, writes %v", n, mem.writes)
	}
	if len(l.Cache.DirtyBlocks()) != 0 {
		t.Fatal("dirty blocks remain")
	}
}

func TestFlushDBI(t *testing.T) {
	eng, l, mem := build(t, config.DBIAWB)
	for i := 0; i < 5; i++ {
		l.Writeback(addr.BlockAddr(i), 0)
	}
	eng.Run()
	n := l.Flush()
	if n != 5 || len(mem.writes) != 5 {
		t.Fatalf("flushed %d, writes %v", n, mem.writes)
	}
	if l.DBI.DirtyCount() != 0 {
		t.Fatal("DBI still tracks dirty blocks")
	}
}

func TestDemandBeatsFillerOnPort(t *testing.T) {
	eng, l, _ := build(t, config.DAWB)
	// Make a dirty eviction queue 127 filler lookups, then issue a
	// demand read; the demand read must not wait for all 127.
	l.Writeback(0, 0)
	eng.Run()
	for k := 1; k <= 4; k++ {
		l.Read(addr.BlockAddr(k*256), 0, nil)
		eng.Run()
	}
	// Fresh dirty eviction to enqueue fillers:
	l.Writeback(addr.BlockAddr(5*256), 0)
	eng.RunUntil(eng.Now() + 14) // let the writeback lookup complete
	l.Read(addr.BlockAddr(6*256), 0, nil)
	done := eng.Now()
	eng.Run()
	_ = done
	// The demand read's lookup happened before most fillers: demand ops
	// count must have advanced while fillers remain bounded.
	if l.Port.DemandOps.Value() == 0 {
		t.Fatal("no demand ops recorded")
	}
}

func TestCLBBypassesCleanPredictedMisses(t *testing.T) {
	var eng event.Engine
	mem := &fakeMem{eng: &eng, lat: 100}
	sys := config.Paper(1, config.DBIAWBCLB)
	sys.L3.SizeBytes = 64 << 10
	sys.L3.Ways = 4
	sys.MissPred.EpochCycles = 10_000
	l, err := New(&eng, addr.Default(), Config{Cores: 1, Sys: sys, Mem: mem, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive misses into sampled sets during epoch 0 (block addresses that
	// map to sampled sets: predictor samples set 0 mod per; set = b%256).
	for i := 0; i < 200; i++ {
		b := addr.BlockAddr(i * 256 * 8) // set 0 always
		l.Read(b, 0, nil)
		eng.Run()
	}
	// Cross the epoch boundary.
	eng.At(eng.Now()+event.Cycle(sys.MissPred.EpochCycles), func() {})
	eng.Run()
	lookupsBefore := l.TagLookups()
	// A predicted-miss access to a non-sampled set bypasses the lookup.
	served := false
	l.Read(addr.BlockAddr(12345*256+3), 0, func() { served = true })
	eng.Run()
	if !served {
		t.Fatal("bypassed read not served")
	}
	if l.Stat.Bypasses.Value() == 0 {
		t.Fatal("no bypass recorded")
	}
	if l.TagLookups() != lookupsBefore {
		t.Fatalf("bypass performed a tag lookup")
	}
}

func TestCLBDoesNotBypassDirty(t *testing.T) {
	var eng event.Engine
	mem := &fakeMem{eng: &eng, lat: 100}
	sys := config.Paper(1, config.DBIAWBCLB)
	sys.L3.SizeBytes = 64 << 10
	sys.L3.Ways = 4
	sys.MissPred.EpochCycles = 10_000
	l, err := New(&eng, addr.Default(), Config{Cores: 1, Sys: sys, Mem: mem, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dirty := addr.BlockAddr(777 * 256) // non-sampled set? set = 777*256 % 256 = 0...
	dirty = addr.BlockAddr(3)          // set 3: not sampled (sampled sets are multiples of 8)
	l.Writeback(dirty, 0)
	eng.Run()
	for i := 0; i < 200; i++ {
		l.Read(addr.BlockAddr(i*256*8), 0, nil)
		eng.Run()
	}
	eng.At(eng.Now()+event.Cycle(sys.MissPred.EpochCycles), func() {})
	eng.Run()
	served := false
	l.Read(dirty, 0, func() { served = true })
	eng.Run()
	if !served {
		t.Fatal("read not served")
	}
	if l.Stat.BypassDirty.Value() != 1 {
		t.Fatalf("dirty bypass guard = %d, want 1", l.Stat.BypassDirty.Value())
	}
	if len(mem.reads) == 0 {
		t.Fatal("no memory traffic at all")
	}
	// The dirty block must have been served from the cache, not memory.
	for _, r := range mem.reads {
		if r == dirty {
			t.Fatal("dirty block fetched from memory — stale data")
		}
	}
}
