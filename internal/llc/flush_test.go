package llc

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

// dirtyUp puts n dirty blocks into the LLC via writeback requests.
func dirtyUp(t *testing.T, eng *event.Engine, l *LLC, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		l.Writeback(addr.BlockAddr(i*65), 0) // spread sets and regions
	}
	eng.Run()
}

func TestFlushTimedConventional(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	dirtyUp(t, eng, l, 20)
	var blocks int
	var cycles event.Cycle
	l.FlushTimed(func(b int, c event.Cycle) { blocks, cycles = b, c })
	eng.Run()
	if blocks != 20 {
		t.Fatalf("flushed %d blocks, want 20", blocks)
	}
	if len(mem.writes) < 20 {
		t.Fatalf("memory writes = %d", len(mem.writes))
	}
	// The walk must cost at least one tag access per set.
	minCycles := event.Cycle(l.Cache.Sets()) * l.tagLatency()
	if cycles < minCycles {
		t.Fatalf("conventional flush took %d cycles, want >= %d (full set walk)",
			cycles, minCycles)
	}
	if len(l.Cache.DirtyBlocks()) != 0 {
		t.Fatal("dirty blocks remain")
	}
}

func TestFlushTimedDBI(t *testing.T) {
	eng, l, mem := build(t, config.DBIAWB)
	dirtyUp(t, eng, l, 20)
	dirtyBefore := l.DBI.DirtyCount()
	var blocks int
	var cycles event.Cycle
	l.FlushTimed(func(b int, c event.Cycle) { blocks, cycles = b, c })
	eng.Run()
	if blocks != dirtyBefore {
		t.Fatalf("flushed %d blocks, want %d", blocks, dirtyBefore)
	}
	if l.DBI.DirtyCount() != 0 {
		t.Fatal("DBI still tracks dirty blocks")
	}
	if len(mem.writes) < blocks {
		t.Fatalf("memory writes = %d", len(mem.writes))
	}
	_ = cycles
}

func TestFlushTimedDBIBeatsTagWalk(t *testing.T) {
	// Same dirty content, both organizations: the DBI flush must finish
	// in far fewer cycles because it skips the full set walk.
	engC, conv, _ := build(t, config.TADIP)
	dirtyUp(t, engC, conv, 10)
	var convCycles event.Cycle
	conv.FlushTimed(func(_ int, c event.Cycle) { convCycles = c })
	engC.Run()

	engD, dbil, _ := build(t, config.DBI)
	dirtyUp(t, engD, dbil, 10)
	var dbiCycles event.Cycle
	dbil.FlushTimed(func(_ int, c event.Cycle) { dbiCycles = c })
	engD.Run()

	if dbiCycles >= convCycles {
		t.Fatalf("DBI flush (%d cycles) not faster than tag walk (%d cycles)",
			dbiCycles, convCycles)
	}
	if dbiCycles == 0 {
		t.Fatal("DBI flush took zero cycles")
	}
}

func TestFlushTimedEmptyCache(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	called := false
	l.FlushTimed(func(b int, _ event.Cycle) {
		called = true
		if b != 0 {
			t.Fatalf("flushed %d blocks from an empty cache", b)
		}
	})
	eng.Run()
	if !called {
		t.Fatal("callback never fired")
	}
}
