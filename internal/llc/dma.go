package llc

import (
	"dbisim/internal/addr"
	"dbisim/internal/telemetry"
)

// DMACoherenceCheck answers the bulk-DMA coherence question of Section 7:
// before a device reads the physical range [lo, hi) from memory, which
// cached blocks are dirty and must be written back first?
//
// A DBI-augmented cache answers with one DBI query per region (each
// query covers a whole row's worth of blocks); a conventional cache must
// look up every block of the range in the tag store. The returned slice
// lists the dirty blocks; lookups reports how many structure queries the
// answer cost, the quantity the paper argues the DBI collapses.
func (l *LLC) DMACoherenceCheck(lo, hi addr.BlockAddr) (dirty []addr.BlockAddr, lookups uint64) {
	if hi <= lo {
		return nil, 0
	}
	if l.DBI != nil {
		before := l.DBI.Stat.Lookups.Value()
		dirty = l.DBI.DirtyInRange(lo, hi)
		return dirty, l.DBI.Stat.Lookups.Value() - before
	}
	for b := lo; b < hi; b++ {
		lookups++
		l.Cache.Stats.TagLookups.Inc()
		if l.Cache.IsDirty(b) {
			dirty = append(dirty, b)
		}
	}
	return dirty, lookups
}

// DMAWriteback performs the writebacks a DMACoherenceCheck demands and
// cleans the blocks, leaving them resident: the device will read
// consistent data from memory.
func (l *LLC) DMAWriteback(blocks []addr.BlockAddr) {
	for _, b := range blocks {
		l.Attr.Charge(telemetry.ABytesWBDMA, l.Geo.BlockSize)
		l.mem.Write(b)
		if l.DBI != nil {
			l.DBI.ClearDirty(b)
		} else {
			l.Cache.SetDirty(b, false)
		}
	}
}
