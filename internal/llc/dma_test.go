package llc

import (
	"testing"

	"dbisim/internal/config"
)

func TestDMACoherenceConventional(t *testing.T) {
	eng, l, mem := build(t, config.TADIP)
	l.Writeback(100, 0)
	l.Writeback(150, 0)
	l.Writeback(999, 0) // outside the range
	eng.Run()
	dirty, lookups := l.DMACoherenceCheck(64, 256)
	if len(dirty) != 2 {
		t.Fatalf("dirty = %v", dirty)
	}
	// Conventional: one lookup per block of the range.
	if lookups != 256-64 {
		t.Fatalf("lookups = %d, want %d", lookups, 256-64)
	}
	l.DMAWriteback(dirty)
	if got, _ := l.DMACoherenceCheck(64, 256); len(got) != 0 {
		t.Fatalf("still dirty after DMA writeback: %v", got)
	}
	if len(mem.writes) < 2 {
		t.Fatal("writebacks did not reach memory")
	}
}

func TestDMACoherenceDBIUsesFewLookups(t *testing.T) {
	eng, l, _ := build(t, config.DBI)
	l.Writeback(100, 0)
	l.Writeback(150, 0)
	eng.Run()
	dirty, lookups := l.DMACoherenceCheck(64, 256)
	if len(dirty) != 2 {
		t.Fatalf("dirty = %v", dirty)
	}
	// DBI: one bulk query regardless of range size.
	if lookups >= 192 {
		t.Fatalf("DBI DMA check cost %d lookups", lookups)
	}
	l.DMAWriteback(dirty)
	if l.DBI.IsDirty(100) || l.DBI.IsDirty(150) {
		t.Fatal("blocks still dirty in DBI")
	}
	if !l.Cache.Contains(100) {
		t.Fatal("DMA writeback evicted the block")
	}
}

func TestDMAEmptyRange(t *testing.T) {
	_, l, _ := build(t, config.DBI)
	if d, n := l.DMACoherenceCheck(100, 100); d != nil || n != 0 {
		t.Fatal("empty range returned work")
	}
	if d, n := l.DMACoherenceCheck(200, 100); d != nil || n != 0 {
		t.Fatal("inverted range returned work")
	}
}
