package llc

import (
	"dbisim/internal/addr"
	"dbisim/internal/cache"
	"dbisim/internal/dbi"
	"dbisim/internal/event"
	"dbisim/internal/misspred"
)

// tagReqState records one pooled tag-store request by its registry
// position; the record itself stays put (pending port operations and
// engine events hold its prebound callbacks), only its contents move.
// The done callback is a captured function value — valid only restored
// into the machine that created it, which the system layer enforces.
type tagReqState struct {
	id     int32
	b      addr.BlockAddr
	thread int
	done   func()
	start  event.Cycle
}

// fillReqState records one pooled memory-fill request likewise.
type fillReqState struct {
	id       int32
	b        addr.BlockAddr
	thread   int
	allocate bool
	merged   bool
	done     func()
}

// scanJobState is one queued harvest row; the blocks are copied into
// checkpoint-owned storage (the live job's buffer belongs to the LLC's
// mate pool and keeps circulating).
type scanJobState struct {
	blocks []addr.BlockAddr
	idx    int
	paced  bool
	visit  func(addr.BlockAddr)
}

// State is a checkpoint of an LLC: tag store, port, DBI, miss
// predictor, MSHR file, the scan state machine (queue, pacing clock,
// in-flight lookup) and both pooled request files. The zero value is
// ready; buffers are reused across captures.
type State struct {
	cache cache.CacheState
	port  cache.PortState
	dbi   dbi.State
	pred  misspred.State
	mshr  cache.MSHRState

	scanQ        []scanJobState
	scanning     bool
	nextScanAt   event.Cycle
	scanWake     bool
	curScanBlock addr.BlockAddr
	curScanVisit func(addr.BlockAddr)

	tags  []tagReqState
	fills []fillReqState

	stat Stats
}

// Snapshot captures the LLC into st.
func (l *LLC) Snapshot(st *State) {
	l.Cache.Snapshot(&st.cache)
	l.Port.Snapshot(&st.port)
	if l.DBI != nil {
		l.DBI.Snapshot(&st.dbi)
	}
	if l.Pred != nil {
		l.Pred.Snapshot(&st.pred)
	}
	l.mshr.Snapshot(&st.mshr)

	if len(st.scanQ) < len(l.scanQ) {
		st.scanQ = append(st.scanQ, make([]scanJobState, len(l.scanQ)-len(st.scanQ))...)
	}
	st.scanQ = st.scanQ[:len(l.scanQ)]
	for i := range l.scanQ {
		j := &l.scanQ[i]
		s := &st.scanQ[i]
		s.blocks = append(s.blocks[:0], j.blocks...)
		s.idx, s.paced, s.visit = j.idx, j.paced, j.visit
	}
	st.scanning = l.scanning
	st.nextScanAt = l.nextScanAt
	st.scanWake = l.scanWake
	st.curScanBlock = l.curScanBlock
	st.curScanVisit = l.curScanVisit

	st.tags = st.tags[:0]
	for _, rr := range l.tagAll {
		if rr.live {
			st.tags = append(st.tags, tagReqState{rr.id, rr.b, rr.thread, rr.done, rr.start})
		}
	}
	st.fills = st.fills[:0]
	for _, r := range l.fillAll {
		if r.live {
			st.fills = append(st.fills, fillReqState{r.id, r.b, r.thread, r.allocate, r.merged, r.done})
		}
	}
	st.stat = l.Stat
}

// Restore writes st back into the LLC that produced it. Scan-queue
// buffers are drawn from the mate pool; the pooled request free lists
// are rebuilt from the registries in registry order — which record
// serves a future request is unobservable, since contents are fully
// assigned on allocation.
func (l *LLC) Restore(st *State) {
	l.Cache.Restore(&st.cache)
	l.Port.Restore(&st.port)
	if l.DBI != nil {
		l.DBI.Restore(&st.dbi)
	}
	if l.Pred != nil {
		l.Pred.Restore(&st.pred)
	}
	l.mshr.Restore(&st.mshr)

	for i := range l.scanQ {
		l.putMates(l.scanQ[i].blocks)
		l.scanQ[i] = scanJob{}
	}
	l.scanQ = l.scanQ[:0]
	for i := range st.scanQ {
		s := &st.scanQ[i]
		l.scanQ = append(l.scanQ, scanJob{
			blocks: append(l.getMates(), s.blocks...),
			idx:    s.idx,
			paced:  s.paced,
			visit:  s.visit,
		})
	}
	l.scanning = st.scanning
	l.nextScanAt = st.nextScanAt
	l.scanWake = st.scanWake
	l.curScanBlock = st.curScanBlock
	l.curScanVisit = st.curScanVisit

	for _, rr := range l.tagAll {
		rr.live = false
		rr.done = nil
	}
	for _, ts := range st.tags {
		rr := l.tagAll[ts.id]
		rr.live = true
		rr.b, rr.thread, rr.done, rr.start = ts.b, ts.thread, ts.done, ts.start
	}
	l.tagFree = nil
	for i := len(l.tagAll) - 1; i >= 0; i-- {
		if rr := l.tagAll[i]; !rr.live {
			rr.next = l.tagFree
			l.tagFree = rr
		} else {
			rr.next = nil
		}
	}
	for _, r := range l.fillAll {
		r.live = false
		r.done = nil
	}
	for _, fs := range st.fills {
		r := l.fillAll[fs.id]
		r.live = true
		r.b, r.thread, r.allocate, r.merged, r.done = fs.b, fs.thread, fs.allocate, fs.merged, fs.done
	}
	l.fillFree = nil
	for i := len(l.fillAll) - 1; i >= 0; i-- {
		if r := l.fillAll[i]; !r.live {
			r.next = l.fillFree
			l.fillFree = r
		} else {
			r.next = nil
		}
	}
	l.Stat = st.stat
}
