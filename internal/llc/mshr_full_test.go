package llc

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

func TestMSHRFullFallsBackToUnmergedFill(t *testing.T) {
	var eng event.Engine
	mem := &fakeMem{eng: &eng, lat: 1_000_000} // memory never answers in time
	sys := config.Scaled(1, config.TADIP)
	sys.L3.SizeBytes = 64 << 10
	sys.L3.Ways = 4
	sys.L3.MSHRs = 4
	l, err := New(&eng, addr.Default(), Config{Cores: 1, Sys: sys, Mem: mem, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Issue more distinct cold reads than MSHRs; the overflow reads must
	// still reach memory (unmerged) rather than deadlock.
	const reads = 8
	for i := 0; i < reads; i++ {
		l.Read(addr.BlockAddr(i*256), 0, nil)
	}
	eng.RunUntil(10_000) // let all tag lookups complete; fills stay pending
	if got := len(mem.reads); got != reads {
		t.Fatalf("memory reads = %d, want %d (no merging possible)", got, reads)
	}
	if l.Stat.MSHRMergeSkips.Value() != reads-4 {
		t.Fatalf("merge skips = %d, want %d", l.Stat.MSHRMergeSkips.Value(), reads-4)
	}
}

func TestReadHitDoesNotTouchPredictorOutsideSamples(t *testing.T) {
	var eng event.Engine
	mem := &fakeMem{eng: &eng, lat: 50}
	sys := config.Scaled(1, config.DBICLB)
	sys.L3.SizeBytes = 64 << 10
	sys.L3.Ways = 4
	l, err := New(&eng, addr.Default(), Config{Cores: 1, Sys: sys, Mem: mem, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With no miss evidence, nothing bypasses regardless of set.
	served := 0
	for i := 0; i < 10; i++ {
		l.Read(addr.BlockAddr(i), 0, func() { served++ })
	}
	eng.Run()
	if served != 10 {
		t.Fatalf("served %d of 10", served)
	}
	if l.Stat.Bypasses.Value() != 0 {
		t.Fatal("bypassed without evidence")
	}
}
