package llc

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
)

// queueMem is a fakeMem that also reports a (fixed) write-queue depth.
type queueMem struct {
	fakeMem
	depth int
}

func (m *queueMem) WriteQueueLen() int { return m.depth }

func buildEager(t *testing.T, mech config.Mechanism) (*queueMem, *LLC) {
	t.Helper()
	eng, l, _ := build(t, mech)
	qm := &queueMem{fakeMem: fakeMem{eng: eng, lat: 100}}
	l.mem = qm
	return qm, l
}

func TestEagerRequiresDBIAndQueueView(t *testing.T) {
	_, l, _ := build(t, config.TADIP)
	if l.EnableEagerWriteback(EagerConfig{}) {
		t.Fatal("eager writeback enabled without a DBI")
	}
	_, ldbi, _ := build(t, config.DBI)
	// fakeMem does not expose a write queue.
	if ldbi.EnableEagerWriteback(EagerConfig{}) {
		t.Fatal("eager writeback enabled without a queue view")
	}
	qm, l2 := buildEager(t, config.DBI)
	_ = qm
	if !l2.EnableEagerWriteback(EagerConfig{Interval: 100, LowWater: 8}) {
		t.Fatal("eager writeback refused a valid setup")
	}
}

func TestEagerPumpsDuringIdle(t *testing.T) {
	qm, l := buildEager(t, config.DBI)
	qm.depth = 0 // memory idle
	if !l.EnableEagerWriteback(EagerConfig{Interval: 50, LowWater: 8}) {
		t.Fatal("setup failed")
	}
	for i := 0; i < 8; i++ {
		l.Writeback(addr.BlockAddr(i), 0) // one region, 8 dirty blocks
	}
	l.Eng.RunUntil(5_000)
	if l.Stat.EagerWBs.Value() == 0 {
		t.Fatal("no eager writebacks during idle memory")
	}
	if l.DBI.DirtyCount() != 0 {
		t.Fatalf("dirty blocks remain: %d", l.DBI.DirtyCount())
	}
	if len(qm.writes) < 8 {
		t.Fatalf("memory writes = %d, want >= 8", len(qm.writes))
	}
	// The blocks stay resident (they were only cleaned).
	if !l.Cache.Contains(0) {
		t.Fatal("eager writeback evicted a block")
	}
}

func TestEagerBacksOffWhenBusy(t *testing.T) {
	qm, l := buildEager(t, config.DBI)
	qm.depth = 64 // memory write buffer busy
	if !l.EnableEagerWriteback(EagerConfig{Interval: 50, LowWater: 8}) {
		t.Fatal("setup failed")
	}
	for i := 0; i < 8; i++ {
		l.Writeback(addr.BlockAddr(i), 0)
	}
	l.Eng.RunUntil(5_000)
	if l.Stat.EagerWBs.Value() != 0 {
		t.Fatalf("eager pump ran against a busy memory: %d", l.Stat.EagerWBs.Value())
	}
	if l.DBI.DirtyCount() == 0 {
		t.Fatal("dirty blocks vanished without the pump")
	}
}

func TestOldestDirtyRowPicksLRW(t *testing.T) {
	_, l, _ := build(t, config.DBI)
	l.Writeback(0, 0)    // region 0, written first
	l.Writeback(6400, 0) // region 100
	l.Eng.Run()
	row := l.DBI.OldestDirtyRow()
	if len(row) != 1 || row[0] != 0 {
		t.Fatalf("OldestDirtyRow = %v, want region 0's block", row)
	}
	// Rewriting region 0 makes region 100 the oldest.
	l.Writeback(1, 0)
	l.Eng.Run()
	row = l.DBI.OldestDirtyRow()
	if len(row) != 1 || row[0] != 6400 {
		t.Fatalf("OldestDirtyRow after rewrite = %v", row)
	}
	// Empty DBI yields nil.
	for _, b := range l.DBI.AllDirtyBlocks() {
		l.DBI.ClearDirty(b)
	}
	if l.DBI.OldestDirtyRow() != nil {
		t.Fatal("OldestDirtyRow on empty DBI")
	}
}
