// Package llc implements the shared last-level cache organizations the
// paper evaluates (Table 2): the LRU baseline, TA-DIP, DRAM-aware
// writeback (DAWB), the Virtual Write Queue (VWQ), Skip Cache, and the
// DBI-augmented cache with the aggressive-writeback (AWB) and
// cache-lookup-bypass (CLB) optimizations.
//
// The LLC owns the structures whose interplay produces the paper's
// results: the serial tag store behind a contended port (demand lookups
// beat filler lookups; nothing preempts), the Dirty-Block Index, the
// Skip-Cache miss predictor, and the writeback path into the memory
// controller's write buffer.
package llc

import (
	"fmt"

	"dbisim/internal/addr"
	"dbisim/internal/cache"
	"dbisim/internal/config"
	"dbisim/internal/dbi"
	"dbisim/internal/event"
	"dbisim/internal/misspred"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// Memory is the LLC's view of the memory controller.
type Memory interface {
	// Read fetches a block; done fires when data arrives.
	Read(b addr.BlockAddr, done func())
	// Write posts a block writeback.
	Write(b addr.BlockAddr)
}

// Stats aggregates LLC-side statistics. Tag-store lookups live in the
// embedded cache's stats; these count mechanism-level events.
type Stats struct {
	Reads         stats.Counter // demand reads from the private levels
	ReadHits      stats.Counter
	ReadMisses    stats.Counter
	Bypasses      stats.Counter // CLB: reads sent to memory without a tag lookup
	BypassDirty   stats.Counter // CLB: bypass cancelled because the DBI said dirty
	WritebackReqs stats.Counter // writeback requests from the private levels

	FillerLookups  stats.Counter // background tag lookups (DAWB/VWQ/AWB)
	ProactiveWBs   stats.Counter // row-mate writebacks issued early
	DBIEvictionWBs stats.Counter // writebacks forced by DBI evictions
	VictimWBs      stats.Counter // dirty blocks written back on eviction
	WriteThroughs  stats.Counter // Skip Cache write-through traffic
	MSHRMergeSkips stats.Counter // fills issued without MSHR merge (file full)
	ScanDrops      stats.Counter // harvest scans dropped on a full scan queue
	EagerWBs       stats.Counter // writebacks pumped during memory idle time
}

// scanJob is one row's worth of proactive-writeback work: the scanner
// walks the candidate blocks one background tag lookup at a time — the
// single scan state machine real DAWB/VWQ/AWB hardware uses. Paced jobs
// (optional harvests) additionally rate-limit their lookups so filler
// traffic cannot saturate the tag port; must-run jobs (DBI evictions)
// proceed as fast as the port grants them.
// The job owns its blocks slice: enqueueScan takes ownership, and the
// scanner returns the buffer to the LLC's mate pool once the job drains
// (idx advances instead of reslicing so the backing array survives).
type scanJob struct {
	blocks []addr.BlockAddr
	idx    int
	paced  bool
	visit  func(addr.BlockAddr)
}

// LLC is one shared last-level cache instance.
type LLC struct {
	Eng  *event.Engine
	Geo  addr.Geometry
	Mech config.Mechanism
	Prm  config.CacheParams

	Cache *cache.Cache
	Port  *cache.Port
	DBI   *dbi.DBI            // nil unless Mech.UsesDBI()
	Pred  *misspred.Predictor // nil unless CLB or Skip Cache
	mshr  *cache.MSHR
	mem   Memory

	// Trc, when non-nil, receives tag-lookup spans, bypass instants and
	// the DBI lifecycle events (entry allocate/evict, AWB harvests).
	Trc *telemetry.Tracer

	// Attr, when non-nil, receives the LLC's attribution charges:
	// per-purpose tag-port cycle categories at every Port.Submit site
	// (the port itself charges the llc_port domain total), dbi.probe
	// cycles for DBI queries, and one block of dram_bus bytes per
	// memory read/write the LLC issues, categorized by purpose.
	Attr *telemetry.Attribution

	// vwqDepth is how many LRU ways VWQ scans (the Set State Vector
	// covers this many ways per set).
	vwqDepth int

	// dbiLat is the configured DBI lookup latency in cycles.
	dbiLat event.Cycle

	// scanQ bounds in-flight proactive-writeback work: one lookup at a
	// time, a handful of queued rows. Jobs arriving at a full queue are
	// dropped (the harvest is an optimization), except DBI-eviction
	// writebacks, which are required for correctness and always enqueue
	// (the paper's evict buffer).
	scanQ      []scanJob
	scanning   bool
	nextScanAt event.Cycle // earliest start for the next paced lookup
	scanWake   bool        // a delayed pumpScan is scheduled

	// In-flight scan lookup state plus prebound callbacks and the
	// tag-request free list: the lookup, writeback and scan paths reuse
	// the same function values and pooled records instead of allocating
	// a closure per tag-store operation. Only one scan lookup is in
	// flight at a time (scanning), so a single field pair carries its
	// state.
	// tagAll/fillAll register every pooled record ever allocated (with
	// live flags maintained at get/put) so a checkpoint can enumerate
	// the pools by index.
	curScanBlock addr.BlockAddr
	curScanVisit func(addr.BlockAddr)
	scanDoneFn   event.Func
	scanWakeFn   event.Func
	tagFree      *tagReq
	tagAll       []*tagReq
	fillAll      []*fillReq

	// mateFree recycles harvest candidate buffers (row-mate lists, DBI
	// eviction drains, flush scratch) so the steady-state harvest paths
	// stop allocating a slice per dirty eviction.
	mateFree [][]addr.BlockAddr

	// fillFree recycles memory-fill requests so an LLC miss issues no
	// new closure on its way to DRAM.
	fillFree *fillReq

	// Prebound harvest visitors (each captures only the LLC).
	dbiEvictVisit func(addr.BlockAddr)
	dawbVisit     func(addr.BlockAddr)
	vwqVisit      func(addr.BlockAddr)
	awbVisit      func(addr.BlockAddr)

	Stat Stats
}

// tagReq is a pooled tag-store request: one record carries a demand
// read (possibly via the CLB's DBI check first) or a writeback through
// the contended port, with its callbacks bound once at allocation.
type tagReq struct {
	l      *LLC
	id     int32 // position in tagAll
	live   bool
	b      addr.BlockAddr
	thread int
	done   func()
	start  event.Cycle
	next   *tagReq
	clbFn  event.Func // DBI dirty check before a predicted-miss bypass
	readFn event.Func // demand tag-lookup port callback
	wbFn   event.Func // writeback port callback
}

func (l *LLC) getReq(b addr.BlockAddr, thread int, done func()) *tagReq {
	rr := l.tagFree
	if rr == nil {
		rr = &tagReq{l: l, id: int32(len(l.tagAll))}
		rr.clbFn = rr.clbCheck
		rr.readFn = rr.lookupDone
		rr.wbFn = rr.writebackDone
		l.tagAll = append(l.tagAll, rr)
	} else {
		l.tagFree = rr.next
	}
	rr.live = true
	rr.b, rr.thread, rr.done = b, thread, done
	return rr
}

func (l *LLC) putReq(rr *tagReq) {
	rr.live = false
	rr.done = nil
	rr.next = l.tagFree
	l.tagFree = rr
}

// getMates returns a zero-length candidate buffer from the pool (nil
// when the pool is empty; append grows it once and the buffer then
// recirculates at full size).
func (l *LLC) getMates() []addr.BlockAddr {
	if n := len(l.mateFree); n > 0 {
		s := l.mateFree[n-1]
		l.mateFree[n-1] = nil
		l.mateFree = l.mateFree[:n-1]
		return s
	}
	return nil
}

func (l *LLC) putMates(s []addr.BlockAddr) {
	if cap(s) == 0 {
		return
	}
	l.mateFree = append(l.mateFree, s[:0])
}

// scanQueueCap bounds the number of queued harvest rows.
const scanQueueCap = 8

// scanInterval is the pacing of optional harvest lookups (cycles per
// lookup). It bounds filler tag traffic the way the paper's clipped
// Figure-6c bars imply (~1 lookup per hundred cycles for the worst
// DAWB cases).
const scanInterval = 40

// Config carries what New needs beyond the system config.
type Config struct {
	Cores int
	Sys   config.SystemConfig
	Mem   Memory
	Seed  int64
}

// New builds the LLC for the configured mechanism.
func New(eng *event.Engine, geo addr.Geometry, c Config) (*LLC, error) {
	sys := c.Sys
	l3, err := cache.New(sys.L3, c.Cores, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("llc: %w", err)
	}
	l := &LLC{
		Eng:      eng,
		Geo:      geo,
		Mech:     sys.Mechanism,
		Prm:      sys.L3,
		Cache:    l3,
		Port:     &cache.Port{Eng: eng},
		mshr:     cache.NewMSHR(sys.L3.MSHRs),
		mem:      c.Mem,
		vwqDepth: 2,
	}
	if sys.Mechanism.UsesDBI() {
		d, err := dbi.New(dbi.WithGeometry(geo), dbi.WithParams(sys.DBI),
			dbi.WithCacheBlocks(sys.L3.Blocks()), dbi.WithSeed(c.Seed+1))
		if err != nil {
			return nil, fmt.Errorf("llc: %w", err)
		}
		l.DBI = d
		l.dbiLat = event.Cycle(sys.DBI.Latency)
		if l.dbiLat == 0 {
			l.dbiLat = 4
		}
	}
	if sys.Mechanism.HasCLB() || sys.Mechanism == config.SkipCache {
		p, err := misspred.New(sys.MissPred, sys.L3.Sets(), c.Cores)
		if err != nil {
			return nil, fmt.Errorf("llc: %w", err)
		}
		l.Pred = p
	}
	l.bindCallbacks()
	return l, nil
}

// bindCallbacks creates, once, the function values the hot paths reuse.
func (l *LLC) bindCallbacks() {
	l.scanDoneFn = func() {
		l.scanning = false
		visit, b := l.curScanVisit, l.curScanBlock
		l.curScanVisit = nil
		visit(b)
		l.pumpScan()
	}
	l.scanWakeFn = func() {
		l.scanWake = false
		l.pumpScan()
	}
	l.dbiEvictVisit = func(blk addr.BlockAddr) {
		l.Stat.FillerLookups.Inc()
		if _, hit := l.Cache.Lookup(blk); hit {
			l.Stat.DBIEvictionWBs.Inc()
			l.Attr.Charge(telemetry.ABytesDBIDrain, l.Geo.BlockSize)
			l.mem.Write(blk)
		}
	}
	l.dawbVisit = func(mate addr.BlockAddr) {
		l.Stat.FillerLookups.Inc()
		if _, hit := l.Cache.Lookup(mate); hit && l.Cache.IsDirty(mate) {
			l.Cache.SetDirty(mate, false)
			l.Stat.ProactiveWBs.Inc()
			l.Attr.Charge(telemetry.ABytesWBProactive, l.Geo.BlockSize)
			l.mem.Write(mate)
		}
	}
	l.vwqVisit = func(mate addr.BlockAddr) {
		l.Stat.FillerLookups.Inc()
		way, hit := l.Cache.Lookup(mate)
		if hit && l.Cache.IsDirty(mate) &&
			l.Cache.RankOf(l.Cache.SetOf(mate), way) < l.vwqDepth {
			l.Cache.SetDirty(mate, false)
			l.Stat.ProactiveWBs.Inc()
			l.Attr.Charge(telemetry.ABytesWBProactive, l.Geo.BlockSize)
			l.mem.Write(mate)
		}
	}
	l.awbVisit = func(mate addr.BlockAddr) {
		l.Stat.FillerLookups.Inc()
		if _, hit := l.Cache.Lookup(mate); hit && l.DBI.IsDirty(mate) {
			l.DBI.ClearDirty(mate)
			l.Stat.ProactiveWBs.Inc()
			l.Attr.Charge(telemetry.ABytesWBAWBHarvest, l.Geo.BlockSize)
			l.mem.Write(mate)
		}
	}
}

// tagLatency is the port occupancy of one tag lookup.
func (l *LLC) tagLatency() event.Cycle { return event.Cycle(l.Prm.TagLatency) }

// dataLatency is the additional latency of the (serial) data access.
func (l *LLC) dataLatency() event.Cycle { return event.Cycle(l.Prm.DataLatency) }

// dbiLatency is the DBI lookup latency.
func (l *LLC) dbiLatency() event.Cycle {
	if l.DBI == nil {
		return 0
	}
	return l.dbiLat
}

// Read handles a demand read from the private levels. done fires when
// the data is available to the requester.
func (l *LLC) Read(b addr.BlockAddr, thread int, done func()) {
	l.Stat.Reads.Inc()
	set := l.Cache.SetOf(b)

	// CLB / Skip Cache: predicted-miss accesses skip the tag lookup.
	if l.Pred != nil && l.Pred.PredictMiss(thread, set, l.Eng.Now()) {
		if l.Mech == config.SkipCache {
			// Write-through cache: no block can be dirty; bypass
			// unconditionally.
			l.bypass(b, done)
			return
		}
		// DBI+CLB: the bypass is safe only if the block is not dirty.
		// The DBI answers in a few cycles, far cheaper than the tag
		// store (Figure 4).
		rr := l.getReq(b, thread, done)
		l.Attr.Charge(telemetry.ADBIProbe, uint64(l.dbiLatency()))
		l.Eng.After(l.dbiLatency(), rr.clbFn)
		return
	}
	l.lookupRead(b, thread, done)
}

// clbCheck resolves a predicted-miss read once the DBI answered: dirty
// blocks fall back to the tag lookup, clean ones bypass to memory.
func (rr *tagReq) clbCheck() {
	l := rr.l
	b, thread, done := rr.b, rr.thread, rr.done
	l.putReq(rr)
	if l.DBI.IsDirty(b) {
		l.Stat.BypassDirty.Inc()
		l.lookupRead(b, thread, done)
		return
	}
	l.bypass(b, done)
}

// bypass forwards a read to memory without touching the tag store.
// Bypassed fills do not allocate in the LLC (the block was predicted
// dead on arrival).
func (l *LLC) bypass(b addr.BlockAddr, done func()) {
	l.Stat.Bypasses.Inc()
	l.Trc.Instant("llc", "bypass", telemetry.TIDLLC, uint64(l.Eng.Now()), uint64(b))
	l.fetch(b, done, false, 0)
}

// lookupRead performs the demand tag lookup and the hit/miss handling.
func (l *LLC) lookupRead(b addr.BlockAddr, thread int, done func()) {
	rr := l.getReq(b, thread, done)
	rr.start = l.Eng.Now()
	l.Attr.Charge(telemetry.ALLCTagProbe, uint64(l.tagLatency()))
	l.Port.Submit(false, l.tagLatency(), rr.readFn)
}

// lookupDone runs when the demand lookup wins and finishes on the port.
// The record releases before the downstream work (which may submit new
// lookups that reuse it); everything needed is copied out first.
func (rr *tagReq) lookupDone() {
	l := rr.l
	b, thread, done, start := rr.b, rr.thread, rr.done, rr.start
	l.putReq(rr)
	// Span covers queueing for the contended port plus occupancy.
	l.Trc.Complete("llc", "tag_lookup", telemetry.TIDLLC, uint64(start), uint64(l.Eng.Now()), uint64(b))
	hit := l.Cache.Access(b, thread)
	if l.Pred != nil {
		l.Pred.Observe(thread, l.Cache.SetOf(b), hit, l.Eng.Now())
	}
	if hit {
		l.Stat.ReadHits.Inc()
		l.Eng.After(l.dataLatency(), done)
		return
	}
	l.Stat.ReadMisses.Inc()
	l.fetch(b, done, true, thread)
}

// fillReq is a pooled memory-fill request with its callback bound once
// at allocation. Merged fills complete the MSHR entry on arrival;
// unmerged (MSHR-full) fills invoke done directly.
type fillReq struct {
	id       int32 // position in fillAll
	live     bool
	b        addr.BlockAddr
	thread   int
	allocate bool
	merged   bool
	done     func()
	fn       func()
	next     *fillReq
}

// getFill takes a fill record from the free list, binding its callback
// only on first allocation.
func (l *LLC) getFill(b addr.BlockAddr, thread int, allocate, merged bool, done func()) *fillReq {
	r := l.fillFree
	if r == nil {
		r = &fillReq{id: int32(len(l.fillAll))}
		r.fn = func() { l.completeFill(r) }
		l.fillAll = append(l.fillAll, r)
	} else {
		l.fillFree = r.next
	}
	r.next = nil
	r.live = true
	r.b, r.thread, r.allocate, r.merged, r.done = b, thread, allocate, merged, done
	return r
}

// completeFill runs when the memory read arrives. The record is
// recycled before the fill executes: completing the MSHR entry wakes
// demand waiters that may synchronously issue the next miss and reuse
// it, so all state is copied out first.
func (l *LLC) completeFill(r *fillReq) {
	b, thread, allocate, merged, done := r.b, r.thread, r.allocate, r.merged, r.done
	r.live = false
	r.done = nil
	r.next = l.fillFree
	l.fillFree = r
	if allocate {
		l.fill(b, thread)
	}
	if merged {
		l.mshr.Complete(uint64(b))
	} else {
		done()
	}
}

// fetch issues the memory read (with MSHR merging) and optionally
// allocates the block on fill.
func (l *LLC) fetch(b addr.BlockAddr, done func(), allocate bool, thread int) {
	key := uint64(b)
	if l.mshr.Outstanding(key) {
		l.mshr.Register(key, done)
		return
	}
	cat := telemetry.ABytesReadBypass
	if allocate {
		cat = telemetry.ABytesReadFill
	}
	l.Attr.Charge(cat, l.Geo.BlockSize)
	if l.mshr.Full() {
		// No MSHR available: issue an unmerged fill (counted; rare).
		l.Stat.MSHRMergeSkips.Inc()
		l.mem.Read(b, l.getFill(b, thread, allocate, false, done).fn)
		return
	}
	l.mshr.Register(key, done)
	l.mem.Read(b, l.getFill(b, thread, allocate, true, nil).fn)
}

// fill inserts a clean block fetched from memory and handles the victim.
func (l *LLC) fill(b addr.BlockAddr, thread int) {
	victim := l.Cache.Insert(b, thread, false)
	if victim.Valid {
		l.handleEviction(victim)
	}
}

// Writeback handles a writeback request from the private levels
// (Section 2.2.2): insert/update the block, then record its dirty state
// in the tag entry or the DBI depending on the mechanism.
func (l *LLC) Writeback(b addr.BlockAddr, thread int) {
	l.Stat.WritebackReqs.Inc()
	rr := l.getReq(b, thread, nil)
	l.Attr.Charge(telemetry.ALLCTagWriteback, uint64(l.tagLatency()))
	l.Port.Submit(false, l.tagLatency(), rr.wbFn)
}

// writebackDone installs the written-back block once its tag lookup
// finishes on the port.
func (rr *tagReq) writebackDone() {
	l := rr.l
	b, thread := rr.b, rr.thread
	l.putReq(rr)
	switch l.Mech {
	case config.SkipCache:
		// Write-through: update/allocate but never hold dirty data.
		victim := l.Cache.Insert(b, thread, false)
		if victim.Valid {
			l.handleEviction(victim)
		}
		l.Stat.WriteThroughs.Inc()
		l.Attr.Charge(telemetry.ABytesWBWriteThrough, l.Geo.BlockSize)
		l.mem.Write(b)
	default:
		if l.DBI != nil {
			victim := l.Cache.Insert(b, thread, false)
			if victim.Valid {
				l.handleEviction(victim)
			}
			l.dbiSetDirty(b)
		} else {
			victim := l.Cache.Insert(b, thread, true)
			if victim.Valid {
				l.handleEviction(victim)
			}
		}
	}
}

// dbiSetDirty marks a block dirty in the DBI and services any DBI
// eviction it causes: every block the displaced entry tracked is written
// back (after a background tag lookup to read its data) and becomes
// clean in the cache — the blocks themselves stay resident
// (Section 2.2.4). The eviction goes through the evict buffer (scan
// queue) so its writebacks interleave with demand traffic.
func (l *LLC) dbiSetDirty(b addr.BlockAddr) {
	var preInserts uint64
	if l.Trc != nil {
		preInserts = l.DBI.Stat.EntryInserts.Value()
	}
	scratch := l.getMates()
	ev, evicted := l.DBI.SetDirtyInto(b, scratch)
	if l.Trc != nil {
		now := uint64(l.Eng.Now())
		if l.DBI.Stat.EntryInserts.Value() > preInserts {
			l.Trc.Instant("dbi", "entry_alloc", telemetry.TIDDBI, now, uint64(b))
		}
		if evicted {
			// The drain of an evicted entry's aggregated writebacks.
			l.Trc.Instant("dbi", "entry_evict_drain", telemetry.TIDDBI, now, uint64(len(ev.Blocks)))
		}
	}
	if !evicted {
		l.putMates(scratch)
		return
	}
	l.enqueueScan(ev.Blocks, true, l.dbiEvictVisit)
}

// enqueueScan adds a row's candidate blocks to the scan queue, taking
// ownership of the slice (it is recycled through the mate pool once the
// job drains or drops). must marks correctness-critical jobs (DBI
// evictions) that may not be dropped when the queue is full and are not
// rate-limited.
func (l *LLC) enqueueScan(blocks []addr.BlockAddr, must bool, visit func(addr.BlockAddr)) {
	if len(blocks) == 0 {
		l.putMates(blocks)
		return
	}
	if !must && len(l.scanQ) >= scanQueueCap {
		l.Stat.ScanDrops.Inc()
		l.putMates(blocks)
		return
	}
	job := scanJob{blocks: blocks, paced: !must, visit: visit}
	if must {
		// Correctness writebacks queue ahead of optional harvests.
		i := 0
		for i < len(l.scanQ) && !l.scanQ[i].paced {
			i++
		}
		l.scanQ = append(l.scanQ, scanJob{})
		copy(l.scanQ[i+1:], l.scanQ[i:])
		l.scanQ[i] = job
	} else {
		l.scanQ = append(l.scanQ, job)
	}
	l.pumpScan()
}

// pumpScan advances the single scan state machine: one background tag
// lookup in flight at a time, paced jobs no faster than one per
// scanInterval cycles.
func (l *LLC) pumpScan() {
	if l.scanning || l.scanWake {
		return
	}
	for len(l.scanQ) > 0 && l.scanQ[0].idx == len(l.scanQ[0].blocks) {
		l.putMates(l.scanQ[0].blocks)
		n := len(l.scanQ)
		copy(l.scanQ, l.scanQ[1:])
		l.scanQ[n-1] = scanJob{}
		l.scanQ = l.scanQ[:n-1]
	}
	if len(l.scanQ) == 0 {
		return
	}
	job := &l.scanQ[0]
	now := l.Eng.Now()
	if job.paced && now < l.nextScanAt {
		l.scanWake = true
		l.Eng.At(l.nextScanAt, l.scanWakeFn)
		return
	}
	// Copy the in-flight lookup's state out of the queue (insertions may
	// shift elements) onto the LLC: only one scan is in flight at a time.
	l.curScanBlock = job.blocks[job.idx]
	l.curScanVisit = job.visit
	job.idx++
	if job.paced {
		l.nextScanAt = now + scanInterval
	}
	l.scanning = true
	l.Attr.Charge(telemetry.ALLCTagFiller, uint64(l.tagLatency()))
	l.Port.Submit(true, l.tagLatency(), l.scanDoneFn)
}

// handleEviction deals with a block displaced from the tag store
// (Section 2.2.3): if it is dirty it must be written back, and the
// DRAM-aware mechanisms additionally harvest its row-mates.
func (l *LLC) handleEviction(victim cache.Block) {
	dirty := victim.Dirty
	if l.DBI != nil {
		dirty = l.DBI.IsDirty(victim.Addr)
	}
	if !dirty {
		return
	}
	l.Stat.VictimWBs.Inc()
	l.Attr.Charge(telemetry.ABytesWBDemand, l.Geo.BlockSize)
	l.mem.Write(victim.Addr)
	if l.DBI != nil {
		l.DBI.ClearDirty(victim.Addr)
	}
	switch {
	case l.Mech == config.DAWB:
		l.harvestDAWB(victim.Addr)
	case l.Mech == config.VWQ:
		l.harvestVWQ(victim.Addr)
	case l.Mech.HasAWB():
		l.harvestAWB(victim.Addr)
	}
}

// harvestDAWB implements DRAM-aware writeback [Lee+, TR'10]: on a dirty
// eviction, indiscriminately look up every other block of the victim's
// DRAM row and write back those found dirty. The lookups are
// filler-priority but still consume tag bandwidth — the 1.95× tag-lookup
// inflation of Figure 6c.
func (l *LLC) harvestDAWB(b addr.BlockAddr) {
	row := l.Geo.RowOf(b)
	mates := l.getMates()
	for col := 0; col < l.Geo.BlocksPerRow(); col++ {
		if mate := l.Geo.BlockInRow(row, col); mate != b {
			mates = append(mates, mate)
		}
	}
	l.enqueueScan(mates, false, l.dawbVisit)
}

// harvestVWQ implements the Virtual Write Queue [Stuecheli+, ISCA'10]:
// like DAWB, but the Set State Vector filters lookups to sets that hold
// dirty blocks among their LRU ways, and only blocks found in those ways
// are written back.
func (l *LLC) harvestVWQ(b addr.BlockAddr) {
	row := l.Geo.RowOf(b)
	mates := l.getMates()
	for col := 0; col < l.Geo.BlocksPerRow(); col++ {
		mate := l.Geo.BlockInRow(row, col)
		if mate == b {
			continue
		}
		// SSV check: free (a registered bit per set).
		if l.Cache.DirtyInLowRanks(l.Cache.SetOf(mate), l.vwqDepth) {
			mates = append(mates, mate)
		}
	}
	l.enqueueScan(mates, false, l.vwqVisit)
}

// harvestAWB implements the paper's aggressive writeback (Section 3.1):
// one DBI query yields exactly the dirty row-mates, so the tag store is
// looked up only for blocks that are actually dirty.
func (l *LLC) harvestAWB(b addr.BlockAddr) {
	mates := l.DBI.DirtyBlocksInRegionInto(b, l.getMates())
	for i := 0; i < len(mates); {
		if mates[i] == b {
			mates = append(mates[:i], mates[i+1:]...)
			continue
		}
		i++
	}
	if len(mates) > 0 {
		// One AWB aggregated-writeback drain: a whole row's dirty mates
		// head for the write buffer together.
		l.Trc.Instant("dbi", "awb_harvest", telemetry.TIDDBI, uint64(l.Eng.Now()), uint64(len(mates)))
	}
	l.enqueueScan(mates, false, l.awbVisit)
}

// TagLookups reports total tag-store lookups (Figure 6c's numerator).
func (l *LLC) TagLookups() uint64 { return l.Cache.Stats.TagLookups.Value() }

// MSHRLen reports outstanding (merged) misses — tests use it to catch
// the machine with the miss file occupied.
func (l *LLC) MSHRLen() int { return l.mshr.Len() }

// ScanQueueLen reports queued harvest/evict-buffer rows — tests use it
// to catch the machine mid-drain.
func (l *LLC) ScanQueueLen() int { return len(l.scanQ) }

// RegisterMetrics adds the LLC's probes (and those of its port and DBI,
// when present) to a telemetry registry.
func (l *LLC) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterStat("llc.reads", &l.Stat.Reads)
	reg.CounterStat("llc.read_hits", &l.Stat.ReadHits)
	reg.CounterStat("llc.read_misses", &l.Stat.ReadMisses)
	reg.CounterStat("llc.bypasses", &l.Stat.Bypasses)
	reg.CounterStat("llc.bypass_dirty", &l.Stat.BypassDirty)
	reg.CounterStat("llc.writeback_reqs", &l.Stat.WritebackReqs)
	reg.CounterStat("llc.filler_lookups", &l.Stat.FillerLookups)
	reg.CounterStat("llc.proactive_wbs", &l.Stat.ProactiveWBs)
	reg.CounterStat("llc.dbi_eviction_wbs", &l.Stat.DBIEvictionWBs)
	reg.CounterStat("llc.victim_wbs", &l.Stat.VictimWBs)
	reg.CounterStat("llc.write_throughs", &l.Stat.WriteThroughs)
	reg.CounterStat("llc.scan_drops", &l.Stat.ScanDrops)
	reg.Counter("llc.tag_lookups", l.TagLookups)
	reg.Gauge("llc.scan_queue", func() float64 { return float64(len(l.scanQ)) })
	l.Port.RegisterMetrics(reg, "llc.port")
	if l.DBI != nil {
		l.DBI.RegisterMetrics(reg)
	}
}

// Flush writes back every dirty block, using the DBI's row-grouped flush
// when available (Section 7, "Cache Flushing"). It returns the number of
// blocks written back. Flush is immediate (untimed); it exists for the
// flush/DMA application examples, not the main performance loop.
func (l *LLC) Flush() int {
	n := 0
	if l.DBI != nil {
		for _, ev := range l.DBI.Flush() {
			for _, b := range ev.Blocks {
				l.Attr.Charge(telemetry.ABytesWBFlush, l.Geo.BlockSize)
				l.mem.Write(b)
				n++
			}
		}
		return n
	}
	dirty := l.Cache.DirtyBlocksInto(l.getMates())
	for _, b := range dirty {
		l.Cache.SetDirty(b, false)
		l.Attr.Charge(telemetry.ABytesWBFlush, l.Geo.BlockSize)
		l.mem.Write(b)
		n++
	}
	l.putMates(dirty)
	return n
}

// Reset returns the LLC and everything it owns — tag store, port, DBI,
// miss predictor, MSHR file, scan machinery — to power-on state, with
// the same seed derivation New uses (the cache takes seed, the DBI
// seed+1). The caller must reset the engine first so no port-completion
// or scan-wake event from the previous run can fire. Pooled scratch
// (tag requests, harvest buffers, MSHR waiter slices) is retained.
func (l *LLC) Reset(seed int64) {
	l.Cache.Reset(seed)
	l.Port.Reset()
	if l.DBI != nil {
		l.DBI.Reset(seed + 1)
	}
	if l.Pred != nil {
		l.Pred.Reset()
	}
	l.mshr.Reset()
	for i := range l.scanQ {
		l.putMates(l.scanQ[i].blocks)
		l.scanQ[i] = scanJob{}
	}
	l.scanQ = l.scanQ[:0]
	l.scanning = false
	l.nextScanAt = 0
	l.scanWake = false
	l.curScanBlock = 0
	l.curScanVisit = nil
	// Reclaim records that were in flight when the engine dropped their
	// completion events: rebuild both free lists from the registries.
	l.tagFree = nil
	for i := len(l.tagAll) - 1; i >= 0; i-- {
		rr := l.tagAll[i]
		rr.live = false
		rr.done = nil
		rr.next = l.tagFree
		l.tagFree = rr
	}
	l.fillFree = nil
	for i := len(l.fillAll) - 1; i >= 0; i-- {
		r := l.fillAll[i]
		r.live = false
		r.done = nil
		r.next = l.fillFree
		l.fillFree = r
	}
	l.Stat = Stats{}
}
