package dram

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

// BenchmarkRowHitStream measures controller throughput on a row-friendly
// write stream (the AWB-shaped traffic).
func BenchmarkRowHitStream(b *testing.B) {
	var eng event.Engine
	c, err := New(&eng, addr.Default(), config.Paper(1, config.TADIP).DRAM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(addr.BlockAddr(i))
		if i&63 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkScatteredReads measures the row-conflict read path.
func BenchmarkScatteredReads(b *testing.B) {
	var eng event.Engine
	c, err := New(&eng, addr.Default(), config.Paper(1, config.TADIP).DRAM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addr.BlockAddr(i*131), nil)
		if i&31 == 31 {
			eng.Run()
		}
	}
	eng.Run()
}
