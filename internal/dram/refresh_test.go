package dram

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

func TestRefreshBlocksBanks(t *testing.T) {
	var eng event.Engine
	p := config.Paper(1, config.TADIP).DRAM
	p.RefreshInterval = 1000
	p.RefreshLatency = 300
	c, err := New(&eng, addr.Default(), p)
	if err != nil {
		t.Fatal(err)
	}
	// A read issued right after a refresh point must wait out tRFC.
	var servedAt event.Cycle
	eng.At(1001, func() {
		c.Read(addr.BlockAddr(0), func() { servedAt = eng.Now() })
	})
	eng.RunUntil(2500)
	// Refresh at 1000 blocks banks until 1300; read needs ~90 cycles
	// after that.
	if servedAt < 1300 {
		t.Fatalf("read served at %d, inside the refresh window", servedAt)
	}
	if c.Stat.Refreshes.Value() == 0 {
		t.Fatal("no refreshes counted")
	}
}

func TestRefreshClosesRows(t *testing.T) {
	var eng event.Engine
	p := config.Paper(1, config.TADIP).DRAM
	p.RefreshInterval = 10_000
	p.RefreshLatency = 300
	c, err := New(&eng, addr.Default(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Open row 0 in bank 0, wait past a refresh, access row 0 again:
	// the refresh closed it, so the second access is not a row hit.
	// (Run is bounded: the armed refresh reschedules itself forever.)
	c.Read(addr.BlockAddr(0), nil)
	eng.RunUntil(5_000)
	eng.At(11_000, func() {
		c.Read(addr.BlockAddr(1), nil)
	})
	eng.RunUntil(20_000)
	if c.Stat.ReadRowHits.Value() != 0 {
		t.Fatalf("row hit across a refresh: %d", c.Stat.ReadRowHits.Value())
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	var eng event.Engine
	p := config.Paper(1, config.TADIP).DRAM
	if p.RefreshInterval != 0 {
		t.Fatal("refresh enabled in the default preset")
	}
	c, err := New(&eng, addr.Default(), p)
	if err != nil {
		t.Fatal(err)
	}
	c.Read(addr.BlockAddr(0), nil)
	eng.Run()
	if eng.Pending() != 0 {
		t.Fatal("pending refresh events with refresh disabled")
	}
	if c.Stat.Refreshes.Value() != 0 {
		t.Fatal("phantom refreshes")
	}
}
