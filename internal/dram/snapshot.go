package dram

import (
	"dbisim/internal/event"
	"dbisim/internal/stats"
)

// txnState records one in-flight transaction by its position in the
// controller's transaction registry; the pooled record itself stays put
// (pending engine events hold its prebound callbacks), only its
// contents are saved and written back.
type txnState struct {
	idx     int
	r       request
	isWrite bool
}

// State is a checkpoint of a Controller: bank row buffers and timing
// horizons, both request queues (read completion callbacks included),
// the drain-phase state, the in-flight transaction pool and the
// statistics. The refresh chain needs no explicit entry — its pending
// event (the prebound refreshFn) is captured by the engine checkpoint.
// The zero value is ready; buffers are reused across captures.
type State struct {
	banks      []bankState
	readQ      []request
	writeQ     []request
	inflight   int
	draining   bool
	drainBurst int
	busFreeAt  event.Cycle
	kickAt     event.Cycle

	live []txnState

	stat      Stats
	drainHist stats.Histogram
}

// Snapshot captures the controller into st.
func (c *Controller) Snapshot(st *State) {
	st.banks = append(st.banks[:0], c.banks...)
	st.readQ = append(st.readQ[:0], c.readQ...)
	st.writeQ = append(st.writeQ[:0], c.writeQ...)
	st.inflight = c.inflight
	st.draining = c.draining
	st.drainBurst = c.drainBurst
	st.busFreeAt = c.busFreeAt
	st.kickAt = c.kickAt
	st.live = st.live[:0]
	for i, t := range c.txnAll {
		if t.live {
			st.live = append(st.live, txnState{i, t.r, t.isWrite})
		}
	}
	st.stat = c.Stat
	st.drainHist.CopyFrom(c.Stat.DrainBurst)
}

// Restore writes st back into the controller that produced it. The
// transaction free list is rebuilt from the registry (registry order),
// which may differ from the captured list's order — harmless, because a
// transaction's contents are fully assigned on allocation, so which
// pooled record serves a future request is unobservable.
func (c *Controller) Restore(st *State) {
	copy(c.banks, st.banks)
	c.readQ = append(c.readQ[:0], st.readQ...)
	c.writeQ = append(c.writeQ[:0], st.writeQ...)
	c.inflight = st.inflight
	c.draining = st.draining
	c.drainBurst = st.drainBurst
	c.busFreeAt = st.busFreeAt
	c.kickAt = st.kickAt
	for _, t := range c.txnAll {
		t.live = false
		t.r = request{}
	}
	for _, ls := range st.live {
		t := c.txnAll[ls.idx]
		t.live = true
		t.r, t.isWrite = ls.r, ls.isWrite
	}
	c.txnFree = nil
	for i := len(c.txnAll) - 1; i >= 0; i-- {
		if t := c.txnAll[i]; !t.live {
			t.next = c.txnFree
			c.txnFree = t
		}
	}
	h := c.Stat.DrainBurst
	c.Stat = st.stat
	c.Stat.DrainBurst = h
	h.CopyFrom(&st.drainHist)
}
