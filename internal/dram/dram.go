// Package dram models the DDR3 main memory of the evaluated system: one
// channel of banked DRAM with open-row policy, FR-FCFS scheduling, and a
// write buffer drained when full — the memory-controller organization of
// Table 1 in the DBI paper.
//
// The model works at transaction granularity with a time-reservation
// scheme that captures bank-level parallelism: each transaction's
// activate/precharge work runs on its bank (which may overlap other
// banks' work and the data bus), while the 64B data burst serializes on
// the shared channel. The row-buffer state of each bank decides whether
// a transaction pays row-hit, row-closed or row-conflict preparation
// time — the effect the paper's mechanisms exploit: writes (and reads)
// that hit open rows complete several times faster than row conflicts,
// so grouping writebacks by DRAM row raises drain throughput and keeps
// read-opened rows open.
package dram

import (
	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
	"dbisim/internal/stats"
	"dbisim/internal/telemetry"
)

// request is a queued memory transaction.
type request struct {
	block    addr.BlockAddr
	row      addr.RowID
	bank     int
	enqueued event.Cycle
	done     func() // nil for writes
}

// bankState tracks one bank's row buffer and busy horizon.
type bankState struct {
	open     bool
	openRow  addr.RowID
	freeAt   event.Cycle
	twrUntil event.Cycle // write recovery: earliest allowed precharge
}

// Stats aggregates the DRAM-side statistics of Figure 6: read and write
// row hit rates, plus the command counts the energy model consumes.
type Stats struct {
	Reads           stats.Counter
	Writes          stats.Counter
	ReadRowHits     stats.Counter
	WriteRowHits    stats.Counter
	RowClosed       stats.Counter // accesses to a precharged bank
	RowConflicts    stats.Counter
	Activates       stats.Counter
	Precharges      stats.Counter
	WriteBufHits    stats.Counter // reads served from the write buffer
	DrainsStarted   stats.Counter
	WriteBufOverflw stats.Counter // writes accepted beyond nominal capacity
	ReadLatencySum  stats.Counter // summed cycles from enqueue to data
	Refreshes       stats.Counter // auto-refresh commands issued
	// DrainBurst histograms how many writes each write-drain episode
	// issued — the burst lengths AWB lengthens by handing the controller
	// whole rows of writebacks at once.
	DrainBurst *stats.Histogram
}

// Controller is the single-channel memory controller plus DRAM banks.
type Controller struct {
	Eng  *event.Engine
	Geo  addr.Geometry
	Prm  config.DRAMParams
	Stat Stats

	// Trc, when non-nil, receives bank-service duration events and
	// drain instants. Emission nil-checks inside the tracer, so the
	// disabled path costs one compare.
	Trc *telemetry.Tracer

	// Attr, when non-nil, receives the controller's attribution
	// charges: dram_bank cycle categories plus the dram_bank and
	// dram_bus domain totals. The bus total counts one block of
	// requested transfer bytes per accepted Read/Write — including
	// reads forwarded from the write buffer — so callers charging
	// per-purpose byte categories at their request sites reconcile
	// exactly against it.
	Attr *telemetry.Attribution

	banks      []bankState
	readQ      []request
	writeQ     []request
	inflight   int
	draining   bool
	drainBurst int // writes issued by the in-progress drain episode
	busFreeAt  event.Cycle
	kickAt     event.Cycle // pending wakeup, 0 = none

	// Prebound callbacks and the transaction free list keep the bank
	// service loop allocation-free: issuing, waking and refreshing reuse
	// the same function values and pooled txn records run after run.
	// txnAll registers every transaction ever allocated so a checkpoint
	// can enumerate the pool; live distinguishes in-flight records.
	wakeFn    event.Func
	refreshFn event.Func
	txnFree   *txn
	txnAll    []*txn
}

// txn is a pooled in-flight transaction: its completion callbacks are
// bound once at allocation, so issuing a transaction schedules on the
// engine without allocating a closure per event.
type txn struct {
	c       *Controller
	r       request
	isWrite bool
	live    bool // in flight (not on the free list); checkpoints save these
	next    *txn
	burstFn event.Func
	dataFn  event.Func
}

func (c *Controller) getTxn() *txn {
	t := c.txnFree
	if t == nil {
		t = &txn{c: c}
		t.burstFn = t.burstDone
		t.dataFn = t.dataDone
		c.txnAll = append(c.txnAll, t)
	} else {
		c.txnFree = t.next
	}
	t.live = true
	return t
}

func (c *Controller) putTxn(t *txn) {
	t.r = request{}
	t.live = false
	t.next = c.txnFree
	c.txnFree = t
}

// burstDone runs when the transaction's data burst completes on the bus.
func (t *txn) burstDone() {
	c := t.c
	c.inflight--
	if t.isWrite {
		c.Stat.Writes.Inc()
		c.putTxn(t)
		c.kick()
		return
	}
	c.Stat.Reads.Inc()
	c.kick()
	// Data reaches the requester TCAS after the burst completes.
	c.Eng.After(event.Cycle(c.Prm.TCAS), t.dataFn)
}

// dataDone delivers read data to the requester.
func (t *txn) dataDone() {
	c := t.c
	c.Stat.ReadLatencySum.Add(uint64(c.Eng.Now() - t.r.enqueued))
	done := t.r.done
	c.putTxn(t)
	if done != nil {
		done()
	}
}

// New builds a controller. The geometry's bank count must match the DRAM
// parameters.
func New(eng *event.Engine, geo addr.Geometry, p config.DRAMParams) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		Eng:   eng,
		Geo:   geo,
		Prm:   p,
		banks: make([]bankState, p.Banks),
	}
	c.Stat.DrainBurst = stats.NewHistogram(2 * p.WriteBufferEntries)
	c.wakeFn = func() {
		if c.kickAt == c.Eng.Now() {
			c.kickAt = 0
		}
		c.kick()
	}
	// refresh: all banks close and stay busy for RefreshLatency cycles
	// every RefreshInterval cycles.
	c.refreshFn = func() {
		c.Stat.Refreshes.Inc()
		// Refresh reserves every bank for RefreshLatency cycles; the
		// attribution is reservation-based (charged up front), matching
		// how the freeAt horizon models it.
		c.Attr.Charge(telemetry.ADRAMRefresh, uint64(c.Prm.Banks)*uint64(c.Prm.RefreshLatency))
		c.Attr.ChargeDomain(telemetry.DomDRAMBank, uint64(c.Prm.Banks)*uint64(c.Prm.RefreshLatency))
		until := c.Eng.Now() + event.Cycle(c.Prm.RefreshLatency)
		for i := range c.banks {
			c.banks[i].open = false
			if c.banks[i].freeAt < until {
				c.banks[i].freeAt = until
			}
		}
		if c.busFreeAt < until {
			c.busFreeAt = until
		}
		c.Eng.After(event.Cycle(c.Prm.RefreshInterval), c.refreshFn)
	}
	if p.RefreshInterval > 0 {
		c.Eng.After(event.Cycle(c.Prm.RefreshInterval), c.refreshFn)
	}
	return c, nil
}

// Reset returns the controller to power-on state, reusing its queues
// and transaction pool. The engine must have been Reset first: any
// in-flight completion events are gone by then, so no stale callback
// can observe the cleared state. Because New schedules the periodic
// refresh as its first event, Reset re-schedules it here — immediately
// after the engine reset — so the event sequence numbering of a reset
// system matches a freshly constructed one exactly.
func (c *Controller) Reset() {
	for i := range c.banks {
		c.banks[i] = bankState{}
	}
	c.readQ = c.readQ[:0]
	c.writeQ = c.writeQ[:0]
	c.inflight = 0
	c.draining = false
	c.drainBurst = 0
	c.busFreeAt = 0
	c.kickAt = 0
	// Reclaim transactions that were in flight when the engine dropped
	// their completion events: rebuild the free list from the registry.
	c.txnFree = nil
	for i := len(c.txnAll) - 1; i >= 0; i-- {
		t := c.txnAll[i]
		t.live = false
		t.r = request{}
		t.next = c.txnFree
		c.txnFree = t
	}
	h := c.Stat.DrainBurst
	c.Stat = Stats{DrainBurst: h}
	h.Reset()
	if c.Prm.RefreshInterval > 0 {
		c.Eng.After(event.Cycle(c.Prm.RefreshInterval), c.refreshFn)
	}
}

// Read enqueues a demand read for a block; done fires when data arrives.
// A read that matches a buffered write is forwarded without a DRAM
// access.
func (c *Controller) Read(b addr.BlockAddr, done func()) {
	c.Attr.ChargeDomain(telemetry.DomDRAMBus, c.Geo.BlockSize)
	for _, w := range c.writeQ {
		if w.block == b {
			c.Stat.WriteBufHits.Inc()
			// Forwarding costs roughly a burst on the internal datapath.
			c.Eng.After(event.Cycle(c.Prm.TBurst), done)
			return
		}
	}
	row := c.Geo.RowOf(b)
	c.readQ = append(c.readQ, request{
		block: b, row: row, bank: c.Geo.BankOf(row),
		enqueued: c.Eng.Now(), done: done,
	})
	c.kick()
}

// Write enqueues a writeback. Writes are posted: the producer never
// waits. When the buffer reaches capacity the controller switches to the
// write-drain phase until the low watermark is reached (drain-when-full).
func (c *Controller) Write(b addr.BlockAddr) {
	c.Attr.ChargeDomain(telemetry.DomDRAMBus, c.Geo.BlockSize)
	row := c.Geo.RowOf(b)
	if len(c.writeQ) >= c.Prm.WriteBufferEntries {
		c.Stat.WriteBufOverflw.Inc()
	}
	c.writeQ = append(c.writeQ, request{
		block: b, row: row, bank: c.Geo.BankOf(row),
		enqueued: c.Eng.Now(),
	})
	c.kick()
}

// WriteQueueLen reports buffered writes (diagnostics and LLC throttling).
func (c *Controller) WriteQueueLen() int { return len(c.writeQ) }

// ReadQueueLen reports pending reads.
func (c *Controller) ReadQueueLen() int { return len(c.readQ) }

// Draining reports whether the controller is in its write-drain phase.
func (c *Controller) Draining() bool { return c.draining }

// Idle reports whether no transaction is in flight and no work is queued.
func (c *Controller) Idle() bool {
	return c.inflight == 0 && len(c.readQ) == 0 && len(c.writeQ) == 0
}

// lookahead is how far ahead of the bus horizon the scheduler issues,
// letting the next transaction's bank preparation overlap the current
// burst.
func (c *Controller) lookahead() event.Cycle { return event.Cycle(c.Prm.TBurst) }

// kick issues transactions while the bus reservation horizon is near.
func (c *Controller) kick() {
	now := c.Eng.Now()
	for {
		if c.busFreeAt > now+c.lookahead() {
			// Bus booked ahead; wake up when the horizon approaches.
			c.wakeAt(c.busFreeAt - c.lookahead())
			return
		}
		q, isWrite := c.selectQueue()
		if q == nil {
			return
		}
		idx := c.pick(*q)
		req := (*q)[idx]
		*q = append((*q)[:idx], (*q)[idx+1:]...)
		c.issue(req, isWrite)
	}
}

// wakeAt schedules a future kick, collapsing duplicates. The prebound
// wakeFn compares kickAt against the engine clock at fire time, which is
// exactly the cycle this call passed — so a stale wake (kickAt since
// re-armed earlier) leaves kickAt alone and still kicks, same as before.
func (c *Controller) wakeAt(at event.Cycle) {
	if c.kickAt != 0 && c.kickAt <= at {
		return
	}
	c.kickAt = at
	c.Eng.At(at, c.wakeFn)
}

// selectQueue applies the phase policy: drain writes when the buffer
// filled (until the low watermark), otherwise serve reads, otherwise
// opportunistically write.
func (c *Controller) selectQueue() (*[]request, bool) {
	if !c.draining && len(c.writeQ) >= c.Prm.WriteBufferEntries {
		c.draining = true
		c.drainBurst = 0
		c.Stat.DrainsStarted.Inc()
		c.Trc.Instant("dram", "drain_start", telemetry.TIDDRAM, uint64(c.Eng.Now()), uint64(len(c.writeQ)))
	}
	if c.draining && len(c.writeQ) <= c.Prm.WriteDrainLow {
		c.draining = false
		c.Stat.DrainBurst.Observe(c.drainBurst)
		c.Trc.Instant("dram", "drain_end", telemetry.TIDDRAM, uint64(c.Eng.Now()), uint64(c.drainBurst))
	}
	switch {
	case c.draining && len(c.writeQ) > 0:
		return &c.writeQ, true
	case len(c.readQ) > 0:
		return &c.readQ, false
	case len(c.writeQ) > 0:
		return &c.writeQ, true
	}
	return nil, false
}

// pick implements FR-FCFS within a queue: the oldest row-hit request
// wins; with no row hits, the oldest request whose bank is soonest free.
func (c *Controller) pick(q []request) int {
	for i, r := range q {
		b := c.banks[r.bank]
		if b.open && b.openRow == r.row {
			return i
		}
	}
	return 0
}

// issue reserves bank and bus time for the transaction and schedules its
// completion. TCAS is command-pipeline latency, not bus occupancy:
// row-hit bursts stream back-to-back at TBurst spacing (the full channel
// bandwidth grouped writebacks achieve), while each read's data still
// arrives TCAS after its burst slot is won.
func (c *Controller) issue(r request, isWrite bool) {
	now := c.Eng.Now()
	bank := &c.banks[r.bank]
	conflict := bank.open && bank.openRow != r.row
	prep := c.prepTime(bank, r, isWrite)
	// Bank occupancy attribution: preparation cycles were charged by
	// prepTime (service or conflict); the burst itself is service. The
	// dram_bank total is the sum, charged here so the domain closes.
	c.Attr.Charge(telemetry.ADRAMBankService, uint64(c.Prm.TBurst))
	c.Attr.ChargeDomain(telemetry.DomDRAMBank, uint64(prep)+uint64(c.Prm.TBurst))
	prepStart := bank.freeAt
	if prepStart < now {
		prepStart = now
	}
	// Write recovery (tWR) delays only the next precharge of the bank;
	// same-row accesses after a write stream unimpeded.
	if conflict && bank.twrUntil > prepStart {
		prepStart = bank.twrUntil
	}
	dataStart := prepStart + prep
	if dataStart < c.busFreeAt {
		dataStart = c.busFreeAt
	}
	done := dataStart + event.Cycle(c.Prm.TBurst)
	c.busFreeAt = done
	bank.freeAt = done
	if isWrite {
		bank.twrUntil = done + event.Cycle(c.Prm.TWR)
		if c.draining {
			c.drainBurst++
		}
	}
	bank.open = true
	bank.openRow = r.row
	if c.Trc != nil {
		// Bank-service span: preparation start through burst completion.
		name := "read"
		if isWrite {
			name = "write"
		}
		c.Trc.Complete("dram", name, telemetry.TIDBank(r.bank), uint64(prepStart), uint64(done), uint64(r.block))
	}

	c.inflight++
	t := c.getTxn()
	t.r, t.isWrite = r, isWrite
	c.Eng.At(done, t.burstFn)
}

// prepTime returns the bank-preparation time implied by the row state and
// updates hit/miss statistics.
func (c *Controller) prepTime(bank *bankState, r request, isWrite bool) event.Cycle {
	switch {
	case bank.open && bank.openRow == r.row:
		if isWrite {
			c.Stat.WriteRowHits.Inc()
		} else {
			c.Stat.ReadRowHits.Inc()
		}
		return 0
	case !bank.open:
		c.Stat.RowClosed.Inc()
		c.Stat.Activates.Inc()
		c.Attr.Charge(telemetry.ADRAMBankService, uint64(c.Prm.TRCD))
		return event.Cycle(c.Prm.TRCD)
	default:
		c.Stat.RowConflicts.Inc()
		c.Stat.Precharges.Inc()
		c.Stat.Activates.Inc()
		c.Attr.Charge(telemetry.ADRAMBankConflict, uint64(c.Prm.TRP+c.Prm.TRCD))
		return event.Cycle(c.Prm.TRP + c.Prm.TRCD)
	}
}

// ReadRowHitRate returns the fraction of DRAM reads that hit an open row.
func (s *Stats) ReadRowHitRate() float64 {
	return stats.Ratio(s.ReadRowHits.Value(), s.Reads.Value())
}

// WriteRowHitRate returns the fraction of DRAM writes that hit an open
// row — the quantity Figure 6b reports.
func (s *Stats) WriteRowHitRate() float64 {
	return stats.Ratio(s.WriteRowHits.Value(), s.Writes.Value())
}

// AvgReadLatency returns mean cycles from read enqueue to data.
func (s *Stats) AvgReadLatency() float64 {
	return stats.Ratio(s.ReadLatencySum.Value(), s.Reads.Value())
}

// RegisterMetrics adds the controller's probes to a telemetry registry:
// command counters (sampled as per-epoch deltas), queue-depth gauges,
// and the drain-burst histogram.
func (c *Controller) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterStat("dram.reads", &c.Stat.Reads)
	reg.CounterStat("dram.writes", &c.Stat.Writes)
	reg.CounterStat("dram.read_row_hits", &c.Stat.ReadRowHits)
	reg.CounterStat("dram.write_row_hits", &c.Stat.WriteRowHits)
	reg.CounterStat("dram.row_conflicts", &c.Stat.RowConflicts)
	reg.CounterStat("dram.activates", &c.Stat.Activates)
	reg.CounterStat("dram.precharges", &c.Stat.Precharges)
	reg.CounterStat("dram.write_buf_hits", &c.Stat.WriteBufHits)
	reg.CounterStat("dram.drains_started", &c.Stat.DrainsStarted)
	reg.CounterStat("dram.refreshes", &c.Stat.Refreshes)
	reg.CounterStat("dram.read_latency_sum", &c.Stat.ReadLatencySum)
	reg.Gauge("dram.read_queue", func() float64 { return float64(len(c.readQ)) })
	reg.Gauge("dram.write_queue", func() float64 { return float64(len(c.writeQ)) })
	reg.Gauge("dram.draining", func() float64 {
		if c.draining {
			return 1
		}
		return 0
	})
	reg.Histogram("dram.drain_burst", c.Stat.DrainBurst)
}
