package dram

import (
	"testing"

	"dbisim/internal/addr"
	"dbisim/internal/config"
	"dbisim/internal/event"
)

func newCtl(t *testing.T) (*event.Engine, *Controller) {
	t.Helper()
	var eng event.Engine
	c, err := New(&eng, addr.Default(), config.Paper(1, config.TADIP).DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return &eng, c
}

// blockInRow returns the col'th block of DRAM row r.
func blockInRow(r, col uint64) addr.BlockAddr {
	return addr.BlockAddr(r*128 + col)
}

func TestReadLatencyRowStates(t *testing.T) {
	eng, c := newCtl(t)
	var times []event.Cycle
	record := func() { times = append(times, eng.Now()) }

	c.Read(blockInRow(0, 0), record) // closed bank: TRCD+TCAS+TBurst = 90
	eng.Run()
	c.Read(blockInRow(0, 1), record) // row hit: TCAS+TBurst = 55
	eng.Run()
	c.Read(blockInRow(8, 0), record) // same bank (row 8 -> bank 0), conflict: 125
	eng.Run()

	if times[0] != 90 {
		t.Fatalf("closed-bank read at %d, want 90", times[0])
	}
	if times[1]-times[0] != 55 {
		t.Fatalf("row-hit read took %d, want 55", times[1]-times[0])
	}
	if times[2]-times[1] != 125 {
		t.Fatalf("conflict read took %d, want 125", times[2]-times[1])
	}
	if c.Stat.ReadRowHits.Value() != 1 || c.Stat.RowConflicts.Value() != 1 || c.Stat.RowClosed.Value() != 1 {
		t.Fatalf("stats: hits=%d conflicts=%d closed=%d",
			c.Stat.ReadRowHits.Value(), c.Stat.RowConflicts.Value(), c.Stat.RowClosed.Value())
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	eng, c := newCtl(t)
	var order []addr.BlockAddr
	// Open row 0 in bank 0.
	c.Read(blockInRow(0, 0), func() { order = append(order, blockInRow(0, 0)) })
	// Queue: a conflict (row 8, bank 0) then a row hit (row 0).
	c.Read(blockInRow(8, 0), func() { order = append(order, blockInRow(8, 0)) })
	c.Read(blockInRow(0, 5), func() { order = append(order, blockInRow(0, 5)) })
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("served %d reads", len(order))
	}
	if order[1] != blockInRow(0, 5) {
		t.Fatalf("FR-FCFS order = %v; row hit must be served before older conflict", order)
	}
}

func TestWriteBufferDrainWhenFull(t *testing.T) {
	eng, c := newCtl(t)
	// 63 writes: below capacity, no demand reads -> they drain
	// opportunistically. Instead hold the channel with reads while
	// filling the buffer.
	busy := 0
	var refill func()
	refill = func() {
		busy++
		if busy < 200 && c.WriteQueueLen() < 64 {
			c.Read(blockInRow(uint64(busy%4), uint64(busy%128)), refill)
		}
	}
	c.Read(blockInRow(0, 0), refill)
	for i := 0; i < 63; i++ {
		c.Write(blockInRow(uint64(100+i/16), uint64(i%16)))
	}
	if c.Draining() {
		t.Fatal("draining below capacity")
	}
	c.Write(blockInRow(200, 0)) // 64th write: buffer full
	eng.Run()
	if c.Stat.DrainsStarted.Value() == 0 {
		t.Fatal("no drain started at capacity")
	}
	if c.WriteQueueLen() != 0 {
		t.Fatalf("writes left: %d", c.WriteQueueLen())
	}
}

func TestOpportunisticWritesWhenNoReads(t *testing.T) {
	eng, c := newCtl(t)
	c.Write(blockInRow(1, 0))
	c.Write(blockInRow(1, 1))
	eng.Run()
	if c.Stat.Writes.Value() != 2 {
		t.Fatalf("writes = %d, want 2 (opportunistic drain)", c.Stat.Writes.Value())
	}
	if c.Stat.DrainsStarted.Value() != 0 {
		t.Fatal("opportunistic writes must not count as drains")
	}
	if !c.Idle() {
		t.Fatal("controller not idle after draining")
	}
}

func TestRowGroupedWritesHitRows(t *testing.T) {
	eng, c := newCtl(t)
	// 32 writes to the same row: 31 row hits.
	for i := 0; i < 32; i++ {
		c.Write(blockInRow(5, uint64(i)))
	}
	eng.Run()
	if got := c.Stat.WriteRowHits.Value(); got != 31 {
		t.Fatalf("write row hits = %d, want 31", got)
	}
	if rate := c.Stat.WriteRowHitRate(); rate < 0.9 {
		t.Fatalf("write RHR = %v", rate)
	}
}

func TestScatteredWritesConflict(t *testing.T) {
	eng, c := newCtl(t)
	// Writes alternating between two rows of the same bank, arriving one
	// at a time so FR-FCFS cannot regroup them: every write after the
	// first conflicts. (When they arrive together, FR-FCFS reorders them
	// into row groups — TestFRFCFSPrefersRowHit covers that.)
	for i := 0; i < 16; i++ {
		c.Write(blockInRow(uint64(8*(i%2)), uint64(i)))
		eng.Run()
	}
	if c.Stat.WriteRowHits.Value() != 0 {
		t.Fatalf("row hits = %d, want 0", c.Stat.WriteRowHits.Value())
	}
	if c.Stat.RowConflicts.Value() != 15 {
		t.Fatalf("conflicts = %d, want 15", c.Stat.RowConflicts.Value())
	}
}

func TestWriteBufferForwardsToReads(t *testing.T) {
	eng, c := newCtl(t)
	// Park a write in the buffer behind a long train of reads so it has
	// not drained when the matching read arrives.
	c.Read(blockInRow(3, 0), nil)
	c.Write(blockInRow(7, 7))
	served := false
	c.Read(blockInRow(7, 7), func() { served = true })
	eng.RunUntil(25) // less than any DRAM access latency
	if !served {
		t.Fatal("read not forwarded from write buffer")
	}
	if c.Stat.WriteBufHits.Value() != 1 {
		t.Fatalf("write buffer hits = %d", c.Stat.WriteBufHits.Value())
	}
	eng.Run()
}

func TestBankInterleavingTracksGeometry(t *testing.T) {
	eng, c := newCtl(t)
	// Consecutive rows land in different banks: no conflicts.
	for r := uint64(0); r < 8; r++ {
		c.Write(blockInRow(r, 0))
	}
	eng.Run()
	if c.Stat.RowConflicts.Value() != 0 {
		t.Fatalf("conflicts across distinct banks: %d", c.Stat.RowConflicts.Value())
	}
	if c.Stat.Activates.Value() != 8 {
		t.Fatalf("activates = %d, want 8", c.Stat.Activates.Value())
	}
}

func TestReadsResumeAfterDrain(t *testing.T) {
	eng, c := newCtl(t)
	for i := 0; i < 64; i++ {
		c.Write(blockInRow(uint64(i), 0))
	}
	served := false
	c.Read(blockInRow(70, 0), func() { served = true })
	eng.Run()
	if !served {
		t.Fatal("read starved")
	}
	if c.WriteQueueLen() != 0 {
		t.Fatal("writes left")
	}
}

func TestAvgReadLatency(t *testing.T) {
	eng, c := newCtl(t)
	c.Read(blockInRow(0, 0), nil)
	eng.Run()
	if got := c.Stat.AvgReadLatency(); got != 90 {
		t.Fatalf("avg read latency = %v, want 90", got)
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	var eng event.Engine
	p := config.Paper(1, config.TADIP).DRAM
	p.Banks = 6
	if _, err := New(&eng, addr.Default(), p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestWriteOverflowCounted(t *testing.T) {
	eng, c := newCtl(t)
	// Saturate with reads so writes cannot drain, then exceed capacity.
	var spin func()
	n := 0
	spin = func() {
		n++
		if n < 50 {
			c.Read(blockInRow(uint64(n%3), 0), spin)
		}
	}
	c.Read(blockInRow(0, 0), spin)
	for i := 0; i < 70; i++ {
		c.Write(blockInRow(uint64(100+i), 0))
	}
	if c.Stat.WriteBufOverflw.Value() == 0 {
		t.Fatal("overflow not counted")
	}
	eng.Run()
}
